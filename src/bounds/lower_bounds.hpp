// Communication lower bounds and cost models from the paper.
//
// Conventions: "words" are particle records (the paper's unit); S counts
// messages along the critical path; all formulas are per timestep and drop
// constant factors exactly as the paper's Ω/O expressions do. The
// OptimalityChecker compares measured ledgers against these bounds and
// reports the constant factor, which tests require to stay bounded across
// parameter sweeps — the operational meaning of "communication-optimal".
#pragma once

#include <cstdint>

#include "machine/machine_model.hpp"
#include "vmpi/cost_ledger.hpp"

namespace canb::bounds {

struct CostPair {
  double messages = 0.0;  ///< S: messages along the critical path
  double words = 0.0;     ///< W: particle records along the critical path
};

/// Equation 4: memory per rank, in particle records, for replication c.
double memory_per_rank(double n, double p, double c);

/// Equation 2: lower bounds for direct (all-pairs) interactions with
/// per-rank memory M (particle records).
CostPair direct_lower_bound(double n, double p, double memory);

/// Equation 3: lower bounds with a cutoff requiring k interactions per
/// particle.
CostPair cutoff_lower_bound(double n, double p, double memory, double k);

/// Equation 5: the CA all-pairs algorithm's asymptotic cost.
CostPair ca_all_pairs_cost(double n, double p, double c);

/// Section IV-B: the CA cutoff algorithm's asymptotic cost, with m teams
/// spanned by the cutoff radius on each side.
CostPair ca_cutoff_cost(double n, double p, double c, double m);

/// Section II-B: particle decomposition (ring) and force decomposition.
CostPair particle_decomposition_cost(double n, double p);
CostPair force_decomposition_cost(double n, double p);

/// Section II-C/II-D related-work cost models for cutoff interactions with
/// m processors spanned per axis in d dimensions:
///   spatial:          S = O(m^d),  W = O(n m^d / p)   (optimal at M=n/p)
///   neutral territory: S = O(1),   W = O(n m^d / p^1.5) (optimal at M=n/sqrt(p))
CostPair spatial_decomposition_cost(double n, double p, double m, int dims);
CostPair neutral_territory_cost(double n, double p, double m, int dims);

/// Equation 7: interactions per particle for cutoff rc in a box of length
/// l (1D): k = (2 rc / l) * n.
double interactions_per_particle_1d(double n, double rc, double box_len);

/// Modeled single-core time per step for n particles (used as the strong
/// scaling efficiency baseline): all-pairs when k <= 0, else n*k pairs.
double model_serial_seconds(const machine::MachineModel& m, double n, double k = 0.0);

/// Measured-vs-bound certificate.
struct OptimalityReport {
  CostPair measured;      ///< from a CostLedger, words in particle records
  CostPair bound;         ///< lower bound at the same memory size
  double message_ratio = 0.0;  ///< measured.messages / bound.messages
  double word_ratio = 0.0;     ///< measured.words / bound.words
};

/// Extracts critical-path S and W (in particle records of `record_bytes`)
/// from a ledger accumulated over `steps` timesteps and compares with the
/// direct lower bound for replication factor c.
OptimalityReport check_all_pairs_optimality(const vmpi::CostLedger& ledger, int steps, double n,
                                            double p, double c,
                                            double record_bytes = 52.0);

/// Same for the cutoff algorithm with k interactions per particle.
OptimalityReport check_cutoff_optimality(const vmpi::CostLedger& ledger, int steps, double n,
                                         double p, double c, double k,
                                         double record_bytes = 52.0);

}  // namespace canb::bounds
