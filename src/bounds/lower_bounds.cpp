#include "bounds/lower_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace canb::bounds {

double memory_per_rank(double n, double p, double c) {
  CANB_REQUIRE(n > 0 && p > 0 && c > 0, "memory_per_rank needs positive inputs");
  return c * n / p;
}

CostPair direct_lower_bound(double n, double p, double memory) {
  CANB_REQUIRE(n > 0 && p > 0 && memory > 0, "direct_lower_bound needs positive inputs");
  const double f = n * n / p;  // per-rank flops share
  return {f / (memory * memory), f / memory};
}

CostPair cutoff_lower_bound(double n, double p, double memory, double k) {
  CANB_REQUIRE(n > 0 && p > 0 && memory > 0 && k > 0,
               "cutoff_lower_bound needs positive inputs");
  const double f = n * k / p;
  return {f / (memory * memory), f / memory};
}

CostPair ca_all_pairs_cost(double n, double p, double c) {
  CANB_REQUIRE(n > 0 && p > 0 && c > 0, "ca_all_pairs_cost needs positive inputs");
  return {p / (c * c), n / c};
}

CostPair ca_cutoff_cost(double n, double p, double c, double m) {
  CANB_REQUIRE(n > 0 && p > 0 && c > 0 && m > 0, "ca_cutoff_cost needs positive inputs");
  return {2.0 * m / c, 2.0 * m * n / p};
}

CostPair particle_decomposition_cost(double n, double p) { return {p, n}; }

CostPair force_decomposition_cost(double n, double p) {
  const double s = std::sqrt(p);
  return {std::max(1.0, std::log2(p)), 2.0 * n / s};
}

CostPair spatial_decomposition_cost(double n, double p, double m, int dims) {
  CANB_REQUIRE(n > 0 && p > 0 && m > 0 && dims >= 1, "needs positive inputs");
  const double md = std::pow(m, dims);
  return {md, n * md / p};
}

CostPair neutral_territory_cost(double n, double p, double m, int dims) {
  CANB_REQUIRE(n > 0 && p > 0 && m > 0 && dims >= 1, "needs positive inputs");
  const double md = std::pow(m, dims);
  return {1.0, n * md / std::pow(p, 1.5)};
}

double interactions_per_particle_1d(double n, double rc, double box_len) {
  CANB_REQUIRE(n > 0 && rc > 0 && box_len > 0, "needs positive inputs");
  return std::min(1.0, 2.0 * rc / box_len) * n;
}

double model_serial_seconds(const machine::MachineModel& m, double n, double k) {
  const double pairs = k > 0.0 ? n * k : n * (n - 1.0);
  return m.gamma * pairs + m.gamma_flop * 12.0 * n;
}

namespace {
OptimalityReport make_report(const vmpi::CostLedger& ledger, int steps, CostPair bound,
                             double record_bytes) {
  CANB_REQUIRE(steps >= 1, "need at least one accumulated step");
  OptimalityReport rep;
  rep.bound = bound;
  rep.measured.messages =
      static_cast<double>(ledger.critical_messages()) / static_cast<double>(steps);
  rep.measured.words = static_cast<double>(ledger.critical_bytes()) /
                       (record_bytes * static_cast<double>(steps));
  rep.message_ratio = bound.messages > 0 ? rep.measured.messages / bound.messages : 0.0;
  rep.word_ratio = bound.words > 0 ? rep.measured.words / bound.words : 0.0;
  return rep;
}
}  // namespace

OptimalityReport check_all_pairs_optimality(const vmpi::CostLedger& ledger, int steps, double n,
                                            double p, double c, double record_bytes) {
  const double mem = memory_per_rank(n, p, c);
  return make_report(ledger, steps, direct_lower_bound(n, p, mem), record_bytes);
}

OptimalityReport check_cutoff_optimality(const vmpi::CostLedger& ledger, int steps, double n,
                                         double p, double c, double k, double record_bytes) {
  const double mem = memory_per_rank(n, p, c);
  return make_report(ledger, steps, cutoff_lower_bound(n, p, mem, k), record_bytes);
}

}  // namespace canb::bounds
