// Payload policies: the schedule/payload split.
//
// Every CA engine is a template over a Policy that defines what a "block"
// is and how blocks interact. Two policies exist:
//
//  * RealPolicy<K>  — blocks are real particle vectors; interactions run the
//    force kernel; used by tests, examples, and small-scale benches.
//  * PhantomPolicy  — blocks are particle *counts*; interactions only count
//    pairs. The communication schedule, ledger charges, and virtual clocks
//    are identical to RealPolicy by construction (tests verify this), which
//    lets benches replay the paper's 24K–32K-rank experiments in seconds.
//
// The interact() contract: `same_block` is true when the visiting block is a
// copy of the resident block (self-interaction step); policies must exclude
// self-pairs from the examined count so both modes agree exactly.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "particles/batched_engine.hpp"
#include "particles/integrator.hpp"
#include "particles/kernels.hpp"
#include "particles/particle.hpp"
#include "particles/soa_block.hpp"
#include "support/assert.hpp"

namespace canb::core {

/// Pairwise-interaction work units reported by a policy. Only `examined`
/// feeds the cost model; `computed`/`half_sweep` are host-side telemetry
/// (pair evaluations the host actually executed, and whether the N3L
/// half-sweep path ran).
struct InteractStats {
  std::uint64_t examined = 0;
  std::uint64_t computed = 0;
  bool half_sweep = false;
};

/// Flop weight of integrating one particle for one step (charged via
/// MachineModel::gamma_flop; identical in both modes).
inline constexpr double kIntegrateFlopsPerParticle = 12.0;

/// Converts a vector of blocks into the policy's Buffer type (identity when
/// they already match). The engines' converting constructors funnel through
/// this, so the decomp::split_* call sites keep handing over AoS Block
/// vectors and pay exactly one layout conversion at setup time.
template <class Buffer, class B>
std::vector<Buffer> convert_blocks(std::vector<B> blocks) {
  if constexpr (std::is_same_v<Buffer, B>) {
    return blocks;
  } else {
    std::vector<Buffer> out;
    out.reserve(blocks.size());
    for (auto& b : blocks) out.emplace_back(std::move(b));
    return out;
  }
}

/// The combine functor both CA engines hand to vmpi::reduce_teams.
/// Whole-buffer combine always; the element-range overload exists only when
/// the policy provides one (RealPolicy does; PhantomPolicy reduces counts,
/// which have no element axis) — reduce_teams detects it by invocability
/// and splits each team's fold by element range across host threads.
template <class Policy>
struct TeamCombine {
  using Buffer = typename Policy::Buffer;
  void operator()(Buffer& acc, const Buffer& in) const { Policy::combine(acc, in); }
  template <class B = Buffer>
    requires requires(B& a, const B& i) {
      Policy::combine_range(a, i, std::size_t{}, std::size_t{});
    }
  void operator()(B& acc, const B& in, std::size_t lo, std::size_t hi) const {
    Policy::combine_range(acc, in, lo, hi);
  }
};

template <particles::ForceKernel K>
class RealPolicy {
 public:
  /// The resident representation *is* the kernel-ready SoA layout: the
  /// buffers vmpi primitives shift, skew, broadcast, and reduce feed the
  /// sweeps directly, with no per-sweep gather or scatter.
  using Buffer = particles::SoaBlock;
  static constexpr bool kIsPhantom = false;

  struct Config {
    particles::Box box;
    K kernel{};
    double cutoff = 0.0;  ///< 0 = no cutoff
    double dt = 1e-3;
    /// Host-side sweep implementation. Engines only change host wall time;
    /// the examined counts charged to the ledger are identical, so virtual
    /// clocks, messages, and words do not depend on this choice.
    particles::KernelEngine engine = particles::KernelEngine::Scalar;
    /// Host-side sweep tuning (N3L half-sweeps, tile width). Same rule as
    /// `engine`: host wall time only, never the ledger.
    particles::SweepTuning tuning{};
  };

  explicit RealPolicy(Config cfg) : cfg_(std::move(cfg)) { cfg_.box.validate(); }

  static std::uint64_t bytes(const Buffer& b) noexcept { return particles::block_bytes(b); }
  static std::uint64_t count(const Buffer& b) noexcept { return b.size(); }

  InteractStats interact(Buffer& resident, const Buffer& visitor, bool same_block) const {
    const auto stats = particles::interact_blocks(cfg_.engine, resident, visitor, cfg_.box,
                                                  cfg_.kernel, cfg_.cutoff, same_block,
                                                  cfg_.tuning);
    return {stats.examined, stats.computed, stats.half_sweep};
  }

  /// Sums force accumulators of `in` into `acc` (team reduction combine).
  /// Each add folds through float — the AoS combine summed float fields —
  /// preserving the force-lane precision invariant (batched_engine.hpp).
  static void combine(Buffer& acc, const Buffer& in) { combine_range(acc, in, 0, acc.size()); }

  /// Element-range form of combine: folds elements [lo, hi) only. Elements
  /// are independent, so the data plane's reduce can split a team's fold
  /// across host threads by element range while each element still sees the
  /// rows folded in the serial order — the float fold does not associate,
  /// so that ORDER (not the chunking) is what the bitwise contract pins.
  static void combine_range(Buffer& acc, const Buffer& in, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      acc.fx[i] = static_cast<double>(static_cast<float>(acc.fx[i]) +
                                      static_cast<float>(in.fx[i]));
      acc.fy[i] = static_cast<double>(static_cast<float>(acc.fy[i]) +
                                      static_cast<float>(in.fy[i]));
    }
  }

  void pre_force(const particles::Integrator& integ, Buffer& b) const {
    integ.pre_force(b, cfg_.dt);
    particles::clear_forces(b);
  }
  void post_force(const particles::Integrator& integ, Buffer& b) const {
    integ.post_force(b, cfg_.dt, cfg_.box);
  }

  const Config& config() const noexcept { return cfg_; }
  const particles::Box& box() const noexcept { return cfg_.box; }
  double cutoff() const noexcept { return cfg_.cutoff; }

 private:
  Config cfg_;
};

/// A block that exists only as a particle count.
struct PhantomBlock {
  std::uint64_t count = 0;
};

class PhantomPolicy {
 public:
  using Buffer = PhantomBlock;
  static constexpr bool kIsPhantom = true;

  struct Config {
    /// Fraction of particles assumed to cross a team boundary per step
    /// (drives the Re-assign phase cost in cutoff benches).
    double reassign_fraction = 0.05;
    /// Enables the exact bulk fast path for uniform all-pairs schedules.
    bool bulk_uniform = true;
  };

  PhantomPolicy() = default;
  explicit PhantomPolicy(Config cfg) : cfg_(cfg) {}

  static std::uint64_t bytes(const Buffer& b) noexcept {
    return b.count * particles::kParticleBytes;
  }
  static std::uint64_t count(const Buffer& b) noexcept { return b.count; }

  InteractStats interact(Buffer& resident, const Buffer& visitor, bool same_block) const {
    const std::uint64_t self = same_block ? resident.count : 0;
    return {resident.count * visitor.count - self};
  }

  static void combine(Buffer& acc, const Buffer& in) {
    // Counts must agree — a reduction combines replicas of the same block.
    CANB_ASSERT(acc.count == in.count);
    (void)in;
  }

  const Config& config() const noexcept { return cfg_; }

 private:
  Config cfg_{};
};

}  // namespace canb::core
