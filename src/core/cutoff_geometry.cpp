#include "core/cutoff_geometry.hpp"

#include <cmath>

namespace canb::core {

CutoffGeometry::CutoffGeometry(int dims, int qx, int qy, int qz, int mx, int my, int mz)
    : dims_(dims), qx_(qx), qy_(qy), qz_(qz), mx_(mx), my_(my), mz_(mz) {
  CANB_REQUIRE(qx >= 1 && qy >= 1 && qz >= 1, "team grid dims must be >= 1");
  CANB_REQUIRE(mx >= 0 && my >= 0 && mz >= 0, "window radii must be >= 0");
  // A window wider than the team grid would make a block visit some team
  // twice via the ring (double counting); such configurations must use the
  // all-pairs algorithm instead.
  CANB_REQUIRE(2 * mx + 1 <= qx, "x window must not exceed the team grid");
  CANB_REQUIRE(2 * my + 1 <= qy || dims < 2, "y window must not exceed the team grid");
  CANB_REQUIRE(2 * mz + 1 <= qz || dims < 3, "z window must not exceed the team grid");
}

CutoffGeometry CutoffGeometry::make_1d(int q, int m) {
  return CutoffGeometry(1, q, 1, 1, m, 0, 0);
}

CutoffGeometry CutoffGeometry::make_2d(int qx, int qy, int mx, int my) {
  return CutoffGeometry(2, qx, qy, 1, mx, my, 0);
}

CutoffGeometry CutoffGeometry::make_3d(int qx, int qy, int qz, int mx, int my, int mz) {
  return CutoffGeometry(3, qx, qy, qz, mx, my, mz);
}

int window_radius_teams(double rc, double len, int q) {
  CANB_REQUIRE(rc > 0.0 && len > 0.0 && q >= 1, "window_radius_teams needs positive inputs");
  return static_cast<int>(std::ceil(rc * static_cast<double>(q) / len - 1e-9));
}

}  // namespace canb::core
