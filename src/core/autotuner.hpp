// Replication-factor autotuning.
//
// The paper leaves open "the question of how to select the replication
// factor c, which ... can be autotuned at runtime by trying multiple
// factors" (Section V). This implements exactly that: candidate factors
// are evaluated on phantom payloads against the machine model — the same
// schedules, ledgers, and clocks as a real run, at a tiny fraction of the
// cost — and the fastest c wins. A real deployment would do trial
// timesteps; here trial timesteps on the virtual machine are exact.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/ca_all_pairs.hpp"
#include "core/ca_cutoff.hpp"
#include "core/policy.hpp"
#include "machine/machine_model.hpp"
#include "support/assert.hpp"

namespace canb::core {

struct TuneResult {
  int best_c = 1;
  double best_seconds = 0.0;   ///< modeled time per step at best_c
  struct Candidate {
    int c = 1;
    double seconds = 0.0;      ///< modeled time per step
    double comm_seconds = 0.0; ///< communication share
    double memory_factor = 1.0;  ///< per-rank memory multiplier vs c=1
  };
  std::vector<Candidate> candidates;  ///< every c tried, in ascending order
};

class Autotuner {
 public:
  struct Config {
    int p = 1;
    std::uint64_t n = 0;
    machine::MachineModel machine;
    /// Memory budget: largest tolerable replication factor (0 = sqrt(p),
    /// the algorithmic maximum).
    int max_c = 0;
    /// Cutoff window radius in teams at c=1, or 0 for all-pairs. For
    /// cutoff problems the radius scales with the team count as c varies.
    double rc_fraction = 0.0;  ///< cutoff radius as a fraction of the box
    int dims = 1;              ///< cutoff decomposition dimensionality
  };

  explicit Autotuner(Config cfg) : cfg_(std::move(cfg)) {
    CANB_REQUIRE(cfg_.p >= 1 && cfg_.n >= 1, "autotuner needs p >= 1 and n >= 1");
  }

  /// Evaluates every valid power-of-two replication factor and returns the
  /// modeled-fastest. Deterministic and side-effect free.
  TuneResult tune() const {
    TuneResult result;
    double best = -1.0;
    const int limit = cfg_.max_c > 0 ? cfg_.max_c : cfg_.p;
    for (int c = 1; c <= limit; c *= 2) {
      const auto seconds = evaluate(c);
      if (!seconds) continue;
      TuneResult::Candidate cand;
      cand.c = c;
      cand.seconds = seconds->first;
      cand.comm_seconds = seconds->second;
      cand.memory_factor = static_cast<double>(c);
      result.candidates.push_back(cand);
      if (best < 0.0 || cand.seconds < best) {
        best = cand.seconds;
        result.best_c = c;
        result.best_seconds = cand.seconds;
      }
    }
    CANB_REQUIRE(!result.candidates.empty(), "no valid replication factor for this (p, n)");
    return result;
  }

 private:
  /// Returns {total, communication} seconds per step for factor c, or
  /// nullopt when c is invalid for this configuration.
  std::optional<std::pair<double, double>> evaluate(int c) const {
    PhantomPolicy policy({/*reassign_fraction=*/0.05, /*bulk=*/true});
    if (cfg_.rc_fraction <= 0.0) {
      if (!vmpi::valid_all_pairs_replication(cfg_.p, c)) return std::nullopt;
      CaAllPairs<PhantomPolicy> engine({cfg_.p, c, cfg_.machine}, policy,
                                       even_blocks(cfg_.p / c));
      engine.step();
      return split_comm(engine.comm());
    }
    const int q = cfg_.p / c;
    if (cfg_.p % c != 0) return std::nullopt;
    if (cfg_.dims == 1) {
      const int m = window_radius_teams(cfg_.rc_fraction, 1.0, q);
      if (2 * m + 1 > q || !vmpi::valid_cutoff_replication(cfg_.p, c, m)) return std::nullopt;
      CaCutoff<PhantomPolicy> engine(
          {cfg_.p, c, cfg_.machine, CutoffGeometry::make_1d(q, m), false}, policy,
          even_blocks(q));
      engine.step();
      return split_comm(engine.comm());
    }
    // 2D: near-square team grid.
    int qx = 1;
    for (int f = 1; f * f <= q; ++f) {
      if (q % f == 0) qx = f;
    }
    const int qy = q / qx;
    const int mx = window_radius_teams(cfg_.rc_fraction, 1.0, qx);
    const int my = window_radius_teams(cfg_.rc_fraction, 1.0, qy);
    if (2 * mx + 1 > qx || 2 * my + 1 > qy) return std::nullopt;
    if (c > (2 * mx + 1) * (2 * my + 1)) return std::nullopt;
    CaCutoff<PhantomPolicy> engine(
        {cfg_.p, c, cfg_.machine, CutoffGeometry::make_2d(qx, qy, mx, my), false}, policy,
        even_blocks(q));
    engine.step();
    return split_comm(engine.comm());
  }

  std::vector<PhantomBlock> even_blocks(int q) const {
    std::vector<PhantomBlock> out(static_cast<std::size_t>(q));
    const std::uint64_t base = cfg_.n / static_cast<std::uint64_t>(q);
    const std::uint64_t extra = cfg_.n % static_cast<std::uint64_t>(q);
    for (int t = 0; t < q; ++t)
      out[static_cast<std::size_t>(t)].count = base + (static_cast<std::uint64_t>(t) < extra);
    return out;
  }

  static std::pair<double, double> split_comm(const vmpi::VirtualComm& vc) {
    const double total = vc.max_clock();
    double compute = 0.0;
    for (int r = 0; r < vc.size(); ++r)
      compute = std::max(compute, vc.ledger().seconds(r, vmpi::Phase::Compute));
    return {total, std::max(0.0, total - compute)};
  }

  Config cfg_;
};

}  // namespace canb::core
