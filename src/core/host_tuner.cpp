#include "core/host_tuner.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace canb::core {
namespace {

/// First "model name" line of /proc/cpuinfo, or empty when unavailable.
std::string cpu_model_name() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) break;
    std::size_t b = colon + 1;
    while (b < line.size() && std::isspace(static_cast<unsigned char>(line[b])) != 0) ++b;
    return line.substr(b);
  }
  return {};
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

// --- minimal read-side helpers -------------------------------------------
//
// The cache schema is flat and fully under our control, so instead of a
// general JSON parser we pull fields out of an object's source text by key.
// Any surprise (missing field, malformed escape) reads as "not found" and
// the caller discards the file — the failure mode of a damaged cache is a
// re-tune, never a wrong application.

/// Unescapes the JSON string starting at `pos` (which must point at the
/// opening quote). Returns false on malformed input.
bool read_json_string(std::string_view text, std::size_t pos, std::string& out,
                      std::size_t& end) {
  if (pos >= text.size() || text[pos] != '"') return false;
  out.clear();
  for (std::size_t i = pos + 1; i < text.size(); ++i) {
    const char ch = text[i];
    if (ch == '"') {
      end = i + 1;
      return true;
    }
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (++i >= text.size()) return false;
    switch (text[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 >= text.size()) return false;
        unsigned code = 0;
        for (int k = 1; k <= 4; ++k) {
          const char h = text[i + static_cast<std::size_t>(k)];
          code <<= 4;
          if (h >= '0' && h <= '9')
            code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f')
            code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F')
            code |= static_cast<unsigned>(h - 'A' + 10);
          else
            return false;
        }
        if (code > 0x7f) return false;  // cache writer only emits ASCII escapes
        out += static_cast<char>(code);
        i += 4;
        break;
      }
      default: return false;
    }
  }
  return false;
}

/// Position just past `"key" :` within `obj`, or npos.
std::size_t find_key(std::string_view obj, std::string_view key) {
  const std::string needle = '"' + std::string(key) + '"';
  std::size_t at = 0;
  while ((at = obj.find(needle, at)) != std::string_view::npos) {
    std::size_t p = at + needle.size();
    while (p < obj.size() && std::isspace(static_cast<unsigned char>(obj[p])) != 0) ++p;
    if (p < obj.size() && obj[p] == ':') {
      ++p;
      while (p < obj.size() && std::isspace(static_cast<unsigned char>(obj[p])) != 0) ++p;
      return p;
    }
    at += needle.size();
  }
  return std::string_view::npos;
}

bool field_string(std::string_view obj, std::string_view key, std::string& out) {
  const std::size_t p = find_key(obj, key);
  if (p == std::string_view::npos) return false;
  std::size_t end = 0;
  return read_json_string(obj, p, out, end);
}

bool field_number(std::string_view obj, std::string_view key, double& out) {
  const std::size_t p = find_key(obj, key);
  if (p == std::string_view::npos) return false;
  const std::string token(obj.substr(p, obj.find_first_of(",}\n", p) - p));
  std::istringstream is(token);
  return static_cast<bool>(is >> out);
}

bool field_bool(std::string_view obj, std::string_view key, bool& out) {
  const std::size_t p = find_key(obj, key);
  if (p == std::string_view::npos) return false;
  if (obj.compare(p, 4, "true") == 0) {
    out = true;
    return true;
  }
  if (obj.compare(p, 5, "false") == 0) {
    out = false;
    return true;
  }
  return false;
}

/// Parses one entry object's text; false rejects the whole file. Every v2
/// field is mandatory — a truncated or hand-pruned entry fails closed.
bool parse_entry(std::string_view obj, HostTuneEntry& e) {
  double n = 0.0, tile = 0.0, threads = 0.0, grain = 0.0, lane_max = 0.0, rate = 0.0;
  if (!field_string(obj, "kernel", e.kernel)) return false;
  if (!field_number(obj, "n", n) || n < 2.0) return false;
  if (!field_string(obj, "engine", e.engine)) return false;
  if (e.engine != "scalar" && e.engine != "batched") return false;
  if (!field_number(obj, "tile", tile) || tile < 1.0 ||
      tile > static_cast<double>(particles::BatchedEngine::kTileWidth))
    return false;
  if (!field_bool(obj, "half_sweep", e.half_sweep)) return false;
  if (!field_number(obj, "threads", threads) || threads < 1.0) return false;
  if (!field_string(obj, "backend", e.backend)) return false;
  if (!particles::simd::parse_backend(e.backend)) return false;
  if (!field_string(obj, "sched", e.sched)) return false;
  if (!parse_sched_mode(e.sched)) return false;
  if (!field_number(obj, "steal_grain", grain) || grain < 1.0) return false;
  if (!field_number(obj, "inline_lane_max", lane_max) || lane_max < 0.0) return false;
  if (!field_string(obj, "distribution", e.distribution) || e.distribution.empty())
    return false;
  if (!field_number(obj, "pairs_per_sec", rate)) return false;
  e.n = static_cast<std::uint64_t>(n);
  e.tile = static_cast<std::uint64_t>(tile);
  e.threads = static_cast<int>(threads);
  e.steal_grain = static_cast<int>(grain);
  e.inline_lane_max = static_cast<std::uint64_t>(lane_max);
  e.pairs_per_sec = rate;
  return true;
}

}  // namespace

std::string TuningCache::machine_key() {
  std::string model = cpu_model_name();
  if (model.empty()) model = "unknown-cpu";
  return model + " [" + particles::simd::backend_name(particles::simd::max_supported()) + "]";
}

std::string TuningCache::build_key() {
#if defined(__VERSION__)
  return std::string(__VERSION__) + " p" + std::to_string(sizeof(void*) * 8);
#else
  return std::string("unknown-compiler p") + std::to_string(sizeof(void*) * 8);
#endif
}

TuningCache TuningCache::load_or_empty(const std::string& path) {
  TuningCache cache;  // carries the current keys
  std::ifstream in(path);
  if (!in) return cache;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::string schema, machine, build;
  if (!field_string(text, "schema", schema) || schema != kSchema) return cache;
  if (!field_string(text, "machine", machine) || machine != cache.machine_) return cache;
  if (!field_string(text, "build", build) || build != cache.build_) return cache;

  const std::size_t entries_at = find_key(text, "entries");
  if (entries_at == std::string::npos || text[entries_at] != '[') return cache;

  std::vector<HostTuneEntry> parsed;
  std::size_t pos = entries_at + 1;
  while (true) {
    const std::size_t open = text.find_first_of("{]", pos);
    if (open == std::string::npos) return cache;  // truncated file
    if (text[open] == ']') break;
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) return cache;
    HostTuneEntry e;
    if (!parse_entry(std::string_view(text).substr(open, close - open + 1), e)) return cache;
    parsed.push_back(std::move(e));
    pos = close + 1;
  }
  cache.entries_ = std::move(parsed);
  return cache;
}

bool TuningCache::save(const std::string& path) const {
  std::string out = "{\n  \"schema\": ";
  append_json_string(out, kSchema);
  out += ",\n  \"machine\": ";
  append_json_string(out, machine_);
  out += ",\n  \"build\": ";
  append_json_string(out, build_);
  out += ",\n  \"entries\": [";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const HostTuneEntry& e = entries_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"kernel\": ";
    append_json_string(out, e.kernel);
    out += ", \"n\": " + std::to_string(e.n);
    out += ", \"engine\": ";
    append_json_string(out, e.engine);
    out += ", \"tile\": " + std::to_string(e.tile);
    out += std::string(", \"half_sweep\": ") + (e.half_sweep ? "true" : "false");
    out += ", \"threads\": " + std::to_string(e.threads);
    out += ", \"backend\": ";
    append_json_string(out, e.backend);
    out += ", \"sched\": ";
    append_json_string(out, e.sched);
    out += ", \"steal_grain\": " + std::to_string(e.steal_grain);
    out += ", \"inline_lane_max\": " + std::to_string(e.inline_lane_max);
    out += ", \"distribution\": ";
    append_json_string(out, e.distribution);
    char rate[40];
    std::snprintf(rate, sizeof rate, "%.17g", e.pairs_per_sec);
    out += std::string(", \"pairs_per_sec\": ") + rate + "}";
  }
  out += entries_.empty() ? "]\n}\n" : "\n  ]\n}\n";

  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << out;
  return static_cast<bool>(f);
}

const HostTuneEntry* TuningCache::find(std::string_view kernel, std::uint64_t n,
                                       std::string_view distribution) const {
  for (const HostTuneEntry& e : entries_)
    if (e.n == n && e.kernel == kernel && e.distribution == distribution) return &e;
  return nullptr;
}

void TuningCache::put(HostTuneEntry e) {
  for (HostTuneEntry& existing : entries_) {
    if (existing.n == e.n && existing.kernel == e.kernel &&
        existing.distribution == e.distribution) {
      existing = std::move(e);
      return;
    }
  }
  entries_.push_back(std::move(e));
}

HostTuneChoice choice_from_entry(const HostTuneEntry& e) {
  HostTuneChoice c;
  c.engine = particles::parse_engine(e.engine);
  c.tuning.half_sweep = e.half_sweep;
  c.tuning.tile = static_cast<std::size_t>(e.tile);
  c.tuning.inline_lane_max = static_cast<std::size_t>(e.inline_lane_max);
  // Entries validate against parse_backend on load; clamp to what this
  // machine supports in case a hand-edited cache requests wider lanes.
  const auto parsed = particles::simd::parse_backend(e.backend);
  c.backend = parsed ? std::min(*parsed, particles::simd::max_supported())
                     : particles::simd::Backend::Scalar;
  c.threads = e.threads < 1 ? 1 : e.threads;
  const auto sched = parse_sched_mode(e.sched);
  c.sched = sched ? *sched : SchedMode::kStatic;
  c.steal_grain = e.steal_grain < 1 ? 1 : e.steal_grain;
  c.pairs_per_sec = e.pairs_per_sec;
  c.from_cache = true;
  return c;
}

HostTuneEntry entry_from_choice(std::string kernel, std::uint64_t n, std::string distribution,
                                const HostTuneChoice& c) {
  HostTuneEntry e;
  e.kernel = std::move(kernel);
  e.n = n;
  e.engine = particles::engine_name(c.engine);
  e.tile = c.tuning.tile;
  e.half_sweep = c.tuning.half_sweep;
  e.threads = c.threads;
  e.backend = particles::simd::backend_name(c.backend);
  e.sched = to_string(c.sched);
  e.steal_grain = c.steal_grain;
  e.inline_lane_max = c.tuning.inline_lane_max;
  e.distribution = std::move(distribution);
  e.pairs_per_sec = c.pairs_per_sec;
  return e;
}

machine::MachineModel with_measured_gamma(machine::MachineModel model,
                                          const HostTuneChoice& choice) {
  if (choice.pairs_per_sec > 0.0) model.gamma = 1.0 / choice.pairs_per_sec;
  return model;
}

}  // namespace canb::core
