// Algorithm 2 and its multi-dimensional generalization: the
// communication-avoiding algorithm for distance-limited interactions.
//
// Teams own spatial regions (1D segments or 2D cells). A timestep is:
//   1. broadcast the team block within the team            (log c msgs)
//   2. skew: row k jumps its exchange copy to window slot k
//   3. ceil(W/c) - 1 times: shift to the next slot (stride c through the
//      linearized window), interacting at each slot        (~2m/c msgs)
//   4. sum-reduce force contributions within the team      (log c msgs)
//   5. leaders integrate, then re-assign migrated particles to the
//      neighboring teams that now own them                 (Re-assign phase)
//
// Shifts traverse the window "modulo the cutoff window" (paper Fig. 4): a
// block only ever travels to the <= 2m teams that need it. Under
// reflective boundaries, window offsets falling off the team grid are
// skipped — boundary ranks idle, reproducing the load imbalance the paper
// reports in Section IV-D2.
//
// Every message this engine produces flows through the shared vmpi
// primitives (broadcast_teams / permute_step via shift machinery /
// reduce_teams) and reassign_spatial's exchange_lists — nothing here
// talks to a fabric directly. Attaching a real transport to the
// VirtualComm (vmpi/transport.hpp, docs/TRANSPORT.md) therefore carries
// this engine's payloads over shmem or sockets with zero changes to the
// schedule below: the transport arms live inside those primitives, and
// trajectories/ledgers/traces stay bitwise identical to the modeled run
// (tests/test_transport_parity.cpp pins this).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/cutoff_geometry.hpp"
#include "core/policy.hpp"
#include "core/reassign.hpp"
#include "decomp/partition.hpp"
#include "obs/telemetry.hpp"
#include "particles/integrator.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"
#include "vmpi/buffer_pool.hpp"
#include "vmpi/primitives.hpp"
#include "vmpi/virtual_comm.hpp"

namespace canb::core {

template <class Policy>
class CaCutoff {
 public:
  using Buffer = typename Policy::Buffer;

  struct Config {
    int p = 1;
    int c = 1;
    machine::MachineModel machine;
    CutoffGeometry geometry = CutoffGeometry::make_1d(1, 0);
    bool periodic = false;  ///< periodic boundaries: windows wrap spatially
  };

  /// `team_blocks[t]` holds the particles in team t's region (see
  /// decomp::split_spatial_*; col t = ty*qx + tx in 2D).
  CaCutoff(Config cfg, Policy policy, std::vector<Buffer> team_blocks)
      : cfg_(std::move(cfg)),
        policy_(std::move(policy)),
        grid_(vmpi::Grid2d::make(cfg_.p, cfg_.c)),
        vc_(cfg_.p, cfg_.machine),
        integrator_(std::make_unique<particles::VelocityVerlet>()) {
    CANB_REQUIRE(cfg_.geometry.teams() == grid_.cols(),
                 "team grid must have exactly p/c teams");
    CANB_REQUIRE(cfg_.c <= cfg_.geometry.window(),
                 "replication factor must fit inside the interaction window (c <= 2m+1)");
    CANB_REQUIRE(static_cast<int>(team_blocks.size()) == grid_.cols(),
                 "need exactly p/c team blocks");
    slots_ = cfg_.geometry.slots_per_row(cfg_.c);
    resident_.resize(static_cast<std::size_t>(cfg_.p));
    carried_.resize(static_cast<std::size_t>(cfg_.p));
    for (int t = 0; t < grid_.cols(); ++t)
      resident_[static_cast<std::size_t>(grid_.leader(t))] =
          std::move(team_blocks[static_cast<std::size_t>(t)]);
    // Per-rank team coordinates, cached to keep the per-step loops free of
    // divisions (they dominate at paper scale: 32K ranks x ~2m/c steps).
    const auto& geom = cfg_.geometry;
    tx_.resize(static_cast<std::size_t>(cfg_.p));
    ty_.resize(static_cast<std::size_t>(cfg_.p));
    tz_.resize(static_cast<std::size_t>(cfg_.p));
    src_.resize(static_cast<std::size_t>(cfg_.p));
    for (int r = 0; r < cfg_.p; ++r) {
      const int col = grid_.col_of(r);
      tx_[static_cast<std::size_t>(r)] = col % geom.qx();
      ty_[static_cast<std::size_t>(r)] = (col / geom.qx()) % geom.qy();
      tz_[static_cast<std::size_t>(r)] = col / (geom.qx() * geom.qy());
    }
  }

  /// Converting constructor: accepts blocks in a different layout than the
  /// policy's Buffer (the AoS blocks decomp::split_spatial_* produce) and
  /// converts once at setup time.
  template <class B>
    requires(!std::is_same_v<B, Buffer> && std::is_constructible_v<Buffer, B>)
  CaCutoff(Config cfg, Policy policy, std::vector<B> team_blocks)
      : CaCutoff(std::move(cfg), std::move(policy),
                 convert_blocks<Buffer>(std::move(team_blocks))) {}

  void set_integrator(std::unique_ptr<particles::Integrator> integ) {
    integrator_ = std::move(integ);
  }

  /// Attaches a host thread pool for the per-rank interaction loops and the
  /// data plane's copy fan-out; see CaAllPairs::set_host_pool.
  void set_host_pool(std::shared_ptr<ThreadPool> pool) {
    pool_ = std::move(pool);
    if (plane_) plane_->workers = pool_.get();
  }

  /// Attaches the host data plane (pooled buffers + parallel copies); see
  /// CaAllPairs::set_data_plane. nullptr selects the legacy serial host
  /// path; bitwise identical outputs either way.
  void set_data_plane(std::shared_ptr<vmpi::DataPlane<Buffer>> plane) {
    plane_ = std::move(plane);
    if (plane_) plane_->workers = pool_.get();
  }

  /// Attaches telemetry (not owned; nullptr detaches); see
  /// CaAllPairs::set_telemetry — observation is passive.
  void set_telemetry(obs::Telemetry* telem) {
    telem_ = telem;
    if (telem_ != nullptr) telem_->attach(vc_);
  }

  void step() {
    if (telem_ != nullptr) telem_->begin_step(vc_);
    pre_integrate();
    vmpi::broadcast_teams(vc_, grid_, resident_, &Policy::bytes, vmpi::Phase::Broadcast,
                          plane_.get());
    boundary(vmpi::Phase::Broadcast, "broadcast");
    stage_and_skew();
    boundary(vmpi::Phase::Skew, "skew");
    interact_slot(0);
    boundary(vmpi::Phase::Compute, "interact");
    for (int j = 1; j < slots_; ++j) {
      shift_to_slot(j);
      boundary(vmpi::Phase::Shift, "shift");
      interact_slot(j);
      boundary(vmpi::Phase::Compute, "interact");
    }
    vmpi::reduce_teams(vc_, grid_, resident_, &Policy::bytes, TeamCombine<Policy>{},
                       vmpi::Phase::Reduce, plane_.get());
    boundary(vmpi::Phase::Reduce, "reduce");
    post_integrate();
    boundary(vmpi::Phase::Compute, "integrate");
    reassign();
    boundary(vmpi::Phase::Reassign, "reassign");
  }

  void run(int steps) {
    for (int i = 0; i < steps; ++i) step();
  }

  // --- observers ---------------------------------------------------------
  const vmpi::VirtualComm& comm() const noexcept { return vc_; }
  vmpi::VirtualComm& comm() noexcept { return vc_; }
  const vmpi::Grid2d& grid() const noexcept { return grid_; }
  const Config& config() const noexcept { return cfg_; }
  const Policy& policy() const noexcept { return policy_; }
  int slots_per_row() const noexcept { return slots_; }

  std::vector<Buffer> team_results() const {
    std::vector<Buffer> out;
    out.reserve(static_cast<std::size_t>(grid_.cols()));
    for (int t = 0; t < grid_.cols(); ++t)
      out.push_back(resident_[static_cast<std::size_t>(grid_.leader(t))]);
    return out;
  }

 private:
  void boundary(vmpi::Phase phase, const char* label) {
    if (telem_ != nullptr) telem_->phase_boundary(vc_, phase, label);
  }

  void pre_integrate() {
    if constexpr (!Policy::kIsPhantom) {
      for (int t = 0; t < grid_.cols(); ++t) {
        const int leader = grid_.leader(t);
        if (!vc_.resident(leader)) continue;  // owner runs the half-kick
        policy_.pre_force(*integrator_, resident_[static_cast<std::size_t>(leader)]);
      }
    }
  }

  // Fills src_ with the rank each rank receives from when every row k
  // applies team-grid displacement deltas[k]. Wrap arithmetic uses
  // conditional adds (|delta| < q per axis by construction).
  void fill_sources(const std::vector<TeamOffset>& deltas) {
    const int qx = cfg_.geometry.qx();
    const int qy = cfg_.geometry.qy();
    const int qz = cfg_.geometry.qz();
    const int q = cfg_.geometry.teams();
    for (int r = 0; r < cfg_.p; ++r) {
      const int row = r / q;  // grid_.row_of without the call
      const TeamOffset d = deltas[static_cast<std::size_t>(row)];
      int sx = tx_[static_cast<std::size_t>(r)] + d.x;
      if (sx < 0) sx += qx;
      if (sx >= qx) sx -= qx;
      int sy = ty_[static_cast<std::size_t>(r)] + d.y;
      if (sy < 0) sy += qy;
      if (sy >= qy) sy -= qy;
      int sz = tz_[static_cast<std::size_t>(r)] + d.z;
      if (sz < 0) sz += qz;
      if (sz >= qz) sz -= qz;
      src_[static_cast<std::size_t>(r)] = row * q + (sz * qy + sy) * qx + sx;
    }
  }

  void stage_and_skew() {
    if (plane_) {
      // Carried blocks are pure visitors here (the sweeps' read-only
      // operand), so staging copies only the kernel-input lanes.
      vmpi::stage_buffers(
          vc_, resident_, carried_,
          [this](int r, Buffer& dst, const Buffer& src) {
            // Non-resident ranks stage a phantom (size-only) block: the
            // skew/shift permutes still need correct byte counts from it,
            // but its lanes never feed a sweep in this process.
            if (vc_.resident(r)) {
              vmpi::detail::assign_visitor(dst, src);
            } else {
              vmpi::detail::phantom_assign(dst, src);
            }
          },
          plane_.get());
    } else {
      for (int r = 0; r < cfg_.p; ++r) {
        if (vc_.resident(r)) {
          carried_[static_cast<std::size_t>(r)] = resident_[static_cast<std::size_t>(r)];
        } else {
          vmpi::detail::phantom_assign(carried_[static_cast<std::size_t>(r)],
                                       resident_[static_cast<std::size_t>(r)]);
        }
      }
    }
    const auto& geom = cfg_.geometry;
    deltas_.resize(static_cast<std::size_t>(cfg_.c));
    for (int k = 0; k < cfg_.c; ++k) deltas_[static_cast<std::size_t>(k)] = geom.slot_offset(k);
    fill_sources(deltas_);
    vmpi::permute_buffers(vc_, [this](int r) { return src_[static_cast<std::size_t>(r)]; },
                          carried_, scratch_, &Policy::bytes, vmpi::Phase::Skew,
                          /*shift_phase=*/false);
  }

  void shift_to_slot(int j) {
    const auto& geom = cfg_.geometry;
    // Row k walks slots k, k+c, ... — displacement between consecutive
    // slots is uniform per row per step, so one permutation round suffices.
    deltas_.resize(static_cast<std::size_t>(cfg_.c));
    for (int k = 0; k < cfg_.c; ++k) {
      const TeamOffset prev = geom.slot_offset(k + cfg_.c * (j - 1));
      const TeamOffset next = geom.slot_offset(k + cfg_.c * j);
      deltas_[static_cast<std::size_t>(k)] = {next.x - prev.x, next.y - prev.y, next.z - prev.z};
    }
    fill_sources(deltas_);
    vmpi::permute_buffers(vc_, [this](int r) { return src_[static_cast<std::size_t>(r)]; },
                          carried_, scratch_, &Policy::bytes, vmpi::Phase::Shift,
                          /*shift_phase=*/true);
  }

  void interact_slot(int j) {
    const auto& geom = cfg_.geometry;
    const int qx = geom.qx();
    const int qy = geom.qy();
    const int qz = geom.qz();
    const int q = geom.teams();
    // Per-row slot geometry, computed once per step (rows_ is persistent
    // scratch: the per-slot loops must not allocate in steady state).
    rows_.resize(static_cast<std::size_t>(cfg_.c));
    for (int k = 0; k < cfg_.c; ++k) {
      const int s = k + cfg_.c * j;
      auto& rs = rows_[static_cast<std::size_t>(k)];
      rs.in_window = geom.slot_in_window(s);
      rs.off = geom.slot_offset(s);
      rs.self = rs.off == TeamOffset{};
    }
    auto rank_body = [&](int r) {
      const auto& rs = rows_[static_cast<std::size_t>(r / q)];
      if (!rs.in_window) return;
      if (!cfg_.periodic) {
        const int ox = tx_[static_cast<std::size_t>(r)] + rs.off.x;
        const int oy = ty_[static_cast<std::size_t>(r)] + rs.off.y;
        const int oz = tz_[static_cast<std::size_t>(r)] + rs.off.z;
        if (ox < 0 || ox >= qx || oy < 0 || oy >= qy || oz < 0 || oz >= qz) return;
      }
      if (!vc_.resident(r)) {
        // Owner-computes: charge the owner's sweep from block sizes alone
        // (non-resident sizes are maintained by every primitive) and skip
        // the physics; on_sweep is deliberately NOT called so canb_sweep_*
        // counters document the pairs this process actually executed.
        const auto nr = Policy::count(resident_[static_cast<std::size_t>(r)]);
        const auto nc = Policy::count(carried_[static_cast<std::size_t>(r)]);
        const std::uint64_t examined = nr * nc - (rs.self ? nr : 0);
        vc_.charge_interactions(r, static_cast<double>(examined));
        return;
      }
      const auto stats = policy_.interact(resident_[static_cast<std::size_t>(r)],
                                          carried_[static_cast<std::size_t>(r)], rs.self);
      // Per-rank ledger rows and telemetry sweep slots are disjoint: safe
      // across pool threads in any execution order, so both static and
      // stealing schedules leave every artifact bitwise identical.
      vc_.charge_interactions(r, static_cast<double>(stats.examined));
      if (telem_ != nullptr && telem_->enabled())
        telem_->on_sweep(r, stats.examined, stats.computed, stats.half_sweep);
    };
    if (pool_) {
      // Cost hints: the spatial interaction histogram (resident x carried
      // block sizes) per rank. Clustered distributions skew these by orders
      // of magnitude — exactly what the stealing partition corrects.
      cost_.resize(static_cast<std::size_t>(cfg_.p));
      for (int r = 0; r < cfg_.p; ++r) {
        const auto& rs = rows_[static_cast<std::size_t>(r / q)];
        cost_[static_cast<std::size_t>(r)] =
            rs.in_window && vc_.resident(r)
                ? static_cast<double>(Policy::count(resident_[static_cast<std::size_t>(r)])) *
                      static_cast<double>(Policy::count(carried_[static_cast<std::size_t>(r)]))
                : 0.0;
      }
      pool_->parallel_tasks(cfg_.p, [&](int r, int) { rank_body(r); }, cost_.data());
    } else {
      for (int r = 0; r < cfg_.p; ++r) rank_body(r);
    }
  }

  void post_integrate() {
    for (int t = 0; t < grid_.cols(); ++t) {
      const int leader = grid_.leader(t);
      auto& block = resident_[static_cast<std::size_t>(leader)];
      if constexpr (!Policy::kIsPhantom) {
        if (vc_.resident(leader)) policy_.post_force(*integrator_, block);
      }
      // The integration charge stays replicated for every leader — the
      // virtual cost plane is identical on all processes by construction.
      vc_.advance(leader, vmpi::Phase::Compute,
                  cfg_.machine.gamma_flop * kIntegrateFlopsPerParticle *
                      static_cast<double>(Policy::count(block)));
    }
  }

  // --- re-assignment (spatial decomposition maintenance) ------------------
  void reassign() {
    reassign_spatial(vc_, grid_, cfg_.geometry, policy_, resident_, cfg_.machine, plane_.get());
  }

  Config cfg_;
  Policy policy_;
  vmpi::Grid2d grid_;
  vmpi::VirtualComm vc_;
  std::unique_ptr<particles::Integrator> integrator_;
  /// Per-row slot geometry for the current interaction slot.
  struct RowSlot {
    bool in_window = false;
    bool self = false;
    TeamOffset off{};
  };

  std::shared_ptr<ThreadPool> pool_;
  std::shared_ptr<vmpi::DataPlane<Buffer>> plane_ = std::make_shared<vmpi::DataPlane<Buffer>>();
  obs::Telemetry* telem_ = nullptr;
  std::vector<Buffer> resident_;
  std::vector<Buffer> carried_;
  std::vector<Buffer> scratch_;
  std::vector<int> tx_;   ///< per-rank team x coordinate (cached)
  std::vector<int> ty_;   ///< per-rank team y coordinate (cached)
  std::vector<int> tz_;   ///< per-rank team z coordinate (cached)
  std::vector<int> src_;  ///< per-step receive-from permutation (scratch)
  std::vector<TeamOffset> deltas_;  ///< per-row displacement scratch
  std::vector<double> cost_;        ///< per-rank sweep cost hints (scratch)
  std::vector<RowSlot> rows_;       ///< per-row slot-geometry scratch
  int slots_ = 0;
};

}  // namespace canb::core
