// Geometry of distance-limited interactions (Sections IV-A and IV-C).
//
// Teams own contiguous spatial regions. The interaction *window* of a team
// is the set of block offsets it must see: [-m, m] in 1D (2m+1 slots), the
// (2mx+1)x(2my+1) neighborhood in 2D, and the full (2m+1)^3 box in 3D —
// the paper's generalization: "we recommend linearizing the
// high-dimensional space, calculating shifts in 1D, and mapping the
// pattern back into the original space" (Section IV-C). Replication row k
// walks slots k, k+c, k+2c, ... of the row-major linearization so the c
// rows cover the window together. When c does not divide the window size
// the last slots of some rows fall outside it — those ranks idle for that
// step (padding), exactly like a real implementation.
//
// Under reflective (non-periodic) boundaries, offsets that leave the team
// grid are invalid: the ring transport still carries the wrapped block but
// the receiving rank must not interact with it. This is the source of the
// boundary load imbalance the paper reports (Section IV-D2).
#pragma once

#include <utility>

#include "support/assert.hpp"

namespace canb::core {

/// A displacement in the (up to 3-dimensional) team grid.
struct TeamOffset {
  int x = 0;
  int y = 0;
  int z = 0;
  bool operator==(const TeamOffset&) const = default;
};

/// Back-compat alias: the 2D engines predate the 3D generalization.
using Offset2 = TeamOffset;

class CutoffGeometry {
 public:
  /// 1D: q teams in a row, window radius m teams each side.
  static CutoffGeometry make_1d(int q, int m);
  /// 2D: qx-by-qy teams, window radius mx/my teams per axis.
  static CutoffGeometry make_2d(int qx, int qy, int mx, int my);
  /// 3D: qx-by-qy-by-qz teams (Section IV-C: "a grid of the same
  /// dimensionality" as the simulation space).
  static CutoffGeometry make_3d(int qx, int qy, int qz, int mx, int my, int mz);

  int dims() const noexcept { return dims_; }
  int teams() const noexcept { return qx_ * qy_ * qz_; }
  int qx() const noexcept { return qx_; }
  int qy() const noexcept { return qy_; }
  int qz() const noexcept { return qz_; }
  int mx() const noexcept { return mx_; }
  int my() const noexcept { return my_; }
  int mz() const noexcept { return mz_; }

  /// Number of valid window slots: prod over axes of (2m+1).
  int window() const noexcept { return (2 * mx_ + 1) * (2 * my_ + 1) * (2 * mz_ + 1); }

  /// Slots per replication row for replication factor c: ceil(window / c).
  int slots_per_row(int c) const noexcept { return (window() + c - 1) / c; }

  /// Block offset of slot s (s may exceed window() for padding slots; the
  /// returned offset then falls outside the window and is reported invalid).
  TeamOffset slot_offset(int s) const noexcept {
    const int wx = 2 * mx_ + 1;
    const int wy = 2 * my_ + 1;
    return {s % wx - mx_, (s / wx) % wy - my_, s / (wx * wy) - mz_};
  }

  /// True iff slot s addresses a real window offset.
  bool slot_in_window(int s) const noexcept { return s >= 0 && s < window(); }

  /// Inverse of slot_offset for offsets inside the window; -1 outside.
  int slot_of(TeamOffset off) const noexcept {
    if (off.x < -mx_ || off.x > mx_ || off.y < -my_ || off.y > my_ || off.z < -mz_ ||
        off.z > mz_) {
      return -1;
    }
    const int wx = 2 * mx_ + 1;
    const int wy = 2 * my_ + 1;
    return ((off.z + mz_) * wy + (off.y + my_)) * wx + (off.x + mx_);
  }

  /// Slot whose offset is (0,0,0) — the team's own block.
  int center_slot() const noexcept {
    const int wx = 2 * mx_ + 1;
    const int wy = 2 * my_ + 1;
    return (mz_ * wy + my_) * wx + mx_;
  }

  /// Team column reached from `col` by `off`, wrapping per-axis (transport
  /// is a torus regardless of the physical boundary condition).
  int wrap_team(int col, TeamOffset off) const noexcept {
    int tx = (col % qx_ + off.x) % qx_;
    if (tx < 0) tx += qx_;
    int ty = ((col / qx_) % qy_ + off.y) % qy_;
    if (ty < 0) ty += qy_;
    int tz = (col / (qx_ * qy_) + off.z) % qz_;
    if (tz < 0) tz += qz_;
    return (tz * qy_ + ty) * qx_ + tx;
  }

  /// True iff `col` offset by `off` stays inside the (non-wrapping) team
  /// grid — required for interaction validity under reflective boundaries.
  bool in_bounds(int col, TeamOffset off) const noexcept {
    const int tx = col % qx_ + off.x;
    const int ty = (col / qx_) % qy_ + off.y;
    const int tz = col / (qx_ * qy_) + off.z;
    return tx >= 0 && tx < qx_ && ty >= 0 && ty < qy_ && tz >= 0 && tz < qz_;
  }

  /// Whether a rank at (replication row, team col) interacts at loop
  /// iteration j: the slot must be in-window and, if not periodic, in
  /// bounds. Also reports whether it is the self-block slot.
  struct SlotInfo {
    bool valid = false;
    bool self = false;
    TeamOffset offset{};
  };
  SlotInfo slot_info(int row, int col, int j, int c, bool periodic) const noexcept {
    const int s = row + c * j;
    if (!slot_in_window(s)) return {};
    const TeamOffset off = slot_offset(s);
    if (!periodic && !in_bounds(col, off)) return {false, false, off};
    return {true, off == TeamOffset{}, off};
  }

 private:
  CutoffGeometry(int dims, int qx, int qy, int qz, int mx, int my, int mz);
  int dims_;
  int qx_;
  int qy_;
  int qz_;
  int mx_;
  int my_;
  int mz_;
};

/// Window radius in teams spanned by cutoff `rc` in a box of length `len`
/// split into `q` segments (Equation 6 rearranged: m = rc * q / len).
int window_radius_teams(double rc, double len, int q);

}  // namespace canb::core
