// Host-side sweep autotuning.
//
// core::Autotuner picks the replication factor c by evaluating candidate
// schedules on the *virtual* machine model. HostTuner is its host-side
// sibling: it picks the knobs that change only host wall time — kernel
// engine, N3L half-sweep on/off, sweep tile width, SIMD backend, and host
// thread count — by running a short calibration sweep on real particle
// blocks and timing it. Nothing here reads or writes the virtual cost
// model; applying any choice this tuner makes leaves ledgers, traces, and
// trajectories exactly as documented in batched_engine.hpp (bitwise for
// everything except the opt-in fast paths, which the tuner never enables).
//
// Decisions persist to a small JSON cache keyed by CPU + build
// (TuningCache), so repeat runs skip the calibration; a key mismatch
// silently discards the file rather than applying another machine's
// numbers.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "particles/batched_engine.hpp"
#include "particles/init.hpp"
#include "particles/kernels.hpp"
#include "particles/simd/simd.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace canb::core {

/// One persisted tuning decision for a (kernel, block size) on this
/// machine + build.
struct HostTuneEntry {
  std::string kernel;
  std::uint64_t n = 0;
  std::string engine = "batched";
  std::uint64_t tile = particles::BatchedEngine::kTileWidth;
  bool half_sweep = true;
  int threads = 1;
  std::string backend = "scalar";
  double pairs_per_sec = 0.0;  ///< measured throughput of the choice
};

/// The JSON tuning cache. Format (docs/TUNING.md):
///   { "schema": "canb-host-tuning-v1", "machine": "...", "build": "...",
///     "entries": [ { "kernel": ..., "n": ..., ... } ] }
class TuningCache {
 public:
  static constexpr const char* kSchema = "canb-host-tuning-v1";

  /// CPU identity: /proc/cpuinfo model name (or "unknown-cpu") plus the
  /// widest SIMD backend, so a binary migrated to a narrower machine
  /// re-tunes instead of requesting unsupported lanes.
  static std::string machine_key();
  /// Compiler identity (__VERSION__ + pointer width): a rebuild with a
  /// different toolchain re-tunes.
  static std::string build_key();

  /// Loads `path`. A missing file, a parse problem, or a schema/machine/
  /// build key mismatch all yield an EMPTY cache carrying the current
  /// keys — stale or foreign entries are never applied.
  static TuningCache load_or_empty(const std::string& path);

  /// Writes the cache as JSON; false on I/O failure.
  bool save(const std::string& path) const;

  const HostTuneEntry* find(std::string_view kernel, std::uint64_t n) const;
  /// Upserts by (kernel, n).
  void put(HostTuneEntry e);

  const std::vector<HostTuneEntry>& entries() const noexcept { return entries_; }
  const std::string& machine() const noexcept { return machine_; }
  const std::string& build() const noexcept { return build_; }

 private:
  std::string machine_ = machine_key();
  std::string build_ = build_key();
  std::vector<HostTuneEntry> entries_;
};

/// A tuning decision in applied form. The caller is responsible for
/// installing it (policy config engine/tuning, simd::set_backend, host
/// pool size) — the tuner itself restores all global state after
/// calibration.
struct HostTuneChoice {
  particles::KernelEngine engine = particles::KernelEngine::Batched;
  particles::SweepTuning tuning{};
  particles::simd::Backend backend = particles::simd::Backend::Scalar;
  int threads = 1;
  double pairs_per_sec = 0.0;
  bool from_cache = false;
};

HostTuneChoice choice_from_entry(const HostTuneEntry& e);
HostTuneEntry entry_from_choice(std::string kernel, std::uint64_t n, const HostTuneChoice& c);

template <particles::ForceKernel K>
class HostTuner {
 public:
  struct Config {
    particles::Box box = particles::Box::reflective_2d(1.0);
    K kernel{};
    double cutoff = 0.0;
    std::uint64_t n = 1024;        ///< representative per-block particle count
    double sample_seconds = 0.01;  ///< min measured wall time per candidate
    int max_threads = 0;           ///< thread candidates up to this (0 = hardware)
    std::uint64_t seed = 1234;     ///< calibration particle placement
  };

  struct Candidate {
    std::string name;  ///< e.g. "batched/half/tile128/avx2"
    HostTuneChoice choice;
  };

  struct Result {
    HostTuneChoice best;
    /// Every sweep candidate measured, in trial order; empty when the
    /// result was served from a cache.
    std::vector<Candidate> candidates;
  };

  explicit HostTuner(Config cfg) : cfg_(std::move(cfg)) {
    CANB_REQUIRE(cfg_.n >= 2, "host tuner needs at least 2 particles");
    cfg_.box.validate();
  }

  /// Runs the calibration sweep. Global SIMD dispatch state is saved and
  /// restored; the returned choice is NOT installed.
  Result tune() const {
    namespace simd = particles::simd;
    const simd::Backend saved_backend = simd::active();
    const bool saved_fast = simd::fast_rsqrt();
    simd::set_fast_rsqrt(false);  // calibration never times the opt-in path

    const int n = static_cast<int>(cfg_.n);
    particles::Block block = particles::init_uniform(n, cfg_.box, cfg_.seed);
    const double pairs = static_cast<double>(cfg_.n) * static_cast<double>(cfg_.n - 1);

    Result result;
    double best = -1.0;
    const auto consider = [&](std::string name, HostTuneChoice choice) {
      const double sec = time_sweep(block, choice);
      choice.pairs_per_sec = pairs / sec;
      if (best < 0.0 || choice.pairs_per_sec > best) {
        best = choice.pairs_per_sec;
        result.best = choice;
      }
      result.candidates.push_back({std::move(name), choice});
    };

    {
      HostTuneChoice scalar;
      scalar.engine = particles::KernelEngine::Scalar;
      scalar.backend = simd::Backend::Scalar;
      consider("scalar", scalar);
    }
    const std::size_t tiles[] = {32, particles::BatchedEngine::kTileWidth};
    for (const bool half : {false, true}) {
      for (const std::size_t tile : tiles) {
        for (int b = 0; b <= static_cast<int>(simd::max_supported()); ++b) {
          HostTuneChoice c;
          c.engine = particles::KernelEngine::Batched;
          c.tuning.half_sweep = half;
          c.tuning.tile = tile;
          c.backend = static_cast<simd::Backend>(b);
          consider(std::string("batched/") + (half ? "half" : "full") + "/tile" +
                       std::to_string(tile) + "/" + simd::backend_name(c.backend),
                   c);
        }
      }
    }

    result.best.threads = tune_threads(result.best);

    simd::set_backend(saved_backend);
    simd::set_fast_rsqrt(saved_fast);
    return result;
  }

  /// Cache-aware entry point. When `force` is false and the cache holds an
  /// entry for (kernel, n), that entry is returned without measuring;
  /// otherwise a calibration runs and its winner is upserted into `cache`
  /// (the caller persists it with TuningCache::save).
  Result tune_with_cache(TuningCache& cache, bool force = false) const {
    if (!force) {
      if (const HostTuneEntry* e = cache.find(K::kName, cfg_.n)) {
        Result r;
        r.best = choice_from_entry(*e);
        return r;
      }
    }
    Result r = tune();
    cache.put(entry_from_choice(K::kName, cfg_.n, r.best));
    return r;
  }

  const Config& config() const noexcept { return cfg_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Seconds per self-sweep of the calibration block under `choice`
  /// (backend installed for the duration of the measurement).
  double time_sweep(particles::Block& block, const HostTuneChoice& choice) const {
    particles::simd::set_backend(choice.backend);
    particles::SweepScratch scratch;
    const auto call = [&] {
      particles::accumulate_forces_with(
          choice.engine, std::span<particles::Particle>(block),
          std::span<const particles::Particle>(block), cfg_.box, cfg_.kernel, cfg_.cutoff,
          &scratch, choice.tuning);
    };
    return time_call(call, cfg_.sample_seconds);
  }

  /// Picks the host thread count: R independent block sweeps (the engines'
  /// per-rank loop shape) across a pool of T threads, for T in powers of
  /// two up to max_threads. Serial wins on a serial machine.
  int tune_threads(const HostTuneChoice& sweep_choice) const {
    int hw = cfg_.max_threads;
    if (hw <= 0) hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw <= 1) return 1;
    particles::simd::set_backend(sweep_choice.backend);

    const int blocks = std::max(4, 2 * hw);
    // Smaller per-rank blocks keep the thread calibration cheap; relative
    // scaling, not absolute throughput, is what this measurement ranks.
    const int bn = static_cast<int>(std::min<std::uint64_t>(cfg_.n, 512));
    std::vector<particles::Block> ranks;
    std::vector<particles::SweepScratch> scratch(static_cast<std::size_t>(blocks));
    ranks.reserve(static_cast<std::size_t>(blocks));
    for (int r = 0; r < blocks; ++r)
      ranks.push_back(particles::init_uniform(bn, cfg_.box, cfg_.seed + 7919u * (r + 1)));

    int best_t = 1;
    double best_rate = -1.0;
    for (int t = 1; t <= hw; t = t < hw && 2 * t > hw ? hw : 2 * t) {
      ThreadPool pool(t);
      const auto call = [&] {
        pool.parallel_for_chunks(0, blocks, [&](int b, int e) {
          for (int r = b; r < e; ++r) {
            auto& blk = ranks[static_cast<std::size_t>(r)];
            particles::accumulate_forces_with(
                sweep_choice.engine, std::span<particles::Particle>(blk),
                std::span<const particles::Particle>(blk), cfg_.box, cfg_.kernel,
                cfg_.cutoff, &scratch[static_cast<std::size_t>(r)], sweep_choice.tuning);
          }
        });
      };
      const double sec = time_call(call, cfg_.sample_seconds);
      const double rate = 1.0 / sec;
      if (rate > best_rate) {
        best_rate = rate;
        best_t = t;
      }
    }
    return best_t;
  }

  template <class F>
  static double time_call(const F& f, double min_seconds) {
    f();  // warm caches and code
    int reps = 1;
    for (;;) {
      const auto t0 = Clock::now();
      for (int i = 0; i < reps; ++i) f();
      const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
      if (dt >= min_seconds) return dt / reps;
      const int grown = dt <= 0.0 ? reps * 8
                                  : static_cast<int>(static_cast<double>(reps) *
                                                     (min_seconds / dt) * 1.25) +
                                        1;
      reps = std::min(grown, reps * 16);
    }
  }

  Config cfg_;
};

}  // namespace canb::core
