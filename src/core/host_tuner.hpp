// Host-side sweep autotuning.
//
// core::Autotuner picks the replication factor c by evaluating candidate
// schedules on the *virtual* machine model. HostTuner is its host-side
// sibling: it picks the knobs that change only host wall time — kernel
// engine, N3L half-sweep on/off, sweep tile width, SIMD backend, and host
// thread count — by running a short calibration sweep on real particle
// blocks and timing it. Nothing here reads or writes the virtual cost
// model; applying any choice this tuner makes leaves ledgers, traces, and
// trajectories exactly as documented in batched_engine.hpp (bitwise for
// everything except the opt-in fast paths, which the tuner never enables).
//
// Decisions persist to a small JSON cache keyed by CPU + build
// (TuningCache), so repeat runs skip the calibration; a key mismatch
// silently discards the file rather than applying another machine's
// numbers.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "machine/machine_model.hpp"
#include "particles/batched_engine.hpp"
#include "particles/init.hpp"
#include "particles/kernels.hpp"
#include "particles/simd/simd.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace canb::core {

/// One persisted tuning decision for a (kernel, block size, distribution)
/// on this machine + build.
struct HostTuneEntry {
  std::string kernel;
  std::uint64_t n = 0;
  std::string engine = "batched";
  std::uint64_t tile = particles::BatchedEngine::kTileWidth;
  bool half_sweep = true;
  int threads = 1;
  std::string backend = "scalar";
  /// Host scheduler over per-rank/per-cell tasks: "static" or "stealing"
  /// (support/parallel.hpp). Execution order only — results are bitwise
  /// identical either way, so applying a cached value is always safe.
  std::string sched = "static";
  int steal_grain = 1;  ///< tasks clipped per steal under "stealing"
  /// Block-size ceiling for the inlined lane pipeline on exact-lane
  /// kernels (particles/batched_engine.hpp kInlineLaneMax). Persisted so a
  /// hand-tuned override survives; the tuner itself keeps the seeded
  /// default rather than spending calibration time on it.
  std::uint64_t inline_lane_max = particles::BatchedEngine::kInlineLaneMax;
  /// Workload shape the entry was calibrated on ("uniform", "plummer",
  /// "ring", "clusters"): clustered inputs pick different schedulers than
  /// uniform ones, so the cache keys on it.
  std::string distribution = "uniform";
  double pairs_per_sec = 0.0;  ///< measured throughput of the choice
};

/// The JSON tuning cache. Format (docs/TUNING.md):
///   { "schema": "canb-host-tuning-v2", "machine": "...", "build": "...",
///     "entries": [ { "kernel": ..., "n": ..., ... } ] }
/// v1 files (no scheduler/distribution fields) fail the schema check and
/// are discarded whole — the cost is one re-tune, never a misapplied knob.
class TuningCache {
 public:
  static constexpr const char* kSchema = "canb-host-tuning-v2";

  /// CPU identity: /proc/cpuinfo model name (or "unknown-cpu") plus the
  /// widest SIMD backend, so a binary migrated to a narrower machine
  /// re-tunes instead of requesting unsupported lanes.
  static std::string machine_key();
  /// Compiler identity (__VERSION__ + pointer width): a rebuild with a
  /// different toolchain re-tunes.
  static std::string build_key();

  /// Loads `path`. A missing file, a parse problem, or a schema/machine/
  /// build key mismatch all yield an EMPTY cache carrying the current
  /// keys — stale or foreign entries are never applied.
  static TuningCache load_or_empty(const std::string& path);

  /// Writes the cache as JSON; false on I/O failure.
  bool save(const std::string& path) const;

  const HostTuneEntry* find(std::string_view kernel, std::uint64_t n,
                            std::string_view distribution = "uniform") const;
  /// Upserts by (kernel, n, distribution).
  void put(HostTuneEntry e);

  const std::vector<HostTuneEntry>& entries() const noexcept { return entries_; }
  const std::string& machine() const noexcept { return machine_; }
  const std::string& build() const noexcept { return build_; }

 private:
  std::string machine_ = machine_key();
  std::string build_ = build_key();
  std::vector<HostTuneEntry> entries_;
};

/// A tuning decision in applied form. The caller is responsible for
/// installing it (policy config engine/tuning, simd::set_backend, host
/// pool size) — the tuner itself restores all global state after
/// calibration.
struct HostTuneChoice {
  particles::KernelEngine engine = particles::KernelEngine::Batched;
  particles::SweepTuning tuning{};
  particles::simd::Backend backend = particles::simd::Backend::Scalar;
  int threads = 1;
  /// Scheduler for the host pool's task loops. Advisory like `threads`:
  /// the caller installs it on the pool it attaches (set_sched_mode /
  /// set_steal_grain). Never changes results, only execution order.
  SchedMode sched = SchedMode::kStatic;
  int steal_grain = 1;
  double pairs_per_sec = 0.0;
  bool from_cache = false;
};

HostTuneChoice choice_from_entry(const HostTuneEntry& e);
HostTuneEntry entry_from_choice(std::string kernel, std::uint64_t n, std::string distribution,
                                const HostTuneChoice& c);

/// Bridges host calibration into the virtual cost model: replaces the
/// model's per-interaction compute constant with the measured sweep rate,
/// gamma = 1 / pairs_per_sec. With this, core::Autotuner's c-choice weighs
/// communication against the compute throughput this machine actually
/// delivers instead of the preset's nominal constant. Returns `model`
/// unchanged when the choice carries no measurement.
machine::MachineModel with_measured_gamma(machine::MachineModel model,
                                          const HostTuneChoice& choice);

template <particles::ForceKernel K>
class HostTuner {
 public:
  struct Config {
    particles::Box box = particles::Box::reflective_2d(1.0);
    K kernel{};
    double cutoff = 0.0;
    std::uint64_t n = 1024;        ///< representative per-block particle count
    double sample_seconds = 0.01;  ///< min measured wall time per candidate
    int max_threads = 0;           ///< thread candidates up to this (0 = hardware)
    std::uint64_t seed = 1234;     ///< calibration particle placement
    /// Workload shape to calibrate on: "uniform" (default), "plummer",
    /// "ring", or "clusters". Shapes the calibration block AND the skew of
    /// the scheduler trial's per-task loads, and keys the cache entry.
    std::string distribution = "uniform";
  };

  struct Candidate {
    std::string name;  ///< e.g. "batched/half/tile128/avx2"
    HostTuneChoice choice;
  };

  struct Result {
    HostTuneChoice best;
    /// Every sweep candidate measured, in trial order; empty when the
    /// result was served from a cache.
    std::vector<Candidate> candidates;
  };

  explicit HostTuner(Config cfg) : cfg_(std::move(cfg)) {
    CANB_REQUIRE(cfg_.n >= 2, "host tuner needs at least 2 particles");
    cfg_.box.validate();
  }

  /// Runs the calibration sweep. Global SIMD dispatch state is saved and
  /// restored; the returned choice is NOT installed.
  Result tune() const {
    namespace simd = particles::simd;
    const simd::Backend saved_backend = simd::active();
    const bool saved_fast = simd::fast_rsqrt();
    simd::set_fast_rsqrt(false);  // calibration never times the opt-in path

    const int n = static_cast<int>(cfg_.n);
    particles::Block block = make_block(n);
    const double pairs = static_cast<double>(cfg_.n) * static_cast<double>(cfg_.n - 1);

    Result result;
    double best = -1.0;
    const auto consider = [&](std::string name, HostTuneChoice choice) {
      const double sec = time_sweep(block, choice);
      choice.pairs_per_sec = pairs / sec;
      if (best < 0.0 || choice.pairs_per_sec > best) {
        best = choice.pairs_per_sec;
        result.best = choice;
      }
      result.candidates.push_back({std::move(name), choice});
    };

    {
      HostTuneChoice scalar;
      scalar.engine = particles::KernelEngine::Scalar;
      scalar.backend = simd::Backend::Scalar;
      consider("scalar", scalar);
    }
    const std::size_t tiles[] = {32, particles::BatchedEngine::kTileWidth};
    for (const bool half : {false, true}) {
      for (const std::size_t tile : tiles) {
        for (int b = 0; b <= static_cast<int>(simd::max_supported()); ++b) {
          HostTuneChoice c;
          c.engine = particles::KernelEngine::Batched;
          c.tuning.half_sweep = half;
          c.tuning.tile = tile;
          c.backend = static_cast<simd::Backend>(b);
          consider(std::string("batched/") + (half ? "half" : "full") + "/tile" +
                       std::to_string(tile) + "/" + simd::backend_name(c.backend),
                   c);
        }
      }
    }

    result.best.threads = tune_threads(result.best);
    tune_sched(result.best);

    simd::set_backend(saved_backend);
    simd::set_fast_rsqrt(saved_fast);
    return result;
  }

  /// Cache-aware entry point. When `force` is false and the cache holds an
  /// entry for (kernel, n), that entry is returned without measuring;
  /// otherwise a calibration runs and its winner is upserted into `cache`
  /// (the caller persists it with TuningCache::save).
  Result tune_with_cache(TuningCache& cache, bool force = false) const {
    if (!force) {
      if (const HostTuneEntry* e = cache.find(K::kName, cfg_.n, cfg_.distribution)) {
        Result r;
        r.best = choice_from_entry(*e);
        return r;
      }
    }
    Result r = tune();
    cache.put(entry_from_choice(K::kName, cfg_.n, cfg_.distribution, r.best));
    return r;
  }

  const Config& config() const noexcept { return cfg_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Calibration particles shaped per Config::distribution. Unknown names
  /// fall back to uniform (the tuner must never fail a run over a label).
  particles::Block make_block(int n) const {
    if (cfg_.distribution == "plummer")
      return particles::init_plummer(n, cfg_.box, 0.1, cfg_.seed);
    if (cfg_.distribution == "ring")
      return particles::init_ring(n, cfg_.box, 0.35, 0.05, cfg_.seed);
    if (cfg_.distribution == "clusters")
      return particles::init_clusters(n, cfg_.box, 4, 0.05, cfg_.seed);
    return particles::init_uniform(n, cfg_.box, cfg_.seed);
  }

  /// Seconds per self-sweep of the calibration block under `choice`
  /// (backend installed for the duration of the measurement).
  double time_sweep(particles::Block& block, const HostTuneChoice& choice) const {
    particles::simd::set_backend(choice.backend);
    particles::SweepScratch scratch;
    const auto call = [&] {
      particles::accumulate_forces_with(
          choice.engine, std::span<particles::Particle>(block),
          std::span<const particles::Particle>(block), cfg_.box, cfg_.kernel, cfg_.cutoff,
          &scratch, choice.tuning);
    };
    return time_call(call, cfg_.sample_seconds);
  }

  /// Picks the host thread count: R independent block sweeps (the engines'
  /// per-rank loop shape) across a pool of T threads, for T in powers of
  /// two up to max_threads. Serial wins on a serial machine.
  int tune_threads(const HostTuneChoice& sweep_choice) const {
    int hw = cfg_.max_threads;
    if (hw <= 0) hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw <= 1) return 1;
    particles::simd::set_backend(sweep_choice.backend);

    const int blocks = std::max(4, 2 * hw);
    // Smaller per-rank blocks keep the thread calibration cheap; relative
    // scaling, not absolute throughput, is what this measurement ranks.
    const int bn = static_cast<int>(std::min<std::uint64_t>(cfg_.n, 512));
    std::vector<particles::Block> ranks;
    std::vector<particles::SweepScratch> scratch(static_cast<std::size_t>(blocks));
    ranks.reserve(static_cast<std::size_t>(blocks));
    for (int r = 0; r < blocks; ++r)
      ranks.push_back(particles::init_uniform(bn, cfg_.box, cfg_.seed + 7919u * (r + 1)));

    int best_t = 1;
    double best_rate = -1.0;
    for (int t = 1; t <= hw; t = t < hw && 2 * t > hw ? hw : 2 * t) {
      ThreadPool pool(t);
      const auto call = [&] {
        pool.parallel_for_chunks(0, blocks, [&](int b, int e) {
          for (int r = b; r < e; ++r) {
            auto& blk = ranks[static_cast<std::size_t>(r)];
            particles::accumulate_forces_with(
                sweep_choice.engine, std::span<particles::Particle>(blk),
                std::span<const particles::Particle>(blk), cfg_.box, cfg_.kernel,
                cfg_.cutoff, &scratch[static_cast<std::size_t>(r)], sweep_choice.tuning);
          }
        });
      };
      const double sec = time_call(call, cfg_.sample_seconds);
      const double rate = 1.0 / sec;
      if (rate > best_rate) {
        best_rate = rate;
        best_t = t;
      }
    }
    return best_t;
  }

  /// Picks the scheduler (static vs stealing, and the steal grain) by
  /// timing parallel_tasks over x-slab sub-blocks of a distribution-shaped
  /// workload — the same task shape and cost-hint skew the engines submit.
  /// Serial pools keep the static default: there is nobody to steal from.
  void tune_sched(HostTuneChoice& choice) const {
    choice.sched = SchedMode::kStatic;
    choice.steal_grain = 1;
    if (choice.threads <= 1) return;
    particles::simd::set_backend(choice.backend);

    const int tasks = std::max(8, 4 * choice.threads);
    const int total = static_cast<int>(std::min<std::uint64_t>(cfg_.n * 4, 8192));
    const particles::Block all = make_block(std::max(total, 2 * tasks));
    // Slab split along x: clustered distributions concentrate most
    // particles (hence ~quadratic sweep cost) in a few slabs, which is
    // exactly the imbalance stealing exists to absorb.
    std::vector<particles::Block> slabs(static_cast<std::size_t>(tasks));
    for (const particles::Particle& p : all) {
      int s = static_cast<int>(static_cast<double>(p.px) / cfg_.box.lx *
                               static_cast<double>(tasks));
      slabs[static_cast<std::size_t>(std::clamp(s, 0, tasks - 1))].push_back(p);
    }
    std::vector<double> cost(static_cast<std::size_t>(tasks));
    for (int t = 0; t < tasks; ++t) {
      const double ns = static_cast<double>(slabs[static_cast<std::size_t>(t)].size());
      cost[static_cast<std::size_t>(t)] = ns * ns;
    }
    std::vector<particles::SweepScratch> scratch(static_cast<std::size_t>(choice.threads));

    ThreadPool pool(choice.threads);
    const auto rate_of = [&](SchedMode mode, int grain) {
      pool.set_sched_mode(mode);
      pool.set_steal_grain(grain);
      const auto call = [&] {
        pool.parallel_tasks(
            tasks,
            [&](int t, int w) {
              auto& blk = slabs[static_cast<std::size_t>(t)];
              particles::accumulate_forces_with(
                  choice.engine, std::span<particles::Particle>(blk),
                  std::span<const particles::Particle>(blk), cfg_.box, cfg_.kernel,
                  cfg_.cutoff, &scratch[static_cast<std::size_t>(w)], choice.tuning);
            },
            cost.data());
      };
      return 1.0 / time_call(call, cfg_.sample_seconds);
    };

    double best = rate_of(SchedMode::kStatic, 1);
    for (const int grain : {1, 2, 4}) {
      const double rate = rate_of(SchedMode::kStealing, grain);
      if (rate > best) {
        best = rate;
        choice.sched = SchedMode::kStealing;
        choice.steal_grain = grain;
      }
    }
  }

  template <class F>
  static double time_call(const F& f, double min_seconds) {
    f();  // warm caches and code
    int reps = 1;
    for (;;) {
      const auto t0 = Clock::now();
      for (int i = 0; i < reps; ++i) f();
      const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
      if (dt >= min_seconds) return dt / reps;
      const int grown = dt <= 0.0 ? reps * 8
                                  : static_cast<int>(static_cast<double>(reps) *
                                                     (min_seconds / dt) * 1.25) +
                                        1;
      reps = std::min(grown, reps * 16);
    }
  }

  Config cfg_;
};

}  // namespace canb::core
