// Spatial re-assignment: after integration, particles that left their
// team's region are routed to the teams that now own them (the
// "Re-assign" series of Figure 6).
//
// Real payloads use dimension-ordered routing: repeated +/-1 neighbor
// exchanges along x, then along y, until every particle is home. Each
// round strictly reduces every misplaced particle's distance, so the loop
// terminates; with sane timesteps one round per axis suffices. Phantom
// payloads charge the modeled migration volume instead (counts are
// steady-state under the uniform-density assumption).
//
// Shared by CaCutoff and the halo-exchange spatial baseline.
#pragma once

#include <vector>

#include "core/cutoff_geometry.hpp"
#include "core/policy.hpp"
#include "decomp/partition.hpp"
#include "vmpi/virtual_comm.hpp"

namespace canb::core {

namespace detail {

/// Axis coordinate of the team that owns position (px, py) under the
/// geometry's spatial split of `box` (reads straight off position lanes).
inline int target_axis_coord(double px, double py, int axis, const CutoffGeometry& geom,
                             const particles::Box& box) {
  if (geom.dims() == 1) return decomp::team_of_1d(px, box, geom.qx());
  const int col = decomp::team_of_2d(px, py, box, geom.qx(), geom.qy());
  return axis == 0 ? col % geom.qx() : col / geom.qx();
}

/// Moves per-team lists one team along +/-axis (leaders only); receivers
/// append to their resident block. Ring transport keeps the permutation
/// total; under reflective boundaries boundary teams' outward lists are
/// empty by construction, so the wrapped messages cost nothing.
template <class Policy>
void exchange_lists(vmpi::VirtualComm& vc, const vmpi::Grid2d& grid, const CutoffGeometry& geom,
                    std::vector<typename Policy::Buffer>& lists,
                    std::vector<typename Policy::Buffer>& resident, int axis, int direction) {
  const TeamOffset off = axis == 0 ? TeamOffset{-direction, 0, 0} : TeamOffset{0, -direction, 0};
  vc.permute_step(
      vmpi::Phase::Reassign,
      [&](int r) {
        if (grid.row_of(r) != 0) return r;
        return grid.rank(0, geom.wrap_team(grid.col_of(r), off));
      },
      [&](int src) {
        if (grid.row_of(src) != 0) return 0.0;
        return static_cast<double>(
            Policy::bytes(lists[static_cast<std::size_t>(grid.col_of(src))]));
      },
      /*shift_phase=*/false);
  for (int t = 0; t < geom.teams(); ++t) {
    const int src_col = geom.wrap_team(t, off);
    auto& incoming = lists[static_cast<std::size_t>(src_col)];
    auto& blk = resident[static_cast<std::size_t>(grid.leader(t))];
    blk.append(incoming);
  }
}

template <class Policy>
void route_axis(vmpi::VirtualComm& vc, const vmpi::Grid2d& grid, const CutoffGeometry& geom,
                const particles::Box& box, std::vector<typename Policy::Buffer>& resident,
                int axis) {
  using Buffer = typename Policy::Buffer;
  const int q = geom.teams();
  const int limit = (axis == 0 ? geom.qx() : geom.qy()) + 1;
  for (int round = 0; round < limit; ++round) {
    std::vector<Buffer> plus(static_cast<std::size_t>(q));
    std::vector<Buffer> minus(static_cast<std::size_t>(q));
    bool any = false;
    for (int t = 0; t < q; ++t) {
      auto& blk = resident[static_cast<std::size_t>(grid.leader(t))];
      Buffer keep;
      keep.reserve(blk.size());
      const int here = axis == 0 ? t % geom.qx() : t / geom.qx();
      // Lane partition: ownership reads only the position lanes, and the
      // routed particles move lane-exactly via append_from (no wire-format
      // round trip on a host-local split).
      const std::size_t n = blk.size();
      for (std::size_t i = 0; i < n; ++i) {
        const int target = target_axis_coord(static_cast<double>(blk.px[i]),
                                             static_cast<double>(blk.py[i]), axis, geom, box);
        if (target > here) {
          plus[static_cast<std::size_t>(t)].append_from(blk, i);
          any = true;
        } else if (target < here) {
          minus[static_cast<std::size_t>(t)].append_from(blk, i);
          any = true;
        } else {
          keep.append_from(blk, i);
        }
      }
      blk.swap(keep);
    }
    if (!any) break;
    exchange_lists<Policy>(vc, grid, geom, plus, resident, axis, /*direction=*/+1);
    exchange_lists<Policy>(vc, grid, geom, minus, resident, axis, /*direction=*/-1);
  }
}

}  // namespace detail

/// Routes migrated particles home (real payloads) or charges the modeled
/// migration cost (phantom payloads). Leaders exchange; replicas idle.
template <class Policy>
void reassign_spatial(vmpi::VirtualComm& vc, const vmpi::Grid2d& grid,
                      const CutoffGeometry& geom, const Policy& policy,
                      std::vector<typename Policy::Buffer>& resident,
                      const machine::MachineModel& machine) {
  if constexpr (Policy::kIsPhantom) {
    const double frac = policy.config().reassign_fraction;
    if (frac <= 0.0) return;  // empty payloads send no messages
    const int faces = 2 * geom.dims();
    for (int t = 0; t < grid.cols(); ++t) {
      const int leader = grid.leader(t);
      const double cnt =
          static_cast<double>(Policy::count(resident[static_cast<std::size_t>(leader)]));
      const double bytes_total = frac * cnt * particles::kParticleBytes;
      const double per_msg = bytes_total / faces;
      double t_total = 0.0;
      for (int f = 0; f < faces; ++f) t_total += machine.p2p_time(per_msg);
      vc.advance(leader, vmpi::Phase::Reassign, t_total, static_cast<std::uint64_t>(faces),
                 static_cast<std::uint64_t>(bytes_total));
    }
  } else {
    // Real-payload routing supports the paper's evaluated dimensionalities
    // (particles carry 2D positions); 3D runs are phantom/schedule-level.
    CANB_REQUIRE(geom.dims() <= 2, "real-payload re-assignment supports 1D and 2D only");
    detail::route_axis<Policy>(vc, grid, geom, policy.box(), resident, /*axis=*/0);
    if (geom.dims() == 2)
      detail::route_axis<Policy>(vc, grid, geom, policy.box(), resident, /*axis=*/1);
  }
}

}  // namespace canb::core
