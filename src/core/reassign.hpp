// Spatial re-assignment: after integration, particles that left their
// team's region are routed to the teams that now own them (the
// "Re-assign" series of Figure 6).
//
// Real payloads use dimension-ordered routing: repeated +/-1 neighbor
// exchanges along x, then along y, until every particle is home. Each
// round strictly reduces every misplaced particle's distance, so the loop
// terminates; with sane timesteps one round per axis suffices. Phantom
// payloads charge the modeled migration volume instead (counts are
// steady-state under the uniform-density assumption).
//
// Host execution follows the data-plane convention (vmpi/primitives.hpp):
// a null DataPlane keeps the legacy per-round behavior (fresh route lists,
// keep-list rebuild); a non-null plane recycles the route lists from the
// arena and compacts each resident block IN PLACE (copy_within/truncate),
// so a steady-state round with no movers touches no particle data and
// allocates nothing. Every vc charge is issued from particle counts before
// (or independent of) the host movement, and the round structure —
// including the `any` early-exit that gates the exchange permutes — is
// decided by particle positions alone, so both arms produce bitwise
// identical ledgers, traces, and trajectories (tests/test_data_plane.cpp).
//
// Shared by CaCutoff and the halo-exchange spatial baseline.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cutoff_geometry.hpp"
#include "core/policy.hpp"
#include "decomp/partition.hpp"
#include "vmpi/buffer_pool.hpp"
#include "vmpi/primitives.hpp"
#include "vmpi/virtual_comm.hpp"

namespace canb::core {

namespace detail {

/// Axis coordinate of the team that owns position (px, py) under the
/// geometry's spatial split of `box` (reads straight off position lanes).
inline int target_axis_coord(double px, double py, int axis, const CutoffGeometry& geom,
                             const particles::Box& box) {
  if (geom.dims() == 1) return decomp::team_of_1d(px, box, geom.qx());
  const int col = decomp::team_of_2d(px, py, box, geom.qx(), geom.qy());
  return axis == 0 ? col % geom.qx() : col / geom.qx();
}

/// Moves per-team lists one team along +/-axis (leaders only); receivers
/// append to their resident block. Ring transport keeps the permutation
/// total; under reflective boundaries boundary teams' outward lists are
/// empty by construction, so the wrapped messages cost nothing. Receiving
/// teams' resident blocks are disjoint, so the appends fan across the host
/// pool when a plane is attached.
template <class Policy>
void exchange_lists(vmpi::VirtualComm& vc, const vmpi::Grid2d& grid, const CutoffGeometry& geom,
                    std::vector<typename Policy::Buffer>& lists,
                    std::vector<typename Policy::Buffer>& resident, int axis, int direction,
                    vmpi::DataPlane<typename Policy::Buffer>* plane) {
  const TeamOffset off = axis == 0 ? TeamOffset{-direction, 0, 0} : TeamOffset{0, -direction, 0};
  vc.permute_step(
      vmpi::Phase::Reassign,
      [&](int r) {
        if (grid.row_of(r) != 0) return r;
        return grid.rank(0, geom.wrap_team(grid.col_of(r), off));
      },
      [&](int src) {
        if (grid.row_of(src) != 0) return 0.0;
        return static_cast<double>(
            Policy::bytes(lists[static_cast<std::size_t>(grid.col_of(src))]));
      },
      /*shift_phase=*/false);
  vmpi::detail::HostPhaseTimer timer(vc, vmpi::Phase::Reassign);
  using Buffer = typename Policy::Buffer;
  if constexpr (wire::serializable<Buffer>) {
    // Transport arm: leader-to-leader list shipment. Self-wrapped columns
    // (reflective boundaries) and remote destinations keep the local
    // append; locally-owned destinations adopt the wire bytes.
    if (vmpi::Transport* tp = vc.transport(); tp != nullptr) {
      const std::uint64_t tag = vc.next_transport_tag();
      wire::Bytes bytes;
      for (int t = 0; t < geom.teams(); ++t) {
        const int src_col = geom.wrap_team(t, off);
        if (src_col == t) continue;
        const int src_rank = grid.leader(src_col);
        if (!tp->local(src_rank)) continue;
        wire::to_bytes(lists[static_cast<std::size_t>(src_col)], bytes);
        tp->send(src_rank, grid.leader(t), tag, bytes);
      }
      Buffer incoming{};
      for (int t = 0; t < geom.teams(); ++t) {
        const int src_col = geom.wrap_team(t, off);
        const int dst_rank = grid.leader(t);
        auto& blk = resident[static_cast<std::size_t>(dst_rank)];
        if (src_col != t && tp->local(dst_rank)) {
          tp->recv(grid.leader(src_col), dst_rank, tag, bytes);
          wire::from_bytes(incoming, bytes);
          blk.append(incoming);
        } else {
          blk.append(lists[static_cast<std::size_t>(src_col)]);
        }
      }
      return;
    }
  }
  auto body = [&](int b, int e) {
    for (int t = b; t < e; ++t) {
      const int src_col = geom.wrap_team(t, off);
      auto& incoming = lists[static_cast<std::size_t>(src_col)];
      auto& blk = resident[static_cast<std::size_t>(grid.leader(t))];
      blk.append(incoming);
    }
  };
  if (plane != nullptr) {
    plane->for_chunks(geom.teams(), body);
  } else {
    body(0, geom.teams());
  }
}

/// Splits every team's resident block into stay / move-up / move-down
/// along `axis`, filling plus/minus (one outgoing list per team). Returns
/// whether any particle moved — the decision is a pure function of
/// particle positions, identical in both host arms.
///
/// Legacy arm (plane == nullptr): rebuild a `keep` block and swap — the
/// pre-data-plane behavior, kept as the property test's reference.
/// Pooled arm: in-place compaction via copy_within/truncate — kept
/// particles shift down over vacated slots (dst <= i always, so reads
/// never see an overwritten slot), and a block with no movers is never
/// touched at all. Teams are independent, so the split fans across the
/// host pool.
template <class Policy>
bool split_teams(const vmpi::VirtualComm& vc, const vmpi::Grid2d& grid,
                 const CutoffGeometry& geom, const particles::Box& box,
                 std::vector<typename Policy::Buffer>& resident, int axis,
                 std::vector<typename Policy::Buffer>& plus,
                 std::vector<typename Policy::Buffer>& minus,
                 vmpi::DataPlane<typename Policy::Buffer>* plane) {
  using Buffer = typename Policy::Buffer;
  const int q = geom.teams();
  auto split_one = [&](int t) {
    // Owner-computes: only the owning process reads positions and splits;
    // peers learn the counts from the migration-count exchange afterwards.
    if (!vc.resident(grid.leader(t))) return;
    auto& blk = resident[static_cast<std::size_t>(grid.leader(t))];
    auto& up = plus[static_cast<std::size_t>(t)];
    auto& down = minus[static_cast<std::size_t>(t)];
    const int here = axis == 0 ? t % geom.qx() : t / geom.qx();
    const std::size_t n = blk.size();
    // Lane partition: ownership reads only the position lanes, and the
    // routed particles move lane-exactly via append_from (no wire-format
    // round trip on a host-local split).
    if constexpr (requires { blk.copy_within(std::size_t{}, std::size_t{}); }) {
      if (plane != nullptr) {
        std::size_t dst = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const int target = target_axis_coord(static_cast<double>(blk.px[i]),
                                               static_cast<double>(blk.py[i]), axis, geom, box);
          if (target > here) {
            up.append_from(blk, i);
          } else if (target < here) {
            down.append_from(blk, i);
          } else {
            if (dst != i) blk.copy_within(dst, i);
            ++dst;
          }
        }
        blk.truncate(dst);
        return;
      }
    }
    Buffer keep;
    keep.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const int target = target_axis_coord(static_cast<double>(blk.px[i]),
                                           static_cast<double>(blk.py[i]), axis, geom, box);
      if (target > here) {
        up.append_from(blk, i);
      } else if (target < here) {
        down.append_from(blk, i);
      } else {
        keep.append_from(blk, i);
      }
    }
    blk.swap(keep);
  };
  if (plane != nullptr) {
    plane->for_chunks(q, [&](int b, int e) {
      for (int t = b; t < e; ++t) split_one(t);
    });
  } else {
    for (int t = 0; t < q; ++t) split_one(t);
  }
  for (int t = 0; t < q; ++t) {
    if (Policy::count(plus[static_cast<std::size_t>(t)]) != 0 ||
        Policy::count(minus[static_cast<std::size_t>(t)]) != 0)
      return true;
  }
  return false;
}

/// Owner-computes arm: after the residency-gated split, process groups
/// agree on every team's outgoing (plus, minus) counts so that (a) the
/// round's global `any` decision matches the modeled arm exactly and (b)
/// non-owned phantom lists and resident blocks keep the sizes the cost
/// model charges from. One message per ordered group pair on a reserved
/// out-of-band tag — the exchange itself charges nothing; the virtual cost
/// of the list shipment is paid by exchange_lists' replicated permute_step,
/// exactly as in lockstep. Returns the global `any`.
template <class Policy>
bool exchange_migration_counts(vmpi::VirtualComm& vc, const vmpi::Grid2d& grid,
                               const CutoffGeometry& geom,
                               std::vector<typename Policy::Buffer>& resident,
                               std::vector<typename Policy::Buffer>& plus,
                               std::vector<typename Policy::Buffer>& minus, bool any_local) {
  vmpi::Transport* tp = vc.transport();
  if (tp == nullptr || tp->groups() <= 1) return any_local;
  const int groups = tp->groups();
  const int me = tp->group();
  const int q = geom.teams();
  const std::uint64_t tag = vc.next_reassign_count_tag();
  // Lowest rank of each group: the endpoint the counts travel between.
  std::vector<int> rep(static_cast<std::size_t>(groups), -1);
  for (int r = 0; r < grid.size(); ++r) {
    const int g = tp->owner_group(r);
    if (rep[static_cast<std::size_t>(g)] < 0) rep[static_cast<std::size_t>(g)] = r;
  }
  // Counts of my owned teams, in ascending team order. Sends go out before
  // any recv is posted; socket reader threads drain continuously, so the
  // all-to-all cannot deadlock.
  wire::Bytes bytes;
  {
    wire::Writer w(bytes);
    for (int t = 0; t < q; ++t) {
      if (tp->owner_group(grid.leader(t)) != me) continue;
      w.scalar<std::uint64_t>(Policy::count(plus[static_cast<std::size_t>(t)]));
      w.scalar<std::uint64_t>(Policy::count(minus[static_cast<std::size_t>(t)]));
    }
  }
  for (int g = 0; g < groups; ++g) {
    if (g == me) continue;
    tp->send(rep[static_cast<std::size_t>(me)], rep[static_cast<std::size_t>(g)], tag, bytes);
  }
  bool any = any_local;
  for (int g = 0; g < groups; ++g) {
    if (g == me) continue;
    tp->recv(rep[static_cast<std::size_t>(g)], rep[static_cast<std::size_t>(me)], tag, bytes);
    wire::Reader rd(bytes);
    for (int t = 0; t < q; ++t) {
      if (tp->owner_group(grid.leader(t)) != g) continue;
      const auto up = rd.scalar<std::uint64_t>();
      const auto down = rd.scalar<std::uint64_t>();
      any = any || up != 0 || down != 0;
      // Mirror the owner's split on the phantom side: the resident block
      // shrinks by the movers, the route lists take their sizes. Lanes stay
      // stale — only the lengths feed Policy::bytes/count.
      auto& blk = resident[static_cast<std::size_t>(grid.leader(t))];
      blk.truncate(blk.size() - static_cast<std::size_t>(up) - static_cast<std::size_t>(down));
      plus[static_cast<std::size_t>(t)].resize(static_cast<std::size_t>(up));
      minus[static_cast<std::size_t>(t)].resize(static_cast<std::size_t>(down));
    }
  }
  return any;
}

template <class Policy>
void route_axis(vmpi::VirtualComm& vc, const vmpi::Grid2d& grid, const CutoffGeometry& geom,
                const particles::Box& box, std::vector<typename Policy::Buffer>& resident,
                int axis, vmpi::DataPlane<typename Policy::Buffer>* plane) {
  using Buffer = typename Policy::Buffer;
  const int q = geom.teams();
  const int limit = (axis == 0 ? geom.qx() : geom.qy()) + 1;
  for (int round = 0; round < limit; ++round) {
    std::vector<Buffer> plus;
    std::vector<Buffer> minus;
    bool any = false;
    {
      vmpi::detail::HostPhaseTimer timer(vc, vmpi::Phase::Reassign);
      if (plane != nullptr) {
        plus = plane->pool.acquire_list(static_cast<std::size_t>(q));
        minus = plane->pool.acquire_list(static_cast<std::size_t>(q));
      } else {
        plus.resize(static_cast<std::size_t>(q));
        minus.resize(static_cast<std::size_t>(q));
      }
      any = split_teams<Policy>(vc, grid, geom, box, resident, axis, plus, minus, plane);
    }
    if (vc.owner_computes())
      any = exchange_migration_counts<Policy>(vc, grid, geom, resident, plus, minus, any);
    if (any) {
      exchange_lists<Policy>(vc, grid, geom, plus, resident, axis, /*direction=*/+1, plane);
      exchange_lists<Policy>(vc, grid, geom, minus, resident, axis, /*direction=*/-1, plane);
    }
    if (plane != nullptr) {
      plane->pool.release_list(std::move(plus));
      plane->pool.release_list(std::move(minus));
    }
    if (!any) break;
  }
}

}  // namespace detail

/// Routes migrated particles home (real payloads) or charges the modeled
/// migration cost (phantom payloads). Leaders exchange; replicas idle.
/// `plane` selects the host execution arm (see file comment); outputs are
/// bitwise identical either way.
template <class Policy>
void reassign_spatial(vmpi::VirtualComm& vc, const vmpi::Grid2d& grid,
                      const CutoffGeometry& geom, const Policy& policy,
                      std::vector<typename Policy::Buffer>& resident,
                      const machine::MachineModel& machine,
                      vmpi::DataPlane<typename Policy::Buffer>* plane = nullptr) {
  if constexpr (Policy::kIsPhantom) {
    const double frac = policy.config().reassign_fraction;
    if (frac <= 0.0) return;  // empty payloads send no messages
    const int faces = 2 * geom.dims();
    for (int t = 0; t < grid.cols(); ++t) {
      const int leader = grid.leader(t);
      const double cnt =
          static_cast<double>(Policy::count(resident[static_cast<std::size_t>(leader)]));
      const double bytes_total = frac * cnt * particles::kParticleBytes;
      const double per_msg = bytes_total / faces;
      double t_total = 0.0;
      for (int f = 0; f < faces; ++f) t_total += machine.p2p_time(per_msg);
      vc.advance(leader, vmpi::Phase::Reassign, t_total, static_cast<std::uint64_t>(faces),
                 static_cast<std::uint64_t>(bytes_total));
    }
  } else {
    // Real-payload routing supports the paper's evaluated dimensionalities
    // (particles carry 2D positions); 3D runs are phantom/schedule-level.
    CANB_REQUIRE(geom.dims() <= 2, "real-payload re-assignment supports 1D and 2D only");
    detail::route_axis<Policy>(vc, grid, geom, policy.box(), resident, /*axis=*/0, plane);
    if (geom.dims() == 2)
      detail::route_axis<Policy>(vc, grid, geom, policy.box(), resident, /*axis=*/1, plane);
  }
}

}  // namespace canb::core
