// The midpoint method (Section II-D; Bowers, Dror & Shaw 2006): a
// neutral-territory decomposition where "a processor computes all
// interactions for which the midpoint of the interacting particles lies in
// the processor's territory."
//
// Import region: every rank fetches neighbor blocks within HALF the cutoff
// (plus one team of slack for midpoints near region edges) — the method's
// selling point versus a plain halo exchange, which must import the full
// radius. Each pair is computed exactly once, by the unique owner of its
// midpoint, exploiting force antisymmetry (f_ba = -f_ab); contributions to
// non-local particles are scattered back to their owners in a reverse
// exchange.
//
// Real payloads only: the pair-to-owner assignment depends on positions,
// which phantom counts do not carry. The paper's replication idea is
// orthogonal — this engine is the c = 1 neutral-territory baseline the
// paper positions itself against (S_NT = O(1) amortized neighbor volume,
// W_NT below the spatial decomposition's in higher dimensions).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/cutoff_geometry.hpp"
#include "core/policy.hpp"
#include "core/reassign.hpp"
#include "decomp/partition.hpp"
#include "particles/integrator.hpp"
#include "support/assert.hpp"
#include "vmpi/virtual_comm.hpp"

namespace canb::core {

template <particles::ForceKernel K>
class MidpointMethod {
 public:
  using Policy = RealPolicy<K>;
  using Buffer = typename Policy::Buffer;

  struct Config {
    int p = 1;
    machine::MachineModel machine;
    /// Full-radius geometry (same as the other cutoff engines); the import
    /// region is derived from it internally (half radius + 1 team slack).
    CutoffGeometry geometry = CutoffGeometry::make_1d(1, 0);
    bool periodic = false;
  };

  MidpointMethod(Config cfg, Policy policy, std::vector<Buffer> team_blocks)
      : cfg_(std::move(cfg)),
        policy_(std::move(policy)),
        grid_(vmpi::Grid2d::make(cfg_.p, 1)),
        vc_(cfg_.p, cfg_.machine),
        import_(make_import_geometry(cfg_.geometry)),
        integrator_(std::make_unique<particles::VelocityVerlet>()) {
    CANB_REQUIRE(cfg_.geometry.teams() == cfg_.p,
                 "midpoint method assigns one region per rank");
    CANB_REQUIRE(static_cast<int>(team_blocks.size()) == cfg_.p, "need one block per rank");
    resident_ = std::move(team_blocks);
  }

  /// Converting constructor: accepts the AoS blocks decomp::split_* produce
  /// (one layout conversion at setup time).
  MidpointMethod(Config cfg, Policy policy, std::vector<particles::Block> team_blocks)
      : MidpointMethod(std::move(cfg), std::move(policy),
                       convert_blocks<Buffer>(std::move(team_blocks))) {}

  void set_integrator(std::unique_ptr<particles::Integrator> integ) {
    integrator_ = std::move(integ);
  }

  void step() {
    for (auto& b : resident_) policy_.pre_force(*integrator_, b);
    charge_import_exchanges(vmpi::Phase::Shift);
    compute_midpoint_pairs();
    // Scatter-back: the same exchange pattern in reverse returns force
    // contributions to their owners (accumulation happened in place; the
    // cost is what a distributed implementation would pay).
    charge_import_exchanges(vmpi::Phase::Reduce);
    for (int r = 0; r < cfg_.p; ++r) {
      auto& block = resident_[static_cast<std::size_t>(r)];
      policy_.post_force(*integrator_, block);
      vc_.advance(r, vmpi::Phase::Compute,
                  cfg_.machine.gamma_flop * kIntegrateFlopsPerParticle *
                      static_cast<double>(block.size()));
    }
    reassign_spatial(vc_, grid_, cfg_.geometry, policy_, resident_, cfg_.machine);
  }

  void run(int steps) {
    for (int i = 0; i < steps; ++i) step();
  }

  const vmpi::VirtualComm& comm() const noexcept { return vc_; }
  vmpi::VirtualComm& comm() noexcept { return vc_; }
  const CutoffGeometry& import_geometry() const noexcept { return import_; }
  std::vector<Buffer> team_results() const { return resident_; }

 private:
  /// Half-radius import region: ceil(m/2) + 1 teams per axis (the +1 covers
  /// midpoints of pairs straddling a region edge).
  static CutoffGeometry make_import_geometry(const CutoffGeometry& full) {
    const int hx = std::min(full.mx() / 2 + 1, (full.qx() - 1) / 2);
    const int hy = full.dims() >= 2 ? std::min(full.my() / 2 + 1, (full.qy() - 1) / 2) : 0;
    if (full.dims() == 1) return CutoffGeometry::make_1d(full.qx(), hx);
    return CutoffGeometry::make_2d(full.qx(), full.qy(), hx, hy);
  }

  /// One exchange per import-region offset (cost only; the simulator reads
  /// neighbor blocks in place).
  void charge_import_exchanges(vmpi::Phase phase) {
    for (int s = 0; s < import_.window(); ++s) {
      if (s == import_.center_slot()) continue;
      const TeamOffset off = import_.slot_offset(s);
      const TeamOffset back{-off.x, -off.y, -off.z};
      vc_.permute_step(
          phase, [&](int r) { return import_.wrap_team(r, back); },
          [&](int src) {
            if (!cfg_.periodic && !import_.in_bounds(src, off)) return 0.0;
            return static_cast<double>(
                particles::block_bytes(resident_[static_cast<std::size_t>(src)]));
          },
          /*shift_phase=*/phase == vmpi::Phase::Shift);
    }
  }

  /// Owner of the midpoint of two particles at (ax, ay) and (ax - dx,
  /// ay - dy). Under periodic boundaries the midpoint follows the minimum
  /// image: walking half the (wrapped) displacement back from the first
  /// particle, then wrapping into the box — a pair straddling the seam has
  /// its midpoint at the seam, not mid-box. The midpoint rounds through
  /// float before the ownership test, as a materialized wire-format
  /// particle would.
  int midpoint_owner(double ax, double ay, double dx, double dy) const {
    const auto& box = policy_.box();
    auto wrap = [](double x, double l) {
      if (x < 0.0) x += l;
      if (x >= l) x -= l;
      return x;
    };
    double mx = ax - dx / 2.0;
    double my_ = ay - dy / 2.0;
    if (box.boundary == particles::Boundary::Periodic) {
      mx = wrap(mx, box.lx);
      if (box.dims == 2) my_ = wrap(my_, box.ly);
    }
    mx = static_cast<double>(static_cast<float>(mx));
    my_ = static_cast<double>(static_cast<float>(my_));
    if (cfg_.geometry.dims() == 1) return decomp::team_of_1d(mx, box, cfg_.geometry.qx());
    return decomp::team_of_2d(mx, my_, box, cfg_.geometry.qx(), cfg_.geometry.qy());
  }

  void compute_midpoint_pairs() {
    const auto& box = policy_.box();
    const auto& kernel = policy_.config().kernel;
    const double cutoff2 = policy_.cutoff() * policy_.cutoff();
    // Enumerate each unordered block pair once per owning rank. A pair of
    // blocks (v, w) = (t + ov, t + ow) can only contain midpoints in t's
    // region when ow is within one team of -ov per axis (block midpoints
    // land in [(v+w)/2, (v+w)/2 + 1) team widths), so each block has at
    // most 3^d candidate partners — the pruning real midpoint
    // implementations use, giving O(window) block pairs per rank instead
    // of O(window^2).
    for (int t = 0; t < cfg_.p; ++t) {
      std::uint64_t examined = 0;
      for (int sv = 0; sv < import_.window(); ++sv) {
        const TeamOffset ov = import_.slot_offset(sv);
        if (!cfg_.periodic && !import_.in_bounds(t, ov)) continue;
        const int v = import_.wrap_team(t, ov);
        const int dy_range = import_.dims() >= 2 ? 1 : 0;
        for (int dyc = -dy_range; dyc <= dy_range; ++dyc) {
        for (int dxc = -1; dxc <= 1; ++dxc) {
          const TeamOffset ow{-ov.x + dxc, -ov.y + dyc, -ov.z};
          const int sw = import_.slot_of(ow);
          if (sw < sv) continue;  // unordered pair handled once (or outside)
          if (!cfg_.periodic && !import_.in_bounds(t, ow)) continue;
          const int w = import_.wrap_team(t, ow);
          auto& bv = resident_[static_cast<std::size_t>(v)];
          auto& bw = resident_[static_cast<std::size_t>(w)];
          const bool periodic = box.boundary == particles::Boundary::Periodic;
          const bool two_d = box.dims == 2;
          const std::size_t nv = bv.size();
          const std::size_t nw = bw.size();
          for (std::size_t i = 0; i < nv; ++i) {
            const double ax = static_cast<double>(bv.px[i]);
            const double ay = two_d ? static_cast<double>(bv.py[i]) : 0.0;
            for (std::size_t j = 0; j < nw; ++j) {
              if (v == w && bv.id[i] >= bw.id[j]) continue;  // each intra pair once
              ++examined;
              double dx = ax - static_cast<double>(bw.px[j]);
              double dy = two_d ? ay - static_cast<double>(bw.py[j]) : 0.0;
              if (periodic) {
                if (dx > 0.5 * box.lx)
                  dx -= box.lx;
                else if (dx < -0.5 * box.lx)
                  dx += box.lx;
                if (two_d) {
                  if (dy > 0.5 * box.ly)
                    dy -= box.ly;
                  else if (dy < -0.5 * box.ly)
                    dy += box.ly;
                }
              }
              const double r2 = dx * dx + dy * dy;
              if (cutoff2 > 0.0 && r2 > cutoff2) continue;
              if (midpoint_owner(static_cast<double>(bv.px[i]), static_cast<double>(bv.py[i]),
                                 dx, dy) != t)
                continue;  // someone else's pair
              const double mag =
                  kernel.magnitude(r2, particles::lane_coupling<K>(bv, i, bw, j));
              const double ffx = mag * dx;
              const double ffy = mag * dy;
              // Per-pair float folds at the AoS pipeline's rounding points
              // (see the precision invariant in batched_engine.hpp);
              // antisymmetry: the owner applies the reaction too.
              bv.fx[i] = static_cast<double>(static_cast<float>(bv.fx[i]) +
                                             static_cast<float>(ffx));
              bv.fy[i] = static_cast<double>(static_cast<float>(bv.fy[i]) +
                                             static_cast<float>(ffy));
              bw.fx[j] = static_cast<double>(static_cast<float>(bw.fx[j]) -
                                             static_cast<float>(ffx));
              bw.fy[j] = static_cast<double>(static_cast<float>(bw.fy[j]) -
                                             static_cast<float>(ffy));
            }
          }
        }
        }
      }
      vc_.charge_interactions(t, static_cast<double>(examined));
    }
  }

  Config cfg_;
  Policy policy_;
  vmpi::Grid2d grid_;
  vmpi::VirtualComm vc_;
  CutoffGeometry import_;
  std::unique_ptr<particles::Integrator> integrator_;
  std::vector<Buffer> resident_;
};

}  // namespace canb::core
