// The classic spatial decomposition with halo exchange (Section II-C) —
// the non-replicating baseline the cutoff algorithm is measured against.
//
// Each of p ranks owns one region. Every step, a rank fetches each
// in-window neighbor block with a direct exchange (one message per window
// offset), computes against it immediately, integrates, and re-assigns
// migrated particles. Costs: S = O(m^d) messages, W = O(n m^d / p) words —
// the paper shows this is communication-optimal for minimal memory
// M = O(n/p), i.e. it is the c = 1 end point of the CA cutoff spectrum
// with a direct-fetch rather than systolic schedule.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/cutoff_geometry.hpp"
#include "core/policy.hpp"
#include "core/reassign.hpp"
#include "particles/integrator.hpp"
#include "support/assert.hpp"
#include "vmpi/virtual_comm.hpp"

namespace canb::core {

template <class Policy>
class SpatialHaloDecomposition {
 public:
  using Buffer = typename Policy::Buffer;

  struct Config {
    int p = 1;
    machine::MachineModel machine;
    CutoffGeometry geometry = CutoffGeometry::make_1d(1, 0);  ///< teams() must equal p
    bool periodic = false;
  };

  SpatialHaloDecomposition(Config cfg, Policy policy, std::vector<Buffer> team_blocks)
      : cfg_(std::move(cfg)),
        policy_(std::move(policy)),
        grid_(vmpi::Grid2d::make(cfg_.p, 1)),
        vc_(cfg_.p, cfg_.machine),
        integrator_(std::make_unique<particles::VelocityVerlet>()) {
    CANB_REQUIRE(cfg_.geometry.teams() == cfg_.p,
                 "spatial decomposition assigns one region per rank");
    CANB_REQUIRE(static_cast<int>(team_blocks.size()) == cfg_.p, "need one block per rank");
    resident_ = std::move(team_blocks);
  }

  /// Converting constructor: accepts blocks in a different layout than the
  /// policy's Buffer and converts once at setup time.
  template <class B>
    requires(!std::is_same_v<B, Buffer> && std::is_constructible_v<Buffer, B>)
  SpatialHaloDecomposition(Config cfg, Policy policy, std::vector<B> team_blocks)
      : SpatialHaloDecomposition(std::move(cfg), std::move(policy),
                                 convert_blocks<Buffer>(std::move(team_blocks))) {}

  void set_integrator(std::unique_ptr<particles::Integrator> integ) {
    integrator_ = std::move(integ);
  }

  /// Attaches the host data plane: the re-assignment loop recycles its
  /// route lists from the shared arena and compacts in place (see
  /// core/reassign.hpp). nullptr selects the legacy host path; outputs are
  /// bitwise identical either way.
  void set_data_plane(std::shared_ptr<vmpi::DataPlane<Buffer>> plane) {
    plane_ = std::move(plane);
  }

  void step() {
    const auto& geom = cfg_.geometry;
    if constexpr (!Policy::kIsPhantom) {
      for (auto& b : resident_) policy_.pre_force(*integrator_, b);
    }
    // Self-interactions first.
    for (int r = 0; r < cfg_.p; ++r) {
      const auto stats = policy_.interact(resident_[static_cast<std::size_t>(r)],
                                          resident_[static_cast<std::size_t>(r)],
                                          /*same_block=*/true);
      vc_.charge_interactions(r, static_cast<double>(stats.examined));
    }
    // One direct exchange per non-center window offset. Under reflective
    // boundaries, offsets that fall off the grid are not sent (their
    // payload is zero), so boundary ranks both send and compute less.
    for (int s = 0; s < geom.window(); ++s) {
      if (s == geom.center_slot()) continue;
      const TeamOffset off = geom.slot_offset(s);
      const TeamOffset back{-off.x, -off.y, -off.z};
      vc_.permute_step(
          vmpi::Phase::Shift,
          [&](int r) { return geom.wrap_team(r, back); },
          [&](int src) {
            if (!cfg_.periodic && !geom.in_bounds(src, off)) return 0.0;
            return static_cast<double>(Policy::bytes(resident_[static_cast<std::size_t>(src)]));
          });
      for (int r = 0; r < cfg_.p; ++r) {
        if (!cfg_.periodic && !geom.in_bounds(r, back)) continue;  // nothing arrived
        const int src = geom.wrap_team(r, back);
        const auto stats = policy_.interact(resident_[static_cast<std::size_t>(r)],
                                            resident_[static_cast<std::size_t>(src)],
                                            /*same_block=*/false);
        vc_.charge_interactions(r, static_cast<double>(stats.examined));
      }
    }
    for (int r = 0; r < cfg_.p; ++r) {
      auto& block = resident_[static_cast<std::size_t>(r)];
      if constexpr (!Policy::kIsPhantom) policy_.post_force(*integrator_, block);
      vc_.advance(r, vmpi::Phase::Compute,
                  cfg_.machine.gamma_flop * kIntegrateFlopsPerParticle *
                      static_cast<double>(Policy::count(block)));
    }
    reassign_spatial(vc_, grid_, cfg_.geometry, policy_, resident_, cfg_.machine, plane_.get());
  }

  void run(int steps) {
    for (int i = 0; i < steps; ++i) step();
  }

  const vmpi::VirtualComm& comm() const noexcept { return vc_; }
  vmpi::VirtualComm& comm() noexcept { return vc_; }
  std::vector<Buffer> team_results() const { return resident_; }

 private:
  Config cfg_;
  Policy policy_;
  vmpi::Grid2d grid_;
  vmpi::VirtualComm vc_;
  std::unique_ptr<particles::Integrator> integrator_;
  std::shared_ptr<vmpi::DataPlane<Buffer>> plane_ = std::make_shared<vmpi::DataPlane<Buffer>>();
  std::vector<Buffer> resident_;
};

}  // namespace canb::core
