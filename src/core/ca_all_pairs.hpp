// Algorithm 1 of the paper: CA-ALL-PAIRS-N-BODY.
//
// p ranks form a c-by-(p/c) grid. Teams (columns) own particle subsets; a
// timestep is:
//   1. broadcast the team's block from the leader to the team     (log c msgs)
//   2. copy to an exchange buffer
//   3. skew: row k shifts its exchange buffer east by k           (1 msg)
//   4. p/c^2 times: shift east by c, then interact                (p/c^2 msgs)
//   5. sum-reduce force contributions within the team             (log c msgs)
//   6. leaders integrate their subset
//
// Setting c=1 degenerates to Plimpton's particle decomposition (a ring
// pass); c=sqrt(p) degenerates to his force decomposition. Intermediate c
// trades memory (c copies of the particles) for communication, meeting the
// lower bound W = Ω(n^2/(p·M)) for every c (Section III-B).
//
// The engine is a template over a payload Policy (see policy.hpp); with
// PhantomPolicy and uniform blocks it takes an exact O(p)-per-step bulk
// fast path that reproduces the per-step ledger identically.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/policy.hpp"
#include "obs/telemetry.hpp"
#include "particles/integrator.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"
#include "vmpi/buffer_pool.hpp"
#include "vmpi/primitives.hpp"
#include "vmpi/virtual_comm.hpp"

namespace canb::core {

template <class Policy>
class CaAllPairs {
 public:
  using Buffer = typename Policy::Buffer;

  struct Config {
    int p = 1;                       ///< total ranks
    int c = 1;                       ///< replication factor
    machine::MachineModel machine;   ///< cost model
  };

  /// `team_blocks` holds one block per team (q = p/c blocks); block t is
  /// owned by team t's leader. Requires a valid replication factor:
  /// c | p and c | (p/c), so the shift loop runs p/c^2 whole steps.
  CaAllPairs(Config cfg, Policy policy, std::vector<Buffer> team_blocks)
      : cfg_(std::move(cfg)),
        policy_(std::move(policy)),
        grid_(vmpi::Grid2d::make(cfg_.p, cfg_.c)),
        vc_(cfg_.p, cfg_.machine),
        integrator_(std::make_unique<particles::VelocityVerlet>()) {
    CANB_REQUIRE(vmpi::valid_all_pairs_replication(cfg_.p, cfg_.c),
                 "invalid replication factor: need c | p and c | p/c (so c^2 <= p)");
    CANB_REQUIRE(static_cast<int>(team_blocks.size()) == grid_.cols(),
                 "need exactly p/c team blocks");
    steps_ = grid_.cols() / grid_.rows();
    resident_.resize(static_cast<std::size_t>(cfg_.p));
    carried_.resize(static_cast<std::size_t>(cfg_.p));
    for (int t = 0; t < grid_.cols(); ++t)
      resident_[static_cast<std::size_t>(grid_.leader(t))] = std::move(team_blocks[static_cast<std::size_t>(t)]);
  }

  /// Converting constructor: accepts blocks in a different layout than the
  /// policy's Buffer (the AoS blocks decomp::split_* produce) and converts
  /// once at setup time.
  template <class B>
    requires(!std::is_same_v<B, Buffer> && std::is_constructible_v<Buffer, B>)
  CaAllPairs(Config cfg, Policy policy, std::vector<B> team_blocks)
      : CaAllPairs(std::move(cfg), std::move(policy),
                   convert_blocks<Buffer>(std::move(team_blocks))) {}

  void set_integrator(std::unique_ptr<particles::Integrator> integ) {
    integrator_ = std::move(integ);
  }

  /// Attaches a host thread pool: the per-rank interaction loop (the O(n^2/p)
  /// force arithmetic) fans out across host threads, and the data plane (if
  /// one is attached) fans its copies too. Virtual-rank arithmetic stays
  /// sequential per rank, so results are bitwise identical to serial.
  void set_host_pool(std::shared_ptr<ThreadPool> pool) {
    pool_ = std::move(pool);
    if (plane_) plane_->workers = pool_.get();
  }

  /// Attaches the host data plane (pooled buffers + parallel copies; see
  /// vmpi/buffer_pool.hpp). Engines of one run share a plane via
  /// sim::Simulation. nullptr selects the legacy serial/allocating host
  /// path — host execution only; ledgers, traces, and trajectories are
  /// bitwise identical either way (tests/test_data_plane.cpp).
  void set_data_plane(std::shared_ptr<vmpi::DataPlane<Buffer>> plane) {
    plane_ = std::move(plane);
    if (plane_) plane_->workers = pool_.get();
  }

  /// Attaches telemetry (not owned; nullptr detaches). Observation is
  /// passive — ledger and clocks are bitwise unchanged — but Full-level
  /// spans disable the bulk fast path so every message is traceable (the
  /// two schedules produce identical ledgers; tests pin this).
  void set_telemetry(obs::Telemetry* telem) {
    telem_ = telem;
    if (telem_ != nullptr) telem_->attach(vc_);
  }

  /// Executes one full timestep (force evaluation + integration).
  void step() {
    if (telem_ != nullptr) telem_->begin_step(vc_);
    pre_integrate();
    broadcast_and_stage();
    if (use_bulk_path()) {
      bulk_shift_loop();
    } else {
      shift_loop();
    }
    vmpi::reduce_teams(vc_, grid_, resident_, &Policy::bytes, TeamCombine<Policy>{},
                       vmpi::Phase::Reduce, plane_.get());
    boundary(vmpi::Phase::Reduce, "reduce");
    post_integrate();
    boundary(vmpi::Phase::Compute, "integrate");
  }

  void run(int steps) {
    for (int i = 0; i < steps; ++i) step();
  }

  // --- observers ---------------------------------------------------------
  const vmpi::VirtualComm& comm() const noexcept { return vc_; }
  vmpi::VirtualComm& comm() noexcept { return vc_; }
  const vmpi::Grid2d& grid() const noexcept { return grid_; }
  const Config& config() const noexcept { return cfg_; }
  const Policy& policy() const noexcept { return policy_; }
  int shift_steps() const noexcept { return steps_; }

  /// Leader blocks in team order (the authoritative particle state).
  std::vector<Buffer> team_results() const {
    std::vector<Buffer> out;
    out.reserve(static_cast<std::size_t>(grid_.cols()));
    for (int t = 0; t < grid_.cols(); ++t)
      out.push_back(resident_[static_cast<std::size_t>(grid_.leader(t))]);
    return out;
  }

 private:
  struct Carried {
    Buffer buf{};
    int team = -1;

    // Wire support so the skew/shift rounds can cross a real transport
    // (wire.hpp): the tag travels with the block, losslessly.
    void wire_put(wire::Writer& w) const {
      w.scalar<std::int32_t>(team);
      wire::put(w, buf);
    }
    void wire_get(wire::Reader& r) {
      team = r.scalar<std::int32_t>();
      wire::get(r, buf);
    }
  };
  static std::uint64_t carried_bytes(const Carried& c) noexcept { return Policy::bytes(c.buf); }

  void pre_integrate() {
    if constexpr (!Policy::kIsPhantom) {
      for (int t = 0; t < grid_.cols(); ++t) {
        const int leader = grid_.leader(t);
        if (!vc_.resident(leader)) continue;  // owner runs the half-kick
        policy_.pre_force(*integrator_, resident_[static_cast<std::size_t>(leader)]);
      }
    }
  }

  void boundary(vmpi::Phase phase, const char* label) {
    if (telem_ != nullptr) telem_->phase_boundary(vc_, phase, label);
  }

  void broadcast_and_stage() {
    vmpi::broadcast_teams(vc_, grid_, resident_, &Policy::bytes, vmpi::Phase::Broadcast,
                          plane_.get());
    boundary(vmpi::Phase::Broadcast, "broadcast");
    if (plane_) {
      // Carried blocks are pure visitors (the sweeps' read-only operand),
      // so staging copies only the kernel-input lanes. Non-resident ranks
      // stage a phantom (size-only) block: the skew/shift rounds still need
      // correct byte counts from it, but its lanes never feed a sweep here.
      vmpi::stage_buffers(
          vc_, resident_, carried_,
          [this](int r, Carried& c, const Buffer& src) {
            if (vc_.resident(r)) {
              vmpi::detail::assign_visitor(c.buf, src);
            } else {
              vmpi::detail::phantom_assign(c.buf, src);
            }
            c.team = grid_.col_of(r);
          },
          plane_.get());
    } else {
      for (int r = 0; r < cfg_.p; ++r) {
        auto& c = carried_[static_cast<std::size_t>(r)];
        if (vc_.resident(r)) {
          c.buf = resident_[static_cast<std::size_t>(r)];
        } else {
          vmpi::detail::phantom_assign(c.buf, resident_[static_cast<std::size_t>(r)]);
        }
        c.team = grid_.col_of(r);
      }
    }
    vmpi::skew_rows(vc_, grid_, [](int row) { return row; }, carried_,
                    &CaAllPairs::carried_bytes, vmpi::Phase::Skew,
                    plane_ ? &plane_->ints : nullptr);
    boundary(vmpi::Phase::Skew, "skew");
  }

  // Note a refinement over the paper's pseudocode: we interact with the
  // freshly skewed block BEFORE the first shift, so the loop needs only
  // p/c^2 - 1 shift rounds for the same p/c^2 updates (the pseudocode's
  // version shifts first and relies on the skewed block coming back around
  // on the final wrap). Coverage is identical — row k sees blocks at
  // offsets {k + c*j mod q} either way — and at c=1 the schedule becomes
  // exactly the classic p-1-round systolic ring.
  void shift_loop() {
    interact_all();
    boundary(vmpi::Phase::Compute, "interact");
    for (int j = 1; j < steps_; ++j) {
      vmpi::shift_rows(vc_, grid_, grid_.rows(), carried_, &CaAllPairs::carried_bytes);
      boundary(vmpi::Phase::Shift, "shift");
      interact_all();
      boundary(vmpi::Phase::Compute, "interact");
    }
  }

  void interact_all() {
    auto rank_body = [&](int r) {
      auto& carried = carried_[static_cast<std::size_t>(r)];
      const bool same = carried.team == grid_.col_of(r);
      if (!vc_.resident(r)) {
        // Owner-computes: this rank's sweep runs in its owning process.
        // Charge exactly what the owner's sweep will report — examined
        // counts derive from block sizes alone (same formula for the full
        // sweep, the N3L half-sweep, and the cull path), and non-resident
        // buffer sizes are maintained by every primitive — then skip the
        // physics. on_sweep is deliberately NOT called: canb_sweep_*
        // counters document the pairs this process actually executed.
        const auto nr = Policy::count(resident_[static_cast<std::size_t>(r)]);
        const auto nc = Policy::count(carried.buf);
        const std::uint64_t examined = nr * nc - (same ? nr : 0);
        vc_.charge_interactions(r, static_cast<double>(examined));
        return;
      }
      const auto stats =
          policy_.interact(resident_[static_cast<std::size_t>(r)], carried.buf, same);
      // Per-rank ledger rows and clocks are disjoint: safe across threads
      // in any execution order (the telemetry sweep accumulators follow the
      // same per-rank rule), so static and stealing schedules produce
      // bitwise-identical artifacts.
      vc_.charge_interactions(r, static_cast<double>(stats.examined));
      if (telem_ != nullptr && telem_->enabled())
        telem_->on_sweep(r, stats.examined, stats.computed, stats.half_sweep);
    };
    if (pool_) {
      // Cost hints: per-rank resident x carried block sizes — the exact
      // pair count each rank examines this round.
      cost_.resize(static_cast<std::size_t>(cfg_.p));
      for (int r = 0; r < cfg_.p; ++r)
        cost_[static_cast<std::size_t>(r)] =
            vc_.resident(r)
                ? static_cast<double>(Policy::count(resident_[static_cast<std::size_t>(r)])) *
                      static_cast<double>(Policy::count(carried_[static_cast<std::size_t>(r)].buf))
                : 0.0;
      pool_->parallel_tasks(cfg_.p, [&](int r, int) { rank_body(r); }, cost_.data());
    } else {
      for (int r = 0; r < cfg_.p; ++r) rank_body(r);
    }
  }

  // The bulk fast path applies when blocks are phantom and uniform: every
  // rank then behaves identically each shift step (no waits), so `steps_`
  // iterations can be charged in O(p) total. Produces a ledger exactly
  // equal to the per-step path (verified by tests).
  bool use_bulk_path() const {
    if constexpr (Policy::kIsPhantom) {
      if (!policy_.config().bulk_uniform) return false;
      // Hop-aware latency varies per rank pair (rank order maps onto a
      // torus), so the uniform-charge shortcut would be wrong.
      if (cfg_.machine.alpha_hop > 0.0) return false;
      // Fault injection perturbs ranks individually; fall back to the
      // per-step schedule so every draw lands on the right rank stream.
      if (vc_.fault_active()) return false;
      // Telemetry wants every message observable (counters, trace, spans);
      // the bulk shortcut charges them in one unobserved blob. Ledger
      // output is identical either way (pinned by the bulk-equivalence
      // tests), so this only trades speed for observability.
      if (telem_ != nullptr && telem_->enabled()) return false;
      // A real transport must see every message cross the fabric; the bulk
      // shortcut moves nothing, so it would leave unmatched sends/recvs on
      // peer endpoints.
      if (vc_.transport() != nullptr) return false;
      const std::uint64_t c0 = Policy::count(resident_[static_cast<std::size_t>(grid_.leader(0))]);
      for (int t = 1; t < grid_.cols(); ++t) {
        if (Policy::count(resident_[static_cast<std::size_t>(grid_.leader(t))]) != c0) return false;
      }
      return true;
    } else {
      return false;
    }
  }

  void bulk_shift_loop() {
    if constexpr (Policy::kIsPhantom) {
      const std::uint64_t cnt = Policy::count(resident_[0]);
      const auto w = static_cast<std::uint64_t>(cnt * particles::kParticleBytes);
      const auto steps = static_cast<std::uint64_t>(steps_);
      // steps_ - 1 shift rounds (interact-first loop); when c ≡ 0 (mod q)
      // the shift would be a no-op anyway (the c = sqrt(p)
      // force-decomposition end point has steps_ == 1).
      if (steps > 1 && grid_.rows() % grid_.cols() != 0) {
        vc_.advance_all(vmpi::Phase::Shift, cfg_.machine.shift_time(static_cast<double>(w)), 1, w,
                        steps - 1);
      }
      // Every rank examines cnt^2 pairs per step; a rank meets its own
      // team's block exactly once over the loop iff it sits in row 0, and
      // then skips cnt self-pairs.
      const double full = static_cast<double>(cnt) * static_cast<double>(cnt) *
                          static_cast<double>(steps);
      for (int r = 0; r < cfg_.p; ++r) {
        const double self = grid_.row_of(r) == 0 ? static_cast<double>(cnt) : 0.0;
        vc_.charge_interactions(r, full - self);
      }
    }
  }

  void post_integrate() {
    const double flops = kIntegrateFlopsPerParticle;
    for (int t = 0; t < grid_.cols(); ++t) {
      const int leader = grid_.leader(t);
      auto& block = resident_[static_cast<std::size_t>(leader)];
      if constexpr (!Policy::kIsPhantom) {
        if (vc_.resident(leader)) policy_.post_force(*integrator_, block);
      }
      // The integration charge stays replicated for every leader — the
      // virtual cost plane is identical on all processes by construction.
      vc_.advance(leader, vmpi::Phase::Compute,
                  cfg_.machine.gamma_flop * flops * static_cast<double>(Policy::count(block)));
    }
  }

  Config cfg_;
  Policy policy_;
  vmpi::Grid2d grid_;
  vmpi::VirtualComm vc_;
  std::unique_ptr<particles::Integrator> integrator_;
  std::shared_ptr<ThreadPool> pool_;
  std::shared_ptr<vmpi::DataPlane<Buffer>> plane_ = std::make_shared<vmpi::DataPlane<Buffer>>();
  obs::Telemetry* telem_ = nullptr;
  std::vector<Buffer> resident_;
  std::vector<Carried> carried_;
  std::vector<double> cost_;  ///< per-rank sweep cost hints (scratch)
  int steps_ = 0;
};

}  // namespace canb::core
