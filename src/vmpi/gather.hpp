// End-of-run state assembly for owner-computes execution.
//
// Under owner-computes (docs/TRANSPORT.md) each process group holds
// authoritative particle state only for the teams it owns; every other
// team's resident block is a size-correct phantom. Before anything reads
// full state — trajectory snapshots, the final CSV/XYZ export, parity
// checks — the groups all-gather their owned team blocks so every process
// ends up with the complete, bitwise-authoritative set.
//
// This is deliberately an ALL-gather rather than a gather-to-0: it costs
// the same number of wire frames per receiving group, makes every group
// able to self-check its assembled state against a modeled baseline, and
// keeps the call symmetric (every group must reach it the same number of
// times — the same discipline as the telemetry mesh exchange).
//
// Flows ride the reserved out-of-band tag space (kGatherTagBase + team),
// so they can never alias a data-flow tag or a telemetry snapshot, and
// they charge nothing to the virtual cost model: the gather is a host
// artifact-assembly step that does not exist in the paper's schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"
#include "support/wire.hpp"
#include "vmpi/transport.hpp"

namespace canb::vmpi {

/// Lowest-numbered rank of each process group: the receiving endpoint for
/// out-of-band flows addressed to that group. Indexed by group id.
std::vector<int> group_rep_ranks(const Transport& t);

/// All-gathers per-team blocks across the transport's process groups.
/// `team_leaders[i]` is the rank that owns team i's authoritative block
/// (the engine grid's leader); `teams[i]` is this process's copy of that
/// block — authoritative when the leader is local, phantom otherwise. On
/// return every entry is authoritative on every group. No-op on a
/// single-group transport. Must be called symmetrically by every group
/// (FIFO per flow then keeps even repeated mid-run gathers matched).
template <class B>
void all_gather_teams(Transport& t, const std::vector<int>& team_leaders, std::vector<B>& teams) {
  if (t.groups() <= 1) return;
  CANB_ASSERT(team_leaders.size() == teams.size());
  const std::vector<int> rep = group_rep_ranks(t);
  const int me = t.group();
  wire::Bytes bytes;
  // All sends first: socket reader threads drain continuously, so posting
  // every outgoing frame before the first recv cannot deadlock regardless
  // of the peers' team ownership layout.
  for (std::size_t i = 0; i < teams.size(); ++i) {
    const int leader = team_leaders[i];
    if (t.owner_group(leader) != me) continue;
    wire::to_bytes(teams[i], bytes);
    const std::uint64_t tag = kGatherTagBase + static_cast<std::uint64_t>(i);
    for (int g = 0; g < t.groups(); ++g) {
      if (g == me) continue;
      t.send(leader, rep[static_cast<std::size_t>(g)], tag, bytes);
    }
  }
  for (std::size_t i = 0; i < teams.size(); ++i) {
    const int leader = team_leaders[i];
    if (t.owner_group(leader) == me) continue;
    t.recv(leader, rep[static_cast<std::size_t>(me)],
           kGatherTagBase + static_cast<std::uint64_t>(i), bytes);
    wire::from_bytes(teams[i], bytes);
  }
}

}  // namespace canb::vmpi
