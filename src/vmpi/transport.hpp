// Pluggable byte transports beneath the vmpi primitives.
//
// The primitives charge the virtual clock from particle *counts* before any
// payload moves (the charge-before-move invariant), so swapping the data
// move from in-process assignment to serialize -> wire -> deserialize
// cannot perturb ledgers, clocks, or traces. It does make the channel
// load-bearing for *trajectories*: the receiver adopts the wire bytes, so a
// transport bug corrupts particle state and fails the cross-backend parity
// suite instead of hiding behind a modeled copy.
//
// Contract (pinned by tests/test_transport.cpp):
//   - send(src, dst, tag, payload): posts one framed message. Per
//     (src, dst, tag) flow, messages are delivered in send order (FIFO).
//     Zero-length payloads are legal frames.
//   - recv(src, dst, tag, out): blocks until the next frame of that flow
//     arrives, then fills `out` (capacity-preserving where possible).
//     `dst` must be local to this endpoint.
//   - local(rank): whether `rank`'s payloads materialize in this process.
//     Single-endpoint backends (modeled, shmem) own every rank; the socket
//     backend partitions ranks into process groups.
//   - barrier(): rendezvous across endpoints; no-op for single-endpoint
//     backends.
//
// Backends:
//   - ModeledTransport: serial in-process FIFO queues, no locks. The
//     reference implementation of the contract; also useful to exercise
//     serialization without concurrency in the mix.
//   - ShmemTransport: ranks-as-threads backend. Mutex-striped per-
//     destination mailboxes; frame byte-buffers are recycled through a
//     BufferPool so a warmed steady state stops allocating.
//   - SocketTransport (socket_transport.hpp): one OS process per rank
//     group, length-prefixed frames over Unix-domain sockets with a
//     reliable-channel layer (reliable.hpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/wire.hpp"
#include "vmpi/buffer_pool.hpp"

namespace canb::vmpi {

enum class TransportKind { Modeled, Shmem, Socket };

const char* transport_kind_name(TransportKind k) noexcept;
std::optional<TransportKind> parse_transport_kind(std::string_view name) noexcept;

/// How a multi-process mesh divides the physics.
///   - Lockstep: every process redundantly computes all p virtual ranks and
///     adopts wire bytes at group boundaries (the PR 8 parity-harness mode).
///   - OwnerComputes: each process runs force sweeps / reassign splits /
///     data-plane copies only for ranks its group owns; everything else is
///     obtained by recv-adoption. The virtual cost plane stays fully
///     replicated, so clocks/ledgers/traces remain bitwise identical to the
///     modeled arm while host wall-clock drops ~G×.
enum class ExecMode { Lockstep, OwnerComputes };

const char* exec_mode_name(ExecMode m) noexcept;
std::optional<ExecMode> parse_exec_mode(std::string_view name) noexcept;

/// Tags at or above this value are reserved for out-of-band control flows
/// that ride the transport without touching the virtual cost model —
/// today the telemetry snapshot push (obs/snapshot.hpp), tomorrow session
/// control. VirtualComm::next_transport_tag() allocates data-flow tags by
/// counting up from 1 and can never reach this range.
inline constexpr std::uint64_t kReservedTagBase = 0xFFFF'FFFF'0000'0000ull;

/// Reserved-tag sub-spaces. The telemetry snapshot push uses
/// kReservedTagBase + group (obs/snapshot.hpp); the owner-computes machinery
/// carves out two more disjoint blocks:
///   - gather flows: one tag per (team, sender group) so the end-of-run
///     all-gather of team blocks (vmpi/gather.hpp) never aliases a snapshot
///     or data-flow tag;
///   - reassign count exchange: one tag per routing round, used by the
///     owner-computes arm of reassign_spatial to agree on migration counts
///     out of band (charges nothing — the virtual cost was already paid by
///     the replicated permute_step charge loop).
inline constexpr std::uint64_t kGatherTagBase = kReservedTagBase + 0x0010'0000ull;
inline constexpr std::uint64_t kReassignCountTagBase = kReservedTagBase + 0x0020'0000ull;

/// Fabric-side counters, published as canb_transport_* metrics. All zero
/// for the modeled arm (no transport attached): the cost model is the
/// source of truth there, not a fabric.
struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t retransmits = 0;       ///< reliable-channel data re-sends
  std::uint64_t acks_sent = 0;         ///< reliable-channel acks emitted
  std::uint64_t duplicates_dropped = 0;///< stale/duplicate frames discarded
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const noexcept = 0;
  virtual int ranks() const noexcept = 0;
  virtual bool local(int rank) const noexcept { (void)rank; return true; }

  /// How ranks partition into OS endpoints. Single-endpoint backends
  /// (modeled, shmem) are one group owning every rank; the socket backend
  /// reports its process-group geometry so mesh-wide telemetry aggregation
  /// (obs/snapshot.hpp) can address peer endpoints.
  virtual int groups() const noexcept { return 1; }
  virtual int group() const noexcept { return 0; }
  virtual int owner_group(int rank) const noexcept { (void)rank; return 0; }

  virtual void send(int src, int dst, std::uint64_t tag, std::span<const std::byte> payload) = 0;
  virtual void recv(int src, int dst, std::uint64_t tag, wire::Bytes& out) = 0;
  virtual void barrier() {}

  virtual TransportStats stats() const { return {}; }
};

/// Serial single-threaded FIFO transport: the executable statement of the
/// contract. Every rank is local; send enqueues, recv pops.
class ModeledTransport final : public Transport {
 public:
  explicit ModeledTransport(int ranks);

  TransportKind kind() const noexcept override { return TransportKind::Modeled; }
  int ranks() const noexcept override { return ranks_; }

  void send(int src, int dst, std::uint64_t tag, std::span<const std::byte> payload) override;
  void recv(int src, int dst, std::uint64_t tag, wire::Bytes& out) override;
  TransportStats stats() const override { return stats_; }

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;  // (src<<32|dst, tag)
  int ranks_;
  std::map<Key, std::deque<wire::Bytes>> queues_;
  TransportStats stats_;
};

/// Ranks-as-threads shared-memory transport. One mailbox per destination
/// rank (so the lock striping matches the natural sharding of concurrent
/// senders: senders to different destinations never contend). Frame shells
/// are recycled via a per-mailbox BufferPool<wire::Bytes>; recv swaps the
/// frame out and returns the caller's old buffer to the pool, so the warmed
/// path moves capacity around instead of allocating.
class ShmemTransport final : public Transport {
 public:
  explicit ShmemTransport(int ranks);
  ~ShmemTransport() override = default;

  TransportKind kind() const noexcept override { return TransportKind::Shmem; }
  int ranks() const noexcept override { return ranks_; }

  void send(int src, int dst, std::uint64_t tag, std::span<const std::byte> payload) override;
  void recv(int src, int dst, std::uint64_t tag, wire::Bytes& out) override;
  TransportStats stats() const override;

 private:
  using FlowKey = std::pair<std::uint64_t, std::uint64_t>;  // (src, tag)

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<FlowKey, std::deque<wire::Bytes>> flows;
    BufferPool<wire::Bytes> pool;  // recycled frame shells, guarded by mu
  };

  int ranks_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  mutable std::mutex stats_mu_;
  TransportStats stats_;
};

/// Endpoint-construction options shared by the factory and the CLI.
struct TransportOptions {
  TransportKind kind = TransportKind::Modeled;
  int ranks = 0;
  int groups = 1;        ///< socket: number of OS processes
  int group = 0;         ///< socket: this endpoint's group index
  std::string dir;       ///< socket: rendezvous directory for UDS paths
  double drop_rate = 0;  ///< socket: seeded egress drop injection (tests)
  std::uint64_t drop_seed = 1;
};

/// Builds an endpoint. Returns nullptr for TransportKind::Modeled *by
/// design*: the default modeled arm is "no transport attached" and must
/// stay bitwise-inert and zero-overhead; tests that want the routed
/// modeled reference construct ModeledTransport explicitly.
std::shared_ptr<Transport> make_transport(const TransportOptions& opts);

}  // namespace canb::vmpi
