// Reliable-channel layer for the socket transport: sequence numbers,
// cumulative acks, duplicate discard, and retransmit with exponential
// backoff.
//
// The protocol engine is deliberately *passive*: it owns no threads, no
// sockets, and no clock. Callers feed it frames and timestamps and it
// emits frames back through callbacks. That makes it deterministic under
// test — tests/test_reliable.cpp drives it with a manual clock and a
// seeded lossy link (drop / reorder / duplicate) and asserts eventual
// in-order delivery — and lets the socket layer bolt it onto real fds
// with its own locking.
//
// Retry semantics deliberately mirror vmpi::PerturbationModel (fault.hpp),
// the modeled arm's account of the same machinery: the initial retransmit
// timeout plays timeout_factor x attempt_cost, each expiry multiplies the
// timeout by `backoff`, and a frame still unacked after `max_attempts`
// transmissions is a fatal channel failure (the model's cap on retries).
// tests/test_reliable.cpp pins the accounting parity: k forced drops cost
// exactly the retries/timeouts/backoff-wait that
// PerturbationModel::plan_delivery charges for k modeled drops.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>

#include "support/wire.hpp"

namespace canb::vmpi {

enum class FrameKind : std::uint8_t {
  Data = 1,     ///< application payload, sequenced + retransmittable
  Ack = 2,      ///< cumulative ack; seq = count of contiguously received frames
  Hello = 3,    ///< connection rendezvous; src = sender's group id
  Barrier = 4,  ///< group-level rendezvous token
};

/// One framed message. For Data frames src/dst/tag identify the vmpi flow;
/// for control frames src/dst carry group ids. `seq` is per-connection for
/// Data, a cumulative count for Ack.
struct Frame {
  FrameKind kind = FrameKind::Data;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t tag = 0;
  std::uint64_t seq = 0;
  wire::Bytes payload;
};

/// Wire image: [u64 body_len][u8 kind][u32 src][u32 dst][u64 tag][u64 seq]
/// [payload]. body_len counts everything after the length word, so a byte
/// stream is self-delimiting (length-prefixed framing).
void encode_frame(const Frame& f, wire::Bytes& out);
Frame decode_frame_body(std::span<const std::byte> body);

/// Number of bytes in the fixed header *after* the u64 length prefix.
inline constexpr std::size_t kFrameHeaderBytes = 1 + 4 + 4 + 8 + 8;

struct ReliableConfig {
  double rto = 0.05;      ///< initial retransmit timeout, seconds
  double backoff = 2.0;   ///< timeout multiplier per expiry (PerturbationModel::backoff)
  int max_attempts = 10;  ///< total transmissions before the channel is declared dead
};

struct ReliableSenderStats {
  std::uint64_t data_sent = 0;     ///< first transmissions
  std::uint64_t retransmits = 0;   ///< expiry-driven re-sends
  std::uint64_t timeouts = 0;      ///< expirations observed (== retransmits)
  double backoff_wait = 0;         ///< total seconds spent waiting on expired timeouts
};

/// Sender half of one directed connection. Stamps sequence numbers,
/// retains unacked frames, retransmits on expiry.
class ReliableSender {
 public:
  using Emit = std::function<void(const Frame&)>;

  explicit ReliableSender(ReliableConfig cfg) : cfg_(cfg) {}

  /// Stamps the next sequence number, emits the frame, and retains it for
  /// retransmission until acked. Returns the assigned seq.
  std::uint64_t send(Frame frame, double now, const Emit& emit);

  /// Processes a cumulative ack: all frames with seq < acked are released.
  void on_ack(std::uint64_t acked);

  /// Retransmits every frame whose timeout expired at `now`, doubling (by
  /// `backoff`) its timeout. Aborts if a frame exhausts max_attempts.
  /// Returns the earliest pending deadline, or +inf when idle.
  double poll(double now, const Emit& emit);

  bool idle() const noexcept { return pending_.empty(); }
  std::uint64_t next_seq() const noexcept { return next_seq_; }
  const ReliableSenderStats& stats() const noexcept { return stats_; }

 private:
  struct Pending {
    Frame frame;
    double deadline = 0;
    double rto = 0;
    int attempts = 1;
  };

  ReliableConfig cfg_;
  std::uint64_t next_seq_ = 0;
  std::deque<Pending> pending_;
  ReliableSenderStats stats_;
};

struct ReliableReceiverStats {
  std::uint64_t delivered = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t reordered_held = 0;  ///< frames stashed out-of-order
  std::uint64_t acks_sent = 0;
};

/// Receiver half of one directed connection: delivers in sequence order
/// exactly once, discards duplicates, stashes out-of-order arrivals, and
/// answers every Data frame with a cumulative ack.
class ReliableReceiver {
 public:
  using Deliver = std::function<void(Frame&&)>;

  /// Feeds one Data frame. In-order frames (and any contiguous stashed
  /// successors) are handed to `deliver`. Returns the cumulative ack value
  /// to put on the wire (the count of contiguously delivered frames).
  std::uint64_t on_data(Frame&& f, const Deliver& deliver);

  std::uint64_t next_expected() const noexcept { return next_expected_; }
  const ReliableReceiverStats& stats() const noexcept { return stats_; }

 private:
  std::uint64_t next_expected_ = 0;
  std::map<std::uint64_t, Frame> stashed_;
  ReliableReceiverStats stats_;
};

}  // namespace canb::vmpi
