// Data-moving communication primitives over per-rank buffers.
//
// Buffers live in a std::vector<B> indexed by rank; the same templates run
// with real particle blocks (kernel-ready particles::SoaBlock lanes) and
// phantom blocks (counts only), guaranteeing the cost accounting is
// payload-independent: bytes always derive from particle counts, never from
// the host-resident layout being moved.
//
// Each primitive both charges the VirtualComm and moves the data — in that
// order, always: every virtual-time/message/byte charge is computed from
// particle counts BEFORE a single lane is touched, so nothing about how the
// host executes the movement (pooled buffers, lane-subset copies, worker
// threads) can perturb a ledger, clock, or trace (DESIGN.md, "host data
// plane vs. virtual cost model").
//
// Host execution has two modes, selected by the optional DataPlane*:
//  * plane == nullptr — the legacy serial path: plain copy-assignment,
//    per-call allocation where the old code allocated. Kept as the bitwise
//    reference arm of the data-plane property test.
//  * plane != nullptr — the zero-allocation path: capacity-preserving
//    lane-subset assigns (SoaBlock::assign_replica_from /
//    assign_visitor_from), swap-cycled permutation scratch, and disjoint
//    destination copies fanned across the plane's host ThreadPool. Outputs
//    are bitwise identical to the legacy arm (property-tested): copies are
//    copies, and the reduce fold preserves the serial row order per element
//    (see reduce_teams below for why a true pairwise tree would not).
//
// When a CommObserver is attached to the VirtualComm, the primitives also
// report HOST wall seconds per phase through on_host_phase — observation
// only, never fed back.
//
// When a Transport is attached to the VirtualComm (transport.hpp), every
// message additionally crosses the byte fabric: locally-owned sources are
// serialized and sent BEFORE the host move, and locally-owned destinations
// are overwritten with the deserialized wire bytes AFTER it — the receiver
// *adopts* the fabric's bytes, so a transport bug corrupts trajectories
// and fails the parity suite instead of hiding behind the host copy. The
// charge still precedes everything, so ledgers/clocks/traces are bitwise
// unchanged. Payload types without wire support (engine-private structs)
// silently keep the host-only move, which under the SPMD-replicated socket
// arm is still correct — just not wire-exercised. The transport arms are
// exempt from the zero-allocation contract (serialization buffers).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "vmpi/buffer_pool.hpp"
#include "vmpi/virtual_comm.hpp"

namespace canb::vmpi {

namespace detail {

/// Capacity-preserving full copy (falls back to operator= for payloads
/// without assign_from, e.g. PhantomBlock).
template <class B>
void assign_full(B& dst, const B& src) {
  if constexpr (requires { dst.assign_from(src); }) {
    dst.assign_from(src);
  } else {
    dst = src;
  }
}

/// Copy of the lanes a broadcast replica needs (kernel inputs + force
/// accumulators); full copy for payloads without the specialization.
template <class B>
void assign_replica(B& dst, const B& src) {
  if constexpr (requires { dst.assign_replica_from(src); }) {
    dst.assign_replica_from(src);
  } else {
    assign_full(dst, src);
  }
}

/// Copy of the lanes a staged visitor block needs (kernel inputs only);
/// full copy for payloads without the specialization.
template <class B>
void assign_visitor(B& dst, const B& src) {
  if constexpr (requires { dst.assign_visitor_from(src); }) {
    dst.assign_visitor_from(src);
  } else {
    assign_full(dst, src);
  }
}

/// Size-only install for a non-resident destination under owner-computes:
/// every charge derives from Policy::bytes/count of the buffer at charge
/// time, so a buffer this process never computes with must still track the
/// correct *length* — the lanes may hold stale zeros. Payloads without
/// resize (PhantomBlock is pure counts) take the full copy, which is just
/// as cheap.
template <class B>
void phantom_assign(B& dst, const B& src) {
  if constexpr (requires { dst.resize(src.size()); }) {
    dst.resize(src.size());
  } else {
    assign_full(dst, src);
  }
}

/// Member swap when the payload has one (SoaBlock's is noexcept and
/// lane-wise); std::swap for plain payloads (ints, PhantomBlock).
template <class B>
void swap_payload(B& a, B& b) {
  if constexpr (requires { a.swap(b); }) {
    a.swap(b);
  } else {
    using std::swap;
    swap(a, b);
  }
}

/// RAII host-phase wall timer: reports to the comm's observer (if any) on
/// destruction. Purely observational — the measured seconds never feed
/// back into any cost.
class HostPhaseTimer {
 public:
  HostPhaseTimer(const VirtualComm& vc, Phase phase) : obs_(vc.observer()), phase_(phase) {
    if (obs_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~HostPhaseTimer() {
    if (obs_ != nullptr) {
      obs_->on_host_phase(
          phase_,
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count());
    }
  }
  HostPhaseTimer(const HostPhaseTimer&) = delete;
  HostPhaseTimer& operator=(const HostPhaseTimer&) = delete;

 private:
  CommObserver* obs_;
  Phase phase_;
  std::chrono::steady_clock::time_point start_{};
};

/// Routes one permutation round through an attached transport. Sends are
/// serialized from the pre-move buffers, the host move runs (it doubles as
/// the replicated fallback for ranks this endpoint does not own), then
/// every locally-owned destination adopts the bytes that crossed the
/// fabric. Falls through to a plain host move when no transport is
/// attached or the payload has no wire support.
template <class B, class SrcFn, class MoveFn>
void permute_with_transport(VirtualComm& vc, SrcFn&& src_of, std::vector<B>& bufs,
                            MoveFn&& move) {
  if constexpr (wire::serializable<B>) {
    if (Transport* t = vc.transport(); t != nullptr) {
      const std::uint64_t tag = vc.next_transport_tag();
      const int p = static_cast<int>(bufs.size());
      wire::Bytes bytes;
      for (int r = 0; r < p; ++r) {
        const int src = src_of(r);
        if (src == r || !t->local(src)) continue;
        wire::to_bytes(bufs[static_cast<std::size_t>(src)], bytes);
        t->send(src, r, tag, bytes);
      }
      move();
      for (int r = 0; r < p; ++r) {
        const int src = src_of(r);
        if (src == r || !t->local(r)) continue;
        t->recv(src, r, tag, bytes);
        wire::from_bytes(bufs[static_cast<std::size_t>(r)], bytes);
      }
      return;
    }
  }
  move();
}

/// Transport arm of broadcast_teams: each locally-owned leader serializes
/// once and sends to every team member; after the host copy, every
/// locally-owned non-leader adopts the wire bytes (full-copy install, the
/// legacy broadcast semantics).
template <class B, class CopyFn>
void broadcast_with_transport(VirtualComm& vc, const Grid2d& g, std::vector<B>& bufs,
                              CopyFn&& host_copy) {
  if constexpr (wire::serializable<B>) {
    if (Transport* t = vc.transport(); t != nullptr && g.rows() > 1) {
      const std::uint64_t tag = vc.next_transport_tag();
      wire::Bytes bytes;
      for (int col = 0; col < g.cols(); ++col) {
        const int leader = g.leader(col);
        if (!t->local(leader)) continue;
        wire::to_bytes(bufs[static_cast<std::size_t>(leader)], bytes);
        for (int row = 1; row < g.rows(); ++row) t->send(leader, g.rank(row, col), tag, bytes);
      }
      if (vc.owner_computes()) {
        // Resident destinations are installed by the wire adoption below;
        // non-resident ones only need their size kept in step for the cost
        // model, so the replicated host copy is replaced by phantom installs.
        for (int col = 0; col < g.cols(); ++col) {
          const auto& src = bufs[static_cast<std::size_t>(g.leader(col))];
          for (int row = 1; row < g.rows(); ++row) {
            const int dst = g.rank(row, col);
            if (!vc.resident(dst)) phantom_assign(bufs[static_cast<std::size_t>(dst)], src);
          }
        }
      } else {
        host_copy();
      }
      for (int col = 0; col < g.cols(); ++col) {
        const int leader = g.leader(col);
        for (int row = 1; row < g.rows(); ++row) {
          const int dst = g.rank(row, col);
          if (!t->local(dst)) continue;
          t->recv(leader, dst, tag, bytes);
          wire::from_bytes(bufs[static_cast<std::size_t>(dst)], bytes);
        }
      }
      return;
    }
  }
  host_copy();
}

/// Transport arm of reduce_teams. Every locally-owned member ships its
/// buffer to the leader; a locally-owned leader folds the *deserialized*
/// member blocks in strict row order (the same serial order as the host
/// fold — float addition does not associate), a remote leader's slot folds
/// the replicated local copies. Returns false (caller runs the host fold)
/// when no transport is attached or the payload has no wire support.
template <class B, class Combine>
bool reduce_with_transport(VirtualComm& vc, const Grid2d& g, std::vector<B>& bufs,
                           Combine&& combine) {
  if constexpr (wire::serializable<B>) {
    if (Transport* t = vc.transport(); t != nullptr && g.rows() > 1) {
      const std::uint64_t tag = vc.next_transport_tag();
      wire::Bytes bytes;
      for (int col = 0; col < g.cols(); ++col) {
        const int leader = g.leader(col);
        for (int row = 1; row < g.rows(); ++row) {
          const int m = g.rank(row, col);
          if (!t->local(m)) continue;
          wire::to_bytes(bufs[static_cast<std::size_t>(m)], bytes);
          t->send(m, leader, tag, bytes);
        }
      }
      B incoming{};
      for (int col = 0; col < g.cols(); ++col) {
        const int leader = g.leader(col);
        auto& acc = bufs[static_cast<std::size_t>(leader)];
        for (int row = 1; row < g.rows(); ++row) {
          const int m = g.rank(row, col);
          if (t->local(leader)) {
            t->recv(m, leader, tag, bytes);
            wire::from_bytes(incoming, bytes);
            combine(acc, incoming);
          } else if (!vc.owner_computes()) {
            // Lockstep keeps the replicated fold so every process holds the
            // full state; owner-computes skips it — a non-resident leader's
            // lanes are stale by contract, and combine never changes sizes.
            combine(acc, bufs[static_cast<std::size_t>(m)]);
          }
        }
      }
      return true;
    }
  }
  return false;
}

}  // namespace detail

/// Generic permutation round: rank r receives the buffer of src_of(r)
/// (which must be a permutation of 0..p-1). Used for the 2D cutoff
/// algorithm's window walks, where displacements wrap per-axis and cannot
/// be expressed as row rotations. `scratch` persists across calls and is
/// cycled by element-wise swap, so every block shell — including the ones
/// parked in scratch between calls — keeps its lane capacity and the round
/// allocates nothing after the first call.
template <class B, class BytesOf, class SrcFn>
void permute_buffers(VirtualComm& vc, SrcFn&& src_of, std::vector<B>& bufs,
                     std::vector<B>& scratch, BytesOf&& bytes_of, Phase phase,
                     bool shift_phase = true) {
  vc.permute_step(
      phase, src_of,
      [&](int src) { return static_cast<double>(bytes_of(bufs[static_cast<std::size_t>(src)])); },
      shift_phase);
  detail::HostPhaseTimer timer(vc, phase);
  if (scratch.size() != bufs.size()) scratch.resize(bufs.size());
  detail::permute_with_transport(vc, src_of, bufs, [&] {
    for (int r = 0; r < static_cast<int>(bufs.size()); ++r)
      detail::swap_payload(scratch[static_cast<std::size_t>(r)],
                           bufs[static_cast<std::size_t>(src_of(r))]);
    bufs.swap(scratch);
  });
}

/// Shifts every row's buffers east by `dist` columns (wrap-around). A rank
/// at (row, col) sends its buffer to (row, col+dist) and receives from
/// (row, col-dist). Zero-cost no-op when dist ≡ 0 (mod cols).
template <class B, class BytesOf>
void shift_rows(VirtualComm& vc, const Grid2d& g, int dist, std::vector<B>& bufs,
                BytesOf&& bytes_of, Phase phase = Phase::Shift) {
  CANB_ASSERT(static_cast<int>(bufs.size()) == g.size());
  const int q = g.cols();
  int d = dist % q;
  if (d < 0) d += q;
  if (d == 0) return;
  const auto src_of = [&g, d](int r) {
    return g.rank(g.row_of(r), g.wrap_col(g.col_of(r), -d));
  };
  vc.permute_step(
      phase, src_of,
      [&](int src) { return static_cast<double>(bytes_of(bufs[static_cast<std::size_t>(src)])); },
      /*shift_phase=*/true);
  detail::HostPhaseTimer timer(vc, phase);
  detail::permute_with_transport(vc, src_of, bufs, [&] {
    for (int row = 0; row < g.rows(); ++row) {
      const auto first = bufs.begin() + static_cast<std::ptrdiff_t>(g.rank(row, 0));
      // Rotate right by d: element at col moves to col+d.
      std::rotate(first, first + (q - d), first + q);
    }
  });
}

/// Row-dependent shift: row k shifts east by dist_of_row(k) columns. Used
/// for the initial skew of Algorithms 1 and 2. A persistent `dist_scratch`
/// (the DataPlane's int scratch) makes the per-step call allocation-free;
/// null falls back to a per-call local vector.
template <class B, class BytesOf, class DistFn>
void skew_rows(VirtualComm& vc, const Grid2d& g, DistFn&& dist_of_row, std::vector<B>& bufs,
               BytesOf&& bytes_of, Phase phase = Phase::Skew,
               std::vector<int>* dist_scratch = nullptr) {
  CANB_ASSERT(static_cast<int>(bufs.size()) == g.size());
  const int q = g.cols();
  std::vector<int> local;
  std::vector<int>& d = dist_scratch != nullptr ? *dist_scratch : local;
  d.resize(static_cast<std::size_t>(g.rows()));
  for (int row = 0; row < g.rows(); ++row) {
    int v = dist_of_row(row) % q;
    if (v < 0) v += q;
    d[static_cast<std::size_t>(row)] = v;
  }
  const auto src_of = [&g, &d](int r) {
    const int row = g.row_of(r);
    return g.rank(row, g.wrap_col(g.col_of(r), -d[static_cast<std::size_t>(row)]));
  };
  vc.permute_step(
      phase, src_of,
      [&](int src) { return static_cast<double>(bytes_of(bufs[static_cast<std::size_t>(src)])); },
      /*shift_phase=*/false);
  detail::HostPhaseTimer timer(vc, phase);
  detail::permute_with_transport(vc, src_of, bufs, [&] {
    for (int row = 0; row < g.rows(); ++row) {
      const int dd = d[static_cast<std::size_t>(row)];
      if (dd == 0) continue;
      const auto first = bufs.begin() + static_cast<std::ptrdiff_t>(g.rank(row, 0));
      std::rotate(first, first + (q - dd), first + q);
    }
  });
}

/// Broadcasts each team leader's buffer to the rest of its team (column).
/// With a DataPlane the c-1 replica copies per team are capacity-preserving
/// lane-subset assigns, fanned across the host pool — every destination is
/// a distinct block, so parallel order cannot change any bit of the result.
template <class B, class BytesOf>
void broadcast_teams(VirtualComm& vc, const Grid2d& g, std::vector<B>& bufs, BytesOf&& bytes_of,
                     Phase phase = Phase::Broadcast, DataPlane<B>* plane = nullptr) {
  CANB_ASSERT(static_cast<int>(bufs.size()) == g.size());
  vc.team_broadcast(g, phase, [&](int col) {
    return static_cast<double>(bytes_of(bufs[static_cast<std::size_t>(g.leader(col))]));
  });
  detail::HostPhaseTimer timer(vc, phase);
  detail::broadcast_with_transport(vc, g, bufs, [&] {
    if (plane == nullptr) {
      for (int col = 0; col < g.cols(); ++col) {
        const auto& src = bufs[static_cast<std::size_t>(g.leader(col))];
        for (int row = 1; row < g.rows(); ++row)
          bufs[static_cast<std::size_t>(g.rank(row, col))] = src;
      }
      return;
    }
    const int replicas = g.rows() - 1;
    if (replicas <= 0) return;
    plane->for_chunks(g.cols() * replicas, [&](int b, int e) {
      for (int t = b; t < e; ++t) {
        const int col = t / replicas;
        const int row = 1 + t % replicas;
        detail::assign_replica(bufs[static_cast<std::size_t>(g.rank(row, col))],
                               bufs[static_cast<std::size_t>(g.leader(col))]);
      }
    });
  });
}

/// Copies every rank's resident buffer into a staging array (the exchange
/// copy both CA engines make right after the broadcast). With a DataPlane
/// the copies fan across the host pool; `stage(rank, dst, src)` lets
/// callers stage into wrapper types (CaAllPairs' Carried) and pick a
/// lane-subset assign. Destinations are disjoint per rank, so parallel
/// order cannot change a bit.
template <class B, class Staged, class StageFn>
void stage_buffers(VirtualComm& vc, const std::vector<B>& bufs, std::vector<Staged>& staged,
                   StageFn&& stage, DataPlane<B>* plane = nullptr) {
  CANB_ASSERT(bufs.size() == staged.size());
  detail::HostPhaseTimer timer(vc, Phase::Skew);
  const int n = static_cast<int>(bufs.size());
  auto body = [&](int b, int e) {
    for (int r = b; r < e; ++r)
      stage(r, staged[static_cast<std::size_t>(r)], bufs[static_cast<std::size_t>(r)]);
  };
  if (plane != nullptr) {
    plane->for_chunks(n, body);
  } else {
    body(0, n);
  }
}

/// Reduces each team's buffers into the leader's buffer using
/// combine(acc, in). Non-leader buffers are left untouched.
///
/// Host parallelism note: the serial fold order (row 1, then 2, ... into
/// the leader) is part of the bitwise contract — the real-policy combine
/// folds float force lanes, and float addition does not associate, so a
/// genuine pairwise tree would change low bits relative to every
/// pre-existing trajectory and golden baseline. Parallelism therefore comes
/// from the two axes that ARE independent: distinct columns, and (when the
/// combine is range-invocable) disjoint element ranges within a column.
/// Every element still sees rows folded in exactly the serial order.
template <class B, class BytesOf, class Combine>
void reduce_teams(VirtualComm& vc, const Grid2d& g, std::vector<B>& bufs, BytesOf&& bytes_of,
                  Combine&& combine, Phase phase = Phase::Reduce, DataPlane<B>* plane = nullptr) {
  CANB_ASSERT(static_cast<int>(bufs.size()) == g.size());
  vc.team_reduce(g, phase, [&](int col) {
    return static_cast<double>(bytes_of(bufs[static_cast<std::size_t>(g.leader(col))]));
  });
  detail::HostPhaseTimer timer(vc, phase);
  if (detail::reduce_with_transport(vc, g, bufs, combine)) return;
  const int q = g.cols();
  const int rows = g.rows();
  if (plane == nullptr || rows <= 1) {
    for (int col = 0; col < q; ++col) {
      auto& acc = bufs[static_cast<std::size_t>(g.leader(col))];
      for (int row = 1; row < rows; ++row)
        combine(acc, bufs[static_cast<std::size_t>(g.rank(row, col))]);
    }
    return;
  }
  constexpr bool kRanged =
      std::is_invocable_v<Combine&, B&, const B&, std::size_t, std::size_t> &&
      requires(const B& b) { b.size(); };
  const int threads = plane->workers != nullptr ? plane->workers->thread_count() : 1;
  if constexpr (kRanged) {
    // Flatten (column, element-chunk) into one index space. Chunk count is
    // a pure scheduling knob: each element's fold lives entirely inside one
    // task, so results are identical for any chunking or thread count.
    const int chunks = std::max(1, (2 * threads) / std::max(1, q));
    plane->for_chunks(q * chunks, [&](int b, int e) {
      for (int t = b; t < e; ++t) {
        const int col = t / chunks;
        const int k = t % chunks;
        auto& acc = bufs[static_cast<std::size_t>(g.leader(col))];
        const std::size_t n = acc.size();
        const std::size_t lo = n * static_cast<std::size_t>(k) / static_cast<std::size_t>(chunks);
        const std::size_t hi =
            n * static_cast<std::size_t>(k + 1) / static_cast<std::size_t>(chunks);
        if (lo >= hi) continue;
        for (int row = 1; row < rows; ++row)
          combine(acc, bufs[static_cast<std::size_t>(g.rank(row, col))], lo, hi);
      }
    });
  } else {
    plane->for_chunks(q, [&](int b, int e) {
      for (int col = b; col < e; ++col) {
        auto& acc = bufs[static_cast<std::size_t>(g.leader(col))];
        for (int row = 1; row < rows; ++row)
          combine(acc, bufs[static_cast<std::size_t>(g.rank(row, col))]);
      }
    });
  }
}

}  // namespace canb::vmpi
