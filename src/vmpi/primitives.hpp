// Data-moving communication primitives over per-rank buffers.
//
// Buffers live in a std::vector<B> indexed by rank; the same templates run
// with real particle blocks (kernel-ready particles::SoaBlock lanes) and
// phantom blocks (counts only), guaranteeing the cost accounting is
// payload-independent: bytes always derive from particle counts, never from
// the host-resident layout being moved.
// Each primitive both moves the data and charges the VirtualComm.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "vmpi/virtual_comm.hpp"

namespace canb::vmpi {

/// Generic permutation round: rank r receives the buffer of src_of(r)
/// (which must be a permutation of 0..p-1). Used for the 2D cutoff
/// algorithm's window walks, where displacements wrap per-axis and cannot
/// be expressed as row rotations. `scratch` avoids reallocation across
/// calls; it is resized as needed.
template <class B, class BytesOf, class SrcFn>
void permute_buffers(VirtualComm& vc, SrcFn&& src_of, std::vector<B>& bufs,
                     std::vector<B>& scratch, BytesOf&& bytes_of, Phase phase,
                     bool shift_phase = true) {
  vc.permute_step(
      phase, src_of,
      [&](int src) { return static_cast<double>(bytes_of(bufs[static_cast<std::size_t>(src)])); },
      shift_phase);
  scratch.resize(bufs.size());
  for (int r = 0; r < static_cast<int>(bufs.size()); ++r)
    scratch[static_cast<std::size_t>(r)] = std::move(bufs[static_cast<std::size_t>(src_of(r))]);
  bufs.swap(scratch);
}

/// Shifts every row's buffers east by `dist` columns (wrap-around). A rank
/// at (row, col) sends its buffer to (row, col+dist) and receives from
/// (row, col-dist). Zero-cost no-op when dist ≡ 0 (mod cols).
template <class B, class BytesOf>
void shift_rows(VirtualComm& vc, const Grid2d& g, int dist, std::vector<B>& bufs,
                BytesOf&& bytes_of, Phase phase = Phase::Shift) {
  CANB_ASSERT(static_cast<int>(bufs.size()) == g.size());
  const int q = g.cols();
  int d = dist % q;
  if (d < 0) d += q;
  if (d == 0) return;
  vc.permute_step(
      phase, [&](int r) { return g.rank(g.row_of(r), g.wrap_col(g.col_of(r), -d)); },
      [&](int src) { return static_cast<double>(bytes_of(bufs[static_cast<std::size_t>(src)])); },
      /*shift_phase=*/true);
  for (int row = 0; row < g.rows(); ++row) {
    const auto first = bufs.begin() + static_cast<std::ptrdiff_t>(g.rank(row, 0));
    // Rotate right by d: element at col moves to col+d.
    std::rotate(first, first + (q - d), first + q);
  }
}

/// Row-dependent shift: row k shifts east by dist_of_row(k) columns. Used
/// for the initial skew of Algorithms 1 and 2.
template <class B, class BytesOf, class DistFn>
void skew_rows(VirtualComm& vc, const Grid2d& g, DistFn&& dist_of_row, std::vector<B>& bufs,
               BytesOf&& bytes_of, Phase phase = Phase::Skew) {
  CANB_ASSERT(static_cast<int>(bufs.size()) == g.size());
  const int q = g.cols();
  std::vector<int> d(static_cast<std::size_t>(g.rows()));
  for (int row = 0; row < g.rows(); ++row) {
    int v = dist_of_row(row) % q;
    if (v < 0) v += q;
    d[static_cast<std::size_t>(row)] = v;
  }
  vc.permute_step(
      phase,
      [&](int r) {
        const int row = g.row_of(r);
        return g.rank(row, g.wrap_col(g.col_of(r), -d[static_cast<std::size_t>(row)]));
      },
      [&](int src) { return static_cast<double>(bytes_of(bufs[static_cast<std::size_t>(src)])); },
      /*shift_phase=*/false);
  for (int row = 0; row < g.rows(); ++row) {
    const int dd = d[static_cast<std::size_t>(row)];
    if (dd == 0) continue;
    const auto first = bufs.begin() + static_cast<std::ptrdiff_t>(g.rank(row, 0));
    std::rotate(first, first + (q - dd), first + q);
  }
}

/// Broadcasts each team leader's buffer to the rest of its team (column).
template <class B, class BytesOf>
void broadcast_teams(VirtualComm& vc, const Grid2d& g, std::vector<B>& bufs, BytesOf&& bytes_of,
                     Phase phase = Phase::Broadcast) {
  CANB_ASSERT(static_cast<int>(bufs.size()) == g.size());
  vc.team_broadcast(g, phase, [&](int col) {
    return static_cast<double>(bytes_of(bufs[static_cast<std::size_t>(g.leader(col))]));
  });
  for (int col = 0; col < g.cols(); ++col) {
    const auto& src = bufs[static_cast<std::size_t>(g.leader(col))];
    for (int row = 1; row < g.rows(); ++row)
      bufs[static_cast<std::size_t>(g.rank(row, col))] = src;
  }
}

/// Reduces each team's buffers into the leader's buffer using
/// combine(acc, in). Non-leader buffers are left untouched.
template <class B, class BytesOf, class Combine>
void reduce_teams(VirtualComm& vc, const Grid2d& g, std::vector<B>& bufs, BytesOf&& bytes_of,
                  Combine&& combine, Phase phase = Phase::Reduce) {
  CANB_ASSERT(static_cast<int>(bufs.size()) == g.size());
  vc.team_reduce(g, phase, [&](int col) {
    return static_cast<double>(bytes_of(bufs[static_cast<std::size_t>(g.leader(col))]));
  });
  for (int col = 0; col < g.cols(); ++col) {
    auto& acc = bufs[static_cast<std::size_t>(g.leader(col))];
    for (int row = 1; row < g.rows(); ++row)
      combine(acc, bufs[static_cast<std::size_t>(g.rank(row, col))]);
  }
}

}  // namespace canb::vmpi
