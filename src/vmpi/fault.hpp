// PerturbationModel: deterministic fault and straggler injection for the
// virtual machine.
//
// The paper's claims are critical-path claims — max-over-ranks time under an
// ideal alpha-beta-gamma schedule. Real machines jitter: ranks straggle
// (OS noise, DVFS), links degrade (congestion, failing cables), messages
// drop and must be retransmitted. This model perturbs the *costs* charged
// to the VirtualComm without touching the data movement, so physics stays
// exact while the clocks and the CostLedger reflect a degraded machine.
//
// Determinism contract:
//  * Every stochastic decision draws from a per-rank xoshiro256** stream
//    (support/rng) seeded from (seed, rank) via SplitMix64, or from a
//    stateless hash of the link endpoints. A rank's draws happen in its own
//    event order, so results are independent of rank iteration order and of
//    the host thread count (per-rank engine loops are sequential per rank).
//  * A model with all rates zero is inert: every factor is exactly 1.0 and
//    no retries occur, so attaching it leaves clocks, ledgers, and
//    trajectories bitwise identical to the unattached run (tested).
//  * reset() reseeds the streams, so VirtualComm::reset() reproduces the
//    same perturbation sequence on a fresh run.
//
// Injection points (hooks called by VirtualComm):
//  * compute_factor(rank)      — multiplies charge_interactions time:
//    lognormal jitter plus occasional straggler events.
//  * link_factor(src, dst)     — stateless per-directed-link degradation
//    multiplier on point-to-point message cost.
//  * collective_factor(...)    — worst degraded tree edge of a collective.
//  * plan_delivery(dst, cost)  — drop/retry schedule for one message:
//    each dropped attempt costs a timeout (exponential backoff) plus a
//    retransmission; retries/timeouts land in the CostLedger.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace canb::vmpi {

struct FaultConfig {
  std::uint64_t seed = 2013;

  // --- compute perturbation (charge_interactions) -----------------------
  double jitter = 0.0;            ///< lognormal sigma on every compute charge
  double straggler_rate = 0.0;    ///< per-charge probability of a straggler event
  double straggler_factor = 4.0;  ///< slowdown multiplier while straggling

  // --- link degradation (point-to-point and collective costing) ---------
  double link_degrade_rate = 0.0;    ///< fraction of directed links degraded
  double link_degrade_factor = 4.0;  ///< cost multiplier on a degraded link

  // --- message loss (point-to-point rounds) -----------------------------
  double drop_rate = 0.0;       ///< per-attempt drop probability
  double timeout_factor = 3.0;  ///< first timeout = factor * attempt cost
  double backoff = 2.0;         ///< timeout multiplier per further attempt
  int max_attempts = 10;        ///< delivery is forced on the final attempt

  bool compute_active() const noexcept { return jitter > 0.0 || straggler_rate > 0.0; }
  bool link_active() const noexcept {
    return link_degrade_rate > 0.0 && link_degrade_factor != 1.0;
  }
  bool drop_active() const noexcept { return drop_rate > 0.0; }
  bool active() const noexcept { return compute_active() || link_active() || drop_active(); }

  /// Throws PreconditionError on nonsensical rates/factors.
  void validate() const;
};

class PerturbationModel {
 public:
  /// Outcome of delivering one message to a destination rank.
  struct Delivery {
    std::uint64_t retries = 0;   ///< retransmissions (dropped attempts)
    std::uint64_t timeouts = 0;  ///< timeout expirations waited out
    double extra_seconds = 0.0;  ///< wait + retransmission time beyond the clean send
  };

  PerturbationModel(FaultConfig cfg, int p);

  const FaultConfig& config() const noexcept { return cfg_; }
  int ranks() const noexcept { return static_cast<int>(streams_.size()); }
  bool active() const noexcept { return cfg_.active(); }

  /// Reseeds every per-rank stream; the next run replays the same faults.
  void reset();

  /// Multiplier on one compute charge for `rank`. Draws from the rank's
  /// stream; exactly 1.0 when compute perturbation is off. Safe to call
  /// concurrently for distinct ranks.
  double compute_factor(int rank) noexcept;

  /// Degradation multiplier of the directed link src -> dst. Stateless
  /// (hash of seed and endpoints): the same link is degraded for the whole
  /// run, matching a failing cable rather than per-message noise.
  double link_factor(int src, int dst) const noexcept;

  /// Degradation multiplier for a tree collective rooted at `root`:
  /// the worst root->member edge bounds the pipelined tree.
  template <class MemberFn>
  double collective_factor(int root, int members, MemberFn&& member_of) const noexcept {
    if (!cfg_.link_active()) return 1.0;
    double worst = 1.0;
    for (int i = 0; i < members; ++i) {
      const int m = member_of(i);
      if (m == root) continue;
      const double f = link_factor(root, m);
      if (f > worst) worst = f;
    }
    return worst;
  }

  /// Drop/retry schedule for one message whose clean (possibly degraded)
  /// cost is `attempt_cost`. Draws from the *destination* rank's stream:
  /// the receiver is the rank that waits, and each rank receives exactly
  /// once per permutation round, keeping draws order-independent.
  Delivery plan_delivery(int dst, double attempt_cost) noexcept;

 private:
  FaultConfig cfg_;
  std::vector<Xoshiro256> streams_;  ///< one stream per rank
};

}  // namespace canb::vmpi
