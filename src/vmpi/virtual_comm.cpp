#include "vmpi/virtual_comm.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace canb::vmpi {

VirtualComm::VirtualComm(int p, machine::MachineModel model)
    : p_(p), model_(std::move(model)), ledger_(p) {
  CANB_REQUIRE(p >= 1, "VirtualComm needs p >= 1");
  model_.validate();
  clock_.assign(static_cast<std::size_t>(p), 0.0);
  scratch_.assign(static_cast<std::size_t>(p), 0.0);
  if (model_.alpha_hop > 0.0) {
    // Hop-aware charging needs a topology covering exactly p ranks; reuse
    // the model's if it fits, otherwise build a balanced torus.
    if (model_.topology && model_.topology->size() == p) {
      hop_topology_ = model_.topology;
    } else {
      hop_topology_ =
          std::make_shared<machine::Topology>(machine::Topology::balanced_torus3d(p));
    }
  }
}

double VirtualComm::clock(int rank) const {
  CANB_ASSERT(rank >= 0 && rank < p_);
  return clock_[static_cast<std::size_t>(rank)];
}

double VirtualComm::max_clock() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

void VirtualComm::reset() {
  std::fill(clock_.begin(), clock_.end(), 0.0);
  ledger_.reset();
  if (trace_) trace_->clear();
  // Reseed the fault streams so a reset run replays the same perturbations.
  if (fault_) fault_->reset();
  // Restart the transport tag sequence so a reset run re-matches its flows.
  transport_tag_ = 0;
}

void VirtualComm::advance(int rank, Phase phase, double seconds, std::uint64_t messages,
                          std::uint64_t bytes) {
  CANB_ASSERT(rank >= 0 && rank < p_);
  CANB_ASSERT_MSG(seconds >= -1e-15, "clocks cannot run backwards");
  ledger_.charge(rank, phase, seconds, messages, bytes);
  clock_[static_cast<std::size_t>(rank)] += seconds;
}

void VirtualComm::charge_interactions(int rank, double interactions) {
  double seconds = model_.compute_time(interactions);
  if (fault_) seconds *= fault_->compute_factor(rank);
  // Safe from host worker threads: observers accumulate per rank, and the
  // engine force loops are sequential per rank (like the ledger rows).
  if (obs_) obs_->on_compute(rank, seconds);
  advance(rank, Phase::Compute, seconds);
}

void VirtualComm::advance_all(Phase phase, double seconds, std::uint64_t messages,
                              std::uint64_t bytes, std::uint64_t repeat) {
  ledger_.charge_all(phase, seconds, messages, bytes, repeat);
  const double dt = seconds * static_cast<double>(repeat);
  for (auto& c : clock_) c += dt;
}

void VirtualComm::whole_machine_collective(Phase phase, double bytes, bool is_reduce) {
  if (p_ <= 1) return;
  double t0 = 0.0;
  for (double c : clock_) t0 = std::max(t0, c);
  machine::CollectiveContext ctx{p_, bytes, p_, /*whole_partition=*/true};
  double t_coll = is_reduce ? model_.reduce_time(ctx) : model_.broadcast_time(ctx);
  if (fault_) t_coll *= fault_->collective_factor(0, p_, [](int i) { return i; });
  if (obs_) obs_->on_collective(phase, is_reduce, p_, static_cast<std::uint64_t>(bytes), t_coll);
  const double finish = t0 + t_coll;
  const auto msgs = static_cast<std::uint64_t>(model_.collective_messages(p_));
  for (int r = 0; r < p_; ++r) {
    advance(r, phase, finish - clock_[static_cast<std::size_t>(r)], msgs,
            static_cast<std::uint64_t>(bytes));
    clock_[static_cast<std::size_t>(r)] = finish;
  }
}

void VirtualComm::synchronize(Phase phase) {
  const double t = max_clock();
  for (int r = 0; r < p_; ++r) {
    advance(r, phase, t - clock_[static_cast<std::size_t>(r)]);
    clock_[static_cast<std::size_t>(r)] = t;
  }
}

void VirtualComm::snapshot_clocks() { scratch_ = clock_; }

}  // namespace canb::vmpi
