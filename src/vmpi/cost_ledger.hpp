// Per-rank, per-phase accounting of virtual time, messages, and bytes.
//
// The ledger maintains the invariant that a rank's virtual clock equals the
// sum of its per-phase seconds: every clock advance is attributed to exactly
// one phase (waiting for a sender is charged to the communication phase that
// waited — this is how load imbalance surfaces in the shift bars of Fig. 6).
//
// Message/byte counts follow the paper's accounting: S counts messages and
// W counts data volume along the critical path, i.e. the per-rank maxima of
// the totals (Section II-A).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace canb::vmpi {

/// Phases mirror the stacked-bar breakdown in the paper's figures.
enum class Phase : int {
  Compute = 0,
  Broadcast,
  Skew,
  Shift,
  Reduce,
  Reassign,
  Other,
};
inline constexpr int kPhaseCount = 7;
const char* phase_name(Phase p) noexcept;

struct PhaseTotals {
  double seconds = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t retries = 0;   ///< retransmissions after message drops
  std::uint64_t timeouts = 0;  ///< timeout expirations waited out
};

class CostLedger {
 public:
  explicit CostLedger(int p);

  int ranks() const noexcept { return p_; }

  void charge(int rank, Phase phase, double seconds, std::uint64_t messages = 0,
              std::uint64_t bytes = 0);

  /// Adds the same charge to every rank (bulk fast path for uniform steps).
  void charge_all(Phase phase, double seconds, std::uint64_t messages, std::uint64_t bytes,
                  std::uint64_t repeat = 1);

  /// Records fault-injection events (retransmissions and timeouts) against
  /// one rank and phase. The *time* they cost is charged separately through
  /// charge(); these counters only classify it. Zero under a fault-free run.
  void charge_fault(int rank, Phase phase, std::uint64_t retries, std::uint64_t timeouts);

  void reset();

  // --- queries ----------------------------------------------------------
  double seconds(int rank, Phase phase) const;
  double total_seconds(int rank) const;
  std::uint64_t messages(int rank) const;
  std::uint64_t bytes(int rank) const;
  std::uint64_t retries(int rank) const;
  std::uint64_t timeouts(int rank) const;

  /// Rank with the largest total virtual time (the critical rank).
  int critical_rank() const;

  /// Breakdown of the critical rank — what the paper's bar charts show.
  std::array<PhaseTotals, kPhaseCount> critical_breakdown() const;

  /// Critical-path S: max over ranks of total messages.
  std::uint64_t critical_messages() const;
  /// Critical-path W: max over ranks of total bytes.
  std::uint64_t critical_bytes() const;
  /// Max over ranks of total retries / timeouts (degraded-run reporting).
  std::uint64_t critical_retries() const;
  std::uint64_t critical_timeouts() const;

  /// Aggregate totals over all ranks (for traffic accounting).
  PhaseTotals aggregate(Phase phase) const;
  std::uint64_t aggregate_messages() const;
  std::uint64_t aggregate_bytes() const;
  std::uint64_t aggregate_retries() const;
  std::uint64_t aggregate_timeouts() const;

  /// Per-rank total seconds (for imbalance statistics).
  std::vector<double> per_rank_seconds() const;

 private:
  int p_;
  // Layout: phase-major contiguous arrays for cache-friendly hot loops.
  std::array<std::vector<double>, kPhaseCount> seconds_;
  std::array<std::vector<std::uint64_t>, kPhaseCount> messages_;
  std::array<std::vector<std::uint64_t>, kPhaseCount> bytes_;
  std::array<std::vector<std::uint64_t>, kPhaseCount> retries_;
  std::array<std::vector<std::uint64_t>, kPhaseCount> timeouts_;
};

}  // namespace canb::vmpi
