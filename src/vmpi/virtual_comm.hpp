// VirtualComm: p virtual ranks with per-rank clocks, executing synchronous
// communication steps against a MachineModel.
//
// Semantics:
//  * permute_step models an MPI_Sendrecv round: every rank sends one message
//    and receives one; the receiver's clock becomes
//    max(own, sender) + (alpha + beta*bytes). The elapsed time (including
//    any wait for a slow sender) is charged to the given phase.
//  * team_broadcast / team_reduce model tree collectives within each column
//    of a Grid2d; all members synchronize at max(member clocks) + T_coll.
//  * Message/byte accounting follows the paper (Section III-B): a tree
//    collective on c ranks charges ceil(log2 c) messages and O(w) bytes to
//    the critical path (pipelined tree), a point-to-point round charges one
//    message of w bytes.
//
// Data movement lives in primitives.hpp; this class is cost-only, which is
// what allows identical accounting for real and phantom payloads.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine_model.hpp"
#include "support/assert.hpp"
#include "vmpi/cost_ledger.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/grid.hpp"
#include "vmpi/observer.hpp"
#include "vmpi/trace.hpp"
#include "vmpi/transport.hpp"

namespace canb::vmpi {

class VirtualComm {
 public:
  VirtualComm(int p, machine::MachineModel model);

  int size() const noexcept { return p_; }
  const machine::MachineModel& model() const noexcept { return model_; }

  double clock(int rank) const;
  double max_clock() const;

  CostLedger& ledger() noexcept { return ledger_; }
  const CostLedger& ledger() const noexcept { return ledger_; }

  /// Zeroes all clocks and the ledger (an attached trace is also cleared).
  void reset();

  /// Attaches a trace recorder (not owned; nullptr detaches). Tracing is
  /// for tests and debugging — it records every message.
  void set_trace(TraceRecorder* trace) noexcept { trace_ = trace; }
  TraceRecorder* trace() const noexcept { return trace_; }

  /// Attaches a fault/straggler model (not owned; nullptr detaches). The
  /// model perturbs *costs* only — data movement and physics are unchanged.
  /// A model with all rates zero is inert: clocks and ledgers stay bitwise
  /// identical to a detached run. Must cover exactly `size()` ranks.
  void set_fault(PerturbationModel* fault) {
    CANB_REQUIRE(fault == nullptr || fault->ranks() == p_,
                 "fault model must cover exactly p ranks");
    fault_ = fault;
  }
  PerturbationModel* fault() const noexcept { return fault_; }
  /// True when an attached model actually perturbs something (engines use
  /// this to disable uniform-schedule fast paths).
  bool fault_active() const noexcept { return fault_ != nullptr && fault_->active(); }

  /// Attaches a telemetry observer (not owned; nullptr detaches). Purely
  /// passive: every charge is reported after the fact, so an attached
  /// observer leaves clocks and ledgers bitwise identical (tested).
  void set_observer(CommObserver* obs) noexcept { obs_ = obs; }
  CommObserver* observer() const noexcept { return obs_; }

  /// Attaches a real byte transport (not owned; nullptr detaches and
  /// restores the default modeled arm). The primitives serialize payloads
  /// through it instead of assigning between rank heaps. Every virtual
  /// charge is issued *before* the bytes move, from particle counts alone,
  /// so an attached transport leaves clocks, ledgers, and traces bitwise
  /// identical to the modeled arm (pinned by tests/test_transport_parity).
  /// Must cover exactly `size()` ranks.
  void set_transport(Transport* t) {
    CANB_REQUIRE(t == nullptr || t->ranks() == p_, "transport must cover exactly p ranks");
    transport_ = t;
  }
  Transport* transport() const noexcept { return transport_; }

  /// Owner-computes execution: when enabled (requires an attached
  /// transport), engines and primitives skip the *physics* — force sweeps,
  /// reassign splits, data-plane copies — for ranks whose payloads live in
  /// another process group, while every virtual charge loop stays fully
  /// replicated so clocks, ledgers, and traces remain bitwise identical to
  /// the modeled arm. Lockstep (the default) keeps resident() always true.
  void set_owner_computes(bool on) {
    CANB_REQUIRE(!on || transport_ != nullptr, "owner-computes requires an attached transport");
    owner_computes_ = on;
  }
  bool owner_computes() const noexcept { return owner_computes_; }

  /// Whether `rank`'s particle payloads are materialized (and its physics
  /// executed) in this process. The single predicate the primitives and
  /// engines consult; always true outside owner-computes mode.
  bool resident(int rank) const noexcept {
    return !owner_computes_ || transport_ == nullptr || transport_->local(rank);
  }

  /// Per-round message tag for transport flows. Every primitive call draws
  /// one tag; under SPMD lockstep execution all processes draw the same
  /// sequence, which is what lets send/recv pairs match across processes
  /// without any negotiation. Counts up from 1 — tags at or above
  /// vmpi::kReservedTagBase belong to out-of-band control flows (telemetry
  /// snapshots) and are never allocated here.
  std::uint64_t next_transport_tag() noexcept { return ++transport_tag_; }

  /// Per-call tag for the owner-computes reassign count exchange. Lives in
  /// the reserved out-of-band range (never collides with data flows or
  /// telemetry snapshots); all processes draw the same sequence because the
  /// exchange happens at the same schedule point everywhere.
  std::uint64_t next_reassign_count_tag() noexcept {
    return kReassignCountTagBase + (++reassign_count_tag_);
  }

  // --- local charges -----------------------------------------------------
  /// Advances one rank's clock, attributing to `phase`.
  void advance(int rank, Phase phase, double seconds, std::uint64_t messages = 0,
               std::uint64_t bytes = 0);

  /// Charges `interactions` pairwise force evaluations to one rank.
  void charge_interactions(int rank, double interactions);

  /// Bulk fast path: advances every rank identically, `repeat` times.
  /// Exactly equivalent to `repeat` uniform per-rank advances.
  void advance_all(Phase phase, double seconds, std::uint64_t messages, std::uint64_t bytes,
                   std::uint64_t repeat = 1);

  // --- synchronous communication rounds -----------------------------------
  /// One permutation round: rank r receives from src_of(r) a message of
  /// bytes_from(src) bytes. `src_of` must be a permutation; a round trips
  /// every rank exactly once. If src_of(r) == r the rank neither sends nor
  /// receives (zero cost). `shift_phase` selects the (possibly
  /// torus-optimized) shift cost instead of plain point-to-point.
  template <class SrcFn, class BytesFn>
  void permute_step(Phase phase, SrcFn&& src_of, BytesFn&& bytes_from, bool shift_phase = true) {
    snapshot_clocks();
    if (trace_) trace_->begin_round();
    const auto& m = model_;
    // Hop-aware latency is opt-in (alpha_hop > 0): virtual ranks map
    // rank-order onto the machine's torus, so message distance follows the
    // schedule's column displacement.
    const bool hop_aware = m.alpha_hop > 0.0 && hop_topology_ != nullptr;
    for (int r = 0; r < p_; ++r) {
      const int src = src_of(r);
      if (src == r) continue;
      const double w = bytes_from(src);
      // Empty payloads send no message (e.g. boundary leaders in the
      // re-assignment exchange have nothing to route outward).
      if (w <= 0.0) continue;
      const int hops = hop_aware ? hop_topology_->hops(src, r) : 1;
      double cost = shift_phase ? m.shift_time(w, hops) : m.p2p_time(w, hops);
      std::uint64_t msgs = 1;
      std::uint64_t wire_bytes = static_cast<std::uint64_t>(w);
      std::uint64_t retries = 0;
      std::uint64_t timeouts = 0;
      if (fault_) {
        // A degraded link slows the whole transfer; drops cost a timeout
        // wait plus a full retransmission per failed attempt, all charged
        // to the receiving rank's clock in this phase.
        cost *= fault_->link_factor(src, r);
        const auto d = fault_->plan_delivery(r, cost);
        if (d.retries > 0) {
          cost += d.extra_seconds;
          msgs += d.retries;
          wire_bytes += static_cast<std::uint64_t>(w) * d.retries;
          retries = d.retries;
          timeouts = d.timeouts;
          ledger_.charge_fault(r, phase, d.retries, d.timeouts);
        }
      }
      if (trace_) trace_->record_p2p(phase, src, r, static_cast<std::uint64_t>(w), retries, timeouts);
      const double start = std::max(clock_[static_cast<std::size_t>(r)],
                                    scratch_[static_cast<std::size_t>(src)]);
      const double finish = start + cost;
      if (obs_) {
        obs_->on_p2p(phase, src, r, static_cast<std::uint64_t>(w),
                     start - clock_[static_cast<std::size_t>(r)], cost, retries, timeouts);
      }
      advance(r, phase, finish - clock_[static_cast<std::size_t>(r)], msgs, wire_bytes);
      clock_[static_cast<std::size_t>(r)] = finish;
    }
  }

  /// Tree broadcast within every column (team) of `grid`.
  /// bytes_of_team(col) gives the payload size per team.
  template <class BytesFn>
  void team_broadcast(const Grid2d& grid, Phase phase, BytesFn&& bytes_of_team) {
    team_collective(grid, phase, /*is_reduce=*/false, std::forward<BytesFn>(bytes_of_team));
  }

  /// Tree reduction within every column (team) of `grid`.
  template <class BytesFn>
  void team_reduce(const Grid2d& grid, Phase phase, BytesFn&& bytes_of_team) {
    team_collective(grid, phase, /*is_reduce=*/true, std::forward<BytesFn>(bytes_of_team));
  }

  /// A collective over ALL ranks moving `bytes` per rank (naive all-gather
  /// baseline; may hit a hardware tree network if the model has one).
  void whole_machine_collective(Phase phase, double bytes, bool is_reduce);

  /// Tree collectives over arbitrary disjoint rank groups (used by the
  /// Plimpton force decomposition, whose row and column broadcasts do not
  /// match the Grid2d team layout). bytes_of_group(g) gives the payload.
  template <class BytesFn>
  void group_collective(const std::vector<std::vector<int>>& groups, Phase phase, bool is_reduce,
                        BytesFn&& bytes_of_group) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const auto& members = groups[g];
      if (members.size() <= 1) continue;
      double t0 = 0.0;
      for (int r : members) t0 = std::max(t0, clock_[static_cast<std::size_t>(r)]);
      const double w = bytes_of_group(static_cast<int>(g));
      machine::CollectiveContext ctx{static_cast<int>(members.size()), w, p_,
                                     static_cast<int>(members.size()) == p_};
      double t_coll = is_reduce ? model_.reduce_time(ctx) : model_.broadcast_time(ctx);
      if (fault_) {
        t_coll *= fault_->collective_factor(
            members.front(), static_cast<int>(members.size()),
            [&](int i) { return members[static_cast<std::size_t>(i)]; });
      }
      const double finish = t0 + t_coll;
      if (trace_) trace_->record_collective(phase, is_reduce, members, static_cast<std::uint64_t>(w));
      if (obs_) {
        obs_->on_collective(phase, is_reduce, static_cast<int>(members.size()),
                            static_cast<std::uint64_t>(w), t_coll);
      }
      const auto msgs =
          static_cast<std::uint64_t>(model_.collective_messages(static_cast<int>(members.size())));
      for (int r : members) {
        advance(r, phase, finish - clock_[static_cast<std::size_t>(r)], msgs,
                static_cast<std::uint64_t>(w));
        clock_[static_cast<std::size_t>(r)] = finish;
      }
    }
  }

  /// Global barrier: all clocks jump to the current maximum. No messages
  /// are charged (we use it to delimit timesteps, not to model MPI_Barrier).
  void synchronize(Phase phase = Phase::Other);

 private:
  template <class BytesFn>
  void team_collective(const Grid2d& grid, Phase phase, bool is_reduce, BytesFn&& bytes_of_team) {
    CANB_ASSERT(grid.size() == p_);
    const int c = grid.rows();
    if (c <= 1) return;
    const int q = grid.cols();
    const auto msgs = static_cast<std::uint64_t>(model_.collective_messages(c));
    for (int col = 0; col < q; ++col) {
      double t0 = 0.0;
      for (int row = 0; row < c; ++row)
        t0 = std::max(t0, clock_[static_cast<std::size_t>(grid.rank(row, col))]);
      const double w = bytes_of_team(col);
      machine::CollectiveContext ctx{c, w, p_, /*whole_partition=*/c == p_};
      double t_coll = is_reduce ? model_.reduce_time(ctx) : model_.broadcast_time(ctx);
      if (fault_) {
        // The pipelined tree is bounded by its worst leader->member edge.
        t_coll *= fault_->collective_factor(grid.leader(col), c,
                                            [&](int row) { return grid.rank(row, col); });
      }
      const double finish = t0 + t_coll;
      if (trace_) {
        std::vector<int> members;
        members.reserve(static_cast<std::size_t>(c));
        for (int row = 0; row < c; ++row) members.push_back(grid.rank(row, col));
        trace_->record_collective(phase, is_reduce, std::move(members),
                                  static_cast<std::uint64_t>(w));
      }
      if (obs_) obs_->on_collective(phase, is_reduce, c, static_cast<std::uint64_t>(w), t_coll);
      for (int row = 0; row < c; ++row) {
        const int r = grid.rank(row, col);
        advance(r, phase, finish - clock_[static_cast<std::size_t>(r)], msgs,
                static_cast<std::uint64_t>(w));
        clock_[static_cast<std::size_t>(r)] = finish;
      }
    }
  }

  void snapshot_clocks();

  int p_;
  machine::MachineModel model_;
  CostLedger ledger_;
  std::vector<double> clock_;
  std::vector<double> scratch_;
  TraceRecorder* trace_ = nullptr;
  PerturbationModel* fault_ = nullptr;
  CommObserver* obs_ = nullptr;
  Transport* transport_ = nullptr;
  std::uint64_t transport_tag_ = 0;
  std::uint64_t reassign_count_tag_ = 0;
  bool owner_computes_ = false;
  /// Topology used for hop-aware latency; set in the constructor when the
  /// model requests it (alpha_hop > 0). Sized to exactly p ranks.
  std::shared_ptr<const machine::Topology> hop_topology_;
};

}  // namespace canb::vmpi
