// Multi-process socket transport: one OS process per rank group, a full
// mesh of Unix-domain stream sockets, length-prefixed frames, and the
// reliable-channel layer from reliable.hpp on every connection.
//
// Rendezvous protocol (docs/TRANSPORT.md):
//   1. every group binds + listens on <dir>/g<group>.sock;
//   2. group b dials every lower group a < b (retrying while the listener
//      is not up yet) and introduces itself with a Hello frame;
//   3. group a accepts groups-1-a connections and learns each peer from
//      its Hello;
//   4. a two-phase barrier through group 0 confirms the mesh.
//
// Each peer connection gets a dedicated reader thread that drains the fd
// continuously — so a send can never deadlock against a peer that is also
// sending — feeding a ReliableReceiver whose in-order deliveries land in
// per-destination-rank mailboxes (same shape as ShmemTransport). Acks ride
// the same fd in the reverse direction. Retransmits are driven by the
// orchestration thread: recv() pumps every sender's timeout wheel while it
// waits, so a dropped frame is re-sent even when the application is blocked.
//
// Ranks are block-partitioned across groups. Rank locality decides
// routing: local->local sends short-circuit through the mailbox; frames
// with a remote destination cross the wire. Under the SPMD lockstep
// execution the primitives run (every process executes all p ranks),
// local(dst)==false means some *other* process installs the wire bytes and
// this process keeps its replicated copy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>

#include "support/rng.hpp"
#include "vmpi/reliable.hpp"
#include "vmpi/transport.hpp"

namespace canb::vmpi {

struct SocketConfig {
  int ranks = 0;
  int groups = 1;
  int group = 0;
  std::string dir;  ///< rendezvous directory holding the g<k>.sock paths
  ReliableConfig reliable;
  /// Deliberate egress drop injection for sequenced frames (tests): each
  /// Data/Barrier write is discarded with this probability, forcing the
  /// reliable layer to recover via retransmit.
  double drop_rate = 0;
  std::uint64_t drop_seed = 1;
  /// How long recv() waits on the mailbox before pumping retransmit
  /// timers. Only matters when frames can be lost.
  double recv_poll_seconds = 0.002;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(const SocketConfig& cfg);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  TransportKind kind() const noexcept override { return TransportKind::Socket; }
  int ranks() const noexcept override { return cfg_.ranks; }
  bool local(int rank) const noexcept override { return group_of(rank) == cfg_.group; }

  void send(int src, int dst, std::uint64_t tag, std::span<const std::byte> payload) override;
  void recv(int src, int dst, std::uint64_t tag, wire::Bytes& out) override;

  /// Two-phase rendezvous through group 0: everyone reports in, group 0
  /// releases everyone. Barrier frames are sequenced like data, so a
  /// completed barrier proves in-order receipt of everything before it.
  void barrier() override;

  TransportStats stats() const override;

  /// Balanced block partition of ranks over groups.
  int group_of(int rank) const noexcept;
  int group() const noexcept override { return cfg_.group; }
  int groups() const noexcept override { return cfg_.groups; }
  int owner_group(int rank) const noexcept override { return group_of(rank); }

 private:
  struct Mailbox;
  struct Peer;

  double now() const;
  void post_local(int src, int dst, std::uint64_t tag, wire::Bytes frame);
  void egress_locked(Peer& p, const Frame& f);  // requires p.io_mu held
  void pump_peer(Peer& p);
  void pump();
  void flush_peers();
  void reader_loop(Peer& p);
  void note_barrier(std::uint32_t from_group, std::uint64_t epoch);
  void wait_barrier(std::uint32_t from_group, std::uint64_t epoch);

  SocketConfig cfg_;
  std::chrono::steady_clock::time_point epoch_start_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;  // indexed by local rank slot
  std::vector<std::unique_ptr<Peer>> peers_;     // indexed by peer group id (self slot unused)
  std::string listen_path_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, int> barrier_arrivals_;
  std::uint64_t barrier_epoch_ = 0;

  mutable std::mutex stats_mu_;
  TransportStats stats_;
  std::atomic<bool> closing_{false};
};

/// Creates a fresh private rendezvous directory (mkdtemp under $TMPDIR or
/// /tmp — Unix-socket paths are length-limited, so keep it short). The
/// caller owns cleanup.
std::string make_rendezvous_dir();

/// Fork-based launcher for the socket arm: forks groups-1 children and
/// tells each process which group it is. Fork happens in the constructor,
/// so call it before spawning any threads. The parent is always group 0.
class ProcessGroup {
 public:
  explicit ProcessGroup(int groups);
  ~ProcessGroup();

  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  int group() const noexcept { return group_; }
  bool primary() const noexcept { return group_ == 0; }

  /// Parent: reaps every child and returns the FIRST failing child's exit
  /// status (its exit code verbatim, or 128+signal when it died to a
  /// signal; 0 when all children exited cleanly) so callers can fail the
  /// run with the child's status instead of silently exiting 0.
  /// Children: returns 0 immediately.
  int wait_children();

 private:
  std::vector<pid_t> pids_;
  int group_ = 0;
  bool waited_ = false;
};

}  // namespace canb::vmpi
