// The processor grid of Algorithm 1/2: p ranks arranged as c rows by
// q = p/c columns. A column is a "team" that collectively owns one subset
// of particles; row 0 holds the team leaders.
#pragma once

#include <string>

namespace canb::vmpi {

class Grid2d {
 public:
  /// Builds a c-row by (p/c)-column grid. Throws PreconditionError unless
  /// 1 <= c, c divides p.
  static Grid2d make(int p, int c);

  int rows() const noexcept { return rows_; }     ///< replication factor c
  int cols() const noexcept { return cols_; }     ///< number of teams q = p/c
  int size() const noexcept { return rows_ * cols_; }

  int rank(int row, int col) const noexcept { return row * cols_ + col; }
  int row_of(int r) const noexcept { return r / cols_; }
  int col_of(int r) const noexcept { return r % cols_; }

  /// Team leader of column `col` (row 0).
  int leader(int col) const noexcept { return rank(0, col); }

  /// Column index shifted east by `d` with wrap-around (d may be negative
  /// or exceed cols).
  int wrap_col(int col, int d) const noexcept {
    const int q = cols_;
    int v = (col + d) % q;
    if (v < 0) v += q;
    return v;
  }

  std::string describe() const;

 private:
  Grid2d(int rows, int cols) noexcept : rows_(rows), cols_(cols) {}
  int rows_;
  int cols_;
};

/// True iff replication factor c is valid for the all-pairs algorithm on p
/// ranks: c >= 1, c divides p, c^2 <= p, and c divides p/c (so the shift
/// loop runs an integral p/c^2 steps).
bool valid_all_pairs_replication(int p, int c) noexcept;

/// True iff c is valid for the cutoff algorithm with window of m teams on
/// each side: c >= 1, c divides p, and c <= 2m (Section IV-D: the
/// replication factor must "fit inside" the interaction diameter).
bool valid_cutoff_replication(int p, int c, int m) noexcept;

}  // namespace canb::vmpi
