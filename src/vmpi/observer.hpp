// CommObserver: the vmpi-side hook the telemetry layer implements.
//
// VirtualComm publishes every charged event (point-to-point rounds,
// collectives, compute charges) to an attached observer. The interface is
// defined here — not in src/obs — so vmpi stays free of an obs dependency
// while obs::Telemetry can implement it; the layering is
// support -> machine -> vmpi -> obs -> core/sim.
//
// Observation is strictly passive: hooks receive the costs the comm layer
// already decided to charge and must not feed anything back. An attached
// observer therefore never changes clocks, ledgers, or physics — runs with
// and without one are bitwise identical (asserted by test_properties).
//
// Threading: on_p2p and on_collective fire from the serial schedule loops.
// on_compute can fire concurrently from host worker threads, but only for
// *distinct* ranks (engine force loops are sequential per rank), so
// per-rank accumulator slots need no synchronization.
#pragma once

#include <cstdint>

#include "vmpi/cost_ledger.hpp"

namespace canb::vmpi {

class CommObserver {
 public:
  virtual ~CommObserver() = default;

  /// One point-to-point delivery charged to the receiver. `bytes` is the
  /// payload (retransmissions excluded; `retries` counts them),
  /// `wait_seconds` the receiver's idle wait for the sender, and
  /// `cost_seconds` the transfer cost including fault penalties.
  virtual void on_p2p(Phase phase, int src, int dst, std::uint64_t bytes, double wait_seconds,
                      double cost_seconds, std::uint64_t retries, std::uint64_t timeouts) = 0;

  /// One tree collective over `members` ranks costing `seconds` beyond the
  /// members' synchronization point.
  virtual void on_collective(Phase phase, bool is_reduce, int members, std::uint64_t bytes,
                             double seconds) = 0;

  /// One compute charge (pairwise-interaction or integration work) on `rank`.
  virtual void on_compute(int rank, double seconds) = 0;

  /// HOST wall seconds spent physically moving buffers for `phase`
  /// (broadcast replica copies, staging copies, reduce folds, re-assignment
  /// routing). Unlike every other hook this reports host time, not virtual
  /// time — it exists so --obs-level=metrics can show where the host data
  /// plane spends a step (docs/OBSERVABILITY.md). Fires from the serial
  /// orchestration thread, after any parallel copy region has joined.
  /// Default no-op so existing observers are unaffected.
  virtual void on_host_phase(Phase phase, double seconds) {
    (void)phase;
    (void)seconds;
  }
};

}  // namespace canb::vmpi
