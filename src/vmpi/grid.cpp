#include "vmpi/grid.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace canb::vmpi {

Grid2d Grid2d::make(int p, int c) {
  CANB_REQUIRE(p >= 1, "grid needs p >= 1");
  CANB_REQUIRE(c >= 1, "replication factor must be >= 1");
  CANB_REQUIRE(p % c == 0, "replication factor must divide p");
  return Grid2d(c, p / c);
}

std::string Grid2d::describe() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " (c=" << rows_ << ", teams=" << cols_ << ")";
  return os.str();
}

bool valid_all_pairs_replication(int p, int c) noexcept {
  if (c < 1 || p < 1 || p % c != 0) return false;
  const int q = p / c;
  // c^2 <= p is implied by c | q when c <= q, but state both explicitly.
  return static_cast<long long>(c) * c <= p && q % c == 0;
}

bool valid_cutoff_replication(int p, int c, int m) noexcept {
  if (c < 1 || p < 1 || p % c != 0) return false;
  return c <= 2 * m;
}

}  // namespace canb::vmpi
