#include "vmpi/transport.hpp"

#include <utility>

#include "support/assert.hpp"
#include "vmpi/socket_transport.hpp"

namespace canb::vmpi {

namespace {

std::pair<std::uint64_t, std::uint64_t> modeled_key(int src, int dst, std::uint64_t tag) noexcept {
  return {(static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
              static_cast<std::uint32_t>(dst),
          tag};
}

}  // namespace

const char* transport_kind_name(TransportKind k) noexcept {
  switch (k) {
    case TransportKind::Modeled: return "modeled";
    case TransportKind::Shmem: return "shmem";
    case TransportKind::Socket: return "socket";
  }
  return "unknown";
}

std::optional<TransportKind> parse_transport_kind(std::string_view name) noexcept {
  if (name == "modeled") return TransportKind::Modeled;
  if (name == "shmem") return TransportKind::Shmem;
  if (name == "socket") return TransportKind::Socket;
  return std::nullopt;
}

const char* exec_mode_name(ExecMode m) noexcept {
  switch (m) {
    case ExecMode::Lockstep: return "lockstep";
    case ExecMode::OwnerComputes: return "owner_computes";
  }
  return "unknown";
}

std::optional<ExecMode> parse_exec_mode(std::string_view name) noexcept {
  if (name == "lockstep") return ExecMode::Lockstep;
  if (name == "owner" || name == "owner_computes" || name == "owner-computes")
    return ExecMode::OwnerComputes;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// ModeledTransport

ModeledTransport::ModeledTransport(int ranks) : ranks_(ranks) {
  CANB_REQUIRE(ranks >= 1, "transport needs at least one rank");
}

void ModeledTransport::send(int src, int dst, std::uint64_t tag,
                            std::span<const std::byte> payload) {
  CANB_ASSERT(0 <= src && src < ranks_ && 0 <= dst && dst < ranks_);
  queues_[modeled_key(src, dst, tag)].emplace_back(payload.begin(), payload.end());
  stats_.frames_sent += 1;
  stats_.bytes_sent += payload.size();
}

void ModeledTransport::recv(int src, int dst, std::uint64_t tag, wire::Bytes& out) {
  auto it = queues_.find(modeled_key(src, dst, tag));
  CANB_ASSERT_MSG(it != queues_.end() && !it->second.empty(),
                  "ModeledTransport::recv before matching send (serial backend cannot block)");
  out = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  stats_.frames_received += 1;
  stats_.bytes_received += out.size();
}

// ---------------------------------------------------------------------------
// ShmemTransport

ShmemTransport::ShmemTransport(int ranks) : ranks_(ranks) {
  CANB_REQUIRE(ranks >= 1, "transport needs at least one rank");
  boxes_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) boxes_.push_back(std::make_unique<Mailbox>());
}

void ShmemTransport::send(int src, int dst, std::uint64_t tag,
                          std::span<const std::byte> payload) {
  CANB_ASSERT(0 <= src && src < ranks_ && 0 <= dst && dst < ranks_);
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lk(box.mu);
    wire::Bytes frame = box.pool.acquire();
    frame.assign(payload.begin(), payload.end());
    box.flows[{static_cast<std::uint64_t>(src), tag}].push_back(std::move(frame));
  }
  box.cv.notify_all();
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.frames_sent += 1;
    stats_.bytes_sent += payload.size();
    stats_.frames_received += 1;  // delivery into the mailbox is receipt
    stats_.bytes_received += payload.size();
  }
}

void ShmemTransport::recv(int src, int dst, std::uint64_t tag, wire::Bytes& out) {
  CANB_ASSERT(0 <= src && src < ranks_ && 0 <= dst && dst < ranks_);
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  const FlowKey key{static_cast<std::uint64_t>(src), tag};
  std::unique_lock<std::mutex> lk(box.mu);
  box.cv.wait(lk, [&] {
    auto it = box.flows.find(key);
    return it != box.flows.end() && !it->second.empty();
  });
  auto it = box.flows.find(key);
  wire::Bytes frame = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) box.flows.erase(it);
  // Swap so the caller gets the frame's bytes and the caller's old capacity
  // becomes the next frame shell.
  out.swap(frame);
  box.pool.release(std::move(frame));
}

TransportStats ShmemTransport::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Factory

std::shared_ptr<Transport> make_transport(const TransportOptions& opts) {
  switch (opts.kind) {
    case TransportKind::Modeled:
      return nullptr;  // the default arm: no transport attached
    case TransportKind::Shmem:
      return std::make_shared<ShmemTransport>(opts.ranks);
    case TransportKind::Socket: {
      SocketConfig cfg;
      cfg.ranks = opts.ranks;
      cfg.groups = opts.groups;
      cfg.group = opts.group;
      cfg.dir = opts.dir;
      cfg.drop_rate = opts.drop_rate;
      cfg.drop_seed = opts.drop_seed;
      return std::make_shared<SocketTransport>(cfg);
    }
  }
  CANB_ASSERT_MSG(false, "unhandled TransportKind");
  return nullptr;
}

}  // namespace canb::vmpi
