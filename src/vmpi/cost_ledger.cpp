#include "vmpi/cost_ledger.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace canb::vmpi {

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::Compute:
      return "compute";
    case Phase::Broadcast:
      return "broadcast";
    case Phase::Skew:
      return "skew";
    case Phase::Shift:
      return "shift";
    case Phase::Reduce:
      return "reduce";
    case Phase::Reassign:
      return "reassign";
    case Phase::Other:
      return "other";
  }
  return "?";
}

CostLedger::CostLedger(int p) : p_(p) {
  CANB_REQUIRE(p >= 1, "ledger needs p >= 1");
  for (int i = 0; i < kPhaseCount; ++i) {
    seconds_[i].assign(static_cast<std::size_t>(p), 0.0);
    messages_[i].assign(static_cast<std::size_t>(p), 0);
    bytes_[i].assign(static_cast<std::size_t>(p), 0);
    retries_[i].assign(static_cast<std::size_t>(p), 0);
    timeouts_[i].assign(static_cast<std::size_t>(p), 0);
  }
}

void CostLedger::charge(int rank, Phase phase, double seconds, std::uint64_t messages,
                        std::uint64_t bytes) {
  CANB_ASSERT(rank >= 0 && rank < p_);
  const auto ph = static_cast<int>(phase);
  seconds_[ph][static_cast<std::size_t>(rank)] += seconds;
  messages_[ph][static_cast<std::size_t>(rank)] += messages;
  bytes_[ph][static_cast<std::size_t>(rank)] += bytes;
}

void CostLedger::charge_all(Phase phase, double seconds, std::uint64_t messages,
                            std::uint64_t bytes, std::uint64_t repeat) {
  const auto ph = static_cast<int>(phase);
  const double sec = seconds * static_cast<double>(repeat);
  const std::uint64_t msg = messages * repeat;
  const std::uint64_t byt = bytes * repeat;
  for (int r = 0; r < p_; ++r) {
    seconds_[ph][static_cast<std::size_t>(r)] += sec;
    messages_[ph][static_cast<std::size_t>(r)] += msg;
    bytes_[ph][static_cast<std::size_t>(r)] += byt;
  }
}

void CostLedger::charge_fault(int rank, Phase phase, std::uint64_t retries,
                              std::uint64_t timeouts) {
  CANB_ASSERT(rank >= 0 && rank < p_);
  const auto ph = static_cast<int>(phase);
  retries_[ph][static_cast<std::size_t>(rank)] += retries;
  timeouts_[ph][static_cast<std::size_t>(rank)] += timeouts;
}

void CostLedger::reset() {
  for (int i = 0; i < kPhaseCount; ++i) {
    std::fill(seconds_[i].begin(), seconds_[i].end(), 0.0);
    std::fill(messages_[i].begin(), messages_[i].end(), 0);
    std::fill(bytes_[i].begin(), bytes_[i].end(), 0);
    std::fill(retries_[i].begin(), retries_[i].end(), 0);
    std::fill(timeouts_[i].begin(), timeouts_[i].end(), 0);
  }
}

double CostLedger::seconds(int rank, Phase phase) const {
  CANB_ASSERT(rank >= 0 && rank < p_);
  return seconds_[static_cast<int>(phase)][static_cast<std::size_t>(rank)];
}

double CostLedger::total_seconds(int rank) const {
  CANB_ASSERT(rank >= 0 && rank < p_);
  double total = 0.0;
  for (int i = 0; i < kPhaseCount; ++i) total += seconds_[i][static_cast<std::size_t>(rank)];
  return total;
}

std::uint64_t CostLedger::messages(int rank) const {
  CANB_ASSERT(rank >= 0 && rank < p_);
  std::uint64_t total = 0;
  for (int i = 0; i < kPhaseCount; ++i) total += messages_[i][static_cast<std::size_t>(rank)];
  return total;
}

std::uint64_t CostLedger::bytes(int rank) const {
  CANB_ASSERT(rank >= 0 && rank < p_);
  std::uint64_t total = 0;
  for (int i = 0; i < kPhaseCount; ++i) total += bytes_[i][static_cast<std::size_t>(rank)];
  return total;
}

std::uint64_t CostLedger::retries(int rank) const {
  CANB_ASSERT(rank >= 0 && rank < p_);
  std::uint64_t total = 0;
  for (int i = 0; i < kPhaseCount; ++i) total += retries_[i][static_cast<std::size_t>(rank)];
  return total;
}

std::uint64_t CostLedger::timeouts(int rank) const {
  CANB_ASSERT(rank >= 0 && rank < p_);
  std::uint64_t total = 0;
  for (int i = 0; i < kPhaseCount; ++i) total += timeouts_[i][static_cast<std::size_t>(rank)];
  return total;
}

int CostLedger::critical_rank() const {
  int best = 0;
  double best_t = -1.0;
  for (int r = 0; r < p_; ++r) {
    const double t = total_seconds(r);
    if (t > best_t) {
      best_t = t;
      best = r;
    }
  }
  return best;
}

std::array<PhaseTotals, kPhaseCount> CostLedger::critical_breakdown() const {
  const int r = critical_rank();
  std::array<PhaseTotals, kPhaseCount> out{};
  for (int i = 0; i < kPhaseCount; ++i) {
    out[static_cast<std::size_t>(i)] = {seconds_[i][static_cast<std::size_t>(r)],
                                        messages_[i][static_cast<std::size_t>(r)],
                                        bytes_[i][static_cast<std::size_t>(r)],
                                        retries_[i][static_cast<std::size_t>(r)],
                                        timeouts_[i][static_cast<std::size_t>(r)]};
  }
  return out;
}

std::uint64_t CostLedger::critical_messages() const {
  std::uint64_t best = 0;
  for (int r = 0; r < p_; ++r) best = std::max(best, messages(r));
  return best;
}

std::uint64_t CostLedger::critical_bytes() const {
  std::uint64_t best = 0;
  for (int r = 0; r < p_; ++r) best = std::max(best, bytes(r));
  return best;
}

std::uint64_t CostLedger::critical_retries() const {
  std::uint64_t best = 0;
  for (int r = 0; r < p_; ++r) best = std::max(best, retries(r));
  return best;
}

std::uint64_t CostLedger::critical_timeouts() const {
  std::uint64_t best = 0;
  for (int r = 0; r < p_; ++r) best = std::max(best, timeouts(r));
  return best;
}

PhaseTotals CostLedger::aggregate(Phase phase) const {
  const auto ph = static_cast<int>(phase);
  PhaseTotals out;
  for (int r = 0; r < p_; ++r) {
    out.seconds += seconds_[ph][static_cast<std::size_t>(r)];
    out.messages += messages_[ph][static_cast<std::size_t>(r)];
    out.bytes += bytes_[ph][static_cast<std::size_t>(r)];
    out.retries += retries_[ph][static_cast<std::size_t>(r)];
    out.timeouts += timeouts_[ph][static_cast<std::size_t>(r)];
  }
  return out;
}

std::uint64_t CostLedger::aggregate_messages() const {
  std::uint64_t total = 0;
  for (int r = 0; r < p_; ++r) total += messages(r);
  return total;
}

std::uint64_t CostLedger::aggregate_bytes() const {
  std::uint64_t total = 0;
  for (int r = 0; r < p_; ++r) total += bytes(r);
  return total;
}

std::uint64_t CostLedger::aggregate_retries() const {
  std::uint64_t total = 0;
  for (int r = 0; r < p_; ++r) total += retries(r);
  return total;
}

std::uint64_t CostLedger::aggregate_timeouts() const {
  std::uint64_t total = 0;
  for (int r = 0; r < p_; ++r) total += timeouts(r);
  return total;
}

std::vector<double> CostLedger::per_rank_seconds() const {
  std::vector<double> out(static_cast<std::size_t>(p_));
  for (int r = 0; r < p_; ++r) out[static_cast<std::size_t>(r)] = total_seconds(r);
  return out;
}

}  // namespace canb::vmpi
