#include "vmpi/socket_transport.hpp"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/assert.hpp"

namespace canb::vmpi {

namespace {

/// Writes the whole buffer; MSG_NOSIGNAL turns a dead peer into an error
/// return instead of SIGPIPE (teardown races are tolerated, see flush).
bool write_all(int fd, const std::byte* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Reads exactly n bytes; false on EOF or error.
bool read_exact(int fd, std::byte* p, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // orderly EOF
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  CANB_REQUIRE(path.size() < sizeof(addr.sun_path),
               "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

std::string group_path(const std::string& dir, int g) {
  return dir + "/g" + std::to_string(g) + ".sock";
}

constexpr double kSetupTimeoutSeconds = 30.0;
constexpr double kFlushTimeoutSeconds = 30.0;

}  // namespace

// ---------------------------------------------------------------------------
// Internal structures

struct SocketTransport::Mailbox {
  using FlowKey = std::pair<std::uint64_t, std::uint64_t>;  // (src rank, tag)
  std::mutex mu;
  std::condition_variable cv;
  std::map<FlowKey, std::deque<wire::Bytes>> flows;
  BufferPool<wire::Bytes> pool;
};

struct SocketTransport::Peer {
  int group = -1;
  int fd = -1;
  std::thread reader;
  // io_mu guards the fd write side, the sender's retransmit state, the
  // egress scratch buffer, and the drop RNG. The receiver is touched only
  // by the reader thread and needs no lock.
  std::mutex io_mu;
  ReliableSender sender;
  ReliableReceiver receiver;
  Xoshiro256 drop_rng;
  wire::Bytes egress_scratch;
  bool write_failed = false;

  Peer(const ReliableConfig& rc, std::uint64_t drop_seed)
      : sender(rc), drop_rng(drop_seed) {}
};

// ---------------------------------------------------------------------------
// Construction: bind, dial lower groups, accept higher groups, barrier.

SocketTransport::SocketTransport(const SocketConfig& cfg)
    : cfg_(cfg), epoch_start_(std::chrono::steady_clock::now()) {
  CANB_REQUIRE(cfg_.ranks >= 1, "socket transport needs at least one rank");
  CANB_REQUIRE(cfg_.groups >= 1 && cfg_.groups <= cfg_.ranks,
               "socket transport needs 1 <= groups <= ranks");
  CANB_REQUIRE(0 <= cfg_.group && cfg_.group < cfg_.groups,
               "socket transport group index out of range");
  CANB_REQUIRE(cfg_.groups == 1 || !cfg_.dir.empty(),
               "multi-group socket transport needs a rendezvous dir");

  boxes_.reserve(static_cast<std::size_t>(cfg_.ranks));
  for (int r = 0; r < cfg_.ranks; ++r) boxes_.push_back(std::make_unique<Mailbox>());
  peers_.resize(static_cast<std::size_t>(cfg_.groups));

  if (cfg_.groups == 1) return;  // degenerate single-process mesh

  // 1. Listen on our own rendezvous path.
  listen_path_ = group_path(cfg_.dir, cfg_.group);
  ::unlink(listen_path_.c_str());
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  CANB_REQUIRE(lfd >= 0, "socket() failed");
  sockaddr_un addr = make_addr(listen_path_);
  CANB_REQUIRE(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
               "bind failed on " + listen_path_);
  CANB_REQUIRE(::listen(lfd, cfg_.groups) == 0, "listen failed on " + listen_path_);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(kSetupTimeoutSeconds);

  auto new_peer = [&](int g) {
    // Distinct deterministic drop stream per directed connection.
    const std::uint64_t seed =
        cfg_.drop_seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                             cfg_.group * cfg_.groups + g + 1);
    return std::make_unique<Peer>(cfg_.reliable, seed);
  };

  // 2. Dial every lower group, retrying until its listener appears.
  for (int g = 0; g < cfg_.group; ++g) {
    int fd = -1;
    const std::string path = group_path(cfg_.dir, g);
    for (;;) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      CANB_REQUIRE(fd >= 0, "socket() failed");
      sockaddr_un peer_addr = make_addr(path);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&peer_addr), sizeof peer_addr) == 0) break;
      ::close(fd);
      CANB_REQUIRE(std::chrono::steady_clock::now() < deadline,
                   "rendezvous timed out dialing " + path);
      ::usleep(5'000);
    }
    Frame hello;
    hello.kind = FrameKind::Hello;
    hello.src = static_cast<std::uint32_t>(cfg_.group);
    wire::Bytes enc;
    encode_frame(hello, enc);
    CANB_REQUIRE(write_all(fd, enc.data(), enc.size()), "hello write failed to " + path);
    auto p = new_peer(g);
    p->group = g;
    p->fd = fd;
    peers_[static_cast<std::size_t>(g)] = std::move(p);
  }

  // 3. Accept every higher group; the Hello frame says who called.
  for (int i = 0; i < cfg_.groups - 1 - cfg_.group; ++i) {
    pollfd pfd{lfd, POLLIN, 0};
    for (;;) {
      const int pr = ::poll(&pfd, 1, 100);
      if (pr > 0) break;
      CANB_REQUIRE(std::chrono::steady_clock::now() < deadline,
                   "rendezvous timed out accepting on " + listen_path_);
    }
    const int fd = ::accept(lfd, nullptr, nullptr);
    CANB_REQUIRE(fd >= 0, "accept failed on " + listen_path_);
    std::uint64_t body_len = 0;
    CANB_REQUIRE(read_exact(fd, reinterpret_cast<std::byte*>(&body_len), sizeof body_len),
                 "hello length read failed");
    wire::Bytes body(body_len);
    CANB_REQUIRE(read_exact(fd, body.data(), body.size()), "hello body read failed");
    const Frame hello = decode_frame_body(body);
    CANB_REQUIRE(hello.kind == FrameKind::Hello, "expected hello frame");
    const int g = static_cast<int>(hello.src);
    CANB_REQUIRE(g > cfg_.group && g < cfg_.groups && peers_[static_cast<std::size_t>(g)] == nullptr,
                 "unexpected hello from group " + std::to_string(g));
    auto p = new_peer(g);
    p->group = g;
    p->fd = fd;
    peers_[static_cast<std::size_t>(g)] = std::move(p);
  }
  ::close(lfd);
  ::unlink(listen_path_.c_str());  // everyone dials exactly once, during setup

  // 4. Drain each connection on its own thread, then prove the mesh.
  for (auto& p : peers_) {
    if (p) p->reader = std::thread([this, pp = p.get()] { reader_loop(*pp); });
  }
  barrier();
}

SocketTransport::~SocketTransport() {
  if (cfg_.groups > 1) {
    flush_peers();  // wait until every sequenced frame we sent is acked
    barrier();      // nobody closes before everyone has flushed
    flush_peers();  // the barrier release itself is droppable: hold the fd
                    // open until its (re)transmission is acked, or the peer
                    // would retransmit into a closed socket
    closing_.store(true, std::memory_order_relaxed);
    for (auto& p : peers_) {
      if (p && p->fd >= 0) ::shutdown(p->fd, SHUT_RDWR);
    }
    for (auto& p : peers_) {
      if (p && p->reader.joinable()) p->reader.join();
      if (p && p->fd >= 0) ::close(p->fd);
    }
  }
}

int SocketTransport::group_of(int rank) const noexcept {
  // Balanced block partition: the first `rem` groups own base+1 ranks.
  const int base = cfg_.ranks / cfg_.groups;
  const int rem = cfg_.ranks % cfg_.groups;
  const int cut = (base + 1) * rem;  // ranks below this live in the wide groups
  if (rank < cut) return rank / (base + 1);
  return rem + (rank - cut) / base;
}

double SocketTransport::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_start_).count();
}

// ---------------------------------------------------------------------------
// Data path

void SocketTransport::post_local(int src, int dst, std::uint64_t tag, wire::Bytes frame) {
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  const std::size_t n = frame.size();
  {
    std::lock_guard<std::mutex> lk(box.mu);
    box.flows[{static_cast<std::uint64_t>(src), tag}].push_back(std::move(frame));
  }
  box.cv.notify_all();
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.frames_received += 1;
    stats_.bytes_received += n;
  }
}

void SocketTransport::egress_locked(Peer& p, const Frame& f) {
  const bool sequenced = f.kind == FrameKind::Data || f.kind == FrameKind::Barrier;
  if (sequenced && cfg_.drop_rate > 0 && p.drop_rng.uniform() < cfg_.drop_rate) {
    return;  // injected loss; the reliable layer will retransmit
  }
  encode_frame(f, p.egress_scratch);
  if (!write_all(p.fd, p.egress_scratch.data(), p.egress_scratch.size())) {
    p.write_failed = true;
    // A dead peer is fatal only for frames the protocol still needs to
    // deliver. Two writes race benignly with the peer's teardown:
    //  * Acks — a peer that closed its end has flushed (everything it
    //    sent is acked) and needs no further acks; a late duplicate of
    //    ours reaches it mid-close and its re-ack finds a shut socket.
    //  * Barrier (re)writes — a peer can only close after passing the
    //    destructor barrier, which required delivering every sequenced
    //    frame we sent it, this one included. Only its ack was lost to
    //    the shutdown race, so the retransmit had nothing left to
    //    deliver (its write_failed mark lets flush_peers() return).
    // Data frames keep the hard assert: a peer never legitimately closes
    // while our data is unacked — the destructor flushes before closing.
    CANB_ASSERT_MSG(f.kind != FrameKind::Data || closing_.load(std::memory_order_relaxed),
                    "socket transport write failed mid-run");
  }
}

void SocketTransport::send(int src, int dst, std::uint64_t tag,
                           std::span<const std::byte> payload) {
  CANB_ASSERT(0 <= src && src < cfg_.ranks && 0 <= dst && dst < cfg_.ranks);
  CANB_ASSERT_MSG(local(src), "socket transport send from non-local rank");
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.frames_sent += 1;
    stats_.bytes_sent += payload.size();
  }
  if (local(dst)) {
    wire::Bytes frame;
    {
      Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
      std::lock_guard<std::mutex> lk(box.mu);
      frame = box.pool.acquire();
    }
    frame.assign(payload.begin(), payload.end());
    post_local(src, dst, tag, std::move(frame));
    return;
  }
  Peer* p = peers_[static_cast<std::size_t>(group_of(dst))].get();
  CANB_ASSERT(p != nullptr);
  Frame f;
  f.kind = FrameKind::Data;
  f.src = static_cast<std::uint32_t>(src);
  f.dst = static_cast<std::uint32_t>(dst);
  f.tag = tag;
  f.payload.assign(payload.begin(), payload.end());
  std::lock_guard<std::mutex> lk(p->io_mu);
  p->sender.send(std::move(f), now(), [&](const Frame& out) { egress_locked(*p, out); });
}

void SocketTransport::pump_peer(Peer& p) {
  const double t = now();
  std::lock_guard<std::mutex> lk(p.io_mu);
  const std::uint64_t before = p.sender.stats().retransmits;
  p.sender.poll(t, [&](const Frame& out) { egress_locked(p, out); });
  const std::uint64_t later = p.sender.stats().retransmits;
  if (later != before) {
    std::lock_guard<std::mutex> sl(stats_mu_);
    stats_.retransmits += later - before;
  }
}

void SocketTransport::pump() {
  for (auto& p : peers_) {
    if (p) pump_peer(*p);
  }
}

void SocketTransport::recv(int src, int dst, std::uint64_t tag, wire::Bytes& out) {
  CANB_ASSERT(0 <= src && src < cfg_.ranks && 0 <= dst && dst < cfg_.ranks);
  CANB_ASSERT_MSG(local(dst), "socket transport recv for non-local rank");
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  const Mailbox::FlowKey key{static_cast<std::uint64_t>(src), tag};
  const auto poll_interval = std::chrono::duration<double>(cfg_.recv_poll_seconds);
  std::unique_lock<std::mutex> lk(box.mu);
  for (;;) {
    auto it = box.flows.find(key);
    if (it != box.flows.end() && !it->second.empty()) {
      wire::Bytes frame = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) box.flows.erase(it);
      out.swap(frame);
      box.pool.release(std::move(frame));
      return;
    }
    if (box.cv.wait_for(lk, poll_interval) == std::cv_status::timeout) {
      lk.unlock();
      pump();  // our own dropped frames gate the peer's progress; re-send them
      lk.lock();
    }
  }
}

// ---------------------------------------------------------------------------
// Reader threads: the fd is drained continuously, so sends never deadlock.

void SocketTransport::reader_loop(Peer& p) {
  wire::Bytes body;
  for (;;) {
    // Wait for inbound bytes, but keep this connection's retransmit wheel
    // turning while the fd is idle: our own dropped frames may be the only
    // thing gating the peer, and the application thread is not obliged to
    // call recv()/barrier() (which also pump) in the meantime.
    pollfd pfd{p.fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, /*timeout_ms=*/2);
    if (pr == 0) {
      pump_peer(p);
      continue;
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      return;
    }
    std::uint64_t body_len = 0;
    if (!read_exact(p.fd, reinterpret_cast<std::byte*>(&body_len), sizeof body_len)) return;
    body.resize(body_len);
    if (!read_exact(p.fd, body.data(), body.size())) return;
    Frame f = decode_frame_body(body);
    switch (f.kind) {
      case FrameKind::Ack: {
        std::lock_guard<std::mutex> lk(p.io_mu);
        p.sender.on_ack(f.seq);
        break;
      }
      case FrameKind::Data:
      case FrameKind::Barrier: {
        const std::uint64_t before_dups = p.receiver.stats().duplicates_dropped;
        const std::uint64_t ack = p.receiver.on_data(std::move(f), [&](Frame&& d) {
          if (d.kind == FrameKind::Barrier) {
            note_barrier(d.src, d.tag);  // the barrier epoch rides in the tag field
          } else {
            post_local(static_cast<int>(d.src), static_cast<int>(d.dst), d.tag,
                       std::move(d.payload));
          }
        });
        {
          std::lock_guard<std::mutex> sl(stats_mu_);
          stats_.acks_sent += 1;
          stats_.duplicates_dropped += p.receiver.stats().duplicates_dropped - before_dups;
        }
        Frame ackf;
        ackf.kind = FrameKind::Ack;
        ackf.src = static_cast<std::uint32_t>(cfg_.group);
        ackf.seq = ack;
        std::lock_guard<std::mutex> lk(p.io_mu);
        egress_locked(p, ackf);
        break;
      }
      case FrameKind::Hello:
        break;  // only legal during rendezvous; ignore
    }
  }
}

// ---------------------------------------------------------------------------
// Barrier and teardown

void SocketTransport::note_barrier(std::uint32_t from_group, std::uint64_t epoch) {
  {
    std::lock_guard<std::mutex> lk(barrier_mu_);
    barrier_arrivals_[{from_group, epoch}] += 1;
  }
  barrier_cv_.notify_all();
}

void SocketTransport::wait_barrier(std::uint32_t from_group, std::uint64_t epoch) {
  std::unique_lock<std::mutex> lk(barrier_mu_);
  const auto key = std::make_pair(from_group, epoch);
  for (;;) {
    auto it = barrier_arrivals_.find(key);
    if (it != barrier_arrivals_.end() && it->second > 0) {
      it->second -= 1;
      if (it->second == 0) barrier_arrivals_.erase(it);
      return;
    }
    if (barrier_cv_.wait_for(lk, std::chrono::duration<double>(cfg_.recv_poll_seconds)) ==
        std::cv_status::timeout) {
      lk.unlock();
      pump();
      lk.lock();
    }
  }
}

void SocketTransport::barrier() {
  if (cfg_.groups == 1) return;
  const std::uint64_t epoch = barrier_epoch_++;
  auto send_barrier = [&](int to_group) {
    Peer* p = peers_[static_cast<std::size_t>(to_group)].get();
    CANB_ASSERT(p != nullptr);
    Frame f;
    f.kind = FrameKind::Barrier;
    f.src = static_cast<std::uint32_t>(cfg_.group);
    f.dst = static_cast<std::uint32_t>(to_group);
    f.tag = epoch;  // the epoch rides in the tag field
    std::lock_guard<std::mutex> lk(p->io_mu);
    p->sender.send(std::move(f), now(), [&](const Frame& out) { egress_locked(*p, out); });
  };
  if (cfg_.group == 0) {
    for (int g = 1; g < cfg_.groups; ++g) wait_barrier(static_cast<std::uint32_t>(g), epoch);
    for (int g = 1; g < cfg_.groups; ++g) send_barrier(g);
  } else {
    send_barrier(0);
    wait_barrier(0, epoch);
  }
}

void SocketTransport::flush_peers() {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(kFlushTimeoutSeconds);
  for (;;) {
    bool idle = true;
    for (auto& p : peers_) {
      if (!p) continue;
      std::lock_guard<std::mutex> lk(p->io_mu);
      if (!p->sender.idle() && !p->write_failed) idle = false;
    }
    if (idle) return;
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "canb: socket transport flush timed out with unacked frames\n");
      return;
    }
    pump();
    ::usleep(1'000);
  }
}

TransportStats SocketTransport::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Launch helpers

std::string make_rendezvous_dir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base && *base ? base : "/tmp") + "/canb-uds-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  CANB_REQUIRE(::mkdtemp(buf.data()) != nullptr, "mkdtemp failed for " + tmpl);
  return std::string(buf.data());
}

ProcessGroup::ProcessGroup(int groups) {
  CANB_REQUIRE(groups >= 1, "ProcessGroup needs at least one group");
  for (int g = 1; g < groups; ++g) {
    const pid_t pid = ::fork();
    CANB_REQUIRE(pid >= 0, "fork failed");
    if (pid == 0) {
      group_ = g;
      pids_.clear();  // children do not own their siblings
      return;
    }
    pids_.push_back(pid);
  }
}

ProcessGroup::~ProcessGroup() {
  if (!waited_) wait_children();
}

int ProcessGroup::wait_children() {
  waited_ = true;
  int first_failure = 0;
  for (const pid_t pid : pids_) {
    int status = 0;
    for (;;) {
      const pid_t r = ::waitpid(pid, &status, 0);
      if (r >= 0 || errno != EINTR) break;
    }
    // Propagate the first failing child's status with the shell convention:
    // its exit code verbatim, or 128+signal for a signal death. A crashed
    // non-zero group must fail the whole run, not vanish silently.
    int code = 0;
    if (WIFEXITED(status)) {
      code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      code = 128 + WTERMSIG(status);
    } else {
      code = 1;  // stopped/unknown: still a failure
    }
    if (code != 0 && first_failure == 0) first_failure = code;
  }
  pids_.clear();
  return first_failure;
}

}  // namespace canb::vmpi
