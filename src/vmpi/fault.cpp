#include "vmpi/fault.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace canb::vmpi {

void FaultConfig::validate() const {
  CANB_REQUIRE(jitter >= 0.0, "fault: jitter sigma must be >= 0");
  CANB_REQUIRE(straggler_rate >= 0.0 && straggler_rate <= 1.0,
               "fault: straggler rate must be a probability");
  CANB_REQUIRE(straggler_factor >= 1.0, "fault: straggler factor must be >= 1 (a slowdown)");
  CANB_REQUIRE(link_degrade_rate >= 0.0 && link_degrade_rate <= 1.0,
               "fault: link degrade rate must be a probability");
  CANB_REQUIRE(link_degrade_factor >= 1.0, "fault: link degrade factor must be >= 1");
  CANB_REQUIRE(drop_rate >= 0.0 && drop_rate < 1.0,
               "fault: drop rate must be in [0, 1) (1 would never deliver)");
  CANB_REQUIRE(timeout_factor >= 0.0, "fault: timeout factor must be >= 0");
  CANB_REQUIRE(backoff >= 1.0, "fault: backoff base must be >= 1");
  CANB_REQUIRE(max_attempts >= 1, "fault: need at least one delivery attempt");
}

namespace {

/// Per-rank stream seed: decorrelates rank streams from each other and from
/// the particle-init seeds (which use the raw user seed directly).
std::uint64_t stream_seed(std::uint64_t seed, int rank) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(rank) + 1)));
  return sm.next();
}

/// Stateless uniform in [0, 1) from a key (link degradation): two SplitMix64
/// rounds fully mix the endpoint bits.
double hash_uniform(std::uint64_t key) {
  SplitMix64 sm(key);
  sm.next();
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

}  // namespace

PerturbationModel::PerturbationModel(FaultConfig cfg, int p) : cfg_(cfg) {
  CANB_REQUIRE(p >= 1, "PerturbationModel needs p >= 1");
  cfg_.validate();
  streams_.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) streams_.emplace_back(stream_seed(cfg_.seed, r));
}

void PerturbationModel::reset() {
  for (int r = 0; r < ranks(); ++r)
    streams_[static_cast<std::size_t>(r)] = Xoshiro256(stream_seed(cfg_.seed, r));
}

double PerturbationModel::compute_factor(int rank) noexcept {
  if (!cfg_.compute_active()) return 1.0;
  auto& rng = streams_[static_cast<std::size_t>(rank)];
  double f = 1.0;
  if (cfg_.jitter > 0.0) f *= std::exp(cfg_.jitter * rng.normal());
  if (cfg_.straggler_rate > 0.0 && rng.uniform() < cfg_.straggler_rate)
    f *= cfg_.straggler_factor;
  return f;
}

double PerturbationModel::link_factor(int src, int dst) const noexcept {
  if (!cfg_.link_active() || src == dst) return 1.0;
  const std::uint64_t key = cfg_.seed ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
                                         static_cast<std::uint32_t>(dst));
  return hash_uniform(key) < cfg_.link_degrade_rate ? cfg_.link_degrade_factor : 1.0;
}

PerturbationModel::Delivery PerturbationModel::plan_delivery(int dst,
                                                             double attempt_cost) noexcept {
  Delivery d;
  if (!cfg_.drop_active()) return d;
  auto& rng = streams_[static_cast<std::size_t>(dst)];
  double timeout = cfg_.timeout_factor * attempt_cost;
  for (int attempt = 0; attempt + 1 < cfg_.max_attempts; ++attempt) {
    if (rng.uniform() >= cfg_.drop_rate) break;
    // The receiver waits out the timeout, then the sender retransmits.
    d.retries += 1;
    d.timeouts += 1;
    d.extra_seconds += timeout + attempt_cost;
    timeout *= cfg_.backoff;
  }
  return d;
}

}  // namespace canb::vmpi
