#include "vmpi/reliable.hpp"

#include <utility>

#include "support/assert.hpp"

namespace canb::vmpi {

void encode_frame(const Frame& f, wire::Bytes& out) {
  wire::Writer w(out);
  const std::uint64_t body = kFrameHeaderBytes + f.payload.size();
  w.scalar<std::uint64_t>(body);
  w.scalar<std::uint8_t>(static_cast<std::uint8_t>(f.kind));
  w.scalar<std::uint32_t>(f.src);
  w.scalar<std::uint32_t>(f.dst);
  w.scalar<std::uint64_t>(f.tag);
  w.scalar<std::uint64_t>(f.seq);
  w.raw(f.payload.data(), f.payload.size());
}

Frame decode_frame_body(std::span<const std::byte> body) {
  CANB_ASSERT_MSG(body.size() >= kFrameHeaderBytes, "frame body shorter than header");
  wire::Reader r(body);
  Frame f;
  f.kind = static_cast<FrameKind>(r.scalar<std::uint8_t>());
  f.src = r.scalar<std::uint32_t>();
  f.dst = r.scalar<std::uint32_t>();
  f.tag = r.scalar<std::uint64_t>();
  f.seq = r.scalar<std::uint64_t>();
  f.payload.resize(r.remaining());
  r.raw(f.payload.data(), f.payload.size());
  return f;
}

std::uint64_t ReliableSender::send(Frame frame, double now, const Emit& emit) {
  frame.seq = next_seq_++;
  emit(frame);
  stats_.data_sent += 1;
  Pending p;
  p.deadline = now + cfg_.rto;
  p.rto = cfg_.rto;
  p.attempts = 1;
  p.frame = std::move(frame);
  const std::uint64_t seq = p.frame.seq;
  pending_.push_back(std::move(p));
  return seq;
}

void ReliableSender::on_ack(std::uint64_t acked) {
  while (!pending_.empty() && pending_.front().frame.seq < acked) pending_.pop_front();
}

double ReliableSender::poll(double now, const Emit& emit) {
  double earliest = std::numeric_limits<double>::infinity();
  for (auto& p : pending_) {
    if (p.deadline <= now) {
      CANB_ASSERT_MSG(p.attempts < cfg_.max_attempts,
                      "reliable channel: frame unacked after max_attempts transmissions");
      emit(p.frame);
      p.attempts += 1;
      stats_.retransmits += 1;
      stats_.timeouts += 1;
      stats_.backoff_wait += p.rto;
      p.rto *= cfg_.backoff;
      p.deadline = now + p.rto;
    }
    if (p.deadline < earliest) earliest = p.deadline;
  }
  return earliest;
}

std::uint64_t ReliableReceiver::on_data(Frame&& f, const Deliver& deliver) {
  if (f.seq < next_expected_) {
    // Already delivered: a retransmit of something our ack for which was
    // lost or late. Discard, but re-ack so the sender can release it.
    stats_.duplicates_dropped += 1;
  } else if (f.seq == next_expected_) {
    next_expected_ += 1;
    stats_.delivered += 1;
    deliver(std::move(f));
    // Drain any stashed successors that are now contiguous.
    for (auto it = stashed_.begin();
         it != stashed_.end() && it->first == next_expected_;) {
      next_expected_ += 1;
      stats_.delivered += 1;
      deliver(std::move(it->second));
      it = stashed_.erase(it);
    }
  } else {
    // Out of order: hold until the gap fills. A duplicate of an already
    // stashed frame is dropped by the map insert.
    auto [it, inserted] = stashed_.try_emplace(f.seq, std::move(f));
    (void)it;
    if (inserted) {
      stats_.reordered_held += 1;
    } else {
      stats_.duplicates_dropped += 1;
    }
  }
  stats_.acks_sent += 1;
  return next_expected_;
}

}  // namespace canb::vmpi
