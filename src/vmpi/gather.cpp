#include "vmpi/gather.hpp"

namespace canb::vmpi {

std::vector<int> group_rep_ranks(const Transport& t) {
  std::vector<int> rep(static_cast<std::size_t>(t.groups()), -1);
  for (int r = 0; r < t.ranks(); ++r) {
    const int g = t.owner_group(r);
    CANB_ASSERT(0 <= g && g < t.groups());
    if (rep[static_cast<std::size_t>(g)] < 0) rep[static_cast<std::size_t>(g)] = r;
  }
  for (int g = 0; g < t.groups(); ++g)
    CANB_REQUIRE(rep[static_cast<std::size_t>(g)] >= 0, "every process group must own a rank");
  return rep;
}

}  // namespace canb::vmpi
