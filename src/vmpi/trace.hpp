// Communication trace recording.
//
// When a TraceRecorder is attached to a VirtualComm, every point-to-point
// message and every collective is appended as an event. Tests use traces
// to verify the *pattern* of Algorithms 1 and 2 — the skew distances, the
// stride-c shifts, the team-collective structure illustrated in the
// paper's Figures 1, 4, and 5 — independently of costs and physics.
//
// Tracing is opt-in: benches at paper scale run without a recorder and
// pay nothing.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "vmpi/cost_ledger.hpp"

namespace canb::vmpi {

struct P2pEvent {
  Phase phase = Phase::Other;
  int src = -1;
  int dst = -1;
  std::uint64_t bytes = 0;  ///< payload bytes (retransmissions not included)
  int round = 0;  ///< synchronous round index (increments per permute step)
  std::uint64_t retries = 0;   ///< fault-injected retransmissions of this delivery
  std::uint64_t timeouts = 0;  ///< timeout expirations the receiver waited out
};

struct CollectiveEvent {
  Phase phase = Phase::Other;
  bool is_reduce = false;
  std::vector<int> members;
  std::uint64_t bytes = 0;
  int round = 0;
  int seq = 0;  ///< ordinal among collectives sharing this round (op ordering)
};

class TraceRecorder {
 public:
  void begin_round() noexcept { ++round_; }

  void record_p2p(Phase phase, int src, int dst, std::uint64_t bytes, std::uint64_t retries = 0,
                  std::uint64_t timeouts = 0) {
    p2p_.push_back({phase, src, dst, bytes, round_, retries, timeouts});
  }

  void record_collective(Phase phase, bool is_reduce, std::vector<int> members,
                         std::uint64_t bytes) {
    // Collectives carry the round of the last permute step plus a sequence
    // number, so the relative order of src-less member-list events (e.g.
    // reduce of step k before broadcast of step k+1) is pinned in the trace.
    if (round_ != coll_seq_round_) {
      coll_seq_round_ = round_;
      coll_seq_ = 0;
    }
    collectives_.push_back({phase, is_reduce, std::move(members), bytes, round_, coll_seq_++});
  }

  void clear() {
    p2p_.clear();
    collectives_.clear();
    round_ = 0;
    coll_seq_ = 0;
    coll_seq_round_ = -1;
  }

  const std::vector<P2pEvent>& p2p() const noexcept { return p2p_; }
  const std::vector<CollectiveEvent>& collectives() const noexcept { return collectives_; }
  int rounds() const noexcept { return round_; }

  /// Events of one phase, in order.
  std::vector<P2pEvent> p2p_of(Phase phase) const {
    std::vector<P2pEvent> out;
    for (const auto& e : p2p_) {
      if (e.phase == phase) out.push_back(e);
    }
    return out;
  }

  /// Total bytes sent by a rank across all point-to-point events.
  std::uint64_t bytes_sent_by(int rank) const noexcept {
    std::uint64_t total = 0;
    for (const auto& e : p2p_) {
      if (e.src == rank) total += e.bytes;
    }
    return total;
  }

 private:
  std::vector<P2pEvent> p2p_;
  std::vector<CollectiveEvent> collectives_;
  int round_ = 0;
  int coll_seq_ = 0;
  int coll_seq_round_ = -1;
};

/// Canonical line-per-event text form of a trace, stable across platforms
/// (integers only, no floats). Golden-trace regression tests diff this
/// exactly against committed files; see docs/TESTING.md for regeneration.
inline std::string serialize_trace(const TraceRecorder& trace) {
  std::ostringstream out;
  out << "rounds " << trace.rounds() << "\n";
  for (const auto& e : trace.p2p()) {
    out << "p2p round=" << e.round << " phase=" << phase_name(e.phase) << " src=" << e.src
        << " dst=" << e.dst << " bytes=" << e.bytes << " retries=" << e.retries
        << " timeouts=" << e.timeouts << "\n";
  }
  for (const auto& e : trace.collectives()) {
    out << "coll round=" << e.round << " seq=" << e.seq << " phase=" << phase_name(e.phase)
        << " op=" << (e.is_reduce ? "reduce" : "bcast") << " bytes=" << e.bytes << " members=";
    for (std::size_t i = 0; i < e.members.size(); ++i) {
      if (i) out << ",";
      out << e.members[i];
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace canb::vmpi
