// BufferPool + DataPlane: the zero-allocation, host-parallel side of the
// vmpi data plane.
//
// The communication primitives (primitives.hpp) and the spatial
// re-assignment loop (core/reassign.hpp) used to allocate staging blocks on
// every call: fresh per-round route lists, default-constructed scratch, and
// copy-assignments that could not promise capacity reuse. A BufferPool is a
// recycling arena for those blocks: release() keeps a block's heap capacity
// (SoaBlock lanes keep their vectors, clear()ed to size zero) and acquire()
// hands it back, so after a warm-up step the hot path performs no heap
// allocation at all (pinned by tests/test_data_plane.cpp with a counting
// operator new).
//
// A DataPlane bundles the pool with the host ThreadPool the engines already
// use for force loops, so the primitives can also fan disjoint copies
// (broadcast replicas, staging copies, per-team route splits) across host
// threads. Everything here is HOST execution only: virtual-time charges are
// issued before any data moves, from particle counts alone, so nothing in
// this file can perturb a ledger, trace, or clock (see DESIGN.md, "host
// data plane vs. virtual cost model").
//
// Threading contract: acquire()/release() are called only from the serial
// orchestration thread (between parallel regions); worker threads only
// write into blocks that were acquired before the fan-out. The pool itself
// therefore needs no locks.
#pragma once

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

#include "support/parallel.hpp"

namespace canb::vmpi {

/// Empties a block for reuse while keeping whatever heap capacity it holds.
/// Falls back to value-resetting types with no clear() (PhantomBlock).
template <class B>
void recycle(B& b) {
  if constexpr (requires { b.clear(); }) {
    b.clear();
  } else {
    b = B{};
  }
}

template <class B>
class BufferPool {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pops a recycled block (empty, capacity intact) or default-constructs
  /// one when the pool is dry.
  B acquire() {
    if (blocks_.empty()) {
      ++fresh_;
      return B{};
    }
    ++reused_;
    B b = std::move(blocks_.back());
    blocks_.pop_back();
    return b;
  }

  /// Returns a block to the pool; its contents are discarded, its lane
  /// capacity is kept for the next acquire().
  void release(B&& b) {
    recycle(b);
    blocks_.push_back(std::move(b));
  }

  /// Pops a recycled vector of exactly n empty blocks. The vector shell and
  /// the blocks inside all come from the arena, so a steady-state caller
  /// (e.g. the per-round route lists in core/reassign.hpp) allocates
  /// nothing.
  std::vector<B> acquire_list(std::size_t n) {
    std::vector<B> list;
    if (!lists_.empty()) {
      list = std::move(lists_.back());
      lists_.pop_back();
    }
    while (list.size() > n) {
      release(std::move(list.back()));
      list.pop_back();
    }
    if (list.capacity() < n) list.reserve(n);
    while (list.size() < n) list.push_back(acquire());
    return list;
  }

  /// Returns a whole list; blocks are recycled in place (capacity kept
  /// inside the stored vector, ready for the next acquire_list).
  void release_list(std::vector<B>&& list) {
    for (auto& b : list) recycle(b);
    lists_.push_back(std::move(list));
  }

  /// Arena statistics for tests and diagnostics: how many acquires were
  /// served fresh (default-constructed) vs. from recycled capacity.
  std::uint64_t fresh_count() const noexcept { return fresh_; }
  std::uint64_t reused_count() const noexcept { return reused_; }

 private:
  std::vector<B> blocks_;
  std::vector<std::vector<B>> lists_;
  std::uint64_t fresh_ = 0;
  std::uint64_t reused_ = 0;
};

/// The host-execution context the engines thread through the primitives:
/// one arena per run (engines share it via sim::Simulation) plus the host
/// worker pool for disjoint-destination copies. A null plane pointer in a
/// primitive selects the legacy serial/allocating path — the pool-off arm
/// the data-plane property test compares against bitwise.
template <class B>
struct DataPlane {
  BufferPool<B> pool;
  ThreadPool* workers = nullptr;  ///< not owned; null or 1-thread = serial
  std::vector<int> ints;          ///< persistent int scratch (skew distances)

  /// Runs fn(chunk_begin, chunk_end) over [0, n), fanned across the host
  /// pool when one is attached (serial otherwise). fn must only touch
  /// disjoint per-index state — the callers copy into disjoint destination
  /// blocks, which is what keeps parallel execution bitwise identical to
  /// serial.
  template <class Fn>
  void for_chunks(int n, Fn&& fn) {
    if (workers != nullptr && workers->thread_count() > 1) {
      workers->for_each_chunk(0, n, fn);
    } else if (n > 0) {
      fn(0, n);
    }
  }
};

}  // namespace canb::vmpi
