// Telemetry: the one object engines and the Simulation talk to.
//
// It implements vmpi::CommObserver (metrics publication from inside
// VirtualComm), owns the TraceRecorder and SpanTimeline needed for
// Chrome-trace export and critical-path analysis, and exposes the
// MetricsRegistry the exporters serialize. Observation is strictly
// passive: attaching a Telemetry changes no clock, ledger entry, or
// physics result — runs are bitwise identical with and without it
// (property-tested).
//
// Levels:
//   Off     — nothing attached; engines skip every hook (zero cost).
//   Metrics — counters/histograms only; no trace, no spans.
//   Full    — metrics + message trace + span samples at phase boundaries
//             (engines also give up the bulk uniform-schedule fast path so
//             every message is observable; ledgers are identical either
//             way, which the bulk-equivalence tests already pin).
//
// Threading: on_compute may fire concurrently from host-pool workers, but
// only for distinct ranks (mirroring ledger rows); it therefore writes a
// per-rank accumulator and never touches the registry. on_p2p and
// on_collective fire from the serial schedule walk. finalize() folds the
// per-rank accumulators into gauges once the run is done.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/parallel.hpp"
#include "vmpi/observer.hpp"
#include "vmpi/trace.hpp"
#include "vmpi/transport.hpp"
#include "vmpi/virtual_comm.hpp"

namespace canb::obs {

enum class ObsLevel { Off, Metrics, Full };

const char* obs_level_name(ObsLevel level) noexcept;
/// Parses "off" / "metrics" / "full"; nullopt on anything else.
std::optional<ObsLevel> parse_obs_level(std::string_view text);

class Telemetry final : public vmpi::CommObserver {
 public:
  explicit Telemetry(ObsLevel level);

  ObsLevel level() const noexcept { return level_; }
  bool enabled() const noexcept { return level_ != ObsLevel::Off; }
  bool spans_enabled() const noexcept { return level_ == ObsLevel::Full; }

  /// Hooks this telemetry into `vc`: registers as its observer and, at
  /// Full level, attaches the owned TraceRecorder (an externally attached
  /// recorder is left in place and read instead). Sizes per-rank state.
  void attach(vmpi::VirtualComm& vc);

  /// Engines call this at the top of every timestep. Records the baseline
  /// span sample on the first call.
  void begin_step(const vmpi::VirtualComm& vc);

  /// Engines call this after each schedule phase completes; at Full level
  /// it samples all rank clocks plus the trace position. `label` names the
  /// schedule point (e.g. "shift", "reduce").
  void phase_boundary(const vmpi::VirtualComm& vc, vmpi::Phase phase, std::string label);

  /// CA engines call this next to each ledger charge with the sweep's
  /// InteractionCount fields. Threading mirrors on_compute: pool workers
  /// hit distinct ranks only, so the per-rank accumulators are race-free.
  /// `examined` is the ledger unit; `computed` counts pair evaluations the
  /// host actually executed (an N3L half-sweep computes ~half of
  /// `examined`); `half_sweep` marks that the half-sweep path ran.
  void on_sweep(int rank, std::uint64_t examined, std::uint64_t computed,
                bool half_sweep) noexcept;

  /// Names the SIMD backend the sweeps dispatched to; published by
  /// finalize() as canb_sweep_backend{backend=...}. Set by the Simulation
  /// (telemetry itself stays independent of the particles library).
  void set_sweep_backend(std::string name) { sweep_backend_ = std::move(name); }

  /// Mesh identity. Once set (>= 0), every process-local series this
  /// telemetry publishes afterwards carries a {"group", "<g>"} label, so
  /// the mesh-merged registry (obs/snapshot.hpp) keeps one disjoint series
  /// per OS process and the Prometheus sum over the group label equals the
  /// whole-mesh total. Leave unset (-1) on single-endpoint runs to keep
  /// the historical unlabeled series.
  void set_group(int group) noexcept { group_ = group; }
  int group() const noexcept { return group_; }

  /// Publishes host scheduler counters from a ThreadPool's SchedulerStats
  /// (support/parallel.hpp): canb_steal_total, canb_sched_tasks_total,
  /// canb_sched_calls_total, per-worker task/busy/idle series, and a
  /// canb_sched_info{mode=...} marker gauge. Host wall-time observability
  /// only — nothing here reads back into the simulation. Safe to call every
  /// step: counters publish the delta since the previous call, so the final
  /// values match a single publish at the end. A no-op while the stats
  /// carry no calls.
  void publish_scheduler(std::string_view mode, const SchedulerStats& stats);

  /// Publishes real-transport fabric counters (vmpi/transport.hpp):
  /// canb_transport_frames/bytes sent/received, reliable-channel
  /// retransmit/ack/duplicate totals, and a canb_transport_info{kind=...}
  /// marker gauge. Fabric observability only — the virtual-cost ledger is
  /// charged before any of these bytes move, so these series never feed
  /// back. Delta-based like publish_scheduler, so the live scrape plane can
  /// call it each step. A no-op until the first frame moves.
  void publish_transport(std::string_view kind, const vmpi::TransportStats& stats);

  /// Publishes the execution mode and rank-ownership share of this process:
  /// a canb_transport_exec{mode=lockstep|owner_computes} marker gauge
  /// (value 1) and the canb_local_ranks gauge (how many virtual ranks this
  /// process runs physics for — p on a single endpoint, the group's share
  /// under owner-computes). Idempotent gauges; safe to call every step.
  void publish_execution(std::string_view mode, int local_ranks);

  /// Publishes the per-phase HOST data-plane gauges accumulated so far.
  /// Gauges are set, not inc'd, so calling every step is idempotent at the
  /// end of the run; finalize() includes it.
  void publish_host_phases();

  // --- live accessors (flight recorder / scrape plane) ----------------------
  std::uint64_t sweep_pairs_examined() const noexcept;
  std::uint64_t sweep_pairs_computed() const noexcept;
  /// Total HOST data-plane seconds across phases so far.
  double host_seconds() const noexcept;
  /// Label of the most recent phase_boundary() call (tracked at every
  /// level, not just Full); "" before the first boundary.
  const std::string& last_phase_label() const noexcept { return last_phase_label_; }
  /// Steps begun so far (begin_step count); -1 before the first step.
  int current_step() const noexcept { return step_; }

  /// Folds per-rank accumulators (compute seconds, wait seconds, final
  /// clocks) into registry gauges. Call once after the run.
  void finalize(const vmpi::VirtualComm& vc);

  MetricsRegistry& metrics() noexcept { return registry_; }
  const MetricsRegistry& metrics() const noexcept { return registry_; }
  const SpanTimeline& spans() const noexcept { return timeline_; }
  /// The trace this telemetry reads (owned or external); null below Full.
  const vmpi::TraceRecorder* trace() const noexcept { return trace_view_; }

  // --- vmpi::CommObserver -------------------------------------------------
  void on_p2p(vmpi::Phase phase, int src, int dst, std::uint64_t bytes, double wait_seconds,
              double cost_seconds, std::uint64_t retries, std::uint64_t timeouts) override;
  void on_collective(vmpi::Phase phase, bool is_reduce, int members, std::uint64_t bytes,
                     double seconds) override;
  void on_compute(int rank, double seconds) override;
  void on_host_phase(vmpi::Phase phase, double seconds) override;

 private:
  struct PhaseSeries {
    Counter* messages = nullptr;
    Counter* bytes_total = nullptr;
    Counter* retries = nullptr;
    Counter* timeouts = nullptr;
    Histogram* message_bytes = nullptr;
    Histogram* wait_seconds = nullptr;
    Counter* bcasts = nullptr;
    Counter* reduces = nullptr;
  };

  PhaseSeries& series_for(vmpi::Phase phase);
  /// Appends {"group", group_} when mesh identity is set.
  Labels with_group(Labels labels) const;

  ObsLevel level_;
  MetricsRegistry registry_;
  SpanTimeline timeline_;
  vmpi::TraceRecorder owned_trace_;
  const vmpi::TraceRecorder* trace_view_ = nullptr;
  Counter* steps_ = nullptr;
  /// Lazily created per-phase series (hot-path pointers, no map lookups).
  std::array<std::optional<PhaseSeries>, vmpi::kPhaseCount> phase_series_;
  // Per-rank accumulators; disjoint writes from pool threads are safe.
  std::vector<double> rank_compute_;
  std::vector<double> rank_wait_;
  // Per-rank sweep accounting (same threading rule as rank_compute_).
  std::vector<double> sweep_examined_;
  std::vector<double> sweep_computed_;
  std::vector<double> sweep_calls_;
  std::vector<double> sweep_half_calls_;
  std::string sweep_backend_;
  /// HOST wall seconds per phase spent physically moving buffers (the data
  /// plane's copy/fold/route time). Written from the serial orchestration
  /// thread only (on_host_phase fires after parallel regions join);
  /// published as gauges by finalize().
  std::array<double, vmpi::kPhaseCount> host_phase_seconds_{};
  int step_ = -1;
  int group_ = -1;  ///< mesh identity; -1 = single endpoint, no group label
  std::string last_phase_label_;
  // Last-published stats, so the publish_* family can run every step and
  // inc only the delta (final totals identical to one publish at the end).
  vmpi::TransportStats last_transport_{};
  std::uint64_t last_sched_calls_ = 0;
  std::uint64_t last_sched_tasks_ = 0;
  std::uint64_t last_sched_steals_ = 0;
};

}  // namespace canb::obs
