#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <ostream>
#include <string_view>

#include "support/assert.hpp"

namespace canb::obs {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

// --- JsonWriter ------------------------------------------------------------

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!comma_.empty()) {
    if (comma_.back()) out_ << ",";
    comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ << "{";
  comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  CANB_ASSERT(!comma_.empty());
  comma_.pop_back();
  out_ << "}";
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ << "[";
  comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  CANB_ASSERT(!comma_.empty());
  comma_.pop_back();
  out_ << "]";
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  CANB_ASSERT_MSG(!after_key_, "two keys in a row");
  pre_value();
  out_ << "\"" << escape(name) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  pre_value();
  out_ << "\"" << escape(v) << "\"";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  // JSON has no Infinity/NaN; clamp to null (only the +Inf histogram edge
  // could hit this, and exporters skip it).
  if (std::isfinite(v)) {
    out_ << format_double(v);
  } else {
    out_ << "null";
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  pre_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ << (v ? "true" : "false");
  return *this;
}

// --- metrics JSON ----------------------------------------------------------

void write_manifest(JsonWriter& w, const RunManifest& manifest) {
  w.key("manifest").begin_object();
  w.kv("tool", manifest.tool);
  w.kv("machine", manifest.machine);
  w.key("build").begin_object();
  w.kv("compiler", manifest.compiler);
  w.kv("git", manifest.git);
  w.kv("simd", manifest.simd);
  w.kv("schema", kObsSchemaVersion);
  w.end_object();
  w.key("config").begin_object();
  for (const auto& kv : manifest.config) w.kv(kv.first, kv.second);
  w.end_object();
  w.end_object();
}

void publish_build_info(MetricsRegistry& registry, const RunManifest& manifest) {
  registry
      .gauge("canb_build_info",
             {{"compiler", manifest.compiler},
              {"git", manifest.git},
              {"schema", std::to_string(kObsSchemaVersion)},
              {"simd", manifest.simd}},
             "Build identity; constant 1, the information rides the labels")
      .set(1.0);
}

namespace {

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::Counter: return "counter";
    case MetricType::Gauge: return "gauge";
    case MetricType::Histogram: return "histogram";
  }
  return "unknown";
}

void write_series(JsonWriter& w, const Family& family, const Series& series) {
  w.begin_object();
  w.key("labels").begin_object();
  for (const auto& kv : series.labels) w.kv(kv.first, kv.second);
  w.end_object();
  switch (family.type) {
    case MetricType::Counter:
      w.kv("value", std::get<Counter>(series.metric).value());
      break;
    case MetricType::Gauge:
      w.kv("value", std::get<Gauge>(series.metric).value());
      break;
    case MetricType::Histogram: {
      const auto& h = std::get<Histogram>(series.metric);
      w.key("edges").begin_array();
      for (double e : h.edges()) w.value(e);
      w.end_array();
      w.key("counts").begin_array();
      for (std::uint64_t c : h.counts()) w.value(c);
      w.end_array();
      w.kv("count", h.count());
      w.kv("sum", h.sum());
      break;
    }
  }
  w.end_object();
}

void write_critical_path(JsonWriter& w, const CriticalPathReport& cp) {
  w.key("critical_path").begin_object();
  w.kv("total_seconds", cp.total);
  w.kv("end_rank", cp.end_rank);
  w.kv("dominant_rank", cp.dominant_rank());
  w.kv("mean_slack_seconds", cp.mean_slack());
  w.key("phase_seconds").begin_object();
  for (int ph = 0; ph < vmpi::kPhaseCount; ++ph) {
    w.kv(vmpi::phase_name(static_cast<vmpi::Phase>(ph)), cp.phase_seconds[ph]);
  }
  w.end_object();
  w.key("rank_path_seconds").begin_array();
  for (double s : cp.rank_path_seconds) w.value(s);
  w.end_array();
  w.key("slack_seconds").begin_array();
  for (double s : cp.slack) w.value(s);
  w.end_array();
  w.key("segments").begin_array();
  for (const auto& seg : cp.segments) {
    w.begin_object();
    w.kv("rank", seg.rank);
    w.kv("phase", vmpi::phase_name(seg.phase));
    w.kv("label", seg.label);
    w.kv("step", seg.step);
    w.kv("start", seg.start);
    w.kv("end", seg.end);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void write_metrics_json(std::ostream& out, const MetricsRegistry& registry,
                        const RunManifest& manifest, const CriticalPathReport* critical_path) {
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema_version", kObsSchemaVersion);
  w.kv("kind", "metrics");
  write_manifest(w, manifest);
  w.key("metrics").begin_array();
  for (const auto& [name, family] : registry.families()) {
    w.begin_object();
    w.kv("name", name);
    w.kv("type", type_name(family.type));
    if (!family.help.empty()) w.kv("help", family.help);
    w.key("series").begin_array();
    for (const auto& [key, series] : family.series) write_series(w, family, series);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  if (critical_path != nullptr) write_critical_path(w, *critical_path);
  w.end_object();
  out << "\n";
}

// --- Prometheus text -------------------------------------------------------

namespace {

std::string prom_labels(const Labels& labels, const std::string& extra_key = {},
                        const std::string& extra_val = {}) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out += ",";
    first = false;
    out += kv.first + "=\"" + kv.second + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_val + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string to_prometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, family] : registry.families()) {
    if (!family.help.empty()) out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " " + type_name(family.type) + "\n";
    for (const auto& [key, series] : family.series) {
      switch (family.type) {
        case MetricType::Counter:
          out += name + prom_labels(series.labels) + " " +
                 std::to_string(std::get<Counter>(series.metric).value()) + "\n";
          break;
        case MetricType::Gauge:
          out += name + prom_labels(series.labels) + " " +
                 format_double(std::get<Gauge>(series.metric).value(), 9) + "\n";
          break;
        case MetricType::Histogram: {
          const auto& h = std::get<Histogram>(series.metric);
          std::uint64_t cumulative = 0;
          for (std::size_t b = 0; b < h.edges().size(); ++b) {
            cumulative += h.counts()[b];
            out += name + "_bucket" +
                   prom_labels(series.labels, "le", format_double(h.edges()[b], 9)) + " " +
                   std::to_string(cumulative) + "\n";
          }
          cumulative += h.counts().back();
          out += name + "_bucket" + prom_labels(series.labels, "le", "+Inf") + " " +
                 std::to_string(cumulative) + "\n";
          out += name + "_sum" + prom_labels(series.labels) + " " + format_double(h.sum(), 9) +
                 "\n";
          out += name + "_count" + prom_labels(series.labels) + " " + std::to_string(h.count()) +
                 "\n";
          break;
        }
      }
    }
  }
  return out;
}

// --- Prometheus validation -------------------------------------------------

namespace {

/// Splits a sample line into (name, label-block, value). Returns false on a
/// malformed line. The label block is the raw text between braces ("" when
/// absent).
bool split_sample(const std::string& line, std::string& name, std::string& labels,
                  std::string& value) {
  const auto brace = line.find('{');
  const auto space = line.find(' ');
  if (brace != std::string::npos && (space == std::string::npos || brace < space)) {
    const auto close = line.rfind('}');
    if (close == std::string::npos || close < brace) return false;
    name = line.substr(0, brace);
    labels = line.substr(brace + 1, close - brace - 1);
    if (close + 2 > line.size() || line[close + 1] != ' ') return false;
    value = line.substr(close + 2);
  } else {
    if (space == std::string::npos) return false;
    name = line.substr(0, space);
    labels = {};
    value = line.substr(space + 1);
  }
  return !name.empty() && !value.empty();
}

/// Parses `k="v",...` into pairs; tolerates quotes-free simple values only
/// in quotes (our exporter never escapes, values contain no '"').
bool parse_labels(const std::string& block, Labels& out) {
  out.clear();
  std::size_t i = 0;
  while (i < block.size()) {
    const auto eq = block.find('=', i);
    if (eq == std::string::npos || eq + 1 >= block.size() || block[eq + 1] != '"') return false;
    const auto close = block.find('"', eq + 2);
    if (close == std::string::npos) return false;
    out.emplace_back(block.substr(i, eq - i), block.substr(eq + 2, close - eq - 2));
    i = close + 1;
    if (i < block.size()) {
      if (block[i] != ',') return false;
      ++i;
    }
  }
  return true;
}

bool parse_number(const std::string& s, double& v) {
  char* end = nullptr;
  v = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

}  // namespace

std::optional<std::string> validate_prometheus(const std::string& text) {
  std::map<std::string, std::string> typed;  // family -> declared type
  std::string pending_help;                  // family whose TYPE must come next
  struct BucketState {
    bool inf_seen = false;
    std::uint64_t last_cum = 0;
    std::uint64_t inf_cum = 0;
  };
  std::map<std::string, BucketState> buckets;  // family + labels-minus-le

  std::size_t lineno = 0;
  std::size_t start = 0;
  auto fail = [&](const std::string& msg) -> std::optional<std::string> {
    return "prometheus line " + std::to_string(lineno) + ": " + msg;
  };

  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    const std::string line =
        text.substr(start, nl == std::string::npos ? std::string::npos : nl - start);
    start = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    if (line.empty()) continue;

    if (line.rfind("# HELP ", 0) == 0) {
      if (!pending_help.empty()) return fail("HELP for " + pending_help + " not followed by TYPE");
      const auto rest = line.substr(7);
      const auto sp = rest.find(' ');
      pending_help = sp == std::string::npos ? rest : rest.substr(0, sp);
      if (pending_help.empty()) return fail("HELP with no metric name");
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const auto rest = line.substr(7);
      const auto sp = rest.find(' ');
      if (sp == std::string::npos) return fail("TYPE with no type");
      const std::string name = rest.substr(0, sp);
      const std::string type = rest.substr(sp + 1);
      if (!pending_help.empty() && pending_help != name) {
        return fail("HELP for " + pending_help + " followed by TYPE for " + name);
      }
      pending_help.clear();
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return fail("unknown type '" + type + "' for " + name);
      }
      if (!typed.emplace(name, type).second) return fail("duplicate TYPE for " + name);
      continue;
    }
    if (line[0] == '#') continue;
    if (!pending_help.empty()) return fail("HELP for " + pending_help + " not followed by TYPE");

    std::string name, label_block, value_str;
    if (!split_sample(line, name, label_block, value_str)) return fail("malformed sample line");
    Labels labels;
    if (!parse_labels(label_block, labels)) return fail("malformed label block on " + name);

    // Resolve the sample to its declaring family: exact for counter/gauge,
    // suffix-stripped for histogram sample kinds.
    std::string family = name;
    std::string suffix;
    auto it = typed.find(family);
    if (it == typed.end()) {
      for (const char* s : {"_bucket", "_sum", "_count"}) {
        const std::string_view sv(s);
        if (name.size() > sv.size() && name.compare(name.size() - sv.size(), sv.size(), s) == 0) {
          const std::string base = name.substr(0, name.size() - sv.size());
          const auto bit = typed.find(base);
          if (bit != typed.end() && bit->second == "histogram") {
            family = base;
            suffix = s;
            it = bit;
            break;
          }
        }
      }
    }
    if (it == typed.end()) return fail("sample " + name + " has no # TYPE declaration");
    if (it->second == "histogram" && suffix.empty()) {
      return fail("bare sample for histogram family " + family);
    }

    double value = 0;
    if (!parse_number(value_str, value)) return fail("non-numeric value on " + name);
    if (it->second == "counter" && value < 0) return fail("negative counter " + name);

    if (suffix == "_bucket") {
      std::string le;
      Labels rest;
      for (auto& kv : labels) {
        if (kv.first == "le") {
          le = kv.second;
        } else {
          rest.push_back(kv);
        }
      }
      if (le.empty()) return fail("histogram bucket without le label on " + family);
      auto& st = buckets[family + MetricsRegistry::label_string(rest)];
      if (st.inf_seen) return fail("bucket after +Inf for " + family);
      const auto cum = static_cast<std::uint64_t>(value);
      if (cum < st.last_cum) return fail("non-monotone bucket counts for " + family);
      st.last_cum = cum;
      if (le == "+Inf") {
        st.inf_seen = true;
        st.inf_cum = cum;
      }
    } else if (suffix == "_count") {
      const auto& st = buckets[family + MetricsRegistry::label_string(labels)];
      if (!st.inf_seen) return fail("_count before +Inf bucket for " + family);
      if (static_cast<std::uint64_t>(value) != st.inf_cum) {
        return fail("_count disagrees with +Inf bucket for " + family);
      }
    }
  }

  if (!pending_help.empty()) {
    lineno += 1;
    return fail("trailing HELP for " + pending_help + " without TYPE");
  }
  for (const auto& [key, st] : buckets) {
    if (!st.inf_seen) return std::optional<std::string>("histogram series " + key + " has no +Inf bucket");
  }
  return std::nullopt;
}

// --- span CSV --------------------------------------------------------------

void write_span_csv(std::ostream& out, const SpanTimeline& timeline) {
  out << "sample,step,label,phase,rank,clock_seconds\n";
  const auto& samples = timeline.samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    for (std::size_t r = 0; r < s.clocks.size(); ++r) {
      out << i << "," << s.step << "," << s.label << "," << vmpi::phase_name(s.phase) << "," << r
          << "," << format_double(s.clocks[r]) << "\n";
    }
  }
}

// --- Chrome trace ----------------------------------------------------------

void write_chrome_trace(std::ostream& out, const SpanTimeline& timeline,
                        const vmpi::TraceRecorder* trace, const RunManifest* manifest,
                        double time_scale_us) {
  const auto& samples = timeline.samples();
  CANB_REQUIRE(!samples.empty(), "span timeline is empty; run with full observability");
  JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents").begin_array();

  const std::size_t ranks = samples.front().clocks.size();
  for (std::size_t r = 0; r < ranks; ++r) {
    // Named rank tracks so Perfetto shows "rank 3" instead of "tid 3".
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 0);
    w.kv("tid", static_cast<std::uint64_t>(r));
    w.key("args").begin_object();
    w.kv("name", "rank " + std::to_string(r));
    w.end_object();
    w.end_object();
  }

  for (std::size_t r = 0; r < ranks; ++r) {
    for (std::size_t i = 1; i < samples.size(); ++i) {
      const double prev = samples[i - 1].clocks[r];
      const double now = samples[i].clocks[r];
      if (now <= prev) continue;
      w.begin_object();
      w.kv("name", samples[i].label.empty() ? std::string(vmpi::phase_name(samples[i].phase))
                                            : samples[i].label);
      w.kv("cat", vmpi::phase_name(samples[i].phase));
      w.kv("ph", "X");
      w.kv("pid", 0);
      w.kv("tid", static_cast<std::uint64_t>(r));
      w.kv("ts", prev * time_scale_us);
      w.kv("dur", (now - prev) * time_scale_us);
      w.key("args").begin_object();
      w.kv("step", samples[i].step);
      w.end_object();
      w.end_object();
    }
  }

  if (trace != nullptr) {
    // Message markers on the receiver's track, placed at the end of the
    // span that recorded them (event indices locate the enclosing span).
    const auto& p2p = trace->p2p();
    std::size_t span = 1;
    for (std::size_t i = 0; i < p2p.size(); ++i) {
      while (span < samples.size() && samples[span].p2p_end <= i) ++span;
      if (span >= samples.size()) break;
      const auto& e = p2p[i];
      w.begin_object();
      w.kv("name",
           "msg r" + std::to_string(e.src) + "->r" + std::to_string(e.dst) + " " +
               std::to_string(e.bytes) + "B" +
               (e.retries > 0 ? " retries=" + std::to_string(e.retries) : ""));
      w.kv("cat", vmpi::phase_name(e.phase));
      w.kv("ph", "i");
      w.kv("s", "t");
      w.kv("pid", 0);
      w.kv("tid", static_cast<std::uint64_t>(e.dst));
      w.kv("ts", samples[span].clocks[static_cast<std::size_t>(e.dst)] * time_scale_us);
      w.end_object();
    }
  }

  w.end_array();
  if (manifest != nullptr) {
    w.key("otherData").begin_object();
    w.kv("tool", manifest->tool);
    w.kv("machine", manifest->machine);
    for (const auto& kv : manifest->config) w.kv(kv.first, kv.second);
    w.end_object();
  }
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  out << "\n";
}

// --- BenchJsonWriter -------------------------------------------------------

BenchJsonWriter::BenchJsonWriter(const std::string& path, const std::string& bench,
                                 const std::string& unit, const RunManifest& manifest)
    : file_(path), w_(file_), path_(path) {
  CANB_REQUIRE(file_.good(), "cannot open bench output file: " + path);
  w_.begin_object();
  w_.kv("schema_version", kObsSchemaVersion);
  w_.kv("kind", "bench");
  w_.kv("bench", bench);
  w_.kv("unit", unit);
  write_manifest(w_, manifest);
  w_.key("rows").begin_array();
}

BenchJsonWriter::~BenchJsonWriter() { close(); }

void BenchJsonWriter::row(const std::function<void(JsonWriter&)>& fill) {
  CANB_REQUIRE(!closed_, "row() after close(): " + path_);
  w_.begin_object();
  fill(w_);
  w_.end_object();
}

void BenchJsonWriter::close() {
  if (closed_) return;
  closed_ = true;
  w_.end_array();
  w_.end_object();
  file_ << "\n";
  CANB_REQUIRE(file_.good(), "bench JSON write failed: " + path_);
  file_.close();
}

}  // namespace canb::obs
