// Exporters: one run, four artifact formats, one provenance manifest.
//
//  * write_metrics_json  — versioned-schema JSON: manifest + every metric
//    family/series + (optionally) the critical-path report. The schema
//    version bumps whenever a field changes meaning; consumers
//    (scripts/plot_figures.py) branch on it.
//  * to_prometheus       — Prometheus text exposition format, suitable for
//    a textfile-collector drop or diffing in golden tests.
//  * write_span_csv      — per-rank clock time series, one row per
//    (sample, rank), for spreadsheet-grade analysis.
//  * write_chrome_trace  — chrome://tracing / Perfetto JSON: one track per
//    rank, one duration event per span, message markers, manifest in
//    otherData. Replaces the old sim::export_chrome_trace.
//  * BenchJsonWriter     — the shared writer behind every BENCH_*.json
//    emission: schema_version + manifest header, then caller-shaped rows.
//
// All exporters format doubles with fixed precision through one helper,
// so outputs are deterministic and golden-testable.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "vmpi/trace.hpp"

namespace canb::obs {

/// Version of the JSON schemas written by this file (metrics and bench).
/// v1 is the pre-obs hand-rolled bench JSON (no manifest, no version key);
/// v3 adds the manifest "build" block (compiler, git, simd, schema) and the
/// canb_build_info gauge. Consumers branching on `version >= 2` keep
/// working: v3 only adds fields.
inline constexpr int kObsSchemaVersion = 3;

/// Shortest-round-trip-ish deterministic double formatting (%.12g); used
/// by every exporter so artifacts are reproducible across runs.
std::string format_double(double v, int precision = 12);

/// Minimal streaming JSON writer: explicit begin/end calls, automatic
/// comma placement, string escaping. No DOM — exports stream straight to
/// the output.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Emits `"name":` — must be followed by a value or begin_*.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);

  /// key + value in one call.
  template <class T>
  JsonWriter& kv(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  static std::string escape(const std::string& s);

 private:
  void pre_value();

  std::ostream& out_;
  std::vector<bool> comma_;  ///< per-open-container: "next item needs a comma"
  bool after_key_ = false;
};

/// Serializes the manifest as the current JSON object's "manifest" member.
void write_manifest(JsonWriter& w, const RunManifest& manifest);

/// Emits the canb_build_info gauge (constant 1; identity rides the labels:
/// compiler, git, schema, simd) so every scrape and metrics file names the
/// build that produced it.
void publish_build_info(MetricsRegistry& registry, const RunManifest& manifest);

/// Structural validation of Prometheus text exposition output: every # HELP
/// is immediately followed by # TYPE for the same family, every sample's
/// base name was declared by a # TYPE, histogram buckets are cumulative
/// monotone per series with a terminal +Inf bucket matching _count.
/// Returns std::nullopt when valid, else a description of the first fault.
std::optional<std::string> validate_prometheus(const std::string& text);

/// Full metrics dump: {"schema_version":3, "kind":"metrics", "manifest":...,
/// "metrics":[...], "critical_path":{...}?}.
void write_metrics_json(std::ostream& out, const MetricsRegistry& registry,
                        const RunManifest& manifest,
                        const CriticalPathReport* critical_path = nullptr);

/// Prometheus text exposition format (# HELP / # TYPE, histogram
/// _bucket{le=...} cumulative counts, _sum, _count).
std::string to_prometheus(const MetricsRegistry& registry);

/// CSV time series: sample,step,label,phase,rank,clock_seconds.
void write_span_csv(std::ostream& out, const SpanTimeline& timeline);

/// Chrome trace-event JSON from span samples. Each rank is a thread; the
/// interval between consecutive samples becomes a duration event named by
/// the later sample's label (category = phase). P2p messages become
/// instant events on the receiver's track at the enclosing span's end
/// time. The manifest, when given, lands in otherData.
void write_chrome_trace(std::ostream& out, const SpanTimeline& timeline,
                        const vmpi::TraceRecorder* trace = nullptr,
                        const RunManifest* manifest = nullptr, double time_scale_us = 1e6);

/// Shared writer for bench result files. Usage:
///   BenchJsonWriter out("BENCH_foo.json", "foo", "seconds", manifest);
///   out.row([&](JsonWriter& w) { w.kv("n", n).kv("t", t); });
/// The file is finalized (rows closed, footer written) on close()/destruction.
class BenchJsonWriter {
 public:
  BenchJsonWriter(const std::string& path, const std::string& bench, const std::string& unit,
                  const RunManifest& manifest);
  ~BenchJsonWriter();
  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  /// Appends one result row; `fill` writes the row object's members.
  void row(const std::function<void(JsonWriter&)>& fill);
  void close();

 private:
  std::ofstream file_;
  JsonWriter w_;
  std::string path_;
  bool closed_ = false;
};

}  // namespace canb::obs
