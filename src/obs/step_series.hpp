// StepSeries: the per-step flight recorder.
//
// A fixed-capacity ring of StepSample rows — HOST wall seconds, virtual
// clock advance, sweep pair counts, steals, retransmits, host data-plane
// seconds — recorded once per timestep. The ring bounds memory for
// arbitrarily long runs; when it wraps, the oldest rows fall off and the
// exported JSON says how many were recorded in total.
//
// Straggler detection: once at least kMinSamplesForMedian rows are
// resident, a step whose wall time exceeds `straggler_factor` times the
// rolling median is flagged, appended to a separate (capped) straggler
// list, and reported through the optional sink callback — which the CLI
// uses to drop a JSON snapshot the moment the anomaly happens instead of
// waiting for the run to end.
//
// Pure host-side observation: nothing here reads back into the simulation,
// and recording draws only on wall clocks and already-maintained counters.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "obs/manifest.hpp"

namespace canb::obs {

struct StepSample {
  int step = 0;
  double wall_seconds = 0.0;           ///< HOST wall time of the step
  double clock_advance_seconds = 0.0;  ///< max virtual clock delta this step
  std::uint64_t pairs_examined = 0;    ///< sweep pairs accounted (ledger unit)
  std::uint64_t pairs_computed = 0;    ///< pair evaluations the host executed
  std::uint64_t steals = 0;            ///< scheduler steal ops during the step
  std::uint64_t retransmits = 0;       ///< transport retransmits during the step
  double host_phase_seconds = 0.0;     ///< data-plane seconds during the step
  bool straggler = false;              ///< flagged against the rolling median
};

class StepSeries {
 public:
  /// Rows resident before straggler detection arms (warmup noise guard).
  static constexpr std::size_t kMinSamplesForMedian = 8;
  /// Most stragglers retained; beyond this, new flags still fire the sink
  /// but are not stored.
  static constexpr std::size_t kMaxStragglers = 64;

  explicit StepSeries(std::size_t capacity = 1024, double straggler_factor = 3.0);

  /// Appends one sample (evicting the oldest once full). Returns whether
  /// the sample was flagged as a straggler; the flag is also set on the
  /// stored sample and the sink (if any) fires before returning.
  bool record(StepSample sample);

  /// Fires synchronously from record() for each flagged straggler.
  void set_straggler_sink(std::function<void(const StepSample&)> sink) {
    sink_ = std::move(sink);
  }

  /// Resident samples, oldest first.
  std::vector<StepSample> samples() const;
  /// Flagged stragglers in flag order (capped at kMaxStragglers).
  const std::vector<StepSample>& stragglers() const noexcept { return stragglers_; }

  /// Rolling median of resident wall times; 0 while empty.
  double median_wall_seconds() const;

  std::size_t capacity() const noexcept { return ring_.capacity(); }
  std::size_t size() const noexcept { return ring_.size(); }
  /// Samples ever recorded (>= size() once the ring wraps).
  std::uint64_t recorded_total() const noexcept { return recorded_; }
  double straggler_factor() const noexcept { return factor_; }

 private:
  std::vector<StepSample> ring_;  ///< capacity reserved up front
  std::size_t next_ = 0;          ///< overwrite cursor once full
  std::uint64_t recorded_ = 0;
  double factor_;
  std::vector<StepSample> stragglers_;
  std::function<void(const StepSample&)> sink_;
};

/// Flight-recorder JSON: {"schema_version":3, "kind":"step_series",
/// manifest, capacity/recorded_total/straggler stats, samples[] oldest
/// first, stragglers[]}.
void write_step_series(std::ostream& out, const StepSeries& series,
                       const RunManifest& manifest);

}  // namespace canb::obs
