#include "obs/critical_path.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/assert.hpp"

namespace canb::obs {

int CriticalPathReport::dominant_rank() const noexcept {
  if (rank_path_seconds.empty()) return -1;
  const auto it = std::max_element(rank_path_seconds.begin(), rank_path_seconds.end());
  return static_cast<int>(it - rank_path_seconds.begin());
}

double CriticalPathReport::mean_slack() const noexcept {
  if (slack.empty()) return 0.0;
  double s = 0.0;
  for (double v : slack) s += v;
  return s / static_cast<double>(slack.size());
}

namespace {

/// The rank whose clock at the *previous* boundary bound the walked rank's
/// span start. Candidates: the rank itself, senders of p2p messages it
/// received during the span, and every member of collectives it joined
/// (a tree collective synchronizes the whole member set). Ties prefer the
/// rank itself (no chain hop without evidence), then the lowest rank.
int binding_predecessor(const SpanSample& prev, const SpanSample& cur, int rank,
                        const vmpi::TraceRecorder* trace) {
  const auto& clocks = prev.clocks;
  int best = rank;
  double best_clock = clocks[static_cast<std::size_t>(rank)];
  auto consider = [&](int cand) {
    const double c = clocks[static_cast<std::size_t>(cand)];
    if (c > best_clock || (c == best_clock && cand < best && best != rank)) {
      best = cand;
      best_clock = c;
    }
  };
  if (trace != nullptr) {
    const auto& p2p = trace->p2p();
    for (std::size_t i = prev.p2p_end; i < cur.p2p_end && i < p2p.size(); ++i) {
      if (p2p[i].dst == rank) consider(p2p[i].src);
    }
    const auto& colls = trace->collectives();
    for (std::size_t i = prev.coll_end; i < cur.coll_end && i < colls.size(); ++i) {
      const auto& m = colls[i].members;
      if (std::find(m.begin(), m.end(), rank) == m.end()) continue;
      for (int r : m) consider(r);
    }
  }
  return best;
}

}  // namespace

CriticalPathReport analyze_critical_path(const SpanTimeline& timeline,
                                         const vmpi::TraceRecorder* trace) {
  CriticalPathReport report;
  const auto& samples = timeline.samples();
  if (samples.size() < 2) return report;
  const int p = timeline.ranks();
  CANB_REQUIRE(p > 0, "critical-path analysis needs at least one rank");
  report.rank_path_seconds.assign(static_cast<std::size_t>(p), 0.0);
  report.slack.assign(static_cast<std::size_t>(p), 0.0);

  const auto& last = samples.back().clocks;
  CANB_REQUIRE(static_cast<int>(last.size()) == p, "span samples disagree on rank count");
  int cur = 0;
  for (int r = 1; r < p; ++r) {
    if (last[static_cast<std::size_t>(r)] > last[static_cast<std::size_t>(cur)]) cur = r;
  }
  report.end_rank = cur;
  const double makespan = last[static_cast<std::size_t>(cur)];
  for (int r = 0; r < p; ++r) {
    report.slack[static_cast<std::size_t>(r)] = makespan - last[static_cast<std::size_t>(r)];
  }

  // Backward walk: the span ending at sample i ran on `cur`; its start is
  // the binding predecessor's clock at sample i-1, and that predecessor is
  // the rank the walk continues on. Telescoping makes the durations sum to
  // makespan - clocks_0[chain start] exactly.
  std::vector<PathSegment> chain;
  for (std::size_t i = samples.size() - 1; i >= 1; --i) {
    const auto& cur_sample = samples[i];
    const auto& prev_sample = samples[i - 1];
    CANB_REQUIRE(static_cast<int>(cur_sample.clocks.size()) == p &&
                     static_cast<int>(prev_sample.clocks.size()) == p,
                 "span samples disagree on rank count");
    const int pred = binding_predecessor(prev_sample, cur_sample, cur, trace);
    PathSegment seg;
    seg.rank = cur;
    seg.phase = cur_sample.phase;
    seg.label = cur_sample.label;
    seg.step = cur_sample.step;
    seg.start = prev_sample.clocks[static_cast<std::size_t>(pred)];
    seg.end = cur_sample.clocks[static_cast<std::size_t>(cur)];
    const double d = seg.duration();
    report.phase_seconds[static_cast<int>(seg.phase)] += d;
    report.rank_path_seconds[static_cast<std::size_t>(cur)] += d;
    if (d > 0.0) chain.push_back(std::move(seg));
    cur = pred;
  }
  report.total = makespan - samples.front().clocks[static_cast<std::size_t>(cur)];
  std::reverse(chain.begin(), chain.end());
  report.segments = std::move(chain);
  return report;
}

std::string format_critical_path(const CriticalPathReport& report) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(6);
  out << "critical path: " << report.total << " s ending on rank " << report.end_rank << "\n";
  out << "  per-phase split:";
  for (int ph = 0; ph < vmpi::kPhaseCount; ++ph) {
    const double s = report.phase_seconds[ph];
    if (s <= 0.0) continue;
    out << " " << vmpi::phase_name(static_cast<vmpi::Phase>(ph)) << "=" << s;
  }
  out << "\n";
  out << "  dominant rank: " << report.dominant_rank() << " ("
      << (report.dominant_rank() >= 0
              ? report.rank_path_seconds[static_cast<std::size_t>(report.dominant_rank())]
              : 0.0)
      << " s on path), mean slack " << report.mean_slack() << " s\n";
  out << "  chain (" << report.segments.size() << " segments):\n";
  for (const auto& seg : report.segments) {
    out << "    [" << seg.start << ", " << seg.end << "] rank " << seg.rank << " "
        << vmpi::phase_name(seg.phase);
    if (!seg.label.empty()) out << "/" << seg.label;
    if (seg.step >= 0) out << " step " << seg.step;
    out << "\n";
  }
  return out.str();
}

}  // namespace canb::obs
