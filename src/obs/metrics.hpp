// MetricsRegistry: counters, gauges, and fixed-bucket histograms with
// Prometheus-style labels.
//
// A metric *family* is a (name, type, help) triple; a *series* is one
// family member identified by its label set — e.g. the family
// canb_message_bytes holds one histogram series per phase. Families and
// series are created on first touch and live for the registry's lifetime,
// so hot paths hold raw Counter*/Histogram* pointers and pay one pointer
// chase per event; the map lookups happen only at registration time.
//
// The registry is observation-only state: nothing in the simulation reads
// it back, which is what lets telemetry guarantee bitwise inertness.
// Iteration order (families by name, series by canonical label string) is
// deterministic, so exporter output is reproducible and golden-testable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace canb::obs {

/// Label set of one series, e.g. {{"phase", "shift"}}. Keys are sorted at
/// registration so the same set always names the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. `edges` are ascending inclusive upper bounds
/// (Prometheus `le` semantics); an implicit +Inf bucket catches overflow.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  /// Rebuilds a histogram from serialized parts (mesh snapshot decode).
  /// `counts` must have edges.size() + 1 entries (the +Inf bucket included)
  /// and `count` must equal their sum.
  static Histogram from_parts(std::vector<double> edges, std::vector<std::uint64_t> counts,
                              std::uint64_t count, double sum);

  void observe(double v) noexcept;

  /// Adds another histogram's buckets, count, and sum into this one
  /// (bucket-wise; the mesh merge operation). The edge vectors must match
  /// exactly — merging differently-bucketed series is a schema error.
  void merge_from(const Histogram& other);

  const std::vector<double>& edges() const noexcept { return edges_; }
  /// Per-bucket counts; size edges().size() + 1, last entry is the +Inf bucket.
  const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

enum class MetricType { Counter, Gauge, Histogram };

struct Series {
  Labels labels;  ///< sorted by key
  std::variant<Counter, Gauge, Histogram> metric;
};

struct Family {
  std::string name;
  std::string help;
  MetricType type = MetricType::Counter;
  /// Keyed by the canonical label string (deterministic exporter order).
  std::map<std::string, Series> series;
};

class MetricsRegistry {
 public:
  /// Returns the series, creating family and series on first touch.
  /// Re-registering an existing family with a different type throws.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {}, const std::string& help = {});
  /// `edges` applies on first creation of the series; an existing series
  /// keeps its original buckets (a family's series share edge semantics by
  /// convention, not enforcement).
  Histogram& histogram(const std::string& name, std::vector<double> edges,
                       const Labels& labels = {}, const std::string& help = {});

  const std::map<std::string, Family>& families() const noexcept { return families_; }
  bool empty() const noexcept { return families_.empty(); }

  /// Canonical `{k="v",...}` form of a label set ("" when empty).
  static std::string label_string(const Labels& labels);

 private:
  Series& find_or_create(const std::string& name, MetricType type, const Labels& labels,
                         const std::string& help);

  std::map<std::string, Family> families_;
};

}  // namespace canb::obs
