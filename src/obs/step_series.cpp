#include "obs/step_series.hpp"

#include <algorithm>
#include <ostream>

#include "obs/export.hpp"
#include "support/assert.hpp"

namespace canb::obs {

StepSeries::StepSeries(std::size_t capacity, double straggler_factor)
    : factor_(straggler_factor) {
  CANB_REQUIRE(capacity > 0, "step series needs a nonzero capacity");
  CANB_REQUIRE(straggler_factor > 1.0, "straggler factor must exceed 1");
  ring_.reserve(capacity);
  stragglers_.reserve(kMaxStragglers);
}

double StepSeries::median_wall_seconds() const {
  if (ring_.empty()) return 0.0;
  std::vector<double> walls;
  walls.reserve(ring_.size());
  for (const auto& s : ring_) walls.push_back(s.wall_seconds);
  const auto mid = walls.size() / 2;
  std::nth_element(walls.begin(), walls.begin() + static_cast<std::ptrdiff_t>(mid), walls.end());
  return walls[mid];
}

bool StepSeries::record(StepSample sample) {
  // Judge against the median of *previous* steps, so one slow step cannot
  // mask itself by dragging its own median up.
  const double median = median_wall_seconds();
  const bool flag = ring_.size() >= kMinSamplesForMedian && median > 0.0 &&
                    sample.wall_seconds > factor_ * median;
  sample.straggler = flag;

  if (ring_.size() < ring_.capacity()) {
    ring_.push_back(sample);
  } else {
    ring_[next_] = sample;
    next_ = (next_ + 1) % ring_.capacity();
  }
  ++recorded_;

  if (flag) {
    if (stragglers_.size() < kMaxStragglers) stragglers_.push_back(sample);
    if (sink_) sink_(sample);
  }
  return flag;
}

std::vector<StepSample> StepSeries::samples() const {
  std::vector<StepSample> out;
  out.reserve(ring_.size());
  // Once the ring has wrapped, next_ points at the oldest resident sample.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

namespace {

void write_sample(JsonWriter& w, const StepSample& s) {
  w.begin_object();
  w.kv("step", s.step);
  w.kv("wall_seconds", s.wall_seconds);
  w.kv("clock_advance_seconds", s.clock_advance_seconds);
  w.kv("pairs_examined", s.pairs_examined);
  w.kv("pairs_computed", s.pairs_computed);
  w.kv("steals", s.steals);
  w.kv("retransmits", s.retransmits);
  w.kv("host_phase_seconds", s.host_phase_seconds);
  w.kv("straggler", s.straggler);
  w.end_object();
}

}  // namespace

void write_step_series(std::ostream& out, const StepSeries& series,
                       const RunManifest& manifest) {
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema_version", kObsSchemaVersion);
  w.kv("kind", "step_series");
  write_manifest(w, manifest);
  w.kv("capacity", static_cast<std::uint64_t>(series.capacity()));
  w.kv("recorded_total", series.recorded_total());
  w.kv("straggler_factor", series.straggler_factor());
  w.kv("median_wall_seconds", series.median_wall_seconds());
  w.key("samples").begin_array();
  for (const auto& s : series.samples()) write_sample(w, s);
  w.end_array();
  w.key("stragglers").begin_array();
  for (const auto& s : series.stragglers()) write_sample(w, s);
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace canb::obs
