// Critical-path recovery from span samples plus the communication trace.
//
// The ledger already answers "which rank finished last and what did it
// spend time on" — but that rank's own breakdown is not the dependency
// chain. A rank can finish last because it *waited* on a straggler's
// shift message; the seconds it burned waiting are charged to its shift
// phase, while the actual critical work happened on the sender. The
// analyzer walks backwards from the last-finishing rank, and at every
// phase boundary asks: which rank's clock did this span's start time bind
// to?  Candidates come from the trace — the p2p senders into the current
// rank and the member sets of collectives it joined during the span —
// plus the rank itself. The binding predecessor is the candidate with the
// largest clock at the previous boundary, because max() over exactly
// those clocks is how VirtualComm computed the span's start.
//
// The recovered segments tile [first boundary, last finish] gaplessly by
// construction: segment i ends at clocks_i[rank] and starts at
// clocks_{i-1}[pred], and pred becomes the walked rank for segment i-1.
// Hence sum(duration) == max_clock exactly (up to float association),
// which the tests pin to 1e-9.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "vmpi/cost_ledger.hpp"
#include "vmpi/trace.hpp"

namespace canb::obs {

/// One span of the recovered dependency chain: `rank` held the critical
/// path from `start` to `end` (virtual seconds) while the schedule ran
/// `phase`. Zero-length spans (boundary crossed without waiting) are
/// elided from the segment list but still tile the total.
struct PathSegment {
  int rank = -1;
  vmpi::Phase phase = vmpi::Phase::Other;
  std::string label;
  int step = -1;
  double start = 0.0;
  double end = 0.0;

  double duration() const noexcept { return end - start; }
};

struct CriticalPathReport {
  /// Chain in time order (earliest first).
  std::vector<PathSegment> segments;
  /// Seconds of critical path spent per phase; sums to `total`.
  std::array<double, vmpi::kPhaseCount> phase_seconds{};
  /// Seconds each rank spent holding the critical path; sums to `total`.
  std::vector<double> rank_path_seconds;
  /// Per-rank slack: how long before the end of the run each rank's final
  /// clock stopped (0 for the last-finishing rank).
  std::vector<double> slack;
  int end_rank = -1;  ///< rank whose clock defines the makespan
  double total = 0.0; ///< makespan covered by the chain (max final clock)

  /// Rank holding the critical path longest — the straggler under fault
  /// injection, or simply the busiest rank in a balanced run.
  int dominant_rank() const noexcept;
  double mean_slack() const noexcept;
};

/// Walks the chain backwards from the last-finishing rank. `trace` supplies
/// the dependency candidates; with a null trace every span binds to the
/// walked rank itself (pure per-rank attribution, still tiles exactly).
/// Requires at least two samples (a baseline plus one boundary); returns an
/// empty report otherwise.
CriticalPathReport analyze_critical_path(const SpanTimeline& timeline,
                                         const vmpi::TraceRecorder* trace);

/// Human-readable summary (per-phase split, dominant rank, slack stats,
/// then the chain itself) for CLI output.
std::string format_critical_path(const CriticalPathReport& report);

}  // namespace canb::obs
