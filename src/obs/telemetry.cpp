#include "obs/telemetry.hpp"

#include "support/assert.hpp"

namespace canb::obs {

const char* obs_level_name(ObsLevel level) noexcept {
  switch (level) {
    case ObsLevel::Off: return "off";
    case ObsLevel::Metrics: return "metrics";
    case ObsLevel::Full: return "full";
  }
  return "unknown";
}

std::optional<ObsLevel> parse_obs_level(std::string_view text) {
  if (text == "off") return ObsLevel::Off;
  if (text == "metrics") return ObsLevel::Metrics;
  if (text == "full") return ObsLevel::Full;
  return std::nullopt;
}

Telemetry::Telemetry(ObsLevel level) : level_(level) {}

void Telemetry::attach(vmpi::VirtualComm& vc) {
  if (!enabled()) return;
  vc.set_observer(this);
  if (spans_enabled()) {
    if (vc.trace() != nullptr) {
      trace_view_ = vc.trace();
    } else {
      vc.set_trace(&owned_trace_);
      trace_view_ = &owned_trace_;
    }
  }
  const auto p = static_cast<std::size_t>(vc.size());
  rank_compute_.assign(p, 0.0);
  rank_wait_.assign(p, 0.0);
  sweep_examined_.assign(p, 0.0);
  sweep_computed_.assign(p, 0.0);
  sweep_calls_.assign(p, 0.0);
  sweep_half_calls_.assign(p, 0.0);
  steps_ = &registry_.counter("canb_steps_total", {}, "timesteps executed");
}

Telemetry::PhaseSeries& Telemetry::series_for(vmpi::Phase phase) {
  auto& slot = phase_series_[static_cast<std::size_t>(phase)];
  if (!slot.has_value()) {
    const Labels labels{{"phase", vmpi::phase_name(phase)}};
    PhaseSeries s;
    s.messages = &registry_.counter("canb_messages_total", labels,
                                    "point-to-point messages delivered");
    s.bytes_total = &registry_.counter("canb_bytes_total", labels,
                                       "payload bytes moved point-to-point");
    s.retries = &registry_.counter("canb_retries_total", labels,
                                   "fault-injected message retransmissions");
    s.timeouts = &registry_.counter("canb_timeouts_total", labels,
                                    "fault-injected timeout expirations");
    s.message_bytes = &registry_.histogram(
        "canb_message_bytes", {64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}, labels,
        "per-message payload size distribution (bytes)");
    s.wait_seconds = &registry_.histogram(
        "canb_wait_seconds", {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0}, labels,
        "receiver wait-for-sender time distribution (virtual seconds)");
    s.bcasts = &registry_.counter("canb_collectives_total",
                                  {{"phase", vmpi::phase_name(phase)}, {"op", "bcast"}},
                                  "tree collectives executed");
    s.reduces = &registry_.counter("canb_collectives_total",
                                   {{"phase", vmpi::phase_name(phase)}, {"op", "reduce"}},
                                   "tree collectives executed");
    slot = s;
  }
  return *slot;
}

void Telemetry::begin_step(const vmpi::VirtualComm& vc) {
  ++step_;
  if (steps_ != nullptr) steps_->inc();
  if (spans_enabled() && timeline_.empty()) {
    // Baseline sample: the chain's anchor at the run's starting clocks.
    SpanSample s;
    s.label = "start";
    s.step = -1;
    if (trace_view_ != nullptr) {
      s.p2p_end = trace_view_->p2p().size();
      s.coll_end = trace_view_->collectives().size();
    }
    s.clocks.reserve(static_cast<std::size_t>(vc.size()));
    for (int r = 0; r < vc.size(); ++r) s.clocks.push_back(vc.clock(r));
    timeline_.add(std::move(s));
  }
}

Labels Telemetry::with_group(Labels labels) const {
  if (group_ >= 0) labels.emplace_back("group", std::to_string(group_));
  return labels;
}

void Telemetry::phase_boundary(const vmpi::VirtualComm& vc, vmpi::Phase phase,
                               std::string label) {
  last_phase_label_ = label;
  if (!spans_enabled()) return;
  SpanSample s;
  s.label = std::move(label);
  s.phase = phase;
  s.step = step_;
  if (trace_view_ != nullptr) {
    s.p2p_end = trace_view_->p2p().size();
    s.coll_end = trace_view_->collectives().size();
  }
  s.clocks.reserve(static_cast<std::size_t>(vc.size()));
  for (int r = 0; r < vc.size(); ++r) s.clocks.push_back(vc.clock(r));
  timeline_.add(std::move(s));
}

void Telemetry::publish_scheduler(std::string_view mode, const SchedulerStats& stats) {
  if (!enabled() || stats.calls == 0) return;
  registry_
      .gauge("canb_sched_info", with_group({{"mode", std::string(mode)}}),
             "host task scheduler in effect (value 1; mode label carries the choice)")
      .set(1.0);
  registry_
      .counter("canb_sched_calls_total", with_group({}),
               "parallel_tasks invocations on the host pool")
      .inc(stats.calls - last_sched_calls_);
  registry_.counter("canb_sched_tasks_total", with_group({}), "tasks executed across all workers")
      .inc(stats.tasks - last_sched_tasks_);
  registry_
      .counter("canb_steal_total", with_group({}),
               "steal operations (batches clipped from another worker's deque)")
      .inc(stats.steals - last_sched_steals_);
  last_sched_calls_ = stats.calls;
  last_sched_tasks_ = stats.tasks;
  last_sched_steals_ = stats.steals;
  for (std::size_t w = 0; w < stats.tasks_per_worker.size(); ++w) {
    const Labels labels = with_group({{"worker", std::to_string(w)}});
    registry_
        .gauge("canb_tasks_per_worker", labels,
               "tasks this worker executed (own + stolen); HOST wall accounting")
        .set(static_cast<double>(stats.tasks_per_worker[w]));
    registry_
        .gauge("canb_worker_busy_seconds", labels,
               "HOST wall seconds this worker spent running tasks")
        .set(stats.busy_seconds[w]);
    registry_
        .gauge("canb_worker_idle_seconds", labels,
               "HOST wall seconds this worker waited inside task drains")
        .set(stats.idle_seconds[w]);
  }
}

void Telemetry::publish_transport(std::string_view kind, const vmpi::TransportStats& stats) {
  if (!enabled() || stats.frames_sent == 0) return;
  registry_
      .gauge("canb_transport_info", with_group({{"kind", std::string(kind)}}),
             "real transport in effect (value 1; kind label carries the backend)")
      .set(1.0);
  registry_
      .counter("canb_transport_frames_sent_total", with_group({}),
               "payload frames this endpoint posted to the fabric")
      .inc(stats.frames_sent - last_transport_.frames_sent);
  registry_
      .counter("canb_transport_bytes_sent_total", with_group({}),
               "payload bytes posted to the fabric")
      .inc(stats.bytes_sent - last_transport_.bytes_sent);
  registry_
      .counter("canb_transport_frames_received_total", with_group({}),
               "payload frames delivered into this endpoint's mailboxes")
      .inc(stats.frames_received - last_transport_.frames_received);
  registry_
      .counter("canb_transport_bytes_received_total", with_group({}), "payload bytes delivered")
      .inc(stats.bytes_received - last_transport_.bytes_received);
  registry_
      .counter("canb_transport_retransmits_total", with_group({}),
               "reliable-channel data frames re-sent after a timeout")
      .inc(stats.retransmits - last_transport_.retransmits);
  registry_
      .counter("canb_transport_acks_total", with_group({}), "reliable-channel acks emitted")
      .inc(stats.acks_sent - last_transport_.acks_sent);
  registry_
      .counter("canb_transport_duplicates_total", with_group({}),
               "duplicate/stale frames discarded by the reliable channel")
      .inc(stats.duplicates_dropped - last_transport_.duplicates_dropped);
  last_transport_ = stats;
}

void Telemetry::publish_execution(std::string_view mode, int local_ranks) {
  if (!enabled()) return;
  registry_
      .gauge("canb_transport_exec", with_group({{"mode", std::string(mode)}}),
             "execution mode in effect (value 1; mode label: lockstep | owner_computes)")
      .set(1.0);
  registry_
      .gauge("canb_local_ranks", with_group({}),
             "virtual ranks whose physics this process executes (p on a single "
             "endpoint, the group's ownership share under owner-computes)")
      .set(static_cast<double>(local_ranks));
}

void Telemetry::publish_host_phases() {
  if (!enabled()) return;
  for (std::size_t i = 0; i < vmpi::kPhaseCount; ++i) {
    if (host_phase_seconds_[i] == 0.0) continue;  // phase never moved host data
    const auto phase = static_cast<vmpi::Phase>(i);
    registry_
        .gauge("canb_host_phase_seconds", with_group({{"phase", vmpi::phase_name(phase)}}),
               "HOST wall seconds moving buffers for this phase (data plane; "
               "not virtual time)")
        .set(host_phase_seconds_[i]);
  }
}

std::uint64_t Telemetry::sweep_pairs_examined() const noexcept {
  double total = 0.0;
  for (double v : sweep_examined_) total += v;
  return static_cast<std::uint64_t>(total);
}

std::uint64_t Telemetry::sweep_pairs_computed() const noexcept {
  double total = 0.0;
  for (double v : sweep_computed_) total += v;
  return static_cast<std::uint64_t>(total);
}

double Telemetry::host_seconds() const noexcept {
  double total = 0.0;
  for (double v : host_phase_seconds_) total += v;
  return total;
}

void Telemetry::finalize(const vmpi::VirtualComm& vc) {
  if (!enabled()) return;
  publish_host_phases();
  double sweep_pairs = 0.0;
  double sweep_computed = 0.0;
  double sweep_calls = 0.0;
  double sweep_half = 0.0;
  for (std::size_t r = 0; r < sweep_examined_.size(); ++r) {
    sweep_pairs += sweep_examined_[r];
    sweep_computed += sweep_computed_[r];
    sweep_calls += sweep_calls_[r];
    sweep_half += sweep_half_calls_[r];
  }
  // Sweep counters are process-local truths: they document the pairs THIS
  // process actually swept. Under owner-computes each group sweeps only its
  // owned ranks, so the group-labeled series are partial sums whose total
  // across groups equals one lockstep process's count (pinned by
  // tests/test_owner_computes.cpp); under lockstep every group honestly
  // reports the full count it redundantly executed.
  if (sweep_calls > 0.0) {
    registry_
        .counter("canb_sweep_pairs_total", with_group({}),
                 "directed interaction pairs swept by THIS process (ledger unit; "
                 "a partial per-group sum under owner-computes)")
        .inc(static_cast<std::uint64_t>(sweep_pairs));
    registry_
        .counter("canb_sweep_pairs_computed_total", with_group({}),
                 "pair evaluations actually executed on the host (an N3L half-sweep "
                 "computes about half of canb_sweep_pairs_total)")
        .inc(static_cast<std::uint64_t>(sweep_computed));
    registry_
        .gauge("canb_sweep_half_ratio", with_group({}),
               "fraction of sweep calls that took the N3L half-sweep path")
        .set(sweep_half / sweep_calls);
  }
  if (!sweep_backend_.empty()) {
    registry_
        .gauge("canb_sweep_backend", with_group({{"backend", sweep_backend_}}),
               "SIMD backend the sweep lane pipelines dispatched to (value 1)")
        .set(1.0);
  }
  for (int r = 0; r < vc.size(); ++r) {
    const Labels labels{{"rank", std::to_string(r)}};
    registry_
        .gauge("canb_rank_compute_seconds", labels, "virtual compute seconds accumulated")
        .set(rank_compute_[static_cast<std::size_t>(r)]);
    registry_.gauge("canb_rank_wait_seconds", labels, "virtual seconds spent waiting on senders")
        .set(rank_wait_[static_cast<std::size_t>(r)]);
    registry_.gauge("canb_rank_clock_seconds", labels, "final virtual clock")
        .set(vc.clock(r));
  }
}

void Telemetry::on_p2p(vmpi::Phase phase, int /*src*/, int dst, std::uint64_t bytes,
                       double wait_seconds, double /*cost_seconds*/, std::uint64_t retries,
                       std::uint64_t timeouts) {
  auto& s = series_for(phase);
  s.messages->inc();
  s.bytes_total->inc(bytes);
  if (retries > 0) s.retries->inc(retries);
  if (timeouts > 0) s.timeouts->inc(timeouts);
  s.message_bytes->observe(static_cast<double>(bytes));
  if (wait_seconds > 0.0) {
    s.wait_seconds->observe(wait_seconds);
    rank_wait_[static_cast<std::size_t>(dst)] += wait_seconds;
  }
}

void Telemetry::on_collective(vmpi::Phase phase, bool is_reduce, int /*members*/,
                              std::uint64_t bytes, double /*seconds*/) {
  auto& s = series_for(phase);
  (is_reduce ? s.reduces : s.bcasts)->inc();
  s.bytes_total->inc(bytes);
}

void Telemetry::on_sweep(int rank, std::uint64_t examined, std::uint64_t computed,
                         bool half_sweep) noexcept {
  // Pool threads hit distinct ranks only; the registry is not touched here.
  const auto r = static_cast<std::size_t>(rank);
  if (r >= sweep_examined_.size()) return;  // not attached
  sweep_examined_[r] += static_cast<double>(examined);
  sweep_computed_[r] += static_cast<double>(computed);
  sweep_calls_[r] += 1.0;
  if (half_sweep) sweep_half_calls_[r] += 1.0;
}

void Telemetry::on_compute(int rank, double seconds) {
  // Pool threads hit distinct ranks only; the registry is not touched here.
  rank_compute_[static_cast<std::size_t>(rank)] += seconds;
}

void Telemetry::on_host_phase(vmpi::Phase phase, double seconds) {
  // Serial orchestration thread only (primitives report after joins).
  host_phase_seconds_[static_cast<std::size_t>(phase)] += seconds;
}

}  // namespace canb::obs
