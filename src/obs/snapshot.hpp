// Wire-serializable MetricsRegistry snapshots and the mesh aggregator.
//
// Under the socket transport every OS process (rank group) runs the same
// SPMD schedule, so the *virtual-cost* families (canb_messages_total,
// canb_bytes_total, per-rank clock gauges, ...) are identical replicas in
// every process. The transport, scheduler, and host-phase families are
// genuinely per-process, though: each group has its own fabric counters
// and its own host pool. Aggregation therefore ships only the
// PROCESS-LOCAL families (process_local_metric) from each non-zero group
// to group 0, where they merge into group 0's registry: counters and
// histograms sum (bucket-wise; edges must match), gauges gain a {"group"}
// label when they don't already carry one. Series published by a Telemetry
// with set_group() already carry disjoint {"group"} labels, so the merged
// view keeps one series per group AND the Prometheus sum over the group
// label equals the whole-mesh total.
//
// Snapshot frames ride the regular transport on a reserved tag range
// (vmpi::kReservedTagBase) that VirtualComm's incrementing tag allocator
// can never collide with. They move strictly *after* every virtual cost of
// the step is charged (charge-before-move), so pushing telemetry is
// bitwise-inert to clocks, ledgers, traces, and trajectories.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "support/wire.hpp"
#include "vmpi/transport.hpp"

namespace canb::obs {

/// True for families whose values are per-OS-process under the SPMD socket
/// arm (fabric counters, host scheduler, host data-plane seconds). False
/// for the virtual-cost replicas, which every group computes identically
/// and only group 0 may export.
bool process_local_metric(std::string_view family_name) noexcept;

/// The reserved transport tag for group `group`'s snapshot flow.
inline constexpr std::uint64_t snapshot_tag(int group) noexcept {
  return vmpi::kReservedTagBase + static_cast<std::uint64_t>(group);
}

/// A decoded snapshot: which group pushed it, at which step boundary, and
/// the (filtered) registry contents it carried.
struct RegistrySnapshot {
  int group = 0;
  std::uint64_t step = 0;
  MetricsRegistry metrics;
};

/// Serializes `reg` (filtered to process-local families unless
/// `process_local_only` is false) into a framed snapshot.
void snapshot_to_bytes(const MetricsRegistry& reg, int group, std::uint64_t step,
                       wire::Bytes& out, bool process_local_only = true);

/// Inverse of snapshot_to_bytes; the frame must be consumed exactly.
RegistrySnapshot snapshot_from_bytes(std::span<const std::byte> in);

/// Merges `src` into `dst`: counters inc by the source value, histograms
/// add bucket-wise (identical edges required), gauges are set — gaining a
/// {"group": group_label} label when `group_label` is non-empty and the
/// series does not already carry a "group" key. merge(serialize(A),
/// serialize(B)) equals the in-process merge (property-tested).
void merge_registry(MetricsRegistry& dst, const MetricsRegistry& src,
                    const std::string& group_label = {});

/// Step-boundary snapshot exchange over a multi-group transport.
///
/// The protocol is SPMD-lockstep like everything else on the socket arm:
/// every group calls exchange() at the same boundaries (each step, plus
/// once at finalize). Non-zero groups serialize their process-local
/// families and push one frame to group 0; group 0 blocking-receives
/// exactly groups-1 frames and keeps the *latest* snapshot per group
/// (snapshots carry cumulative registry state, so repeated pushes replace,
/// never sum). merged() then folds the remote snapshots over a base
/// registry on demand.
class MeshAggregator {
 public:
  /// `transport` must be multi-endpoint capable (groups() >= 1); the
  /// aggregator derives its own group id and every group's push rank
  /// (the lowest rank each endpoint owns) from the transport geometry.
  explicit MeshAggregator(std::shared_ptr<vmpi::Transport> transport);

  int group() const noexcept { return group_; }
  int groups() const noexcept { return groups_; }
  bool primary() const noexcept { return group_ == 0; }

  /// One symmetric exchange; see the class comment for the call contract.
  /// A deadlock here means some group skipped a boundary.
  void exchange(const MetricsRegistry& local, std::uint64_t step);

  /// Base registry plus the latest snapshot from every remote group.
  MetricsRegistry merged(const MetricsRegistry& base) const;

  /// Exchanges completed (both sides count symmetrically).
  std::uint64_t exchanges() const noexcept { return exchanges_; }
  /// Latest decoded snapshots by remote group id (primary side).
  const std::map<int, RegistrySnapshot>& latest() const noexcept { return latest_; }

 private:
  std::shared_ptr<vmpi::Transport> transport_;
  int group_ = 0;
  int groups_ = 1;
  std::vector<int> push_rank_;  ///< lowest rank owned by each group
  std::map<int, RegistrySnapshot> latest_;
  wire::Bytes buf_;
  std::uint64_t exchanges_ = 0;
};

}  // namespace canb::obs
