// MetricsServer: a minimal HTTP/1.1 scrape endpoint on a background
// thread — plain POSIX sockets, loopback only, no dependencies.
//
// The server never touches live telemetry state. The orchestration thread
// publishes an immutable LiveContent bundle at step boundaries
// (pre-rendered Prometheus text and /healthz JSON, plus shared_ptr copies
// of the span timeline and trace for the heavier endpoints); GET handlers
// read the latest bundle under a mutex and render from the copy. The
// simulation therefore pays one render + a pointer swap per publish, and a
// scrape can never observe a half-updated registry — the plane stays
// bitwise-inert by construction.
//
// Endpoints:
//   GET /          — plain-text index of the routes below
//   GET /metrics   — Prometheus text exposition (text/plain; version=0.0.4)
//   GET /healthz   — JSON: step counter, phase, run state
//   GET /spans.csv — per-rank clock series (404 until spans are published)
//   GET /trace.json— Chrome trace JSON (404 until a trace is published)
// Anything else 404s; non-GET methods 405. Connection: close on every
// response — scrapes are infrequent, keep-alive buys nothing here.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/span.hpp"
#include "vmpi/trace.hpp"

namespace canb::obs {

/// One immutable publication: what every endpoint serves until the next
/// publish(). Spans/trace may be null (endpoints 404); a publish with null
/// spans/trace keeps the previously published ones, so cheap every-step
/// publishes don't have to re-copy the heavy structures.
struct LiveContent {
  std::string prometheus;
  std::string healthz;
  std::shared_ptr<const SpanTimeline> spans;
  std::shared_ptr<const vmpi::TraceRecorder> trace;
};

class MetricsServer {
 public:
  /// Binds 127.0.0.1:`port` and starts the serving thread. Port 0 picks an
  /// ephemeral port (see port()). Throws on bind failure (port in use).
  explicit MetricsServer(int port);
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  int port() const noexcept { return port_; }
  std::string url() const { return "http://127.0.0.1:" + std::to_string(port_); }

  /// Swaps in new content; null spans/trace retain the previous ones.
  void publish(LiveContent content);

  /// Requests answered so far (any route, including 404s).
  std::uint64_t requests_served() const noexcept { return requests_.load(); }

  /// Stops the serving thread and closes the listener; idempotent. The
  /// destructor calls it, so explicit teardown before process exit needs
  /// nothing beyond destroying the server.
  void stop();

 private:
  void loop();
  void handle(int fd);

  int listen_fd_ = -1;
  int wake_fd_[2] = {-1, -1};  ///< self-pipe: unblocks poll() for stop()
  int port_ = 0;
  std::mutex mu_;
  LiveContent content_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace canb::obs
