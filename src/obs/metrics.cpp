#include "obs/metrics.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace canb::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  CANB_REQUIRE(!edges_.empty(), "histogram needs at least one bucket edge");
  CANB_REQUIRE(std::is_sorted(edges_.begin(), edges_.end()),
               "histogram bucket edges must be ascending");
  counts_.assign(edges_.size() + 1, 0);
}

Histogram Histogram::from_parts(std::vector<double> edges, std::vector<std::uint64_t> counts,
                                std::uint64_t count, double sum) {
  Histogram h(std::move(edges));
  CANB_REQUIRE(counts.size() == h.edges_.size() + 1,
               "histogram parts need edges.size() + 1 bucket counts");
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  CANB_REQUIRE(total == count, "histogram parts: count does not match the bucket sum");
  h.counts_ = std::move(counts);
  h.count_ = count;
  h.sum_ = sum;
  return h;
}

void Histogram::merge_from(const Histogram& other) {
  CANB_REQUIRE(edges_ == other.edges_,
               "histogram merge requires identical bucket edges");
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::observe(double v) noexcept {
  // First bucket whose inclusive upper bound holds v; +Inf bucket otherwise.
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  ++counts_[static_cast<std::size_t>(it - edges_.begin())];
  ++count_;
  sum_ += v;
}

std::string MetricsRegistry::label_string(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  out += "}";
  return out;
}

Series& MetricsRegistry::find_or_create(const std::string& name, MetricType type,
                                        const Labels& labels, const std::string& help) {
  auto& family = families_[name];
  if (family.name.empty()) {
    family.name = name;
    family.help = help;
    family.type = type;
  } else {
    CANB_REQUIRE(family.type == type, "metric family re-registered with a different type: " + name);
  }
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  const auto key = label_string(sorted);
  auto it = family.series.find(key);
  if (it == family.series.end()) {
    it = family.series.emplace(key, Series{std::move(sorted), Counter{}}).first;
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels,
                                  const std::string& help) {
  auto& s = find_or_create(name, MetricType::Counter, labels, help);
  return std::get<Counter>(s.metric);
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  auto& s = find_or_create(name, MetricType::Gauge, labels, help);
  if (!std::holds_alternative<Gauge>(s.metric)) s.metric = Gauge{};
  return std::get<Gauge>(s.metric);
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> edges,
                                      const Labels& labels, const std::string& help) {
  auto& s = find_or_create(name, MetricType::Histogram, labels, help);
  if (!std::holds_alternative<Histogram>(s.metric)) s.metric = Histogram(std::move(edges));
  return std::get<Histogram>(s.metric);
}

}  // namespace canb::obs
