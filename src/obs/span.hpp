// Span-based structured tracing: per-rank clock samples at phase boundaries.
//
// A SpanSample is one boundary of the engine schedule — "the broadcast of
// step 3 just finished" — carrying every rank's virtual clock plus the
// number of trace events recorded so far. Two consecutive samples delimit
// one *span* per rank: the colored segment Chrome-trace export draws, and
// the unit the critical-path analyzer walks. Engines publish boundaries
// automatically through obs::Telemetry (replacing the old manual
// sim::ClockSampler), so any run with full observability can be exported
// and attributed without bench-side plumbing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "vmpi/cost_ledger.hpp"

namespace canb::obs {

struct SpanSample {
  std::string label;                       ///< schedule point, e.g. "shift"
  vmpi::Phase phase = vmpi::Phase::Other;  ///< phase the span *ending here* ran in
  int step = -1;                           ///< engine timestep index (-1: baseline)
  std::size_t p2p_end = 0;   ///< trace p2p events recorded up to this boundary
  std::size_t coll_end = 0;  ///< trace collective events recorded up to this boundary
  std::vector<double> clocks;  ///< per-rank virtual clock at the boundary (s)
};

class SpanTimeline {
 public:
  void add(SpanSample s) { samples_.push_back(std::move(s)); }
  void clear() { samples_.clear(); }

  const std::vector<SpanSample>& samples() const noexcept { return samples_; }
  bool empty() const noexcept { return samples_.empty(); }
  std::size_t size() const noexcept { return samples_.size(); }

  /// Number of ranks in the sampled run (0 when empty).
  int ranks() const noexcept {
    return samples_.empty() ? 0 : static_cast<int>(samples_.front().clocks.size());
  }

 private:
  std::vector<SpanSample> samples_;
};

}  // namespace canb::obs
