// RunManifest: the provenance block embedded in every exported artifact.
//
// A metrics file or trace with no record of which config produced it is
// unreproducible; the manifest carries the tool name, machine preset, and
// the flat key=value view of the run configuration (p, c, n, engine,
// fault seed, ...). Exporters serialize it verbatim, so two artifacts
// from the same run always agree on provenance.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace canb::obs {

/// Compiler identity baked at build time ("gcc 13.2.0", "clang ...").
const char* build_compiler() noexcept;
/// `git describe --always --dirty` of the build tree, injected by CMake
/// via CANB_GIT_DESCRIBE; "unknown" outside a git checkout.
const char* build_git_describe() noexcept;

struct RunManifest {
  std::string tool = "canb";
  std::string machine;  ///< machine preset / model name
  /// Build provenance (the schema-v3 "build" block): toolchain, source
  /// revision, and the widest SIMD backend the host supports. `simd` is
  /// filled by the embedding layer (obs cannot link against particles).
  std::string compiler = build_compiler();
  std::string git = build_git_describe();
  std::string simd = "unknown";
  /// Ordered config entries; insertion order is preserved in exports.
  std::vector<std::pair<std::string, std::string>> config;

  RunManifest& set(std::string key, std::string value) {
    for (auto& kv : config) {
      if (kv.first == key) {
        kv.second = std::move(value);
        return *this;
      }
    }
    config.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  RunManifest& set(std::string key, double v) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    return set(std::move(key), os.str());
  }
  RunManifest& set(std::string key, std::uint64_t v) {
    return set(std::move(key), std::to_string(v));
  }
  RunManifest& set(std::string key, int v) { return set(std::move(key), std::to_string(v)); }

  const std::string* find(const std::string& key) const {
    for (const auto& kv : config) {
      if (kv.first == key) return &kv.second;
    }
    return nullptr;
  }
};

}  // namespace canb::obs
