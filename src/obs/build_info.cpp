// Build provenance strings for RunManifest / canb_build_info. Kept in one
// translation unit so the CANB_GIT_DESCRIBE compile definition (set by
// src/obs/CMakeLists.txt at configure time) dirties exactly this object.
#include "obs/manifest.hpp"

namespace canb::obs {

const char* build_compiler() noexcept {
  // Clang defines __GNUC__ too, so test it first.
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

const char* build_git_describe() noexcept {
#if defined(CANB_GIT_DESCRIBE)
  return CANB_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

}  // namespace canb::obs
