#include "obs/snapshot.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"

namespace canb::obs {
namespace {

// "CSNP" — guards against a data-flow frame straying onto the reserved tag.
constexpr std::uint32_t kSnapshotMagic = 0x43534e50u;
constexpr std::uint32_t kSnapshotVersion = 1;

void put_string(wire::Writer& w, const std::string& s) {
  w.scalar<std::uint64_t>(s.size());
  w.raw(s.data(), s.size());
}

std::string get_string(wire::Reader& r) {
  const auto n = static_cast<std::size_t>(r.scalar<std::uint64_t>());
  std::string s(n, '\0');
  r.raw(s.data(), n);
  return s;
}

}  // namespace

bool process_local_metric(std::string_view family_name) noexcept {
  // Fabric, host scheduler, host data-plane, and host sweep families
  // diverge across OS processes (under owner-computes each group sweeps
  // only its owned ranks); everything else is an SPMD replica of the
  // virtual cost plane that only group 0 exports.
  static constexpr std::string_view kPrefixes[] = {
      "canb_transport_", "canb_sched_",        "canb_steal_total",
      "canb_worker_",    "canb_tasks_per_worker", "canb_host_phase_seconds",
      "canb_sweep_",     "canb_local_ranks",
  };
  for (const auto p : kPrefixes) {
    if (family_name.substr(0, p.size()) == p) return true;
  }
  return false;
}

void snapshot_to_bytes(const MetricsRegistry& reg, int group, std::uint64_t step,
                       wire::Bytes& out, bool process_local_only) {
  wire::Writer w(out);
  w.scalar(kSnapshotMagic);
  w.scalar(kSnapshotVersion);
  w.scalar<std::int32_t>(group);
  w.scalar(step);

  std::uint64_t n_families = 0;
  for (const auto& [name, family] : reg.families()) {
    if (!process_local_only || process_local_metric(name)) ++n_families;
  }
  w.scalar(n_families);

  for (const auto& [name, family] : reg.families()) {
    if (process_local_only && !process_local_metric(name)) continue;
    put_string(w, family.name);
    put_string(w, family.help);
    w.scalar<std::uint8_t>(static_cast<std::uint8_t>(family.type));
    w.scalar<std::uint64_t>(family.series.size());
    for (const auto& [key, series] : family.series) {
      w.scalar<std::uint64_t>(series.labels.size());
      for (const auto& [k, v] : series.labels) {
        put_string(w, k);
        put_string(w, v);
      }
      switch (family.type) {
        case MetricType::Counter:
          w.scalar(std::get<Counter>(series.metric).value());
          break;
        case MetricType::Gauge:
          w.scalar(std::get<Gauge>(series.metric).value());
          break;
        case MetricType::Histogram: {
          const auto& h = std::get<Histogram>(series.metric);
          w.lane(h.edges());
          w.lane(h.counts());
          w.scalar(h.count());
          w.scalar(h.sum());
          break;
        }
      }
    }
  }
}

RegistrySnapshot snapshot_from_bytes(std::span<const std::byte> in) {
  wire::Reader r(in);
  CANB_REQUIRE(r.scalar<std::uint32_t>() == kSnapshotMagic,
               "telemetry snapshot frame: bad magic");
  CANB_REQUIRE(r.scalar<std::uint32_t>() == kSnapshotVersion,
               "telemetry snapshot frame: unsupported version");

  RegistrySnapshot snap;
  snap.group = r.scalar<std::int32_t>();
  snap.step = r.scalar<std::uint64_t>();

  const auto n_families = r.scalar<std::uint64_t>();
  for (std::uint64_t f = 0; f < n_families; ++f) {
    const std::string name = get_string(r);
    const std::string help = get_string(r);
    const auto type = static_cast<MetricType>(r.scalar<std::uint8_t>());
    const auto n_series = r.scalar<std::uint64_t>();
    for (std::uint64_t s = 0; s < n_series; ++s) {
      const auto n_labels = r.scalar<std::uint64_t>();
      Labels labels;
      labels.reserve(static_cast<std::size_t>(n_labels));
      for (std::uint64_t l = 0; l < n_labels; ++l) {
        std::string k = get_string(r);
        std::string v = get_string(r);
        labels.emplace_back(std::move(k), std::move(v));
      }
      switch (type) {
        case MetricType::Counter:
          snap.metrics.counter(name, labels, help).inc(r.scalar<std::uint64_t>());
          break;
        case MetricType::Gauge:
          snap.metrics.gauge(name, labels, help).set(r.scalar<double>());
          break;
        case MetricType::Histogram: {
          std::vector<double> edges;
          std::vector<std::uint64_t> counts;
          r.lane(edges);
          r.lane(counts);
          const auto count = r.scalar<std::uint64_t>();
          const auto sum = r.scalar<double>();
          Histogram& dst = snap.metrics.histogram(name, edges, labels, help);
          dst.merge_from(Histogram::from_parts(std::move(edges), std::move(counts), count, sum));
          break;
        }
        default:
          CANB_REQUIRE(false, "telemetry snapshot frame: unknown metric type");
      }
    }
  }
  CANB_REQUIRE(r.done(), "telemetry snapshot frame: trailing bytes");
  return snap;
}

void merge_registry(MetricsRegistry& dst, const MetricsRegistry& src,
                    const std::string& group_label) {
  for (const auto& [name, family] : src.families()) {
    for (const auto& [key, series] : family.series) {
      switch (family.type) {
        case MetricType::Counter:
          dst.counter(name, series.labels, family.help)
              .inc(std::get<Counter>(series.metric).value());
          break;
        case MetricType::Gauge: {
          Labels labels = series.labels;
          const bool has_group =
              std::any_of(labels.begin(), labels.end(),
                          [](const auto& kv) { return kv.first == "group"; });
          if (!group_label.empty() && !has_group) labels.emplace_back("group", group_label);
          dst.gauge(name, labels, family.help).set(std::get<Gauge>(series.metric).value());
          break;
        }
        case MetricType::Histogram: {
          const auto& h = std::get<Histogram>(series.metric);
          dst.histogram(name, h.edges(), series.labels, family.help).merge_from(h);
          break;
        }
      }
    }
  }
}

MeshAggregator::MeshAggregator(std::shared_ptr<vmpi::Transport> transport)
    : transport_(std::move(transport)) {
  CANB_REQUIRE(transport_ != nullptr, "MeshAggregator needs a transport");
  group_ = transport_->group();
  groups_ = transport_->groups();
  CANB_REQUIRE(groups_ >= 1, "MeshAggregator: transport reports no groups");
  push_rank_.assign(static_cast<std::size_t>(groups_), -1);
  for (int rank = 0; rank < transport_->ranks(); ++rank) {
    const int g = transport_->owner_group(rank);
    CANB_REQUIRE(g >= 0 && g < groups_, "MeshAggregator: rank owned by out-of-range group");
    if (push_rank_[static_cast<std::size_t>(g)] < 0) push_rank_[static_cast<std::size_t>(g)] = rank;
  }
  for (int g = 0; g < groups_; ++g) {
    CANB_REQUIRE(push_rank_[static_cast<std::size_t>(g)] >= 0,
                 "MeshAggregator: group owns no ranks");
  }
}

void MeshAggregator::exchange(const MetricsRegistry& local, std::uint64_t step) {
  if (groups_ <= 1) return;
  if (group_ != 0) {
    snapshot_to_bytes(local, group_, step, buf_);
    transport_->send(push_rank_[static_cast<std::size_t>(group_)], push_rank_[0],
                     snapshot_tag(group_), buf_);
  } else {
    for (int g = 1; g < groups_; ++g) {
      transport_->recv(push_rank_[static_cast<std::size_t>(g)], push_rank_[0],
                       snapshot_tag(g), buf_);
      latest_[g] = snapshot_from_bytes(buf_);
    }
  }
  ++exchanges_;
}

MetricsRegistry MeshAggregator::merged(const MetricsRegistry& base) const {
  MetricsRegistry out = base;
  for (const auto& [g, snap] : latest_) {
    merge_registry(out, snap.metrics, std::to_string(g));
  }
  return out;
}

}  // namespace canb::obs
