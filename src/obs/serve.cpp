#include "obs/serve.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <string_view>
#include <utility>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/export.hpp"
#include "support/assert.hpp"

namespace canb::obs {
namespace {

constexpr const char* kIndex =
    "canb live observability plane\n"
    "  /metrics    Prometheus text exposition\n"
    "  /healthz    step counter + phase (JSON)\n"
    "  /spans.csv  per-rank clock series\n"
    "  /trace.json Chrome trace JSON\n";

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const auto n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing to salvage
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

MetricsServer::MetricsServer(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CANB_REQUIRE(listen_fd_ >= 0, "metrics server: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, never public
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listen_fd_);
    CANB_REQUIRE(false, "metrics server: cannot bind 127.0.0.1:" + std::to_string(port) +
                            " (port in use?)");
  }
  CANB_REQUIRE(::listen(listen_fd_, 16) == 0, "metrics server: listen() failed");

  socklen_t len = sizeof addr;
  CANB_REQUIRE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
               "metrics server: getsockname() failed");
  port_ = static_cast<int>(ntohs(addr.sin_port));

  CANB_REQUIRE(::pipe(wake_fd_) == 0, "metrics server: pipe() failed");
  content_.healthz = "{\"state\":\"starting\"}";
  thread_ = std::thread([this] { loop(); });
}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  if (wake_fd_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] auto n = ::write(wake_fd_[1], &b, 1);
  }
  if (thread_.joinable()) thread_.join();
  for (int fd : {listen_fd_, wake_fd_[0], wake_fd_[1]}) {
    if (fd >= 0) ::close(fd);
  }
  listen_fd_ = wake_fd_[0] = wake_fd_[1] = -1;
}

void MetricsServer::publish(LiveContent content) {
  std::lock_guard<std::mutex> lock(mu_);
  if (content.spans == nullptr) content.spans = content_.spans;
  if (content.trace == nullptr) content.trace = content_.trace;
  content_ = std::move(content);
}

void MetricsServer::loop() {
  while (!stopping_.load()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fd_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle(fd);
    ::close(fd);
  }
}

void MetricsServer::handle(int fd) {
  // Scrapes are one short request line + headers; one read is enough for
  // every real client, and a partial read just yields a 404/405.
  char buf[4096];
  const auto n = ::recv(fd, buf, sizeof buf - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  requests_.fetch_add(1);

  const std::string_view request(buf, static_cast<std::size_t>(n));
  const auto line_end = request.find("\r\n");
  const auto line = request.substr(0, line_end);
  if (line.substr(0, 4) != "GET ") {
    send_all(fd, http_response("405 Method Not Allowed", "text/plain", "GET only\n"));
    return;
  }
  const auto path_end = line.find(' ', 4);
  const auto path = line.substr(4, path_end == std::string_view::npos ? line.size() - 4
                                                                      : path_end - 4);

  LiveContent content;
  {
    std::lock_guard<std::mutex> lock(mu_);
    content = content_;
  }

  if (path == "/metrics") {
    send_all(fd, http_response("200 OK", "text/plain; version=0.0.4; charset=utf-8",
                               content.prometheus));
  } else if (path == "/healthz") {
    send_all(fd, http_response("200 OK", "application/json", content.healthz));
  } else if (path == "/spans.csv") {
    if (content.spans == nullptr || content.spans->empty()) {
      send_all(fd, http_response("404 Not Found", "text/plain",
                                 "no spans published (needs --obs-level=full)\n"));
      return;
    }
    std::ostringstream os;
    write_span_csv(os, *content.spans);
    send_all(fd, http_response("200 OK", "text/csv", os.str()));
  } else if (path == "/trace.json") {
    if (content.spans == nullptr || content.spans->empty()) {
      send_all(fd, http_response("404 Not Found", "text/plain",
                                 "no trace published (needs --obs-level=full)\n"));
      return;
    }
    std::ostringstream os;
    write_chrome_trace(os, *content.spans, content.trace.get());
    send_all(fd, http_response("200 OK", "application/json", os.str()));
  } else if (path == "/" || path.empty()) {
    send_all(fd, http_response("200 OK", "text/plain", kIndex));
  } else {
    send_all(fd, http_response("404 Not Found", "text/plain", "unknown route\n"));
  }
}

}  // namespace canb::obs
