#include "particles/init.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace canb::particles {

namespace {
void finalize(Particle& p, int id) {
  p.id = id;
  p.fx = p.fy = 0.0f;
  p.aux0 = p.aux1 = p.aux2 = p.aux3 = 0.0f;
  p.mass = 1.0f;
  p.charge = 1.0f;
}
}  // namespace

Block init_uniform(int n, const Box& box, std::uint64_t seed, double speed_scale) {
  CANB_REQUIRE(n >= 0, "particle count must be non-negative");
  box.validate();
  Xoshiro256 rng(seed);
  Block out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& p = out[static_cast<std::size_t>(i)];
    p.px = static_cast<float>(rng.uniform(0.0, box.lx));
    p.py = box.dims == 2 ? static_cast<float>(rng.uniform(0.0, box.ly)) : 0.0f;
    p.vx = static_cast<float>(rng.normal() * speed_scale);
    p.vy = box.dims == 2 ? static_cast<float>(rng.normal() * speed_scale) : 0.0f;
    finalize(p, i);
  }
  return out;
}

Block init_lattice(int n, const Box& box, double jitter, std::uint64_t seed) {
  CANB_REQUIRE(n >= 0, "particle count must be non-negative");
  box.validate();
  Xoshiro256 rng(seed);
  Block out(static_cast<std::size_t>(n));
  if (box.dims == 1) {
    const double dx = box.lx / std::max(1, n);
    for (int i = 0; i < n; ++i) {
      auto& p = out[static_cast<std::size_t>(i)];
      p.px = static_cast<float>((static_cast<double>(i) + 0.5) * dx +
                                jitter * dx * (rng.uniform() - 0.5));
      p.py = 0.0f;
      finalize(p, i);
    }
    return out;
  }
  const int cols = std::max(1, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))));
  const int rows = (n + cols - 1) / cols;
  const double dx = box.lx / cols;
  const double dy = box.ly / rows;
  for (int i = 0; i < n; ++i) {
    auto& p = out[static_cast<std::size_t>(i)];
    const int cx = i % cols;
    const int cy = i / cols;
    p.px = static_cast<float>((cx + 0.5) * dx + jitter * dx * (rng.uniform() - 0.5));
    p.py = static_cast<float>((cy + 0.5) * dy + jitter * dy * (rng.uniform() - 0.5));
    finalize(p, i);
  }
  return out;
}

Block init_clusters(int n, const Box& box, int clusters, double width_fraction,
                    std::uint64_t seed, double speed_scale) {
  CANB_REQUIRE(n >= 0, "particle count must be non-negative");
  CANB_REQUIRE(clusters >= 1, "need at least one cluster");
  box.validate();
  Xoshiro256 rng(seed);
  // Cluster centers first so their placement is independent of n.
  std::vector<std::pair<double, double>> centers;
  centers.reserve(static_cast<std::size_t>(clusters));
  for (int c = 0; c < clusters; ++c)
    centers.emplace_back(rng.uniform(0.2 * box.lx, 0.8 * box.lx),
                         box.dims == 2 ? rng.uniform(0.2 * box.ly, 0.8 * box.ly) : 0.0);
  const double wx = width_fraction * box.lx;
  const double wy = width_fraction * (box.dims == 2 ? box.ly : 0.0);
  Block out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& p = out[static_cast<std::size_t>(i)];
    const auto& [cx, cy] = centers[static_cast<std::size_t>(i % clusters)];
    double x = cx + rng.normal() * wx;
    double y = box.dims == 2 ? cy + rng.normal() * wy : 0.0;
    x = std::clamp(x, 0.0, box.lx);
    if (box.dims == 2) y = std::clamp(y, 0.0, box.ly);
    p.px = static_cast<float>(x);
    p.py = static_cast<float>(y);
    p.vx = static_cast<float>(rng.normal() * speed_scale);
    p.vy = box.dims == 2 ? static_cast<float>(rng.normal() * speed_scale) : 0.0f;
    finalize(p, i);
  }
  return out;
}

Block init_gradient(int n, const Box& box, double slope, std::uint64_t seed) {
  CANB_REQUIRE(n >= 0, "particle count must be non-negative");
  CANB_REQUIRE(slope >= 0.0 && slope < 2.0, "gradient slope must be in [0, 2)");
  box.validate();
  Xoshiro256 rng(seed);
  Block out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& p = out[static_cast<std::size_t>(i)];
    // Inverse-CDF sampling of f(u) = 1 + slope*(u - 1/2) on [0,1].
    const double r = rng.uniform();
    double u = 0.0;
    if (slope < 1e-12) {
      u = r;
    } else {
      const double a = slope / 2.0;
      const double b = 1.0 - a;
      // Solve a u^2 + b u - r = 0 for u in [0,1].
      u = (-b + std::sqrt(b * b + 4.0 * a * r)) / (2.0 * a);
    }
    p.px = static_cast<float>(u * box.lx);
    p.py = box.dims == 2 ? static_cast<float>(rng.uniform(0.0, box.ly)) : 0.0f;
    finalize(p, i);
  }
  return out;
}

Block init_two_stream(int n, const Box& box, double drift, double thermal, std::uint64_t seed) {
  CANB_REQUIRE(n >= 0, "particle count must be non-negative");
  box.validate();
  Xoshiro256 rng(seed);
  Block out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& p = out[static_cast<std::size_t>(i)];
    p.px = static_cast<float>(rng.uniform(0.0, box.lx));
    const bool top = box.dims == 2 ? (i % 2 == 0) : (i % 2 == 0);
    p.py = box.dims == 2
               ? static_cast<float>(rng.uniform(top ? 0.5 * box.ly : 0.0,
                                                top ? box.ly : 0.5 * box.ly))
               : 0.0f;
    p.vx = static_cast<float>((top ? drift : -drift) + rng.normal() * thermal);
    p.vy = box.dims == 2 ? static_cast<float>(rng.normal() * thermal) : 0.0f;
    finalize(p, i);
  }
  return out;
}

Block init_plummer(int n, const Box& box, double core_radius_fraction, std::uint64_t seed,
                   double speed_scale) {
  CANB_REQUIRE(n >= 0, "particle count must be non-negative");
  CANB_REQUIRE(core_radius_fraction > 0.0 && core_radius_fraction <= 1.0,
               "plummer core radius fraction must be in (0, 1]");
  box.validate();
  Xoshiro256 rng(seed);
  const double cx = 0.5 * box.lx;
  const double cy = box.dims == 2 ? 0.5 * box.ly : 0.0;
  const double a = core_radius_fraction * (box.dims == 2 ? std::min(box.lx, box.ly) : box.lx);
  Block out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& p = out[static_cast<std::size_t>(i)];
    double x = 0.0;
    double y = 0.0;
    // Redraw until inside the box: rejection keeps the profile exact where
    // it matters (the core) and is deterministic — the draw sequence is a
    // pure function of the seed.
    for (;;) {
      // Inverse CDF of the Plummer cumulative mass: M(r)/M = r^3/(r^2+a^2)^{3/2}.
      const double u = rng.uniform();
      const double um = std::max(u, 1e-12);
      const double r = a / std::sqrt(std::pow(um, -2.0 / 3.0) - 1.0 + 1e-12);
      const double theta = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
      x = cx + r * std::cos(theta);
      y = box.dims == 2 ? cy + r * std::sin(theta) : 0.0;
      if (x >= 0.0 && x <= box.lx && (box.dims == 1 || (y >= 0.0 && y <= box.ly))) break;
    }
    p.px = static_cast<float>(x);
    p.py = static_cast<float>(y);
    p.vx = static_cast<float>(rng.normal() * speed_scale);
    p.vy = box.dims == 2 ? static_cast<float>(rng.normal() * speed_scale) : 0.0f;
    finalize(p, i);
  }
  return out;
}

Block init_ring(int n, const Box& box, double radius_fraction, double width_fraction,
                std::uint64_t seed, double speed_scale) {
  CANB_REQUIRE(n >= 0, "particle count must be non-negative");
  CANB_REQUIRE(radius_fraction > 0.0 && radius_fraction <= 1.0,
               "ring radius fraction must be in (0, 1]");
  CANB_REQUIRE(width_fraction >= 0.0, "ring width fraction must be non-negative");
  box.validate();
  Xoshiro256 rng(seed);
  const double cx = 0.5 * box.lx;
  const double cy = box.dims == 2 ? 0.5 * box.ly : 0.0;
  const double rmax = 0.5 * (box.dims == 2 ? std::min(box.lx, box.ly) : box.lx);
  Block out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& p = out[static_cast<std::size_t>(i)];
    const double r = radius_fraction * rmax + rng.normal() * width_fraction * rmax;
    const double theta = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    double x = std::clamp(cx + r * std::cos(theta), 0.0, box.lx);
    double y = box.dims == 2 ? std::clamp(cy + r * std::sin(theta), 0.0, box.ly) : 0.0;
    p.px = static_cast<float>(x);
    p.py = static_cast<float>(y);
    p.vx = static_cast<float>(rng.normal() * speed_scale);
    p.vy = box.dims == 2 ? static_cast<float>(rng.normal() * speed_scale) : 0.0f;
    finalize(p, i);
  }
  return out;
}

void sort_by_id(Block& b) {
  std::sort(b.begin(), b.end(), [](const Particle& a, const Particle& c) { return a.id < c.id; });
}

}  // namespace canb::particles
