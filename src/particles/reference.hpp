// Serial reference simulator.
//
// Ground truth for every distributed decomposition: brute-force O(n^2)
// force evaluation (optionally cell-list accelerated under a cutoff),
// the same integrators, the same boundary handling. Tests require the
// distributed engines to reproduce these trajectories.
#pragma once

#include <memory>

#include "particles/batched_engine.hpp"
#include "particles/cell_list.hpp"
#include "particles/integrator.hpp"
#include "particles/kernels.hpp"

namespace canb::particles {

template <ForceKernel K>
class SerialReference {
 public:
  struct Config {
    Box box;
    K kernel{};
    double dt = 1e-3;
    double cutoff = 0.0;          ///< 0 = all-pairs
    bool use_cell_list = false;   ///< only meaningful with a cutoff
    KernelEngine engine = KernelEngine::Scalar;  ///< host-side sweep implementation
  };

  SerialReference(Block particles, Config cfg)
      : ps_(std::move(particles)), cfg_(std::move(cfg)), integrator_(new VelocityVerlet) {
    cfg_.box.validate();
  }

  void set_integrator(std::unique_ptr<Integrator> integ) { integrator_ = std::move(integ); }

  void compute_forces() {
    clear_forces(ps_);
    if (cfg_.cutoff > 0.0 && cfg_.use_cell_list) {
      cell_list_forces(std::span<Particle>(ps_), cfg_.box, cfg_.kernel, cfg_.cutoff,
                       cfg_.engine, &scratch_);
    } else {
      accumulate_forces_with(cfg_.engine, std::span<Particle>(ps_),
                             std::span<const Particle>(ps_), cfg_.box, cfg_.kernel,
                             cfg_.cutoff, &scratch_);
    }
  }

  void step() {
    integrator_->pre_force(ps_, cfg_.dt);
    compute_forces();
    integrator_->post_force(ps_, cfg_.dt, cfg_.box);
  }

  void run(int steps) {
    for (int i = 0; i < steps; ++i) step();
  }

  const Block& particles() const noexcept { return ps_; }
  Block& particles() noexcept { return ps_; }
  const Config& config() const noexcept { return cfg_; }

 private:
  Block ps_;
  Config cfg_;
  std::unique_ptr<Integrator> integrator_;
  /// Owned sweep scratch: tile capacity lives and dies with this simulator
  /// instead of accreting in a thread_local for the process lifetime.
  SweepScratch scratch_;
};

/// Convenience: forces only (no integration) for a snapshot comparison.
template <ForceKernel K>
Block reference_forces(Block ps, const Box& box, const K& kernel, double cutoff = 0.0) {
  clear_forces(ps);
  accumulate_forces(std::span<Particle>(ps), std::span<const Particle>(ps), box, kernel, cutoff);
  return ps;
}

}  // namespace canb::particles
