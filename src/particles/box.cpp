#include "particles/box.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace canb::particles {

void Box::validate() const {
  CANB_REQUIRE(dims == 1 || dims == 2, "box must be 1D or 2D");
  CANB_REQUIRE(lx > 0.0, "box lx must be positive");
  CANB_REQUIRE(dims == 1 || ly > 0.0, "2D box ly must be positive");
}

namespace {

double min_image(double d, double l) noexcept {
  if (d > 0.5 * l)
    d -= l;
  else if (d < -0.5 * l)
    d += l;
  return d;
}

// Reflects coordinate x into [0, l], flipping v on each bounce. Handles
// overshoot beyond one box length (slow particles and sane dt make this
// rare; the loop converges in one or two iterations).
void reflect(float& x, float& v, double l) noexcept {
  double xd = static_cast<double>(x);
  double vd = static_cast<double>(v);
  while (xd < 0.0 || xd > l) {
    if (xd < 0.0) {
      xd = -xd;
      vd = -vd;
    } else {
      xd = 2.0 * l - xd;
      vd = -vd;
    }
  }
  x = static_cast<float>(xd);
  v = static_cast<float>(vd);
}

void wrap(float& x, double l) noexcept {
  double xd = std::fmod(static_cast<double>(x), l);
  if (xd < 0.0) xd += l;
  x = static_cast<float>(xd);
}

}  // namespace

std::pair<double, double> pair_delta(const Particle& a, const Particle& b,
                                     const Box& box) noexcept {
  double dx = static_cast<double>(a.px) - static_cast<double>(b.px);
  double dy = box.dims == 2 ? static_cast<double>(a.py) - static_cast<double>(b.py) : 0.0;
  if (box.boundary == Boundary::Periodic) {
    dx = min_image(dx, box.lx);
    if (box.dims == 2) dy = min_image(dy, box.ly);
  }
  return {dx, dy};
}

void apply_boundary(Particle& p, const Box& box) noexcept {
  apply_boundary(p.px, p.py, p.vx, p.vy, box);
}

void apply_boundary(float& px, float& py, float& vx, float& vy, const Box& box) noexcept {
  if (box.boundary == Boundary::Reflective) {
    reflect(px, vx, box.lx);
    if (box.dims == 2) reflect(py, vy, box.ly);
  } else {
    wrap(px, box.lx);
    if (box.dims == 2) wrap(py, box.ly);
  }
}

bool inside(const Particle& p, const Box& box) noexcept {
  if (p.px < 0.0f || static_cast<double>(p.px) > box.lx) return false;
  if (box.dims == 2 && (p.py < 0.0f || static_cast<double>(p.py) > box.ly)) return false;
  return true;
}

}  // namespace canb::particles
