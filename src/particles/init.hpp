// Deterministic particle initializers.
//
// All initializers assign sequential ids starting at 0 and zero the aux
// scratch; velocities are small relative to the box so "the particle
// distribution remains nearly uniform over time" (Section IV-D).
#pragma once

#include <cstdint>

#include "particles/box.hpp"
#include "particles/particle.hpp"

namespace canb::particles {

/// n particles uniformly random in the box; speeds ~ N(0, speed_scale).
Block init_uniform(int n, const Box& box, std::uint64_t seed, double speed_scale = 0.0);

/// n particles on a near-square lattice with optional jitter (fraction of
/// the lattice spacing). Deterministic positions; zero velocity.
Block init_lattice(int n, const Box& box, double jitter = 0.0, std::uint64_t seed = 0);

/// `clusters` Gaussian blobs with the given relative width; used by the
/// galaxy example and by load-imbalance tests (non-uniform density).
Block init_clusters(int n, const Box& box, int clusters, double width_fraction,
                    std::uint64_t seed, double speed_scale = 0.0);

/// Linear density gradient along x: density at x proportional to
/// 1 + slope * (x/lx - 1/2), slope in [0, 2). Probes the uniform-density
/// assumption behind the cutoff algorithm's load balance (Section IV-A).
Block init_gradient(int n, const Box& box, double slope, std::uint64_t seed);

/// Two counter-streaming bands (plasma two-stream-style): top half drifts
/// +x, bottom half -x, at `drift` speed with thermal jitter.
Block init_two_stream(int n, const Box& box, double drift, double thermal, std::uint64_t seed);

/// Plummer-profile sphere centered in the box: radius sampled by the
/// inverse CDF r = a / sqrt(u^{-2/3} - 1) with scale a =
/// core_radius_fraction * min(lx, ly), angle uniform; positions outside
/// the box redraw (deterministically). The canonical clustered workload —
/// most mass inside ~1.3a with a thin far tail, so spatial decompositions
/// see a dense-core interaction histogram orders of magnitude above the
/// mean (the work-stealing bench input).
Block init_plummer(int n, const Box& box, double core_radius_fraction, std::uint64_t seed,
                   double speed_scale = 0.0);

/// Ring/annulus centered in the box: radius ~ N(radius_fraction * R,
/// width_fraction * R) with R = min(lx, ly) / 2, angle uniform, clamped
/// into the box. Density concentrates on a 1D curve through 2D space —
/// cells on the ring are heavy, cells off it empty.
Block init_ring(int n, const Box& box, double radius_fraction, double width_fraction,
                std::uint64_t seed, double speed_scale = 0.0);

/// Sorts by id (tests compare gathered outputs in id order).
void sort_by_id(Block& b);

}  // namespace canb::particles
