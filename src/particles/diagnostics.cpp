#include "particles/diagnostics.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace canb::particles {

double kinetic_energy(std::span<const Particle> ps) noexcept {
  double ke = 0.0;
  for (const auto& p : ps) {
    const double v2 = static_cast<double>(p.vx) * p.vx + static_cast<double>(p.vy) * p.vy;
    ke += 0.5 * static_cast<double>(p.mass) * v2;
  }
  return ke;
}

SystemState quick_state(std::span<const Particle> ps) noexcept {
  SystemState st;
  double m_total = 0.0;
  for (const auto& p : ps) {
    const double m = p.mass;
    st.momentum_x += m * static_cast<double>(p.vx);
    st.momentum_y += m * static_cast<double>(p.vy);
    st.com_x += m * static_cast<double>(p.px);
    st.com_y += m * static_cast<double>(p.py);
    m_total += m;
  }
  if (m_total > 0.0) {
    st.com_x /= m_total;
    st.com_y /= m_total;
  }
  st.kinetic = kinetic_energy(ps);
  return st;
}

double max_force_deviation(std::span<const Particle> a, std::span<const Particle> b,
                           double abs_floor) {
  CANB_REQUIRE(a.size() == b.size(), "blocks must have equal size");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    CANB_REQUIRE(a[i].id == b[i].id, "blocks must be id-aligned (sort_by_id first)");
    const double dfx = static_cast<double>(a[i].fx) - static_cast<double>(b[i].fx);
    const double dfy = static_cast<double>(a[i].fy) - static_cast<double>(b[i].fy);
    const double ref = std::hypot(static_cast<double>(b[i].fx), static_cast<double>(b[i].fy));
    worst = std::max(worst, std::hypot(dfx, dfy) / (ref + abs_floor));
  }
  return worst;
}

double max_position_deviation(std::span<const Particle> a, std::span<const Particle> b) {
  CANB_REQUIRE(a.size() == b.size(), "blocks must have equal size");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    CANB_REQUIRE(a[i].id == b[i].id, "blocks must be id-aligned (sort_by_id first)");
    const double dx = static_cast<double>(a[i].px) - static_cast<double>(b[i].px);
    const double dy = static_cast<double>(a[i].py) - static_cast<double>(b[i].py);
    worst = std::max(worst, std::hypot(dx, dy));
  }
  return worst;
}

std::vector<double> radial_distribution(std::span<const Particle> ps, const Box& box,
                                        double r_max, int bins) {
  CANB_REQUIRE(r_max > 0.0 && bins >= 1, "radial_distribution needs r_max > 0 and bins >= 1");
  std::vector<double> hist(static_cast<std::size_t>(bins), 0.0);
  const std::size_t n = ps.size();
  if (n < 2) return hist;
  const double dr = r_max / bins;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto [dx, dy] = pair_delta(ps[i], ps[j], box);
      const double r = std::hypot(dx, dy);
      if (r >= r_max) continue;
      hist[static_cast<std::size_t>(r / dr)] += 2.0;  // ordered pairs
    }
  }
  // Normalize by the ideal-gas expectation: density * annulus area * n.
  const double area = box.dims == 2 ? box.lx * box.ly : box.lx;
  const double density = static_cast<double>(n) / area;
  constexpr double kPi = 3.14159265358979323846;
  for (int b = 0; b < bins; ++b) {
    const double r_lo = b * dr;
    const double r_hi = r_lo + dr;
    const double shell =
        box.dims == 2 ? kPi * (r_hi * r_hi - r_lo * r_lo) : 2.0 * dr;  // 1D: two segments
    const double expected = density * shell * static_cast<double>(n);
    hist[static_cast<std::size_t>(b)] = expected > 0 ? hist[static_cast<std::size_t>(b)] / expected : 0.0;
  }
  return hist;
}

}  // namespace canb::particles
