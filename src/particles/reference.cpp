#include "particles/reference.hpp"

namespace canb::particles {

// SerialReference is header-only (kernel-generic); this translation unit
// pins the vtable-free template's common instantiation to speed up builds.
template class SerialReference<InverseSquareRepulsion>;

}  // namespace canb::particles
