// Simulation domains and boundary conditions.
//
// A Box is 1- or 2-dimensional (the paper evaluates cutoff simulations in
// both); 1D simulations place particles on a segment of length lx and ignore
// the y coordinate throughout.
#pragma once

#include <utility>

#include "particles/particle.hpp"

namespace canb::particles {

enum class Boundary { Reflective, Periodic };

struct Box {
  double lx = 1.0;
  double ly = 1.0;
  int dims = 2;  ///< 1 or 2
  Boundary boundary = Boundary::Reflective;

  static Box reflective_2d(double l) { return {l, l, 2, Boundary::Reflective}; }
  static Box periodic_2d(double l) { return {l, l, 2, Boundary::Periodic}; }
  static Box reflective_1d(double l) { return {l, 0.0, 1, Boundary::Reflective}; }
  static Box periodic_1d(double l) { return {l, 0.0, 1, Boundary::Periodic}; }

  void validate() const;
};

/// Displacement from b to a (i.e. a.pos - b.pos), honoring minimum-image
/// convention under periodic boundaries and the box dimensionality.
/// Returns {dx, dy}; dy == 0 in 1D.
std::pair<double, double> pair_delta(const Particle& a, const Particle& b, const Box& box) noexcept;

/// Clamps a particle back into the box after integration. Reflective walls
/// flip position and velocity; periodic wraps coordinates.
void apply_boundary(Particle& p, const Box& box) noexcept;

/// Lane variant for SoA integration loops: same reflect/wrap arithmetic on
/// one particle's coordinate lanes (py/vy untouched in 1D).
void apply_boundary(float& px, float& py, float& vx, float& vy, const Box& box) noexcept;

/// True iff the particle's position lies within the box (used in tests).
bool inside(const Particle& p, const Box& box) noexcept;

}  // namespace canb::particles
