#include "particles/soa_block.hpp"

#include "support/assert.hpp"

namespace canb::particles {

SoaBlock::SoaBlock(std::span<const Particle> ps) {
  reserve(ps.size());
  for (const Particle& p : ps) push_back(p);
}

void SoaBlock::clear() {
  px.clear();
  py.clear();
  vx.clear();
  vy.clear();
  fx.clear();
  fy.clear();
  mass.clear();
  charge.clear();
  id.clear();
  aux0.clear();
  aux1.clear();
}

void SoaBlock::reserve(std::size_t n) {
  px.reserve(n);
  py.reserve(n);
  vx.reserve(n);
  vy.reserve(n);
  fx.reserve(n);
  fy.reserve(n);
  mass.reserve(n);
  charge.reserve(n);
  id.reserve(n);
  aux0.reserve(n);
  aux1.reserve(n);
}

void SoaBlock::swap(SoaBlock& other) noexcept {
  px.swap(other.px);
  py.swap(other.py);
  vx.swap(other.vx);
  vy.swap(other.vy);
  fx.swap(other.fx);
  fy.swap(other.fy);
  mass.swap(other.mass);
  charge.swap(other.charge);
  id.swap(other.id);
  aux0.swap(other.aux0);
  aux1.swap(other.aux1);
}

void SoaBlock::push_back(const Particle& p) {
  px.push_back(p.px);
  py.push_back(p.py);
  vx.push_back(p.vx);
  vy.push_back(p.vy);
  fx.push_back(static_cast<double>(p.fx));
  fy.push_back(static_cast<double>(p.fy));
  mass.push_back(p.mass);
  charge.push_back(p.charge);
  id.push_back(p.id);
  aux0.push_back(static_cast<double>(p.aux0));
  aux1.push_back(static_cast<double>(p.aux1));
}

void SoaBlock::append(const SoaBlock& other) {
  px.insert(px.end(), other.px.begin(), other.px.end());
  py.insert(py.end(), other.py.begin(), other.py.end());
  vx.insert(vx.end(), other.vx.begin(), other.vx.end());
  vy.insert(vy.end(), other.vy.begin(), other.vy.end());
  fx.insert(fx.end(), other.fx.begin(), other.fx.end());
  fy.insert(fy.end(), other.fy.begin(), other.fy.end());
  mass.insert(mass.end(), other.mass.begin(), other.mass.end());
  charge.insert(charge.end(), other.charge.begin(), other.charge.end());
  id.insert(id.end(), other.id.begin(), other.id.end());
  aux0.insert(aux0.end(), other.aux0.begin(), other.aux0.end());
  aux1.insert(aux1.end(), other.aux1.begin(), other.aux1.end());
}

void SoaBlock::assign_from(const SoaBlock& other) {
  px.assign(other.px.begin(), other.px.end());
  py.assign(other.py.begin(), other.py.end());
  vx.assign(other.vx.begin(), other.vx.end());
  vy.assign(other.vy.begin(), other.vy.end());
  fx.assign(other.fx.begin(), other.fx.end());
  fy.assign(other.fy.begin(), other.fy.end());
  mass.assign(other.mass.begin(), other.mass.end());
  charge.assign(other.charge.begin(), other.charge.end());
  id.assign(other.id.begin(), other.id.end());
  aux0.assign(other.aux0.begin(), other.aux0.end());
  aux1.assign(other.aux1.begin(), other.aux1.end());
}

void SoaBlock::assign_replica_from(const SoaBlock& other) {
  px.assign(other.px.begin(), other.px.end());
  py.assign(other.py.begin(), other.py.end());
  fx.assign(other.fx.begin(), other.fx.end());
  fy.assign(other.fy.begin(), other.fy.end());
  mass.assign(other.mass.begin(), other.mass.end());
  charge.assign(other.charge.begin(), other.charge.end());
  id.assign(other.id.begin(), other.id.end());
}

void SoaBlock::assign_visitor_from(const SoaBlock& other) {
  px.assign(other.px.begin(), other.px.end());
  py.assign(other.py.begin(), other.py.end());
  mass.assign(other.mass.begin(), other.mass.end());
  charge.assign(other.charge.begin(), other.charge.end());
  id.assign(other.id.begin(), other.id.end());
}

void SoaBlock::copy_within(std::size_t dst_i, std::size_t src_i) noexcept {
  px[dst_i] = px[src_i];
  py[dst_i] = py[src_i];
  vx[dst_i] = vx[src_i];
  vy[dst_i] = vy[src_i];
  fx[dst_i] = fx[src_i];
  fy[dst_i] = fy[src_i];
  mass[dst_i] = mass[src_i];
  charge[dst_i] = charge[src_i];
  id[dst_i] = id[src_i];
  aux0[dst_i] = aux0[src_i];
  aux1[dst_i] = aux1[src_i];
}

void SoaBlock::truncate(std::size_t n) {
  px.resize(n);
  py.resize(n);
  vx.resize(n);
  vy.resize(n);
  fx.resize(n);
  fy.resize(n);
  mass.resize(n);
  charge.resize(n);
  id.resize(n);
  aux0.resize(n);
  aux1.resize(n);
}

void SoaBlock::append_from(const SoaBlock& other, std::size_t i) {
  px.push_back(other.px[i]);
  py.push_back(other.py[i]);
  vx.push_back(other.vx[i]);
  vy.push_back(other.vy[i]);
  fx.push_back(other.fx[i]);
  fy.push_back(other.fy[i]);
  mass.push_back(other.mass[i]);
  charge.push_back(other.charge[i]);
  id.push_back(other.id[i]);
  aux0.push_back(other.aux0[i]);
  aux1.push_back(other.aux1[i]);
}

Particle SoaBlock::get(std::size_t i) const noexcept {
  Particle p;
  p.px = px[i];
  p.py = py[i];
  p.vx = vx[i];
  p.vy = vy[i];
  p.fx = static_cast<float>(fx[i]);
  p.fy = static_cast<float>(fy[i]);
  p.mass = mass[i];
  p.charge = charge[i];
  p.id = id[i];
  p.aux0 = static_cast<float>(aux0[i]);
  p.aux1 = static_cast<float>(aux1[i]);
  return p;
}

void SoaBlock::set(std::size_t i, const Particle& p) noexcept {
  px[i] = p.px;
  py[i] = p.py;
  vx[i] = p.vx;
  vy[i] = p.vy;
  fx[i] = static_cast<double>(p.fx);
  fy[i] = static_cast<double>(p.fy);
  mass[i] = p.mass;
  charge[i] = p.charge;
  id[i] = p.id;
  aux0[i] = static_cast<double>(p.aux0);
  aux1[i] = static_cast<double>(p.aux1);
}

Block SoaBlock::to_block() const {
  Block out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(get(i));
  return out;
}

void SoaBlock::clear_forces() noexcept {
  for (auto& f : fx) f = 0.0;
  for (auto& f : fy) f = 0.0;
}

void SoaBlock::wire_put(wire::Writer& w) const {
  w.scalar<std::uint64_t>(size());
  w.lane(px);
  w.lane(py);
  w.lane(vx);
  w.lane(vy);
  w.lane(fx);
  w.lane(fy);
  w.lane(mass);
  w.lane(charge);
  w.lane(id);
  w.lane(aux0);
  w.lane(aux1);
}

void SoaBlock::wire_get(wire::Reader& r) {
  const auto n = static_cast<std::size_t>(r.scalar<std::uint64_t>());
  r.lane(px);
  r.lane(py);
  r.lane(vx);
  r.lane(vy);
  r.lane(fx);
  r.lane(fy);
  r.lane(mass);
  r.lane(charge);
  r.lane(id);
  r.lane(aux0);
  r.lane(aux1);
  // Replica blocks carry short velocity/aux lanes by contract
  // (assign_replica_from); only the id lane defines size().
  CANB_ASSERT(id.size() == n);
}

}  // namespace canb::particles
