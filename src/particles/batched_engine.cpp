#include "particles/batched_engine.hpp"

#include "support/assert.hpp"

namespace canb::particles {

const char* engine_name(KernelEngine e) noexcept {
  return e == KernelEngine::Batched ? "batched" : "scalar";
}

KernelEngine parse_engine(const std::string& name) {
  if (name == "scalar") return KernelEngine::Scalar;
  if (name == "batched") return KernelEngine::Batched;
  CANB_REQUIRE(false, "unknown kernel engine: " + name + " (expected scalar|batched)");
  return KernelEngine::Scalar;
}

}  // namespace canb::particles
