// The particle record.
//
// The paper states "the particles are 52 bytes in size" (Section III-C); we
// match that exactly so byte-level communication volumes are comparable.
// Layout: 13 four-byte fields, alignment 4, no padding.
#pragma once

#include <cstdint>
#include <vector>

namespace canb::particles {

struct Particle {
  float px = 0.0f, py = 0.0f;  ///< position (py unused in 1D simulations)
  float vx = 0.0f, vy = 0.0f;  ///< velocity
  float fx = 0.0f, fy = 0.0f;  ///< force accumulator for the current step
  float mass = 1.0f;
  float charge = 1.0f;         ///< kernel coupling strength (repulsion/charge)
  std::int32_t id = -1;        ///< globally unique; used to skip self-pairs
  float aux0 = 0.0f, aux1 = 0.0f;  ///< integrator scratch (e.g. previous force)
  float aux2 = 0.0f, aux3 = 0.0f;  ///< padding to the paper's 52-byte record
};

static_assert(sizeof(Particle) == 52, "paper specifies 52-byte particles");

inline constexpr std::size_t kParticleBytes = sizeof(Particle);

/// A contiguous block of particles — the unit that travels between ranks.
using Block = std::vector<Particle>;

/// Total serialized size of a block in bytes.
inline std::size_t block_bytes(const Block& b) noexcept { return b.size() * kParticleBytes; }

/// Zeroes force accumulators.
inline void clear_forces(Block& b) noexcept {
  for (auto& p : b) {
    p.fx = 0.0f;
    p.fy = 0.0f;
  }
}

}  // namespace canb::particles
