#include "particles/soa_tile.hpp"

#include "support/assert.hpp"

namespace canb::particles {

namespace {

void resize_lanes(SoaTile& t, std::size_t n) {
  t.x.resize(n);
  t.y.resize(n);
  t.charge.resize(n);
  t.mass.resize(n);
  t.id.resize(n);
  t.fx.assign(n, 0.0);
  t.fy.assign(n, 0.0);
}

}  // namespace

void SoaTile::pack(std::span<const Particle> ps, const Box& box) {
  resize_lanes(*this, ps.size());
  const bool two_d = box.dims == 2;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const Particle& p = ps[i];
    x[i] = static_cast<double>(p.px);
    y[i] = two_d ? static_cast<double>(p.py) : 0.0;
    charge[i] = static_cast<double>(p.charge);
    mass[i] = static_cast<double>(p.mass);
    id[i] = p.id;
  }
}

void SoaTile::pack_gather(const SoaBlock& ps, std::span<const int> idx, const Box& box) {
  resize_lanes(*this, idx.size());
  const bool two_d = box.dims == 2;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const auto j = static_cast<std::size_t>(idx[i]);
    x[i] = static_cast<double>(ps.px[j]);
    y[i] = two_d ? static_cast<double>(ps.py[j]) : 0.0;
    charge[i] = static_cast<double>(ps.charge[j]);
    mass[i] = static_cast<double>(ps.mass[j]);
    id[i] = ps.id[j];
  }
}

void SoaTile::scatter_add_forces(std::span<Particle> ps) const {
  CANB_ASSERT(ps.size() == size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    ps[i].fx += static_cast<float>(fx[i]);
    ps[i].fy += static_cast<float>(fy[i]);
  }
}

void SoaTile::scatter_add_forces(SoaBlock& ps, std::span<const int> idx) const {
  CANB_ASSERT(idx.size() == size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const auto j = static_cast<std::size_t>(idx[i]);
    // Float fold, matching the AoS scatter's `p.fx += float(fx[i])` (see the
    // precision invariant in batched_engine.hpp).
    ps.fx[j] = static_cast<double>(static_cast<float>(ps.fx[j]) + static_cast<float>(fx[i]));
    ps.fy[j] = static_cast<double>(static_cast<float>(ps.fy[j]) + static_cast<float>(fy[i]));
  }
}

void SoaTile::shrink_to_fit() {
  x.shrink_to_fit();
  y.shrink_to_fit();
  charge.shrink_to_fit();
  mass.shrink_to_fit();
  id.shrink_to_fit();
  fx.shrink_to_fit();
  fy.shrink_to_fit();
}

}  // namespace canb::particles
