#include "particles/soa_tile.hpp"

#include "support/assert.hpp"

namespace canb::particles {

namespace {

void resize_lanes(SoaTile& t, std::size_t n) {
  t.x.resize(n);
  t.y.resize(n);
  t.charge.resize(n);
  t.mass.resize(n);
  t.id.resize(n);
  t.fx.assign(n, 0.0);
  t.fy.assign(n, 0.0);
}

}  // namespace

void SoaTile::pack(std::span<const Particle> ps, const Box& box) {
  resize_lanes(*this, ps.size());
  const bool two_d = box.dims == 2;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const Particle& p = ps[i];
    x[i] = static_cast<double>(p.px);
    y[i] = two_d ? static_cast<double>(p.py) : 0.0;
    charge[i] = static_cast<double>(p.charge);
    mass[i] = static_cast<double>(p.mass);
    id[i] = p.id;
  }
}

void SoaTile::pack_gather(std::span<const Particle> ps, std::span<const int> idx,
                          const Box& box) {
  resize_lanes(*this, idx.size());
  const bool two_d = box.dims == 2;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const Particle& p = ps[static_cast<std::size_t>(idx[i])];
    x[i] = static_cast<double>(p.px);
    y[i] = two_d ? static_cast<double>(p.py) : 0.0;
    charge[i] = static_cast<double>(p.charge);
    mass[i] = static_cast<double>(p.mass);
    id[i] = p.id;
  }
}

void SoaTile::scatter_add_forces(std::span<Particle> ps) const {
  CANB_ASSERT(ps.size() == size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    ps[i].fx += static_cast<float>(fx[i]);
    ps[i].fy += static_cast<float>(fy[i]);
  }
}

void SoaTile::scatter_add_forces(std::span<Particle> ps, std::span<const int> idx) const {
  CANB_ASSERT(idx.size() == size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    auto& p = ps[static_cast<std::size_t>(idx[i])];
    p.fx += static_cast<float>(fx[i]);
    p.fy += static_cast<float>(fy[i]);
  }
}

}  // namespace canb::particles
