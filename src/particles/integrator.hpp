// Time integrators.
//
// Decompositions call pre_force before the force computation and post_force
// after it; this split supports velocity Verlet without a second force pass.
// Integrators are stateless w.r.t. particles (per-particle scratch lives in
// the aux fields), so blocks can migrate between ranks freely.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "particles/box.hpp"
#include "particles/particle.hpp"
#include "particles/soa_block.hpp"

namespace canb::particles {

class Integrator {
 public:
  virtual ~Integrator() = default;

  /// Called BEFORE forces are cleared for the step, with the previous
  /// step's forces still in fx/fy (zero on the first step).
  virtual void pre_force(std::span<Particle> ps, double dt) const = 0;
  /// Called after forces for this step are complete. Must apply boundaries.
  virtual void post_force(std::span<Particle> ps, double dt, const Box& box) const = 0;

  /// Lane variants over the resident SoA block: per-lane arithmetic matches
  /// the AoS loops operation for operation (force lanes hold
  /// float-representable values at these call points — see the precision
  /// invariant in batched_engine.hpp — so reading them is reading p.fx).
  virtual void pre_force(SoaBlock& ps, double dt) const = 0;
  virtual void post_force(SoaBlock& ps, double dt, const Box& box) const = 0;

  virtual std::string name() const = 0;
};

/// Semi-implicit (symplectic) Euler: v += f/m dt; x += v dt.
class SymplecticEuler final : public Integrator {
 public:
  void pre_force(std::span<Particle>, double) const override {}
  void post_force(std::span<Particle> ps, double dt, const Box& box) const override;
  void pre_force(SoaBlock&, double) const override {}
  void post_force(SoaBlock& ps, double dt, const Box& box) const override;
  std::string name() const override { return "symplectic-euler"; }
};

/// Velocity Verlet. aux0/aux1 hold the previous step's force; they must be
/// zero-initialized (initializers do this).
class VelocityVerlet final : public Integrator {
 public:
  void pre_force(std::span<Particle> ps, double dt) const override;
  void post_force(std::span<Particle> ps, double dt, const Box& box) const override;
  void pre_force(SoaBlock& ps, double dt) const override;
  void post_force(SoaBlock& ps, double dt, const Box& box) const override;
  std::string name() const override { return "velocity-verlet"; }
};

/// Leapfrog (kick-drift form): v += f/m dt at integer steps, x += v dt —
/// equivalent to symplectic Euler in update order but kept separate so the
/// examples can label their scheme honestly; stores nothing in aux.
class Leapfrog final : public Integrator {
 public:
  void pre_force(std::span<Particle>, double) const override {}
  void post_force(std::span<Particle> ps, double dt, const Box& box) const override;
  void pre_force(SoaBlock&, double) const override {}
  void post_force(SoaBlock& ps, double dt, const Box& box) const override;
  std::string name() const override { return "leapfrog"; }
};

std::unique_ptr<Integrator> make_integrator(const std::string& name);

}  // namespace canb::particles
