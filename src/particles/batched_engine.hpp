// The batched kernel engine: SoA-tiled, branch-minimized force sweeps.
//
// Host time vs virtual time: everything in this file changes only how fast
// the *host* executes a block-block interaction. The α-β-γ ledger is charged
// from the returned InteractionCount, so both engines must agree on
// `examined`/`within_cutoff` exactly (bitwise) — tests enforce this. The
// scalar path stays the exactness reference.
//
// The sweep is generic over its operand layout: resident SoaBlocks (float
// lanes, promoted to double per load — an exact conversion the vectorizer
// folds into the loads) and gathered SoaTiles (double lanes) share one
// implementation, so the resident pipeline pays zero pack/scatter while the
// cell-list path still gathers neighborhoods into tiles by index list.
//
// Inner-loop shape (the part compilers can vectorize):
//  * sources are swept in cache-resident tiles of kTileWidth lanes;
//  * the minimum-image correction, self-pair test, and cutoff test are all
//    arithmetic masks (compares producing 0.0/1.0), not branches;
//  * masked-out lanes get their r2 pushed away from the singularity
//    (r2 + 1.0) so every kernel magnitude stays finite, then the magnitude
//    is multiplied by the mask — adding an exact 0.0 to the accumulator;
//  * per-target accumulation runs in double and in source order, so active
//    pairs produce the same sums as the scalar engine;
//  * one store per target into the operand's force lanes.
//
// Force-lane precision invariant: resident SoaBlock force lanes hold
// float-representable values at every phase boundary. Sweeps accumulate in
// double *within* a call and fold the call's total through float on store —
// exactly where the AoS pipeline stored to a float field. This keeps
// trajectories (and therefore every position-dependent real-policy ledger
// charge, e.g. re-assignment bytes) bitwise identical to the wire-format
// pipeline, and makes the 52-byte serialization lossless at any time.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <type_traits>

#include "particles/kernels.hpp"
#include "particles/simd/simd.hpp"
#include "particles/soa_block.hpp"
#include "particles/soa_tile.hpp"
#include "support/parallel.hpp"

namespace canb::particles {

/// Selects the host-side implementation of the block-block force sweep.
/// Scalar is the original pairwise loop (the exactness reference); Batched
/// is the SoA tiled engine. Virtual-time results are identical by
/// construction.
enum class KernelEngine { Scalar, Batched };

const char* engine_name(KernelEngine e) noexcept;

/// Parses "scalar" | "batched" (raises PreconditionError otherwise).
KernelEngine parse_engine(const std::string& name);

/// Caller-owned scratch tiles for the span-based sweep paths (the serial
/// reference, benches, and the cell-list neighborhood gathers). Owning the
/// scratch at the call site bounds its lifetime to the simulation using it —
/// the previous thread_local tiles retained peak capacity per thread for the
/// process lifetime across unrelated simulations.
struct SweepScratch {
  SoaTile targets;
  SoaTile sources;
};

/// The coupling factor for a lane pair (same promotion as pair_coupling:
/// each float lane widens to double before the product).
template <class K, class TgtT, class SrcT>
inline double lane_coupling(const TgtT& a, std::size_t i, const SrcT& b, std::size_t j) noexcept {
  if constexpr (K::kCoupling == Coupling::Charge)
    return static_cast<double>(a.charges()[i]) * static_cast<double>(b.charges()[j]);
  else if constexpr (K::kCoupling == Coupling::Mass)
    return static_cast<double>(a.masses()[i]) * static_cast<double>(b.masses()[j]);
  else
    return 1.0;
}

class BatchedEngine {
 public:
  /// Source lanes processed per tile: 3 double scratch buffers + 5 source
  /// lanes at this width stay comfortably inside L1.
  static constexpr std::size_t kTileWidth = 128;

  /// Seeded default for sweep's inline-vs-lane pipeline threshold: at or
  /// below this many sources, kernels with an exact lane pipeline
  /// (K::kLanesExact) run the inlined auto-vectorized pipeline instead of
  /// the out-of-line SIMD lane call — sized from the PR 6 small-block
  /// regression (n=128/rank cross-sweeps ~16% slower out-of-lined). The
  /// host tuner can calibrate per (kernel, n); this default needs no
  /// calibration run.
  static constexpr std::size_t kInlineLaneMax = 192;

  /// Runs the tiled sweep of `src` against `tgt`, accumulating into the
  /// target's double fx/fy lanes. Operands are anything exposing the shared
  /// lane accessors (SoaBlock, SoaTile). Pair semantics match the scalar
  /// engine: same-id pairs are skipped, every other pair is examined, and
  /// only pairs within the cutoff (all of them when cutoff <= 0) contribute.
  /// `tile` (clamped to [1, kTileWidth]) is the runtime source-tile width;
  /// the default matches the historical constant, and the host tuner may
  /// lower it for small blocks. Tile width changes double-level partial
  /// grouping only — the per-call float fold at the store collapses it, so
  /// trajectories are unaffected (layout-invariance tests pin this).
  ///
  /// `inline_lane_max`: source blocks at or below this size run kernels
  /// with an EXACT lane pipeline (K::kLanesExact) through the inlined
  /// pre-dispatch pipeline instead of the out-of-line lane call, which
  /// costs more than it vectorizes on small tiles. Bitwise-neutral by the
  /// kLanesExact contract; approximate lane kernels (exp) never switch.
  ///
  /// `pool`: optional host pool — target-tile chunks fan out as scheduler
  /// tasks. Chunks store to disjoint target ranges and each target's fold
  /// runs entirely inside its chunk in serial source order, so forces are
  /// bitwise identical for any schedule and thread count; the counters are
  /// exact integer sums. Do NOT pass a pool from inside another
  /// parallel_tasks body (the scheduler does not nest).
  template <ForceKernel K, class TgtT, class SrcT>
  static InteractionCount sweep(TgtT& tgt, const SrcT& src, const Box& box, const K& kernel,
                                double cutoff, std::size_t tile = kTileWidth,
                                std::size_t inline_lane_max = kInlineLaneMax,
                                ThreadPool* pool = nullptr) {
    tile = std::clamp<std::size_t>(tile, 1, kTileWidth);
    const std::size_t nt = tgt.size();
    const std::size_t ns = src.size();
    const bool periodic = box.boundary == Boundary::Periodic;
    // Reflective boxes zero the wrap length, turning the minimum-image
    // correction into an exact no-op without a per-pair branch; 1D boxes
    // zero the y displacement the same way (multiply by 0.0).
    const double lxs = periodic ? box.lx : 0.0;
    const double lys = periodic && box.dims == 2 ? box.ly : 0.0;
    const double dimy = box.dims == 2 ? 1.0 : 0.0;
    const double hx = 0.5 * box.lx;
    const double hy = 0.5 * box.ly;
    const double cut2 =
        cutoff > 0.0 ? cutoff * cutoff : std::numeric_limits<double>::infinity();

    const auto* const sx = src.xs();
    const auto* const sy = src.ys();
    const std::int32_t* const sid = src.ids();
    decltype(src.charges()) scpl = nullptr;
    if constexpr (K::kCoupling == Coupling::Charge) scpl = src.charges();
    if constexpr (K::kCoupling == Coupling::Mass) scpl = src.masses();

    const auto* const tx = tgt.xs();
    const auto* const ty = tgt.ys();
    const std::int32_t* const tid = tgt.ids();
    double* const tfx = tgt.fxs();
    double* const tfy = tgt.fys();

    // Source-tile bounding boxes for the cutoff cull below. A culled tile is
    // one where a conservative lower bound on the min-image distance from
    // the target to the tile's bbox already exceeds the cutoff: every lane's
    // mask would be 0.0 and its force contribution an exact ±0.0, so
    // skipping the tile leaves force sums bitwise unchanged (a sum that
    // starts at +0.0 is unaffected by adding signed zeros). `within` gains
    // nothing and `examined` only needs the id compares, so the ledger is
    // bitwise identical too — the cull elides only sqrt/divide work.
    constexpr std::size_t kMaxCullTiles = 256;
    const std::size_t ntiles = (ns + tile - 1) / tile;
    const bool cull = cutoff > 0.0 && ns > 0 && ntiles <= kMaxCullTiles;
    double bminx[kMaxCullTiles];
    double bmaxx[kMaxCullTiles];
    double bminy[kMaxCullTiles];
    double bmaxy[kMaxCullTiles];
    if (cull) {
      for (std::size_t b = 0; b < ntiles; ++b) {
        const std::size_t j0 = b * tile;
        const std::size_t len = std::min(tile, ns - j0);
        double mnx = static_cast<double>(sx[j0]);
        double mxx = mnx;
        double mny = static_cast<double>(sy[j0]);
        double mxy = mny;
        for (std::size_t t = 1; t < len; ++t) {
          const double x = static_cast<double>(sx[j0 + t]);
          const double y = static_cast<double>(sy[j0 + t]);
          mnx = std::min(mnx, x);
          mxx = std::max(mxx, x);
          mny = std::min(mny, y);
          mxy = std::max(mxy, y);
        }
        bminx[b] = mnx;
        bmaxx[b] = mxx;
        bminy[b] = mny;
        bmaxy[b] = mxy;
      }
    }
    // Lower bound on the min-image |d| from point v to interval [lo, hi]:
    // direct distance when reflective; under wrap, min-image(|diff|) >=
    // min(d_lo, L - d_hi) for |diff| in [d_lo, d_hi] (clamped at 0).
    const auto axis_bound = [](double v, double lo, double hi, double wrap) noexcept {
      const double dlo = v < lo ? lo - v : (v > hi ? v - hi : 0.0);
      if (wrap <= 0.0) return dlo;
      const double dhi = std::max(v < lo ? hi - v : v - lo, hi - lo);
      return std::max(0.0, std::min(dlo, wrap - dhi));
    };

    // Row pipeline choice for lane-batched kernels: exact-lane kernels
    // (kLanesExact) drop to the inlined pre-dispatch pipeline on small
    // source blocks, where the out-of-line lane call costs more than it
    // vectorizes. Bitwise-neutral by the kLanesExact contract; approximate
    // lane kernels (exp) never switch, and opting into fast rsqrt keeps
    // the lane path (the caller asked for it).
    [[maybe_unused]] bool lane_rows = true;
    if constexpr (LaneBatchedKernel<K>) {
      if constexpr (K::kLanesExact) {
        if (ns <= inline_lane_max && !simd::fast_rsqrt()) lane_rows = false;
      }
    }

    // Doubly tiled: targets advance in stack-accumulated chunks, source
    // tiles run innermost so one tile stays L1-hot across the whole chunk.
    // Each target still forms per-source-tile partial sums from zero and
    // adds them in tile order — the same grouping a zeroed gather tile
    // produced — so the single store per target below can fold the call's
    // contribution at the right precision for the operand.
    //
    // One target-tile chunk is the scheduler task unit: its stores hit a
    // disjoint target range and every fold inside it runs in serial source
    // order, so chunks can execute in any order on any worker.
    const auto sweep_chunk = [&](std::size_t i0, std::uint64_t& examined,
                                 std::uint64_t& within, std::uint64_t& computed) {
      const std::size_t ilen = std::min(tile, nt - i0);
      double accx[kTileWidth];
      double accy[kTileWidth];
      for (std::size_t ii = 0; ii < ilen; ++ii) accx[ii] = accy[ii] = 0.0;
      for (std::size_t j0 = 0; j0 < ns; j0 += tile) {
        const std::size_t len = std::min(tile, ns - j0);
        for (std::size_t ii = 0; ii < ilen; ++ii) {
          const std::size_t i = i0 + ii;
          const double xi = static_cast<double>(tx[i]);
          const double yi = static_cast<double>(ty[i]);
          const std::int32_t idi = tid[i];
          if (cull) {
            const std::size_t b = j0 / tile;
            const double bx = axis_bound(xi, bminx[b], bmaxx[b], lxs);
            const double by =
                dimy != 0.0 ? axis_bound(yi, bminy[b], bmaxy[b], lys) : 0.0;
            // The (1 - 1e-9) slack absorbs the few-ulp rounding in the
            // bound itself; a tile is only culled when provably out of
            // range, so the per-pair masks it skips were all exactly 0.0.
            if ((bx * bx + by * by) * (1.0 - 1e-9) > cut2) {
              for (std::size_t t = 0; t < len; ++t)
                examined += static_cast<std::uint64_t>(idi != sid[j0 + t]);
              continue;
            }
          }
          double ci = 1.0;
          if constexpr (K::kCoupling == Coupling::Charge)
            ci = static_cast<double>(tgt.charges()[i]);
          if constexpr (K::kCoupling == Coupling::Mass)
            ci = static_cast<double>(tgt.masses()[i]);
          double gx[kTileWidth];
          double gy[kTileWidth];
          double gm[kTileWidth];
          // Pass 1: independent lanes, no cross-iteration state — this is
          // the loop the auto-vectorizer packs.
          const auto plain_row = [&] {
            for (std::size_t t = 0; t < len; ++t) {
              const std::size_t j = j0 + t;
              double dx = xi - static_cast<double>(sx[j]);
              double dy = dimy * (yi - static_cast<double>(sy[j]));
              dx -= lxs * (static_cast<double>(dx > hx) - static_cast<double>(dx < -hx));
              dy -= lys * (static_cast<double>(dy > hy) - static_cast<double>(dy < -hy));
              const double r2 = dx * dx + dy * dy;
              const double m =
                  static_cast<double>(idi != sid[j]) * static_cast<double>(r2 <= cut2);
              const double r2g = r2 + (1.0 - m);
              double cpl = 1.0;
              if constexpr (K::kCoupling != Coupling::None)
                cpl = ci * static_cast<double>(scpl[j]);
              const double mag = kernel.magnitude(r2g, cpl) * m;
              gx[t] = mag * dx;
              gy[t] = mag * dy;
              gm[t] = m;
            }
          };
          if constexpr (LaneBatchedKernel<K>) {
            if (lane_rows) {
              // Kernels with a libm call in `magnitude` (exp) get a split
              // pass: geometry and masks into buffers (vectorizable), the
              // kernel's own lane loop (which hoists the libm call so it
              // doesn't clobber the vector registers mid-loop), then a
              // vectorizable combine. Masked lanes still evaluate at
              // r2g >= 1 and multiply to an exact 0.0.
              double r2b[kTileWidth];
              double mg[kTileWidth];
              double cb[kTileWidth];
              for (std::size_t t = 0; t < len; ++t) {
                const std::size_t j = j0 + t;
                double dx = xi - static_cast<double>(sx[j]);
                double dy = dimy * (yi - static_cast<double>(sy[j]));
                dx -= lxs * (static_cast<double>(dx > hx) - static_cast<double>(dx < -hx));
                dy -= lys * (static_cast<double>(dy > hy) - static_cast<double>(dy < -hy));
                const double r2 = dx * dx + dy * dy;
                const double m =
                    static_cast<double>(idi != sid[j]) * static_cast<double>(r2 <= cut2);
                gx[t] = dx;
                gy[t] = dy;
                gm[t] = m;
                r2b[t] = r2 + (1.0 - m);
                if constexpr (K::kCoupling != Coupling::None)
                  cb[t] = ci * static_cast<double>(scpl[j]);
              }
              kernel.magnitude_lanes(r2b, cb, mg, len);
              for (std::size_t t = 0; t < len; ++t) {
                const double mag = mg[t] * gm[t];
                gx[t] *= mag;
                gy[t] *= mag;
              }
            } else {
              plain_row();
            }
          } else {
            plain_row();
          }
          // Pass 2: in-order reduction, matching the scalar engine's
          // source-order accumulation (masked lanes add an exact 0.0).
          double fxi = 0.0;
          double fyi = 0.0;
          for (std::size_t t = 0; t < len; ++t) {
            fxi += gx[t];
            fyi += gy[t];
          }
          // Counting is exact integer arithmetic (masks are 0.0 or 1.0),
          // so it lives in its own vectorizable loop off the FP add ports
          // instead of riding the latency-bound reduction chain above.
          for (std::size_t t = 0; t < len; ++t) {
            within += static_cast<std::uint64_t>(gm[t] != 0.0);
            examined += static_cast<std::uint64_t>(idi != sid[j0 + t]);
          }
          computed += static_cast<std::uint64_t>(len);
          accx[ii] += fxi;
          accy[ii] += fyi;
        }
      }
      for (std::size_t ii = 0; ii < ilen; ++ii) {
        const std::size_t i = i0 + ii;
        if constexpr (std::is_same_v<std::remove_cv_t<TgtT>, SoaBlock>) {
          // Resident lanes: fold through float, where the AoS pipeline did
          // `p.fx += float(total)` at scatter (see the precision invariant
          // in the header comment).
          tfx[i] =
              static_cast<double>(static_cast<float>(tfx[i]) + static_cast<float>(accx[ii]));
          tfy[i] =
              static_cast<double>(static_cast<float>(tfy[i]) + static_cast<float>(accy[ii]));
        } else {
          // Gather tiles round at scatter_add_forces, not here.
          tfx[i] += accx[ii];
          tfy[i] += accy[ii];
        }
      }
    };

    std::uint64_t examined = 0;
    std::uint64_t within = 0;
    std::uint64_t computed = 0;
    const std::size_t nchunks = nt == 0 ? 0 : (nt + tile - 1) / tile;
    if (pool != nullptr && pool->thread_count() > 1 && nchunks > 1) {
      // Counters fold through per-task locals into relaxed atomics —
      // integer sums, exact in any order.
      std::atomic<std::uint64_t> aex{0}, awi{0}, aco{0};
      pool->parallel_tasks(static_cast<int>(nchunks), [&](int c, int) {
        std::uint64_t ex = 0, wi = 0, co = 0;
        sweep_chunk(static_cast<std::size_t>(c) * tile, ex, wi, co);
        aex.fetch_add(ex, std::memory_order_relaxed);
        awi.fetch_add(wi, std::memory_order_relaxed);
        aco.fetch_add(co, std::memory_order_relaxed);
      });
      examined = aex.load(std::memory_order_relaxed);
      within = awi.load(std::memory_order_relaxed);
      computed = aco.load(std::memory_order_relaxed);
    } else {
      for (std::size_t i0 = 0; i0 < nt; i0 += tile)
        sweep_chunk(i0, examined, within, computed);
    }
    return {examined, within, computed, /*half_sweep=*/false};
  }

  /// Largest block the N3L half-sweep handles with stack accumulators
  /// (2 x 64 KiB); larger blocks fall back to the full sweep.
  static constexpr std::size_t kMaxHalfBlock = 8192;

  /// N3L half-sweep of a block against a bitwise replica of itself.
  ///
  /// Contract: `src` holds the SAME position/id/coupling lanes as `tgt`
  /// (the intra-rank "interact with your own copy" case: CaAllPairs when
  /// the carried replica is home, CaCutoff's self slot, SpatialHalo's
  /// aliased self-interaction, and span sweeps where targets == sources).
  /// Each unordered pair is evaluated once and the force scattered to both
  /// accumulators with opposite sign.
  ///
  /// Bitwise contract (in double, before the per-operand store fold): the
  /// result equals `sweep(tgt, src, ...)` with the same tile width, lane
  /// for lane. The construction:
  ///  * tile pairs (A,B), A ascending outer, B >= A ascending inner, so
  ///    every target receives its per-source-tile partials in ascending
  ///    source-tile order — the full sweep's fold sequence;
  ///  * every partial builds from +0.0 in ascending source order within
  ///    the tile and folds into the per-target running sum exactly once:
  ///    the A side as a row-local scalar, the B side (and the diagonal)
  ///    via per-pair partial buffers written in the order the full sweep's
  ///    own reduction visits those lanes;
  ///  * the scattered contribution is `partial -= f`, i.e. adding -f,
  ///    which is bitwise f_ji because IEEE negation commutes through the
  ///    min-image subtraction and the magnitude product (mask, r2, and
  ///    coupling are symmetric); signed-zero differences on masked or
  ///    coincident lanes are absorbed because a +0.0-seeded partial never
  ///    becomes -0.0 by adding signed zeros;
  ///  * the per-row cutoff cull (off-diagonal pairs only) skips lanes
  ///    whose mask is exactly 0.0 in BOTH directions, so it stays
  ///    force-neutral and ledger-exact just like the full sweep's cull.
  ///
  /// `examined` counts both directions of each evaluated pair (2 id
  /// compares per unordered pair — exact small integers in double), so the
  /// vmpi ledger charge is identical to the full sweep's. `computed`
  /// reports the lanes actually evaluated: ~half of the full sweep's.
  ///
  /// Scheduling note: the N3L scatter writes -f across the whole block, so
  /// tile pairs are NOT disjoint tasks — the half-sweep is a serial unit
  /// and deliberately takes no pool. Host parallelism lives one level up
  /// (per-rank and per-cell task fan-out), where state is disjoint; a
  /// parallel full `sweep` is the alternative when a caller wants
  /// intra-block threading badly enough to forfeit the 2x halving.
  template <ForceKernel K, class TgtT, class SrcT>
  static InteractionCount sweep_self(TgtT& tgt, const SrcT& src, const Box& box,
                                     const K& kernel, double cutoff,
                                     std::size_t tile = kTileWidth,
                                     std::size_t inline_lane_max = kInlineLaneMax) {
    tile = std::clamp<std::size_t>(tile, 1, kTileWidth);
    const std::size_t n = tgt.size();
    if (src.size() != n || n > kMaxHalfBlock)
      return sweep(tgt, src, box, kernel, cutoff, tile, inline_lane_max);

    const bool periodic = box.boundary == Boundary::Periodic;
    const double lxs = periodic ? box.lx : 0.0;
    const double lys = periodic && box.dims == 2 ? box.ly : 0.0;
    const double dimy = box.dims == 2 ? 1.0 : 0.0;
    const double hx = 0.5 * box.lx;
    const double hy = 0.5 * box.ly;
    const double cut2 =
        cutoff > 0.0 ? cutoff * cutoff : std::numeric_limits<double>::infinity();

    // Both roles read the target's lanes: `src` is a bitwise replica (see
    // the contract above), and reading one set keeps the aliased
    // self-interaction case trivially safe.
    const auto* const px = tgt.xs();
    const auto* const py = tgt.ys();
    const std::int32_t* const pid = tgt.ids();
    decltype(tgt.charges()) pcpl = nullptr;
    if constexpr (K::kCoupling == Coupling::Charge) pcpl = tgt.charges();
    if constexpr (K::kCoupling == Coupling::Mass) pcpl = tgt.masses();
    double* const tfx = tgt.fxs();
    double* const tfy = tgt.fys();

    constexpr std::size_t kMaxCullTiles = 256;
    const std::size_t ntiles = n == 0 ? 0 : (n + tile - 1) / tile;
    const bool cull = cutoff > 0.0 && n > 0 && ntiles <= kMaxCullTiles;
    double bminx[kMaxCullTiles];
    double bmaxx[kMaxCullTiles];
    double bminy[kMaxCullTiles];
    double bmaxy[kMaxCullTiles];
    if (cull) {
      for (std::size_t b = 0; b < ntiles; ++b) {
        const std::size_t j0 = b * tile;
        const std::size_t len = std::min(tile, n - j0);
        double mnx = static_cast<double>(px[j0]);
        double mxx = mnx;
        double mny = static_cast<double>(py[j0]);
        double mxy = mny;
        for (std::size_t t = 1; t < len; ++t) {
          const double x = static_cast<double>(px[j0 + t]);
          const double y = static_cast<double>(py[j0 + t]);
          mnx = std::min(mnx, x);
          mxx = std::max(mxx, x);
          mny = std::min(mny, y);
          mxy = std::max(mxy, y);
        }
        bminx[b] = mnx;
        bmaxx[b] = mxx;
        bminy[b] = mny;
        bmaxy[b] = mxy;
      }
    }
    const auto axis_bound = [](double v, double lo, double hi, double wrap) noexcept {
      const double dlo = v < lo ? lo - v : (v > hi ? v - hi : 0.0);
      if (wrap <= 0.0) return dlo;
      const double dhi = std::max(v < lo ? hi - v : v - lo, hi - lo);
      return std::max(0.0, std::min(dlo, wrap - dhi));
    };

    // Per-target running sums of per-tile partials (the full sweep's
    // accx/accy, but full-length so scattered partials can land anywhere).
    double afx[kMaxHalfBlock];
    double afy[kMaxHalfBlock];
    for (std::size_t i = 0; i < n; ++i) afx[i] = afy[i] = 0.0;

    std::uint64_t examined = 0;
    std::uint64_t within = 0;
    std::uint64_t computed = 0;

    // Same pipeline choice as the full sweep — and because `examined` here
    // counts the same pairs, the ledger can't see it either.
    [[maybe_unused]] bool lane_rows = true;
    if constexpr (LaneBatchedKernel<K>) {
      if constexpr (K::kLanesExact) {
        if (n <= inline_lane_max && !simd::fast_rsqrt()) lane_rows = false;
      }
    }

    // One row's compute pass: lanes j = j0+t for t in [0, len), identical
    // arithmetic to the full sweep's pass 1 / split pass. Two buffer sets
    // let the off-diagonal loop below run two independent rows back to
    // back, overlapping their latency-bound reduction chains.
    double gxa[kTileWidth];
    double gya[kTileWidth];
    double gma[kTileWidth];
    double gxb[kTileWidth];
    double gyb[kTileWidth];
    double gmb[kTileWidth];
    const auto compute_row = [&](std::size_t i, std::size_t j0, std::size_t len, double* gx,
                                 double* gy, double* gm) {
      const double xi = static_cast<double>(px[i]);
      const double yi = static_cast<double>(py[i]);
      const std::int32_t idi = pid[i];
      double ci = 1.0;
      if constexpr (K::kCoupling != Coupling::None) ci = static_cast<double>(pcpl[i]);
      const auto plain_row = [&] {
        for (std::size_t t = 0; t < len; ++t) {
          const std::size_t j = j0 + t;
          double dx = xi - static_cast<double>(px[j]);
          double dy = dimy * (yi - static_cast<double>(py[j]));
          dx -= lxs * (static_cast<double>(dx > hx) - static_cast<double>(dx < -hx));
          dy -= lys * (static_cast<double>(dy > hy) - static_cast<double>(dy < -hy));
          const double r2 = dx * dx + dy * dy;
          const double m =
              static_cast<double>(idi != pid[j]) * static_cast<double>(r2 <= cut2);
          const double r2g = r2 + (1.0 - m);
          double cpl = 1.0;
          if constexpr (K::kCoupling != Coupling::None)
            cpl = ci * static_cast<double>(pcpl[j]);
          const double mag = kernel.magnitude(r2g, cpl) * m;
          gx[t] = mag * dx;
          gy[t] = mag * dy;
          gm[t] = m;
        }
      };
      if constexpr (LaneBatchedKernel<K>) {
        if (lane_rows) {
          double r2b[kTileWidth];
          double mg[kTileWidth];
          double cb[kTileWidth];
          for (std::size_t t = 0; t < len; ++t) {
            const std::size_t j = j0 + t;
            double dx = xi - static_cast<double>(px[j]);
            double dy = dimy * (yi - static_cast<double>(py[j]));
            dx -= lxs * (static_cast<double>(dx > hx) - static_cast<double>(dx < -hx));
            dy -= lys * (static_cast<double>(dy > hy) - static_cast<double>(dy < -hy));
            const double r2 = dx * dx + dy * dy;
            const double m =
                static_cast<double>(idi != pid[j]) * static_cast<double>(r2 <= cut2);
            gx[t] = dx;
            gy[t] = dy;
            gm[t] = m;
            r2b[t] = r2 + (1.0 - m);
            if constexpr (K::kCoupling != Coupling::None)
              cb[t] = ci * static_cast<double>(pcpl[j]);
          }
          kernel.magnitude_lanes(r2b, cb, mg, len);
          for (std::size_t t = 0; t < len; ++t) {
            const double mag = mg[t] * gm[t];
            gx[t] *= mag;
            gy[t] *= mag;
          }
        } else {
          plain_row();
        }
      } else {
        plain_row();
      }
      computed += static_cast<std::uint64_t>(len);
    };

    double pax[kTileWidth];
    double pay[kTileWidth];
    for (std::size_t a = 0; a < ntiles; ++a) {
      const std::size_t i0 = a * tile;
      const std::size_t ilen = std::min(tile, n - i0);

      // Diagonal pair (a,a): per-pair partials pax/pay receive, for every
      // target in the tile, exactly the lane sequence the full sweep's
      // in-order reduction adds — scattered -f from earlier rows lands at
      // pax[ii] before row i0+ii runs its own lanes j >= i.
      for (std::size_t ii = 0; ii < ilen; ++ii) pax[ii] = pay[ii] = 0.0;
      for (std::size_t ii = 0; ii < ilen; ++ii) {
        const std::size_t i = i0 + ii;
        const std::int32_t idi = pid[i];
        const std::size_t len = ilen - ii;  // lanes j = i (self) .. tile end
        compute_row(i, i, len, gxa, gya, gma);
        // Ordered row reduction into this target's own partial slot: the
        // in-order lane sequence continues from the scattered -f
        // contributions already sitting in pax[ii].
        for (std::size_t t = 0; t < len; ++t) {
          pax[ii] += gxa[t];
          pay[ii] += gya[t];
        }
        // Elementwise N3L scatter to the later targets. Disjoint slots —
        // hoisting it out of the reduction loop reorders across slots only
        // and never regroups any single target's sum.
        for (std::size_t t = 1; t < len; ++t) {
          pax[ii + t] -= gxa[t];
          pay[ii + t] -= gya[t];
        }
        // Self lane (t == 0) has an id-equal mask: both directed counts
        // are zero, so the uniform 2x accounting stays exact (integer
        // arithmetic; masks are 0.0 or 1.0).
        for (std::size_t t = 0; t < len; ++t) {
          examined += 2u * static_cast<std::uint64_t>(idi != pid[i + t]);
          within += 2u * static_cast<std::uint64_t>(gma[t] != 0.0);
        }
      }
      for (std::size_t ii = 0; ii < ilen; ++ii) {
        afx[i0 + ii] += pax[ii];
        afy[i0 + ii] += pay[ii];
      }

      // Off-diagonal pairs (a, b > a): the A side folds one row-local
      // partial per row; the B side accumulates -f into per-pair partials
      // (ascending row order == the full sweep's source order) and folds
      // them once at pair end.
      for (std::size_t b = a + 1; b < ntiles; ++b) {
        const std::size_t j0 = b * tile;
        const std::size_t jlen = std::min(tile, n - j0);
        for (std::size_t t = 0; t < jlen; ++t) pax[t] = pay[t] = 0.0;

        // True when the row's tile-level cull proves every mask exactly
        // 0.0; such a row only contributes id-compare counts.
        const auto row_culled = [&](std::size_t i) {
          if (!cull) return false;
          const double xi = static_cast<double>(px[i]);
          const double yi = static_cast<double>(py[i]);
          const double bx = axis_bound(xi, bminx[b], bmaxx[b], lxs);
          const double by = dimy != 0.0 ? axis_bound(yi, bminy[b], bmaxy[b], lys) : 0.0;
          return (bx * bx + by * by) * (1.0 - 1e-9) > cut2;
        };
        const auto count_culled_row = [&](std::size_t i) {
          const std::int32_t idi = pid[i];
          for (std::size_t t = 0; t < jlen; ++t)
            examined += 2u * static_cast<std::uint64_t>(idi != pid[j0 + t]);
        };
        // Ordered A-side reduction (the latency-bound chain), then the
        // vectorizable elementwise B-side scatter and integer counting.
        const auto finish_row = [&](std::size_t i, const double* gx, const double* gy,
                                    const double* gm) {
          const std::int32_t idi = pid[i];
          double fxi = 0.0;
          double fyi = 0.0;
          for (std::size_t t = 0; t < jlen; ++t) {
            fxi += gx[t];
            fyi += gy[t];
          }
          for (std::size_t t = 0; t < jlen; ++t) {
            pax[t] -= gx[t];
            pay[t] -= gy[t];
          }
          for (std::size_t t = 0; t < jlen; ++t) {
            examined += 2u * static_cast<std::uint64_t>(idi != pid[j0 + t]);
            within += 2u * static_cast<std::uint64_t>(gm[t] != 0.0);
          }
          afx[i] += fxi;
          afy[i] += fyi;
        };

        // Rows run in PAIRS where possible: two rows' reduction chains are
        // independent, so interleaving them hides the 4-cycle FP-add
        // latency that serializes a single row's in-order sum. Bitwise
        // neutrality: each row's own sums keep their exact lane order, and
        // each pax/pay slot still receives row i's -f before row i+1's
        // (finish_row runs A then B) — only work on disjoint slots and the
        // independent chains overlap.
        std::size_t ii = 0;
        while (ii < ilen) {
          const std::size_t i = i0 + ii;
          if (row_culled(i)) {
            count_culled_row(i);
            ++ii;
            continue;
          }
          if (ii + 1 < ilen && !row_culled(i + 1)) {
            compute_row(i, j0, jlen, gxa, gya, gma);
            compute_row(i + 1, j0, jlen, gxb, gyb, gmb);
            const std::int32_t ida = pid[i];
            const std::int32_t idb = pid[i + 1];
            double fxa = 0.0;
            double fya = 0.0;
            double fxb = 0.0;
            double fyb = 0.0;
            for (std::size_t t = 0; t < jlen; ++t) {
              fxa += gxa[t];
              fya += gya[t];
              fxb += gxb[t];
              fyb += gyb[t];
            }
            for (std::size_t t = 0; t < jlen; ++t) {
              // Per slot: row i's contribution first, then row i+1's —
              // the same per-slot order the row-at-a-time loop produced.
              pax[t] -= gxa[t];
              pax[t] -= gxb[t];
              pay[t] -= gya[t];
              pay[t] -= gyb[t];
            }
            for (std::size_t t = 0; t < jlen; ++t) {
              examined += 2u * static_cast<std::uint64_t>(ida != pid[j0 + t]);
              examined += 2u * static_cast<std::uint64_t>(idb != pid[j0 + t]);
              within += 2u * static_cast<std::uint64_t>(gma[t] != 0.0);
              within += 2u * static_cast<std::uint64_t>(gmb[t] != 0.0);
            }
            afx[i] += fxa;
            afy[i] += fya;
            afx[i + 1] += fxb;
            afy[i + 1] += fyb;
            ii += 2;
            continue;
          }
          compute_row(i, j0, jlen, gxa, gya, gma);
          finish_row(i, gxa, gya, gma);
          ++ii;
        }
        for (std::size_t t = 0; t < jlen; ++t) {
          afx[j0 + t] += pax[t];
          afy[j0 + t] += pay[t];
        }
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      if constexpr (std::is_same_v<std::remove_cv_t<TgtT>, SoaBlock>) {
        tfx[i] =
            static_cast<double>(static_cast<float>(tfx[i]) + static_cast<float>(afx[i]));
        tfy[i] =
            static_cast<double>(static_cast<float>(tfy[i]) + static_cast<float>(afy[i]));
      } else {
        tfx[i] += afx[i];
        tfy[i] += afy[i];
      }
    }
    return {examined, within, computed, /*half_sweep=*/true};
  }
};

/// Host-side sweep tuning knobs, threaded from the policy configuration
/// (and ultimately the HostTuner / CLI) down to the batched engine. All
/// knobs change host execution only — never `examined` or anything else
/// the virtual cost model sees.
struct SweepTuning {
  bool half_sweep = true;                          ///< N3L path for self-interactions
  std::size_t tile = BatchedEngine::kTileWidth;    ///< source-tile width
  /// Inline-vs-lane pipeline threshold for exact-lane kernels (see
  /// BatchedEngine::kInlineLaneMax). The default is the seeded table value
  /// that fixes the PR 6 small-block regression without a calibration run.
  std::size_t inline_lane_max = BatchedEngine::kInlineLaneMax;
};

/// Scalar block-block sweep over resident SoA lanes: pair-for-pair the same
/// traversal order, branch structure, and min-image arithmetic as the AoS
/// particles::accumulate_forces, with the per-target double accumulation
/// landing in the block's double force lanes.
template <ForceKernel K>
InteractionCount accumulate_forces_scalar(SoaBlock& tgt, const SoaBlock& src, const Box& box,
                                          const K& kernel, double cutoff = 0.0) {
  InteractionCount count;
  const double cutoff2 = cutoff > 0.0 ? cutoff * cutoff : 0.0;
  const bool periodic = box.boundary == Boundary::Periodic;
  const bool two_d = box.dims == 2;
  const std::size_t nt = tgt.size();
  const std::size_t ns = src.size();
  for (std::size_t i = 0; i < nt; ++i) {
    const double xi = static_cast<double>(tgt.px[i]);
    const double yi = two_d ? static_cast<double>(tgt.py[i]) : 0.0;
    const std::int32_t idi = tgt.id[i];
    double ax = 0.0;
    double ay = 0.0;
    for (std::size_t j = 0; j < ns; ++j) {
      if (idi == src.id[j]) continue;
      ++count.examined;
      double dx = xi - static_cast<double>(src.px[j]);
      double dy = two_d ? yi - static_cast<double>(src.py[j]) : 0.0;
      if (periodic) {
        if (dx > 0.5 * box.lx)
          dx -= box.lx;
        else if (dx < -0.5 * box.lx)
          dx += box.lx;
        if (two_d) {
          if (dy > 0.5 * box.ly)
            dy -= box.ly;
          else if (dy < -0.5 * box.ly)
            dy += box.ly;
        }
      }
      const double r2 = dx * dx + dy * dy;
      if (cutoff2 > 0.0 && r2 > cutoff2) continue;
      ++count.within_cutoff;
      ++count.computed;
      const double mag = kernel.magnitude(r2, lane_coupling<K>(tgt, i, src, j));
      ax += mag * dx;
      ay += mag * dy;
    }
    // Float fold per target, as the AoS loop's `t.fx += float(ax)` (see the
    // precision invariant in the header comment).
    tgt.fx[i] = static_cast<double>(static_cast<float>(tgt.fx[i]) + static_cast<float>(ax));
    tgt.fy[i] = static_cast<double>(static_cast<float>(tgt.fy[i]) + static_cast<float>(ay));
  }
  return count;
}

/// Engine-dispatched resident block-block interaction: the entry point the
/// policy layer calls. No gather, no scatter — both operands are already
/// lanes, and forces accumulate in place. `same_block` marks the visitor as
/// a bitwise replica of the resident (or the resident itself): the batched
/// engine then takes the N3L half-sweep when the tuning allows it.
template <ForceKernel K>
InteractionCount interact_blocks(KernelEngine engine, SoaBlock& resident,
                                 const SoaBlock& visitor, const Box& box, const K& kernel,
                                 double cutoff = 0.0, bool same_block = false,
                                 const SweepTuning& tuning = {}) {
  if (engine == KernelEngine::Batched) {
    if (same_block && tuning.half_sweep)
      return BatchedEngine::sweep_self(resident, visitor, box, kernel, cutoff, tuning.tile,
                                       tuning.inline_lane_max);
    return BatchedEngine::sweep(resident, visitor, box, kernel, cutoff, tuning.tile,
                                tuning.inline_lane_max);
  }
  return accumulate_forces_scalar(resident, visitor, box, kernel, cutoff);
}

/// Batched counterpart of particles::accumulate_forces for AoS spans (the
/// serial reference and engine-parity tests): packs both spans into tiles,
/// sweeps, and scatters the target forces back (one float store each). Pass
/// a SweepScratch to reuse tile capacity across calls; without one the
/// tiles are per-call locals.
template <ForceKernel K>
InteractionCount accumulate_forces_batched(std::span<Particle> targets,
                                           std::span<const Particle> sources, const Box& box,
                                           const K& kernel, double cutoff = 0.0,
                                           SweepScratch* scratch = nullptr,
                                           const SweepTuning& tuning = {},
                                           ThreadPool* pool = nullptr) {
  SweepScratch local;
  SweepScratch& s = scratch ? *scratch : local;
  s.targets.pack(targets, box);
  // A self sweep (the same span on both sides) packs once and, when the
  // tuning allows it, takes the N3L half-sweep (a serial unit — see
  // sweep_self; full sweeps fan target tiles over the pool).
  const bool self = targets.data() == sources.data() && targets.size() == sources.size();
  if (self) {
    if (tuning.half_sweep) {
      const InteractionCount count = BatchedEngine::sweep_self(
          s.targets, s.targets, box, kernel, cutoff, tuning.tile, tuning.inline_lane_max);
      s.targets.scatter_add_forces(targets);
      return count;
    }
    const InteractionCount count =
        BatchedEngine::sweep(s.targets, s.targets, box, kernel, cutoff, tuning.tile,
                             tuning.inline_lane_max, pool);
    s.targets.scatter_add_forces(targets);
    return count;
  }
  s.sources.pack(sources, box);
  const InteractionCount count =
      BatchedEngine::sweep(s.targets, s.sources, box, kernel, cutoff, tuning.tile,
                           tuning.inline_lane_max, pool);
  s.targets.scatter_add_forces(targets);
  return count;
}

/// Engine-dispatched span sweep (serial reference, benches, parity tests).
template <ForceKernel K>
InteractionCount accumulate_forces_with(KernelEngine engine, std::span<Particle> targets,
                                        std::span<const Particle> sources, const Box& box,
                                        const K& kernel, double cutoff = 0.0,
                                        SweepScratch* scratch = nullptr,
                                        const SweepTuning& tuning = {},
                                        ThreadPool* pool = nullptr) {
  if (engine == KernelEngine::Batched)
    return accumulate_forces_batched(targets, sources, box, kernel, cutoff, scratch, tuning,
                                     pool);
  return accumulate_forces(targets, sources, box, kernel, cutoff);
}

}  // namespace canb::particles
