// The batched kernel engine: SoA-tiled, branch-minimized force sweeps.
//
// Host time vs virtual time: everything in this file changes only how fast
// the *host* executes a block-block interaction. The α-β-γ ledger is charged
// from the returned InteractionCount, so both engines must agree on
// `examined`/`within_cutoff` exactly (bitwise) — tests enforce this. The
// scalar path (particles::accumulate_forces) stays the exactness reference.
//
// Inner-loop shape (the part compilers can vectorize):
//  * sources live in a SoaTile and are swept in cache-resident tiles of
//    kTileWidth lanes;
//  * the minimum-image correction, self-pair test, and cutoff test are all
//    arithmetic masks (compares producing 0.0/1.0), not branches;
//  * masked-out lanes get their r2 pushed away from the singularity
//    (r2 + 1.0) so every kernel magnitude stays finite, then the magnitude
//    is multiplied by the mask — adding an exact 0.0 to the accumulator;
//  * per-target accumulation runs in double and in source order, so active
//    pairs produce the same sums as the scalar engine;
//  * one float store per target happens at scatter time.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <string>

#include "particles/kernels.hpp"
#include "particles/soa_tile.hpp"

namespace canb::particles {

/// Selects the host-side implementation of the block-block force sweep.
/// Scalar is the original AoS loop (the exactness reference); Batched is the
/// SoA tiled engine. Virtual-time results are identical by construction.
enum class KernelEngine { Scalar, Batched };

const char* engine_name(KernelEngine e) noexcept;

/// Parses "scalar" | "batched" (raises PreconditionError otherwise).
KernelEngine parse_engine(const std::string& name);

class BatchedEngine {
 public:
  /// Source lanes processed per tile: 3 double scratch buffers + 5 source
  /// lanes at this width stay comfortably inside L1.
  static constexpr std::size_t kTileWidth = 128;

  /// Runs the tiled sweep of `src` against `tgt`, accumulating into the
  /// tile's double fx/fy lanes. Pair semantics match the scalar engine:
  /// same-id pairs are skipped, every other pair is examined, and only
  /// pairs within the cutoff (all of them when cutoff <= 0) contribute.
  template <ForceKernel K>
  static InteractionCount sweep(SoaTile& tgt, const SoaTile& src, const Box& box,
                                const K& kernel, double cutoff) {
    const std::size_t nt = tgt.size();
    const std::size_t ns = src.size();
    const bool periodic = box.boundary == Boundary::Periodic;
    // Reflective boxes zero the wrap length, turning the minimum-image
    // correction into an exact no-op without a per-pair branch.
    const double lxs = periodic ? box.lx : 0.0;
    const double lys = periodic && box.dims == 2 ? box.ly : 0.0;
    const double hx = 0.5 * box.lx;
    const double hy = 0.5 * box.ly;
    const double cut2 =
        cutoff > 0.0 ? cutoff * cutoff : std::numeric_limits<double>::infinity();

    const double* const sx = src.x.data();
    const double* const sy = src.y.data();
    const std::int32_t* const sid = src.id.data();
    const double* scpl = nullptr;
    if constexpr (K::kCoupling == Coupling::Charge) scpl = src.charge.data();
    if constexpr (K::kCoupling == Coupling::Mass) scpl = src.mass.data();

    double examined = 0.0;
    double within = 0.0;
    for (std::size_t j0 = 0; j0 < ns; j0 += kTileWidth) {
      const std::size_t len = std::min(kTileWidth, ns - j0);
      for (std::size_t i = 0; i < nt; ++i) {
        const double xi = tgt.x[i];
        const double yi = tgt.y[i];
        const std::int32_t idi = tgt.id[i];
        double ci = 1.0;
        if constexpr (K::kCoupling == Coupling::Charge) ci = tgt.charge[i];
        if constexpr (K::kCoupling == Coupling::Mass) ci = tgt.mass[i];

        double gx[kTileWidth];
        double gy[kTileWidth];
        double gm[kTileWidth];
        if constexpr (LaneBatchedKernel<K>) {
          // Kernels with a libm call in `magnitude` (exp) get a split pass:
          // geometry and masks into buffers (vectorizable), the kernel's own
          // lane loop (which hoists the libm call so it doesn't clobber the
          // vector registers mid-loop), then a vectorizable combine. Masked
          // lanes still evaluate at r2g >= 1 and multiply to an exact 0.0.
          double r2b[kTileWidth];
          double mg[kTileWidth];
          double cb[kTileWidth];
          for (std::size_t t = 0; t < len; ++t) {
            const std::size_t j = j0 + t;
            double dx = xi - sx[j];
            double dy = yi - sy[j];
            dx -= lxs * (static_cast<double>(dx > hx) - static_cast<double>(dx < -hx));
            dy -= lys * (static_cast<double>(dy > hy) - static_cast<double>(dy < -hy));
            const double r2 = dx * dx + dy * dy;
            const double m =
                static_cast<double>(idi != sid[j]) * static_cast<double>(r2 <= cut2);
            gx[t] = dx;
            gy[t] = dy;
            gm[t] = m;
            r2b[t] = r2 + (1.0 - m);
            if constexpr (K::kCoupling != Coupling::None) cb[t] = ci * scpl[j];
          }
          kernel.magnitude_lanes(r2b, cb, mg, len);
          for (std::size_t t = 0; t < len; ++t) {
            const double mag = mg[t] * gm[t];
            gx[t] *= mag;
            gy[t] *= mag;
          }
        } else {
          // Pass 1: independent lanes, no cross-iteration state — this is
          // the loop the auto-vectorizer packs.
          for (std::size_t t = 0; t < len; ++t) {
            const std::size_t j = j0 + t;
            double dx = xi - sx[j];
            double dy = yi - sy[j];
            dx -= lxs * (static_cast<double>(dx > hx) - static_cast<double>(dx < -hx));
            dy -= lys * (static_cast<double>(dy > hy) - static_cast<double>(dy < -hy));
            const double r2 = dx * dx + dy * dy;
            const double m =
                static_cast<double>(idi != sid[j]) * static_cast<double>(r2 <= cut2);
            const double r2g = r2 + (1.0 - m);
            double cpl = 1.0;
            if constexpr (K::kCoupling != Coupling::None) cpl = ci * scpl[j];
            const double mag = kernel.magnitude(r2g, cpl) * m;
            gx[t] = mag * dx;
            gy[t] = mag * dy;
            gm[t] = m;
          }
        }
        // Pass 2: in-order reduction, matching the scalar engine's
        // source-order accumulation (masked lanes add an exact 0.0).
        double fxi = 0.0;
        double fyi = 0.0;
        for (std::size_t t = 0; t < len; ++t) {
          fxi += gx[t];
          fyi += gy[t];
          within += gm[t];
          examined += static_cast<double>(idi != sid[j0 + t]);
        }
        tgt.fx[i] += fxi;
        tgt.fy[i] += fyi;
      }
    }
    return {static_cast<std::uint64_t>(examined), static_cast<std::uint64_t>(within)};
  }
};

/// Drop-in batched counterpart of particles::accumulate_forces: packs both
/// spans into thread-local tiles, sweeps, and scatters the target forces
/// back (one float store each). Thread-local scratch keeps this safe under
/// the engines' host thread pools without per-call allocation.
template <ForceKernel K>
InteractionCount accumulate_forces_batched(std::span<Particle> targets,
                                           std::span<const Particle> sources, const Box& box,
                                           const K& kernel, double cutoff = 0.0) {
  thread_local SoaTile tgt;
  thread_local SoaTile src;
  tgt.pack(targets, box);
  src.pack(sources, box);
  const InteractionCount count = BatchedEngine::sweep(tgt, src, box, kernel, cutoff);
  tgt.scatter_add_forces(targets);
  return count;
}

/// Engine-dispatched block-block sweep (the single entry point the policy
/// layer, the serial reference, and benches call).
template <ForceKernel K>
InteractionCount accumulate_forces_with(KernelEngine engine, std::span<Particle> targets,
                                        std::span<const Particle> sources, const Box& box,
                                        const K& kernel, double cutoff = 0.0) {
  if (engine == KernelEngine::Batched)
    return accumulate_forces_batched(targets, sources, box, kernel, cutoff);
  return accumulate_forces(targets, sources, box, kernel, cutoff);
}

}  // namespace canb::particles
