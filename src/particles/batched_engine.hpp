// The batched kernel engine: SoA-tiled, branch-minimized force sweeps.
//
// Host time vs virtual time: everything in this file changes only how fast
// the *host* executes a block-block interaction. The α-β-γ ledger is charged
// from the returned InteractionCount, so both engines must agree on
// `examined`/`within_cutoff` exactly (bitwise) — tests enforce this. The
// scalar path stays the exactness reference.
//
// The sweep is generic over its operand layout: resident SoaBlocks (float
// lanes, promoted to double per load — an exact conversion the vectorizer
// folds into the loads) and gathered SoaTiles (double lanes) share one
// implementation, so the resident pipeline pays zero pack/scatter while the
// cell-list path still gathers neighborhoods into tiles by index list.
//
// Inner-loop shape (the part compilers can vectorize):
//  * sources are swept in cache-resident tiles of kTileWidth lanes;
//  * the minimum-image correction, self-pair test, and cutoff test are all
//    arithmetic masks (compares producing 0.0/1.0), not branches;
//  * masked-out lanes get their r2 pushed away from the singularity
//    (r2 + 1.0) so every kernel magnitude stays finite, then the magnitude
//    is multiplied by the mask — adding an exact 0.0 to the accumulator;
//  * per-target accumulation runs in double and in source order, so active
//    pairs produce the same sums as the scalar engine;
//  * one store per target into the operand's force lanes.
//
// Force-lane precision invariant: resident SoaBlock force lanes hold
// float-representable values at every phase boundary. Sweeps accumulate in
// double *within* a call and fold the call's total through float on store —
// exactly where the AoS pipeline stored to a float field. This keeps
// trajectories (and therefore every position-dependent real-policy ledger
// charge, e.g. re-assignment bytes) bitwise identical to the wire-format
// pipeline, and makes the 52-byte serialization lossless at any time.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <type_traits>

#include "particles/kernels.hpp"
#include "particles/soa_block.hpp"
#include "particles/soa_tile.hpp"

namespace canb::particles {

/// Selects the host-side implementation of the block-block force sweep.
/// Scalar is the original pairwise loop (the exactness reference); Batched
/// is the SoA tiled engine. Virtual-time results are identical by
/// construction.
enum class KernelEngine { Scalar, Batched };

const char* engine_name(KernelEngine e) noexcept;

/// Parses "scalar" | "batched" (raises PreconditionError otherwise).
KernelEngine parse_engine(const std::string& name);

/// Caller-owned scratch tiles for the span-based sweep paths (the serial
/// reference, benches, and the cell-list neighborhood gathers). Owning the
/// scratch at the call site bounds its lifetime to the simulation using it —
/// the previous thread_local tiles retained peak capacity per thread for the
/// process lifetime across unrelated simulations.
struct SweepScratch {
  SoaTile targets;
  SoaTile sources;
};

/// The coupling factor for a lane pair (same promotion as pair_coupling:
/// each float lane widens to double before the product).
template <class K, class TgtT, class SrcT>
inline double lane_coupling(const TgtT& a, std::size_t i, const SrcT& b, std::size_t j) noexcept {
  if constexpr (K::kCoupling == Coupling::Charge)
    return static_cast<double>(a.charges()[i]) * static_cast<double>(b.charges()[j]);
  else if constexpr (K::kCoupling == Coupling::Mass)
    return static_cast<double>(a.masses()[i]) * static_cast<double>(b.masses()[j]);
  else
    return 1.0;
}

class BatchedEngine {
 public:
  /// Source lanes processed per tile: 3 double scratch buffers + 5 source
  /// lanes at this width stay comfortably inside L1.
  static constexpr std::size_t kTileWidth = 128;

  /// Runs the tiled sweep of `src` against `tgt`, accumulating into the
  /// target's double fx/fy lanes. Operands are anything exposing the shared
  /// lane accessors (SoaBlock, SoaTile). Pair semantics match the scalar
  /// engine: same-id pairs are skipped, every other pair is examined, and
  /// only pairs within the cutoff (all of them when cutoff <= 0) contribute.
  template <ForceKernel K, class TgtT, class SrcT>
  static InteractionCount sweep(TgtT& tgt, const SrcT& src, const Box& box, const K& kernel,
                                double cutoff) {
    const std::size_t nt = tgt.size();
    const std::size_t ns = src.size();
    const bool periodic = box.boundary == Boundary::Periodic;
    // Reflective boxes zero the wrap length, turning the minimum-image
    // correction into an exact no-op without a per-pair branch; 1D boxes
    // zero the y displacement the same way (multiply by 0.0).
    const double lxs = periodic ? box.lx : 0.0;
    const double lys = periodic && box.dims == 2 ? box.ly : 0.0;
    const double dimy = box.dims == 2 ? 1.0 : 0.0;
    const double hx = 0.5 * box.lx;
    const double hy = 0.5 * box.ly;
    const double cut2 =
        cutoff > 0.0 ? cutoff * cutoff : std::numeric_limits<double>::infinity();

    const auto* const sx = src.xs();
    const auto* const sy = src.ys();
    const std::int32_t* const sid = src.ids();
    decltype(src.charges()) scpl = nullptr;
    if constexpr (K::kCoupling == Coupling::Charge) scpl = src.charges();
    if constexpr (K::kCoupling == Coupling::Mass) scpl = src.masses();

    const auto* const tx = tgt.xs();
    const auto* const ty = tgt.ys();
    const std::int32_t* const tid = tgt.ids();
    double* const tfx = tgt.fxs();
    double* const tfy = tgt.fys();

    // Source-tile bounding boxes for the cutoff cull below. A culled tile is
    // one where a conservative lower bound on the min-image distance from
    // the target to the tile's bbox already exceeds the cutoff: every lane's
    // mask would be 0.0 and its force contribution an exact ±0.0, so
    // skipping the tile leaves force sums bitwise unchanged (a sum that
    // starts at +0.0 is unaffected by adding signed zeros). `within` gains
    // nothing and `examined` only needs the id compares, so the ledger is
    // bitwise identical too — the cull elides only sqrt/divide work.
    constexpr std::size_t kMaxCullTiles = 256;
    const std::size_t ntiles = (ns + kTileWidth - 1) / kTileWidth;
    const bool cull = cutoff > 0.0 && ns > 0 && ntiles <= kMaxCullTiles;
    double bminx[kMaxCullTiles];
    double bmaxx[kMaxCullTiles];
    double bminy[kMaxCullTiles];
    double bmaxy[kMaxCullTiles];
    if (cull) {
      for (std::size_t b = 0; b < ntiles; ++b) {
        const std::size_t j0 = b * kTileWidth;
        const std::size_t len = std::min(kTileWidth, ns - j0);
        double mnx = static_cast<double>(sx[j0]);
        double mxx = mnx;
        double mny = static_cast<double>(sy[j0]);
        double mxy = mny;
        for (std::size_t t = 1; t < len; ++t) {
          const double x = static_cast<double>(sx[j0 + t]);
          const double y = static_cast<double>(sy[j0 + t]);
          mnx = std::min(mnx, x);
          mxx = std::max(mxx, x);
          mny = std::min(mny, y);
          mxy = std::max(mxy, y);
        }
        bminx[b] = mnx;
        bmaxx[b] = mxx;
        bminy[b] = mny;
        bmaxy[b] = mxy;
      }
    }
    // Lower bound on the min-image |d| from point v to interval [lo, hi]:
    // direct distance when reflective; under wrap, min-image(|diff|) >=
    // min(d_lo, L - d_hi) for |diff| in [d_lo, d_hi] (clamped at 0).
    const auto axis_bound = [](double v, double lo, double hi, double wrap) noexcept {
      const double dlo = v < lo ? lo - v : (v > hi ? v - hi : 0.0);
      if (wrap <= 0.0) return dlo;
      const double dhi = std::max(v < lo ? hi - v : v - lo, hi - lo);
      return std::max(0.0, std::min(dlo, wrap - dhi));
    };

    double examined = 0.0;
    double within = 0.0;
    // Doubly tiled: targets advance in stack-accumulated chunks, source
    // tiles run innermost so one tile stays L1-hot across the whole chunk.
    // Each target still forms per-source-tile partial sums from zero and
    // adds them in tile order — the same grouping a zeroed gather tile
    // produced — so the single store per target below can fold the call's
    // contribution at the right precision for the operand.
    for (std::size_t i0 = 0; i0 < nt; i0 += kTileWidth) {
      const std::size_t ilen = std::min(kTileWidth, nt - i0);
      double accx[kTileWidth];
      double accy[kTileWidth];
      for (std::size_t ii = 0; ii < ilen; ++ii) accx[ii] = accy[ii] = 0.0;
      for (std::size_t j0 = 0; j0 < ns; j0 += kTileWidth) {
        const std::size_t len = std::min(kTileWidth, ns - j0);
        for (std::size_t ii = 0; ii < ilen; ++ii) {
          const std::size_t i = i0 + ii;
          const double xi = static_cast<double>(tx[i]);
          const double yi = static_cast<double>(ty[i]);
          const std::int32_t idi = tid[i];
          if (cull) {
            const std::size_t b = j0 / kTileWidth;
            const double bx = axis_bound(xi, bminx[b], bmaxx[b], lxs);
            const double by =
                dimy != 0.0 ? axis_bound(yi, bminy[b], bmaxy[b], lys) : 0.0;
            // The (1 - 1e-9) slack absorbs the few-ulp rounding in the
            // bound itself; a tile is only culled when provably out of
            // range, so the per-pair masks it skips were all exactly 0.0.
            if ((bx * bx + by * by) * (1.0 - 1e-9) > cut2) {
              for (std::size_t t = 0; t < len; ++t)
                examined += static_cast<double>(idi != sid[j0 + t]);
              continue;
            }
          }
          double ci = 1.0;
          if constexpr (K::kCoupling == Coupling::Charge)
            ci = static_cast<double>(tgt.charges()[i]);
          if constexpr (K::kCoupling == Coupling::Mass)
            ci = static_cast<double>(tgt.masses()[i]);
          double gx[kTileWidth];
          double gy[kTileWidth];
          double gm[kTileWidth];
          if constexpr (LaneBatchedKernel<K>) {
            // Kernels with a libm call in `magnitude` (exp) get a split
            // pass: geometry and masks into buffers (vectorizable), the
            // kernel's own lane loop (which hoists the libm call so it
            // doesn't clobber the vector registers mid-loop), then a
            // vectorizable combine. Masked lanes still evaluate at
            // r2g >= 1 and multiply to an exact 0.0.
            double r2b[kTileWidth];
            double mg[kTileWidth];
            double cb[kTileWidth];
            for (std::size_t t = 0; t < len; ++t) {
              const std::size_t j = j0 + t;
              double dx = xi - static_cast<double>(sx[j]);
              double dy = dimy * (yi - static_cast<double>(sy[j]));
              dx -= lxs * (static_cast<double>(dx > hx) - static_cast<double>(dx < -hx));
              dy -= lys * (static_cast<double>(dy > hy) - static_cast<double>(dy < -hy));
              const double r2 = dx * dx + dy * dy;
              const double m =
                  static_cast<double>(idi != sid[j]) * static_cast<double>(r2 <= cut2);
              gx[t] = dx;
              gy[t] = dy;
              gm[t] = m;
              r2b[t] = r2 + (1.0 - m);
              if constexpr (K::kCoupling != Coupling::None)
                cb[t] = ci * static_cast<double>(scpl[j]);
            }
            kernel.magnitude_lanes(r2b, cb, mg, len);
            for (std::size_t t = 0; t < len; ++t) {
              const double mag = mg[t] * gm[t];
              gx[t] *= mag;
              gy[t] *= mag;
            }
          } else {
            // Pass 1: independent lanes, no cross-iteration state — this
            // is the loop the auto-vectorizer packs.
            for (std::size_t t = 0; t < len; ++t) {
              const std::size_t j = j0 + t;
              double dx = xi - static_cast<double>(sx[j]);
              double dy = dimy * (yi - static_cast<double>(sy[j]));
              dx -= lxs * (static_cast<double>(dx > hx) - static_cast<double>(dx < -hx));
              dy -= lys * (static_cast<double>(dy > hy) - static_cast<double>(dy < -hy));
              const double r2 = dx * dx + dy * dy;
              const double m =
                  static_cast<double>(idi != sid[j]) * static_cast<double>(r2 <= cut2);
              const double r2g = r2 + (1.0 - m);
              double cpl = 1.0;
              if constexpr (K::kCoupling != Coupling::None)
                cpl = ci * static_cast<double>(scpl[j]);
              const double mag = kernel.magnitude(r2g, cpl) * m;
              gx[t] = mag * dx;
              gy[t] = mag * dy;
              gm[t] = m;
            }
          }
          // Pass 2: in-order reduction, matching the scalar engine's
          // source-order accumulation (masked lanes add an exact 0.0).
          double fxi = 0.0;
          double fyi = 0.0;
          for (std::size_t t = 0; t < len; ++t) {
            fxi += gx[t];
            fyi += gy[t];
            within += gm[t];
            examined += static_cast<double>(idi != sid[j0 + t]);
          }
          accx[ii] += fxi;
          accy[ii] += fyi;
        }
      }
      for (std::size_t ii = 0; ii < ilen; ++ii) {
        const std::size_t i = i0 + ii;
        if constexpr (std::is_same_v<std::remove_cv_t<TgtT>, SoaBlock>) {
          // Resident lanes: fold through float, where the AoS pipeline did
          // `p.fx += float(total)` at scatter (see the precision invariant
          // in the header comment).
          tfx[i] =
              static_cast<double>(static_cast<float>(tfx[i]) + static_cast<float>(accx[ii]));
          tfy[i] =
              static_cast<double>(static_cast<float>(tfy[i]) + static_cast<float>(accy[ii]));
        } else {
          // Gather tiles round at scatter_add_forces, not here.
          tfx[i] += accx[ii];
          tfy[i] += accy[ii];
        }
      }
    }
    return {static_cast<std::uint64_t>(examined), static_cast<std::uint64_t>(within)};
  }
};

/// Scalar block-block sweep over resident SoA lanes: pair-for-pair the same
/// traversal order, branch structure, and min-image arithmetic as the AoS
/// particles::accumulate_forces, with the per-target double accumulation
/// landing in the block's double force lanes.
template <ForceKernel K>
InteractionCount accumulate_forces_scalar(SoaBlock& tgt, const SoaBlock& src, const Box& box,
                                          const K& kernel, double cutoff = 0.0) {
  InteractionCount count;
  const double cutoff2 = cutoff > 0.0 ? cutoff * cutoff : 0.0;
  const bool periodic = box.boundary == Boundary::Periodic;
  const bool two_d = box.dims == 2;
  const std::size_t nt = tgt.size();
  const std::size_t ns = src.size();
  for (std::size_t i = 0; i < nt; ++i) {
    const double xi = static_cast<double>(tgt.px[i]);
    const double yi = two_d ? static_cast<double>(tgt.py[i]) : 0.0;
    const std::int32_t idi = tgt.id[i];
    double ax = 0.0;
    double ay = 0.0;
    for (std::size_t j = 0; j < ns; ++j) {
      if (idi == src.id[j]) continue;
      ++count.examined;
      double dx = xi - static_cast<double>(src.px[j]);
      double dy = two_d ? yi - static_cast<double>(src.py[j]) : 0.0;
      if (periodic) {
        if (dx > 0.5 * box.lx)
          dx -= box.lx;
        else if (dx < -0.5 * box.lx)
          dx += box.lx;
        if (two_d) {
          if (dy > 0.5 * box.ly)
            dy -= box.ly;
          else if (dy < -0.5 * box.ly)
            dy += box.ly;
        }
      }
      const double r2 = dx * dx + dy * dy;
      if (cutoff2 > 0.0 && r2 > cutoff2) continue;
      ++count.within_cutoff;
      const double mag = kernel.magnitude(r2, lane_coupling<K>(tgt, i, src, j));
      ax += mag * dx;
      ay += mag * dy;
    }
    // Float fold per target, as the AoS loop's `t.fx += float(ax)` (see the
    // precision invariant in the header comment).
    tgt.fx[i] = static_cast<double>(static_cast<float>(tgt.fx[i]) + static_cast<float>(ax));
    tgt.fy[i] = static_cast<double>(static_cast<float>(tgt.fy[i]) + static_cast<float>(ay));
  }
  return count;
}

/// Engine-dispatched resident block-block interaction: the entry point the
/// policy layer calls. No gather, no scatter — both operands are already
/// lanes, and forces accumulate in place.
template <ForceKernel K>
InteractionCount interact_blocks(KernelEngine engine, SoaBlock& resident,
                                 const SoaBlock& visitor, const Box& box, const K& kernel,
                                 double cutoff = 0.0) {
  if (engine == KernelEngine::Batched)
    return BatchedEngine::sweep(resident, visitor, box, kernel, cutoff);
  return accumulate_forces_scalar(resident, visitor, box, kernel, cutoff);
}

/// Batched counterpart of particles::accumulate_forces for AoS spans (the
/// serial reference and engine-parity tests): packs both spans into tiles,
/// sweeps, and scatters the target forces back (one float store each). Pass
/// a SweepScratch to reuse tile capacity across calls; without one the
/// tiles are per-call locals.
template <ForceKernel K>
InteractionCount accumulate_forces_batched(std::span<Particle> targets,
                                           std::span<const Particle> sources, const Box& box,
                                           const K& kernel, double cutoff = 0.0,
                                           SweepScratch* scratch = nullptr) {
  SweepScratch local;
  SweepScratch& s = scratch ? *scratch : local;
  s.targets.pack(targets, box);
  s.sources.pack(sources, box);
  const InteractionCount count =
      BatchedEngine::sweep(s.targets, s.sources, box, kernel, cutoff);
  s.targets.scatter_add_forces(targets);
  return count;
}

/// Engine-dispatched span sweep (serial reference, benches, parity tests).
template <ForceKernel K>
InteractionCount accumulate_forces_with(KernelEngine engine, std::span<Particle> targets,
                                        std::span<const Particle> sources, const Box& box,
                                        const K& kernel, double cutoff = 0.0,
                                        SweepScratch* scratch = nullptr) {
  if (engine == KernelEngine::Batched)
    return accumulate_forces_batched(targets, sources, box, kernel, cutoff, scratch);
  return accumulate_forces(targets, sources, box, kernel, cutoff);
}

}  // namespace canb::particles
