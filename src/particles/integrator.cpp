#include "particles/integrator.hpp"

#include "support/assert.hpp"

namespace canb::particles {

void SymplecticEuler::post_force(std::span<Particle> ps, double dt, const Box& box) const {
  for (auto& p : ps) {
    const double inv_m = 1.0 / static_cast<double>(p.mass);
    p.vx += static_cast<float>(static_cast<double>(p.fx) * inv_m * dt);
    p.vy += static_cast<float>(static_cast<double>(p.fy) * inv_m * dt);
    p.px += static_cast<float>(static_cast<double>(p.vx) * dt);
    p.py += static_cast<float>(static_cast<double>(p.vy) * dt);
    apply_boundary(p, box);
  }
}

void VelocityVerlet::pre_force(std::span<Particle> ps, double dt) const {
  for (auto& p : ps) {
    const double inv_m = 1.0 / static_cast<double>(p.mass);
    // x += v dt + (1/2) a dt^2, using the force from the previous step
    // (stored in fx/fy at entry on steps > 0; zero on the first step).
    p.px += static_cast<float>(static_cast<double>(p.vx) * dt +
                               0.5 * static_cast<double>(p.fx) * inv_m * dt * dt);
    p.py += static_cast<float>(static_cast<double>(p.vy) * dt +
                               0.5 * static_cast<double>(p.fy) * inv_m * dt * dt);
    // Stash the old force for the velocity half-kick in post_force.
    p.aux0 = p.fx;
    p.aux1 = p.fy;
  }
}

void VelocityVerlet::post_force(std::span<Particle> ps, double dt, const Box& box) const {
  for (auto& p : ps) {
    const double inv_m = 1.0 / static_cast<double>(p.mass);
    p.vx += static_cast<float>(0.5 * (static_cast<double>(p.aux0) + static_cast<double>(p.fx)) *
                               inv_m * dt);
    p.vy += static_cast<float>(0.5 * (static_cast<double>(p.aux1) + static_cast<double>(p.fy)) *
                               inv_m * dt);
    apply_boundary(p, box);
  }
}

void Leapfrog::post_force(std::span<Particle> ps, double dt, const Box& box) const {
  for (auto& p : ps) {
    const double inv_m = 1.0 / static_cast<double>(p.mass);
    p.vx += static_cast<float>(static_cast<double>(p.fx) * inv_m * dt);
    p.vy += static_cast<float>(static_cast<double>(p.fy) * inv_m * dt);
    p.px += static_cast<float>(static_cast<double>(p.vx) * dt);
    p.py += static_cast<float>(static_cast<double>(p.vy) * dt);
    apply_boundary(p, box);
  }
}

std::unique_ptr<Integrator> make_integrator(const std::string& name) {
  if (name == "symplectic-euler") return std::make_unique<SymplecticEuler>();
  if (name == "velocity-verlet") return std::make_unique<VelocityVerlet>();
  if (name == "leapfrog") return std::make_unique<Leapfrog>();
  CANB_REQUIRE(false, "unknown integrator: " + name);
  return nullptr;
}

}  // namespace canb::particles
