#include "particles/integrator.hpp"

#include "support/assert.hpp"

namespace canb::particles {

void SymplecticEuler::post_force(std::span<Particle> ps, double dt, const Box& box) const {
  for (auto& p : ps) {
    const double inv_m = 1.0 / static_cast<double>(p.mass);
    p.vx += static_cast<float>(static_cast<double>(p.fx) * inv_m * dt);
    p.vy += static_cast<float>(static_cast<double>(p.fy) * inv_m * dt);
    p.px += static_cast<float>(static_cast<double>(p.vx) * dt);
    p.py += static_cast<float>(static_cast<double>(p.vy) * dt);
    apply_boundary(p, box);
  }
}

void VelocityVerlet::pre_force(std::span<Particle> ps, double dt) const {
  for (auto& p : ps) {
    const double inv_m = 1.0 / static_cast<double>(p.mass);
    // x += v dt + (1/2) a dt^2, using the force from the previous step
    // (stored in fx/fy at entry on steps > 0; zero on the first step).
    p.px += static_cast<float>(static_cast<double>(p.vx) * dt +
                               0.5 * static_cast<double>(p.fx) * inv_m * dt * dt);
    p.py += static_cast<float>(static_cast<double>(p.vy) * dt +
                               0.5 * static_cast<double>(p.fy) * inv_m * dt * dt);
    // Stash the old force for the velocity half-kick in post_force.
    p.aux0 = p.fx;
    p.aux1 = p.fy;
  }
}

void VelocityVerlet::post_force(std::span<Particle> ps, double dt, const Box& box) const {
  for (auto& p : ps) {
    const double inv_m = 1.0 / static_cast<double>(p.mass);
    p.vx += static_cast<float>(0.5 * (static_cast<double>(p.aux0) + static_cast<double>(p.fx)) *
                               inv_m * dt);
    p.vy += static_cast<float>(0.5 * (static_cast<double>(p.aux1) + static_cast<double>(p.fy)) *
                               inv_m * dt);
    apply_boundary(p, box);
  }
}

void Leapfrog::post_force(std::span<Particle> ps, double dt, const Box& box) const {
  for (auto& p : ps) {
    const double inv_m = 1.0 / static_cast<double>(p.mass);
    p.vx += static_cast<float>(static_cast<double>(p.fx) * inv_m * dt);
    p.vy += static_cast<float>(static_cast<double>(p.fy) * inv_m * dt);
    p.px += static_cast<float>(static_cast<double>(p.vx) * dt);
    p.py += static_cast<float>(static_cast<double>(p.vy) * dt);
    apply_boundary(p, box);
  }
}

namespace {

// Shared kick-drift lane loop for SymplecticEuler and Leapfrog (their AoS
// loops are identical too).
void kick_drift_lanes(SoaBlock& ps, double dt, const Box& box) {
  const std::size_t n = ps.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_m = 1.0 / static_cast<double>(ps.mass[i]);
    ps.vx[i] += static_cast<float>(ps.fx[i] * inv_m * dt);
    ps.vy[i] += static_cast<float>(ps.fy[i] * inv_m * dt);
    ps.px[i] += static_cast<float>(static_cast<double>(ps.vx[i]) * dt);
    ps.py[i] += static_cast<float>(static_cast<double>(ps.vy[i]) * dt);
    apply_boundary(ps.px[i], ps.py[i], ps.vx[i], ps.vy[i], box);
  }
}

}  // namespace

void SymplecticEuler::post_force(SoaBlock& ps, double dt, const Box& box) const {
  kick_drift_lanes(ps, dt, box);
}

void VelocityVerlet::pre_force(SoaBlock& ps, double dt) const {
  const std::size_t n = ps.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_m = 1.0 / static_cast<double>(ps.mass[i]);
    ps.px[i] += static_cast<float>(static_cast<double>(ps.vx[i]) * dt +
                                   0.5 * ps.fx[i] * inv_m * dt * dt);
    ps.py[i] += static_cast<float>(static_cast<double>(ps.vy[i]) * dt +
                                   0.5 * ps.fy[i] * inv_m * dt * dt);
    // Stash the old force for the velocity half-kick in post_force. The
    // lanes are float-exact here, so this matches the AoS float stash.
    ps.aux0[i] = ps.fx[i];
    ps.aux1[i] = ps.fy[i];
  }
}

void VelocityVerlet::post_force(SoaBlock& ps, double dt, const Box& box) const {
  const std::size_t n = ps.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_m = 1.0 / static_cast<double>(ps.mass[i]);
    ps.vx[i] += static_cast<float>(0.5 * (ps.aux0[i] + ps.fx[i]) * inv_m * dt);
    ps.vy[i] += static_cast<float>(0.5 * (ps.aux1[i] + ps.fy[i]) * inv_m * dt);
    apply_boundary(ps.px[i], ps.py[i], ps.vx[i], ps.vy[i], box);
  }
}

void Leapfrog::post_force(SoaBlock& ps, double dt, const Box& box) const {
  kick_drift_lanes(ps, dt, box);
}

std::unique_ptr<Integrator> make_integrator(const std::string& name) {
  if (name == "symplectic-euler") return std::make_unique<SymplecticEuler>();
  if (name == "velocity-verlet") return std::make_unique<VelocityVerlet>();
  if (name == "leapfrog") return std::make_unique<Leapfrog>();
  CANB_REQUIRE(false, "unknown integrator: " + name);
  return nullptr;
}

}  // namespace canb::particles
