// Pairwise force kernels.
//
// Kernels are small value types satisfying the ForceKernel concept; the hot
// block-interaction loop is a template so the pair function inlines. All
// kernel arithmetic is double precision; accumulation into the 32-bit force
// fields happens once per pair (matching what a tuned MPI code would do).
//
// The paper's experiment kernel is InverseSquareRepulsion: "the particles
// exert a repulsive force on each other that drops off with the square of
// their distance" (Section III-C). The force need not be symmetric and no
// symmetry optimizations are applied — we follow that.
#pragma once

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <span>

#include "particles/box.hpp"
#include "particles/particle.hpp"
#include "particles/simd/simd.hpp"

namespace canb::particles {

struct PairForce {
  double fx = 0.0;
  double fy = 0.0;
};

/// Shared singularity guard: the smallest squared distance any kernel
/// divides by. Both the scalar and batched engines add this to r^2 before
/// forming 1/r-type terms, so coincident distinct particles stay finite and
/// the two engines agree bitwise on the guarded arithmetic.
inline constexpr double kMinR2 = 1e-12;

/// Which per-particle field pair a kernel couples through. The batched
/// engine uses this to pick the packed lane array (charge, mass, or none)
/// without per-pair branching.
enum class Coupling { None, Charge, Mass };

/// A kernel maps (displacement, squared distance, particles) to the force
/// exerted ON `a` BY `b`, plus a pair potential for energy diagnostics.
///
/// Every kernel is a central force F = magnitude(r2, coupling) * (dx, dy);
/// `magnitude` must be branch-free and finite for any r2 >= 0 (it is the
/// auto-vectorized inner-loop body of the batched engine), and `force`
/// must route through it so the two engines share one arithmetic path.
template <class K>
concept ForceKernel = requires(const K k, const Particle& a, const Particle& b, double d) {
  { k.force(d, d, d, a, b) } -> std::convertible_to<PairForce>;
  { k.potential(d, a, b) } -> std::convertible_to<double>;
  { k.magnitude(d, d) } -> std::convertible_to<double>;
  { K::kCoupling } -> std::convertible_to<Coupling>;
};

/// Kernels whose magnitude dominates the sweep (a libm call, or a pipeline
/// with an explicit SIMD implementation) can additionally provide
/// `magnitude_lanes`, evaluating a whole lane batch at once. The batched
/// engine prefers it when present: a libm call in the middle of the wide
/// masked loop clobbers every caller-saved vector register, spilling all
/// the loop invariants each iteration — hoisting the call into its own
/// tight loop over a scratch buffer avoids that and lets it dispatch to
/// the simd:: backends. Lane arithmetic must match `magnitude` bitwise
/// when the exact simd paths are active (the default); opt-in fast paths
/// (simd::set_fast_rsqrt) may differ within the tolerances documented in
/// simd/simd.hpp.
template <class K>
concept LaneBatchedKernel =
    ForceKernel<K> && requires(const K k, const double* in, double* out, std::size_t n) {
      { k.magnitude_lanes(in, in, out, n) };
    };

namespace detail {
// Thin forwarders into the simd entry points. The batched engine hands
// these partially-filled stack tiles (only the first n lanes are written,
// and only the first n are read); GCC's -Wmaybe-uninitialized cannot see
// through the extern call and misfires, so the suppression lives here, at
// the call site the diagnostic is attributed to.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
inline void inv_cube_forward(const double* r2, const double* cpl, double* out, std::size_t n,
                             double scale, double soft2) noexcept {
  simd::inv_cube_lanes(r2, cpl, out, n, scale, soft2);
}
inline void exp_forward(const double* x, double* out, std::size_t n) noexcept {
  simd::exp_lanes(x, out, n);
}
#pragma GCC diagnostic pop
}  // namespace detail

/// The coupling factor `magnitude` expects for a given pair.
template <class K>
double pair_coupling(const Particle& a, const Particle& b) noexcept {
  if constexpr (K::kCoupling == Coupling::Charge)
    return static_cast<double>(a.charge) * static_cast<double>(b.charge);
  else if constexpr (K::kCoupling == Coupling::Mass)
    return static_cast<double>(a.mass) * static_cast<double>(b.mass);
  else
    return 1.0;
}

/// Repulsive inverse-square force (the paper's kernel):
///   F = strength * charge_a * charge_b / (r^2 + eps^2), directed a <- b.
struct InverseSquareRepulsion {
  double strength = 1.0;
  double softening = 1e-3;  ///< Plummer softening keeps close pairs finite

  static constexpr Coupling kCoupling = Coupling::Charge;
  static constexpr const char* kName = "inverse_square";
  /// magnitude_lanes is bitwise-equal to magnitude (modulo the opt-in fast
  /// rsqrt path), so the engine may freely switch between the inline and
  /// lane pipelines per block size without changing results.
  static constexpr bool kLanesExact = true;

  /// Magnitude c/d2 along the unit vector (dx,dy)/r — i.e. c/d2^{3/2} * d.
  double magnitude(double r2, double coupling) const noexcept {
    const double c = strength * coupling;
    const double d2 = r2 + softening * softening;
    return c / (d2 * std::sqrt(d2));
  }
  /// SIMD-dispatched inverse-cube lanes; bitwise equal to `magnitude` on
  /// every backend unless the opt-in fast rsqrt path is enabled.
  void magnitude_lanes(const double* r2, const double* coupling, double* out,
                       std::size_t n) const noexcept {
    detail::inv_cube_forward(r2, coupling, out, n, strength, softening * softening);
  }
  PairForce force(double dx, double dy, double r2, const Particle& a,
                  const Particle& b) const noexcept {
    const double inv = magnitude(r2, pair_coupling<InverseSquareRepulsion>(a, b));
    return {inv * dx, inv * dy};
  }
  double potential(double r2, const Particle& a, const Particle& b) const noexcept {
    const double c = strength * static_cast<double>(a.charge) * static_cast<double>(b.charge);
    return c / std::sqrt(r2 + softening * softening);
  }
};

/// Newtonian gravity with Plummer softening (attractive).
struct Gravity {
  double g = 1.0;
  double softening = 1e-3;

  static constexpr Coupling kCoupling = Coupling::Mass;
  static constexpr const char* kName = "gravity";
  /// See InverseSquareRepulsion::kLanesExact — same inverse-cube lanes.
  static constexpr bool kLanesExact = true;

  double magnitude(double r2, double coupling) const noexcept {
    const double c = -g * coupling;
    const double d2 = r2 + softening * softening;
    return c / (d2 * std::sqrt(d2));
  }
  /// SIMD-dispatched inverse-cube lanes; bitwise equal to `magnitude` on
  /// every backend unless the opt-in fast rsqrt path is enabled.
  void magnitude_lanes(const double* r2, const double* coupling, double* out,
                       std::size_t n) const noexcept {
    detail::inv_cube_forward(r2, coupling, out, n, -g, softening * softening);
  }
  PairForce force(double dx, double dy, double r2, const Particle& a,
                  const Particle& b) const noexcept {
    const double inv = magnitude(r2, pair_coupling<Gravity>(a, b));
    return {inv * dx, inv * dy};
  }
  double potential(double r2, const Particle& a, const Particle& b) const noexcept {
    return -g * static_cast<double>(a.mass) * static_cast<double>(b.mass) /
           std::sqrt(r2 + softening * softening);
  }
};

/// Truncated-and-shifted Lennard-Jones (the classic MD cutoff kernel).
struct LennardJones {
  double epsilon = 1.0;
  double sigma = 1.0;

  static constexpr Coupling kCoupling = Coupling::None;
  static constexpr const char* kName = "lennard_jones";

  double magnitude(double r2, double /*coupling*/) const noexcept {
    const double r2g = r2 + kMinR2;
    const double s2 = sigma * sigma / r2g;
    const double s6 = s2 * s2 * s2;
    return 24.0 * epsilon * s6 * (2.0 * s6 - 1.0) / r2g;
  }
  PairForce force(double dx, double dy, double r2, const Particle&, const Particle&) const noexcept {
    const double mag = magnitude(r2, 1.0);
    return {mag * dx, mag * dy};
  }
  double potential(double r2, const Particle&, const Particle&) const noexcept {
    const double s2 = sigma * sigma / (r2 + kMinR2);
    const double s6 = s2 * s2 * s2;
    return 4.0 * epsilon * s6 * (s6 - 1.0);
  }
};

/// Screened Coulomb (Yukawa) interaction: exp(-r/lambda)/r^2-type decay,
/// the classic plasma/colloid kernel — naturally paired with a cutoff
/// since the screening makes truncation errors exponentially small.
struct Yukawa {
  double strength = 1.0;
  double screening_length = 0.1;
  double softening = 1e-3;

  static constexpr Coupling kCoupling = Coupling::Charge;
  static constexpr const char* kName = "yukawa";
  /// exp_lanes is ~5e-14 relative vs std::exp, NOT bitwise-equal: the
  /// engine must never switch this kernel between the inline and lane
  /// pipelines at runtime (results would depend on block size).
  static constexpr bool kLanesExact = false;

  /// d/dr [ c e^{-r/L} / r ] gives magnitude c e^{-r/L} (1/r^2 + 1/(L r)).
  double magnitude(double r2, double coupling) const noexcept {
    const double c = strength * coupling;
    const double d2 = r2 + softening * softening;
    const double r = std::sqrt(d2);
    const double screen = std::exp(-r / screening_length);
    return c * screen * (1.0 / d2 + 1.0 / (screening_length * r)) / r;
  }
  /// Lane-batched `magnitude`: same arithmetic, with the exp hoisted into
  /// the SIMD-dispatched exp_lanes (<= 5e-14 relative vs std::exp, the
  /// same on every backend) so it stops serializing the sweep on libm.
  void magnitude_lanes(const double* r2, const double* coupling, double* out,
                       std::size_t n) const noexcept {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = -std::sqrt(r2[i] + softening * softening) / screening_length;
    detail::exp_forward(out, out, n);
    for (std::size_t i = 0; i < n; ++i) {
      const double c = strength * coupling[i];
      const double d2 = r2[i] + softening * softening;
      const double r = std::sqrt(d2);
      out[i] = c * out[i] * (1.0 / d2 + 1.0 / (screening_length * r)) / r;
    }
  }
  PairForce force(double dx, double dy, double r2, const Particle& a,
                  const Particle& b) const noexcept {
    const double mag = magnitude(r2, pair_coupling<Yukawa>(a, b));
    return {mag * dx, mag * dy};
  }
  double potential(double r2, const Particle& a, const Particle& b) const noexcept {
    const double c = strength * static_cast<double>(a.charge) * static_cast<double>(b.charge);
    const double r = std::sqrt(r2 + softening * softening);
    return c * std::exp(-r / screening_length) / r;
  }
};

/// Morse bond potential: D (1 - e^{-a(r - r0)})^2 - D. Smoother core than
/// Lennard-Jones, common in MD for covalent-ish pairs.
struct Morse {
  double depth = 1.0;      ///< D: well depth
  double width = 2.0;      ///< a: inverse width
  double r0 = 0.5;         ///< equilibrium distance

  static constexpr Coupling kCoupling = Coupling::None;
  static constexpr const char* kName = "morse";
  /// See Yukawa::kLanesExact — exp_lanes is approximate, never switch.
  static constexpr bool kLanesExact = false;

  /// -dU/dr = -2 D a e (1 - e); positive magnitude pushes apart (r < r0).
  double magnitude(double r2, double /*coupling*/) const noexcept {
    const double r = std::sqrt(r2 + kMinR2);
    const double e = std::exp(-width * (r - r0));
    return -2.0 * depth * width * e * (1.0 - e) / r;
  }
  /// Lane-batched `magnitude`: same arithmetic, with the exp hoisted into
  /// the SIMD-dispatched exp_lanes (<= 5e-14 relative vs std::exp, the
  /// same on every backend) so it stops serializing the sweep on libm.
  void magnitude_lanes(const double* r2, const double* /*coupling*/, double* out,
                       std::size_t n) const noexcept {
    for (std::size_t i = 0; i < n; ++i) out[i] = -width * (std::sqrt(r2[i] + kMinR2) - r0);
    detail::exp_forward(out, out, n);
    for (std::size_t i = 0; i < n; ++i) {
      const double e = out[i];
      out[i] = -2.0 * depth * width * e * (1.0 - e) / std::sqrt(r2[i] + kMinR2);
    }
  }
  PairForce force(double dx, double dy, double r2, const Particle&, const Particle&) const noexcept {
    const double mag = magnitude(r2, 1.0);
    return {mag * dx, mag * dy};
  }
  double potential(double r2, const Particle&, const Particle&) const noexcept {
    const double r = std::sqrt(r2 + kMinR2);
    const double e = std::exp(-width * (r - r0));
    return depth * (1.0 - e) * (1.0 - e) - depth;
  }
};

/// Linear-spring contact force: repels only when overlapping radius R.
struct SoftSphere {
  double stiffness = 100.0;
  double radius = 0.05;

  static constexpr Coupling kCoupling = Coupling::None;
  static constexpr const char* kName = "soft_sphere";

  /// Branch-free contact force: std::max clamps the overlap to zero at or
  /// beyond the contact radius, and the kMinR2 guard keeps coincident
  /// particles finite (their dx = dy = 0, so the force is still zero).
  double magnitude(double r2, double /*coupling*/) const noexcept {
    const double r = std::sqrt(r2 + kMinR2);
    const double overlap = std::max(radius - r, 0.0);
    return stiffness * overlap / r;
  }
  PairForce force(double dx, double dy, double r2, const Particle&, const Particle&) const noexcept {
    const double mag = magnitude(r2, 1.0);
    return {mag * dx, mag * dy};
  }
  double potential(double r2, const Particle&, const Particle&) const noexcept {
    const double r = std::sqrt(r2);
    if (r >= radius) return 0.0;
    const double o = radius - r;
    return 0.5 * stiffness * o * o;
  }
};

/// Statistics from one block-block interaction sweep.
///
/// `examined` is the cost-model unit and is what the vmpi ledger is
/// charged from: it counts pairs *visited by the algorithm*, and is
/// identical whether the host executes a full sweep or an N3L half-sweep
/// (a half-sweep visits each unordered pair once but accounts for both
/// directed pairs). `computed` is the host-side work metric: directed
/// pair interactions actually evaluated, so a half-sweep reports roughly
/// half of `examined`. Telemetry exposes both; the cost model never
/// reads `computed`.
struct InteractionCount {
  std::uint64_t examined = 0;       ///< pairs visited (cost-model unit)
  std::uint64_t within_cutoff = 0;  ///< pairs that actually contributed
  std::uint64_t computed = 0;       ///< pair evaluations executed on the host
  bool half_sweep = false;          ///< whether the N3L half-sweep path ran
};

/// Accumulates forces on `targets` from `sources`. Self-pairs (same id) are
/// skipped. If cutoff > 0 only pairs within it contribute, but every pair in
/// the block product is *examined* — mirroring the paper's block sweep, and
/// what makes spatial load imbalance visible. Returns pair counts.
template <ForceKernel K>
InteractionCount accumulate_forces(std::span<Particle> targets, std::span<const Particle> sources,
                                   const Box& box, const K& kernel, double cutoff = 0.0) {
  InteractionCount count;
  const double cutoff2 = cutoff > 0.0 ? cutoff * cutoff : 0.0;
  for (auto& t : targets) {
    double ax = 0.0;
    double ay = 0.0;
    for (const auto& s : sources) {
      if (t.id == s.id) continue;
      ++count.examined;
      const auto [dx, dy] = pair_delta(t, s, box);
      const double r2 = dx * dx + dy * dy;
      if (cutoff2 > 0.0 && r2 > cutoff2) continue;
      ++count.within_cutoff;
      ++count.computed;
      const PairForce f = kernel.force(dx, dy, r2, t, s);
      ax += f.fx;
      ay += f.fy;
    }
    t.fx += static_cast<float>(ax);
    t.fy += static_cast<float>(ay);
  }
  return count;
}

/// Total potential energy of a block pair (used by diagnostics; O(|T||S|)).
template <ForceKernel K>
double pair_potential(std::span<const Particle> a, std::span<const Particle> b, const Box& box,
                      const K& kernel, double cutoff = 0.0) {
  const double cutoff2 = cutoff > 0.0 ? cutoff * cutoff : 0.0;
  double u = 0.0;
  for (const auto& t : a) {
    for (const auto& s : b) {
      if (t.id == s.id) continue;
      const auto [dx, dy] = pair_delta(t, s, box);
      const double r2 = dx * dx + dy * dy;
      if (cutoff2 > 0.0 && r2 > cutoff2) continue;
      u += kernel.potential(r2, t, s);
    }
  }
  return u;
}

}  // namespace canb::particles
