// Uniform-grid cell list for O(n k) serial cutoff force evaluation.
//
// This is the fast serial reference used to validate the distributed cutoff
// algorithms on larger n than the brute-force reference can handle, and the
// spatial-binning substrate reused by the spatial decomposition. Binning has
// a lane-based path over resident SoaBlocks (optionally ThreadPool-parallel:
// per-particle cell indices are computed in parallel, then placed serially
// in index order, so bin contents are identical for any thread count).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "particles/batched_engine.hpp"
#include "particles/box.hpp"
#include "particles/kernels.hpp"
#include "particles/particle.hpp"
#include "particles/soa_block.hpp"
#include "support/parallel.hpp"

namespace canb::particles {

class CellList {
 public:
  /// Builds bins of side >= cutoff over the box. Cutoff must be positive.
  CellList(const Box& box, double cutoff);

  /// Rebuilds bin membership from the given particles (indices into `ps`).
  void build(std::span<const Particle> ps);

  /// Lane-based rebuild from a resident SoA block. With a pool, the
  /// per-particle cell-index computation fans out across host threads;
  /// placement stays serial in index order (deterministic bin contents).
  void build(const SoaBlock& ps, ThreadPool* pool = nullptr);

  int cells_x() const noexcept { return nx_; }
  int cells_y() const noexcept { return ny_; }

  /// Calls fn(i, j) for every ordered pair (i != j) whose bins are within
  /// one cell of each other — a superset of pairs within the cutoff. The
  /// indices refer to the span passed to the last build().
  template <class Fn>
  void for_neighbor_pairs(Fn&& fn) const {
    for (int cy = 0; cy < ny_; ++cy) {
      for (int cx = 0; cx < nx_; ++cx) {
        for (const int i : bin(cx, cy)) {
          visit_neighborhood(cx, cy, [&](int cx2, int cy2) {
            for (const int j : bin(cx2, cy2)) {
              if (i != j) fn(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
            }
          });
        }
      }
    }
  }

  /// Calls fn(cell, neighborhood) for every non-empty cell: `cell` holds the
  /// indices binned there, `neighborhood` the indices of every bin within
  /// one cell (including the cell itself), in the same visit order as
  /// for_neighbor_pairs. This is the batched engine's gather unit.
  template <class Fn>
  void for_cell_neighborhoods(Fn&& fn) const {
    std::vector<int> neigh;
    for (int cy = 0; cy < ny_; ++cy) {
      for (int cx = 0; cx < nx_; ++cx) {
        const auto& cell = bin(cx, cy);
        if (cell.empty()) continue;
        neigh.clear();
        visit_neighborhood(cx, cy, [&](int cx2, int cy2) {
          const auto& b = bin(cx2, cy2);
          neigh.insert(neigh.end(), b.begin(), b.end());
        });
        fn(std::span<const int>(cell), std::span<const int>(neigh));
      }
    }
  }

  /// Indexed access for task-based dispatch: appends the flat indices of
  /// every non-empty cell, row-major — exactly the visit order of
  /// for_cell_neighborhoods, so a task list over this order reproduces the
  /// serial sweep cell by cell.
  void nonempty_cells(std::vector<int>& out) const;
  /// The particle indices binned in flat cell `flat`.
  std::span<const int> cell_items(int flat) const noexcept {
    const auto& b = bins_[static_cast<std::size_t>(flat)];
    return {b.data(), b.size()};
  }
  /// Appends the neighborhood of `flat` (every bin within one cell,
  /// including itself) in the for_cell_neighborhoods gather order.
  void gather_neighborhood(int flat, std::vector<int>& out) const;
  /// Particle count over the neighborhood of `flat` — the per-cell row of
  /// the interaction-count histogram (|cell| * this = examined pairs),
  /// used as scheduler cost hints.
  int neighborhood_count(int flat) const noexcept;

  /// Index of the bin containing the given position.
  std::pair<int, int> bin_of(double px, double py) const noexcept;
  /// Index of the bin containing the particle.
  std::pair<int, int> bin_of(const Particle& p) const noexcept {
    return bin_of(static_cast<double>(p.px), static_cast<double>(p.py));
  }

 private:
  const std::vector<int>& bin(int cx, int cy) const noexcept {
    return bins_[static_cast<std::size_t>(cy * nx_ + cx)];
  }
  std::vector<int>& bin(int cx, int cy) noexcept {
    return bins_[static_cast<std::size_t>(cy * nx_ + cx)];
  }

  template <class Fn>
  void visit_neighborhood(int cx, int cy, Fn&& fn) const {
    for (int oy = -1; oy <= 1; ++oy) {
      if (ny_ == 1 && oy != 0) continue;
      for (int ox = -1; ox <= 1; ++ox) {
        int nx = cx + ox;
        int ny = cy + oy;
        if (periodic_) {
          nx = (nx + nx_) % nx_;
          ny = (ny + ny_) % ny_;
        } else if (nx < 0 || nx >= nx_ || ny < 0 || ny >= ny_) {
          continue;
        }
        fn(nx, ny);
      }
    }
  }

  Box box_;
  double cutoff_;
  int nx_;
  int ny_;
  bool periodic_;
  std::vector<std::vector<int>> bins_;
  std::vector<int> flat_cell_;  ///< per-particle flat cell index (build scratch)
};

/// Cell-list cutoff forces over a resident SoA block: forces accumulate
/// into the block's double force lanes; returns the number of in-cutoff
/// pair interactions applied. The batched engine gathers each cell's
/// neighborhood indices into the caller's scratch tiles and runs the tiled
/// sweep per cell; applied counts match the scalar path by construction
/// (both skip pairs by id, then test the same cutoff).
template <ForceKernel K>
std::uint64_t cell_list_forces(SoaBlock& ps, const Box& box, const K& kernel, double cutoff,
                               KernelEngine engine = KernelEngine::Scalar,
                               SweepScratch* scratch = nullptr, ThreadPool* pool = nullptr) {
  CellList cl(box, cutoff);
  cl.build(ps, pool);
  std::uint64_t applied = 0;
  if (engine == KernelEngine::Batched) {
    if (pool != nullptr && pool->thread_count() > 1) {
      // Task-based cell sweep: one task per non-empty cell, cost-hinted by
      // the cell's interaction-count histogram row. Each particle belongs
      // to exactly one cell, so scatter targets are disjoint across tasks
      // and each cell's fold runs serially inside its task — forces are
      // bitwise identical to the serial sweep for any schedule (static or
      // stealing) and any thread count. Applied counts are integers, so
      // the per-worker partial sums below are exact too.
      const int workers = pool->thread_count();
      std::vector<int> cells;
      cl.nonempty_cells(cells);
      const int ntasks = static_cast<int>(cells.size());
      std::vector<double> cost(static_cast<std::size_t>(ntasks));
      for (int t = 0; t < ntasks; ++t)
        cost[static_cast<std::size_t>(t)] =
            static_cast<double>(cl.cell_items(cells[static_cast<std::size_t>(t)]).size()) *
            static_cast<double>(cl.neighborhood_count(cells[static_cast<std::size_t>(t)]));
      std::vector<SweepScratch> scratches(static_cast<std::size_t>(workers));
      std::vector<std::vector<int>> neighs(static_cast<std::size_t>(workers));
      std::vector<std::uint64_t> partial(static_cast<std::size_t>(workers), 0);
      pool->parallel_tasks(
          ntasks,
          [&](int t, int w) {
            const int flat = cells[static_cast<std::size_t>(t)];
            const auto cell = cl.cell_items(flat);
            auto& neigh = neighs[static_cast<std::size_t>(w)];
            neigh.clear();
            cl.gather_neighborhood(flat, neigh);
            auto& s = scratches[static_cast<std::size_t>(w)];
            s.targets.pack_gather(ps, cell, box);
            s.sources.pack_gather(ps, std::span<const int>(neigh), box);
            partial[static_cast<std::size_t>(w)] +=
                BatchedEngine::sweep(s.targets, s.sources, box, kernel, cutoff).within_cutoff;
            s.targets.scatter_add_forces(ps, cell);
          },
          cost.data());
      for (const std::uint64_t c : partial) applied += c;
      return applied;
    }
    SweepScratch local;
    SweepScratch& s = scratch ? *scratch : local;
    cl.for_cell_neighborhoods([&](std::span<const int> cell, std::span<const int> neigh) {
      s.targets.pack_gather(ps, cell, box);
      s.sources.pack_gather(ps, neigh, box);
      applied += BatchedEngine::sweep(s.targets, s.sources, box, kernel, cutoff).within_cutoff;
      s.targets.scatter_add_forces(ps, cell);
    });
    return applied;
  }
  const double cutoff2 = cutoff * cutoff;
  const bool periodic = box.boundary == Boundary::Periodic;
  const bool two_d = box.dims == 2;
  cl.for_neighbor_pairs([&](std::size_t i, std::size_t j) {
    if (ps.id[i] == ps.id[j]) return;
    double dx = static_cast<double>(ps.px[i]) - static_cast<double>(ps.px[j]);
    double dy = two_d ? static_cast<double>(ps.py[i]) - static_cast<double>(ps.py[j]) : 0.0;
    if (periodic) {
      if (dx > 0.5 * box.lx)
        dx -= box.lx;
      else if (dx < -0.5 * box.lx)
        dx += box.lx;
      if (two_d) {
        if (dy > 0.5 * box.ly)
          dy -= box.ly;
        else if (dy < -0.5 * box.ly)
          dy += box.ly;
      }
    }
    const double r2 = dx * dx + dy * dy;
    if (r2 > cutoff2) return;
    const double mag = kernel.magnitude(r2, lane_coupling<K>(ps, i, ps, j));
    // Per-pair float fold, as the AoS loop's `t.fx += float(f.fx)` (see the
    // precision invariant in batched_engine.hpp).
    ps.fx[i] = static_cast<double>(static_cast<float>(ps.fx[i]) + static_cast<float>(mag * dx));
    ps.fy[i] = static_cast<double>(static_cast<float>(ps.fy[i]) + static_cast<float>(mag * dy));
    ++applied;
  });
  return applied;
}

/// AoS-span variant (the serial reference). The batched path converts the
/// span to a SoaBlock once per call and runs the lane pipeline, then folds
/// the accumulated forces back — the per-neighborhood AoS gather this used
/// to do is gone with the resident layout.
template <ForceKernel K>
std::uint64_t cell_list_forces(std::span<Particle> ps, const Box& box, const K& kernel,
                               double cutoff, KernelEngine engine = KernelEngine::Scalar,
                               SweepScratch* scratch = nullptr) {
  if (engine == KernelEngine::Batched) {
    SoaBlock soa(std::span<const Particle>(ps.data(), ps.size()));
    soa.clear_forces();
    const std::uint64_t applied = cell_list_forces(soa, box, kernel, cutoff, engine, scratch);
    for (std::size_t i = 0; i < ps.size(); ++i) {
      ps[i].fx += static_cast<float>(soa.fx[i]);
      ps[i].fy += static_cast<float>(soa.fy[i]);
    }
    return applied;
  }
  CellList cl(box, cutoff);
  cl.build(ps);
  std::uint64_t applied = 0;
  const double cutoff2 = cutoff * cutoff;
  cl.for_neighbor_pairs([&](std::size_t i, std::size_t j) {
    auto& t = ps[i];
    const auto& s = ps[j];
    if (t.id == s.id) return;
    const auto [dx, dy] = pair_delta(t, s, box);
    const double r2 = dx * dx + dy * dy;
    if (r2 > cutoff2) return;
    const PairForce f = kernel.force(dx, dy, r2, t, s);
    t.fx += static_cast<float>(f.fx);
    t.fy += static_cast<float>(f.fy);
    ++applied;
  });
  return applied;
}

}  // namespace canb::particles
