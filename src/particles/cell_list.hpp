// Uniform-grid cell list for O(n k) serial cutoff force evaluation.
//
// This is the fast serial reference used to validate the distributed cutoff
// algorithms on larger n than the brute-force reference can handle, and the
// spatial-binning substrate reused by the spatial decomposition.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "particles/batched_engine.hpp"
#include "particles/box.hpp"
#include "particles/kernels.hpp"
#include "particles/particle.hpp"

namespace canb::particles {

class CellList {
 public:
  /// Builds bins of side >= cutoff over the box. Cutoff must be positive.
  CellList(const Box& box, double cutoff);

  /// Rebuilds bin membership from the given particles (indices into `ps`).
  void build(std::span<const Particle> ps);

  int cells_x() const noexcept { return nx_; }
  int cells_y() const noexcept { return ny_; }

  /// Calls fn(i, j) for every ordered pair (i != j) whose bins are within
  /// one cell of each other — a superset of pairs within the cutoff. The
  /// indices refer to the span passed to the last build().
  template <class Fn>
  void for_neighbor_pairs(Fn&& fn) const {
    for (int cy = 0; cy < ny_; ++cy) {
      for (int cx = 0; cx < nx_; ++cx) {
        for (const int i : bin(cx, cy)) {
          visit_neighborhood(cx, cy, [&](int cx2, int cy2) {
            for (const int j : bin(cx2, cy2)) {
              if (i != j) fn(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
            }
          });
        }
      }
    }
  }

  /// Calls fn(cell, neighborhood) for every non-empty cell: `cell` holds the
  /// indices binned there, `neighborhood` the indices of every bin within
  /// one cell (including the cell itself), in the same visit order as
  /// for_neighbor_pairs. This is the batched engine's gather unit.
  template <class Fn>
  void for_cell_neighborhoods(Fn&& fn) const {
    std::vector<int> neigh;
    for (int cy = 0; cy < ny_; ++cy) {
      for (int cx = 0; cx < nx_; ++cx) {
        const auto& cell = bin(cx, cy);
        if (cell.empty()) continue;
        neigh.clear();
        visit_neighborhood(cx, cy, [&](int cx2, int cy2) {
          const auto& b = bin(cx2, cy2);
          neigh.insert(neigh.end(), b.begin(), b.end());
        });
        fn(std::span<const int>(cell), std::span<const int>(neigh));
      }
    }
  }

  /// Index of the bin containing the particle.
  std::pair<int, int> bin_of(const Particle& p) const noexcept;

 private:
  const std::vector<int>& bin(int cx, int cy) const noexcept {
    return bins_[static_cast<std::size_t>(cy * nx_ + cx)];
  }
  std::vector<int>& bin(int cx, int cy) noexcept {
    return bins_[static_cast<std::size_t>(cy * nx_ + cx)];
  }

  template <class Fn>
  void visit_neighborhood(int cx, int cy, Fn&& fn) const {
    for (int oy = -1; oy <= 1; ++oy) {
      if (ny_ == 1 && oy != 0) continue;
      for (int ox = -1; ox <= 1; ++ox) {
        int nx = cx + ox;
        int ny = cy + oy;
        if (periodic_) {
          nx = (nx + nx_) % nx_;
          ny = (ny + ny_) % ny_;
        } else if (nx < 0 || nx >= nx_ || ny < 0 || ny >= ny_) {
          continue;
        }
        fn(nx, ny);
      }
    }
  }

  Box box_;
  double cutoff_;
  int nx_;
  int ny_;
  bool periodic_;
  std::vector<std::vector<int>> bins_;
};

/// Serial cutoff force evaluation via a cell list. Forces are accumulated
/// into ps; returns the number of in-cutoff pair interactions applied.
/// The batched engine gathers each cell's neighborhood into SoA tiles and
/// runs the tiled sweep per cell; applied counts are identical by
/// construction (both skip pairs by id, then test the same cutoff).
template <ForceKernel K>
std::uint64_t cell_list_forces(std::span<Particle> ps, const Box& box, const K& kernel,
                               double cutoff, KernelEngine engine = KernelEngine::Scalar) {
  CellList cl(box, cutoff);
  cl.build(ps);
  std::uint64_t applied = 0;
  if (engine == KernelEngine::Batched) {
    thread_local SoaTile tgt;
    thread_local SoaTile src;
    cl.for_cell_neighborhoods([&](std::span<const int> cell, std::span<const int> neigh) {
      tgt.pack_gather(ps, cell, box);
      src.pack_gather(ps, neigh, box);
      applied += BatchedEngine::sweep(tgt, src, box, kernel, cutoff).within_cutoff;
      tgt.scatter_add_forces(ps, cell);
    });
    return applied;
  }
  const double cutoff2 = cutoff * cutoff;
  cl.for_neighbor_pairs([&](std::size_t i, std::size_t j) {
    auto& t = ps[i];
    const auto& s = ps[j];
    if (t.id == s.id) return;
    const auto [dx, dy] = pair_delta(t, s, box);
    const double r2 = dx * dx + dy * dy;
    if (r2 > cutoff2) return;
    const PairForce f = kernel.force(dx, dy, r2, t, s);
    t.fx += static_cast<float>(f.fx);
    t.fy += static_cast<float>(f.fy);
    ++applied;
  });
  return applied;
}

}  // namespace canb::particles
