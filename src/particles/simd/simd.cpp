// Runtime-dispatched SIMD backends (see simd.hpp for the contract).
//
// Everything numeric lives out-of-line in this translation unit on
// purpose: canb_particles is always built with the portable library flags
// (-O2, no -march, no -ffp-contract=fast), so the scalar reference loops
// here can never be FMA-contracted or reassociated — which is what makes
// the "every backend agrees bitwise" guarantees below hold no matter what
// flags the *calling* binary (e.g. a bench with CANB_NATIVE_ARCH) uses.
// The AVX2 bodies are compiled via the GCC/Clang `target` function
// attribute, so no global architecture flags are required and the
// dispatcher can still run on machines without AVX2.
#include "particles/simd/simd.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define CANB_SIMD_X86 1
#include <immintrin.h>
#else
#define CANB_SIMD_X86 0
#endif

namespace canb::particles::simd {

namespace {

// --- exp: shared range reduction + truncated-Taylor polynomial ------------
// exp(x) = 2^n * exp(r) with n = roundeven(x * log2 e) and r = x - n*ln2,
// the ln2 subtracted in a high/low split so the reduction is exact to the
// last bit. |r| <= ln2/2, where the degree-11 polynomial's truncation
// error is ~9e-15 relative; with per-op rounding the total stays under
// 5e-14 (accuracy-tested against std::exp). The op sequence is identical —
// and FMA-free — in every backend, so lanes agree bitwise across
// scalar/SSE2/AVX2.
constexpr double kExpClamp = 700.0;
constexpr double kLog2e = 1.4426950408889634074;
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kExpC[12] = {
    1.0,          1.0,           1.0 / 2.0,      1.0 / 6.0,
    1.0 / 24.0,   1.0 / 120.0,   1.0 / 720.0,    1.0 / 5040.0,
    1.0 / 40320.0, 1.0 / 362880.0, 1.0 / 3628800.0, 1.0 / 39916800.0,
};

double exp_one(double x) noexcept {
  x = x < -kExpClamp ? -kExpClamp : (x > kExpClamp ? kExpClamp : x);
  const double n = std::nearbyint(x * kLog2e);
  const double r = (x - n * kLn2Hi) - n * kLn2Lo;
  double p = kExpC[11];
  for (int k = 10; k >= 0; --k) p = p * r + kExpC[k];
  const auto ki = static_cast<std::int64_t>(n);
  const double scale =
      std::bit_cast<double>(static_cast<std::uint64_t>(ki + 1023) << 52);
  return p * scale;
}

void exp_lanes_scalar(const double* x, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = exp_one(x[i]);
}

// --- inverse cube: exact and rsqrt-seeded fast magnitudes ------------------
// Exact: out = (scale*cpl) / (d2 * sqrt(d2)) — only correctly-rounded IEEE
// ops, so scalar/SSE2/AVX2 agree bitwise with the kernels' `magnitude`.
void inv_cube_exact_scalar(const double* r2, const double* cpl, double* out, std::size_t n,
                           double scale, double soft2) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double d2 = r2[i] + soft2;
    out[i] = (scale * cpl[i]) / (d2 * std::sqrt(d2));
  }
}

#if CANB_SIMD_X86

// Fast path: d2^{-3/2} = y^3 from the hardware rsqrt estimate (float,
// relative error <= 3.7e-4) refined by two FMA-free Newton iterations
// (y <- y * (1.5 - (0.5*d2) * y*y)), each squaring the error: ~2e-7 then
// ~6e-14 on y, so <= ~2e-13 on y^3 (documented bound 1e-12). The identical
// op sequence keeps SSE2 and AVX2 bitwise-equal to each other; forces are
// then only ULP-close to the exact path, which is why this is opt-in.
double inv_cube_fast_one(double d2, double c) noexcept {
  const float f = static_cast<float>(d2);
  double y = static_cast<double>(_mm_cvtss_f32(_mm_rsqrt_ss(_mm_set_ss(f))));
  const double h = 0.5 * d2;
  for (int it = 0; it < 2; ++it) {
    const double yy = y * y;
    y = y * (1.5 - h * yy);
  }
  return c * (y * (y * y));
}

void inv_cube_fast_scalar(const double* r2, const double* cpl, double* out, std::size_t n,
                          double scale, double soft2) noexcept {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = inv_cube_fast_one(r2[i] + soft2, scale * cpl[i]);
}

// --- SSE2 bodies (baseline on x86-64: no target attribute needed) ----------

void exp_lanes_sse2(const double* x, double* out, std::size_t n) noexcept {
  const __m128d hi = _mm_set1_pd(kExpClamp);
  const __m128d lo = _mm_set1_pd(-kExpClamp);
  const __m128d log2e = _mm_set1_pd(kLog2e);
  const __m128d ln2hi = _mm_set1_pd(kLn2Hi);
  const __m128d ln2lo = _mm_set1_pd(kLn2Lo);
  const __m128i bias = _mm_set1_epi64x(1023);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d v = _mm_loadu_pd(x + i);
    v = _mm_min_pd(_mm_max_pd(v, lo), hi);
    const __m128i ni = _mm_cvtpd_epi32(_mm_mul_pd(v, log2e));  // roundeven
    const __m128d nd = _mm_cvtepi32_pd(ni);
    const __m128d r =
        _mm_sub_pd(_mm_sub_pd(v, _mm_mul_pd(nd, ln2hi)), _mm_mul_pd(nd, ln2lo));
    __m128d p = _mm_set1_pd(kExpC[11]);
    for (int k = 10; k >= 0; --k)
      p = _mm_add_pd(_mm_mul_pd(p, r), _mm_set1_pd(kExpC[k]));
    // Sign-extend the two int32 exponents to int64 and build 2^n bitwise.
    const __m128i ki = _mm_unpacklo_epi32(ni, _mm_srai_epi32(ni, 31));
    const __m128i bits = _mm_slli_epi64(_mm_add_epi64(ki, bias), 52);
    _mm_storeu_pd(out + i, _mm_mul_pd(p, _mm_castsi128_pd(bits)));
  }
  for (; i < n; ++i) out[i] = exp_one(x[i]);
}

void inv_cube_exact_sse2(const double* r2, const double* cpl, double* out, std::size_t n,
                         double scale, double soft2) noexcept {
  const __m128d soft = _mm_set1_pd(soft2);
  const __m128d sc = _mm_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d d2 = _mm_add_pd(_mm_loadu_pd(r2 + i), soft);
    const __m128d num = _mm_mul_pd(sc, _mm_loadu_pd(cpl + i));
    _mm_storeu_pd(out + i, _mm_div_pd(num, _mm_mul_pd(d2, _mm_sqrt_pd(d2))));
  }
  for (; i < n; ++i) {
    const double d2 = r2[i] + soft2;
    out[i] = (scale * cpl[i]) / (d2 * std::sqrt(d2));
  }
}

void inv_cube_fast_sse2(const double* r2, const double* cpl, double* out, std::size_t n,
                        double scale, double soft2) noexcept {
  const __m128d soft = _mm_set1_pd(soft2);
  const __m128d sc = _mm_set1_pd(scale);
  const __m128d half = _mm_set1_pd(0.5);
  const __m128d three_half = _mm_set1_pd(1.5);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d d2 = _mm_add_pd(_mm_loadu_pd(r2 + i), soft);
    __m128d y = _mm_cvtps_pd(_mm_rsqrt_ps(_mm_cvtpd_ps(d2)));
    const __m128d h = _mm_mul_pd(half, d2);
    for (int it = 0; it < 2; ++it) {
      const __m128d yy = _mm_mul_pd(y, y);
      y = _mm_mul_pd(y, _mm_sub_pd(three_half, _mm_mul_pd(h, yy)));
    }
    const __m128d c = _mm_mul_pd(sc, _mm_loadu_pd(cpl + i));
    _mm_storeu_pd(out + i, _mm_mul_pd(c, _mm_mul_pd(y, _mm_mul_pd(y, y))));
  }
  for (; i < n; ++i) out[i] = inv_cube_fast_one(r2[i] + soft2, scale * cpl[i]);
}

// --- AVX2 bodies (compiled via the target attribute; dispatch guards) -------

__attribute__((target("avx2"))) void exp_lanes_avx2(const double* x, double* out,
                                                    std::size_t n) noexcept {
  const __m256d hi = _mm256_set1_pd(kExpClamp);
  const __m256d lo = _mm256_set1_pd(-kExpClamp);
  const __m256d log2e = _mm256_set1_pd(kLog2e);
  const __m256d ln2hi = _mm256_set1_pd(kLn2Hi);
  const __m256d ln2lo = _mm256_set1_pd(kLn2Lo);
  const __m256i bias = _mm256_set1_epi64x(1023);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d v = _mm256_loadu_pd(x + i);
    v = _mm256_min_pd(_mm256_max_pd(v, lo), hi);
    const __m128i ni = _mm256_cvtpd_epi32(_mm256_mul_pd(v, log2e));  // roundeven
    const __m256d nd = _mm256_cvtepi32_pd(ni);
    const __m256d r = _mm256_sub_pd(_mm256_sub_pd(v, _mm256_mul_pd(nd, ln2hi)),
                                    _mm256_mul_pd(nd, ln2lo));
    __m256d p = _mm256_set1_pd(kExpC[11]);
    for (int k = 10; k >= 0; --k)
      p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(kExpC[k]));
    const __m256i bits =
        _mm256_slli_epi64(_mm256_add_epi64(_mm256_cvtepi32_epi64(ni), bias), 52);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(p, _mm256_castsi256_pd(bits)));
  }
  for (; i < n; ++i) out[i] = exp_one(x[i]);
}

__attribute__((target("avx2"))) void inv_cube_exact_avx2(const double* r2, const double* cpl,
                                                         double* out, std::size_t n,
                                                         double scale,
                                                         double soft2) noexcept {
  const __m256d soft = _mm256_set1_pd(soft2);
  const __m256d sc = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d2 = _mm256_add_pd(_mm256_loadu_pd(r2 + i), soft);
    const __m256d num = _mm256_mul_pd(sc, _mm256_loadu_pd(cpl + i));
    _mm256_storeu_pd(out + i,
                     _mm256_div_pd(num, _mm256_mul_pd(d2, _mm256_sqrt_pd(d2))));
  }
  for (; i < n; ++i) {
    const double d2 = r2[i] + soft2;
    out[i] = (scale * cpl[i]) / (d2 * std::sqrt(d2));
  }
}

__attribute__((target("avx2"))) void inv_cube_fast_avx2(const double* r2, const double* cpl,
                                                        double* out, std::size_t n,
                                                        double scale, double soft2) noexcept {
  const __m256d soft = _mm256_set1_pd(soft2);
  const __m256d sc = _mm256_set1_pd(scale);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d three_half = _mm256_set1_pd(1.5);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d2 = _mm256_add_pd(_mm256_loadu_pd(r2 + i), soft);
    __m256d y = _mm256_cvtps_pd(_mm_rsqrt_ps(_mm256_cvtpd_ps(d2)));
    const __m256d h = _mm256_mul_pd(half, d2);
    for (int it = 0; it < 2; ++it) {
      const __m256d yy = _mm256_mul_pd(y, y);
      y = _mm256_mul_pd(y, _mm256_sub_pd(three_half, _mm256_mul_pd(h, yy)));
    }
    const __m256d c = _mm256_mul_pd(sc, _mm256_loadu_pd(cpl + i));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(c, _mm256_mul_pd(y, _mm256_mul_pd(y, y))));
  }
  for (; i < n; ++i) out[i] = inv_cube_fast_one(r2[i] + soft2, scale * cpl[i]);
}

#endif  // CANB_SIMD_X86

// --- dispatch state ---------------------------------------------------------

std::atomic<int> g_backend{-1};  ///< -1 = not yet resolved from env/CPUID
std::atomic<bool> g_fast_rsqrt{false};

Backend clamp_to_supported(Backend b) noexcept {
  return static_cast<int>(b) > static_cast<int>(max_supported()) ? max_supported() : b;
}

}  // namespace

const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::Scalar: return "scalar";
    case Backend::Sse2: return "sse2";
    case Backend::Avx2: return "avx2";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view name) noexcept {
  if (name == "scalar") return Backend::Scalar;
  if (name == "sse2") return Backend::Sse2;
  if (name == "avx2") return Backend::Avx2;
  return std::nullopt;
}

Backend max_supported() noexcept {
  static const Backend widest = [] {
#if CANB_SIMD_X86
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2")) return Backend::Avx2;
    if (__builtin_cpu_supports("sse2")) return Backend::Sse2;
#endif
    return Backend::Scalar;
  }();
  return widest;
}

Backend active() noexcept {
  const int cur = g_backend.load(std::memory_order_relaxed);
  if (cur >= 0) return static_cast<Backend>(cur);
  Backend b = max_supported();
  if (const char* env = std::getenv("CANB_SIMD")) {
    if (const auto parsed = parse_backend(env)) b = clamp_to_supported(*parsed);
  }
  // A racing first call resolves to the same value; the store is idempotent.
  g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
  return b;
}

Backend set_backend(Backend b) noexcept {
  const Backend installed = clamp_to_supported(b);
  g_backend.store(static_cast<int>(installed), std::memory_order_relaxed);
  return installed;
}

bool fast_rsqrt() noexcept { return g_fast_rsqrt.load(std::memory_order_relaxed); }

void set_fast_rsqrt(bool on) noexcept {
#if !CANB_SIMD_X86
  on = false;  // no hardware estimate to seed from; exact path only
#endif
  g_fast_rsqrt.store(on, std::memory_order_relaxed);
}

void inv_cube_lanes(const double* r2, const double* cpl, double* out, std::size_t n,
                    double scale, double soft2) noexcept {
#if CANB_SIMD_X86
  const bool fast = fast_rsqrt();
  switch (active()) {
    case Backend::Avx2:
      return fast ? inv_cube_fast_avx2(r2, cpl, out, n, scale, soft2)
                  : inv_cube_exact_avx2(r2, cpl, out, n, scale, soft2);
    case Backend::Sse2:
      return fast ? inv_cube_fast_sse2(r2, cpl, out, n, scale, soft2)
                  : inv_cube_exact_sse2(r2, cpl, out, n, scale, soft2);
    case Backend::Scalar:
      return fast ? inv_cube_fast_scalar(r2, cpl, out, n, scale, soft2)
                  : inv_cube_exact_scalar(r2, cpl, out, n, scale, soft2);
  }
#endif
  inv_cube_exact_scalar(r2, cpl, out, n, scale, soft2);
}

void exp_lanes(const double* x, double* out, std::size_t n) noexcept {
#if CANB_SIMD_X86
  switch (active()) {
    case Backend::Avx2: return exp_lanes_avx2(x, out, n);
    case Backend::Sse2: return exp_lanes_sse2(x, out, n);
    case Backend::Scalar: return exp_lanes_scalar(x, out, n);
  }
#endif
  exp_lanes_scalar(x, out, n);
}

}  // namespace canb::particles::simd
