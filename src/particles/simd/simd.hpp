// Explicit SIMD backends for the batched engine's magnitude pipelines.
//
// The library targets are deliberately built with portable flags (no
// -march), so the auto-vectorizer cannot use anything past baseline SSE2
// there — and libm calls (sqrt with errno, exp) stay scalar. This module
// provides the two lane pipelines that dominate the force sweep as
// hand-dispatched kernels instead:
//
//  * inv_cube_lanes — the r^2 -> coupling/(d2*sqrt(d2)) pipeline behind
//    InverseSquareRepulsion and Gravity. The exact variant uses only
//    correctly-rounded IEEE ops (add/mul/div/sqrt, no FMA), so every
//    backend produces BITWISE-identical lanes to the scalar expression
//    `c / (d2 * std::sqrt(d2))` — the engines' bitwise trajectory contract
//    survives backend dispatch untouched. The opt-in fast variant seeds
//    with the hardware rsqrt estimate and refines by Newton iterations
//    (documented relative error <= 1e-12); it is OFF by default and only
//    ever enabled by an explicit tuner/bench/CLI decision.
//  * exp_lanes — a lane-batched exp for the Yukawa/Morse magnitude path.
//    One shared range-reduction + polynomial algorithm, implemented with
//    the same non-FMA operation sequence in every backend, so scalar, SSE2
//    and AVX2 agree bitwise with each other (relative error vs std::exp
//    <= 5e-14 over the kernels' operating range; accuracy-tested).
//
// Backend selection is RUNTIME dispatch: CPUID decides the widest usable
// backend, the CANB_SIMD environment variable (scalar|sse2|avx2) can lower
// it, and set_backend() lets the host tuner or a bench arm pin it
// per-process. Nothing here reads or writes the virtual cost model — like
// the rest of the batched engine, this changes host wall time only.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace canb::particles::simd {

/// Instruction-set backend for the lane pipelines, in widening order.
/// On non-x86 builds only Scalar is supported.
enum class Backend { Scalar = 0, Sse2 = 1, Avx2 = 2 };

const char* backend_name(Backend b) noexcept;

/// Parses "scalar" | "sse2" | "avx2"; nullopt on anything else.
std::optional<Backend> parse_backend(std::string_view name) noexcept;

/// Widest backend this CPU supports (CPUID probe, cached).
Backend max_supported() noexcept;

/// The backend the lane pipelines currently dispatch to. Initialized on
/// first use from CANB_SIMD (clamped to max_supported(); unknown values
/// are ignored), defaulting to max_supported().
Backend active() noexcept;

/// Pins the dispatch backend (clamped to max_supported()); returns the
/// backend actually installed. Call at configuration time — the sweeps
/// themselves never mutate it, so a run uses one backend throughout.
Backend set_backend(Backend b) noexcept;

/// Whether inv_cube_lanes may use the rsqrt-estimate fast path (default
/// false: exact, bitwise-stable arithmetic).
bool fast_rsqrt() noexcept;
void set_fast_rsqrt(bool on) noexcept;

/// out[i] = scale * cpl[i] / (d2 * sqrt(d2)) with d2 = r2[i] + soft2 —
/// the inverse-cube magnitude lane shared by InverseSquareRepulsion
/// (scale = strength) and Gravity (scale = -g). Exact mode is bitwise
/// equal to the scalar expression on every backend; fast mode (see
/// fast_rsqrt()) has relative error <= 1e-12.
void inv_cube_lanes(const double* r2, const double* cpl, double* out, std::size_t n,
                    double scale, double soft2) noexcept;

/// out[i] = exp(x[i]) for finite x (clamped to [-700, 700] first, so the
/// result never overflows or denormalizes). All backends are bitwise
/// identical to each other; relative error vs std::exp <= 5e-14.
void exp_lanes(const double* x, double* out, std::size_t n) noexcept;

}  // namespace canb::particles::simd
