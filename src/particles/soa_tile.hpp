// Structure-of-arrays particle tile for the batched kernel engine.
//
// The 52-byte AoS Particle record is the unit that travels between virtual
// ranks (the paper fixes its size), but it is a poor shape for the host-side
// O(n^2/p) force sweep: every pair touches four fields at a 52-byte stride
// and the compiler cannot vectorize across records. A SoaTile repacks a
// Block into contiguous double lanes (positions promoted once, instead of
// per pair) plus an id lane for the self-pair mask, with double-precision
// force accumulators that are scattered back as one float store per target.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "particles/box.hpp"
#include "particles/particle.hpp"

namespace canb::particles {

struct SoaTile {
  std::vector<double> x, y;            ///< positions (y forced to 0 in 1D)
  std::vector<double> charge, mass;    ///< coupling lanes
  std::vector<std::int32_t> id;        ///< self-pair mask lane
  std::vector<double> fx, fy;          ///< double accumulators (targets only)

  std::size_t size() const noexcept { return id.size(); }

  /// Repacks the whole span; zeroes the force accumulators. In 1D boxes the
  /// y lane is zeroed so dy vanishes without a per-pair dimensionality test.
  void pack(std::span<const Particle> ps, const Box& box);

  /// Gathered pack: lane i holds ps[idx[i]] (the cell-list neighborhood path).
  void pack_gather(std::span<const Particle> ps, std::span<const int> idx, const Box& box);

  /// Adds the accumulated forces back into the records, one float store per
  /// target: ps[i].fx += float(fx[i]). Sizes must match the packed span.
  void scatter_add_forces(std::span<Particle> ps) const;

  /// Gathered scatter: ps[idx[i]] receives lane i's accumulated force.
  void scatter_add_forces(std::span<Particle> ps, std::span<const int> idx) const;
};

}  // namespace canb::particles
