// Structure-of-arrays gather tile for the batched kernel engine.
//
// With SoaBlock as the resident representation, whole-block sweeps run on
// the resident lanes directly and never touch this type. SoaTile remains
// the *gather* unit: cell-list neighborhoods are index lists into a resident
// block, and the tile packs those gathered lanes (positions promoted to
// double once, instead of per pair) plus an id lane for the self-pair mask,
// with double-precision force accumulators scattered back per index. The
// AoS span pack also remains for the serial-reference paths that sweep
// wire-format Blocks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "particles/box.hpp"
#include "particles/particle.hpp"
#include "particles/soa_block.hpp"

namespace canb::particles {

struct SoaTile {
  std::vector<double> x, y;            ///< positions (y forced to 0 in 1D)
  std::vector<double> charge, mass;    ///< coupling lanes
  std::vector<std::int32_t> id;        ///< self-pair mask lane
  std::vector<double> fx, fy;          ///< double accumulators (targets only)

  std::size_t size() const noexcept { return id.size(); }

  // Lane accessors shared with SoaBlock (see batched_engine.hpp).
  const double* xs() const noexcept { return x.data(); }
  const double* ys() const noexcept { return y.data(); }
  const double* charges() const noexcept { return charge.data(); }
  const double* masses() const noexcept { return mass.data(); }
  const std::int32_t* ids() const noexcept { return id.data(); }
  double* fxs() noexcept { return fx.data(); }
  double* fys() noexcept { return fy.data(); }

  /// Repacks the whole span; zeroes the force accumulators. In 1D boxes the
  /// y lane is zeroed so dy vanishes without a per-pair dimensionality test.
  void pack(std::span<const Particle> ps, const Box& box);

  /// Gathered pack from resident lanes: lane i holds ps[idx[i]] (the
  /// cell-list neighborhood path — the only repacking left in the resident
  /// pipeline, and it moves index lists, not particles).
  void pack_gather(const SoaBlock& ps, std::span<const int> idx, const Box& box);

  /// Adds the accumulated forces back into the records, one float store per
  /// target: ps[i].fx += float(fx[i]). Sizes must match the packed span.
  void scatter_add_forces(std::span<Particle> ps) const;

  /// Gathered scatter into resident lanes, folding each add through float —
  /// the same rounding point as the AoS scatter (see the precision
  /// invariant in batched_engine.hpp).
  void scatter_add_forces(SoaBlock& ps, std::span<const int> idx) const;

  /// Releases lane capacity (a long-lived owner can shrink after a burst).
  void shrink_to_fit();
};

}  // namespace canb::particles
