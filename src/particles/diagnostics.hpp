// Physical diagnostics used by examples and conservation tests.
#pragma once

#include <span>

#include "particles/box.hpp"
#include "particles/kernels.hpp"
#include "particles/particle.hpp"

namespace canb::particles {

struct SystemState {
  double kinetic = 0.0;
  double potential = 0.0;
  double momentum_x = 0.0;
  double momentum_y = 0.0;
  double com_x = 0.0;
  double com_y = 0.0;
  double total() const noexcept { return kinetic + potential; }
};

double kinetic_energy(std::span<const Particle> ps) noexcept;

/// Momentum and center of mass (no potential; O(n)).
SystemState quick_state(std::span<const Particle> ps) noexcept;

/// Full state including the O(n^2) pairwise potential (pairs counted once).
template <ForceKernel K>
SystemState full_state(std::span<const Particle> ps, const Box& box, const K& kernel,
                       double cutoff = 0.0) {
  SystemState st = quick_state(ps);
  const double cutoff2 = cutoff > 0.0 ? cutoff * cutoff : 0.0;
  double u = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::size_t j = i + 1; j < ps.size(); ++j) {
      const auto [dx, dy] = pair_delta(ps[i], ps[j], box);
      const double r2 = dx * dx + dy * dy;
      if (cutoff2 > 0.0 && r2 > cutoff2) continue;
      u += kernel.potential(r2, ps[i], ps[j]);
    }
  }
  st.potential = u;
  return st;
}

/// Max relative force deviation between two blocks with identical ids,
/// both sorted by id. Returns the max over particles of
/// |f_a - f_b| / (|f_b| + abs_floor); used to compare decompositions
/// against the serial reference.
double max_force_deviation(std::span<const Particle> a, std::span<const Particle> b,
                           double abs_floor = 1e-6);

/// Max absolute position deviation between two id-sorted blocks.
double max_position_deviation(std::span<const Particle> a, std::span<const Particle> b);

/// Radial distribution function g(r): normalized pair-distance histogram
/// over [0, r_max) in `bins` equal-width shells. The classic MD structure
/// diagnostic — a fluid shows a contact peak then decay to ~1; an ideal
/// gas is ~1 everywhere. 2D normalization (annulus areas); O(n^2).
std::vector<double> radial_distribution(std::span<const Particle> ps, const Box& box,
                                        double r_max, int bins);

}  // namespace canb::particles
