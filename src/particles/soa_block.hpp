// The resident structure-of-arrays particle block.
//
// PR 1 introduced SoaTile as per-sweep scratch: every block-block sweep paid
// an AoS->SoA gather and a scatter-add back into particles::Block. This type
// makes the SoA layout the *resident* representation instead: RealPolicy's
// Buffer is a SoaBlock, so the buffers the vmpi primitives shift, skew,
// broadcast, and reduce are already in the layout the batched engine's inner
// loop consumes — zero per-sweep repacking on the resident side.
//
// Lane types mirror the 52-byte wire record where the physics depends on
// them (positions, velocities, couplings stay float, so trajectories match
// the AoS pipeline's rounding). Force and aux lanes are double for the
// sweeps' in-call accumulation, but every store into them folds through
// float at the same points the AoS pipeline stored to a float field — so
// at phase boundaries they always hold float-representable values,
// materializing a Particle is lossless, and trajectories are bitwise
// identical to the wire-format pipeline (see batched_engine.hpp). The
// serialized size of a block is DEFINED as size() * kParticleBytes: the
// ledger charges bytes from particle counts, never from host layout (see
// docs/MODEL.md).
#pragma once

#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

#include "particles/particle.hpp"
#include "support/wire.hpp"

namespace canb::particles {

struct SoaBlock {
  std::vector<float> px, py;         ///< positions
  std::vector<float> vx, vy;         ///< velocities
  std::vector<double> fx, fy;        ///< force accumulators (double: sweep precision)
  std::vector<float> mass, charge;   ///< kernel coupling lanes
  std::vector<std::int32_t> id;      ///< globally unique; self-pair mask lane
  std::vector<double> aux0, aux1;    ///< integrator scratch (e.g. previous force)

  SoaBlock() = default;
  /// Implicit by design: engine constructors accept the AoS blocks that
  /// decomp::split_* produce and convert once at setup time.
  SoaBlock(std::span<const Particle> ps);
  SoaBlock(const Block& b) : SoaBlock(std::span<const Particle>(b)) {}

  std::size_t size() const noexcept { return id.size(); }
  bool empty() const noexcept { return id.empty(); }

  void clear();
  void reserve(std::size_t n);
  void swap(SoaBlock& other) noexcept;

  void push_back(const Particle& p);
  /// Appends every lane of `other` (bulk receive in re-assignment/gather).
  void append(const SoaBlock& other);
  /// Appends element i of `other` lane-exactly (no float round-trip through
  /// a materialized Particle — forces keep their double precision).
  void append_from(const SoaBlock& other, std::size_t i);

  /// Capacity-preserving full copy: every lane is assigned in place, so a
  /// destination that has once held a block of this size never reallocates
  /// (unlike operator=, this is a documented guarantee the data plane's
  /// zero-allocation test pins, not an implementation accident).
  void assign_from(const SoaBlock& other);

  /// Capacity-preserving copy of the lanes a broadcast REPLICA needs: the
  /// kernel inputs (px/py/mass/charge/id) and the force accumulators fx/fy
  /// (replicas accumulate partial forces that the team reduction folds
  /// back). Velocity and aux lanes are left untouched — integrators only
  /// ever run on team leaders, and the sweep's lane accessors expose no
  /// velocity, so nothing can read them from a replica. Callers must treat
  /// the destination as a replica from then on (size() is authoritative;
  /// vx/vy/aux0/aux1 may be stale or short).
  void assign_replica_from(const SoaBlock& other);

  /// Capacity-preserving copy of the lanes a staged VISITOR block needs:
  /// kernel inputs only (px/py/mass/charge/id). Visitor blocks are the
  /// read-only source operand of the force sweeps — their force lanes are
  /// never read or written — so the shift/skew staging copies skip 6 of the
  /// 11 lanes. Serialized size still derives from size() alone, so ledger
  /// bytes are unchanged by construction.
  void assign_visitor_from(const SoaBlock& other);

  /// Lane-exact in-block copy of element src_i onto dst_i (dst_i <= src_i
  /// in the compaction loops, so reads never see an overwritten slot).
  void copy_within(std::size_t dst_i, std::size_t src_i) noexcept;

  /// Drops elements [n, size()) from every lane; capacity is kept.
  void truncate(std::size_t n);

  /// Sets every lane's length to exactly n: shrinks like truncate, grows
  /// with value-initialized (zero) elements. Owner-computes phantom buffers
  /// use this — for a non-resident block only the *size* feeds the cost
  /// model, so the lanes may hold stale zeros.
  void resize(std::size_t n) { truncate(n); }

  /// Materializes element i as a wire-format Particle. Force and aux lanes
  /// round to float; the aux2/aux3 padding reads as zero.
  Particle get(std::size_t i) const noexcept;
  void set(std::size_t i, const Particle& p) noexcept;

  Block to_block() const;

  void clear_forces() noexcept;

  /// Lossless byte encoding for real transports (wire.hpp): every lane is
  /// copied bit-for-bit, so a block that round-trips through a socket is
  /// bitwise identical to the original — which is what lets the
  /// cross-backend parity suite demand identical trajectories. Note this is
  /// the *host* image (11 lanes, doubles intact), distinct from the modeled
  /// wire format whose size is DEFINED as size() * kParticleBytes for the
  /// ledger; the cost model never sees these bytes.
  void wire_put(wire::Writer& w) const;
  void wire_get(wire::Reader& r);

  // Lane accessors shared with SoaTile so BatchedEngine::sweep is generic
  // over "resident block" and "gathered tile" sources (float lanes are
  // promoted to double per load inside the sweep — an exact conversion).
  const float* xs() const noexcept { return px.data(); }
  const float* ys() const noexcept { return py.data(); }
  const float* charges() const noexcept { return charge.data(); }
  const float* masses() const noexcept { return mass.data(); }
  const std::int32_t* ids() const noexcept { return id.data(); }
  double* fxs() noexcept { return fx.data(); }
  double* fys() noexcept { return fy.data(); }

  /// Materializing const iterator: read-only range-for over a SoaBlock
  /// yields Particle values, so diagnostic loops written against the AoS
  /// Block keep working unchanged.
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Particle;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = Particle;

    const_iterator() = default;
    const_iterator(const SoaBlock* blk, std::size_t i) : blk_(blk), i_(i) {}

    Particle operator*() const noexcept { return blk_->get(i_); }
    const_iterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) noexcept {
      const_iterator tmp = *this;
      ++i_;
      return tmp;
    }
    bool operator==(const const_iterator& o) const noexcept { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const noexcept { return i_ != o.i_; }

   private:
    const SoaBlock* blk_ = nullptr;
    std::size_t i_ = 0;
  };

  const_iterator begin() const noexcept { return {this, 0}; }
  const_iterator end() const noexcept { return {this, size()}; }
};

/// Serialized size: what travels between virtual ranks is always the 52-byte
/// wire record, independent of the host-resident layout.
inline std::size_t block_bytes(const SoaBlock& b) noexcept {
  return b.size() * kParticleBytes;
}

inline void clear_forces(SoaBlock& b) noexcept { b.clear_forces(); }

}  // namespace canb::particles
