#include "particles/cell_list.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace canb::particles {

CellList::CellList(const Box& box, double cutoff) : box_(box), cutoff_(cutoff) {
  box.validate();
  CANB_REQUIRE(cutoff > 0.0, "cell list cutoff must be positive");
  periodic_ = box.boundary == Boundary::Periodic;
  nx_ = std::max(1, static_cast<int>(std::floor(box.lx / cutoff)));
  ny_ = box.dims == 2 ? std::max(1, static_cast<int>(std::floor(box.ly / cutoff))) : 1;
  // With fewer than 3 bins along a periodic axis, the 3x3 neighborhood would
  // visit the same bin twice; collapse to a single bin in that case.
  if (periodic_ && nx_ < 3) nx_ = 1;
  if (periodic_ && ny_ < 3 && box.dims == 2) ny_ = 1;
  bins_.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_));
}

std::pair<int, int> CellList::bin_of(double px, double py) const noexcept {
  int cx = static_cast<int>(px / box_.lx * nx_);
  cx = std::clamp(cx, 0, nx_ - 1);
  int cy = 0;
  if (box_.dims == 2) {
    cy = static_cast<int>(py / box_.ly * ny_);
    cy = std::clamp(cy, 0, ny_ - 1);
  }
  return {cx, cy};
}

void CellList::build(std::span<const Particle> ps) {
  for (auto& b : bins_) b.clear();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto [cx, cy] = bin_of(ps[i]);
    bin(cx, cy).push_back(static_cast<int>(i));
  }
}

void CellList::build(const SoaBlock& ps, ThreadPool* pool) {
  for (auto& b : bins_) b.clear();
  const std::size_t n = ps.size();
  flat_cell_.resize(n);
  const auto index_range = [&](int b, int e) {
    for (int i = b; i < e; ++i) {
      const auto u = static_cast<std::size_t>(i);
      const auto [cx, cy] = bin_of(static_cast<double>(ps.px[u]),
                                   static_cast<double>(ps.py[u]));
      flat_cell_[u] = cy * nx_ + cx;
    }
  };
  if (pool != nullptr && pool->thread_count() > 1) {
    // Fixed-size index chunks as scheduler tasks: each task writes a
    // disjoint flat_cell_ slice, so any schedule (static or stealing)
    // produces identical bins. Chunking finer than one-range-per-worker
    // lets stealing absorb binning skew from clustered inputs.
    constexpr int kBinChunk = 4096;
    const int total = static_cast<int>(n);
    const int ntasks = (total + kBinChunk - 1) / kBinChunk;
    pool->parallel_tasks(ntasks, [&](int t, int) {
      index_range(t * kBinChunk, std::min(total, (t + 1) * kBinChunk));
    });
  } else {
    index_range(0, static_cast<int>(n));
  }
  // Placement stays serial in index order: bin contents are identical no
  // matter how the index computation above was chunked.
  for (std::size_t i = 0; i < n; ++i) {
    bins_[static_cast<std::size_t>(flat_cell_[i])].push_back(static_cast<int>(i));
  }
}

void CellList::nonempty_cells(std::vector<int>& out) const {
  for (std::size_t f = 0; f < bins_.size(); ++f)
    if (!bins_[f].empty()) out.push_back(static_cast<int>(f));
}

void CellList::gather_neighborhood(int flat, std::vector<int>& out) const {
  visit_neighborhood(flat % nx_, flat / nx_, [&](int cx2, int cy2) {
    const auto& b = bin(cx2, cy2);
    out.insert(out.end(), b.begin(), b.end());
  });
}

int CellList::neighborhood_count(int flat) const noexcept {
  int count = 0;
  visit_neighborhood(flat % nx_, flat / nx_, [&](int cx2, int cy2) {
    count += static_cast<int>(bin(cx2, cy2).size());
  });
  return count;
}

}  // namespace canb::particles
