#include "particles/cell_list.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace canb::particles {

CellList::CellList(const Box& box, double cutoff) : box_(box), cutoff_(cutoff) {
  box.validate();
  CANB_REQUIRE(cutoff > 0.0, "cell list cutoff must be positive");
  periodic_ = box.boundary == Boundary::Periodic;
  nx_ = std::max(1, static_cast<int>(std::floor(box.lx / cutoff)));
  ny_ = box.dims == 2 ? std::max(1, static_cast<int>(std::floor(box.ly / cutoff))) : 1;
  // With fewer than 3 bins along a periodic axis, the 3x3 neighborhood would
  // visit the same bin twice; collapse to a single bin in that case.
  if (periodic_ && nx_ < 3) nx_ = 1;
  if (periodic_ && ny_ < 3 && box.dims == 2) ny_ = 1;
  bins_.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_));
}

std::pair<int, int> CellList::bin_of(double px, double py) const noexcept {
  int cx = static_cast<int>(px / box_.lx * nx_);
  cx = std::clamp(cx, 0, nx_ - 1);
  int cy = 0;
  if (box_.dims == 2) {
    cy = static_cast<int>(py / box_.ly * ny_);
    cy = std::clamp(cy, 0, ny_ - 1);
  }
  return {cx, cy};
}

void CellList::build(std::span<const Particle> ps) {
  for (auto& b : bins_) b.clear();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto [cx, cy] = bin_of(ps[i]);
    bin(cx, cy).push_back(static_cast<int>(i));
  }
}

void CellList::build(const SoaBlock& ps, ThreadPool* pool) {
  for (auto& b : bins_) b.clear();
  const std::size_t n = ps.size();
  flat_cell_.resize(n);
  const auto index_range = [&](int b, int e) {
    for (int i = b; i < e; ++i) {
      const auto u = static_cast<std::size_t>(i);
      const auto [cx, cy] = bin_of(static_cast<double>(ps.px[u]),
                                   static_cast<double>(ps.py[u]));
      flat_cell_[u] = cy * nx_ + cx;
    }
  };
  if (pool != nullptr && pool->thread_count() > 1) {
    pool->parallel_for_chunks(0, static_cast<int>(n), index_range);
  } else {
    index_range(0, static_cast<int>(n));
  }
  // Placement stays serial in index order: bin contents are identical no
  // matter how the index computation above was chunked.
  for (std::size_t i = 0; i < n; ++i) {
    bins_[static_cast<std::size_t>(flat_cell_[i])].push_back(static_cast<int>(i));
  }
}

}  // namespace canb::particles
