#include "sim/trajectory.hpp"

#include <fstream>
#include <sstream>

#include "support/assert.hpp"

namespace canb::sim {

void write_xyz_frame(std::ostream& os, const particles::Block& ps, const std::string& comment) {
  os << ps.size() << '\n';
  std::string clean = comment;
  for (auto& ch : clean) {
    if (ch == '\n' || ch == '\r') ch = ' ';
  }
  os << clean << '\n';
  for (const auto& p : ps) {
    os << "P " << p.px << ' ' << p.py << " 0\n";
  }
}

bool read_xyz_frame(std::istream& is, particles::Block& out, std::string* comment) {
  std::string line;
  // Skip blank lines between frames.
  do {
    if (!std::getline(is, line)) return false;
  } while (line.empty());
  std::size_t n = 0;
  try {
    n = static_cast<std::size_t>(std::stoull(line));
  } catch (const std::exception&) {
    CANB_REQUIRE(false, "XYZ frame header is not a particle count: " + line);
  }
  CANB_REQUIRE(std::getline(is, line), "XYZ frame truncated: missing comment line");
  if (comment) *comment = line;
  out.assign(n, particles::Particle{});
  for (std::size_t i = 0; i < n; ++i) {
    CANB_REQUIRE(std::getline(is, line), "XYZ frame truncated: missing atom line");
    std::istringstream ls(line);
    std::string element;
    double x = 0;
    double y = 0;
    double z = 0;
    CANB_REQUIRE(static_cast<bool>(ls >> element >> x >> y >> z),
                 "malformed XYZ atom line: " + line);
    auto& p = out[i];
    p.px = static_cast<float>(x);
    p.py = static_cast<float>(y);
    p.id = static_cast<int>(i);
  }
  return true;
}

struct TrajectoryWriter::Impl {
  std::ofstream file;
};

TrajectoryWriter::TrajectoryWriter(const std::string& path, Format format)
    : impl_(new Impl), format_(format) {
  impl_->file.open(path);
  CANB_REQUIRE(impl_->file.good(), "cannot open trajectory file: " + path);
  if (format_ == Format::Csv) {
    impl_->file << "step,time,id,px,py,vx,vy,fx,fy,mass,charge\n";
  }
}

TrajectoryWriter::~TrajectoryWriter() { delete impl_; }

void TrajectoryWriter::append(const particles::Block& ps, int step, double time) {
  if (format_ == Format::Xyz) {
    std::ostringstream comment;
    comment << "step=" << step << " time=" << time;
    write_xyz_frame(impl_->file, ps, comment.str());
  } else {
    for (const auto& p : ps) {
      impl_->file << step << ',' << time << ',' << p.id << ',' << p.px << ',' << p.py << ','
                  << p.vx << ',' << p.vy << ',' << p.fx << ',' << p.fy << ',' << p.mass << ','
                  << p.charge << '\n';
    }
  }
  ++frames_;
}

}  // namespace canb::sim
