// Chrome-trace export: renders a simulation's communication schedule as a
// chrome://tracing / Perfetto JSON timeline — one track per virtual rank,
// one duration event per phase segment, flow arrows for messages.
//
// Usage: attach a TraceRecorder AND a ClockSampler to a run, then export.
// The ClockSampler snapshots per-rank clocks between phases (the ledger
// holds totals only, so segment boundaries must be sampled as they occur).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vmpi/trace.hpp"
#include "vmpi/virtual_comm.hpp"

namespace canb::sim {

/// Samples per-rank clocks over time: call `sample(vc, label)` after each
/// engine phase (or step) of interest; each sample becomes one colored
/// segment per rank in the exported timeline.
class ClockSampler {
 public:
  struct Sample {
    std::string label;
    std::vector<double> clocks;  ///< per-rank clock at sample time (seconds)
  };

  void sample(const vmpi::VirtualComm& vc, std::string label);
  const std::vector<Sample>& samples() const noexcept { return samples_; }
  void clear() { samples_.clear(); }

 private:
  std::vector<Sample> samples_;
};

/// Writes Chrome trace-event JSON. Each rank is a "thread"; each interval
/// between consecutive samples becomes a duration event labelled with the
/// later sample's label. If `trace` is non-null, point-to-point messages
/// are added as flow-style instant events on the sender's track.
void export_chrome_trace(const std::string& path, const ClockSampler& sampler,
                         const vmpi::TraceRecorder* trace = nullptr,
                         double time_scale_us = 1e6);

}  // namespace canb::sim
