// High-level simulation facade: pick a decomposition method, a machine
// model, and a kernel; feed particles; step. This is the public entry point
// used by the examples; benches and tests drive the engines directly.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "core/ca_all_pairs.hpp"
#include "core/ca_cutoff.hpp"
#include "core/host_tuner.hpp"
#include "core/midpoint.hpp"
#include "core/spatial_halo.hpp"
#include "decomp/force_decomposition.hpp"
#include "decomp/partition.hpp"
#include "decomp/particle_decomposition.hpp"
#include "obs/telemetry.hpp"
#include "particles/init.hpp"
#include "particles/simd/simd.hpp"
#include "sim/report.hpp"
#include "support/assert.hpp"

namespace canb::sim {

enum class Method {
  CaAllPairs,         ///< Algorithm 1 (the paper's contribution)
  CaCutoff,           ///< Algorithm 2 / Section IV-C (1D or 2D from box.dims)
  ParticleRing,       ///< baseline: systolic particle decomposition
  ParticleAllGather,  ///< baseline: naive all-gather decomposition
  ForceDecomp,        ///< baseline: Plimpton force decomposition
  SpatialHalo,        ///< baseline: halo-exchange spatial decomposition (c=1)
  Midpoint,           ///< related work: the midpoint method (Section II-D)
};

const char* method_name(Method m) noexcept;

/// Host autotuning mode (core/host_tuner.hpp).
enum class TuneMode {
  Off,    ///< apply Config::engine / Config::sweep exactly as given
  Auto,   ///< use a cached decision when present, calibrate on a miss
  Force,  ///< always re-calibrate and overwrite the cache entry
};

inline const char* tune_mode_name(TuneMode m) noexcept {
  switch (m) {
    case TuneMode::Off: return "off";
    case TuneMode::Auto: return "auto";
    case TuneMode::Force: return "force";
  }
  return "?";
}

/// Parses "off" | "auto" | "force"; nullopt on anything else.
inline std::optional<TuneMode> parse_tune_mode(std::string_view name) noexcept {
  if (name == "off") return TuneMode::Off;
  if (name == "auto") return TuneMode::Auto;
  if (name == "force") return TuneMode::Force;
  return std::nullopt;
}

/// Splits q into the most square qx-by-qy factorization (qx <= qy).
std::pair<int, int> near_square_factors(int q);

template <particles::ForceKernel K>
class Simulation {
 public:
  using Policy = core::RealPolicy<K>;
  using Buffer = typename Policy::Buffer;

  struct Config {
    Method method = Method::CaAllPairs;
    int p = 4;
    int c = 1;  ///< replication factor (CA methods only)
    machine::MachineModel machine;
    particles::Box box = particles::Box::reflective_2d(1.0);
    K kernel{};
    double cutoff = 0.0;  ///< required > 0 for Method::CaCutoff
    double dt = 1e-3;
    std::string integrator = "velocity-verlet";
    /// Host-side force sweep implementation (see particles/batched_engine.hpp).
    /// Affects host wall time only: the virtual-time ledger is engine-invariant.
    particles::KernelEngine engine = particles::KernelEngine::Scalar;
    /// Sweep knobs for the batched engine (N3L half-sweep, tile width).
    /// Host wall time only, like `engine`; overwritten by the tuner when
    /// `tune` is not Off.
    particles::SweepTuning sweep{};
    /// Host task scheduler for the attached pool (support/parallel.hpp):
    /// installed on the pool by set_host_pool. Execution order only —
    /// trajectories, ledgers, and traces are bitwise identical under
    /// static and stealing (property-tested). Overwritten by the tuner
    /// when `tune` is not Off.
    SchedMode sched = SchedMode::kStatic;
    /// Max tasks clipped per steal (stealing mode only; clamped >= 1).
    int steal_grain = 1;
    /// Host autotuning. Off leaves `engine`/`sweep`/SIMD dispatch exactly
    /// as configured; Auto/Force run core::HostTuner at construction and
    /// install its choice (engine, sweep knobs, scheduler, SIMD backend).
    /// The tuned thread count is reported via tuned() — attaching a pool
    /// is still the caller's call (set_host_pool).
    TuneMode tune = TuneMode::Off;
    /// Workload-shape label for the tuner ("uniform", "plummer", "ring",
    /// "clusters"): shapes its calibration particles and keys the cache
    /// entry. Ignored when `tune` is Off.
    std::string tune_distribution = "uniform";
    /// Tuning-cache path (docs/TUNING.md). Empty = calibrate in-process
    /// without persistence. Ignored when `tune` is Off.
    std::string tune_cache;
    /// Fault/straggler injection (vmpi/fault.hpp). Disengaged by default;
    /// a config with all rates zero is attached but inert (bitwise-identical
    /// clocks, ledgers, and trajectories — tested).
    std::optional<vmpi::FaultConfig> fault;
    /// Observability level (obs/telemetry.hpp). Off by default; attaching
    /// telemetry never changes clocks, ledgers, or trajectories (tested).
    obs::ObsLevel obs = obs::ObsLevel::Off;
    /// Host data plane (vmpi/buffer_pool.hpp): pooled staging buffers,
    /// lane-subset copies, and parallel broadcast/reduce data movement.
    /// Host execution only — ledgers, traces, and trajectories are bitwise
    /// identical with it on or off (tested); off selects the legacy
    /// serial/allocating host path.
    bool pooled_data_plane = true;
    /// Real byte transport beneath the vmpi primitives (vmpi/transport.hpp).
    /// Null (the default) is the modeled arm: costs only, no fabric. When
    /// set, every message is serialized through the transport and receivers
    /// adopt the wire bytes — trajectories, ledgers, and traces stay
    /// bitwise identical to the modeled arm (tests/test_transport_parity).
    /// Shared (not unique) so multi-endpoint harnesses can hold the
    /// endpoint while the Simulation uses it.
    std::shared_ptr<vmpi::Transport> transport;
  };

  Simulation(Config cfg, particles::Block initial)
      : cfg_(std::move(cfg)),
        tuned_(maybe_tune(cfg_, initial.size())),
        engine_(make_engine(cfg_, std::move(initial))) {
    set_integrator(cfg_.integrator);
    // One DataPlane per run: every engine that supports it shares the same
    // buffer arena (and later the same host pool via set_host_pool). A
    // disabled plane hands engines a nullptr, selecting the legacy path.
    if (cfg_.pooled_data_plane) plane_ = std::make_shared<vmpi::DataPlane<Buffer>>();
    std::visit(
        [&](auto& e) {
          if constexpr (requires { e.set_data_plane(plane_); }) e.set_data_plane(plane_);
        },
        engine_);
    if (cfg_.fault) {
      fault_model_ = std::make_unique<vmpi::PerturbationModel>(*cfg_.fault, cfg_.p);
      comm().set_fault(fault_model_.get());
    }
    if (cfg_.transport) comm().set_transport(cfg_.transport.get());
    if (cfg_.obs != obs::ObsLevel::Off) {
      telemetry_ = std::make_unique<obs::Telemetry>(cfg_.obs);
      std::visit(
          [&](auto& e) {
            // CA engines take telemetry directly (span samples at phase
            // boundaries); baselines get the metrics-only observer hookup.
            if constexpr (requires { e.set_telemetry(telemetry_.get()); }) {
              e.set_telemetry(telemetry_.get());
            } else {
              telemetry_->attach(e.comm());
            }
          },
          engine_);
      // Record which SIMD backend the host sweeps dispatch to (canb_obs
      // does not link canb_particles, so the simulation reports it).
      telemetry_->set_sweep_backend(
          particles::simd::backend_name(particles::simd::active()));
    }
  }

  void set_integrator(const std::string& name) {
    std::visit([&](auto& e) { e.set_integrator(particles::make_integrator(name)); }, engine_);
  }

  /// Attaches a host thread pool to engines that support parallel force
  /// loops (the CA engines); a no-op for the simple baselines. Installs
  /// the configured (or tuned) scheduler mode and steal grain on the pool
  /// and keeps a reference so finalize_telemetry can publish its stats.
  void set_host_pool(std::shared_ptr<ThreadPool> pool) {
    if (pool) {
      pool->set_sched_mode(cfg_.sched);
      pool->set_steal_grain(cfg_.steal_grain);
      pool_ = pool;
    }
    std::visit(
        [&](auto& e) {
          if constexpr (requires { e.set_host_pool(pool); }) e.set_host_pool(std::move(pool));
        },
        engine_);
  }

  void step() {
    std::visit([](auto& e) { e.step(); }, engine_);
    ++steps_;
  }

  void run(int steps) {
    for (int i = 0; i < steps; ++i) step();
  }

  int steps_taken() const noexcept { return steps_; }

  /// All particles, sorted by id (authoritative owner copies).
  particles::Block gather() const {
    auto blocks = std::visit([](const auto& e) { return e.team_results(); }, engine_);
    auto all = decomp::concat(blocks);
    particles::sort_by_id(all);
    return all;
  }

  const vmpi::VirtualComm& comm() const {
    return std::visit([](const auto& e) -> const vmpi::VirtualComm& { return e.comm(); },
                      engine_);
  }

  vmpi::VirtualComm& comm() {
    return std::visit([](auto& e) -> vmpi::VirtualComm& { return e.comm(); }, engine_);
  }

  /// The attached fault model, or nullptr when fault injection is off.
  const vmpi::PerturbationModel* fault_model() const noexcept { return fault_model_.get(); }

  /// The host-tuner decision applied at construction, or nullopt when
  /// tuning was off (or the blocks were too small to calibrate). The
  /// tuned thread count is advisory — pass it to set_host_pool to use it.
  const std::optional<core::HostTuneChoice>& tuned() const noexcept { return tuned_; }

  /// The attached telemetry, or nullptr when observability is off.
  obs::Telemetry* telemetry() noexcept { return telemetry_.get(); }
  const obs::Telemetry* telemetry() const noexcept { return telemetry_.get(); }

  /// Folds per-rank telemetry accumulators into gauges and recovers the
  /// critical path from the span timeline (empty report below Full level).
  /// Call after the last step.
  obs::CriticalPathReport finalize_telemetry() {
    if (!telemetry_) return {};
    if (pool_) {
      telemetry_->publish_scheduler(to_string(pool_->sched_mode()), pool_->scheduler_stats());
    }
    if (cfg_.transport) {
      telemetry_->publish_transport(vmpi::transport_kind_name(cfg_.transport->kind()),
                                    cfg_.transport->stats());
    }
    telemetry_->finalize(comm());
    return obs::analyze_critical_path(telemetry_->spans(), telemetry_->trace());
  }

  /// Per-step report over every step taken so far.
  RunReport report(std::string label = {}) const {
    return summarize(comm(), std::max(1, steps_),
                     label.empty() ? method_name(cfg_.method) : std::move(label), cfg_.c);
  }

  const Config& config() const noexcept { return cfg_; }

 private:
  using CaAllPairsT = core::CaAllPairs<Policy>;
  using CaCutoffT = core::CaCutoff<Policy>;
  using SpatialHaloT = core::SpatialHaloDecomposition<Policy>;
  using MidpointT = core::MidpointMethod<K>;
  using RingT = decomp::ParticleDecompositionRing<Policy>;
  using AllGatherT = decomp::ParticleDecompositionAllGather<Policy>;
  using ForceT = decomp::ForceDecomposition<Policy>;
  using EngineVariant =
      std::variant<CaAllPairsT, CaCutoffT, SpatialHaloT, MidpointT, RingT, AllGatherT, ForceT>;

  /// Runs the host tuner when Config::tune asks for it and installs the
  /// winning choice into `cfg` (engine, sweep knobs) and the process SIMD
  /// dispatch. Runs before make_engine so the policy sees the tuned config.
  static std::optional<core::HostTuneChoice> maybe_tune(Config& cfg, std::size_t total_n) {
    if (cfg.tune == TuneMode::Off) return std::nullopt;
    // Calibrate at the per-rank resident block size the sweeps will see.
    int q = cfg.p;
    if (cfg.method == Method::CaAllPairs || cfg.method == Method::CaCutoff)
      q = std::max(1, cfg.p / std::max(1, cfg.c));
    const std::uint64_t bn = static_cast<std::uint64_t>(total_n) /
                             static_cast<std::uint64_t>(std::max(1, q));
    if (bn < 2) return std::nullopt;  // nothing worth calibrating

    typename core::HostTuner<K>::Config tcfg;
    tcfg.box = cfg.box;
    tcfg.kernel = cfg.kernel;
    tcfg.cutoff = cfg.cutoff;
    tcfg.n = bn;
    tcfg.distribution = cfg.tune_distribution;
    core::HostTuner<K> tuner(std::move(tcfg));

    typename core::HostTuner<K>::Result result;
    if (cfg.tune_cache.empty()) {
      result = tuner.tune();
    } else {
      core::TuningCache cache = core::TuningCache::load_or_empty(cfg.tune_cache);
      result = tuner.tune_with_cache(cache, cfg.tune == TuneMode::Force);
      if (!result.candidates.empty()) cache.save(cfg.tune_cache);  // measured fresh
    }
    cfg.engine = result.best.engine;
    cfg.sweep = result.best.tuning;
    cfg.sched = result.best.sched;
    cfg.steal_grain = result.best.steal_grain;
    particles::simd::set_backend(result.best.backend);
    return result.best;
  }

  static EngineVariant make_engine(const Config& cfg, particles::Block initial) {
    cfg.box.validate();
    Policy policy(typename Policy::Config{cfg.box, cfg.kernel, cfg.cutoff, cfg.dt, cfg.engine,
                                          cfg.sweep});
    switch (cfg.method) {
      case Method::CaAllPairs: {
        const int q = cfg.p / cfg.c;
        return EngineVariant(
            std::in_place_type<CaAllPairsT>,
            typename CaAllPairsT::Config{cfg.p, cfg.c, cfg.machine}, std::move(policy),
            decomp::split_even(initial, q));
      }
      case Method::CaCutoff: {
        CANB_REQUIRE(cfg.cutoff > 0.0, "Method::CaCutoff requires a positive cutoff");
        const int q = cfg.p / cfg.c;
        const bool periodic = cfg.box.boundary == particles::Boundary::Periodic;
        if (cfg.box.dims == 1) {
          const int m = core::window_radius_teams(cfg.cutoff, cfg.box.lx, q);
          return EngineVariant(
              std::in_place_type<CaCutoffT>,
              typename CaCutoffT::Config{cfg.p, cfg.c, cfg.machine,
                                         core::CutoffGeometry::make_1d(q, m), periodic},
              std::move(policy), decomp::split_spatial_1d(initial, cfg.box, q));
        }
        const auto [qx, qy] = near_square_factors(q);
        const int mx = core::window_radius_teams(cfg.cutoff, cfg.box.lx, qx);
        const int my = core::window_radius_teams(cfg.cutoff, cfg.box.ly, qy);
        return EngineVariant(
            std::in_place_type<CaCutoffT>,
            typename CaCutoffT::Config{cfg.p, cfg.c, cfg.machine,
                                       core::CutoffGeometry::make_2d(qx, qy, mx, my), periodic},
            std::move(policy), decomp::split_spatial_2d(initial, cfg.box, qx, qy));
      }
      case Method::SpatialHalo: {
        CANB_REQUIRE(cfg.cutoff > 0.0, "Method::SpatialHalo requires a positive cutoff");
        CANB_REQUIRE(cfg.c == 1, "the halo-exchange baseline does not replicate (c must be 1)");
        if (cfg.box.dims == 1) {
          const int m = core::window_radius_teams(cfg.cutoff, cfg.box.lx, cfg.p);
          return EngineVariant(
              std::in_place_type<SpatialHaloT>,
              typename SpatialHaloT::Config{cfg.p, cfg.machine,
                                            core::CutoffGeometry::make_1d(cfg.p, m),
                                            cfg.box.boundary == particles::Boundary::Periodic},
              std::move(policy), decomp::split_spatial_1d(initial, cfg.box, cfg.p));
        }
        const auto [qx, qy] = near_square_factors(cfg.p);
        const int mx = core::window_radius_teams(cfg.cutoff, cfg.box.lx, qx);
        const int my = core::window_radius_teams(cfg.cutoff, cfg.box.ly, qy);
        return EngineVariant(
            std::in_place_type<SpatialHaloT>,
            typename SpatialHaloT::Config{cfg.p, cfg.machine,
                                          core::CutoffGeometry::make_2d(qx, qy, mx, my),
                                          cfg.box.boundary == particles::Boundary::Periodic},
            std::move(policy), decomp::split_spatial_2d(initial, cfg.box, qx, qy));
      }
      case Method::Midpoint: {
        CANB_REQUIRE(cfg.cutoff > 0.0, "Method::Midpoint requires a positive cutoff");
        CANB_REQUIRE(cfg.c == 1, "the midpoint method does not replicate (c must be 1)");
        const bool periodic = cfg.box.boundary == particles::Boundary::Periodic;
        if (cfg.box.dims == 1) {
          const int m = core::window_radius_teams(cfg.cutoff, cfg.box.lx, cfg.p);
          return EngineVariant(
              std::in_place_type<MidpointT>,
              typename MidpointT::Config{cfg.p, cfg.machine,
                                         core::CutoffGeometry::make_1d(cfg.p, m), periodic},
              std::move(policy), decomp::split_spatial_1d(initial, cfg.box, cfg.p));
        }
        const auto [qx, qy] = near_square_factors(cfg.p);
        const int mx = core::window_radius_teams(cfg.cutoff, cfg.box.lx, qx);
        const int my = core::window_radius_teams(cfg.cutoff, cfg.box.ly, qy);
        return EngineVariant(
            std::in_place_type<MidpointT>,
            typename MidpointT::Config{cfg.p, cfg.machine,
                                       core::CutoffGeometry::make_2d(qx, qy, mx, my), periodic},
            std::move(policy), decomp::split_spatial_2d(initial, cfg.box, qx, qy));
      }
      case Method::ParticleRing:
        return EngineVariant(std::in_place_type<RingT>,
                             typename RingT::Config{cfg.p, cfg.machine}, std::move(policy),
                             decomp::split_even(initial, cfg.p));
      case Method::ParticleAllGather:
        return EngineVariant(std::in_place_type<AllGatherT>,
                             typename AllGatherT::Config{cfg.p, cfg.machine}, std::move(policy),
                             decomp::split_even(initial, cfg.p));
      case Method::ForceDecomp: {
        const int s = static_cast<int>(std::lround(std::sqrt(static_cast<double>(cfg.p))));
        return EngineVariant(std::in_place_type<ForceT>,
                             typename ForceT::Config{cfg.p, cfg.machine}, std::move(policy),
                             decomp::split_even(initial, s));
      }
    }
    CANB_REQUIRE(false, "unknown simulation method");
    // Unreachable; silences the missing-return warning.
    throw PreconditionError("unreachable");
  }

  Config cfg_;
  /// Declared before engine_: maybe_tune edits cfg_ (and the SIMD dispatch)
  /// before make_engine constructs the policy from it.
  std::optional<core::HostTuneChoice> tuned_;
  EngineVariant engine_;
  /// Owned here (heap) so the pointer held by the engine's VirtualComm
  /// stays valid if the Simulation object itself is moved.
  std::unique_ptr<vmpi::PerturbationModel> fault_model_;
  /// Heap-owned for the same move-stability reason as the fault model.
  std::unique_ptr<obs::Telemetry> telemetry_;
  /// The run-wide host data plane (null when pooled_data_plane is false).
  std::shared_ptr<vmpi::DataPlane<Buffer>> plane_;
  /// The attached host pool (null until set_host_pool): kept so
  /// finalize_telemetry can publish the scheduler's counters.
  std::shared_ptr<ThreadPool> pool_;
  int steps_ = 0;
};

}  // namespace canb::sim
