// High-level simulation facade: pick a decomposition method, a machine
// model, and a kernel; feed particles; step. This is the public entry point
// used by the examples; benches and tests drive the engines directly.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "core/ca_all_pairs.hpp"
#include "core/ca_cutoff.hpp"
#include "core/host_tuner.hpp"
#include "core/midpoint.hpp"
#include "core/spatial_halo.hpp"
#include "decomp/force_decomposition.hpp"
#include "decomp/partition.hpp"
#include "decomp/particle_decomposition.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/serve.hpp"
#include "obs/snapshot.hpp"
#include "obs/step_series.hpp"
#include "obs/telemetry.hpp"
#include "particles/init.hpp"
#include "particles/simd/simd.hpp"
#include "sim/report.hpp"
#include "support/assert.hpp"
#include "vmpi/gather.hpp"

namespace canb::sim {

enum class Method {
  CaAllPairs,         ///< Algorithm 1 (the paper's contribution)
  CaCutoff,           ///< Algorithm 2 / Section IV-C (1D or 2D from box.dims)
  ParticleRing,       ///< baseline: systolic particle decomposition
  ParticleAllGather,  ///< baseline: naive all-gather decomposition
  ForceDecomp,        ///< baseline: Plimpton force decomposition
  SpatialHalo,        ///< baseline: halo-exchange spatial decomposition (c=1)
  Midpoint,           ///< related work: the midpoint method (Section II-D)
};

const char* method_name(Method m) noexcept;

/// Host autotuning mode (core/host_tuner.hpp).
enum class TuneMode {
  Off,    ///< apply Config::engine / Config::sweep exactly as given
  Auto,   ///< use a cached decision when present, calibrate on a miss
  Force,  ///< always re-calibrate and overwrite the cache entry
};

inline const char* tune_mode_name(TuneMode m) noexcept {
  switch (m) {
    case TuneMode::Off: return "off";
    case TuneMode::Auto: return "auto";
    case TuneMode::Force: return "force";
  }
  return "?";
}

/// Parses "off" | "auto" | "force"; nullopt on anything else.
inline std::optional<TuneMode> parse_tune_mode(std::string_view name) noexcept {
  if (name == "off") return TuneMode::Off;
  if (name == "auto") return TuneMode::Auto;
  if (name == "force") return TuneMode::Force;
  return std::nullopt;
}

/// Splits q into the most square qx-by-qy factorization (qx <= qy).
std::pair<int, int> near_square_factors(int q);

template <particles::ForceKernel K>
class Simulation {
 public:
  using Policy = core::RealPolicy<K>;
  using Buffer = typename Policy::Buffer;

  struct Config {
    Method method = Method::CaAllPairs;
    int p = 4;
    int c = 1;  ///< replication factor (CA methods only)
    machine::MachineModel machine;
    particles::Box box = particles::Box::reflective_2d(1.0);
    K kernel{};
    double cutoff = 0.0;  ///< required > 0 for Method::CaCutoff
    double dt = 1e-3;
    std::string integrator = "velocity-verlet";
    /// Host-side force sweep implementation (see particles/batched_engine.hpp).
    /// Affects host wall time only: the virtual-time ledger is engine-invariant.
    particles::KernelEngine engine = particles::KernelEngine::Scalar;
    /// Sweep knobs for the batched engine (N3L half-sweep, tile width).
    /// Host wall time only, like `engine`; overwritten by the tuner when
    /// `tune` is not Off.
    particles::SweepTuning sweep{};
    /// Host task scheduler for the attached pool (support/parallel.hpp):
    /// installed on the pool by set_host_pool. Execution order only —
    /// trajectories, ledgers, and traces are bitwise identical under
    /// static and stealing (property-tested). Overwritten by the tuner
    /// when `tune` is not Off.
    SchedMode sched = SchedMode::kStatic;
    /// Max tasks clipped per steal (stealing mode only; clamped >= 1).
    int steal_grain = 1;
    /// Host autotuning. Off leaves `engine`/`sweep`/SIMD dispatch exactly
    /// as configured; Auto/Force run core::HostTuner at construction and
    /// install its choice (engine, sweep knobs, scheduler, SIMD backend).
    /// The tuned thread count is reported via tuned() — attaching a pool
    /// is still the caller's call (set_host_pool).
    TuneMode tune = TuneMode::Off;
    /// Workload-shape label for the tuner ("uniform", "plummer", "ring",
    /// "clusters"): shapes its calibration particles and keys the cache
    /// entry. Ignored when `tune` is Off.
    std::string tune_distribution = "uniform";
    /// Tuning-cache path (docs/TUNING.md). Empty = calibrate in-process
    /// without persistence. Ignored when `tune` is Off.
    std::string tune_cache;
    /// Fault/straggler injection (vmpi/fault.hpp). Disengaged by default;
    /// a config with all rates zero is attached but inert (bitwise-identical
    /// clocks, ledgers, and trajectories — tested).
    std::optional<vmpi::FaultConfig> fault;
    /// Observability level (obs/telemetry.hpp). Off by default; attaching
    /// telemetry never changes clocks, ledgers, or trajectories (tested).
    obs::ObsLevel obs = obs::ObsLevel::Off;
    /// Host data plane (vmpi/buffer_pool.hpp): pooled staging buffers,
    /// lane-subset copies, and parallel broadcast/reduce data movement.
    /// Host execution only — ledgers, traces, and trajectories are bitwise
    /// identical with it on or off (tested); off selects the legacy
    /// serial/allocating host path.
    bool pooled_data_plane = true;
    /// Real byte transport beneath the vmpi primitives (vmpi/transport.hpp).
    /// Null (the default) is the modeled arm: costs only, no fabric. When
    /// set, every message is serialized through the transport and receivers
    /// adopt the wire bytes — trajectories, ledgers, and traces stay
    /// bitwise identical to the modeled arm (tests/test_transport_parity).
    /// Shared (not unique) so multi-endpoint harnesses can hold the
    /// endpoint while the Simulation uses it.
    std::shared_ptr<vmpi::Transport> transport;
    /// Execution mode on a multi-group transport (vmpi/transport.hpp).
    /// OwnerComputes (the default) makes each process run force sweeps,
    /// reassign splits, and data-plane copies only for its owned ranks —
    /// the virtual cost plane stays fully replicated, so ledgers, clocks,
    /// traces, and gathered trajectories are bitwise identical to the
    /// modeled arm. Effective only for the CA methods with a transport
    /// spanning more than one group; everything else silently runs
    /// lockstep (full SPMD replication, the PR 8 behavior).
    vmpi::ExecMode exec = vmpi::ExecMode::OwnerComputes;
    /// Live scrape endpoint (obs/serve.hpp): when >= 0, an HTTP server
    /// binds 127.0.0.1:<port> (0 = ephemeral) and serves /metrics,
    /// /healthz, /spans.csv, /trace.json refreshed every step. On a
    /// multi-group transport only group 0 serves (the mesh-merged view).
    /// Requires obs != Off.
    int serve_port = -1;
    /// Flight recorder (obs/step_series.hpp): per-step sample ring of this
    /// capacity; 0 disables. Requires obs != Off.
    int series_capacity = 0;
    /// A step whose HOST wall time exceeds this multiple of the rolling
    /// median is flagged as a straggler in the flight recorder.
    double straggler_factor = 3.0;
  };

  Simulation(Config cfg, particles::Block initial)
      : cfg_(std::move(cfg)),
        tuned_(maybe_tune(cfg_, initial.size())),
        engine_(make_engine(cfg_, std::move(initial))) {
    set_integrator(cfg_.integrator);
    // One DataPlane per run: every engine that supports it shares the same
    // buffer arena (and later the same host pool via set_host_pool). A
    // disabled plane hands engines a nullptr, selecting the legacy path.
    if (cfg_.pooled_data_plane) plane_ = std::make_shared<vmpi::DataPlane<Buffer>>();
    std::visit(
        [&](auto& e) {
          if constexpr (requires { e.set_data_plane(plane_); }) e.set_data_plane(plane_);
        },
        engine_);
    if (cfg_.fault) {
      fault_model_ = std::make_unique<vmpi::PerturbationModel>(*cfg_.fault, cfg_.p);
      comm().set_fault(fault_model_.get());
    }
    if (cfg_.transport) {
      comm().set_transport(cfg_.transport.get());
      // Owner-computes needs the engine-side residency gates, which only
      // the CA engines implement; other methods stay lockstep-replicated.
      owner_computes_ = cfg_.exec == vmpi::ExecMode::OwnerComputes &&
                        cfg_.transport->groups() > 1 &&
                        (cfg_.method == Method::CaAllPairs || cfg_.method == Method::CaCutoff);
      if (owner_computes_) comm().set_owner_computes(true);
    }
    if (cfg_.obs != obs::ObsLevel::Off) {
      telemetry_ = std::make_unique<obs::Telemetry>(cfg_.obs);
      std::visit(
          [&](auto& e) {
            // CA engines take telemetry directly (span samples at phase
            // boundaries); baselines get the metrics-only observer hookup.
            if constexpr (requires { e.set_telemetry(telemetry_.get()); }) {
              e.set_telemetry(telemetry_.get());
            } else {
              telemetry_->attach(e.comm());
            }
          },
          engine_);
      // Record which SIMD backend the host sweeps dispatch to (canb_obs
      // does not link canb_particles, so the simulation reports it).
      telemetry_->set_sweep_backend(
          particles::simd::backend_name(particles::simd::active()));
    }
    CANB_REQUIRE(cfg_.serve_port < 0 || telemetry_ != nullptr,
                 "serve_port needs observability enabled (obs != Off)");
    CANB_REQUIRE(cfg_.series_capacity == 0 || telemetry_ != nullptr,
                 "series_capacity needs observability enabled (obs != Off)");

    // Provenance for every export this run produces. The CLI augments it
    // (workload, seeds, thread counts) before the first artifact is written.
    manifest_.machine = cfg_.machine.name;
    manifest_.simd = particles::simd::backend_name(particles::simd::max_supported());
    manifest_.set("method", method_name(cfg_.method));
    manifest_.set("p", cfg_.p);
    manifest_.set("c", cfg_.c);
    manifest_.set("dt", cfg_.dt);
    if (cfg_.cutoff > 0.0) manifest_.set("cutoff", cfg_.cutoff);
    manifest_.set("engine", particles::engine_name(cfg_.engine));
    manifest_.set("obs_level", obs::obs_level_name(cfg_.obs));
    if (cfg_.transport) {
      manifest_.set("transport", vmpi::transport_kind_name(cfg_.transport->kind()));
      manifest_.set("transport_groups", cfg_.transport->groups());
      manifest_.set("transport_exec", vmpi::exec_mode_name(exec_mode()));
    }

    if (telemetry_) {
      // Multi-group transport: label this process's series and stand up the
      // step-boundary snapshot push so group 0 can export mesh-wide totals.
      if (cfg_.transport && cfg_.transport->groups() > 1) {
        telemetry_->set_group(cfg_.transport->group());
        mesh_ = std::make_unique<obs::MeshAggregator>(cfg_.transport);
      }
      if (cfg_.series_capacity > 0) {
        series_ = std::make_unique<obs::StepSeries>(
            static_cast<std::size_t>(cfg_.series_capacity), cfg_.straggler_factor);
      }
      if (cfg_.serve_port >= 0 && (mesh_ == nullptr || mesh_->primary())) {
        server_ = std::make_unique<obs::MetricsServer>(cfg_.serve_port);
      }
    }
  }

  void set_integrator(const std::string& name) {
    std::visit([&](auto& e) { e.set_integrator(particles::make_integrator(name)); }, engine_);
  }

  /// Attaches a host thread pool to engines that support parallel force
  /// loops (the CA engines); a no-op for the simple baselines. Installs
  /// the configured (or tuned) scheduler mode and steal grain on the pool
  /// and keeps a reference so finalize_telemetry can publish its stats.
  void set_host_pool(std::shared_ptr<ThreadPool> pool) {
    if (pool) {
      pool->set_sched_mode(cfg_.sched);
      pool->set_steal_grain(cfg_.steal_grain);
      pool_ = pool;
    }
    std::visit(
        [&](auto& e) {
          if constexpr (requires { e.set_host_pool(pool); }) e.set_host_pool(std::move(pool));
        },
        engine_);
  }

  void step() {
    // The live plane reads pre-step baselines so the flight recorder can
    // attribute per-step deltas. All of it is observation: the engine step
    // itself is untouched, so runs stay bitwise identical plane-on/off.
    const bool live = telemetry_ && (server_ || series_ || mesh_);
    std::chrono::steady_clock::time_point wall0{};
    obs::StepSample sample;
    if (live) {
      wall0 = std::chrono::steady_clock::now();
      sample.clock_advance_seconds = max_virtual_clock();
      sample.pairs_examined = telemetry_->sweep_pairs_examined();
      sample.pairs_computed = telemetry_->sweep_pairs_computed();
      sample.steals = pool_ ? pool_->scheduler_stats().steals : 0;
      sample.retransmits = cfg_.transport ? cfg_.transport->stats().retransmits : 0;
      sample.host_phase_seconds = telemetry_->host_seconds();
    }

    std::visit([](auto& e) { e.step(); }, engine_);
    ++steps_;

    if (live) {
      publish_live();
      if (series_) {
        sample.step = steps_;
        sample.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
        sample.clock_advance_seconds = max_virtual_clock() - sample.clock_advance_seconds;
        sample.pairs_examined = telemetry_->sweep_pairs_examined() - sample.pairs_examined;
        sample.pairs_computed = telemetry_->sweep_pairs_computed() - sample.pairs_computed;
        sample.steals = (pool_ ? pool_->scheduler_stats().steals : 0) - sample.steals;
        sample.retransmits =
            (cfg_.transport ? cfg_.transport->stats().retransmits : 0) - sample.retransmits;
        sample.host_phase_seconds = telemetry_->host_seconds() - sample.host_phase_seconds;
        series_->record(sample);
      }
      // Symmetric mesh exchange: every group reaches this point once per
      // step (same config, same schedule), so the push/recv pair matches.
      if (mesh_) mesh_->exchange(telemetry_->metrics(), static_cast<std::uint64_t>(steps_));
      publish_server(false);
    }
  }

  void run(int steps) {
    for (int i = 0; i < steps; ++i) step();
  }

  int steps_taken() const noexcept { return steps_; }

  /// All particles, sorted by id (authoritative owner copies). Under
  /// owner-computes the copied team blocks are first all-gathered across
  /// the process groups (vmpi/gather.hpp) — every group assembles the full
  /// authoritative state, so the call must be made symmetrically on every
  /// group (same discipline as the mesh exchange). Engine state is never
  /// touched: the gather operates on the team_results() copies.
  particles::Block gather() const {
    auto blocks = std::visit([](const auto& e) { return e.team_results(); }, engine_);
    if (owner_computes_) {
      std::vector<int> leaders;
      std::visit(
          [&](const auto& e) {
            if constexpr (requires { e.grid(); }) {
              leaders.reserve(static_cast<std::size_t>(e.grid().cols()));
              for (int t = 0; t < e.grid().cols(); ++t) leaders.push_back(e.grid().leader(t));
            }
          },
          engine_);
      CANB_REQUIRE(leaders.size() == blocks.size(),
                   "owner-computes gather needs the engine's team-leader map");
      vmpi::all_gather_teams(*cfg_.transport, leaders, blocks);
    }
    auto all = decomp::concat(blocks);
    particles::sort_by_id(all);
    return all;
  }

  /// The effective execution mode: OwnerComputes only when enabled AND
  /// active (CA method, multi-group transport); Lockstep otherwise.
  vmpi::ExecMode exec_mode() const noexcept {
    return owner_computes_ ? vmpi::ExecMode::OwnerComputes : vmpi::ExecMode::Lockstep;
  }

  /// Ranks whose payloads (and physics) this process owns: p on a
  /// single-endpoint run, the group's share on a multi-group transport.
  int local_ranks() const {
    if (!cfg_.transport) return cfg_.p;
    int n = 0;
    for (int r = 0; r < cfg_.p; ++r)
      if (cfg_.transport->local(r)) ++n;
    return n;
  }

  const vmpi::VirtualComm& comm() const {
    return std::visit([](const auto& e) -> const vmpi::VirtualComm& { return e.comm(); },
                      engine_);
  }

  vmpi::VirtualComm& comm() {
    return std::visit([](auto& e) -> vmpi::VirtualComm& { return e.comm(); }, engine_);
  }

  /// The attached fault model, or nullptr when fault injection is off.
  const vmpi::PerturbationModel* fault_model() const noexcept { return fault_model_.get(); }

  /// The host-tuner decision applied at construction, or nullopt when
  /// tuning was off (or the blocks were too small to calibrate). The
  /// tuned thread count is advisory — pass it to set_host_pool to use it.
  const std::optional<core::HostTuneChoice>& tuned() const noexcept { return tuned_; }

  /// The attached telemetry, or nullptr when observability is off.
  obs::Telemetry* telemetry() noexcept { return telemetry_.get(); }
  const obs::Telemetry* telemetry() const noexcept { return telemetry_.get(); }

  /// Folds per-rank telemetry accumulators into gauges and recovers the
  /// critical path from the span timeline (empty report below Full level).
  /// Call after the last step — on EVERY group of a multi-group transport
  /// (the final mesh exchange is symmetric); export the artifacts from
  /// group 0 only.
  obs::CriticalPathReport finalize_telemetry() {
    if (!telemetry_) return {};
    publish_live();
    telemetry_->finalize(comm());
    // Final push carries the registry with all finalize-time series, so
    // merged exports see each group's complete process-local state.
    if (mesh_) mesh_->exchange(telemetry_->metrics(), static_cast<std::uint64_t>(steps_));
    publish_server(true);
    return obs::analyze_critical_path(telemetry_->spans(), telemetry_->trace());
  }

  /// The registry every exporter should serialize: on a mesh primary, the
  /// local registry with each remote group's latest snapshot merged in;
  /// otherwise a copy of the local registry (empty when obs is Off).
  obs::MetricsRegistry merged_metrics() const {
    if (!telemetry_) return {};
    if (mesh_ && mesh_->primary()) return mesh_->merged(telemetry_->metrics());
    return telemetry_->metrics();
  }

  /// Largest rank virtual clock (the virtual makespan so far).
  double max_virtual_clock() const {
    const auto& vc = comm();
    double m = 0.0;
    for (int r = 0; r < vc.size(); ++r) m = std::max(m, vc.clock(r));
    return m;
  }

  /// Run provenance; mutable so the embedding CLI can add workload keys
  /// before the first export.
  obs::RunManifest& manifest() noexcept { return manifest_; }
  const obs::RunManifest& manifest() const noexcept { return manifest_; }

  /// The live scrape server, or nullptr (obs off / no serve port / not the
  /// mesh primary).
  obs::MetricsServer* server() noexcept { return server_.get(); }
  /// The flight recorder, or nullptr when series_capacity is 0.
  obs::StepSeries* step_series() noexcept { return series_.get(); }
  const obs::StepSeries* step_series() const noexcept { return series_.get(); }
  /// The mesh aggregator, or nullptr on single-endpoint runs.
  const obs::MeshAggregator* mesh() const noexcept { return mesh_.get(); }

  /// Per-step report over every step taken so far.
  RunReport report(std::string label = {}) const {
    return summarize(comm(), std::max(1, steps_),
                     label.empty() ? method_name(cfg_.method) : std::move(label), cfg_.c);
  }

  const Config& config() const noexcept { return cfg_; }

 private:
  using CaAllPairsT = core::CaAllPairs<Policy>;
  using CaCutoffT = core::CaCutoff<Policy>;
  using SpatialHaloT = core::SpatialHaloDecomposition<Policy>;
  using MidpointT = core::MidpointMethod<K>;
  using RingT = decomp::ParticleDecompositionRing<Policy>;
  using AllGatherT = decomp::ParticleDecompositionAllGather<Policy>;
  using ForceT = decomp::ForceDecomposition<Policy>;
  using EngineVariant =
      std::variant<CaAllPairsT, CaCutoffT, SpatialHaloT, MidpointT, RingT, AllGatherT, ForceT>;

  /// Runs the host tuner when Config::tune asks for it and installs the
  /// winning choice into `cfg` (engine, sweep knobs) and the process SIMD
  /// dispatch. Runs before make_engine so the policy sees the tuned config.
  static std::optional<core::HostTuneChoice> maybe_tune(Config& cfg, std::size_t total_n) {
    if (cfg.tune == TuneMode::Off) return std::nullopt;
    // Calibrate at the per-rank resident block size the sweeps will see.
    int q = cfg.p;
    if (cfg.method == Method::CaAllPairs || cfg.method == Method::CaCutoff)
      q = std::max(1, cfg.p / std::max(1, cfg.c));
    const std::uint64_t bn = static_cast<std::uint64_t>(total_n) /
                             static_cast<std::uint64_t>(std::max(1, q));
    if (bn < 2) return std::nullopt;  // nothing worth calibrating

    typename core::HostTuner<K>::Config tcfg;
    tcfg.box = cfg.box;
    tcfg.kernel = cfg.kernel;
    tcfg.cutoff = cfg.cutoff;
    tcfg.n = bn;
    tcfg.distribution = cfg.tune_distribution;
    core::HostTuner<K> tuner(std::move(tcfg));

    typename core::HostTuner<K>::Result result;
    if (cfg.tune_cache.empty()) {
      result = tuner.tune();
    } else {
      core::TuningCache cache = core::TuningCache::load_or_empty(cfg.tune_cache);
      result = tuner.tune_with_cache(cache, cfg.tune == TuneMode::Force);
      if (!result.candidates.empty()) cache.save(cfg.tune_cache);  // measured fresh
    }
    cfg.engine = result.best.engine;
    cfg.sweep = result.best.tuning;
    cfg.sched = result.best.sched;
    cfg.steal_grain = result.best.steal_grain;
    particles::simd::set_backend(result.best.backend);
    return result.best;
  }

  static EngineVariant make_engine(const Config& cfg, particles::Block initial) {
    cfg.box.validate();
    Policy policy(typename Policy::Config{cfg.box, cfg.kernel, cfg.cutoff, cfg.dt, cfg.engine,
                                          cfg.sweep});
    switch (cfg.method) {
      case Method::CaAllPairs: {
        const int q = cfg.p / cfg.c;
        return EngineVariant(
            std::in_place_type<CaAllPairsT>,
            typename CaAllPairsT::Config{cfg.p, cfg.c, cfg.machine}, std::move(policy),
            decomp::split_even(initial, q));
      }
      case Method::CaCutoff: {
        CANB_REQUIRE(cfg.cutoff > 0.0, "Method::CaCutoff requires a positive cutoff");
        const int q = cfg.p / cfg.c;
        const bool periodic = cfg.box.boundary == particles::Boundary::Periodic;
        if (cfg.box.dims == 1) {
          const int m = core::window_radius_teams(cfg.cutoff, cfg.box.lx, q);
          return EngineVariant(
              std::in_place_type<CaCutoffT>,
              typename CaCutoffT::Config{cfg.p, cfg.c, cfg.machine,
                                         core::CutoffGeometry::make_1d(q, m), periodic},
              std::move(policy), decomp::split_spatial_1d(initial, cfg.box, q));
        }
        const auto [qx, qy] = near_square_factors(q);
        const int mx = core::window_radius_teams(cfg.cutoff, cfg.box.lx, qx);
        const int my = core::window_radius_teams(cfg.cutoff, cfg.box.ly, qy);
        return EngineVariant(
            std::in_place_type<CaCutoffT>,
            typename CaCutoffT::Config{cfg.p, cfg.c, cfg.machine,
                                       core::CutoffGeometry::make_2d(qx, qy, mx, my), periodic},
            std::move(policy), decomp::split_spatial_2d(initial, cfg.box, qx, qy));
      }
      case Method::SpatialHalo: {
        CANB_REQUIRE(cfg.cutoff > 0.0, "Method::SpatialHalo requires a positive cutoff");
        CANB_REQUIRE(cfg.c == 1, "the halo-exchange baseline does not replicate (c must be 1)");
        if (cfg.box.dims == 1) {
          const int m = core::window_radius_teams(cfg.cutoff, cfg.box.lx, cfg.p);
          return EngineVariant(
              std::in_place_type<SpatialHaloT>,
              typename SpatialHaloT::Config{cfg.p, cfg.machine,
                                            core::CutoffGeometry::make_1d(cfg.p, m),
                                            cfg.box.boundary == particles::Boundary::Periodic},
              std::move(policy), decomp::split_spatial_1d(initial, cfg.box, cfg.p));
        }
        const auto [qx, qy] = near_square_factors(cfg.p);
        const int mx = core::window_radius_teams(cfg.cutoff, cfg.box.lx, qx);
        const int my = core::window_radius_teams(cfg.cutoff, cfg.box.ly, qy);
        return EngineVariant(
            std::in_place_type<SpatialHaloT>,
            typename SpatialHaloT::Config{cfg.p, cfg.machine,
                                          core::CutoffGeometry::make_2d(qx, qy, mx, my),
                                          cfg.box.boundary == particles::Boundary::Periodic},
            std::move(policy), decomp::split_spatial_2d(initial, cfg.box, qx, qy));
      }
      case Method::Midpoint: {
        CANB_REQUIRE(cfg.cutoff > 0.0, "Method::Midpoint requires a positive cutoff");
        CANB_REQUIRE(cfg.c == 1, "the midpoint method does not replicate (c must be 1)");
        const bool periodic = cfg.box.boundary == particles::Boundary::Periodic;
        if (cfg.box.dims == 1) {
          const int m = core::window_radius_teams(cfg.cutoff, cfg.box.lx, cfg.p);
          return EngineVariant(
              std::in_place_type<MidpointT>,
              typename MidpointT::Config{cfg.p, cfg.machine,
                                         core::CutoffGeometry::make_1d(cfg.p, m), periodic},
              std::move(policy), decomp::split_spatial_1d(initial, cfg.box, cfg.p));
        }
        const auto [qx, qy] = near_square_factors(cfg.p);
        const int mx = core::window_radius_teams(cfg.cutoff, cfg.box.lx, qx);
        const int my = core::window_radius_teams(cfg.cutoff, cfg.box.ly, qy);
        return EngineVariant(
            std::in_place_type<MidpointT>,
            typename MidpointT::Config{cfg.p, cfg.machine,
                                       core::CutoffGeometry::make_2d(qx, qy, mx, my), periodic},
            std::move(policy), decomp::split_spatial_2d(initial, cfg.box, qx, qy));
      }
      case Method::ParticleRing:
        return EngineVariant(std::in_place_type<RingT>,
                             typename RingT::Config{cfg.p, cfg.machine}, std::move(policy),
                             decomp::split_even(initial, cfg.p));
      case Method::ParticleAllGather:
        return EngineVariant(std::in_place_type<AllGatherT>,
                             typename AllGatherT::Config{cfg.p, cfg.machine}, std::move(policy),
                             decomp::split_even(initial, cfg.p));
      case Method::ForceDecomp: {
        const int s = static_cast<int>(std::lround(std::sqrt(static_cast<double>(cfg.p))));
        return EngineVariant(std::in_place_type<ForceT>,
                             typename ForceT::Config{cfg.p, cfg.machine}, std::move(policy),
                             decomp::split_even(initial, s));
      }
    }
    CANB_REQUIRE(false, "unknown simulation method");
    // Unreachable; silences the missing-return warning.
    throw PreconditionError("unreachable");
  }

  /// Spans/trace are heavier to copy than the metrics text, so the server
  /// re-publishes them every this-many steps (plus once at finalize).
  static constexpr int kServeSpanStride = 8;

  /// Pushes current scheduler/transport/host-phase state into the registry
  /// (all delta-based or idempotent, so per-step calls end at the same
  /// totals as one finalize-time call) and stamps the build-info gauge.
  void publish_live() {
    if (!telemetry_) return;
    if (pool_) {
      telemetry_->publish_scheduler(to_string(pool_->sched_mode()), pool_->scheduler_stats());
    }
    if (cfg_.transport) {
      telemetry_->publish_transport(vmpi::transport_kind_name(cfg_.transport->kind()),
                                    cfg_.transport->stats());
      telemetry_->publish_execution(vmpi::exec_mode_name(exec_mode()), local_ranks());
    }
    telemetry_->publish_host_phases();
    if (!build_info_published_) {
      obs::publish_build_info(telemetry_->metrics(), manifest_);
      build_info_published_ = true;
    }
  }

  std::string healthz_json(bool finished) const {
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("state", finished ? "finished" : "running");
    w.kv("step", steps_);
    w.kv("phase", telemetry_ ? telemetry_->last_phase_label() : std::string());
    w.kv("method", method_name(cfg_.method));
    w.kv("p", cfg_.p);
    w.kv("groups", mesh_ ? mesh_->groups() : 1);
    w.kv("exec", vmpi::exec_mode_name(exec_mode()));
    w.kv("local_ranks", local_ranks());
    w.kv("max_virtual_clock_seconds", max_virtual_clock());
    w.end_object();
    return os.str();
  }

  /// Renders and swaps the scrape content. Cheap parts (metrics text,
  /// healthz) refresh every call; span/trace copies only on the stride.
  void publish_server(bool finished) {
    if (!server_) return;
    obs::LiveContent content;
    content.prometheus = obs::to_prometheus(merged_metrics());
    content.healthz = healthz_json(finished);
    if (telemetry_->spans_enabled() && !telemetry_->spans().empty() &&
        (finished || steps_ % kServeSpanStride == 0)) {
      content.spans = std::make_shared<obs::SpanTimeline>(telemetry_->spans());
      if (telemetry_->trace() != nullptr) {
        content.trace = std::make_shared<vmpi::TraceRecorder>(*telemetry_->trace());
      }
    }
    server_->publish(std::move(content));
  }

  Config cfg_;
  /// Declared before engine_: maybe_tune edits cfg_ (and the SIMD dispatch)
  /// before make_engine constructs the policy from it.
  std::optional<core::HostTuneChoice> tuned_;
  EngineVariant engine_;
  /// Owned here (heap) so the pointer held by the engine's VirtualComm
  /// stays valid if the Simulation object itself is moved.
  std::unique_ptr<vmpi::PerturbationModel> fault_model_;
  /// Heap-owned for the same move-stability reason as the fault model.
  std::unique_ptr<obs::Telemetry> telemetry_;
  /// The run-wide host data plane (null when pooled_data_plane is false).
  std::shared_ptr<vmpi::DataPlane<Buffer>> plane_;
  /// The attached host pool (null until set_host_pool): kept so
  /// finalize_telemetry can publish the scheduler's counters.
  std::shared_ptr<ThreadPool> pool_;
  int steps_ = 0;
  obs::RunManifest manifest_;
  std::unique_ptr<obs::MeshAggregator> mesh_;
  std::unique_ptr<obs::StepSeries> series_;
  bool build_info_published_ = false;
  /// Whether owner-computes is ACTIVE (configured + CA method + multi-group
  /// transport); see exec_mode().
  bool owner_computes_ = false;
  /// Declared last: the serving thread reads only content it was handed,
  /// but tearing it down first on destruction keeps the shutdown ordering
  /// obvious (no scrape can race the engine's teardown).
  std::unique_ptr<obs::MetricsServer> server_;
};

}  // namespace canb::sim
