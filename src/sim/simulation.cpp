#include "sim/simulation.hpp"

namespace canb::sim {

const char* method_name(Method m) noexcept {
  switch (m) {
    case Method::CaAllPairs:
      return "ca-all-pairs";
    case Method::CaCutoff:
      return "ca-cutoff";
    case Method::ParticleRing:
      return "particle-ring";
    case Method::ParticleAllGather:
      return "particle-allgather";
    case Method::ForceDecomp:
      return "force-decomp";
    case Method::SpatialHalo:
      return "spatial-halo";
    case Method::Midpoint:
      return "midpoint";
  }
  return "?";
}

std::pair<int, int> near_square_factors(int q) {
  CANB_REQUIRE(q >= 1, "near_square_factors needs q >= 1");
  int best = 1;
  for (int f = 1; f * f <= q; ++f) {
    if (q % f == 0) best = f;
  }
  return {best, q / best};
}

}  // namespace canb::sim
