// Run reports: the bridge from ledgers to the paper's figures.
//
// A RunReport is "one bar" of a paper plot: per-timestep critical-path time
// broken down by phase, plus message/byte counts for bound checking.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "vmpi/virtual_comm.hpp"

namespace canb::sim {

struct RunReport {
  std::string label;
  int p = 0;
  int c = 0;
  int steps = 1;

  // Per-step seconds by phase, each the MAX over ranks of that phase's
  // time (the convention behind the paper's stacked bars: phases are timed
  // independently and the slowest rank defines each bar). Their sum can
  // slightly exceed the true critical-path time `wall` when different
  // ranks bound different phases.
  double compute = 0.0;
  double broadcast = 0.0;
  double skew = 0.0;
  double shift = 0.0;
  double reduce = 0.0;
  double reassign = 0.0;
  double other = 0.0;

  // True critical-path time per step: max over ranks of total time.
  double wall = 0.0;

  // Per-step critical-path message/byte counts (max over ranks).
  double messages = 0.0;
  double bytes = 0.0;

  // max/mean of per-rank total time (load imbalance factor).
  double imbalance = 1.0;

  // Per-step critical-path fault counters (max over ranks; zero on a
  // fault-free run). Reported only when nonzero, so fault-off tables are
  // unchanged.
  double retries = 0.0;
  double timeouts = 0.0;

  bool degraded() const noexcept { return retries > 0.0 || timeouts > 0.0; }

  // Critical-path attribution (obs::analyze_critical_path); populated only
  // for runs that carried full telemetry. cp_rank < 0 means "not analyzed"
  // and the columns are omitted, so obs-off tables keep their exact
  // historical layout.
  int cp_rank = -1;         ///< rank holding the recovered path the longest
  double cp_seconds = 0.0;  ///< per-step seconds that rank holds the path
  double cp_slack = 0.0;    ///< per-step mean slack across ranks

  bool attributed() const noexcept { return cp_rank >= 0; }

  double total() const noexcept {
    return compute + broadcast + skew + shift + reduce + reassign + other;
  }
  double communication() const noexcept { return total() - compute; }
};

/// Builds a per-step report from a VirtualComm whose ledger accumulated
/// `steps` timesteps.
RunReport summarize(const vmpi::VirtualComm& vc, int steps, std::string label, int c);

/// Fills the report's cp_* columns from a recovered critical path (per-step
/// normalization uses the report's own `steps`).
void annotate_critical_path(RunReport& report, const obs::CriticalPathReport& cp);

/// Prints reports as a fixed-width table mirroring the paper's stacked
/// bars (one row per report).
void print_reports(std::ostream& os, std::span<const RunReport> reports);

/// CSV with the same columns.
void write_reports_csv(const std::string& path, std::span<const RunReport> reports);

}  // namespace canb::sim
