// Binary checkpoint/restart.
//
// Format: a fixed little-endian header (magic "CANB", version, step, time,
// particle count) followed by the raw 52-byte particle records. The record
// layout is static_asserted, so a checkpoint round-trips bitwise.
//
// The wire format is deliberately AoS even though ranks hold particles in
// SoA lanes (particles::SoaBlock): serialization is a boundary, so the
// one gather/convert happens here (Simulation::gather -> Block), keeping
// the checkpoint format stable across host-layout changes.
#pragma once

#include <cstdint>
#include <string>

#include "particles/particle.hpp"

namespace canb::sim {

struct Checkpoint {
  std::int64_t step = 0;
  double time = 0.0;
  particles::Block particles;
};

/// Writes a checkpoint; throws PreconditionError on I/O failure.
void save_checkpoint(const std::string& path, const Checkpoint& cp);

/// Reads a checkpoint; throws PreconditionError on missing/corrupt files
/// (bad magic, version mismatch, truncated payload).
Checkpoint load_checkpoint(const std::string& path);

}  // namespace canb::sim
