#include "sim/trace_export.hpp"

#include <fstream>

#include "support/assert.hpp"

namespace canb::sim {

void ClockSampler::sample(const vmpi::VirtualComm& vc, std::string label) {
  Sample s;
  s.label = std::move(label);
  s.clocks.reserve(static_cast<std::size_t>(vc.size()));
  for (int r = 0; r < vc.size(); ++r) s.clocks.push_back(vc.clock(r));
  samples_.push_back(std::move(s));
}

void export_chrome_trace(const std::string& path, const ClockSampler& sampler,
                         const vmpi::TraceRecorder* trace, double time_scale_us) {
  std::ofstream f(path);
  CANB_REQUIRE(f.good(), "cannot open trace output file: " + path);
  const auto& samples = sampler.samples();
  CANB_REQUIRE(!samples.empty(), "sampler holds no samples; call sample() during the run");

  f << "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& json) {
    if (!first) f << ",\n";
    first = false;
    f << json;
  };

  const std::size_t ranks = samples.front().clocks.size();
  for (std::size_t r = 0; r < ranks; ++r) {
    double prev = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const double now = samples[i].clocks[r];
      if (now > prev) {
        emit("{\"name\":\"" + samples[i].label + "\",\"ph\":\"X\",\"pid\":0,\"tid\":" +
             std::to_string(r) + ",\"ts\":" + std::to_string(prev * time_scale_us) +
             ",\"dur\":" + std::to_string((now - prev) * time_scale_us) + "}");
      }
      prev = now;
    }
  }

  if (trace) {
    for (const auto& e : trace->p2p()) {
      emit("{\"name\":\"msg " + std::string(vmpi::phase_name(e.phase)) + " -> r" +
           std::to_string(e.dst) + " (" + std::to_string(e.bytes) +
           "B)\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" + std::to_string(e.src) +
           ",\"ts\":" + std::to_string(static_cast<double>(e.round)) + "}");
    }
  }
  f << "\n]}\n";
  CANB_REQUIRE(f.good(), "trace write failed: " + path);
}

}  // namespace canb::sim
