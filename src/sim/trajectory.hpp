// Trajectory output: snapshot writers for analysis/visualization tooling.
//
//  * XYZ: the de-facto MD interchange format (frame = count, comment,
//    one "El x y z" line per particle; z is 0 for our 2D worlds). VMD,
//    OVITO, ASE etc. read it directly.
//  * CSV: one row per particle per frame with full state (positions,
//    velocities, forces), for pandas/spreadsheet analysis.
//
// A minimal XYZ reader supports round-trip tests and restart-style use.
//
// Writers take AoS particles::Block: like the checkpoint format, snapshot
// output is a serialization boundary, and the SoA-resident pipeline
// converts exactly once (Simulation::gather) before writing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "particles/particle.hpp"

namespace canb::sim {

/// Appends one XYZ frame. `comment` lands on the format's comment line
/// (step number, time, energies — caller's choice; newlines are stripped).
void write_xyz_frame(std::ostream& os, const particles::Block& ps,
                     const std::string& comment = {});

/// Reads the next XYZ frame; returns false cleanly at end of stream.
/// Throws PreconditionError on malformed input. Only positions are
/// recovered (ids are assigned sequentially — XYZ carries no ids).
bool read_xyz_frame(std::istream& is, particles::Block& out, std::string* comment = nullptr);

/// Streams frames to a file across a run.
class TrajectoryWriter {
 public:
  enum class Format { Xyz, Csv };

  TrajectoryWriter(const std::string& path, Format format);
  ~TrajectoryWriter();
  TrajectoryWriter(const TrajectoryWriter&) = delete;
  TrajectoryWriter& operator=(const TrajectoryWriter&) = delete;

  /// Writes one frame; `step` and `time` go into the frame header.
  void append(const particles::Block& ps, int step, double time);

  int frames_written() const noexcept { return frames_; }

 private:
  struct Impl;
  Impl* impl_;
  Format format_;
  int frames_ = 0;
};

}  // namespace canb::sim
