#include "sim/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "support/assert.hpp"

namespace canb::sim {

namespace {
constexpr char kMagic[4] = {'C', 'A', 'N', 'B'};
constexpr std::uint32_t kVersion = 1;

struct Header {
  char magic[4];
  std::uint32_t version;
  std::int64_t step;
  double time;
  std::uint64_t count;
};
static_assert(sizeof(Header) == 32, "checkpoint header layout is part of the format");
}  // namespace

void save_checkpoint(const std::string& path, const Checkpoint& cp) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  CANB_REQUIRE(f.good(), "cannot open checkpoint file for writing: " + path);
  Header h{};
  std::memcpy(h.magic, kMagic, 4);
  h.version = kVersion;
  h.step = cp.step;
  h.time = cp.time;
  h.count = cp.particles.size();
  f.write(reinterpret_cast<const char*>(&h), sizeof(h));
  f.write(reinterpret_cast<const char*>(cp.particles.data()),
          static_cast<std::streamsize>(cp.particles.size() * particles::kParticleBytes));
  CANB_REQUIRE(f.good(), "checkpoint write failed: " + path);
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  CANB_REQUIRE(f.good(), "cannot open checkpoint file: " + path);
  Header h{};
  f.read(reinterpret_cast<char*>(&h), sizeof(h));
  CANB_REQUIRE(f.gcount() == sizeof(h), "checkpoint truncated (header): " + path);
  CANB_REQUIRE(std::memcmp(h.magic, kMagic, 4) == 0, "not a CANB checkpoint: " + path);
  CANB_REQUIRE(h.version == kVersion, "unsupported checkpoint version in " + path);
  Checkpoint cp;
  cp.step = h.step;
  cp.time = h.time;
  cp.particles.resize(h.count);
  const auto bytes = static_cast<std::streamsize>(h.count * particles::kParticleBytes);
  f.read(reinterpret_cast<char*>(cp.particles.data()), bytes);
  CANB_REQUIRE(f.gcount() == bytes, "checkpoint truncated (payload): " + path);
  return cp;
}

}  // namespace canb::sim
