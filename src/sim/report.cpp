#include "sim/report.hpp"

#include <algorithm>
#include <ostream>

#include "support/stats.hpp"
#include "support/table.hpp"

namespace canb::sim {

RunReport summarize(const vmpi::VirtualComm& vc, int steps, std::string label, int c) {
  const auto& ledger = vc.ledger();
  RunReport rep;
  rep.label = std::move(label);
  rep.p = vc.size();
  rep.c = c;
  rep.steps = steps;
  const double inv = 1.0 / static_cast<double>(steps);
  using vmpi::Phase;
  auto phase_max = [&](Phase ph) {
    double mx = 0.0;
    for (int r = 0; r < vc.size(); ++r) mx = std::max(mx, ledger.seconds(r, ph));
    return mx * inv;
  };
  rep.compute = phase_max(Phase::Compute);
  rep.broadcast = phase_max(Phase::Broadcast);
  rep.skew = phase_max(Phase::Skew);
  rep.shift = phase_max(Phase::Shift);
  rep.reduce = phase_max(Phase::Reduce);
  rep.reassign = phase_max(Phase::Reassign);
  rep.other = phase_max(Phase::Other);
  rep.wall = vc.max_clock() * inv;
  rep.messages = static_cast<double>(ledger.critical_messages()) * inv;
  rep.bytes = static_cast<double>(ledger.critical_bytes()) * inv;
  rep.retries = static_cast<double>(ledger.critical_retries()) * inv;
  rep.timeouts = static_cast<double>(ledger.critical_timeouts()) * inv;
  const auto per_rank = ledger.per_rank_seconds();
  rep.imbalance = imbalance_factor(per_rank);
  return rep;
}

void annotate_critical_path(RunReport& report, const obs::CriticalPathReport& cp) {
  const int dom = cp.dominant_rank();
  if (dom < 0) return;
  const double inv = 1.0 / static_cast<double>(std::max(1, report.steps));
  report.cp_rank = dom;
  report.cp_seconds = cp.rank_path_seconds[static_cast<std::size_t>(dom)] * inv;
  report.cp_slack = cp.mean_slack() * inv;
}

namespace {
Table make_table(std::span<const RunReport> reports) {
  // Fault counters appear only when some report is degraded: fault-free
  // tables (every figure bench) keep their exact historical layout.
  const bool degraded =
      std::any_of(reports.begin(), reports.end(), [](const auto& r) { return r.degraded(); });
  std::vector<ColumnSpec> cols{{"label", 16},
                                  {"p", 7},
                                  {"c", 5},
                                  {"total(s)", 11, 5},
                                  {"compute", 11, 5},
                                  {"bcast", 10, 5},
                                  {"skew", 10, 5},
                                  {"shift", 11, 5},
                                  {"reduce", 11, 5},
                                  {"reassign", 10, 5},
                                  {"msgs/step", 10, 1},
                                  {"KiB/step", 10, 1},
                                  {"imbal", 7, 2}};
  if (degraded) {
    cols.push_back({"retry/step", 11, 1});
    cols.push_back({"tmout/step", 11, 1});
  }
  // Same conditional-column pattern for critical-path attribution: only
  // runs analyzed under full telemetry grow the extra columns.
  const bool attributed =
      std::any_of(reports.begin(), reports.end(), [](const auto& r) { return r.attributed(); });
  if (attributed) {
    cols.push_back({"cp-rank", 8});
    cols.push_back({"cp(s)", 11, 5});
    cols.push_back({"slack(s)", 11, 5});
  }
  Table t(std::move(cols));
  for (const auto& r : reports) {
    std::vector<Cell> row{r.label, static_cast<long long>(r.p),
                                 static_cast<long long>(r.c), r.total(), r.compute,
                                 r.broadcast, r.skew, r.shift, r.reduce, r.reassign,
                                 r.messages, r.bytes / 1024.0, r.imbalance};
    if (degraded) {
      row.push_back(r.retries);
      row.push_back(r.timeouts);
    }
    if (attributed) {
      row.push_back(static_cast<long long>(r.cp_rank));
      row.push_back(r.cp_seconds);
      row.push_back(r.cp_slack);
    }
    t.add_row(std::move(row));
  }
  return t;
}
}  // namespace

void print_reports(std::ostream& os, std::span<const RunReport> reports) {
  make_table(reports).print(os);
}

void write_reports_csv(const std::string& path, std::span<const RunReport> reports) {
  make_table(reports).write_csv_file(path);
}

}  // namespace canb::sim
