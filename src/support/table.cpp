#include "support/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace canb {

Table::Table(std::vector<ColumnSpec> columns) : cols_(std::move(columns)) {
  CANB_REQUIRE(!cols_.empty(), "table needs at least one column");
  for (auto& c : cols_) c.width = std::max<int>(c.width, static_cast<int>(c.header.size()));
}

void Table::add_row(std::vector<Cell> cells) {
  CANB_REQUIRE(cells.size() == cols_.size(), "row arity must match column count");
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& c, const ColumnSpec& spec) const {
  std::ostringstream os;
  if (const auto* s = std::get_if<std::string>(&c)) {
    os << *s;
  } else if (const auto* i = std::get_if<long long>(&c)) {
    os << *i;
  } else {
    const double d = std::get<double>(c);
    if (spec.scientific)
      os << std::scientific << std::setprecision(spec.precision) << d;
    else
      os << std::fixed << std::setprecision(spec.precision) << d;
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::size_t total = 0;
  for (std::size_t j = 0; j < cols_.size(); ++j) {
    os << (j ? "  " : "") << std::setw(cols_[j].width) << cols_[j].header;
    total += static_cast<std::size_t>(cols_[j].width) + (j ? 2 : 0);
  }
  os << '\n' << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    for (std::size_t j = 0; j < cols_.size(); ++j)
      os << (j ? "  " : "") << std::setw(cols_[j].width) << format_cell(row[j], cols_[j]);
    os << '\n';
  }
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t j = 0; j < cols_.size(); ++j) os << (j ? "," : "") << cols_[j].header;
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t j = 0; j < cols_.size(); ++j)
      os << (j ? "," : "") << format_cell(row[j], cols_[j]);
    os << '\n';
  }
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream f(path);
  CANB_REQUIRE(f.good(), "cannot open CSV output file: " + path);
  write_csv(f);
}

std::string format_seconds(double s) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  const double a = std::abs(s);
  if (a >= 1.0)
    os << s << " s";
  else if (a >= 1e-3)
    os << s * 1e3 << " ms";
  else if (a >= 1e-6)
    os << s * 1e6 << " us";
  else
    os << s * 1e9 << " ns";
  return os.str();
}

std::string format_bytes(double b) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  if (b >= 1024.0 * 1024.0 * 1024.0)
    os << b / (1024.0 * 1024.0 * 1024.0) << " GiB";
  else if (b >= 1024.0 * 1024.0)
    os << b / (1024.0 * 1024.0) << " MiB";
  else if (b >= 1024.0)
    os << b / 1024.0 << " KiB";
  else
    os << b << " B";
  return os.str();
}

std::string banner(const std::string& title) {
  return "==== " + title + " ====";
}

}  // namespace canb
