// Byte-level payload serialization for real transports.
//
// The vmpi primitives move typed payload buffers (SoaBlock, PhantomBlock,
// engine-private carried structs) between ranks. A real transport moves
// bytes, so every payload type that wants to cross a wire provides a
// lossless encode/decode pair. Two dispatch arms:
//
//   - member customization: `void wire_put(wire::Writer&) const` and
//     `void wire_get(wire::Reader&)` on the payload type;
//   - trivially-copyable fallback: raw object bytes (PhantomBlock, ints).
//
// Encoding is byte-exact, not human-readable: float/double lanes are copied
// bit-for-bit, which is what makes the cross-backend parity suites able to
// demand *bitwise* identical trajectories after a round trip through a
// socket. Integers in framing positions (counts) are fixed-width u64 in
// native byte order — all endpoints of an in-host or same-arch run agree,
// and cross-arch transport is out of scope for now.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "support/assert.hpp"

namespace canb::wire {

using Bytes = std::vector<std::byte>;

/// Appends scalars / raw ranges to a byte vector. The target vector is
/// cleared on construction; capacity is retained, so reusing one Bytes
/// buffer across rounds amortizes to zero allocations.
class Writer {
 public:
  explicit Writer(Bytes& out) noexcept : out_(&out) { out.clear(); }

  void raw(const void* p, std::size_t n) {
    if (n == 0) return;
    const auto* b = static_cast<const std::byte*>(p);
    out_->insert(out_->end(), b, b + n);
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  void scalar(const T& v) {
    raw(&v, sizeof v);
  }

  /// Length-prefixed trivially-copyable lane (one SoA column).
  template <class T>
    requires std::is_trivially_copyable_v<T>
  void lane(const std::vector<T>& v) {
    scalar<std::uint64_t>(static_cast<std::uint64_t>(v.size()));
    raw(v.data(), v.size() * sizeof(T));
  }

 private:
  Bytes* out_;
};

/// Consumes what Writer produced. Underflow is an internal invariant
/// violation (a framing bug), not a user error: CANB_ASSERT aborts.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> in) noexcept : in_(in) {}

  void raw(void* p, std::size_t n) {
    CANB_ASSERT_MSG(pos_ + n <= in_.size(), "wire::Reader underflow");
    if (n != 0) std::memcpy(p, in_.data() + pos_, n);
    pos_ += n;
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  T scalar() {
    T v;
    raw(&v, sizeof v);
    return v;
  }

  /// Inverse of Writer::lane. Resizes the destination (capacity-preserving
  /// when shrinking, like the SoaBlock assign family).
  template <class T>
    requires std::is_trivially_copyable_v<T>
  void lane(std::vector<T>& v) {
    const auto n = static_cast<std::size_t>(scalar<std::uint64_t>());
    v.resize(n);
    raw(v.data(), n * sizeof(T));
  }

  std::size_t remaining() const noexcept { return in_.size() - pos_; }
  bool done() const noexcept { return pos_ == in_.size(); }

 private:
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

template <class B>
concept HasMemberWire = requires(const B& cb, Writer& w, B& b, Reader& r) {
  cb.wire_put(w);
  b.wire_get(r);
};

/// True when B can cross a byte transport losslessly. Payload types that
/// are neither (engine-private structs that never met a wire) make the
/// primitives fall back to the in-process data move; under the replicated
/// SPMD socket arm that fallback is still correct, just not wire-exercised.
template <class B>
constexpr bool serializable = HasMemberWire<B> || std::is_trivially_copyable_v<B>;

template <class B>
void put(Writer& w, const B& b) {
  if constexpr (HasMemberWire<B>) {
    b.wire_put(w);
  } else {
    static_assert(std::is_trivially_copyable_v<B>, "payload type has no wire support");
    w.scalar(b);
  }
}

template <class B>
void get(Reader& r, B& b) {
  if constexpr (HasMemberWire<B>) {
    b.wire_get(r);
  } else {
    static_assert(std::is_trivially_copyable_v<B>, "payload type has no wire support");
    b = r.scalar<B>();
  }
}

/// One-shot encode into a reusable buffer.
template <class B>
void to_bytes(const B& b, Bytes& out) {
  Writer w(out);
  put(w, b);
}

/// One-shot decode; the payload must consume the frame exactly.
template <class B>
void from_bytes(B& b, std::span<const std::byte> in) {
  Reader r(in);
  get(r, b);
  CANB_ASSERT_MSG(r.done(), "wire::from_bytes: trailing bytes in frame");
}

}  // namespace canb::wire
