#include "support/rng.hpp"

#include <cmath>
#include <numbers>

namespace canb {

double Xoshiro256::normal() noexcept {
  // Box–Muller; reject u1 == 0 to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace canb
