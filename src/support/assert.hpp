// Error handling primitives.
//
// CANB_REQUIRE is for user-facing precondition violations (bad replication
// factor, non-divisible grid, ...). It throws canb::PreconditionError with a
// formatted message so callers can recover or report.
//
// CANB_ASSERT is for internal invariants; it aborts with a diagnostic. It is
// active in all build types: this library's value is correctness of its
// schedules and ledgers, and the checks are cheap relative to the work.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace canb {

/// Thrown when a documented API precondition is violated.
class PreconditionError : public std::invalid_argument {
 public:
  explicit PreconditionError(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line, const std::string& msg);
[[noreturn]] void require_fail(const char* expr, const std::string& msg);
std::string format_location(const std::source_location& loc);
}  // namespace detail

}  // namespace canb

#define CANB_ASSERT(expr)                                                    \
  do {                                                                       \
    if (!(expr)) ::canb::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define CANB_ASSERT_MSG(expr, msg)                                              \
  do {                                                                          \
    if (!(expr)) ::canb::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define CANB_REQUIRE(expr, msg)                                  \
  do {                                                           \
    if (!(expr)) ::canb::detail::require_fail(#expr, (msg));     \
  } while (false)
