#include "support/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "support/assert.hpp"

namespace canb {

CliArgs::CliArgs(int argc, const char* const* argv, std::vector<std::string> known)
    : known_(std::move(known)) {
  auto is_known = [&](const std::string& k) {
    return std::find(known_.begin(), known_.end(), k) != known_.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string key;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      key = arg;
      // "--key value" if the next token is not itself an option; else a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0 && is_known(key)) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    CANB_REQUIRE(is_known(key), "unknown option --" + key);
    values_[key] = value;
  }
}

bool CliArgs::has(const std::string& key) const { return values_.count(key) > 0; }

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long long CliArgs::get_int(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string CliArgs::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program;
  for (const auto& k : known_) os << " [--" << k << "=...]";
  return os.str();
}

}  // namespace canb
