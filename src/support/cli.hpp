// Minimal command-line option parsing for benches and examples.
//
// Supports "--key=value", "--key value", and boolean "--flag". Unknown
// options raise PreconditionError so typos fail loudly. We deliberately do
// not pull in a third-party CLI library: the binaries here have a handful of
// numeric knobs each.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace canb {

class CliArgs {
 public:
  /// Parses argv; `known` lists accepted option names (without "--").
  CliArgs(int argc, const char* const* argv, std::vector<std::string> known);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non-option) arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// One-line usage string listing known options.
  std::string usage(const std::string& program) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> known_;
  std::vector<std::string> positional_;
};

}  // namespace canb
