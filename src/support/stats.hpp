// Small statistics helpers used by benches and the load-imbalance analysis.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace canb {

/// Streaming accumulator: mean/variance via Welford, min/max, sum.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< sample variance (n-1 denominator)
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact quantile of a copy of `xs` (linear interpolation between ranks).
/// q in [0,1]; empty input returns 0.
double quantile(std::span<const double> xs, double q);

/// max/mean ratio — the load-imbalance factor used in Section IV analysis.
/// Returns 1.0 for empty or all-zero input.
double imbalance_factor(std::span<const double> xs);

/// Geometric mean of positive values (zeros/negatives are skipped).
double geometric_mean(std::span<const double> xs);

/// Least-squares slope of log(y) vs log(x); used by tests to check
/// measured scaling exponents (e.g. W ~ c^-1). Requires positive data.
double loglog_slope(std::span<const double> x, std::span<const double> y);

}  // namespace canb
