#include "support/assert.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace canb::detail {

void assert_fail(const char* expr, const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "CANB_ASSERT failed: (%s) at %s:%d%s%s\n", expr, file, line,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

void require_fail(const char* expr, const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: " << msg << " [" << expr << "]";
  throw PreconditionError(os.str());
}

std::string format_location(const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ":" << loc.line();
  return os.str();
}

}  // namespace canb::detail
