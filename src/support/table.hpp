// Fixed-width console tables and CSV emission for the bench harness.
//
// Every figure-reproduction bench prints (a) a human-readable table mirroring
// the paper's plot series and (b) optional CSV for replotting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace canb {

/// A cell is a string, an integer, or a double (formatted per column).
using Cell = std::variant<std::string, long long, double>;

struct ColumnSpec {
  std::string header;
  int width = 12;        ///< minimum width; grows to fit header
  int precision = 4;     ///< for double cells
  bool scientific = false;
};

/// Builds a rectangular table; rows must match the column count.
class Table {
 public:
  explicit Table(std::vector<ColumnSpec> columns);

  void add_row(std::vector<Cell> cells);
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Pretty fixed-width rendering with a header rule.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no embedded quotes expected in our data).
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

 private:
  std::string format_cell(const Cell& c, const ColumnSpec& spec) const;
  std::vector<ColumnSpec> cols_;
  std::vector<std::vector<Cell>> rows_;
};

/// Formats seconds with an adaptive unit (s / ms / µs / ns).
std::string format_seconds(double s);

/// Formats byte counts with an adaptive unit (B / KiB / MiB / GiB).
std::string format_bytes(double b);

/// Section banner used by benches: "==== title ====".
std::string banner(const std::string& title);

}  // namespace canb
