// Host-side shared-memory parallelism: a small persistent thread pool and
// a blocking parallel_for over index ranges.
//
// The virtual ranks of a simulation are independent within each engine
// phase (per-rank buffers, per-rank ledger rows), so the hot per-rank
// loops parallelize across host threads without changing results: each
// virtual rank's arithmetic stays sequential, so floating-point sums are
// bitwise identical to the serial execution (tests assert this).
//
// Design notes: static range chunking (the per-rank work in one phase is
// near-uniform, so work stealing would buy nothing), condition-variable
// parking between calls, and a serial fast path for thread counts <= 1 so
// the default configuration costs nothing.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace canb {

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 or 1 means "serial": no threads spawn and
  /// parallel_for degenerates to a plain loop.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const noexcept { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [begin, end), split into contiguous chunks
  /// across the pool plus the calling thread. Blocks until all complete.
  /// fn must not throw (engine loops are noexcept by construction).
  void parallel_for(int begin, int end, const std::function<void(int)>& fn);

  /// Chunked variant: fn(chunk_begin, chunk_end) — lets hot loops hoist
  /// per-chunk setup out of the per-index body.
  void parallel_for_chunks(int begin, int end, const std::function<void(int, int)>& fn);

 private:
  struct Task {
    const std::function<void(int, int)>* fn = nullptr;
    int begin = 0;
    int end = 0;
  };

  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::vector<Task> tasks_;      // one slot per worker
  std::size_t generation_ = 0;   // bumped per parallel_for call
  std::size_t pending_ = 0;      // workers still running this generation
  bool stopping_ = false;
};

}  // namespace canb
