// Host-side shared-memory parallelism: a small persistent thread pool and
// a blocking parallel_for over index ranges.
//
// The virtual ranks of a simulation are independent within each engine
// phase (per-rank buffers, per-rank ledger rows), so the hot per-rank
// loops parallelize across host threads without changing results: each
// virtual rank's arithmetic stays sequential, so floating-point sums are
// bitwise identical to the serial execution (tests assert this).
//
// Design notes: static range chunking (the per-rank work in one phase is
// near-uniform, so work stealing would buy nothing), condition-variable
// parking between calls, and a serial fast path for thread counts <= 1 so
// the default configuration costs nothing.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace canb {

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 or 1 means "serial": no threads spawn and
  /// parallel_for degenerates to a plain loop.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const noexcept { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [begin, end), split into contiguous chunks
  /// across the pool plus the calling thread. Blocks until all complete.
  /// fn must not throw (engine loops are noexcept by construction).
  void parallel_for(int begin, int end, const std::function<void(int)>& fn);

  /// Chunked variant: fn(chunk_begin, chunk_end) — lets hot loops hoist
  /// per-chunk setup out of the per-index body.
  void parallel_for_chunks(int begin, int end, const std::function<void(int, int)>& fn);

  /// Allocation-free chunked dispatch: type-erases the callable as a plain
  /// (function pointer, context) pair instead of a std::function, so hot
  /// per-step call sites (the vmpi data plane, the engine force loops) pay
  /// no heap allocation when the closure outgrows std::function's inline
  /// buffer. The callable must outlive the (blocking) call — always true
  /// for the stack lambdas these loops use.
  template <class Fn>
  void for_each_chunk(int begin, int end, Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    run_chunks(
        begin, end,
        [](void* ctx, int b, int e) { (*static_cast<F*>(ctx))(b, e); },
        const_cast<void*>(static_cast<const void*>(&fn)));
  }

 private:
  /// The erased form all chunked dispatch funnels through.
  using RawChunkFn = void (*)(void* ctx, int begin, int end);

  struct Task {
    RawChunkFn fn = nullptr;
    void* ctx = nullptr;
    int begin = 0;
    int end = 0;
  };

  void run_chunks(int begin, int end, RawChunkFn fn, void* ctx);
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::vector<Task> tasks_;      // one slot per worker
  std::size_t generation_ = 0;   // bumped per parallel_for call
  std::size_t pending_ = 0;      // workers still running this generation
  bool stopping_ = false;
};

}  // namespace canb
