// Host-side shared-memory parallelism: a small persistent thread pool with
// two dispatch disciplines — static contiguous chunking and a work-stealing
// task scheduler — behind one blocking API.
//
// The virtual ranks of a simulation are independent within each engine
// phase (per-rank buffers, per-rank ledger rows), so the hot per-rank
// loops parallelize across host threads without changing results: each
// virtual rank's arithmetic stays sequential, so floating-point sums are
// bitwise identical to the serial execution (tests assert this).
//
// Determinism contract for the work-stealing scheduler: stealing may
// reorder which worker *executes* a task and when, but it must never
// reorder a floating-point *fold*. Every task therefore accumulates into
// state that is private to that task (a disjoint buffer slice, a per-task
// partial that the caller reduces in fixed task-index order) — never into
// a shared accumulator whose fold order would depend on execution order.
// Under that contract trajectories, force lanes, CostLedger fields and
// golden traces are bitwise identical across {static, stealing} x any
// thread count (tests/test_scheduler.cpp pins this).
//
// Design notes: per-worker deques are mutex-striped contiguous index
// ranges (owner pops the front in ascending order, thieves clip batches
// off the back), pooled at construction so a warmed parallel_tasks call
// performs zero heap allocations; victim selection uses a per-worker
// Xoshiro256 stream reseeded at every call, so steal probe sequences are
// a pure function of (worker, seed) and runs are reproducible; static
// mode and thread counts <= 1 keep the old serial/contiguous fast paths
// so the default configuration costs nothing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

namespace canb {

/// How parallel_tasks distributes a task list over the pool.
///  * kStatic: contiguous index chunks, one per worker, no migration —
///    exactly the PR 2 discipline (predictable, zero scheduling overhead).
///  * kStealing: cost-hinted contiguous initial partition + randomized
///    work stealing, for workloads whose per-task cost is data-driven
///    (clustered cutoff cells, skewed rank histograms).
enum class SchedMode { kStatic, kStealing };

const char* to_string(SchedMode mode) noexcept;
std::optional<SchedMode> parse_sched_mode(std::string_view name) noexcept;

/// Cumulative scheduler accounting since construction (or the last
/// reset_scheduler_stats). Counters are written with relaxed atomics by
/// the owning worker only; read them between calls, not mid-call.
struct SchedulerStats {
  std::uint64_t calls = 0;   ///< parallel_tasks invocations
  std::uint64_t tasks = 0;   ///< tasks executed (all workers)
  std::uint64_t steals = 0;  ///< tasks executed by a non-assigned worker
  std::vector<std::uint64_t> tasks_per_worker;
  std::vector<double> busy_seconds;  ///< per worker, time inside task bodies
  std::vector<double> idle_seconds;  ///< per worker, drain time minus busy
};

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 or 1 means "serial": no threads spawn and
  /// parallel_for degenerates to a plain loop. `steal_seed` seeds the
  /// per-worker victim-selection RNG streams (any fixed value reproduces
  /// the same probe sequences).
  explicit ThreadPool(int threads, std::uint64_t steal_seed = 0x9e3779b97f4a7c15ull);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const noexcept { return static_cast<int>(workers_.size()) + 1; }

  /// Scheduler discipline for parallel_tasks. Default kStatic: opting into
  /// stealing is an explicit choice (CLI --sched, HostTuner calibration).
  void set_sched_mode(SchedMode mode) noexcept { mode_ = mode; }
  SchedMode sched_mode() const noexcept { return mode_; }

  /// Max tasks a thief clips off a victim's deque per successful steal.
  /// Clamped to >= 1. Larger grains amortize the steal lock over more
  /// tasks; grain 1 balances best when per-task cost is wildly skewed.
  void set_steal_grain(int grain) noexcept { steal_grain_ = grain < 1 ? 1 : grain; }
  int steal_grain() const noexcept { return steal_grain_; }

  /// Runs fn(i) for every i in [begin, end), split into contiguous chunks
  /// across the pool plus the calling thread. Blocks until all complete.
  /// fn must not throw (engine loops are noexcept by construction).
  void parallel_for(int begin, int end, const std::function<void(int)>& fn);

  /// Chunked variant: fn(chunk_begin, chunk_end) — lets hot loops hoist
  /// per-chunk setup out of the per-index body. Always static (the data
  /// plane's lane copies are uniform; stealing lives in parallel_tasks).
  void parallel_for_chunks(int begin, int end, const std::function<void(int, int)>& fn);

  /// Allocation-free chunked dispatch: type-erases the callable as a plain
  /// (function pointer, context) pair instead of a std::function, so hot
  /// per-step call sites (the vmpi data plane, the engine force loops) pay
  /// no heap allocation when the closure outgrows std::function's inline
  /// buffer. The callable must outlive the (blocking) call — always true
  /// for the stack lambdas these loops use.
  template <class Fn>
  void for_each_chunk(int begin, int end, Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    run_chunks(
        begin, end,
        [](void* ctx, int b, int e) { (*static_cast<F*>(ctx))(b, e); },
        const_cast<void*>(static_cast<const void*>(&fn)));
  }

  /// Task-list dispatch: runs fn(task, worker) exactly once for every task
  /// in [0, tasks), distributed according to sched_mode(). `worker` is a
  /// stable index in [0, thread_count()) (0 = the calling thread) so task
  /// bodies can address per-worker scratch. `cost` (optional, length
  /// `tasks`) are relative per-task cost hints — e.g. a cell-list
  /// interaction-count histogram — used to cost-weight the initial
  /// contiguous partition under kStealing; kStatic ignores them and
  /// reproduces the historical equal-index chunks. Allocation-free once
  /// warmed. fn must not throw and must honor the determinism contract in
  /// the header comment.
  template <class Fn>
  void parallel_tasks(int tasks, Fn&& fn, const double* cost = nullptr) {
    using F = std::remove_reference_t<Fn>;
    run_tasks(
        tasks,
        [](void* ctx, int task, int worker) { (*static_cast<F*>(ctx))(task, worker); },
        const_cast<void*>(static_cast<const void*>(&fn)), cost);
  }

  /// Snapshot of the cumulative scheduler counters (quiescent pool only).
  SchedulerStats scheduler_stats() const;
  void reset_scheduler_stats();

 private:
  /// The erased forms all dispatch funnels through.
  using RawChunkFn = void (*)(void* ctx, int begin, int end);
  using RawTaskFn = void (*)(void* ctx, int task, int worker);

  struct Task {
    RawChunkFn fn = nullptr;
    void* ctx = nullptr;
    int begin = 0;
    int end = 0;
  };

  /// One worker's deque: a mutex-striped window [head, tail) into the
  /// global task index space. The owner pops head (ascending, serial
  /// order); thieves clip up to steal_grain_ tasks off tail. Pooled —
  /// no per-call allocation.
  struct alignas(64) WorkerQueue {
    std::mutex m;
    int head = 0;
    int tail = 0;
  };

  /// Per-worker scheduler accounting, relaxed atomics written by the
  /// owning worker during a drain.
  struct alignas(64) WorkerStats {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
  };

  void run_chunks(int begin, int end, RawChunkFn fn, void* ctx);
  void run_tasks(int tasks, RawTaskFn fn, void* ctx, const double* cost);
  void drain_tasks(int worker);
  /// Clips a batch off some victim's deque into [*b, *e). Returns false
  /// when a full scan of every other deque found them all empty.
  bool try_steal(int worker, int* b, int* e);
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::vector<Task> tasks_;      // one slot per worker (chunk dispatch)
  std::size_t generation_ = 0;   // bumped per dispatch
  std::size_t pending_ = 0;      // workers still running this generation
  bool stopping_ = false;

  // Work-stealing state (sized thread_count() at construction; pooled).
  SchedMode mode_ = SchedMode::kStatic;
  int steal_grain_ = 1;
  std::uint64_t steal_seed_;
  RawTaskFn task_fn_ = nullptr;    // current parallel_tasks op
  void* task_ctx_ = nullptr;
  bool task_dispatch_ = false;     // workers: drain deques vs run chunk slot
  bool stealing_run_ = false;      // current op steals (vs static tasks)
  std::vector<WorkerQueue> queues_;
  std::vector<WorkerStats> stats_;
  std::atomic<std::uint64_t> calls_{0};
};

}  // namespace canb
