#include "support/parallel.hpp"

#include <algorithm>
#include <chrono>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace canb {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0,
                         std::chrono::steady_clock::time_point t1) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

}  // namespace

const char* to_string(SchedMode mode) noexcept {
  return mode == SchedMode::kStealing ? "stealing" : "static";
}

std::optional<SchedMode> parse_sched_mode(std::string_view name) noexcept {
  if (name == "static") return SchedMode::kStatic;
  if (name == "stealing") return SchedMode::kStealing;
  return std::nullopt;
}

ThreadPool::ThreadPool(int threads, std::uint64_t steal_seed) : steal_seed_(steal_seed) {
  CANB_REQUIRE(threads >= 0, "thread count must be non-negative");
  const int extra = threads <= 1 ? 0 : threads - 1;  // caller thread works too
  tasks_.resize(static_cast<std::size_t>(extra));
  queues_ = std::vector<WorkerQueue>(static_cast<std::size_t>(extra) + 1);
  stats_ = std::vector<WorkerStats>(static_cast<std::size_t>(extra) + 1);
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i)
    workers_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t index) {
  std::size_t seen = 0;
  for (;;) {
    Task task;
    bool task_dispatch = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      task_dispatch = task_dispatch_;
      if (!task_dispatch) task = tasks_[index];
    }
    if (task_dispatch) {
      drain_tasks(static_cast<int>(index) + 1);
    } else if (task.fn && task.begin < task.end) {
      task.fn(task.ctx, task.begin, task.end);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run_chunks(int begin, int end, RawChunkFn fn, void* ctx) {
  if (end <= begin) return;
  if (workers_.empty()) {
    fn(ctx, begin, end);
    return;
  }
  const int parts = static_cast<int>(workers_.size()) + 1;
  const int total = end - begin;
  const int chunk = (total + parts - 1) / parts;
  int next = begin + chunk;  // [begin, next) runs on the calling thread
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_dispatch_ = false;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const int b = std::min(end, next + static_cast<int>(i) * chunk);
      const int e = std::min(end, b + chunk);
      tasks_[i] = {fn, ctx, b, e};
    }
    pending_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  fn(ctx, begin, std::min(end, next));
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
}

void ThreadPool::run_tasks(int tasks, RawTaskFn fn, void* ctx, const double* cost) {
  if (tasks <= 0) return;
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (workers_.empty()) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < tasks; ++t) fn(ctx, t, 0);
    const auto t1 = std::chrono::steady_clock::now();
    stats_[0].tasks.fetch_add(static_cast<std::uint64_t>(tasks), std::memory_order_relaxed);
    stats_[0].busy_ns.fetch_add(elapsed_ns(t0, t1), std::memory_order_relaxed);
    return;
  }

  // Initial contiguous partition over [0, tasks). Static mode reproduces
  // the historical equal-index chunks exactly; stealing mode additionally
  // cost-weights the cut points when hints are given, so the deques start
  // near-balanced and stealing only has to correct the residual skew.
  const int parts = thread_count();
  const bool stealing = mode_ == SchedMode::kStealing;
  if (stealing && cost != nullptr) {
    double total = 0.0;
    for (int t = 0; t < tasks; ++t) total += cost[t] > 0.0 ? cost[t] : 0.0;
    if (total <= 0.0) total = static_cast<double>(tasks);
    double cum = 0.0;
    int t = 0;
    for (int w = 0; w < parts; ++w) {
      const int b = t;
      const double target = total * static_cast<double>(w + 1) / static_cast<double>(parts);
      while (t < tasks && (cum < target || t == b)) {
        cum += cost[t] > 0.0 ? cost[t] : total / static_cast<double>(tasks);
        ++t;
      }
      // Leave at least one task for each remaining worker when possible.
      const int remaining_workers = parts - 1 - w;
      if (tasks - t < remaining_workers && t > b)
        t = std::max(b, tasks - remaining_workers);
      queues_[static_cast<std::size_t>(w)].head = b;
      queues_[static_cast<std::size_t>(w)].tail = w + 1 == parts ? tasks : t;
    }
  } else {
    const int chunk = (tasks + parts - 1) / parts;
    for (int w = 0; w < parts; ++w) {
      const int b = std::min(tasks, w * chunk);
      queues_[static_cast<std::size_t>(w)].head = b;
      queues_[static_cast<std::size_t>(w)].tail = std::min(tasks, b + chunk);
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_dispatch_ = true;
    stealing_run_ = stealing;
    task_fn_ = fn;
    task_ctx_ = ctx;
    pending_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  drain_tasks(0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  task_dispatch_ = false;
}

void ThreadPool::drain_tasks(int worker) {
  const auto drain_start = std::chrono::steady_clock::now();
  std::uint64_t busy = 0, ran = 0, stolen = 0;
  WorkerQueue& own = queues_[static_cast<std::size_t>(worker)];
  for (;;) {
    int b = -1, e = -1;
    {
      std::lock_guard<std::mutex> lock(own.m);
      if (own.head < own.tail) {
        b = own.head;
        e = ++own.head;
      }
    }
    if (b < 0) {
      if (!stealing_run_ || !try_steal(worker, &b, &e)) break;
      stolen += static_cast<std::uint64_t>(e - b);
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = b; t < e; ++t) task_fn_(task_ctx_, t, worker);
    busy += elapsed_ns(t0, std::chrono::steady_clock::now());
    ran += static_cast<std::uint64_t>(e - b);
  }
  const std::uint64_t drain =
      elapsed_ns(drain_start, std::chrono::steady_clock::now());
  WorkerStats& ws = stats_[static_cast<std::size_t>(worker)];
  ws.tasks.fetch_add(ran, std::memory_order_relaxed);
  ws.steals.fetch_add(stolen, std::memory_order_relaxed);
  ws.busy_ns.fetch_add(busy, std::memory_order_relaxed);
  ws.idle_ns.fetch_add(drain > busy ? drain - busy : 0, std::memory_order_relaxed);
}

bool ThreadPool::try_steal(int worker, int* b, int* e) {
  const int parts = thread_count();
  // Reseeded per drain-attempt from (seed, worker): probe sequences are a
  // pure function of the pool seed, never of timing.
  Xoshiro256 rng(steal_seed_ ^ (0x517cc1b727220a95ULL * static_cast<std::uint64_t>(worker + 1)));
  const int grain = steal_grain_;
  auto clip = [&](int victim) {
    WorkerQueue& q = queues_[static_cast<std::size_t>(victim)];
    std::lock_guard<std::mutex> lock(q.m);
    const int avail = q.tail - q.head;
    if (avail <= 0) return false;
    const int g = std::min(grain, avail);
    q.tail -= g;
    *b = q.tail;
    *e = q.tail + g;
    return true;
  };
  for (int probe = 0; probe < 2 * parts; ++probe) {
    const int victim = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(parts)));
    if (victim == worker) continue;
    if (clip(victim)) return true;
  }
  // Deterministic full sweep so termination never depends on probe luck.
  for (int d = 1; d < parts; ++d) {
    const int victim = (worker + d) % parts;
    if (clip(victim)) return true;
  }
  return false;
}

SchedulerStats ThreadPool::scheduler_stats() const {
  SchedulerStats out;
  out.calls = calls_.load(std::memory_order_relaxed);
  out.tasks_per_worker.resize(stats_.size());
  out.busy_seconds.resize(stats_.size());
  out.idle_seconds.resize(stats_.size());
  for (std::size_t w = 0; w < stats_.size(); ++w) {
    const std::uint64_t t = stats_[w].tasks.load(std::memory_order_relaxed);
    out.tasks_per_worker[w] = t;
    out.tasks += t;
    out.steals += stats_[w].steals.load(std::memory_order_relaxed);
    out.busy_seconds[w] =
        static_cast<double>(stats_[w].busy_ns.load(std::memory_order_relaxed)) * 1e-9;
    out.idle_seconds[w] =
        static_cast<double>(stats_[w].idle_ns.load(std::memory_order_relaxed)) * 1e-9;
  }
  return out;
}

void ThreadPool::reset_scheduler_stats() {
  calls_.store(0, std::memory_order_relaxed);
  for (auto& ws : stats_) {
    ws.tasks.store(0, std::memory_order_relaxed);
    ws.steals.store(0, std::memory_order_relaxed);
    ws.busy_ns.store(0, std::memory_order_relaxed);
    ws.idle_ns.store(0, std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for_chunks(int begin, int end,
                                     const std::function<void(int, int)>& fn) {
  for_each_chunk(begin, end, [&fn](int b, int e) { fn(b, e); });
}

void ThreadPool::parallel_for(int begin, int end, const std::function<void(int)>& fn) {
  parallel_for_chunks(begin, end, [&](int b, int e) {
    for (int i = b; i < e; ++i) fn(i);
  });
}

}  // namespace canb
