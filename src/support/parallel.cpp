#include "support/parallel.hpp"

#include "support/assert.hpp"

namespace canb {

ThreadPool::ThreadPool(int threads) {
  CANB_REQUIRE(threads >= 0, "thread count must be non-negative");
  const int extra = threads <= 1 ? 0 : threads - 1;  // caller thread works too
  tasks_.resize(static_cast<std::size_t>(extra));
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i)
    workers_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t index) {
  std::size_t seen = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      task = tasks_[index];
    }
    if (task.fn && task.begin < task.end) task.fn(task.ctx, task.begin, task.end);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run_chunks(int begin, int end, RawChunkFn fn, void* ctx) {
  if (end <= begin) return;
  if (workers_.empty()) {
    fn(ctx, begin, end);
    return;
  }
  const int parts = static_cast<int>(workers_.size()) + 1;
  const int total = end - begin;
  const int chunk = (total + parts - 1) / parts;
  int next = begin + chunk;  // [begin, next) runs on the calling thread
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const int b = std::min(end, next + static_cast<int>(i) * chunk);
      const int e = std::min(end, b + chunk);
      tasks_[i] = {fn, ctx, b, e};
    }
    pending_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  fn(ctx, begin, std::min(end, next));
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
}

void ThreadPool::parallel_for_chunks(int begin, int end,
                                     const std::function<void(int, int)>& fn) {
  for_each_chunk(begin, end, [&fn](int b, int e) { fn(b, e); });
}

void ThreadPool::parallel_for(int begin, int end, const std::function<void(int)>& fn) {
  parallel_for_chunks(begin, end, [&](int b, int e) {
    for (int i = b; i < e; ++i) fn(i);
  });
}

}  // namespace canb
