#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace canb {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  CANB_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double imbalance_factor(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double mx = 0.0;
  double sum = 0.0;
  for (double x : xs) {
    mx = std::max(mx, x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  return mean > 0.0 ? mx / mean : 1.0;
}

double geometric_mean(std::span<const double> xs) {
  double acc = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x > 0.0) {
      acc += std::log(x);
      ++n;
    }
  }
  return n ? std::exp(acc / static_cast<double>(n)) : 0.0;
}

double loglog_slope(std::span<const double> x, std::span<const double> y) {
  CANB_REQUIRE(x.size() == y.size() && x.size() >= 2, "loglog_slope needs >=2 matching points");
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    CANB_REQUIRE(x[i] > 0.0 && y[i] > 0.0, "loglog_slope requires positive data");
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace canb
