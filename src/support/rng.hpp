// Deterministic, seedable random number generation.
//
// We avoid std::mt19937 in hot paths: xoshiro256** is faster, has a tiny
// state, and — critically for reproducible experiments — its output is
// specified exactly, so particle initializations are identical across
// platforms and standard-library versions.
#pragma once

#include <cstdint>

namespace canb {

/// SplitMix64: used to expand a single 64-bit seed into stream state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose 64-bit generator (Blackman & Vigna).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless method would be overkill here; modulo
    // bias is negligible for the ranges we draw (n << 2^64).
    return (*this)() % n;
  }

  /// Standard normal via Box–Muller (the cached second value is discarded;
  /// simplicity over speed — this only runs at initialization).
  double normal() noexcept;

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace canb
