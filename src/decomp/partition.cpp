#include "decomp/partition.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace canb::decomp {

using particles::Block;
using particles::Box;
using particles::Particle;

std::vector<Block> split_even(const Block& all, int q) {
  CANB_REQUIRE(q >= 1, "split_even needs q >= 1");
  std::vector<Block> out(static_cast<std::size_t>(q));
  const std::size_t n = all.size();
  const std::size_t base = n / static_cast<std::size_t>(q);
  const std::size_t extra = n % static_cast<std::size_t>(q);
  std::size_t pos = 0;
  for (int t = 0; t < q; ++t) {
    const std::size_t len = base + (static_cast<std::size_t>(t) < extra ? 1 : 0);
    out[static_cast<std::size_t>(t)].assign(all.begin() + static_cast<std::ptrdiff_t>(pos),
                                            all.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  return out;
}

int team_of_1d(double px, const Box& box, int q) {
  int t = static_cast<int>(px / box.lx * q);
  return std::clamp(t, 0, q - 1);
}

int team_of_1d(const Particle& p, const Box& box, int q) {
  return team_of_1d(static_cast<double>(p.px), box, q);
}

int team_of_2d(double px, double py, const Box& box, int qx, int qy) {
  int tx = static_cast<int>(px / box.lx * qx);
  int ty = static_cast<int>(py / box.ly * qy);
  tx = std::clamp(tx, 0, qx - 1);
  ty = std::clamp(ty, 0, qy - 1);
  return ty * qx + tx;
}

int team_of_2d(const Particle& p, const Box& box, int qx, int qy) {
  return team_of_2d(static_cast<double>(p.px), static_cast<double>(p.py), box, qx, qy);
}

std::vector<Block> split_spatial_1d(const Block& all, const Box& box, int q) {
  CANB_REQUIRE(q >= 1, "split_spatial_1d needs q >= 1");
  std::vector<Block> out(static_cast<std::size_t>(q));
  for (const auto& p : all) out[static_cast<std::size_t>(team_of_1d(p, box, q))].push_back(p);
  return out;
}

std::vector<Block> split_spatial_2d(const Block& all, const Box& box, int qx, int qy) {
  CANB_REQUIRE(qx >= 1 && qy >= 1, "split_spatial_2d needs qx, qy >= 1");
  CANB_REQUIRE(box.dims == 2, "2D split needs a 2D box");
  std::vector<Block> out(static_cast<std::size_t>(qx) * static_cast<std::size_t>(qy));
  for (const auto& p : all)
    out[static_cast<std::size_t>(team_of_2d(p, box, qx, qy))].push_back(p);
  return out;
}

Block concat(const std::vector<Block>& blocks) {
  Block out;
  std::size_t total = 0;
  for (const auto& b : blocks) total += b.size();
  out.reserve(total);
  for (const auto& b : blocks) out.insert(out.end(), b.begin(), b.end());
  return out;
}

Block concat(const std::vector<particles::SoaBlock>& blocks) {
  Block out;
  std::size_t total = 0;
  for (const auto& b : blocks) total += b.size();
  out.reserve(total);
  for (const auto& b : blocks)
    for (std::size_t i = 0; i < b.size(); ++i) out.push_back(b.get(i));
  return out;
}

std::vector<std::uint64_t> block_counts(const std::vector<Block>& blocks) {
  std::vector<std::uint64_t> out;
  out.reserve(blocks.size());
  for (const auto& b : blocks) out.push_back(b.size());
  return out;
}

}  // namespace canb::decomp
