// Baseline particle decompositions (Section II-B).
//
// Each of p ranks owns n/p particles and must see all n.
//
//  * ParticleDecompositionRing — the classic systolic pass: p-1 shift
//    rounds move every block past every rank. S = O(p), W = O(n).
//    Identical in cost to the CA algorithm at c = 1 (the degeneracy test
//    in tests/ verifies ledger equality).
//  * ParticleDecompositionAllGather — the "naive" variant: one
//    whole-machine all-gather per step. On machines with a dedicated
//    collective network (BlueGene/P "tree") this is the hardware-assisted
//    baseline of Fig. 2c/2d.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/policy.hpp"
#include "particles/integrator.hpp"
#include "support/assert.hpp"
#include "vmpi/primitives.hpp"
#include "vmpi/virtual_comm.hpp"

namespace canb::decomp {

template <class Policy>
class ParticleDecompositionRing {
 public:
  using Buffer = typename Policy::Buffer;

  struct Config {
    int p = 1;
    machine::MachineModel machine;
  };

  ParticleDecompositionRing(Config cfg, Policy policy, std::vector<Buffer> blocks)
      : cfg_(std::move(cfg)),
        policy_(std::move(policy)),
        grid_(vmpi::Grid2d::make(cfg_.p, 1)),
        vc_(cfg_.p, cfg_.machine),
        integrator_(std::make_unique<particles::VelocityVerlet>()) {
    CANB_REQUIRE(static_cast<int>(blocks.size()) == cfg_.p, "need one block per rank");
    resident_ = std::move(blocks);
    carried_.resize(static_cast<std::size_t>(cfg_.p));
  }

  /// Converting constructor: accepts blocks in a different layout than the
  /// policy's Buffer and converts once at setup time.
  template <class B>
    requires(!std::is_same_v<B, Buffer> && std::is_constructible_v<Buffer, B>)
  ParticleDecompositionRing(Config cfg, Policy policy, std::vector<B> blocks)
      : ParticleDecompositionRing(std::move(cfg), std::move(policy),
                                  core::convert_blocks<Buffer>(std::move(blocks))) {}

  void set_integrator(std::unique_ptr<particles::Integrator> integ) {
    integrator_ = std::move(integ);
  }

  void step() {
    if constexpr (!Policy::kIsPhantom) {
      for (auto& b : resident_) policy_.pre_force(*integrator_, b);
    }
    for (int r = 0; r < cfg_.p; ++r) {
      auto& c = carried_[static_cast<std::size_t>(r)];
      c.buf = resident_[static_cast<std::size_t>(r)];
      c.home = r;
    }
    // Interact with the local block first, then pass p-1 times.
    interact_all();
    for (int j = 1; j < cfg_.p; ++j) {
      vmpi::shift_rows(vc_, grid_, 1, carried_, &ParticleDecompositionRing::carried_bytes);
      interact_all();
    }
    finish_step();
  }

  void run(int steps) {
    for (int i = 0; i < steps; ++i) step();
  }

  const vmpi::VirtualComm& comm() const noexcept { return vc_; }
  vmpi::VirtualComm& comm() noexcept { return vc_; }
  std::vector<Buffer> team_results() const { return resident_; }

 private:
  struct Carried {
    Buffer buf{};
    int home = -1;
  };
  static std::uint64_t carried_bytes(const Carried& c) noexcept { return Policy::bytes(c.buf); }

  void interact_all() {
    for (int r = 0; r < cfg_.p; ++r) {
      auto& carried = carried_[static_cast<std::size_t>(r)];
      const auto stats = policy_.interact(resident_[static_cast<std::size_t>(r)], carried.buf,
                                          carried.home == r);
      vc_.charge_interactions(r, static_cast<double>(stats.examined));
    }
  }

  void finish_step() {
    for (int r = 0; r < cfg_.p; ++r) {
      auto& block = resident_[static_cast<std::size_t>(r)];
      if constexpr (!Policy::kIsPhantom) policy_.post_force(*integrator_, block);
      vc_.advance(r, vmpi::Phase::Compute,
                  cfg_.machine.gamma_flop * core::kIntegrateFlopsPerParticle *
                      static_cast<double>(Policy::count(block)));
    }
  }

  Config cfg_;
  Policy policy_;
  vmpi::Grid2d grid_;
  vmpi::VirtualComm vc_;
  std::unique_ptr<particles::Integrator> integrator_;
  std::vector<Buffer> resident_;
  std::vector<Carried> carried_;
};

template <class Policy>
class ParticleDecompositionAllGather {
 public:
  using Buffer = typename Policy::Buffer;

  struct Config {
    int p = 1;
    machine::MachineModel machine;
  };

  ParticleDecompositionAllGather(Config cfg, Policy policy, std::vector<Buffer> blocks)
      : cfg_(std::move(cfg)),
        policy_(std::move(policy)),
        vc_(cfg_.p, cfg_.machine),
        integrator_(std::make_unique<particles::VelocityVerlet>()) {
    CANB_REQUIRE(static_cast<int>(blocks.size()) == cfg_.p, "need one block per rank");
    resident_ = std::move(blocks);
  }

  /// Converting constructor: accepts blocks in a different layout than the
  /// policy's Buffer and converts once at setup time.
  template <class B>
    requires(!std::is_same_v<B, Buffer> && std::is_constructible_v<Buffer, B>)
  ParticleDecompositionAllGather(Config cfg, Policy policy, std::vector<B> blocks)
      : ParticleDecompositionAllGather(std::move(cfg), std::move(policy),
                                       core::convert_blocks<Buffer>(std::move(blocks))) {}

  void set_integrator(std::unique_ptr<particles::Integrator> integ) {
    integrator_ = std::move(integ);
  }

  void step() {
    if constexpr (!Policy::kIsPhantom) {
      for (auto& b : resident_) policy_.pre_force(*integrator_, b);
    }
    // All-gather: every rank receives the full particle set. Cost is one
    // whole-machine collective of the total volume.
    std::uint64_t total = 0;
    for (const auto& b : resident_) total += Policy::bytes(b);
    vc_.whole_machine_collective(vmpi::Phase::Broadcast, static_cast<double>(total),
                                 /*is_reduce=*/false);
    if constexpr (!Policy::kIsPhantom) {
      Buffer all;
      for (const auto& b : resident_) all.append(b);
      for (int r = 0; r < cfg_.p; ++r) {
        auto& mine = resident_[static_cast<std::size_t>(r)];
        const auto stats = policy_.interact(mine, all, /*same_block=*/false);
        // `all` includes this rank's own particles; the policy's id check
        // already skips self-pairs, and its examined count reflects that.
        vc_.charge_interactions(r, static_cast<double>(stats.examined));
      }
    } else {
      std::uint64_t n_total = 0;
      for (const auto& b : resident_) n_total += Policy::count(b);
      for (int r = 0; r < cfg_.p; ++r) {
        const auto mine = Policy::count(resident_[static_cast<std::size_t>(r)]);
        vc_.charge_interactions(r, static_cast<double>(mine * n_total - mine));
      }
    }
    for (int r = 0; r < cfg_.p; ++r) {
      auto& block = resident_[static_cast<std::size_t>(r)];
      if constexpr (!Policy::kIsPhantom) policy_.post_force(*integrator_, block);
      vc_.advance(r, vmpi::Phase::Compute,
                  cfg_.machine.gamma_flop * core::kIntegrateFlopsPerParticle *
                      static_cast<double>(Policy::count(block)));
    }
  }

  void run(int steps) {
    for (int i = 0; i < steps; ++i) step();
  }

  const vmpi::VirtualComm& comm() const noexcept { return vc_; }
  vmpi::VirtualComm& comm() noexcept { return vc_; }
  std::vector<Buffer> team_results() const { return resident_; }

 private:
  Config cfg_;
  Policy policy_;
  vmpi::VirtualComm vc_;
  std::unique_ptr<particles::Integrator> integrator_;
  std::vector<Buffer> resident_;
};

}  // namespace canb::decomp
