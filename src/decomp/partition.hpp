// Partitioning particles among teams.
//
// All-pairs decompositions split by count (any assignment is valid);
// cutoff decompositions split spatially so a team owns a contiguous region.
#pragma once

#include <vector>

#include "particles/box.hpp"
#include "particles/particle.hpp"
#include "particles/soa_block.hpp"

namespace canb::decomp {

/// Splits `all` into q blocks of size n/q (remainder spread over the first
/// blocks), preserving order.
std::vector<particles::Block> split_even(const particles::Block& all, int q);

/// Spatial 1D split along x into q equal-width segments of the box.
std::vector<particles::Block> split_spatial_1d(const particles::Block& all,
                                               const particles::Box& box, int q);

/// Spatial 2D split into qx-by-qy cells (col-major team index t = ty*qx+tx).
std::vector<particles::Block> split_spatial_2d(const particles::Block& all,
                                               const particles::Box& box, int qx, int qy);

/// Team that owns position `px` under the 1D split (lane variant: takes the
/// coordinate straight off a SoA position lane, promoted to double).
int team_of_1d(double px, const particles::Box& box, int q);
/// Team that owns the position of `p` under the 1D split.
int team_of_1d(const particles::Particle& p, const particles::Box& box, int q);

/// Team that owns position (px, py) under the 2D split (lane variant).
int team_of_2d(double px, double py, const particles::Box& box, int qx, int qy);
/// Team that owns the position of `p` under the 2D split.
int team_of_2d(const particles::Particle& p, const particles::Box& box, int qx, int qy);

/// Concatenates blocks back into one vector (order = block order).
particles::Block concat(const std::vector<particles::Block>& blocks);

/// SoA overload: materializes each block's particles in lane order (the
/// engines' team_results now hand back resident SoaBlocks).
particles::Block concat(const std::vector<particles::SoaBlock>& blocks);

/// Per-block particle counts (phantom initialization from a real histogram).
std::vector<std::uint64_t> block_counts(const std::vector<particles::Block>& blocks);

}  // namespace canb::decomp
