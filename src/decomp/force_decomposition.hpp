// Plimpton's force decomposition (Section II-B, [Plimpton 1995]).
//
// p = s^2 ranks form an s-by-s grid; particles split into s blocks of n/s.
// Rank (i,j) computes the forces block j exerts on block i. Per step:
//   1. broadcast block i along grid row i        (log s msgs, n/s words)
//   2. broadcast block j along grid column j     (log s msgs, n/s words)
//   3. local (n/s)^2 interactions
//   4. reduce forces on block i along row i to the diagonal owner
// S = O(log p), W = O(n/sqrt(p)) — the c = sqrt(p) extreme of the CA
// algorithm's cost spectrum.
#pragma once

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "core/policy.hpp"
#include "particles/integrator.hpp"
#include "support/assert.hpp"
#include "vmpi/virtual_comm.hpp"

namespace canb::decomp {

template <class Policy>
class ForceDecomposition {
 public:
  using Buffer = typename Policy::Buffer;

  struct Config {
    int p = 1;  ///< must be a perfect square
    machine::MachineModel machine;
  };

  /// `blocks` holds s = sqrt(p) particle blocks; block i is owned by the
  /// diagonal rank (i,i).
  ForceDecomposition(Config cfg, Policy policy, std::vector<Buffer> blocks)
      : cfg_(std::move(cfg)),
        policy_(std::move(policy)),
        vc_(cfg_.p, cfg_.machine),
        integrator_(std::make_unique<particles::VelocityVerlet>()) {
    s_ = static_cast<int>(std::lround(std::sqrt(static_cast<double>(cfg_.p))));
    CANB_REQUIRE(s_ * s_ == cfg_.p, "force decomposition needs a square rank count");
    CANB_REQUIRE(static_cast<int>(blocks.size()) == s_, "need sqrt(p) blocks");
    diag_ = std::move(blocks);
    row_copy_.resize(static_cast<std::size_t>(cfg_.p));
    col_copy_.resize(static_cast<std::size_t>(cfg_.p));
    rows_.resize(static_cast<std::size_t>(s_));
    cols_.resize(static_cast<std::size_t>(s_));
    for (int i = 0; i < s_; ++i) {
      for (int j = 0; j < s_; ++j) {
        rows_[static_cast<std::size_t>(i)].push_back(rank(i, j));
        cols_[static_cast<std::size_t>(j)].push_back(rank(i, j));
      }
    }
  }

  /// Converting constructor: accepts blocks in a different layout than the
  /// policy's Buffer and converts once at setup time.
  template <class B>
    requires(!std::is_same_v<B, Buffer> && std::is_constructible_v<Buffer, B>)
  ForceDecomposition(Config cfg, Policy policy, std::vector<B> blocks)
      : ForceDecomposition(std::move(cfg), std::move(policy),
                           core::convert_blocks<Buffer>(std::move(blocks))) {}

  void set_integrator(std::unique_ptr<particles::Integrator> integ) {
    integrator_ = std::move(integ);
  }

  void step() {
    if constexpr (!Policy::kIsPhantom) {
      for (auto& b : diag_) policy_.pre_force(*integrator_, b);
    }
    // Row broadcast of block i, column broadcast of block j.
    vc_.group_collective(rows_, vmpi::Phase::Broadcast, /*is_reduce=*/false, [&](int i) {
      return static_cast<double>(Policy::bytes(diag_[static_cast<std::size_t>(i)]));
    });
    vc_.group_collective(cols_, vmpi::Phase::Broadcast, /*is_reduce=*/false, [&](int j) {
      return static_cast<double>(Policy::bytes(diag_[static_cast<std::size_t>(j)]));
    });
    for (int i = 0; i < s_; ++i) {
      for (int j = 0; j < s_; ++j) {
        const auto r = static_cast<std::size_t>(rank(i, j));
        row_copy_[r] = diag_[static_cast<std::size_t>(i)];
        col_copy_[r] = diag_[static_cast<std::size_t>(j)];
      }
    }
    // Local block-block interactions: forces ON row block FROM col block.
    for (int i = 0; i < s_; ++i) {
      for (int j = 0; j < s_; ++j) {
        const int r = rank(i, j);
        const auto stats = policy_.interact(row_copy_[static_cast<std::size_t>(r)],
                                            col_copy_[static_cast<std::size_t>(r)], i == j);
        vc_.charge_interactions(r, static_cast<double>(stats.examined));
      }
    }
    // Reduce forces on block i along row i back to the diagonal.
    vc_.group_collective(rows_, vmpi::Phase::Reduce, /*is_reduce=*/true, [&](int i) {
      return static_cast<double>(Policy::bytes(diag_[static_cast<std::size_t>(i)]));
    });
    for (int i = 0; i < s_; ++i) {
      auto& acc = diag_[static_cast<std::size_t>(i)];
      // The diagonal copy already carries (i,i)'s contribution; overwrite
      // the owner block's forces with it, then fold in the other columns.
      acc = row_copy_[static_cast<std::size_t>(rank(i, i))];
      for (int j = 0; j < s_; ++j) {
        if (j == i) continue;
        Policy::combine(acc, row_copy_[static_cast<std::size_t>(rank(i, j))]);
      }
    }
    for (int i = 0; i < s_; ++i) {
      auto& block = diag_[static_cast<std::size_t>(i)];
      if constexpr (!Policy::kIsPhantom) policy_.post_force(*integrator_, block);
      vc_.advance(rank(i, i), vmpi::Phase::Compute,
                  cfg_.machine.gamma_flop * core::kIntegrateFlopsPerParticle *
                      static_cast<double>(Policy::count(block)));
    }
  }

  void run(int steps) {
    for (int i = 0; i < steps; ++i) step();
  }

  const vmpi::VirtualComm& comm() const noexcept { return vc_; }
  vmpi::VirtualComm& comm() noexcept { return vc_; }
  int side() const noexcept { return s_; }
  std::vector<Buffer> team_results() const { return diag_; }

 private:
  int rank(int i, int j) const noexcept { return i * s_ + j; }

  Config cfg_;
  Policy policy_;
  vmpi::VirtualComm vc_;
  std::unique_ptr<particles::Integrator> integrator_;
  int s_ = 0;
  std::vector<Buffer> diag_;
  std::vector<Buffer> row_copy_;
  std::vector<Buffer> col_copy_;
  std::vector<std::vector<int>> rows_;
  std::vector<std::vector<int>> cols_;
};

}  // namespace canb::decomp
