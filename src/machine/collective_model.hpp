// Collective-communication cost models.
//
// The paper's model assumes collectives complete in log(c) rounds
// (Section III-B), but its experiments show that "collectives fail to scale
// logarithmically as our model assumes, so c should be treated as a tuning
// parameter" (Section I, III-C1). We capture both regimes:
//
//  * IdealLogTree      — log2(c) rounds of (alpha_c + beta_c * w); the
//                        textbook model used in the paper's analysis.
//  * SaturatingTree    — log-tree cost plus a contention term that grows
//                        linearly in team size and quadratically in total
//                        machine size. This is what makes intermediate c
//                        optimal at scale (Fig. 2b/2d, Fig. 6).
//  * HardwareTree      — BlueGene/P-style dedicated collective network:
//                        near-flat latency, but only for collectives that
//                        span the whole partition (the "tree" bars in
//                        Fig. 2c/2d).
//
// All times are seconds; w is the payload in bytes; c is the number of
// participating ranks; p_total is the whole machine size (for contention).
#pragma once

#include <memory>
#include <string>

namespace canb::machine {

struct CollectiveContext {
  int members = 1;          ///< ranks participating in the collective
  double bytes = 0.0;       ///< payload per rank
  int p_total = 1;          ///< total ranks on the machine (contention scale)
  bool whole_partition = false;  ///< collective spans the entire partition
};

class CollectiveModel {
 public:
  virtual ~CollectiveModel() = default;

  /// Time for one broadcast with the given context.
  virtual double broadcast_time(const CollectiveContext& ctx) const = 0;
  /// Time for one reduction (same tree shape; reductions also pay the
  /// combine flops, charged by the caller as computation).
  virtual double reduce_time(const CollectiveContext& ctx) const = 0;

  /// Messages charged to the critical path (the paper charges log2(c)).
  virtual long long critical_messages(int members) const;

  virtual std::string name() const = 0;
};

/// Factory helpers; models are immutable and shareable.
std::shared_ptr<const CollectiveModel> make_ideal_log_tree(double alpha_c, double beta_c);
std::shared_ptr<const CollectiveModel> make_saturating_tree(double alpha_c, double beta_c,
                                                            double contention,  // delta0
                                                            int p_ref);
std::shared_ptr<const CollectiveModel> make_hardware_tree(double alpha_tree, double beta_tree,
                                                          std::shared_ptr<const CollectiveModel> fallback);

}  // namespace canb::machine
