#include "machine/topology.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/assert.hpp"

namespace canb::machine {

Topology::Topology(TopologyKind kind, std::array<int, 3> dims) : kind_(kind), dims_(dims) {
  size_ = dims_[0] * dims_[1] * dims_[2];
  CANB_REQUIRE(size_ >= 1, "topology must contain at least one rank");
}

Topology Topology::fully_connected(int p) {
  CANB_REQUIRE(p >= 1, "fully_connected needs p >= 1");
  return Topology(TopologyKind::FullyConnected, {p, 1, 1});
}

Topology Topology::ring(int p) {
  CANB_REQUIRE(p >= 1, "ring needs p >= 1");
  return Topology(TopologyKind::Ring, {p, 1, 1});
}

Topology Topology::torus2d(int nx, int ny) {
  CANB_REQUIRE(nx >= 1 && ny >= 1, "torus2d dims must be >= 1");
  return Topology(TopologyKind::Torus2D, {nx, ny, 1});
}

Topology Topology::torus3d(int nx, int ny, int nz) {
  CANB_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "torus3d dims must be >= 1");
  return Topology(TopologyKind::Torus3D, {nx, ny, nz});
}

Topology Topology::balanced_torus3d(int p) {
  CANB_REQUIRE(p >= 1, "balanced_torus3d needs p >= 1");
  // Greedy near-cubic factorization: pick the largest factor <= cbrt, then
  // the largest factor of the remainder <= sqrt.
  int nx = 1;
  const int croot = static_cast<int>(std::cbrt(static_cast<double>(p)) + 0.5);
  for (int f = std::max(1, croot); f >= 1; --f) {
    if (p % f == 0) {
      nx = f;
      break;
    }
  }
  const int rem = p / nx;
  int ny = 1;
  const int sroot = static_cast<int>(std::sqrt(static_cast<double>(rem)) + 0.5);
  for (int f = std::max(1, sroot); f >= 1; --f) {
    if (rem % f == 0) {
      ny = f;
      break;
    }
  }
  return torus3d(nx, ny, rem / ny);
}

std::array<int, 3> Topology::coords(int rank) const {
  CANB_ASSERT(rank >= 0 && rank < size_);
  return {rank % dims_[0], (rank / dims_[0]) % dims_[1], rank / (dims_[0] * dims_[1])};
}

int Topology::hops(int from, int to) const {
  CANB_REQUIRE(from >= 0 && from < size_ && to >= 0 && to < size_, "rank out of range");
  if (from == to) return 0;
  switch (kind_) {
    case TopologyKind::FullyConnected:
      return 1;
    case TopologyKind::Ring: {
      const int d = std::abs(from - to);
      return std::min(d, size_ - d);
    }
    case TopologyKind::Torus2D:
    case TopologyKind::Torus3D: {
      const auto a = coords(from);
      const auto b = coords(to);
      int total = 0;
      for (int i = 0; i < 3; ++i) {
        const int d = std::abs(a[i] - b[i]);
        total += std::min(d, dims_[i] - d);
      }
      return total;
    }
  }
  CANB_ASSERT_MSG(false, "unreachable topology kind");
  return 0;
}

int Topology::diameter() const {
  switch (kind_) {
    case TopologyKind::FullyConnected:
      return size_ > 1 ? 1 : 0;
    case TopologyKind::Ring:
      return size_ / 2;
    case TopologyKind::Torus2D:
    case TopologyKind::Torus3D: {
      int total = 0;
      for (int i = 0; i < 3; ++i) total += dims_[i] / 2;
      return total;
    }
  }
  return 0;
}

std::string Topology::describe() const {
  std::ostringstream os;
  switch (kind_) {
    case TopologyKind::FullyConnected:
      os << "fully-connected(" << size_ << ")";
      break;
    case TopologyKind::Ring:
      os << "ring(" << size_ << ")";
      break;
    case TopologyKind::Torus2D:
      os << "torus2d(" << dims_[0] << "x" << dims_[1] << ")";
      break;
    case TopologyKind::Torus3D:
      os << "torus3d(" << dims_[0] << "x" << dims_[1] << "x" << dims_[2] << ")";
      break;
  }
  return os.str();
}

}  // namespace canb::machine
