#include "machine/presets.hpp"

namespace canb::machine {

MachineModel hopper() {
  MachineModel m;
  m.name = "hopper";
  m.alpha = 8e-6;
  m.beta = 1.7e-10;
  m.alpha_hop = 0.0;
  m.gamma = 5e-8;
  m.gamma_flop = 5e-10;
  m.shift_beta_factor = 1.0;
  m.collectives = make_saturating_tree(/*alpha_c=*/8e-6, /*beta_c=*/1.7e-10,
                                       /*contention=*/0.012, /*p_ref=*/1024);
  m.topology = std::make_shared<Topology>(Topology::balanced_torus3d(24576));
  return m;
}

MachineModel intrepid(bool use_hw_tree, bool torus_bcast_shifts) {
  MachineModel m;
  m.name = use_hw_tree ? "intrepid(tree)" : "intrepid";
  m.alpha = 2.5e-5;
  m.beta = 2.4e-9;
  m.alpha_hop = 0.0;
  m.gamma = 1.5e-7;
  m.gamma_flop = 2e-9;
  // Section III-C: "replacing P/c^2 point-to-point shifts within the rows
  // with P/c^2 broadcasts across the rows improved performance because the
  // bidirectionality of the torus provides twice the bandwidth".
  m.shift_beta_factor = torus_bcast_shifts ? 0.5 : 1.0;
  auto torus_colls = make_saturating_tree(/*alpha_c=*/2.5e-5, /*beta_c=*/2.4e-9,
                                          /*contention=*/0.005, /*p_ref=*/1024);
  if (use_hw_tree) {
    // The dedicated network serializes whole-partition payloads at a modest
    // effective bandwidth but with near-flat latency; calibrated so that the
    // c=1 "tree" allgather bar in Fig. 2c lands near 0.06 s.
    m.collectives = make_hardware_tree(/*alpha_tree=*/5e-6, /*beta_tree=*/3.5e-8, torus_colls);
  } else {
    m.collectives = torus_colls;
  }
  m.topology = std::make_shared<Topology>(Topology::balanced_torus3d(32768));
  return m;
}

MachineModel laptop() {
  MachineModel m;
  m.name = "laptop";
  m.alpha = 5e-7;
  m.beta = 1e-10;
  m.gamma = 5e-9;
  m.gamma_flop = 2e-10;
  m.collectives = make_ideal_log_tree(5e-7, 1e-10);
  m.topology = std::make_shared<Topology>(Topology::fully_connected(64));
  return m;
}

MachineModel with_ideal_collectives(MachineModel m) {
  m.name += "(ideal-coll)";
  m.collectives = make_ideal_log_tree(m.alpha, m.beta);
  return m;
}

}  // namespace canb::machine
