// The machine model: an alpha-beta-gamma cost model plus a collective model
// and a topology. All algorithm timing in this library is *virtual time*
// charged through a MachineModel, which is what lets a laptop reproduce the
// communication behaviour of a 32K-core torus (see DESIGN.md §1).
#pragma once

#include <memory>
#include <string>

#include "machine/collective_model.hpp"
#include "machine/topology.hpp"

namespace canb::machine {

struct MachineModel {
  std::string name = "generic";

  // --- point-to-point costs -------------------------------------------
  double alpha = 1e-6;   ///< per-message latency (s)
  double beta = 1e-9;    ///< per-byte transfer time (s/B)
  double alpha_hop = 0;  ///< extra latency per network hop (s); 0 = hop-free

  // --- computation -----------------------------------------------------
  double gamma = 5e-8;       ///< seconds per pairwise force interaction
  double gamma_flop = 1e-9;  ///< seconds per generic flop (integration, reduce combine)

  // --- shifting refinements (Section III-C) ----------------------------
  /// Multiplier on shift bandwidth cost. 0.5 models replacing point-to-point
  /// shifts with topology-aware broadcasts that exploit torus
  /// bidirectionality (the DCMF optimization on Intrepid).
  double shift_beta_factor = 1.0;

  // --- collectives ------------------------------------------------------
  std::shared_ptr<const CollectiveModel> collectives;

  // --- interconnect ----------------------------------------------------
  /// Topology used for hop-aware latency. Optional; most experiments use
  /// the pure alpha-beta model (alpha_hop == 0).
  std::shared_ptr<const Topology> topology;

  // ----------------------------------------------------------------------
  /// Time to send one point-to-point message of `bytes` across `hops` hops.
  double p2p_time(double bytes, int hops = 1) const {
    return alpha + alpha_hop * static_cast<double>(hops) + beta * bytes;
  }

  /// Shift-phase variant of p2p_time (may exploit bidirectional links).
  double shift_time(double bytes, int hops = 1) const {
    return alpha + alpha_hop * static_cast<double>(hops) + shift_beta_factor * beta * bytes;
  }

  double compute_time(double interactions) const { return gamma * interactions; }

  double broadcast_time(const CollectiveContext& ctx) const {
    return collectives ? collectives->broadcast_time(ctx) : 0.0;
  }
  double reduce_time(const CollectiveContext& ctx) const {
    return collectives ? collectives->reduce_time(ctx) : 0.0;
  }
  long long collective_messages(int members) const {
    return collectives ? collectives->critical_messages(members) : 0;
  }

  /// Validation: throws PreconditionError on nonsensical constants.
  void validate() const;
};

}  // namespace canb::machine
