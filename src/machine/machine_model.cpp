#include "machine/machine_model.hpp"

#include "support/assert.hpp"

namespace canb::machine {

void MachineModel::validate() const {
  CANB_REQUIRE(alpha >= 0.0, "alpha must be non-negative");
  CANB_REQUIRE(beta >= 0.0, "beta must be non-negative");
  CANB_REQUIRE(alpha_hop >= 0.0, "alpha_hop must be non-negative");
  CANB_REQUIRE(gamma >= 0.0, "gamma must be non-negative");
  CANB_REQUIRE(gamma_flop >= 0.0, "gamma_flop must be non-negative");
  CANB_REQUIRE(shift_beta_factor > 0.0, "shift_beta_factor must be positive");
  CANB_REQUIRE(collectives != nullptr, "machine model needs a collective model");
}

}  // namespace canb::machine
