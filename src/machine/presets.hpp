// Machine presets calibrated against the paper's reported magnitudes.
//
// The goal of calibration is *shape fidelity*: who wins at which replication
// factor, where the collective/point-to-point crossover falls, and how strong
// scaling degrades — not absolute-nanosecond agreement with 2012 hardware.
// EXPERIMENTS.md records paper-vs-model numbers for every figure.
#pragma once

#include "machine/machine_model.hpp"

namespace canb::machine {

/// Hopper: Cray XE-6 at NERSC. 24 cores/node (2.1 GHz AMD MagnyCours),
/// Gemini 3D-torus. Calibrated so that Fig. 2a/2b magnitudes match:
///  - gamma = 5e-8 s/interaction  (~20M pairwise force evals per core per
///    second; matches the paper's compute-only bars within ~10%)
///  - alpha = 8e-6 s effective point-to-point latency at scale
///  - beta  = 1.7e-10 s/B (~5.9 GB/s per link)
///  - saturating collectives with contention 0.02 at p_ref=1024: 6K-core
///    runs behave near-ideally (Fig. 2a) while 24K-core runs have an
///    optimum at c=16 (Fig. 2b).
MachineModel hopper();

/// Intrepid: IBM BlueGene/P at ALCF. 4 cores/node (850 MHz PowerPC450),
/// 3D torus plus a dedicated collective ("tree") network. Calibrated from
/// Fig. 2c/2d: gamma = 1.5e-7 (slow cores), alpha = 2.5e-5 effective,
/// beta = 2.4e-9 (~425 MB/s links).
///
/// `use_hw_tree`  — model the dedicated collective network (only helps
///                  whole-partition collectives; the "tree" bars).
/// `torus_bcast_shifts` — replace point-to-point shifts with DCMF
///                  topology-aware broadcasts that exploit bidirectional
///                  torus links (halves shift bandwidth cost; Section III-C).
MachineModel intrepid(bool use_hw_tree = false, bool torus_bcast_shifts = true);

/// A small present-day cluster model used by examples and fast tests.
MachineModel laptop();

/// Copy of `m` with ideal logarithmic collectives — the paper's *model*
/// assumption, used by the ablation bench to show why measured optima
/// differ from modeled optima.
MachineModel with_ideal_collectives(MachineModel m);

}  // namespace canb::machine
