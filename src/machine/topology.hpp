// Interconnect topology: hop distances for rings, meshes, and tori.
//
// The cost model is primarily alpha-beta (per-message + per-byte); hop
// distance enters as an optional per-hop latency term so that long skew
// shifts cost slightly more than neighbor shifts, as on a real torus.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace canb::machine {

enum class TopologyKind { FullyConnected, Ring, Torus2D, Torus3D };

/// Immutable topology descriptor over `size()` ranks mapped in row-major
/// order onto the torus dimensions.
class Topology {
 public:
  /// Fully connected (hop distance 1 between distinct ranks).
  static Topology fully_connected(int p);
  static Topology ring(int p);
  static Topology torus2d(int nx, int ny);
  static Topology torus3d(int nx, int ny, int nz);

  /// Chooses a near-cubic 3D torus for p ranks (factors p greedily).
  static Topology balanced_torus3d(int p);

  TopologyKind kind() const noexcept { return kind_; }
  int size() const noexcept { return size_; }
  const std::array<int, 3>& dims() const noexcept { return dims_; }

  /// Minimal hop count between two ranks (torus wrap-around included).
  int hops(int from, int to) const;

  /// Network diameter (max hops over any pair).
  int diameter() const;

  std::string describe() const;

 private:
  Topology(TopologyKind kind, std::array<int, 3> dims);
  std::array<int, 3> coords(int rank) const;

  TopologyKind kind_;
  std::array<int, 3> dims_;
  int size_;
};

}  // namespace canb::machine
