#include "machine/collective_model.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace canb::machine {

namespace {

double log2_ceil_rounds(int members) {
  if (members <= 1) return 0.0;
  return std::ceil(std::log2(static_cast<double>(members)));
}

class IdealLogTree final : public CollectiveModel {
 public:
  IdealLogTree(double alpha_c, double beta_c) : alpha_(alpha_c), beta_(beta_c) {}

  double broadcast_time(const CollectiveContext& ctx) const override {
    return log2_ceil_rounds(ctx.members) * (alpha_ + beta_ * ctx.bytes);
  }
  double reduce_time(const CollectiveContext& ctx) const override {
    return broadcast_time(ctx);  // same tree, reversed edges
  }
  std::string name() const override { return "ideal-log-tree"; }

 private:
  double alpha_;
  double beta_;
};

class SaturatingTree final : public CollectiveModel {
 public:
  SaturatingTree(double alpha_c, double beta_c, double contention, int p_ref)
      : alpha_(alpha_c), beta_(beta_c), contention_(contention), p_ref_(p_ref) {
    CANB_REQUIRE(p_ref >= 1, "saturating tree p_ref must be >= 1");
  }

  double broadcast_time(const CollectiveContext& ctx) const override {
    const double tree = log2_ceil_rounds(ctx.members) * (alpha_ + beta_ * ctx.bytes);
    // Contention term: at large machine scale, thousands of simultaneous
    // team collectives share the torus; the effective extra cost grows
    // linearly with team size and quadratically with machine size. The
    // quadratic scale factor is a calibration choice documented in
    // EXPERIMENTS.md: it makes 6K-core runs behave near-ideally (Fig. 2a)
    // while 24K-core runs saturate (Fig. 2b), as observed on Hopper.
    const double scale = static_cast<double>(ctx.p_total) / static_cast<double>(p_ref_);
    const double extra = contention_ * scale * scale *
                         static_cast<double>(std::max(0, ctx.members - 1)) *
                         (alpha_ + beta_ * ctx.bytes);
    return tree + extra;
  }
  double reduce_time(const CollectiveContext& ctx) const override {
    return broadcast_time(ctx);
  }
  std::string name() const override { return "saturating-tree"; }

 private:
  double alpha_;
  double beta_;
  double contention_;
  int p_ref_;
};

class HardwareTree final : public CollectiveModel {
 public:
  HardwareTree(double alpha_tree, double beta_tree,
               std::shared_ptr<const CollectiveModel> fallback)
      : alpha_(alpha_tree), beta_(beta_tree), fallback_(std::move(fallback)) {
    CANB_REQUIRE(fallback_ != nullptr, "hardware tree needs a fallback model");
  }

  double broadcast_time(const CollectiveContext& ctx) const override {
    if (!ctx.whole_partition) return fallback_->broadcast_time(ctx);
    // The dedicated network is pipelined: latency is nearly independent of
    // partition size; bandwidth is the tree link bandwidth.
    return alpha_ + beta_ * ctx.bytes;
  }
  double reduce_time(const CollectiveContext& ctx) const override {
    if (!ctx.whole_partition) return fallback_->reduce_time(ctx);
    return alpha_ + beta_ * ctx.bytes;
  }
  long long critical_messages(int members) const override {
    return fallback_->critical_messages(members);
  }
  std::string name() const override { return "hardware-tree"; }

 private:
  double alpha_;
  double beta_;
  std::shared_ptr<const CollectiveModel> fallback_;
};

}  // namespace

long long CollectiveModel::critical_messages(int members) const {
  return members <= 1 ? 0 : static_cast<long long>(log2_ceil_rounds(members));
}

std::shared_ptr<const CollectiveModel> make_ideal_log_tree(double alpha_c, double beta_c) {
  return std::make_shared<IdealLogTree>(alpha_c, beta_c);
}

std::shared_ptr<const CollectiveModel> make_saturating_tree(double alpha_c, double beta_c,
                                                            double contention, int p_ref) {
  return std::make_shared<SaturatingTree>(alpha_c, beta_c, contention, p_ref);
}

std::shared_ptr<const CollectiveModel> make_hardware_tree(
    double alpha_tree, double beta_tree, std::shared_ptr<const CollectiveModel> fallback) {
  return std::make_shared<HardwareTree>(alpha_tree, beta_tree, std::move(fallback));
}

}  // namespace canb::machine
