// Autotuning the replication factor — the paper's Section V future work:
// "the question of how to select the replication factor c ... can be
// autotuned at runtime by trying multiple factors."
//
// The Autotuner evaluates every valid c on phantom payloads against a
// machine model (exactly the schedules and ledgers a real trial timestep
// would produce) and picks the modeled-fastest. Here we tune the paper's
// own configurations and show where the optimum lands on each machine.
//
// Run: ./examples/autotune_replication [--p=24576] [--n=196608]
#include <iostream>

#include "core/autotuner.hpp"
#include "machine/presets.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace canb;

void tune_and_print(const std::string& title, core::Autotuner::Config cfg) {
  std::cout << "\n" << banner(title) << "\n\n";
  const auto result = core::Autotuner(std::move(cfg)).tune();
  Table t({{"c", 5}, {"time/step", 12, 5}, {"comm", 12, 5}, {"memory", 8}, {"", 4}});
  for (const auto& cand : result.candidates) {
    t.add_row({static_cast<long long>(cand.c), cand.seconds, cand.comm_seconds,
               std::string(std::to_string(cand.c) + "x"),
               std::string(cand.c == result.best_c ? "<--" : "")});
  }
  t.print(std::cout);
  std::cout << "  chosen: c=" << result.best_c << " at "
            << format_seconds(result.best_seconds) << "/step\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"p", "n"});
  const int p = static_cast<int>(args.get_int("p", 24576));
  const auto n = static_cast<std::uint64_t>(args.get_int("n", 196608));

  std::cout << "Replication-factor autotuning (paper Section V)\n";

  tune_and_print("All-pairs on Hopper, p=" + std::to_string(p) + ", n=" + std::to_string(n),
                 {p, n, machine::hopper(), 0, 0.0, 1});
  tune_and_print("All-pairs on Intrepid, p=32768, n=262144",
                 {32768, 262144, machine::intrepid(), 0, 0.0, 1});
  tune_and_print("1D cutoff (rc=l/4) on Hopper, p=" + std::to_string(p),
                 {p, n, machine::hopper(), 0, 0.25, 1});
  tune_and_print("2D cutoff (rc=l/4) on Intrepid, p=32768",
                 {32768, 262144, machine::intrepid(false, false), 0, 0.25, 2});

  std::cout << "\nThe paper's observation holds: the best c sits well inside (1, sqrt(p)),\n"
               "and differs per machine — hence 'c should be treated as a tuning\n"
               "parameter'. A memory cap (max_c) restricts the search to what fits.\n";
  return 0;
}
