// Autotuning the replication factor — the paper's Section V future work:
// "the question of how to select the replication factor c ... can be
// autotuned at runtime by trying multiple factors."
//
// The Autotuner evaluates every valid c on phantom payloads against a
// machine model (exactly the schedules and ledgers a real trial timestep
// would produce) and picks the modeled-fastest. Here we tune the paper's
// own configurations and show where the optimum lands on each machine.
//
// The last section closes the loop with the host: a HostTuner calibration
// measures this machine's real sweep throughput and feeds it back into the
// model as gamma = 1/pairs_per_sec, so the c-choice balances communication
// against the compute rate the hardware actually delivers.
//
// Run: ./examples/autotune_replication [--p=24576] [--n=196608]
#include <iostream>

#include "core/autotuner.hpp"
#include "core/host_tuner.hpp"
#include "machine/presets.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace canb;

void tune_and_print(const std::string& title, core::Autotuner::Config cfg) {
  std::cout << "\n" << banner(title) << "\n\n";
  const auto result = core::Autotuner(std::move(cfg)).tune();
  Table t({{"c", 5}, {"time/step", 12, 5}, {"comm", 12, 5}, {"memory", 8}, {"", 4}});
  for (const auto& cand : result.candidates) {
    t.add_row({static_cast<long long>(cand.c), cand.seconds, cand.comm_seconds,
               std::string(std::to_string(cand.c) + "x"),
               std::string(cand.c == result.best_c ? "<--" : "")});
  }
  t.print(std::cout);
  std::cout << "  chosen: c=" << result.best_c << " at "
            << format_seconds(result.best_seconds) << "/step\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"p", "n"});
  const int p = static_cast<int>(args.get_int("p", 24576));
  const auto n = static_cast<std::uint64_t>(args.get_int("n", 196608));

  std::cout << "Replication-factor autotuning (paper Section V)\n";

  tune_and_print("All-pairs on Hopper, p=" + std::to_string(p) + ", n=" + std::to_string(n),
                 {p, n, machine::hopper(), 0, 0.0, 1});
  tune_and_print("All-pairs on Intrepid, p=32768, n=262144",
                 {32768, 262144, machine::intrepid(), 0, 0.0, 1});
  tune_and_print("1D cutoff (rc=l/4) on Hopper, p=" + std::to_string(p),
                 {p, n, machine::hopper(), 0, 0.25, 1});
  tune_and_print("2D cutoff (rc=l/4) on Intrepid, p=32768",
                 {32768, 262144, machine::intrepid(false, false), 0, 0.25, 2});

  // --- measured-gamma feed (host calibration -> virtual c-choice) ---------
  // A short real calibration replaces the preset's nominal per-interaction
  // constant with this machine's measured sweep rate. The resulting c can
  // differ: a faster host shrinks the compute share, pushing the optimum
  // toward less replication (communication dominates sooner).
  {
    core::HostTuner<particles::InverseSquareRepulsion>::Config hcfg;
    hcfg.kernel = {1e-4, 1e-2};
    hcfg.n = 512;
    hcfg.sample_seconds = 2e-3;
    hcfg.max_threads = 1;  // gamma is a per-core constant; threads scale ranks
    const auto host = core::HostTuner<particles::InverseSquareRepulsion>(hcfg).tune();
    const machine::MachineModel measured =
        core::with_measured_gamma(machine::hopper(), host.best);
    std::cout << "\nmeasured host sweep: " << host.best.pairs_per_sec
              << " pairs/s  ->  gamma = " << measured.gamma << " s/interaction (preset "
              << machine::hopper().gamma << ")\n";
    tune_and_print("All-pairs on Hopper with MEASURED gamma, p=" + std::to_string(p),
                   {p, n, measured, 0, 0.0, 1});
  }

  std::cout << "\nThe paper's observation holds: the best c sits well inside (1, sqrt(p)),\n"
               "and differs per machine — hence 'c should be treated as a tuning\n"
               "parameter'. A memory cap (max_c) restricts the search to what fits.\n"
               "The measured-gamma section grounds the model's compute term in a real\n"
               "host calibration (core::with_measured_gamma).\n";
  return 0;
}
