// Molecular-dynamics-style fluid with a cutoff: the Section IV workload.
//
// A 2D Lennard-Jones-like fluid where interactions are truncated at rc.
// The CA cutoff algorithm decomposes space among teams, replicates each
// team's particles c times, walks the interaction window in strides of c,
// and re-assigns migrating particles every step — all of which shows up in
// the phase breakdown printed at the end.
//
// Run: ./examples/md_cutoff_fluid [--n=800] [--p=32] [--c=2] [--steps=200]
#include <iostream>

#include "machine/presets.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "sim/simulation.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace canb;
  const CliArgs args(argc, argv, {"n", "p", "c", "steps"});
  const int n = static_cast<int>(args.get_int("n", 800));
  const int p = static_cast<int>(args.get_int("p", 32));
  const int c = static_cast<int>(args.get_int("c", 2));
  const int steps = static_cast<int>(args.get_int("steps", 200));

  using Sim = sim::Simulation<particles::SoftSphere>;
  Sim::Config cfg;
  cfg.method = sim::Method::CaCutoff;
  cfg.p = p;
  cfg.c = c;
  cfg.machine = machine::laptop();
  cfg.box = particles::Box::reflective_2d(1.0);
  // Soft repulsive spheres: stable at MD-ish timesteps without the stiff
  // r^-12 core of true LJ, same communication structure.
  cfg.kernel = particles::SoftSphere{/*stiffness=*/25.0, /*radius=*/0.04};
  cfg.cutoff = 0.2;  // the interaction window: ~1/5 of the box
  cfg.dt = 2e-3;

  std::cout << "Cutoff fluid: " << n << " soft spheres, rc=" << cfg.cutoff << ", " << p
            << " ranks (c=" << c << ", spatial decomposition + re-assignment)\n\n";

  // Dense lattice start with thermal velocities: the fluid relaxes and
  // particles diffuse across team boundaries, exercising re-assignment.
  auto fluid = particles::init_lattice(n, cfg.box, /*jitter=*/0.3, /*seed=*/7);
  {
    Xoshiro256 rng(11);
    for (auto& pt : fluid) {
      pt.vx = static_cast<float>(rng.normal() * 0.05);
      pt.vy = static_cast<float>(rng.normal() * 0.05);
    }
  }

  Sim sim_run(cfg, std::move(fluid));

  Table t({{"step", 6}, {"kinetic", 12, 6}, {"potential", 12, 6}, {"total E", 12, 6}});
  const int report_every = std::max(1, steps / 5);
  for (int s = 0; s <= steps; ++s) {
    if (s % report_every == 0) {
      const auto snap = sim_run.gather();
      const auto st = particles::full_state(std::span<const particles::Particle>(snap),
                                            cfg.box, cfg.kernel, cfg.cutoff);
      t.add_row({static_cast<long long>(s), st.kinetic, st.potential, st.total()});
    }
    if (s < steps) sim_run.step();
  }
  t.print(std::cout);

  std::vector<sim::RunReport> reps{sim_run.report("cutoff-fluid")};
  std::cout << "\nper-step phase breakdown on the virtual cluster:\n";
  sim::print_reports(std::cout, reps);
  std::cout << "\nNote the re-assign column: spatial decompositions pay it every step\n"
               "(Figure 6's 'Communication (Re-assign)' series).\n";
  return 0;
}
