// The general-purpose runner: every method, machine, workload, and output
// format behind one command line — the tool a downstream user scripts.
//
//   ./examples/run_simulation --method=ca-all-pairs --machine=laptop
//       --n=512 --p=64 --c=4 --steps=100 --workload=uniform
//       --xyz=traj.xyz --checkpoint=state.canb --report
//   (one line; wrapped here for readability)
//
//   --method      ca-all-pairs | ca-cutoff | spatial-halo | midpoint | particle-ring |
//                 particle-allgather | force-decomp
//   --machine     laptop | hopper | intrepid | intrepid-tree
//   --workload    uniform | lattice | clusters | gradient | two-stream |
//                 plummer | ring
//   --cutoff      cutoff radius (required by the cutoff methods)
//   --restart     resume from a checkpoint written by --checkpoint
//   --threads     host threads for the force loops (ca methods);
//                 0 = auto-detect (std::thread::hardware_concurrency)
//   --sched       static | stealing host task scheduler for those threads
//                 (support/parallel.hpp); outputs are bitwise identical
//                 either way — stealing only rebalances execution
//   --steal-grain tasks clipped per steal (stealing mode; default 1)
//   --engine      scalar | batched host force sweep (virtual time unchanged)
//   --data-plane  pooled | legacy host buffer movement (vmpi/buffer_pool.hpp);
//                 host wall time only — outputs are bitwise identical
//   --tune        off | auto | force host autotuning (core/host_tuner.hpp):
//                 auto calibrates (or reuses --tune-cache) and installs the
//                 fastest {engine, half-sweep, tile, SIMD backend, threads};
//                 force always re-calibrates. Virtual time is unchanged.
//   --tune-cache  path to the persisted tuning cache (docs/TUNING.md)
//
// Real transport (docs/TRANSPORT.md). The modeled default moves bytes
// in-process and only charges the virtual clock; shmem/socket run the same
// schedule over an actual fabric with bitwise-identical output:
//   --transport        modeled | shmem | socket (default modeled)
//   --transport-groups socket: number of OS processes (forked here unless
//                      --transport-group names this process's group)
//   --transport-group  socket: this process's group index, for externally
//                      launched groups (requires --transport-dir)
//   --transport-dir    socket: shared rendezvous directory (default: a
//                      fresh private temp dir when forking)
//   --transport-drop   socket: seeded egress drop probability on data
//                      frames, exercising the reliable channel
//   --transport-drop-seed  seed for that drop stream (default 1)
//   --transport-exec   socket: owner | lockstep (default owner). Owner-
//                      computes makes each process run force sweeps and
//                      reassign splits only for its owned ranks and gather
//                      full state over the wire at snapshot points — the
//                      true distribution mode (host wall drops ~G×);
//                      lockstep keeps the PR 8 full-SPMD replication.
//                      Either way, trajectories, ledgers, and traces are
//                      bitwise identical to the modeled arm.
// With --transport=socket only the group-0 process prints and writes
// output files; the other groups compute, feed the fabric, and exit. A
// crashed group fails the whole run with that group's exit status.
//
// Fault injection (deterministic; see vmpi/fault.hpp and docs/TESTING.md).
// Passing any of these attaches a PerturbationModel to the virtual machine;
// all-zero rates leave the run bitwise identical to no model at all:
//   --fault-seed    seed for the per-rank fault streams (default 2013)
//   --straggler     per-compute-charge straggler probability
//   --jitter        lognormal sigma on every compute charge
//   --drop-rate     per-attempt message drop probability (retries charged)
//   --link-degrade  fraction of directed links degraded (4x slower)
//
// Observability (docs/OBSERVABILITY.md). Attaching telemetry never changes
// clocks, ledgers, or trajectories:
//   --obs-level     off | metrics | full (defaults to off; implied by the
//                   output flags below: metrics-out => metrics, trace-out
//                   or spans-csv => full)
//   --metrics-out   write metrics JSON here, plus Prometheus text next to
//                   it (same path with a .prom extension)
//   --trace-out     write a Chrome trace-event JSON (chrome://tracing,
//                   Perfetto) of the per-rank span timeline
//   --spans-csv     write the per-(sample, rank) clock time series as CSV
// At full level the run also prints the recovered critical path and the
// report table grows cp-rank / cp(s) / slack(s) columns.
//
// Live observability plane (implies --obs-level=metrics when unset):
//   --serve         serve /metrics /healthz /spans.csv /trace.json over
//                   HTTP on 127.0.0.1:<port> during the run (bare --serve
//                   = port 0 = pick an ephemeral port; URL is printed).
//                   Under --transport=socket the group-0 process serves
//                   the mesh-merged view covering every process.
//   --serve-linger  keep serving this many seconds after the run finishes
//                   (for scripted scrapes; default 0)
//   --series-out    write the per-step flight recorder JSON here
//   --series-capacity  flight recorder ring size (default 1024)
//   --straggler-factor a step slower than this multiple of the rolling
//                   median wall time is flagged and dumped immediately to
//                   <series-out>.straggler-step<K>.json (default 3.0)
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <thread>

#include "core/autotuner.hpp"
#include "machine/presets.hpp"
#include "obs/export.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "sim/checkpoint.hpp"
#include "sim/simulation.hpp"
#include "sim/trajectory.hpp"
#include "support/cli.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "vmpi/socket_transport.hpp"
#include "vmpi/transport.hpp"

namespace {

using namespace canb;

sim::Method parse_method(const std::string& name) {
  if (name == "ca-all-pairs") return sim::Method::CaAllPairs;
  if (name == "ca-cutoff") return sim::Method::CaCutoff;
  if (name == "spatial-halo") return sim::Method::SpatialHalo;
  if (name == "midpoint") return sim::Method::Midpoint;
  if (name == "particle-ring") return sim::Method::ParticleRing;
  if (name == "particle-allgather") return sim::Method::ParticleAllGather;
  if (name == "force-decomp") return sim::Method::ForceDecomp;
  CANB_REQUIRE(false, "unknown --method: " + name);
  return sim::Method::CaAllPairs;
}

machine::MachineModel parse_machine(const std::string& name) {
  if (name == "laptop") return machine::laptop();
  if (name == "hopper") return machine::hopper();
  if (name == "intrepid") return machine::intrepid();
  if (name == "intrepid-tree") return machine::intrepid(true);
  CANB_REQUIRE(false, "unknown --machine: " + name);
  return machine::laptop();
}

particles::Block make_workload(const std::string& name, int n, const particles::Box& box,
                               std::uint64_t seed) {
  if (name == "uniform") return particles::init_uniform(n, box, seed, 0.02);
  if (name == "lattice") return particles::init_lattice(n, box, 0.3, seed);
  if (name == "clusters") return particles::init_clusters(n, box, 4, 0.05, seed, 0.02);
  if (name == "gradient") return particles::init_gradient(n, box, 1.0, seed);
  if (name == "two-stream") return particles::init_two_stream(n, box, 0.2, 0.02, seed);
  if (name == "plummer") return particles::init_plummer(n, box, 0.1, seed, 0.02);
  if (name == "ring") return particles::init_ring(n, box, 0.35, 0.05, seed, 0.02);
  CANB_REQUIRE(false, "unknown --workload: " + name);
  return {};
}

/// Cache key + tuner calibration shape for a workload name.
std::string tune_distribution_for(const std::string& workload) {
  if (workload == "plummer" || workload == "ring" || workload == "clusters") return workload;
  return "uniform";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"method", "machine", "workload", "n", "p", "c", "steps", "dt", "cutoff",
                      "seed", "xyz", "csv", "checkpoint", "restart", "report", "rdf",
                      "threads", "sched", "steal-grain", "integrator", "engine",
                      "data-plane", "tune", "tune-cache", "fault-seed", "straggler",
                      "jitter", "drop-rate", "link-degrade", "obs-level", "metrics-out",
                      "trace-out", "spans-csv", "serve", "serve-linger", "series-out",
                      "series-capacity", "straggler-factor", "transport",
                      "transport-groups", "transport-group", "transport-dir",
                      "transport-drop", "transport-drop-seed", "transport-exec"});
  using Sim = sim::Simulation<particles::InverseSquareRepulsion>;
  Sim::Config cfg;
  cfg.method = parse_method(args.get("method", "ca-all-pairs"));
  cfg.machine = parse_machine(args.get("machine", "laptop"));
  cfg.p = static_cast<int>(args.get_int("p", 64));
  cfg.c = static_cast<int>(args.get_int("c", 1));
  cfg.dt = args.get_double("dt", 1e-4);
  cfg.cutoff = args.get_double("cutoff", 0.0);
  cfg.kernel = particles::InverseSquareRepulsion{1e-4, 1e-2};
  cfg.integrator = args.get("integrator", "velocity-verlet");
  cfg.engine = particles::parse_engine(args.get("engine", "scalar"));
  {
    const std::string dp = args.get("data-plane", "pooled");
    CANB_REQUIRE(dp == "pooled" || dp == "legacy", "unknown --data-plane (pooled | legacy)");
    cfg.pooled_data_plane = dp == "pooled";
  }
  {
    const auto sched = parse_sched_mode(args.get("sched", "static"));
    CANB_REQUIRE(sched.has_value(), "unknown --sched (static | stealing)");
    cfg.sched = *sched;
    cfg.steal_grain = static_cast<int>(args.get_int("steal-grain", 1));
    CANB_REQUIRE(cfg.steal_grain >= 1, "--steal-grain must be >= 1");
  }
  {
    const auto tune = sim::parse_tune_mode(args.get("tune", "off"));
    CANB_REQUIRE(tune.has_value(), "unknown --tune (off | auto | force)");
    cfg.tune = *tune;
    cfg.tune_cache = args.get("tune-cache", "");
    CANB_REQUIRE(cfg.tune_cache.empty() || cfg.tune != sim::TuneMode::Off,
                 "--tune-cache needs --tune=auto or force");
    cfg.tune_distribution = tune_distribution_for(args.get("workload", "uniform"));
    // An explicit --sched wins over whatever the tuner would install.
    CANB_REQUIRE(!args.has("sched") || cfg.tune == sim::TuneMode::Off,
                 "--sched conflicts with --tune (the tuner picks the scheduler)");
  }
  const int n = static_cast<int>(args.get_int("n", 512));
  const int steps = static_cast<int>(args.get_int("steps", 50));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2013));

  // Real transport selection. The socket arm forks its process group here,
  // BEFORE any threads exist (the tuner and host pool spawn some), and
  // before the simulation is built so every group constructs identical
  // state. `primary` gates every print and file output below: group 0
  // speaks for the run, the other groups compute, feed the fabric, exit 0.
  std::unique_ptr<vmpi::ProcessGroup> launch;
  std::string owned_rendezvous_dir;
  bool primary = true;
  {
    const std::string tname = args.get("transport", "modeled");
    const auto kind = vmpi::parse_transport_kind(tname);
    CANB_REQUIRE(kind.has_value(), "unknown --transport (modeled | shmem | socket): " + tname);
    vmpi::TransportOptions topts;
    topts.kind = *kind;
    topts.ranks = cfg.p;
    topts.drop_rate = args.get_double("transport-drop", 0.0);
    topts.drop_seed = static_cast<std::uint64_t>(args.get_int("transport-drop-seed", 1));
    CANB_REQUIRE(*kind == vmpi::TransportKind::Socket ||
                     (!args.has("transport-groups") && !args.has("transport-group") &&
                      !args.has("transport-dir") && !args.has("transport-drop") &&
                      !args.has("transport-exec")),
                 "--transport-groups/-group/-dir/-drop/-exec need --transport=socket");
    {
      const std::string ename = args.get("transport-exec", "owner");
      const auto exec = vmpi::parse_exec_mode(ename);
      CANB_REQUIRE(exec.has_value(), "unknown --transport-exec (owner | lockstep): " + ename);
      cfg.exec = *exec;
    }
    if (*kind == vmpi::TransportKind::Socket) {
      topts.groups = static_cast<int>(args.get_int("transport-groups", 2));
      CANB_REQUIRE(topts.groups >= 1 && topts.groups <= cfg.p,
                   "--transport-groups must be in [1, p]");
      if (args.has("transport-group")) {
        // Externally launched: the caller starts one process per group and
        // points them all at the same rendezvous directory.
        topts.group = static_cast<int>(args.get_int("transport-group", 0));
        CANB_REQUIRE(topts.group >= 0 && topts.group < topts.groups,
                     "--transport-group must be in [0, transport-groups)");
        CANB_REQUIRE(args.has("transport-dir"),
                     "--transport-group needs --transport-dir (shared rendezvous)");
        topts.dir = args.get("transport-dir", "");
      } else {
        if (args.has("transport-dir")) {
          topts.dir = args.get("transport-dir", "");
        } else {
          owned_rendezvous_dir = vmpi::make_rendezvous_dir();
          topts.dir = owned_rendezvous_dir;
        }
        launch = std::make_unique<vmpi::ProcessGroup>(topts.groups);
        topts.group = launch->group();
      }
      primary = topts.group == 0;
    }
    // Modeled yields no endpoint by design: the default arm moves bytes
    // in-process already and attaching nothing keeps it allocation-free.
    cfg.transport = vmpi::make_transport(topts);
  }

  if (args.has("fault-seed") || args.has("straggler") || args.has("jitter") ||
      args.has("drop-rate") || args.has("link-degrade")) {
    vmpi::FaultConfig fault;
    fault.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 2013));
    fault.straggler_rate = args.get_double("straggler", 0.0);
    fault.jitter = args.get_double("jitter", 0.0);
    fault.drop_rate = args.get_double("drop-rate", 0.0);
    fault.link_degrade_rate = args.get_double("link-degrade", 0.0);
    cfg.fault = fault;
  }

  // Observability level: explicit flag wins; otherwise the requested
  // outputs imply the cheapest level that can produce them.
  if (args.has("obs-level")) {
    const auto level = obs::parse_obs_level(args.get("obs-level", "off"));
    CANB_REQUIRE(level.has_value(), "unknown --obs-level (off | metrics | full)");
    cfg.obs = *level;
  } else if (args.has("trace-out") || args.has("spans-csv")) {
    cfg.obs = obs::ObsLevel::Full;
  } else if (args.has("metrics-out") || args.has("serve") || args.has("series-out")) {
    cfg.obs = obs::ObsLevel::Metrics;
  }
  CANB_REQUIRE(!(args.has("trace-out") || args.has("spans-csv")) ||
                   cfg.obs == obs::ObsLevel::Full,
               "--trace-out/--spans-csv need --obs-level=full (span sampling)");
  CANB_REQUIRE(!args.has("metrics-out") || cfg.obs != obs::ObsLevel::Off,
               "--metrics-out needs --obs-level=metrics or full");
  if (args.has("serve")) {
    CANB_REQUIRE(cfg.obs != obs::ObsLevel::Off, "--serve needs --obs-level=metrics or full");
    // Bare "--serve" parses as the string "true": pick an ephemeral port.
    const std::string port = args.get("serve", "0");
    cfg.serve_port = port == "true" ? 0 : static_cast<int>(args.get_int("serve", 0));
    CANB_REQUIRE(cfg.serve_port >= 0 && cfg.serve_port <= 65535,
                 "--serve port must be in [0, 65535]");
  }
  const std::string series_out = args.get("series-out", "");
  if (!series_out.empty()) {
    CANB_REQUIRE(cfg.obs != obs::ObsLevel::Off,
                 "--series-out needs --obs-level=metrics or full");
    cfg.series_capacity = static_cast<int>(args.get_int("series-capacity", 1024));
    CANB_REQUIRE(cfg.series_capacity > 0, "--series-capacity must be positive");
    cfg.straggler_factor = args.get_double("straggler-factor", 3.0);
    CANB_REQUIRE(cfg.straggler_factor > 1.0, "--straggler-factor must exceed 1");
  } else {
    CANB_REQUIRE(!args.has("series-capacity") && !args.has("straggler-factor"),
                 "--series-capacity/--straggler-factor need --series-out");
  }

  particles::Block initial;
  std::int64_t step0 = 0;
  double time0 = 0.0;
  if (args.has("restart")) {
    const auto cp = sim::load_checkpoint(args.get("restart", ""));
    initial = cp.particles;
    step0 = cp.step;
    time0 = cp.time;
    if (primary)
      std::cout << "restarted from step " << step0 << " (" << initial.size()
                << " particles)\n";
  } else {
    initial = make_workload(args.get("workload", "uniform"), n, cfg.box, seed);
  }

  // Held by pointer so the endpoint can be torn down (flush + barrier +
  // close, in ~Transport) explicitly before forked children are reaped —
  // plain destructor order would reap first and deadlock the barrier.
  auto simulation_ptr = std::make_unique<Sim>(cfg, std::move(initial));
  Sim& simulation = *simulation_ptr;
  if (const auto& tuned = simulation.tuned(); primary && tuned.has_value()) {
    std::cout << "host tuner: engine=" << particles::engine_name(tuned->engine)
              << " half-sweep=" << (tuned->tuning.half_sweep ? "on" : "off")
              << " tile=" << tuned->tuning.tile
              << " simd=" << particles::simd::backend_name(particles::simd::active())
              << " threads=" << tuned->threads << " sched=" << to_string(tuned->sched)
              << (tuned->sched == SchedMode::kStealing
                      ? "/grain" + std::to_string(tuned->steal_grain)
                      : "")
              << (tuned->from_cache ? " (cached)" : " (calibrated)") << "\n";
  }
  int threads = static_cast<int>(args.get_int("threads", 1));
  if (!args.has("threads") && simulation.tuned()) {
    // No explicit --threads: a tuned run uses the calibrated thread count.
    threads = simulation.tuned()->threads;
  }
  if (threads == 0) {
    // --threads=0: use every hardware thread (minimum 1 when the runtime
    // cannot tell, which hardware_concurrency signals by returning 0).
    threads = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    if (primary) std::cout << "auto-detected " << threads << " host threads\n";
  }
  if (threads > 1) simulation.set_host_pool(std::make_shared<ThreadPool>(threads));

  // Provenance the Simulation cannot know on its own, added before any
  // artifact (file export, scrape, straggler dump) can embed the manifest.
  simulation.manifest()
      .set("workload", args.get("workload", "uniform"))
      .set("n", n)
      .set("steps", steps)
      .set("seed", seed)
      .set("integrator", cfg.integrator)
      .set("threads", threads)
      .set("sched", to_string(simulation.config().sched));
  if (cfg.fault) {
    simulation.manifest()
        .set("fault_seed", cfg.fault->seed)
        .set("straggler", cfg.fault->straggler_rate)
        .set("jitter", cfg.fault->jitter)
        .set("drop_rate", cfg.fault->drop_rate)
        .set("link_degrade", cfg.fault->link_degrade_rate);
  }

  if (auto* srv = simulation.server(); primary && srv != nullptr) {
    std::cout << "live metrics at " << srv->url() << "  (/metrics /healthz"
              << (cfg.obs == obs::ObsLevel::Full ? " /spans.csv /trace.json" : "") << ")"
              << std::endl;  // flush: scrapers watch stdout for the URL
  }
  if (auto* series = simulation.step_series(); primary && series != nullptr) {
    // Dump a flight-recorder snapshot the moment a straggler is flagged —
    // the evidence is on disk even if the run later hangs or dies.
    series->set_straggler_sink([&simulation, series_out](const obs::StepSample& s) {
      const std::string path = series_out + ".straggler-step" + std::to_string(s.step) + ".json";
      std::ofstream out(path);
      if (!out.good()) return;
      obs::write_step_series(out, *simulation.step_series(), simulation.manifest());
      std::cout << "straggler at step " << s.step << " (" << obs::format_double(s.wall_seconds)
                << "s wall); snapshot written to " << path << "\n";
    });
  }

  std::unique_ptr<sim::TrajectoryWriter> xyz;
  if (primary && args.has("xyz"))
    xyz = std::make_unique<sim::TrajectoryWriter>(args.get("xyz", ""),
                                                  sim::TrajectoryWriter::Format::Xyz);
  std::unique_ptr<sim::TrajectoryWriter> csv;
  if (primary && args.has("csv"))
    csv = std::make_unique<sim::TrajectoryWriter>(args.get("csv", ""),
                                                  sim::TrajectoryWriter::Format::Csv);

  const int snapshot_every = std::max(1, steps / 10);
  // The snapshot-gather decision must be identical on every forked group:
  // under owner-computes gather() is a symmetric wire all-gather, so gating
  // it on the writers (which only the primary constructs) would deadlock.
  const bool snapshots = args.has("xyz") || args.has("csv");
  for (int s = 0; s < steps; ++s) {
    simulation.step();
    if ((s + 1) % snapshot_every == 0 && snapshots) {
      const auto snap = simulation.gather();
      const double t = time0 + (step0 + s + 1) * cfg.dt;
      if (xyz) xyz->append(snap, static_cast<int>(step0) + s + 1, t);
      if (csv) csv->append(snap, static_cast<int>(step0) + s + 1, t);
    }
  }

  const auto final_state = simulation.gather();
  if (primary)
    std::cout << "ran " << steps << " steps of " << sim::method_name(cfg.method) << " on "
              << cfg.p << " ranks (" << cfg.machine.name << ", c=" << cfg.c << ")\n";
  if (const auto* fault = simulation.fault_model(); primary && fault != nullptr) {
    const auto& ledger = simulation.comm().ledger();
    std::cout << "fault injection: seed=" << fault->config().seed
              << " straggler=" << fault->config().straggler_rate
              << " jitter=" << fault->config().jitter
              << " drop=" << fault->config().drop_rate
              << " link-degrade=" << fault->config().link_degrade_rate << " — "
              << ledger.aggregate_retries() << " retries, " << ledger.aggregate_timeouts()
              << " timeouts across all ranks\n";
  }

  if (primary && args.has("checkpoint")) {
    sim::save_checkpoint(args.get("checkpoint", ""),
                         {step0 + steps, time0 + (step0 + steps) * cfg.dt, final_state});
    std::cout << "checkpoint written to " << args.get("checkpoint", "") << "\n";
  }

  obs::CriticalPathReport cp;
  if (auto* telem = simulation.telemetry(); telem != nullptr) {
    // EVERY group finalizes — the closing mesh snapshot exchange is
    // symmetric, so a primary-only call would deadlock the socket arm.
    cp = simulation.finalize_telemetry();
  }
  if (auto* telem = simulation.telemetry(); primary && telem != nullptr) {
    const obs::RunManifest& manifest = simulation.manifest();
    if (args.has("metrics-out")) {
      const std::string path = args.get("metrics-out", "");
      std::ofstream out(path);
      CANB_REQUIRE(out.good(), "cannot open --metrics-out file: " + path);
      // Mesh runs export the merged registry: every process's transport,
      // scheduler, and host-phase series, group-labeled and summable.
      const obs::MetricsRegistry merged = simulation.merged_metrics();
      obs::write_metrics_json(out, merged, manifest, telem->spans_enabled() ? &cp : nullptr);
      // Prometheus text rides along under the same stem.
      const auto dot = path.rfind('.');
      const std::string prom_path = path.substr(0, dot == std::string::npos ? path.size() : dot) + ".prom";
      std::ofstream prom(prom_path);
      CANB_REQUIRE(prom.good(), "cannot open Prometheus output file: " + prom_path);
      prom << obs::to_prometheus(merged);
      std::cout << "metrics written to " << path << " (+" << prom_path << ")\n";
    }
    if (!series_out.empty()) {
      std::ofstream out(series_out);
      CANB_REQUIRE(out.good(), "cannot open --series-out file: " + series_out);
      obs::write_step_series(out, *simulation.step_series(), manifest);
      std::cout << "flight recorder written to " << series_out << "\n";
    }
    if (args.has("trace-out")) {
      const std::string path = args.get("trace-out", "");
      std::ofstream out(path);
      CANB_REQUIRE(out.good(), "cannot open --trace-out file: " + path);
      obs::write_chrome_trace(out, telem->spans(), telem->trace(), &manifest);
      std::cout << "chrome trace written to " << path
                << " (open in chrome://tracing or ui.perfetto.dev)\n";
    }
    if (args.has("spans-csv")) {
      const std::string path = args.get("spans-csv", "");
      std::ofstream out(path);
      CANB_REQUIRE(out.good(), "cannot open --spans-csv file: " + path);
      obs::write_span_csv(out, telem->spans());
      std::cout << "span time series written to " << path << "\n";
    }
    if (telem->spans_enabled()) std::cout << obs::format_critical_path(cp);
  }

  if (primary && args.get_bool("report", false)) {
    std::vector<sim::RunReport> reps{simulation.report()};
    if (cp.end_rank >= 0) sim::annotate_critical_path(reps.front(), cp);
    sim::print_reports(std::cout, reps);
  }

  if (primary && args.get_bool("rdf", false)) {
    const auto g = particles::radial_distribution(
        std::span<const particles::Particle>(final_state), cfg.box, 0.25, 10);
    std::cout << "g(r) in 10 bins to r=0.25:";
    for (double v : g) std::cout << " " << std::fixed << std::setprecision(2) << v;
    std::cout << "\n";
  }

  // Scripted scrapers (CI, the demo script) get a deterministic window to
  // read the final state. Non-primary groups skip straight to teardown and
  // park in the close barrier until the primary follows.
  if (const double linger = args.get_double("serve-linger", 0.0);
      primary && simulation.server() != nullptr && linger > 0.0) {
    std::cout << "serving for another " << linger << "s (--serve-linger)" << std::endl;
    std::this_thread::sleep_for(std::chrono::duration<double>(linger));
  }

  // Fabric teardown while every peer process is still alive: releasing the
  // last references runs the endpoint's flush + close-barrier. Only then
  // may the parent reap its children (which exit after the same teardown).
  simulation_ptr.reset();
  cfg.transport.reset();
  if (launch != nullptr) {
    const int child_status = launch->wait_children();
    if (launch->primary()) {
      if (!owned_rendezvous_dir.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(owned_rendezvous_dir, ec);
      }
      if (child_status != 0) {
        // Fail the run with the crashed group's status — a silent exit 0
        // here would hide a child that diverged or died to a signal.
        std::cerr << "error: a forked transport group failed (status " << child_status << ")\n";
        return child_status;
      }
    }
  }
  return 0;
}
