// Galaxy collision: long-range gravity is the classic all-pairs N-body
// workload the paper's Section III targets — every star interacts with
// every other, so communication volume is the whole dataset per step and
// replication pays off directly.
//
// Two star clusters fall into each other under self-gravity; we track
// energy, the cluster separation, and the communication ledger of the CA
// algorithm computing it.
//
// Run: ./examples/galaxy_collision [--stars=600] [--p=36] [--c=6] [--steps=300]
#include <cmath>
#include <iostream>

#include "machine/presets.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "sim/simulation.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace canb;
using particles::Block;

// Mean position of each half of the id space (cluster A = even ids seeded
// into cluster 0, see init_clusters' round-robin assignment).
std::pair<double, double> cluster_separation(const Block& stars) {
  double ax = 0, ay = 0, bx = 0, by = 0;
  std::size_t na = 0, nb = 0;
  for (const auto& s : stars) {
    if (s.id % 2 == 0) {
      ax += s.px;
      ay += s.py;
      ++na;
    } else {
      bx += s.px;
      by += s.py;
      ++nb;
    }
  }
  ax /= static_cast<double>(na);
  ay /= static_cast<double>(na);
  bx /= static_cast<double>(nb);
  by /= static_cast<double>(nb);
  return {std::hypot(ax - bx, ay - by), 0.0};
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"stars", "p", "c", "steps"});
  const int n = static_cast<int>(args.get_int("stars", 600));
  const int p = static_cast<int>(args.get_int("p", 36));
  const int c = static_cast<int>(args.get_int("c", 6));
  const int steps = static_cast<int>(args.get_int("steps", 300));

  using Sim = sim::Simulation<particles::Gravity>;
  Sim::Config cfg;
  cfg.method = sim::Method::CaAllPairs;
  cfg.p = p;
  cfg.c = c;
  cfg.machine = machine::laptop();
  cfg.box = particles::Box::reflective_2d(4.0);
  cfg.kernel = particles::Gravity{/*g=*/2e-4, /*softening=*/0.02};
  cfg.dt = 2e-2;

  std::cout << "Galaxy collision: " << n << " stars in two clusters, CA all-pairs on " << p
            << " ranks (c=" << c << ")\n\n";

  auto stars = particles::init_clusters(n, cfg.box, /*clusters=*/2, /*width=*/0.04,
                                        /*seed=*/99, /*speed=*/0.0);
  const auto e0 = particles::full_state(std::span<const particles::Particle>(stars), cfg.box,
                                        cfg.kernel);

  Sim sim_run(cfg, std::move(stars));

  Table t({{"step", 6}, {"separation", 12, 4}, {"kinetic", 12, 6}, {"total E", 12, 6}});
  const int report_every = std::max(1, steps / 6);
  for (int s = 0; s <= steps; ++s) {
    if (s % report_every == 0) {
      const auto snap = sim_run.gather();
      const auto st = particles::full_state(std::span<const particles::Particle>(snap),
                                            cfg.box, cfg.kernel);
      t.add_row({static_cast<long long>(s), cluster_separation(snap).first, st.kinetic,
                 st.total()});
    }
    if (s < steps) sim_run.step();
  }
  t.print(std::cout);

  const auto final_snap = sim_run.gather();
  const auto e1 = particles::full_state(std::span<const particles::Particle>(final_snap),
                                        cfg.box, cfg.kernel);
  std::cout << "\nenergy drift over " << steps << " steps: "
            << 100.0 * (e1.total() - e0.total()) / std::abs(e0.total()) << "%\n";

  const auto rep = sim_run.report("galaxy");
  std::cout << "modeled cluster time/step: " << format_seconds(rep.wall) << " ("
            << format_seconds(rep.communication()) << " communication, " << rep.messages
            << " msgs on the critical path)\n";
  std::cout << "\nThe clusters should fall together (separation shrinks), convert\n"
               "potential into kinetic energy, and pass through each other.\n";
  return 0;
}
