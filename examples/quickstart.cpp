// Quickstart: the complete CA-N-Body workflow in ~60 lines.
//
//   1. pick a machine model (a virtual cluster; presets mirror the paper's
//      Hopper and Intrepid systems, `laptop()` is a small generic cluster)
//   2. initialize particles in a box
//   3. build a Simulation with the communication-avoiding all-pairs method
//      and a replication factor c
//   4. step it; read back physics and the communication ledger
//
// Build & run:  ./examples/quickstart [--n=512] [--p=64] [--c=4] [--steps=20]
#include <iostream>

#include "machine/presets.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "sim/simulation.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace canb;
  const CliArgs args(argc, argv, {"n", "p", "c", "steps"});
  const int n = static_cast<int>(args.get_int("n", 512));
  const int p = static_cast<int>(args.get_int("p", 64));
  const int c = static_cast<int>(args.get_int("c", 4));
  const int steps = static_cast<int>(args.get_int("steps", 20));

  using Sim = sim::Simulation<particles::InverseSquareRepulsion>;
  Sim::Config cfg;
  cfg.method = sim::Method::CaAllPairs;
  cfg.p = p;
  cfg.c = c;
  cfg.machine = machine::laptop();
  cfg.box = particles::Box::reflective_2d(1.0);
  cfg.kernel = particles::InverseSquareRepulsion{1e-4, 1e-2};
  cfg.dt = 1e-4;

  std::cout << "CA-N-Body quickstart: " << n << " particles, " << p
            << " virtual ranks, replication c=" << c << "\n\n";

  auto initial = particles::init_uniform(n, cfg.box, /*seed=*/2013, /*speed=*/0.05);
  const auto e0 =
      particles::full_state(std::span<const particles::Particle>(initial), cfg.box, cfg.kernel);

  Sim simulation(cfg, std::move(initial));
  simulation.run(steps);

  const auto final_state = simulation.gather();
  const auto e1 = particles::full_state(std::span<const particles::Particle>(final_state),
                                        cfg.box, cfg.kernel);

  std::cout << "energy:   " << e0.total() << " -> " << e1.total() << "  (drift "
            << 100.0 * (e1.total() - e0.total()) / e0.total() << "%)\n";
  std::cout << "momentum: (" << e1.momentum_x << ", " << e1.momentum_y << ")\n\n";

  const auto rep = simulation.report("quickstart");
  std::cout << "virtual time per step: " << format_seconds(rep.wall) << "  (compute "
            << format_seconds(rep.compute) << ", communication "
            << format_seconds(rep.communication()) << ")\n";
  std::cout << "critical path per step: " << rep.messages << " messages, "
            << format_bytes(rep.bytes) << "\n";
  std::cout << "\nTry --c=1 (particle decomposition) vs --c=8 (more replication):\n"
               "communication shrinks as 1/c while memory grows as c.\n";
  return 0;
}
