// The Section IV-C multi-dimensional generalization: 3D window geometry,
// schedule coverage in 3D, and the dimensionality cost scaling the paper
// highlights ("the number of neighbors is exponential in the
// dimensionality of the problem space").
#include <gtest/gtest.h>

#include <set>

#include "core/ca_cutoff.hpp"
#include "core/cutoff_geometry.hpp"
#include "core/policy.hpp"
#include "machine/presets.hpp"
#include "support/stats.hpp"

namespace {

using namespace canb;
using core::CutoffGeometry;
using core::TeamOffset;

// --- geometry arithmetic --------------------------------------------------------

TEST(Geometry3d, WindowAndCenter) {
  const auto g = CutoffGeometry::make_3d(8, 8, 8, 2, 2, 2);
  EXPECT_EQ(g.dims(), 3);
  EXPECT_EQ(g.teams(), 512);
  EXPECT_EQ(g.window(), 125);  // 5^3
  const auto center = g.slot_offset(g.center_slot());
  EXPECT_EQ(center, (TeamOffset{0, 0, 0}));
}

TEST(Geometry3d, SlotOffsetsEnumerateTheFullCube) {
  const auto g = CutoffGeometry::make_3d(8, 8, 8, 1, 2, 1);
  std::set<std::tuple<int, int, int>> seen;
  for (int s = 0; s < g.window(); ++s) {
    const auto off = g.slot_offset(s);
    EXPECT_GE(off.x, -1);
    EXPECT_LE(off.x, 1);
    EXPECT_GE(off.y, -2);
    EXPECT_LE(off.y, 2);
    EXPECT_GE(off.z, -1);
    EXPECT_LE(off.z, 1);
    seen.insert({off.x, off.y, off.z});
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(g.window()));  // all distinct
}

TEST(Geometry3d, WrapTeamRoundTrips) {
  const auto g = CutoffGeometry::make_3d(4, 5, 6, 1, 1, 1);
  for (int col = 0; col < g.teams(); ++col) {
    for (const TeamOffset off : {TeamOffset{1, 0, 0}, TeamOffset{0, -1, 0}, TeamOffset{0, 0, 3},
                                 TeamOffset{-1, 2, -2}}) {
      const int there = g.wrap_team(col, off);
      const TeamOffset back{-off.x, -off.y, -off.z};
      EXPECT_EQ(g.wrap_team(there, back), col);
    }
  }
}

TEST(Geometry3d, InBoundsDetectsFaces) {
  const auto g = CutoffGeometry::make_3d(4, 4, 4, 1, 1, 1);
  const int corner = 0;                          // (0,0,0)
  const int middle = g.wrap_team(0, {1, 1, 1});  // (1,1,1)
  EXPECT_FALSE(g.in_bounds(corner, {-1, 0, 0}));
  EXPECT_FALSE(g.in_bounds(corner, {0, 0, -1}));
  EXPECT_TRUE(g.in_bounds(corner, {1, 1, 1}));
  EXPECT_TRUE(g.in_bounds(middle, {-1, -1, -1}));
  EXPECT_FALSE(g.in_bounds(middle, {3, 0, 0}));
}

TEST(Geometry3d, LowerDimensionalGeometriesUnchanged) {
  // The 3D generalization must leave 1D/2D behavior identical: z is inert.
  const auto g1 = CutoffGeometry::make_1d(16, 4);
  EXPECT_EQ(g1.window(), 9);
  EXPECT_EQ(g1.slot_offset(0), (TeamOffset{-4, 0, 0}));
  const auto g2 = CutoffGeometry::make_2d(8, 8, 2, 1);
  EXPECT_EQ(g2.window(), 15);
  EXPECT_EQ(g2.qz(), 1);
  for (int s = 0; s < g2.window(); ++s) EXPECT_EQ(g2.slot_offset(s).z, 0);
}

// --- 3D schedule coverage ---------------------------------------------------------

TEST(Geometry3d, ScheduleCoversEveryWindowOffsetExactlyOnce) {
  // Across rows k and iterations j, the slots {k + c*j} cover the window
  // exactly once (plus out-of-window padding).
  const auto g = CutoffGeometry::make_3d(6, 6, 6, 1, 1, 1);  // window 27
  for (int c : {1, 2, 3, 9, 27}) {
    std::multiset<int> slots;
    const int spr = g.slots_per_row(c);
    for (int k = 0; k < c; ++k) {
      for (int j = 0; j < spr; ++j) {
        const int s = k + c * j;
        if (g.slot_in_window(s)) slots.insert(s);
      }
    }
    EXPECT_EQ(slots.size(), static_cast<std::size_t>(g.window())) << c;
    for (int s = 0; s < g.window(); ++s) EXPECT_EQ(slots.count(s), 1u) << s;
  }
}

TEST(Geometry3d, PhantomCutoffRunsAndChargesExpectedWork) {
  // 3D periodic, uniform counts: every rank examines exactly
  // window * cnt^2 - cnt pairs per step (the self-block subtracts cnt).
  const int qd = 6;
  const int c = 3;
  const int p = qd * qd * qd * c;
  const std::uint64_t cnt = 4;
  core::PhantomPolicy policy({0.0, false});
  core::CaCutoff<core::PhantomPolicy> engine(
      {p, c, machine::laptop(), CutoffGeometry::make_3d(qd, qd, qd, 1, 1, 1),
       /*periodic=*/true},
      policy, std::vector<core::PhantomBlock>(static_cast<std::size_t>(qd * qd * qd), {cnt}));
  engine.step();
  const double gamma = machine::laptop().gamma;
  const auto& led = engine.comm().ledger();
  // Sum over a team's rows: window interactions of cnt^2 minus one self.
  const auto g = engine.grid();
  double team_compute = 0.0;
  for (int row = 0; row < c; ++row)
    team_compute += led.seconds(g.rank(row, 0), vmpi::Phase::Compute);
  // Window interactions plus the leader's integration flops.
  const double expected = gamma * (27.0 * cnt * cnt - cnt) +
                          machine::laptop().gamma_flop * core::kIntegrateFlopsPerParticle * cnt;
  EXPECT_NEAR(team_compute, expected, expected * 1e-9);
}

TEST(Geometry3d, ReflectiveCornersIdleMost) {
  const int qd = 8;
  const int p = qd * qd * qd;
  core::PhantomPolicy policy({0.0, false});
  core::CaCutoff<core::PhantomPolicy> engine(
      {p, 1, machine::laptop(), CutoffGeometry::make_3d(qd, qd, qd, 1, 1, 1),
       /*periodic=*/false},
      policy, std::vector<core::PhantomBlock>(static_cast<std::size_t>(p), {4}));
  engine.step();
  const auto& led = engine.comm().ledger();
  // Corner team (0,0,0) sees 8 of 27 window blocks; center sees all 27.
  const int center = (qd / 2 * qd + qd / 2) * qd + qd / 2;
  const double corner_work = led.seconds(0, vmpi::Phase::Compute);
  const double center_work = led.seconds(center, vmpi::Phase::Compute);
  EXPECT_NEAR(center_work / corner_work, 27.0 / 8.0, 0.1);
}

// --- dimensionality scaling (the Section IV-C motivation) ------------------------

TEST(Geometry3d, MessagesGrowExponentiallyWithDimension) {
  // Fixed per-axis window radius m=2: S ~ (2m+1)^d / c messages.
  core::PhantomPolicy policy({0.0, false});
  std::vector<double> msgs;
  const int c = 1;
  // 1D: q=64; 2D: 8x8; 3D: 4x4x4 teams (machine size varies, S should not).
  {
    core::CaCutoff<core::PhantomPolicy> e(
        {64, c, machine::laptop(), CutoffGeometry::make_1d(64, 2), true}, policy,
        std::vector<core::PhantomBlock>(64, {4}));
    e.step();
    msgs.push_back(static_cast<double>(e.comm().ledger().critical_messages()));
  }
  {
    core::CaCutoff<core::PhantomPolicy> e(
        {64, c, machine::laptop(), CutoffGeometry::make_2d(8, 8, 2, 2), true}, policy,
        std::vector<core::PhantomBlock>(64, {4}));
    e.step();
    msgs.push_back(static_cast<double>(e.comm().ledger().critical_messages()));
  }
  {
    core::CaCutoff<core::PhantomPolicy> e(
        {125, c, machine::laptop(), CutoffGeometry::make_3d(5, 5, 5, 2, 2, 2), true}, policy,
        std::vector<core::PhantomBlock>(125, {4}));
    e.step();
    msgs.push_back(static_cast<double>(e.comm().ledger().critical_messages()));
  }
  // Windows are 5, 25, 125 slots: each dimension multiplies messages ~5x.
  EXPECT_NEAR(msgs[1] / msgs[0], 5.0, 1.0);
  EXPECT_NEAR(msgs[2] / msgs[1], 5.0, 1.0);
}

TEST(Geometry3d, ReplicationCutsMessagesInEveryDimension) {
  core::PhantomPolicy policy({0.0, false});
  auto run = [&](int c) {
    core::CaCutoff<core::PhantomPolicy> e(
        {125 * c, c, machine::laptop(), CutoffGeometry::make_3d(5, 5, 5, 2, 2, 2), true},
        policy, std::vector<core::PhantomBlock>(125, {4}));
    e.step();
    return static_cast<double>(e.comm().ledger().critical_messages());
  };
  const double s1 = run(1);
  const double s5 = run(5);
  const double s25 = run(25);
  EXPECT_NEAR(s1 / s5, 5.0, 1.5);
  // At c=25 the tree collectives' log messages dominate the few remaining
  // shifts, so the ratio falls short of the shift-only 5x — but replication
  // must still help substantially.
  EXPECT_GT(s5 / s25, 1.8);
}

}  // namespace
