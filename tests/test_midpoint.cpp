// The midpoint method (Section II-D): physics vs the serial reference and
// its import-volume advantage over the plain halo exchange.
#include <gtest/gtest.h>

#include "core/midpoint.hpp"
#include "core/spatial_halo.hpp"
#include "decomp/partition.hpp"
#include "machine/presets.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "particles/reference.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace canb;
using particles::Block;
using particles::Box;
using particles::InverseSquareRepulsion;
using Policy = core::RealPolicy<InverseSquareRepulsion>;
using Engine = core::MidpointMethod<InverseSquareRepulsion>;

constexpr double kCutoff = 0.25;

Engine make_1d(const Block& all, int q, particles::Boundary bc = particles::Boundary::Reflective) {
  Box box = Box::reflective_1d(1.0);
  box.boundary = bc;
  const int m = core::window_radius_teams(kCutoff, box.lx, q);
  Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, kCutoff, 1e-4});
  return Engine({q, machine::laptop(), core::CutoffGeometry::make_1d(q, m),
                 bc == particles::Boundary::Periodic},
                std::move(policy), decomp::split_spatial_1d(all, box, q));
}

template <class Blocks>
Block gather(const Blocks& blocks) {
  auto all = decomp::concat(blocks);
  particles::sort_by_id(all);
  return all;
}

struct Param {
  int n;
  int q;
  bool periodic;
};

class Midpoint1d : public ::testing::TestWithParam<Param> {};

TEST_P(Midpoint1d, MatchesSerialReference) {
  const auto [n, q, periodic] = GetParam();
  Box box = Box::reflective_1d(1.0);
  box.boundary = periodic ? particles::Boundary::Periodic : particles::Boundary::Reflective;
  const auto init = particles::init_uniform(n, box, 61, 0.01);
  auto engine = make_1d(init, q, box.boundary);
  engine.step();
  const auto got = gather(engine.team_results());

  particles::SerialReference<InverseSquareRepulsion> ref(
      init, {box, InverseSquareRepulsion{1e-4, 1e-2}, 1e-4, kCutoff});
  ref.step();
  auto want = ref.particles();
  particles::sort_by_id(want);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(particles::max_force_deviation(got, want), 3e-4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Midpoint1d,
                         ::testing::Values(Param{64, 8, false}, Param{96, 12, false},
                                           Param{96, 16, false}, Param{64, 8, true},
                                           Param{120, 16, true}),
                         [](const auto& pinfo) {
                           std::string name = "n";
                           name += std::to_string(pinfo.param.n);
                           name += "_q";
                           name += std::to_string(pinfo.param.q);
                           name += pinfo.param.periodic ? "_periodic" : "_reflective";
                           return name;
                         });

TEST(Midpoint2d, MatchesSerialReference) {
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(150, box, 67, 0.01);
  const int qx = 6;
  const int qy = 6;
  const int m = core::window_radius_teams(kCutoff, 1.0, qx);
  Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, kCutoff, 1e-4});
  Engine engine({qx * qy, machine::laptop(), core::CutoffGeometry::make_2d(qx, qy, m, m), false},
                std::move(policy), decomp::split_spatial_2d(init, box, qx, qy));
  engine.step();
  const auto got = gather(engine.team_results());

  particles::SerialReference<InverseSquareRepulsion> ref(
      init, {box, InverseSquareRepulsion{1e-4, 1e-2}, 1e-4, kCutoff});
  ref.step();
  auto want = ref.particles();
  particles::sort_by_id(want);
  EXPECT_LT(particles::max_force_deviation(got, want), 3e-4);
}

TEST(Midpoint, MultiStepTrajectoryWithReassignment) {
  const Box box = Box::reflective_1d(1.0);
  const auto init = particles::init_uniform(64, box, 71, 2.0);
  auto engine = make_1d(init, 8);
  engine.run(8);
  const auto got = gather(engine.team_results());

  particles::SerialReference<InverseSquareRepulsion> ref(
      init, {box, InverseSquareRepulsion{1e-4, 1e-2}, 1e-4, kCutoff});
  ref.run(8);
  auto want = ref.particles();
  particles::sort_by_id(want);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(particles::max_position_deviation(got, want), 1e-3);
}

TEST(Midpoint, ImportRegionIsRoughlyHalfTheHaloExchange) {
  // The method's claim: the import volume per phase is about half the full
  // halo radius. Compare per-step Shift-phase bytes against SpatialHalo on
  // an identical configuration (wide window so the +1 slack is small).
  const int q = 64;
  const int m = 16;
  const Box box = Box::periodic_1d(1.0);
  const auto init = particles::init_lattice(512, box, 0.5, 3);
  Policy mp_policy({box, InverseSquareRepulsion{1e-4, 1e-2}, m / static_cast<double>(q), 1e-4});
  Engine mid({q, machine::laptop(), core::CutoffGeometry::make_1d(q, m), true},
             std::move(mp_policy), decomp::split_spatial_1d(init, box, q));
  mid.step();
  Policy halo_policy({box, InverseSquareRepulsion{1e-4, 1e-2}, m / static_cast<double>(q), 1e-4});
  core::SpatialHaloDecomposition<Policy> halo(
      {q, machine::laptop(), core::CutoffGeometry::make_1d(q, m), true},
      std::move(halo_policy), decomp::split_spatial_1d(init, box, q));
  halo.step();

  const auto shift_bytes = [](const vmpi::VirtualComm& vc) {
    return static_cast<double>(
        vc.ledger().critical_breakdown()[static_cast<std::size_t>(vmpi::Phase::Shift)].bytes);
  };
  const double ratio = shift_bytes(mid.comm()) / shift_bytes(halo.comm());
  EXPECT_LT(ratio, 0.65);   // ~ (m/2 + 1) / m
  EXPECT_GT(ratio, 0.45);
}

TEST(Midpoint, AvailableThroughTheFacade) {
  using Sim = sim::Simulation<InverseSquareRepulsion>;
  Sim::Config cfg;
  cfg.method = sim::Method::Midpoint;
  cfg.p = 16;
  cfg.machine = machine::laptop();
  cfg.box = Box::reflective_2d(1.0);
  cfg.kernel = InverseSquareRepulsion{1e-4, 1e-2};
  cfg.cutoff = 0.2;
  cfg.dt = 1e-4;
  const auto init = particles::init_uniform(64, cfg.box, 77, 0.01);
  Sim s(cfg, init);
  s.step();
  auto got = s.gather();

  particles::SerialReference<InverseSquareRepulsion> ref(init,
                                                         {cfg.box, cfg.kernel, cfg.dt, 0.2});
  ref.step();
  auto want = ref.particles();
  particles::sort_by_id(want);
  EXPECT_LT(particles::max_force_deviation(got, want), 3e-4);
}

}  // namespace
