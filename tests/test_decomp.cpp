// Baseline decompositions: partitioning, the systolic ring, the all-gather
// naive variant, and Plimpton's force decomposition — plus their cost
// relationships to the CA algorithm.
#include <gtest/gtest.h>

#include "core/ca_all_pairs.hpp"
#include "decomp/force_decomposition.hpp"
#include "decomp/partition.hpp"
#include "decomp/particle_decomposition.hpp"
#include "machine/presets.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "particles/reference.hpp"
#include "support/assert.hpp"

namespace {

using namespace canb;
using particles::Block;
using particles::Box;
using particles::InverseSquareRepulsion;
using Policy = core::RealPolicy<InverseSquareRepulsion>;

Policy make_policy(const Box& box, double dt = 1e-4) {
  return Policy({box, InverseSquareRepulsion{1e-4, 1e-2}, 0.0, dt});
}

// Generic over the block layout: partition helpers hand back AoS
// particles::Block, engines hand back SoA Buffers (particles::SoaBlock).
template <class Blocks>
Block gather_blocks(const Blocks& blocks) {
  auto all = decomp::concat(blocks);
  particles::sort_by_id(all);
  return all;
}

Block reference_step(const Block& init, const Box& box) {
  particles::SerialReference<InverseSquareRepulsion> ref(
      init, {box, InverseSquareRepulsion{1e-4, 1e-2}, 1e-4});
  ref.step();
  Block want = ref.particles();
  particles::sort_by_id(want);
  return want;
}

// --- partition helpers ---------------------------------------------------------

TEST(Partition, SplitEvenSpreadsRemainder) {
  Block all(10);
  for (int i = 0; i < 10; ++i) all[static_cast<std::size_t>(i)].id = i;
  const auto blocks = decomp::split_even(all, 4);
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0].size(), 3u);
  EXPECT_EQ(blocks[1].size(), 3u);
  EXPECT_EQ(blocks[2].size(), 2u);
  EXPECT_EQ(blocks[3].size(), 2u);
  EXPECT_EQ(gather_blocks(blocks).size(), 10u);
}

TEST(Partition, SpatialSplit1dBinsByPosition) {
  const Box box = Box::reflective_1d(1.0);
  Block all(4);
  const float xs[] = {0.05f, 0.3f, 0.55f, 0.9f};
  for (int i = 0; i < 4; ++i) {
    all[static_cast<std::size_t>(i)].px = xs[i];
    all[static_cast<std::size_t>(i)].id = i;
  }
  const auto blocks = decomp::split_spatial_1d(all, box, 4);
  for (int t = 0; t < 4; ++t) {
    ASSERT_EQ(blocks[static_cast<std::size_t>(t)].size(), 1u);
    EXPECT_EQ(blocks[static_cast<std::size_t>(t)][0].id, t);
  }
}

TEST(Partition, SpatialSplit2dMatchesTeamOf) {
  const Box box = Box::reflective_2d(1.0);
  const auto all = particles::init_uniform(100, box, 5);
  const auto blocks = decomp::split_spatial_2d(all, box, 4, 2);
  std::size_t total = 0;
  for (int t = 0; t < 8; ++t) {
    for (const auto& p : blocks[static_cast<std::size_t>(t)])
      EXPECT_EQ(decomp::team_of_2d(p, box, 4, 2), t);
    total += blocks[static_cast<std::size_t>(t)].size();
  }
  EXPECT_EQ(total, 100u);
}

TEST(Partition, TeamOfClampsEdges) {
  const Box box = Box::reflective_1d(1.0);
  particles::Particle p;
  p.px = 1.0f;  // exactly on the upper edge
  EXPECT_EQ(decomp::team_of_1d(p, box, 8), 7);
  p.px = 0.0f;
  EXPECT_EQ(decomp::team_of_1d(p, box, 8), 0);
}

// --- ring baseline ----------------------------------------------------------------

TEST(Ring, MatchesSerialReference) {
  const int n = 48;
  const int p = 6;
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(n, box, 3, 0.01);
  decomp::ParticleDecompositionRing<Policy> ring({p, machine::laptop()}, make_policy(box),
                                                 decomp::split_even(init, p));
  ring.step();
  const auto got = gather_blocks(ring.team_results());
  const auto want = reference_step(init, box);
  EXPECT_LT(particles::max_force_deviation(got, want), 2e-4);
}

TEST(Ring, CostsMatchPaperFormula) {
  // S = p-1 messages, W = (p-1) * n/p particles per rank.
  const int n = 64;
  const int p = 8;
  const auto init = particles::init_uniform(n, Box::reflective_2d(1.0), 1, 0.0);
  decomp::ParticleDecompositionRing<Policy> ring({p, machine::laptop()},
                                                 make_policy(Box::reflective_2d(1.0)),
                                                 decomp::split_even(init, p));
  ring.step();
  EXPECT_EQ(ring.comm().ledger().critical_messages(), static_cast<std::uint64_t>(p - 1));
  EXPECT_EQ(ring.comm().ledger().critical_bytes(),
            static_cast<std::uint64_t>((p - 1) * (n / p) * 52));
}

// --- all-gather baseline -------------------------------------------------------------

TEST(AllGather, MatchesSerialReference) {
  const int n = 40;
  const int p = 5;
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(n, box, 9, 0.01);
  decomp::ParticleDecompositionAllGather<Policy> ag({p, machine::laptop()}, make_policy(box),
                                                    decomp::split_even(init, p));
  ag.step();
  const auto got = gather_blocks(ag.team_results());
  const auto want = reference_step(init, box);
  EXPECT_LT(particles::max_force_deviation(got, want), 2e-4);
}

TEST(AllGather, HardwareTreeBeatsTorusCollectivesAtScale) {
  // The BG/P collective network wins for whole-partition collectives once
  // the torus collectives start paying contention — i.e. at scale. At
  // small p the serialized tree link is actually slower, which is also
  // asserted (the paper's "tree" advantage is a large-machine effect).
  core::PhantomPolicy policy;
  auto run = [&](int p, bool tree) {
    decomp::ParticleDecompositionAllGather<core::PhantomPolicy> ag(
        {p, machine::intrepid(tree)}, policy,
        std::vector<core::PhantomBlock>(static_cast<std::size_t>(p), {4}));
    ag.step();
    const auto bc = ag.comm().ledger().critical_breakdown();
    return bc[static_cast<std::size_t>(vmpi::Phase::Broadcast)].seconds;
  };
  EXPECT_LT(run(4096, true), run(4096, false));
  EXPECT_GT(run(64, true), run(64, false));
}

// --- force decomposition ----------------------------------------------------------------

TEST(ForceDecomp, MatchesSerialReference) {
  const int n = 48;
  const int p = 16;  // s = 4
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(n, box, 13, 0.01);
  decomp::ForceDecomposition<Policy> fd({p, machine::laptop()}, make_policy(box),
                                        decomp::split_even(init, 4));
  fd.step();
  const auto got = gather_blocks(fd.team_results());
  const auto want = reference_step(init, box);
  EXPECT_LT(particles::max_force_deviation(got, want), 2e-4);
}

TEST(ForceDecomp, MultiStepTrajectory) {
  const int n = 36;
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(n, box, 17, 0.02);
  decomp::ForceDecomposition<Policy> fd({9, machine::laptop()}, make_policy(box, 5e-4),
                                        decomp::split_even(init, 3));
  fd.run(8);
  const auto got = gather_blocks(fd.team_results());

  particles::SerialReference<InverseSquareRepulsion> ref(
      init, {box, InverseSquareRepulsion{1e-4, 1e-2}, 5e-4});
  ref.run(8);
  Block want = ref.particles();
  particles::sort_by_id(want);
  EXPECT_LT(particles::max_position_deviation(got, want), 1e-4);
}

TEST(ForceDecomp, RejectsNonSquareP) {
  const auto init = particles::init_uniform(8, Box::reflective_2d(1.0), 1);
  EXPECT_THROW(decomp::ForceDecomposition<Policy>({8, machine::laptop()},
                                                  make_policy(Box::reflective_2d(1.0)),
                                                  decomp::split_even(init, 2)),
               PreconditionError);
}

TEST(ForceDecomp, CommunicationBeatsRingAtScale) {
  // W_force = O(n/sqrt(p)) vs W_particle = O(n): at p=64 the force
  // decomposition's critical-path bytes must be well below the ring's.
  const int p = 64;
  const std::uint64_t per_block_fd = 32;  // n = 256, s = 8
  core::PhantomPolicy policy;
  decomp::ForceDecomposition<core::PhantomPolicy> fd(
      {p, machine::hopper()}, policy, std::vector<core::PhantomBlock>(8, {per_block_fd}));
  fd.step();
  decomp::ParticleDecompositionRing<core::PhantomPolicy> ring(
      {p, machine::hopper()}, policy, std::vector<core::PhantomBlock>(64, {4}));
  ring.step();
  EXPECT_LT(fd.comm().ledger().critical_bytes(), ring.comm().ledger().critical_bytes() / 2);
  EXPECT_LT(fd.comm().ledger().critical_messages(),
            ring.comm().ledger().critical_messages() / 4);
}

// --- CA degeneracy at c = sqrt(p) ------------------------------------------------

TEST(ForceDecomp, CaAtMaxReplicationHasSameAsymptoticCost) {
  // c = sqrt(p): the CA algorithm becomes a force decomposition. The
  // schedules differ in constants (CA skews, FD does a second broadcast),
  // but message and byte counts must agree within a small factor.
  const int p = 64;
  const int c = 8;
  core::PhantomPolicy policy({0.0, false});
  core::CaAllPairs<core::PhantomPolicy> ca({p, c, machine::hopper()}, policy,
                                           std::vector<core::PhantomBlock>(8, {32}));
  ca.step();
  decomp::ForceDecomposition<core::PhantomPolicy> fd(
      {p, machine::hopper()}, policy, std::vector<core::PhantomBlock>(8, {32}));
  fd.step();
  const double ca_bytes = static_cast<double>(ca.comm().ledger().critical_bytes());
  const double fd_bytes = static_cast<double>(fd.comm().ledger().critical_bytes());
  EXPECT_LT(ca_bytes / fd_bytes, 3.0);
  EXPECT_GT(ca_bytes / fd_bytes, 1.0 / 3.0);
}

}  // namespace
