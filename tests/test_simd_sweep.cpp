// The SIMD lane-pipeline and N3L half-sweep contracts from
// particles/simd/simd.hpp and particles/batched_engine.hpp:
//
//  * exact lane pipelines (inv_cube_lanes, exp_lanes) are BITWISE identical
//    across backends — inv_cube additionally bitwise-equal to the scalar
//    expression, exp within 5e-14 of std::exp;
//  * the opt-in rsqrt fast path stays within 1e-12 and never leaks past its
//    explicit enable;
//  * sweep_self (the N3L half-sweep) produces bitwise-identical force lanes
//    and identical examined/within counts to the full sweep, at roughly
//    half the computed pair evaluations, across kernels, boxes, cutoffs,
//    block sizes, and SIMD backends — and falls back to the full sweep when
//    its replica contract does not hold;
//  * the ± scatter is race-free when independent blocks sweep concurrently
//    on a ThreadPool (the TSan leg runs this file);
//  * end to end, the half-sweep knob and the host thread count change
//    NOTHING observable in a Simulation (bitwise trajectories, identical
//    ledgers) — the same acceptance contract test_layout_invariance pins
//    for the engine knob.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <span>
#include <vector>

#include "machine/presets.hpp"
#include "particles/batched_engine.hpp"
#include "particles/init.hpp"
#include "particles/simd/simd.hpp"
#include "particles/soa_tile.hpp"
#include "sim/simulation.hpp"
#include "support/parallel.hpp"

namespace {

using namespace canb;
using particles::BatchedEngine;
using particles::Box;
namespace simd = particles::simd;

// Per-kernel parameters chosen so forces are O(1) at typical spacings
// (mirrors test_kernel_engines).
template <class K>
K make_kernel();
template <>
particles::InverseSquareRepulsion make_kernel() {
  return {1e-4, 1e-2};
}
template <>
particles::Gravity make_kernel() {
  return {1e-4, 1e-2};
}
template <>
particles::LennardJones make_kernel() {
  return {1e-6, 0.05};
}
template <>
particles::Yukawa make_kernel() {
  return {1e-3, 0.1, 1e-2};
}
template <>
particles::Morse make_kernel() {
  return {1e-4, 8.0, 0.1};
}
template <>
particles::SoftSphere make_kernel() {
  return {5.0, 0.06};
}

class KernelNames {
 public:
  template <class K>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<K, particles::InverseSquareRepulsion>) return "InverseSquare";
    if constexpr (std::is_same_v<K, particles::Gravity>) return "Gravity";
    if constexpr (std::is_same_v<K, particles::LennardJones>) return "LennardJones";
    if constexpr (std::is_same_v<K, particles::Yukawa>) return "Yukawa";
    if constexpr (std::is_same_v<K, particles::Morse>) return "Morse";
    if constexpr (std::is_same_v<K, particles::SoftSphere>) return "SoftSphere";
    return "Unknown";
  }
};

/// Saves and restores the process-wide SIMD dispatch state so a failing
/// assertion cannot leak a pinned backend into later tests.
struct SimdStateGuard {
  simd::Backend backend = simd::active();
  bool fast = simd::fast_rsqrt();
  ~SimdStateGuard() {
    simd::set_backend(backend);
    simd::set_fast_rsqrt(fast);
  }
};

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b))
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ (bits 0x" << std::hex
         << std::bit_cast<std::uint64_t>(a) << " vs 0x" << std::bit_cast<std::uint64_t>(b)
         << ")";
}

// --- dispatch plumbing -----------------------------------------------------

TEST(SimdDispatch, BackendNamesRoundTrip) {
  for (const auto b : {simd::Backend::Scalar, simd::Backend::Sse2, simd::Backend::Avx2}) {
    const auto parsed = simd::parse_backend(simd::backend_name(b));
    ASSERT_TRUE(parsed.has_value()) << simd::backend_name(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(simd::parse_backend("").has_value());
  EXPECT_FALSE(simd::parse_backend("avx512").has_value());
  EXPECT_FALSE(simd::parse_backend("AVX2").has_value());
}

TEST(SimdDispatch, SetBackendClampsToSupportAndInstalls) {
  SimdStateGuard guard;
  const simd::Backend max = simd::max_supported();
  for (int b = 0; b <= static_cast<int>(max); ++b) {
    const auto want = static_cast<simd::Backend>(b);
    EXPECT_EQ(simd::set_backend(want), want);
    EXPECT_EQ(simd::active(), want);
  }
  // Requesting past the hardware clamps instead of installing garbage.
  EXPECT_LE(simd::set_backend(simd::Backend::Avx2), max);
  EXPECT_LE(simd::active(), max);
}

// --- lane pipelines --------------------------------------------------------

TEST(SimdLanes, ExpMatchesStdExpAndIsBackendBitwise) {
  SimdStateGuard guard;
  std::vector<double> xs;
  for (int i = 0; i <= 2047; ++i) xs.push_back(-700.0 + 705.0 * i / 2047.0);
  // Clamp boundaries and denormal-adjacent inputs.
  for (const double s : {-750.0, -700.0, -0.0, 0.0, 1e-300, -1e-300, 700.0, 750.0})
    xs.push_back(s);

  std::vector<std::vector<double>> per_backend;
  for (int b = 0; b <= static_cast<int>(simd::max_supported()); ++b) {
    simd::set_backend(static_cast<simd::Backend>(b));
    std::vector<double> out(xs.size());
    simd::exp_lanes(xs.data(), out.data(), xs.size());
    per_backend.push_back(std::move(out));
  }

  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double got = per_backend[0][i];
    if (std::fabs(xs[i]) <= 700.0) {
      const double want = std::exp(xs[i]);
      EXPECT_LE(std::fabs(got - want), 5e-14 * std::fabs(want)) << "x = " << xs[i];
    } else {
      // Out-of-range inputs clamp to the boundary, bitwise.
      double clamped = xs[i] > 0.0 ? 700.0 : -700.0;
      double boundary = 0.0;
      simd::exp_lanes(&clamped, &boundary, 1);
      EXPECT_TRUE(bits_equal(got, boundary)) << "x = " << xs[i];
    }
    for (std::size_t b = 1; b < per_backend.size(); ++b)
      EXPECT_TRUE(bits_equal(per_backend[b][i], got))
          << "x = " << xs[i] << " backend " << simd::backend_name(static_cast<simd::Backend>(b));
  }
}

TEST(SimdLanes, InvCubeExactIsBitwiseEqualToScalarExpression) {
  SimdStateGuard guard;
  simd::set_fast_rsqrt(false);
  constexpr std::size_t kN = 513;  // odd: exercises every vector tail
  const double soft2 = 1e-4;
  std::mt19937_64 rng(2026);
  std::uniform_real_distribution<double> r2d(1e-8, 2.0);
  std::uniform_real_distribution<double> cpld(-1.0, 1.0);
  std::vector<double> r2(kN), cpl(kN), want(kN);
  for (const double scale : {1e-4, -6.674e-3}) {
    for (std::size_t i = 0; i < kN; ++i) {
      r2[i] = r2d(rng);
      cpl[i] = cpld(rng);
      const double d2 = r2[i] + soft2;
      want[i] = (scale * cpl[i]) / (d2 * std::sqrt(d2));
    }
    for (int b = 0; b <= static_cast<int>(simd::max_supported()); ++b) {
      simd::set_backend(static_cast<simd::Backend>(b));
      std::vector<double> out(kN, 0.0);
      simd::inv_cube_lanes(r2.data(), cpl.data(), out.data(), kN, scale, soft2);
      for (std::size_t i = 0; i < kN; ++i)
        ASSERT_TRUE(bits_equal(out[i], want[i]))
            << "lane " << i << " backend "
            << simd::backend_name(static_cast<simd::Backend>(b));
    }
  }
}

TEST(SimdLanes, FastRsqrtStaysWithinDocumentedErrorAndIsOptIn) {
  SimdStateGuard guard;
  EXPECT_FALSE(simd::fast_rsqrt());  // exact by default
  constexpr std::size_t kN = 257;
  const double soft2 = 1e-4;
  const double scale = 1e-4;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> r2d(1e-8, 2.0);
  std::vector<double> r2(kN), cpl(kN, 1.0), out(kN);
  for (auto& v : r2) v = r2d(rng);

  simd::set_fast_rsqrt(true);
  EXPECT_TRUE(simd::fast_rsqrt());
  for (int b = 0; b <= static_cast<int>(simd::max_supported()); ++b) {
    simd::set_backend(static_cast<simd::Backend>(b));
    simd::inv_cube_lanes(r2.data(), cpl.data(), out.data(), kN, scale, soft2);
    for (std::size_t i = 0; i < kN; ++i) {
      const double d2 = r2[i] + soft2;
      const double want = scale / (d2 * std::sqrt(d2));
      EXPECT_LE(std::fabs(out[i] - want), 1e-12 * std::fabs(want))
          << "lane " << i << " backend "
          << simd::backend_name(static_cast<simd::Backend>(b));
    }
  }
  simd::set_fast_rsqrt(false);
  EXPECT_FALSE(simd::fast_rsqrt());
}

// --- N3L half-sweep vs full sweep ------------------------------------------

// SoaTile targets accumulate raw doubles (no float fold until scatter), so
// comparing tile lanes checks the half-sweep's accumulation ORDER at full
// double precision — strictly harder than comparing post-fold forces.
template <class K>
class HalfSweep : public ::testing::Test {};

using AllKernels =
    ::testing::Types<particles::InverseSquareRepulsion, particles::Gravity,
                     particles::LennardJones, particles::Yukawa, particles::Morse,
                     particles::SoftSphere>;
TYPED_TEST_SUITE(HalfSweep, AllKernels, KernelNames);

TYPED_TEST(HalfSweep, BitwiseMatchesFullSweep) {
  const auto kernel = make_kernel<TypeParam>();
  const Box boxes[] = {Box::reflective_2d(1.0), Box::periodic_2d(1.0), Box::periodic_1d(1.0)};
  std::uint64_t seed = 101;
  for (const Box& box : boxes) {
    for (const double cutoff : {0.0, 0.15}) {
      for (const int n : {1, 2, 3, 127, 128, 129, 300}) {
        SCOPED_TRACE(::testing::Message() << "dims=" << box.dims << " cutoff=" << cutoff
                                          << " n=" << n);
        const auto ps = particles::init_uniform(n, box, ++seed);
        particles::SoaTile full;
        particles::SoaTile half;
        full.pack(ps, box);
        half.pack(ps, box);

        const auto cf = BatchedEngine::sweep(full, full, box, kernel, cutoff);
        const auto ch = BatchedEngine::sweep_self(half, half, box, kernel, cutoff);

        EXPECT_EQ(cf.examined, ch.examined);
        EXPECT_EQ(cf.within_cutoff, ch.within_cutoff);
        EXPECT_FALSE(cf.half_sweep);
        EXPECT_TRUE(ch.half_sweep);
        EXPECT_LE(ch.computed, cf.computed);
        if (n >= 2) {
          EXPECT_LT(ch.computed, cf.computed);
        }
        for (int i = 0; i < n; ++i) {
          ASSERT_TRUE(bits_equal(half.fx[static_cast<std::size_t>(i)],
                                 full.fx[static_cast<std::size_t>(i)]))
              << "fx of particle " << i;
          ASSERT_TRUE(bits_equal(half.fy[static_cast<std::size_t>(i)],
                                 full.fy[static_cast<std::size_t>(i)]))
              << "fy of particle " << i;
        }
      }
    }
  }
}

TYPED_TEST(HalfSweep, ForcesSumToNearZero) {
  const auto kernel = make_kernel<TypeParam>();
  for (const Box& box : {Box::reflective_2d(1.0), Box::periodic_2d(1.0)}) {
    for (const double cutoff : {0.0, 0.15}) {
      SCOPED_TRACE(::testing::Message() << "periodic="
                                        << (box.boundary == particles::Boundary::Periodic)
                                        << " cutoff=" << cutoff);
      const auto ps = particles::init_uniform(300, box, 99);
      particles::SoaTile tile;
      tile.pack(ps, box);
      BatchedEngine::sweep_self(tile, tile, box, kernel, cutoff);
      double sx = 0.0, sy = 0.0, ax = 0.0, ay = 0.0;
      for (std::size_t i = 0; i < tile.size(); ++i) {
        sx += tile.fx[i];
        sy += tile.fy[i];
        ax += std::fabs(tile.fx[i]);
        ay += std::fabs(tile.fy[i]);
      }
      // Newton's third law: the ± scatter cancels pairwise, so the total
      // momentum flux is zero up to summation rounding.
      EXPECT_LE(std::fabs(sx), 1e-9 * std::max(ax, 1e-300));
      EXPECT_LE(std::fabs(sy), 1e-9 * std::max(ay, 1e-300));
    }
  }
}

// Exact lane pipelines keep the bitwise contract under every backend, so
// the half-sweep result cannot depend on the dispatch decision.
template <class K>
class HalfSweepLanes : public ::testing::Test {};
using LaneKernels = ::testing::Types<particles::InverseSquareRepulsion, particles::Gravity,
                                     particles::Yukawa, particles::Morse>;
TYPED_TEST_SUITE(HalfSweepLanes, LaneKernels, KernelNames);

TYPED_TEST(HalfSweepLanes, BackendInvariantBitwise) {
  SimdStateGuard guard;
  simd::set_fast_rsqrt(false);
  const auto kernel = make_kernel<TypeParam>();
  const Box box = Box::reflective_2d(1.0);
  const auto ps = particles::init_uniform(256, box, 4242);

  simd::set_backend(simd::Backend::Scalar);
  particles::SoaTile want;
  want.pack(ps, box);
  BatchedEngine::sweep_self(want, want, box, kernel, 0.0);

  for (int b = 1; b <= static_cast<int>(simd::max_supported()); ++b) {
    simd::set_backend(static_cast<simd::Backend>(b));
    particles::SoaTile got;
    got.pack(ps, box);
    BatchedEngine::sweep_self(got, got, box, kernel, 0.0);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(bits_equal(got.fx[i], want.fx[i]))
          << "fx of particle " << i << " backend "
          << simd::backend_name(static_cast<simd::Backend>(b));
      ASSERT_TRUE(bits_equal(got.fy[i], want.fy[i]))
          << "fy of particle " << i << " backend "
          << simd::backend_name(static_cast<simd::Backend>(b));
    }
  }
}

TEST(HalfSweepFallback, MismatchedReplicaFallsBackToFullSweep) {
  const auto kernel = make_kernel<particles::InverseSquareRepulsion>();
  const Box box = Box::reflective_2d(1.0);
  const auto tgt_ps = particles::init_uniform(64, box, 5);
  auto src_ps = particles::init_uniform(65, box, 6);
  for (auto& p : src_ps) p.id += 1000;

  particles::SoaTile tgt_half, tgt_full, src;
  tgt_half.pack(tgt_ps, box);
  tgt_full.pack(tgt_ps, box);
  src.pack(src_ps, box);

  // Different sizes violate the replica contract: sweep_self must refuse
  // the half path and produce exactly the full sweep's result.
  const auto ch = BatchedEngine::sweep_self(tgt_half, src, box, kernel, 0.0);
  const auto cf = BatchedEngine::sweep(tgt_full, src, box, kernel, 0.0);
  EXPECT_FALSE(ch.half_sweep);
  EXPECT_EQ(cf.examined, ch.examined);
  EXPECT_EQ(cf.within_cutoff, ch.within_cutoff);
  EXPECT_EQ(cf.computed, ch.computed);
  for (std::size_t i = 0; i < tgt_half.size(); ++i) {
    ASSERT_TRUE(bits_equal(tgt_half.fx[i], tgt_full.fx[i]));
    ASSERT_TRUE(bits_equal(tgt_half.fy[i], tgt_full.fy[i]));
  }
}

TEST(HalfSweepFallback, OversizeBlockFallsBackToFullSweep) {
  const auto kernel = make_kernel<particles::InverseSquareRepulsion>();
  const Box box = Box::reflective_2d(1.0);
  const int n = static_cast<int>(BatchedEngine::kMaxHalfBlock) + 1;
  const auto ps = particles::init_uniform(n, box, 77);
  particles::SoaTile tile;
  tile.pack(ps, box);
  const auto c = BatchedEngine::sweep_self(tile, tile, box, kernel, 0.0);
  EXPECT_FALSE(c.half_sweep);
  EXPECT_EQ(c.examined, static_cast<std::uint64_t>(n) * (n - 1));
}

// --- concurrency: the ± scatter under a ThreadPool -------------------------

// Each rank owns its block and scratch; concurrent half-sweeps must neither
// race (TSan runs this file) nor perturb a single bit of any rank's forces.
TEST(HalfSweepThreads, ConcurrentSelfSweepsAreRaceFreeAndBitwise) {
  const auto kernel = make_kernel<particles::InverseSquareRepulsion>();
  const Box box = Box::reflective_2d(1.0);
  constexpr int kBlocks = 12;

  std::vector<particles::Block> want;
  std::vector<particles::Block> got;
  for (int r = 0; r < kBlocks; ++r) {
    want.push_back(particles::init_uniform(192, box, 300 + static_cast<std::uint64_t>(r)));
    got.push_back(want.back());
  }
  for (auto& blk : want) {
    particles::SweepScratch scratch;
    particles::accumulate_forces_with(particles::KernelEngine::Batched,
                                      std::span<particles::Particle>(blk),
                                      std::span<const particles::Particle>(blk), box, kernel,
                                      0.0, &scratch);
  }

  std::vector<particles::SweepScratch> scratch(kBlocks);
  ThreadPool pool(8);
  pool.parallel_for_chunks(0, kBlocks, [&](int b, int e) {
    for (int r = b; r < e; ++r) {
      auto& blk = got[static_cast<std::size_t>(r)];
      particles::accumulate_forces_with(particles::KernelEngine::Batched,
                                        std::span<particles::Particle>(blk),
                                        std::span<const particles::Particle>(blk), box, kernel,
                                        0.0, &scratch[static_cast<std::size_t>(r)]);
    }
  });

  for (int r = 0; r < kBlocks; ++r) {
    for (std::size_t i = 0; i < want[static_cast<std::size_t>(r)].size(); ++i) {
      const auto& w = want[static_cast<std::size_t>(r)][i];
      const auto& g = got[static_cast<std::size_t>(r)][i];
      ASSERT_EQ(std::bit_cast<std::uint32_t>(g.fx), std::bit_cast<std::uint32_t>(w.fx));
      ASSERT_EQ(std::bit_cast<std::uint32_t>(g.fy), std::bit_cast<std::uint32_t>(w.fy));
    }
  }
}

// --- end to end: Simulation trajectories and ledgers -----------------------

using Sim = sim::Simulation<particles::InverseSquareRepulsion>;

Sim make_sim(sim::Method method, double cutoff, particles::KernelEngine engine, bool half,
             int threads) {
  Sim::Config cfg;
  cfg.method = method;
  cfg.p = method == sim::Method::CaCutoff ? 32 : 16;
  cfg.c = 2;
  cfg.machine = machine::hopper();
  cfg.kernel = {1e-4, 1e-2};
  cfg.cutoff = cutoff;
  cfg.dt = 1e-4;
  cfg.engine = engine;
  cfg.sweep.half_sweep = half;
  Sim s(cfg, particles::init_uniform(256, cfg.box, 2013, 0.01));
  if (threads > 1) s.set_host_pool(std::make_shared<ThreadPool>(threads));
  return s;
}

void expect_same_run(Sim& got_sim, const particles::Block& want_state,
                     const sim::RunReport& want_report) {
  got_sim.run(3);
  const auto got_state = got_sim.gather();
  ASSERT_EQ(got_state.size(), want_state.size());
  for (std::size_t i = 0; i < got_state.size(); ++i) {
    ASSERT_EQ(got_state[i].id, want_state[i].id);
    EXPECT_EQ(std::bit_cast<std::uint32_t>(got_state[i].px),
              std::bit_cast<std::uint32_t>(want_state[i].px));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(got_state[i].py),
              std::bit_cast<std::uint32_t>(want_state[i].py));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(got_state[i].vx),
              std::bit_cast<std::uint32_t>(want_state[i].vx));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(got_state[i].vy),
              std::bit_cast<std::uint32_t>(want_state[i].vy));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(got_state[i].fx),
              std::bit_cast<std::uint32_t>(want_state[i].fx));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(got_state[i].fy),
              std::bit_cast<std::uint32_t>(want_state[i].fy));
  }
  const auto got = got_sim.report();
  EXPECT_EQ(got.messages, want_report.messages);
  EXPECT_EQ(got.bytes, want_report.bytes);
  EXPECT_EQ(got.compute, want_report.compute);
  EXPECT_EQ(got.wall, want_report.wall);
  EXPECT_EQ(got.imbalance, want_report.imbalance);
}

void run_half_sweep_matrix(sim::Method method, double cutoff) {
  auto baseline = make_sim(method, cutoff, particles::KernelEngine::Scalar, true, 1);
  baseline.run(3);
  const auto want_state = baseline.gather();
  const auto want_report = baseline.report();

  for (const bool half : {false, true}) {
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE(::testing::Message()
                   << "half_sweep=" << half << " threads=" << threads);
      auto s = make_sim(method, cutoff, particles::KernelEngine::Batched, half, threads);
      expect_same_run(s, want_state, want_report);
    }
  }
}

TEST(HalfSweepSimulation, CaAllPairsBitwiseAcrossHalfSweepAndThreads) {
  run_half_sweep_matrix(sim::Method::CaAllPairs, 0.0);
}

TEST(HalfSweepSimulation, CaCutoffBitwiseAcrossHalfSweepAndThreads) {
  run_half_sweep_matrix(sim::Method::CaCutoff, 0.12);
}

// The SIMD backend axis, end to end: pin each backend and re-run.
TEST(HalfSweepSimulation, CaAllPairsBitwiseAcrossBackends) {
  SimdStateGuard guard;
  simd::set_backend(simd::Backend::Scalar);
  auto baseline = make_sim(sim::Method::CaAllPairs, 0.0, particles::KernelEngine::Batched,
                           true, 1);
  baseline.run(3);
  const auto want_state = baseline.gather();
  const auto want_report = baseline.report();

  for (int b = 1; b <= static_cast<int>(simd::max_supported()); ++b) {
    SCOPED_TRACE(simd::backend_name(static_cast<simd::Backend>(b)));
    simd::set_backend(static_cast<simd::Backend>(b));
    auto s = make_sim(sim::Method::CaAllPairs, 0.0, particles::KernelEngine::Batched, true, 1);
    expect_same_run(s, want_state, want_report);
  }
}

}  // namespace
