// Lower-bound formulas and the optimality certificates: the measured
// ledgers of the CA algorithms must sit within a bounded constant factor of
// the paper's lower bounds across the whole replication sweep.
#include <gtest/gtest.h>

#include "bounds/lower_bounds.hpp"
#include "core/ca_all_pairs.hpp"
#include "core/ca_cutoff.hpp"
#include "core/policy.hpp"
#include "machine/presets.hpp"

namespace {

using namespace canb;
using namespace canb::bounds;

// --- formula sanity -------------------------------------------------------------

TEST(Formulas, MemoryPerRank) {
  EXPECT_DOUBLE_EQ(memory_per_rank(1000, 10, 1), 100.0);
  EXPECT_DOUBLE_EQ(memory_per_rank(1000, 10, 5), 500.0);
  EXPECT_THROW(memory_per_rank(0, 10, 1), PreconditionError);
}

TEST(Formulas, DirectBoundShrinksWithMemory) {
  // Equation 2: more memory, less communication — the "lower" lower bound.
  const auto m1 = direct_lower_bound(1 << 16, 1024, 64);
  const auto m4 = direct_lower_bound(1 << 16, 1024, 256);
  EXPECT_GT(m1.messages, m4.messages);
  EXPECT_GT(m1.words, m4.words);
  EXPECT_NEAR(m1.words / m4.words, 4.0, 1e-9);
  EXPECT_NEAR(m1.messages / m4.messages, 16.0, 1e-9);
}

TEST(Formulas, CaCostMatchesEquation5Shape) {
  const double n = 1 << 16;
  const double p = 1024;
  const auto c1 = ca_all_pairs_cost(n, p, 1);
  const auto c4 = ca_all_pairs_cost(n, p, 4);
  EXPECT_DOUBLE_EQ(c1.messages, p);
  EXPECT_DOUBLE_EQ(c1.words, n);
  EXPECT_DOUBLE_EQ(c4.messages, p / 16);
  EXPECT_DOUBLE_EQ(c4.words, n / 4);
}

TEST(Formulas, CaCostMeetsLowerBoundExactlyInOrder) {
  // Substituting M = c n / p into Eq 2 reproduces Eq 5 (paper Section
  // III-B): S = p/c^2, W = n/c.
  const double n = 1 << 18;
  const double p = 4096;
  for (double c : {1.0, 2.0, 8.0, 32.0, 64.0}) {
    const auto bound = direct_lower_bound(n, p, memory_per_rank(n, p, c));
    const auto cost = ca_all_pairs_cost(n, p, c);
    EXPECT_NEAR(cost.messages / bound.messages, 1.0, 1e-9) << c;
    EXPECT_NEAR(cost.words / bound.words, 1.0, 1e-9) << c;
  }
}

TEST(Formulas, CutoffBoundAndCostAgree) {
  // Section IV-B: with k = 2 m c n / p, the 1D algorithm meets Eq 3.
  const double n = 1 << 16;
  const double p = 1024;
  for (double c : {1.0, 2.0, 4.0}) {
    const double q = p / c;
    const double m = q / 4;  // rc = l/4
    const double k = 2.0 * m * c * n / p;
    const auto bound = cutoff_lower_bound(n, p, memory_per_rank(n, p, c), k);
    const auto cost = ca_cutoff_cost(n, p, c, m);
    EXPECT_NEAR(cost.messages / bound.messages, 1.0, 1e-9) << c;
    EXPECT_NEAR(cost.words / bound.words, 1.0, 1e-9) << c;
  }
}

TEST(Formulas, BaselineCosts) {
  const auto pd = particle_decomposition_cost(1000, 100);
  EXPECT_DOUBLE_EQ(pd.messages, 100);
  EXPECT_DOUBLE_EQ(pd.words, 1000);
  const auto fd = force_decomposition_cost(1024, 256);
  EXPECT_DOUBLE_EQ(fd.messages, 8.0);  // log2(256)
  EXPECT_DOUBLE_EQ(fd.words, 2.0 * 1024 / 16);
}

TEST(Formulas, InteractionsPerParticle1d) {
  EXPECT_DOUBLE_EQ(interactions_per_particle_1d(1000, 0.25, 1.0), 500.0);
  EXPECT_DOUBLE_EQ(interactions_per_particle_1d(1000, 2.0, 1.0), 1000.0);  // capped
}

TEST(Formulas, SerialTimeScalesQuadratically) {
  const auto m = machine::hopper();
  const double t1 = model_serial_seconds(m, 1000);
  const double t2 = model_serial_seconds(m, 2000);
  EXPECT_NEAR(t2 / t1, 4.0, 0.02);
}

// --- measured optimality: all-pairs ------------------------------------------------

class AllPairsOptimality : public ::testing::TestWithParam<int> {};

TEST_P(AllPairsOptimality, MeasuredWithinConstantOfBound) {
  const int c = GetParam();
  const int p = 64;
  const std::uint64_t per_team = 16;  // n = 16 * p / c
  const double n = static_cast<double>(per_team) * p / c;
  core::PhantomPolicy policy({0.0, false});
  core::CaAllPairs<core::PhantomPolicy> engine(
      {p, c, machine::hopper()}, policy,
      std::vector<core::PhantomBlock>(static_cast<std::size_t>(p / c), {per_team}));
  engine.run(4);
  const auto rep = check_all_pairs_optimality(engine.comm().ledger(), 4, n, p, c);
  // Communication-optimal: within a small constant of the lower bound, and
  // never below it by more than the collective log factor.
  EXPECT_LT(rep.word_ratio, 4.0) << "W too far above the bound at c=" << c;
  EXPECT_GT(rep.word_ratio, 0.5) << "W below the lower bound: accounting bug? c=" << c;
  EXPECT_LT(rep.message_ratio, 16.0) << c;  // log-factor slack at large c
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllPairsOptimality, ::testing::Values(1, 2, 4, 8),
                         ::testing::PrintToStringParamName());

// --- measured optimality: cutoff ------------------------------------------------------

class CutoffOptimality : public ::testing::TestWithParam<int> {};

TEST_P(CutoffOptimality, MeasuredWithinConstantOfBound) {
  const int c = GetParam();
  const int q = 64 / c;
  const int p = 64;
  const int m = q / 4;
  const std::uint64_t per_team = 16;
  const double n = static_cast<double>(per_team) * q;
  core::PhantomPolicy policy({0.0, false});
  core::CaCutoff<core::PhantomPolicy> engine(
      {p, c, machine::hopper(), core::CutoffGeometry::make_1d(q, m), /*periodic=*/true}, policy,
      std::vector<core::PhantomBlock>(static_cast<std::size_t>(q), {per_team}));
  engine.run(4);
  const double k = (2.0 * m + 1.0) * static_cast<double>(per_team);
  const auto rep = check_cutoff_optimality(engine.comm().ledger(), 4, n, p, c, k);
  EXPECT_LT(rep.word_ratio, 4.0) << c;
  EXPECT_GT(rep.word_ratio, 0.4) << c;
  EXPECT_LT(rep.message_ratio, 16.0) << c;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CutoffOptimality, ::testing::Values(1, 2, 4),
                         ::testing::PrintToStringParamName());

// --- the c-scaling law end to end ---------------------------------------------------

TEST(ScalingLaw, MeasuredBytesFollowInverseC) {
  // W_measured(c) / W_measured(2c) ~ 2 across the sweep (Equation 5).
  // n is held fixed at 1024, so per-team counts grow with c.
  const int p = 256;
  std::vector<double> bytes;
  for (int c : {1, 2, 4, 8}) {
    core::PhantomPolicy policy({0.0, true});
    core::CaAllPairs<core::PhantomPolicy> engine(
        {p, c, machine::hopper()}, policy,
        std::vector<core::PhantomBlock>(static_cast<std::size_t>(p / c),
                                        {static_cast<std::uint64_t>(4 * c)}));
    engine.step();
    bytes.push_back(static_cast<double>(engine.comm().ledger().critical_bytes()));
  }
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    EXPECT_GE(bytes[i] / bytes[i + 1], 1.45);
    EXPECT_LT(bytes[i] / bytes[i + 1], 3.0);
  }
}

}  // namespace
