// CA cutoff engine (Algorithm 2 + the Section IV-C 2D generalization):
// physics vs the serial reference, spatial re-assignment invariants,
// boundary load imbalance, and phantom/real ledger agreement.
#include <gtest/gtest.h>

#include "core/ca_cutoff.hpp"
#include "core/policy.hpp"
#include "decomp/partition.hpp"
#include "machine/presets.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "particles/reference.hpp"
#include "support/stats.hpp"

namespace {

using namespace canb;
using particles::Block;
using particles::Box;
using particles::InverseSquareRepulsion;
using Policy = core::RealPolicy<InverseSquareRepulsion>;
using Engine = core::CaCutoff<Policy>;

constexpr double kCutoff = 0.25;

Engine make_1d(const Block& all, int q, int c, double dt = 1e-4,
               particles::Boundary bc = particles::Boundary::Reflective) {
  Box box = Box::reflective_1d(1.0);
  box.boundary = bc;
  const int m = core::window_radius_teams(kCutoff, box.lx, q);
  Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, kCutoff, dt});
  return Engine({q * c, c, machine::laptop(), core::CutoffGeometry::make_1d(q, m),
                 bc == particles::Boundary::Periodic},
                std::move(policy), decomp::split_spatial_1d(all, box, q));
}

Engine make_2d(const Block& all, int qx, int qy, int c, double dt = 1e-4,
               particles::Boundary bc = particles::Boundary::Reflective) {
  Box box = Box::reflective_2d(1.0);
  box.boundary = bc;
  const int mx = core::window_radius_teams(kCutoff, box.lx, qx);
  const int my = core::window_radius_teams(kCutoff, box.ly, qy);
  Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, kCutoff, dt});
  return Engine({qx * qy * c, c, machine::laptop(),
                 core::CutoffGeometry::make_2d(qx, qy, mx, my),
                 bc == particles::Boundary::Periodic},
                std::move(policy), decomp::split_spatial_2d(all, box, qx, qy));
}

Block gather(const Engine& e) {
  auto all = decomp::concat(e.team_results());
  particles::sort_by_id(all);
  return all;
}

Block reference_step(const Block& init, const Box& box, double dt, int steps) {
  particles::SerialReference<InverseSquareRepulsion> ref(
      init, {box, InverseSquareRepulsion{1e-4, 1e-2}, dt, kCutoff});
  ref.run(steps);
  Block want = ref.particles();
  particles::sort_by_id(want);
  return want;
}

// --- 1D correctness sweep ---------------------------------------------------

struct Param1d {
  int n;
  int q;
  int c;
  bool periodic = false;
};

class Cutoff1d : public ::testing::TestWithParam<Param1d> {};

TEST_P(Cutoff1d, MatchesSerialReference) {
  const auto [n, q, c, periodic] = GetParam();
  Box box = Box::reflective_1d(1.0);
  box.boundary = periodic ? particles::Boundary::Periodic : particles::Boundary::Reflective;
  const auto init = particles::init_uniform(n, box, 21, 0.01);

  auto engine = make_1d(init, q, c, 1e-4, box.boundary);
  engine.step();
  const Block got = gather(engine);
  const Block want = reference_step(init, box, 1e-4, 1);

  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(particles::max_force_deviation(got, want), 2e-4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Cutoff1d,
                         ::testing::Values(Param1d{48, 8, 1}, Param1d{48, 8, 2},
                                           Param1d{48, 8, 4}, Param1d{96, 16, 1},
                                           Param1d{96, 16, 4}, Param1d{96, 16, 8},
                                           Param1d{64, 12, 3}, Param1d{120, 20, 5},
                                           Param1d{48, 8, 1, true}, Param1d{48, 8, 4, true},
                                           Param1d{96, 16, 8, true}, Param1d{72, 12, 2, true},
                                           Param1d{200, 24, 6}, Param1d{56, 8, 3}),
                         [](const auto& pinfo) {
                           return "n" + std::to_string(pinfo.param.n) + "_q" +
                                  std::to_string(pinfo.param.q) + "_c" +
                                  std::to_string(pinfo.param.c) +
                                  (pinfo.param.periodic ? "_periodic" : "");
                         });

// --- 2D correctness sweep ---------------------------------------------------

struct Param2d {
  int n;
  int qx;
  int qy;
  int c;
};

class Cutoff2d : public ::testing::TestWithParam<Param2d> {};

TEST_P(Cutoff2d, MatchesSerialReference) {
  const auto [n, qx, qy, c] = GetParam();
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(n, box, 31, 0.01);

  auto engine = make_2d(init, qx, qy, c);
  engine.step();
  const Block got = gather(engine);
  const Block want = reference_step(init, box, 1e-4, 1);

  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(particles::max_force_deviation(got, want), 2e-4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Cutoff2d,
                         ::testing::Values(Param2d{64, 4, 4, 1}, Param2d{64, 4, 4, 2},
                                           Param2d{64, 4, 4, 4}, Param2d{128, 8, 4, 2},
                                           Param2d{128, 8, 8, 3}, Param2d{96, 4, 8, 2},
                                           Param2d{200, 8, 8, 9}),
                         [](const auto& pinfo) {
                           return "n" + std::to_string(pinfo.param.n) + "_q" +
                                  std::to_string(pinfo.param.qx) + "x" +
                                  std::to_string(pinfo.param.qy) + "_c" +
                                  std::to_string(pinfo.param.c);
                         });

// --- multi-step with re-assignment -----------------------------------------

TEST(CutoffReassign, TrajectoryTracksReferenceAcrossMigrations) {
  const int n = 80;
  const Box box = Box::reflective_1d(1.0);
  // High enough speed that particles cross team boundaries within a few
  // steps (team width 1/8 = 0.125, dt*steps*v ~ 0.02-0.1).
  const auto init = particles::init_uniform(n, box, 17, 2.0);

  auto engine = make_1d(init, 8, 2, 5e-3);
  engine.run(10);
  const Block got = gather(engine);
  const Block want = reference_step(init, box, 5e-3, 10);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(particles::max_position_deviation(got, want), 1e-3);
}

TEST(CutoffReassign, TeamsOwnOnlyTheirRegionAfterSteps) {
  const int n = 100;
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(n, box, 23, 2.0);
  auto engine = make_2d(init, 4, 4, 2, 5e-3);
  engine.run(5);
  const auto blocks = engine.team_results();
  int total = 0;
  for (int t = 0; t < 16; ++t) {
    for (const auto& p : blocks[static_cast<std::size_t>(t)]) {
      EXPECT_EQ(decomp::team_of_2d(p, box, 4, 4), t) << "particle " << p.id << " misplaced";
      ++total;
    }
  }
  EXPECT_EQ(total, n);
}

// --- boundary load imbalance (Section IV-D2) -------------------------------

TEST(CutoffImbalance, ReflectiveBoundariesIdleEdgeRanks) {
  // Under reflective boundaries edge teams see clipped windows, so their
  // compute time is lower; the ledger imbalance factor must exceed 1.
  const int n = 512;
  const Box box = Box::reflective_1d(1.0);
  const auto init = particles::init_uniform(n, box, 3, 0.0);
  auto engine = make_1d(init, 16, 2);
  engine.step();
  const auto per_rank = engine.comm().ledger().per_rank_seconds();
  EXPECT_GT(imbalance_factor(per_rank), 1.02);

  // Periodic boundaries see full windows everywhere: near-balanced.
  auto periodic = make_1d(init, 16, 2, 1e-4, particles::Boundary::Periodic);
  periodic.step();
  const auto per_rank_periodic = periodic.comm().ledger().per_rank_seconds();
  EXPECT_LT(imbalance_factor(per_rank_periodic), imbalance_factor(per_rank));
}

// --- validation --------------------------------------------------------------

TEST(CutoffValidation, RejectsReplicationBeyondWindow) {
  const Box box = Box::reflective_1d(1.0);
  const auto init = particles::init_uniform(32, box, 1);
  // q=8, m=2 -> window = 5; c=8 > 5 must throw.
  EXPECT_THROW(make_1d(init, 8, 8), PreconditionError);
  EXPECT_NO_THROW(make_1d(init, 8, 4));
  EXPECT_TRUE(vmpi::valid_cutoff_replication(16, 4, 2));
  EXPECT_FALSE(vmpi::valid_cutoff_replication(16, 8, 2));
}

// --- phantom ledger equality -------------------------------------------------

TEST(CutoffPhantom, LedgerMatchesRealWhenNothingMigrates) {
  const int n = 96;
  const int q = 8;
  const int c = 2;
  const Box box = Box::reflective_1d(1.0);
  const auto init = particles::init_uniform(n, box, 9, 0.0);  // zero velocity

  auto real_engine = make_1d(init, q, c);
  real_engine.step();

  const int m = core::window_radius_teams(kCutoff, box.lx, q);
  core::PhantomPolicy policy({/*reassign_fraction=*/0.0, /*bulk=*/false});
  std::vector<core::PhantomBlock> blocks;
  for (const auto& b : decomp::split_spatial_1d(init, box, q)) blocks.push_back({b.size()});
  core::CaCutoff<core::PhantomPolicy> phantom(
      {q * c, c, machine::laptop(), core::CutoffGeometry::make_1d(q, m), false}, policy,
      std::move(blocks));
  phantom.step();

  const auto& lr = real_engine.comm().ledger();
  const auto& lp = phantom.comm().ledger();
  EXPECT_EQ(lr.critical_messages(), lp.critical_messages());
  EXPECT_EQ(lr.critical_bytes(), lp.critical_bytes());
  EXPECT_NEAR(real_engine.comm().max_clock(), phantom.comm().max_clock(), 1e-12);
}

// --- communication scales with m/c -------------------------------------------

TEST(CutoffScaling, ShiftMessagesShrinkWithC) {
  const int n = 256;
  const Box box = Box::reflective_1d(1.0);
  const auto init = particles::init_uniform(n, box, 13, 0.0);
  std::uint64_t prev = ~0ULL;
  for (int c : {1, 2, 4}) {
    auto engine = make_1d(init, 16, c);
    engine.step();
    const auto breakdown = engine.comm().ledger().critical_breakdown();
    const auto shift = breakdown[static_cast<std::size_t>(vmpi::Phase::Shift)];
    EXPECT_LT(shift.messages, prev);
    prev = shift.messages;
  }
}

}  // namespace
