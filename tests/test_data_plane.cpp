// The host data-plane acceptance contract (vmpi/buffer_pool.hpp,
// primitives.hpp, core/reassign.hpp):
//
//  1. The pooled, host-parallel data plane changes NOTHING observable:
//     trajectories, per-phase ledger fields, and full message traces are
//     bitwise identical to the legacy serial/allocating host path, across
//     engines, host thread counts, and under an active PerturbationModel.
//  2. After warm-up, the primitives' hot path performs zero heap
//     allocations (counted with a global operator new hook).
//  3. The BufferPool actually recycles capacity, and SoaBlock::assign_from
//     preserves destination capacity (the documented guarantee).
//  4. Host-phase wall seconds surface as gauges at --obs-level=metrics.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <optional>
#include <vector>

#include "core/cutoff_geometry.hpp"
#include "core/policy.hpp"
#include "core/reassign.hpp"
#include "machine/presets.hpp"
#include "obs/telemetry.hpp"
#include "particles/init.hpp"
#include "sim/simulation.hpp"
#include "support/parallel.hpp"
#include "vmpi/buffer_pool.hpp"
#include "vmpi/primitives.hpp"
#include "vmpi/trace.hpp"

// ---------------------------------------------------------------------------
// Allocation counting hook: every global new in this binary bumps a counter.
// The steady-state tests snapshot it around a hot-path region and assert a
// zero delta. Counting (not banning) keeps gtest and setup code unaffected.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// GCC pairs the malloc-backed replacement operator new with the library's
// free and flags a mismatch; the pairing is exactly what the replacement
// defines, so the warning is spurious in this TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace canb;
using Sim = sim::Simulation<particles::InverseSquareRepulsion>;
using particles::SoaBlock;

constexpr int kSteps = 3;

// --- bitwise comparison helpers (shared idiom with test_layout_invariance) --

::testing::AssertionResult bits_equal(float a, float b) {
  if (std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b))
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ (bits 0x" << std::hex
         << std::bit_cast<std::uint32_t>(a) << " vs 0x" << std::bit_cast<std::uint32_t>(b)
         << ")";
}

void expect_state_bitwise_equal(const particles::Block& got, const particles::Block& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].id, want[i].id);
    EXPECT_TRUE(bits_equal(got[i].fx, want[i].fx)) << "fx of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].fy, want[i].fy)) << "fy of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].px, want[i].px)) << "px of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].py, want[i].py)) << "py of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].vx, want[i].vx)) << "vx of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].vy, want[i].vy)) << "vy of particle " << got[i].id;
  }
}

void expect_report_field_equal(const sim::RunReport& got, const sim::RunReport& want) {
  EXPECT_EQ(got.messages, want.messages);
  EXPECT_EQ(got.bytes, want.bytes);
  EXPECT_EQ(got.compute, want.compute);
  EXPECT_EQ(got.broadcast, want.broadcast);
  EXPECT_EQ(got.skew, want.skew);
  EXPECT_EQ(got.shift, want.shift);
  EXPECT_EQ(got.reduce, want.reduce);
  EXPECT_EQ(got.reassign, want.reassign);
  EXPECT_EQ(got.wall, want.wall);
  EXPECT_EQ(got.imbalance, want.imbalance);
}

// --- the pooled-vs-legacy property matrix ----------------------------------

struct Arm {
  bool pooled = true;
  int threads = 1;
};

Sim make_sim(sim::Method method, double cutoff, bool fault, const Arm& arm) {
  Sim::Config cfg;
  cfg.method = method;
  cfg.p = method == sim::Method::CaCutoff ? 32 : 16;
  cfg.c = method == sim::Method::SpatialHalo ? 1 : 2;
  cfg.machine = machine::hopper();
  cfg.kernel = {1e-4, 1e-2};
  cfg.cutoff = cutoff;
  cfg.dt = 1e-4;
  cfg.pooled_data_plane = arm.pooled;
  if (fault) {
    vmpi::FaultConfig fc;
    fc.seed = 4242;
    fc.straggler_rate = 0.05;
    fc.jitter = 0.1;
    fc.drop_rate = 0.02;
    fc.link_degrade_rate = 0.1;
    cfg.fault = fc;
  }
  Sim s(cfg, particles::init_uniform(256, cfg.box, 2013, 0.01));
  if (arm.threads > 1) s.set_host_pool(std::make_shared<ThreadPool>(arm.threads));
  return s;
}

/// Runs `steps` with a trace recorder attached and returns the serialized
/// full message trace plus final state and report.
struct RunResult {
  std::string trace;
  particles::Block state;
  sim::RunReport report;
};

RunResult run_arm(sim::Method method, double cutoff, bool fault, const Arm& arm) {
  auto s = make_sim(method, cutoff, fault, arm);
  vmpi::TraceRecorder rec;
  s.comm().set_trace(&rec);
  s.run(kSteps);
  return {vmpi::serialize_trace(rec), s.gather(), s.report()};
}

void run_matrix(sim::Method method, double cutoff, bool fault) {
  // Reference: the legacy serial host path on one thread — the exact
  // pre-data-plane behavior.
  const auto want = run_arm(method, cutoff, fault, {/*pooled=*/false, /*threads=*/1});
  const Arm arms[] = {{true, 1}, {true, 2}, {true, 8}, {false, 8}};
  for (const Arm& arm : arms) {
    SCOPED_TRACE(::testing::Message() << (arm.pooled ? "pooled" : "legacy") << " plane, "
                                      << arm.threads << " threads");
    const auto got = run_arm(method, cutoff, fault, arm);
    expect_state_bitwise_equal(got.state, want.state);
    expect_report_field_equal(got.report, want.report);
    EXPECT_EQ(got.trace, want.trace) << "full message trace diverged";
  }
}

TEST(DataPlaneBitwise, CaAllPairs) { run_matrix(sim::Method::CaAllPairs, 0.0, false); }

TEST(DataPlaneBitwise, CaCutoff) { run_matrix(sim::Method::CaCutoff, 0.12, false); }

TEST(DataPlaneBitwise, CaAllPairsUnderFaultInjection) {
  run_matrix(sim::Method::CaAllPairs, 0.0, true);
}

TEST(DataPlaneBitwise, CaCutoffUnderFaultInjection) {
  run_matrix(sim::Method::CaCutoff, 0.12, true);
}

TEST(DataPlaneBitwise, SpatialHaloReassign) {
  // The halo baseline shares reassign_spatial; cover its pooled arm too.
  const auto want = run_arm(sim::Method::SpatialHalo, 0.12, false, {false, 1});
  const auto got = run_arm(sim::Method::SpatialHalo, 0.12, false, {true, 1});
  expect_state_bitwise_equal(got.state, want.state);
  expect_report_field_equal(got.report, want.report);
  EXPECT_EQ(got.trace, want.trace);
}

// --- BufferPool / SoaBlock capacity units ----------------------------------

SoaBlock filled_block(int n, float x0 = 0.25f) {
  SoaBlock b;
  for (int i = 0; i < n; ++i) {
    particles::Particle p;
    p.px = x0;
    p.py = 0.5f;
    p.id = i;
    p.mass = 1.0f;
    p.charge = 1.0f;
    b.push_back(p);
  }
  return b;
}

TEST(BufferPool, RecyclesCapacity) {
  vmpi::BufferPool<SoaBlock> pool;
  auto b = pool.acquire();
  EXPECT_EQ(pool.fresh_count(), 1u);
  for (int i = 0; i < 64; ++i) b.push_back(particles::Particle{});
  const auto cap = b.px.capacity();
  pool.release(std::move(b));
  auto b2 = pool.acquire();
  EXPECT_EQ(pool.reused_count(), 1u);
  EXPECT_EQ(b2.size(), 0u) << "recycled blocks come back empty";
  EXPECT_GE(b2.px.capacity(), cap) << "recycled blocks keep their lane capacity";
}

TEST(BufferPool, AcquireListReusesShellsAndBlocks) {
  vmpi::BufferPool<SoaBlock> pool;
  auto list = pool.acquire_list(8);
  ASSERT_EQ(list.size(), 8u);
  for (auto& b : list) b.push_back(particles::Particle{});
  pool.release_list(std::move(list));
  const auto fresh_before = pool.fresh_count();
  g_alloc_count.store(0);
  auto list2 = pool.acquire_list(8);
  EXPECT_EQ(g_alloc_count.load(), 0u) << "steady-state acquire_list must not allocate";
  EXPECT_EQ(pool.fresh_count(), fresh_before) << "no fresh blocks on a warm pool";
  ASSERT_EQ(list2.size(), 8u);
  for (const auto& b : list2) EXPECT_EQ(b.size(), 0u);
  pool.release_list(std::move(list2));
}

TEST(SoaBlockAssign, AssignFromPreservesCapacityAndBits) {
  const auto src = filled_block(48);
  SoaBlock dst = filled_block(48, 0.75f);
  g_alloc_count.store(0);
  dst.assign_from(src);
  EXPECT_EQ(g_alloc_count.load(), 0u) << "same-size assign_from must reuse capacity";
  ASSERT_EQ(dst.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(dst.id[i], src.id[i]);
    EXPECT_TRUE(bits_equal(dst.px[i], src.px[i]));
  }
}

// --- zero-allocation steady state over the primitives hot path -------------

TEST(DataPlaneSteadyState, PrimitivesHotPathAllocatesNothing) {
  using Policy = core::RealPolicy<particles::InverseSquareRepulsion>;
  const int p = 16;
  const int c = 4;
  const auto g = vmpi::Grid2d::make(p, c);
  const int q = g.cols();
  vmpi::VirtualComm vc(p, machine::hopper());
  vmpi::DataPlane<SoaBlock> plane;  // no worker pool: serial fan-out

  // One resident block per leader: particles pinned to the center of team
  // t's 1D segment, so the re-assignment split finds no movers and the
  // route lists stay empty (the steady-state case for sane timesteps).
  const auto geom = core::CutoffGeometry::make_1d(q, 1);
  const auto box = particles::Box::reflective_2d(1.0);
  Policy policy(Policy::Config{box, {1e-4, 1e-2}, 0.25, 1e-4});
  std::vector<SoaBlock> bufs(static_cast<std::size_t>(p));
  for (int t = 0; t < q; ++t)
    bufs[static_cast<std::size_t>(g.leader(t))] =
        filled_block(32, (static_cast<float>(t) + 0.5f) / static_cast<float>(q));
  std::vector<SoaBlock> staged(static_cast<std::size_t>(p));
  std::vector<SoaBlock> scratch;
  std::vector<int> perm(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) perm[static_cast<std::size_t>(r)] = (r + q) % p;

  auto one_iteration = [&] {
    vmpi::broadcast_teams(vc, g, bufs, &Policy::bytes, vmpi::Phase::Broadcast, &plane);
    vmpi::stage_buffers(
        vc, bufs, staged,
        [](int, SoaBlock& dst, const SoaBlock& src) { vmpi::detail::assign_visitor(dst, src); },
        &plane);
    vmpi::skew_rows(vc, g, [](int row) { return row; }, staged, &Policy::bytes,
                    vmpi::Phase::Skew, &plane.ints);
    vmpi::shift_rows(vc, g, 1, staged, &Policy::bytes);
    vmpi::permute_buffers(vc, [&](int r) { return perm[static_cast<std::size_t>(r)]; }, staged,
                          scratch, &Policy::bytes, vmpi::Phase::Shift);
    vmpi::reduce_teams(vc, g, bufs, &Policy::bytes, core::TeamCombine<Policy>{},
                       vmpi::Phase::Reduce, &plane);
    core::reassign_spatial(vc, g, geom, policy, bufs, vc.model(), &plane);
  };

  for (int i = 0; i < 3; ++i) one_iteration();  // warm-up: grow every capacity

  g_alloc_count.store(0);
  for (int i = 0; i < 5; ++i) one_iteration();
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "primitives hot path must be allocation-free after warm-up";
}

// --- host-phase gauges ------------------------------------------------------

TEST(DataPlaneObservability, HostPhaseSecondsSurfaceAsGauges) {
  Sim::Config cfg;
  cfg.method = sim::Method::CaAllPairs;
  cfg.p = 16;
  cfg.c = 2;
  cfg.machine = machine::hopper();
  cfg.kernel = {1e-4, 1e-2};
  cfg.dt = 1e-4;
  cfg.obs = obs::ObsLevel::Metrics;
  Sim s(cfg, particles::init_uniform(128, cfg.box, 2013, 0.01));
  s.run(2);
  s.finalize_telemetry();
  const auto& families = s.telemetry()->metrics().families();
  const auto it = families.find("canb_host_phase_seconds");
  ASSERT_NE(it, families.end()) << "host-phase gauge family missing at metrics level";
  EXPECT_FALSE(it->second.series.empty());
}

}  // namespace
