// Checkpoint/restart round trips and the radial distribution function.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "sim/checkpoint.hpp"
#include "support/assert.hpp"

namespace {

using namespace canb;
using particles::Block;
using particles::Box;

// --- checkpoint -----------------------------------------------------------------

TEST(Checkpoint, RoundTripsBitwise) {
  const std::string path = "/tmp/canb_test_cp.canb";
  const auto ps = particles::init_uniform(33, Box::reflective_2d(1.0), 17, 0.5);
  sim::save_checkpoint(path, {42, 0.042, ps});
  const auto cp = sim::load_checkpoint(path);
  EXPECT_EQ(cp.step, 42);
  EXPECT_DOUBLE_EQ(cp.time, 0.042);
  ASSERT_EQ(cp.particles.size(), ps.size());
  EXPECT_EQ(std::memcmp(cp.particles.data(), ps.data(), ps.size() * sizeof(particles::Particle)),
            0);
  std::remove(path.c_str());
}

TEST(Checkpoint, EmptyBlockIsValid) {
  const std::string path = "/tmp/canb_test_cp_empty.canb";
  sim::save_checkpoint(path, {0, 0.0, {}});
  const auto cp = sim::load_checkpoint(path);
  EXPECT_TRUE(cp.particles.empty());
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMissingFile) {
  EXPECT_THROW(sim::load_checkpoint("/tmp/canb_does_not_exist.canb"), PreconditionError);
}

TEST(Checkpoint, RejectsBadMagic) {
  const std::string path = "/tmp/canb_test_cp_bad.canb";
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a checkpoint file at all, padded to header size....";
  }
  EXPECT_THROW(sim::load_checkpoint(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsTruncatedPayload) {
  const std::string path = "/tmp/canb_test_cp_trunc.canb";
  const auto ps = particles::init_uniform(10, Box::reflective_2d(1.0), 1);
  sim::save_checkpoint(path, {1, 0.1, ps});
  // Chop the last 20 bytes off.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() - 20));
  }
  EXPECT_THROW(sim::load_checkpoint(path), PreconditionError);
  std::remove(path.c_str());
}

// --- radial distribution ----------------------------------------------------------

TEST(Rdf, IdealGasIsFlatNearOne) {
  const Box box = Box::periodic_2d(1.0);
  const auto ps = particles::init_uniform(2000, box, 3);
  const auto g = particles::radial_distribution(std::span<const particles::Particle>(ps), box,
                                                0.3, 6);
  ASSERT_EQ(g.size(), 6u);
  for (std::size_t b = 1; b < g.size(); ++b) {  // skip the noisy first shell
    EXPECT_NEAR(g[b], 1.0, 0.15) << b;
  }
}

TEST(Rdf, ClusteredGasPeaksAtShortRange) {
  const Box box = Box::periodic_2d(1.0);
  const auto ps = particles::init_clusters(1000, box, 5, 0.01, 7);
  const auto g = particles::radial_distribution(std::span<const particles::Particle>(ps), box,
                                                0.3, 6);
  EXPECT_GT(g[0], 5.0);               // strong contact peak
  EXPECT_GT(g[0], g[5] * 3.0);        // decaying outward
}

TEST(Rdf, HandlesDegenerateInput) {
  const Box box = Box::periodic_2d(1.0);
  Block one(1);
  const auto g = particles::radial_distribution(std::span<const particles::Particle>(one), box,
                                                0.3, 4);
  for (double v : g) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_THROW(particles::radial_distribution(std::span<const particles::Particle>(one), box,
                                              -1.0, 4),
               PreconditionError);
}

}  // namespace
