// TuningCache persistence and HostTuner calibration contracts
// (core/host_tuner.hpp): the cache round-trips exactly, any mismatch —
// schema, machine, build, or plain corruption — discards the file instead
// of applying foreign numbers, and a calibration run ranks real candidates,
// never leaks SIMD dispatch state, and is skipped entirely on a cache hit.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/host_tuner.hpp"
#include "particles/kernels.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace canb;
using core::HostTuneChoice;
using core::HostTuneEntry;
using core::HostTuner;
using core::TuningCache;
namespace simd = particles::simd;

std::string temp_path(const std::string& name) { return ::testing::TempDir() + name; }

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

HostTuneEntry sample_entry() {
  HostTuneEntry e;
  e.kernel = "inverse_square";
  e.n = 1024;
  e.engine = "batched";
  e.tile = 32;
  e.half_sweep = true;
  e.threads = 4;
  e.backend = "sse2";
  e.sched = "stealing";
  e.steal_grain = 2;
  e.inline_lane_max = 192;
  e.distribution = "plummer";
  e.pairs_per_sec = 3.0517578125e8;
  return e;
}

// --- cache persistence -----------------------------------------------------

TEST(TuningCache, KeysAreStableAndDescriptive) {
  EXPECT_EQ(TuningCache::machine_key(), TuningCache::machine_key());
  EXPECT_EQ(TuningCache::build_key(), TuningCache::build_key());
  EXPECT_NE(TuningCache::machine_key().find(simd::backend_name(simd::max_supported())),
            std::string::npos);
  EXPECT_FALSE(TuningCache::build_key().empty());
}

TEST(TuningCache, MissingFileYieldsEmptyCacheWithCurrentKeys) {
  const TuningCache cache = TuningCache::load_or_empty(temp_path("does_not_exist.json"));
  EXPECT_TRUE(cache.entries().empty());
  EXPECT_EQ(cache.machine(), TuningCache::machine_key());
  EXPECT_EQ(cache.build(), TuningCache::build_key());
}

TEST(TuningCache, SaveLoadRoundTripsEveryField) {
  const std::string path = temp_path("tuning_roundtrip.json");
  TuningCache cache;
  HostTuneEntry a = sample_entry();
  a.pairs_per_sec = 123456789.0123456;  // %.17g must round-trip doubles exactly
  HostTuneEntry b = sample_entry();
  b.kernel = "yukawa";
  b.n = 64;
  b.engine = "scalar";
  b.tile = 128;
  b.half_sweep = false;
  b.threads = 1;
  b.backend = "avx2";
  b.sched = "static";
  b.steal_grain = 1;
  b.inline_lane_max = 0;
  b.distribution = "uniform";
  cache.put(a);
  cache.put(b);
  ASSERT_TRUE(cache.save(path));

  const TuningCache loaded = TuningCache::load_or_empty(path);
  ASSERT_EQ(loaded.entries().size(), 2u);
  for (const HostTuneEntry& want : {a, b}) {
    const HostTuneEntry* got = loaded.find(want.kernel, want.n, want.distribution);
    ASSERT_NE(got, nullptr) << want.kernel;
    EXPECT_EQ(got->engine, want.engine);
    EXPECT_EQ(got->tile, want.tile);
    EXPECT_EQ(got->half_sweep, want.half_sweep);
    EXPECT_EQ(got->threads, want.threads);
    EXPECT_EQ(got->backend, want.backend);
    EXPECT_EQ(got->sched, want.sched);
    EXPECT_EQ(got->steal_grain, want.steal_grain);
    EXPECT_EQ(got->inline_lane_max, want.inline_lane_max);
    EXPECT_EQ(got->distribution, want.distribution);
    EXPECT_EQ(got->pairs_per_sec, want.pairs_per_sec);
  }
  EXPECT_EQ(loaded.find("inverse_square", 999), nullptr);
  // The cache keys on distribution too: same (kernel, n) under a different
  // workload shape is a different entry.
  EXPECT_EQ(loaded.find("inverse_square", 1024, "uniform"), nullptr);
  std::remove(path.c_str());
}

TEST(TuningCache, PutUpsertsByKernelSizeAndDistribution) {
  TuningCache cache;
  cache.put(sample_entry());
  HostTuneEntry updated = sample_entry();
  updated.backend = "avx2";
  updated.pairs_per_sec = 9e8;
  cache.put(updated);
  ASSERT_EQ(cache.entries().size(), 1u);
  EXPECT_EQ(cache.entries()[0].backend, "avx2");

  HostTuneEntry other = sample_entry();
  other.n = 2048;
  cache.put(other);
  EXPECT_EQ(cache.entries().size(), 2u);

  HostTuneEntry shaped = sample_entry();
  shaped.distribution = "uniform";  // same kernel + n, new workload shape
  cache.put(shaped);
  EXPECT_EQ(cache.entries().size(), 3u);
}

TEST(TuningCache, CorruptFileYieldsEmptyCache) {
  const std::string path = temp_path("tuning_corrupt.json");
  for (const char* text : {"", "{ not json at all", "[1,2,3]",
                           "{\"schema\": \"canb-host-tuning-v2\", \"entries\": 7}"}) {
    spit(path, text);
    const TuningCache cache = TuningCache::load_or_empty(path);
    EXPECT_TRUE(cache.entries().empty()) << "text: " << text;
    EXPECT_EQ(cache.machine(), TuningCache::machine_key());
  }
  std::remove(path.c_str());
}

TEST(TuningCache, V1SchemaFileIsDiscardedWhole) {
  // A pre-scheduler cache (schema v1, no sched/steal_grain/distribution
  // fields) must be dropped by the schema gate, not half-parsed.
  const std::string path = temp_path("tuning_v1.json");
  std::string v1 = "{\n  \"schema\": \"canb-host-tuning-v1\",\n  \"machine\": ";
  v1 += '"' + TuningCache::machine_key() + "\",\n  \"build\": \"" + TuningCache::build_key();
  v1 +=
      "\",\n  \"entries\": [\n    {\"kernel\": \"inverse_square\", \"n\": 1024, "
      "\"engine\": \"batched\", \"tile\": 32, \"half_sweep\": true, \"threads\": 4, "
      "\"backend\": \"sse2\", \"pairs_per_sec\": 3e8}\n  ]\n}\n";
  spit(path, v1);
  EXPECT_TRUE(TuningCache::load_or_empty(path).entries().empty());
  std::remove(path.c_str());
}

TEST(TuningCache, EntryMissingSchedulerFieldsDiscardsWholeFile) {
  // v2 schema claiming a v1-shaped entry: every new field is mandatory.
  const std::string path = temp_path("tuning_missing_sched.json");
  TuningCache cache;
  cache.put(sample_entry());
  ASSERT_TRUE(cache.save(path));
  std::string text = slurp(path);
  for (const char* field :
       {"\"sched\": \"stealing\", ", "\"steal_grain\": 2, ", "\"inline_lane_max\": 192, ",
        "\"distribution\": \"plummer\", "}) {
    std::string pruned = text;
    const auto pos = pruned.find(field);
    ASSERT_NE(pos, std::string::npos) << field;
    pruned.erase(pos, std::string(field).size());
    spit(path, pruned);
    EXPECT_TRUE(TuningCache::load_or_empty(path).entries().empty()) << "pruned: " << field;
  }
  std::remove(path.c_str());
}

TEST(TuningCache, ForeignKeyDiscardsWholeFile) {
  const std::string path = temp_path("tuning_foreign.json");
  TuningCache cache;
  cache.put(sample_entry());
  ASSERT_TRUE(cache.save(path));
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());

  struct Tamper {
    std::string from, to;
  };
  const Tamper tampers[] = {
      {TuningCache::kSchema, "canb-host-tuning-v0"},
      {TuningCache::machine_key(), "some other machine [avx2]"},
      {TuningCache::build_key(), "gcc 0.0.0 p64"},
  };
  for (const auto& t : tampers) {
    std::string tampered = text;
    const auto pos = tampered.find(t.from);
    ASSERT_NE(pos, std::string::npos) << t.from;
    tampered.replace(pos, t.from.size(), t.to);
    spit(path, tampered);
    const TuningCache loaded = TuningCache::load_or_empty(path);
    EXPECT_TRUE(loaded.entries().empty()) << "tampered key: " << t.from;
  }
  std::remove(path.c_str());
}

TEST(TuningCache, InvalidEntryFieldDiscardsWholeFile) {
  const std::string path = temp_path("tuning_badentry.json");
  TuningCache cache;
  cache.put(sample_entry());
  ASSERT_TRUE(cache.save(path));
  std::string text = slurp(path);
  const auto pos = text.find("\"sse2\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "\"mmx\"");  // unknown backend: fail closed, re-tune
  spit(path, text);
  EXPECT_TRUE(TuningCache::load_or_empty(path).entries().empty());

  text = slurp(path);  // restore is easier via a fresh save
  TuningCache again;
  again.put(sample_entry());
  ASSERT_TRUE(again.save(path));
  text = slurp(path);
  const auto spos = text.find("\"stealing\"");
  ASSERT_NE(spos, std::string::npos);
  text.replace(spos, 10, "\"wishful\"");  // unknown scheduler mode: same rule
  spit(path, text);
  EXPECT_TRUE(TuningCache::load_or_empty(path).entries().empty());
  std::remove(path.c_str());
}

// --- entry <-> choice conversion -------------------------------------------

TEST(TuneChoice, EntryRoundTripsThroughChoice) {
  const HostTuneEntry e = sample_entry();
  const HostTuneChoice c = core::choice_from_entry(e);
  EXPECT_EQ(c.engine, particles::KernelEngine::Batched);
  EXPECT_EQ(c.tuning.tile, e.tile);
  EXPECT_EQ(c.tuning.half_sweep, e.half_sweep);
  EXPECT_EQ(c.tuning.inline_lane_max, e.inline_lane_max);
  EXPECT_EQ(c.threads, e.threads);
  EXPECT_EQ(c.sched, canb::SchedMode::kStealing);
  EXPECT_EQ(c.steal_grain, e.steal_grain);
  EXPECT_TRUE(c.from_cache);
  EXPECT_EQ(c.pairs_per_sec, e.pairs_per_sec);

  const HostTuneEntry back = core::entry_from_choice(e.kernel, e.n, e.distribution, c);
  EXPECT_EQ(back.kernel, e.kernel);
  EXPECT_EQ(back.n, e.n);
  EXPECT_EQ(back.engine, e.engine);
  EXPECT_EQ(back.tile, e.tile);
  EXPECT_EQ(back.half_sweep, e.half_sweep);
  EXPECT_EQ(back.threads, e.threads);
  EXPECT_EQ(back.backend, e.backend);
  EXPECT_EQ(back.sched, e.sched);
  EXPECT_EQ(back.steal_grain, e.steal_grain);
  EXPECT_EQ(back.inline_lane_max, e.inline_lane_max);
  EXPECT_EQ(back.distribution, e.distribution);
}

TEST(TuneChoice, MeasuredThroughputFeedsMachineGamma) {
  machine::MachineModel m;
  m.gamma = 5e-8;  // the preset's nominal constant
  HostTuneChoice c;
  c.pairs_per_sec = 0.0;  // no measurement: model unchanged
  EXPECT_EQ(core::with_measured_gamma(m, c).gamma, 5e-8);
  c.pairs_per_sec = 2.5e8;
  EXPECT_DOUBLE_EQ(core::with_measured_gamma(m, c).gamma, 4e-9);
}

TEST(TuneChoice, BackendClampsToHardwareSupport) {
  HostTuneEntry e = sample_entry();
  e.backend = "avx2";  // widest possible request
  const HostTuneChoice c = core::choice_from_entry(e);
  EXPECT_LE(c.backend, simd::max_supported());
  e.threads = 0;  // degenerate thread count normalizes to serial
  EXPECT_GE(core::choice_from_entry(e).threads, 1);
}

// --- calibration -----------------------------------------------------------

using Tuner = HostTuner<particles::InverseSquareRepulsion>;

Tuner::Config quick_config() {
  Tuner::Config cfg;
  cfg.kernel = {1e-4, 1e-2};
  cfg.n = 48;
  cfg.sample_seconds = 5e-4;  // keep the whole calibration well under a second
  cfg.max_threads = 2;
  return cfg;
}

TEST(HostTunerTest, TuneRanksCandidatesAndRestoresSimdState) {
  const simd::Backend saved_backend = simd::active();
  simd::set_fast_rsqrt(true);  // calibration must restore, not clear, this

  const Tuner tuner(quick_config());
  const Tuner::Result result = tuner.tune();

  // scalar + batched over {full,half} x {tile32,tile128} x backends.
  const std::size_t backends = static_cast<std::size_t>(simd::max_supported()) + 1;
  EXPECT_EQ(result.candidates.size(), 1 + 2 * 2 * backends);
  EXPECT_GT(result.best.pairs_per_sec, 0.0);
  EXPECT_FALSE(result.best.from_cache);
  EXPECT_GE(result.best.threads, 1);
  EXPECT_LE(result.best.threads, 2);
  for (const auto& c : result.candidates) {
    EXPECT_GT(c.choice.pairs_per_sec, 0.0) << c.name;
    EXPECT_LE(c.choice.pairs_per_sec, result.best.pairs_per_sec) << c.name;
  }

  EXPECT_EQ(simd::active(), saved_backend);
  EXPECT_TRUE(simd::fast_rsqrt());
  simd::set_fast_rsqrt(false);
}

TEST(HostTunerTest, CacheHitSkipsCalibrationAndForceOverridesIt) {
  TuningCache cache;
  const Tuner tuner(quick_config());

  const Tuner::Result first = tuner.tune_with_cache(cache);
  EXPECT_FALSE(first.candidates.empty());
  ASSERT_NE(cache.find(particles::InverseSquareRepulsion::kName, 48), nullptr);

  const Tuner::Result hit = tuner.tune_with_cache(cache);
  EXPECT_TRUE(hit.candidates.empty());  // served from the cache, no timing
  EXPECT_TRUE(hit.best.from_cache);
  EXPECT_EQ(hit.best.pairs_per_sec, first.best.pairs_per_sec);

  const Tuner::Result forced = tuner.tune_with_cache(cache, /*force=*/true);
  EXPECT_FALSE(forced.candidates.empty());
  EXPECT_FALSE(forced.best.from_cache);
}

TEST(HostTunerTest, ClusteredCalibrationYieldsInstallableSchedulerChoice) {
  Tuner::Config cfg = quick_config();
  cfg.distribution = "plummer";  // triggers the skewed scheduler trial
  const Tuner tuner(cfg);
  const Tuner::Result result = tuner.tune();
  EXPECT_GE(result.best.steal_grain, 1);
  EXPECT_GE(result.best.threads, 1);
  const core::HostTuneEntry e =
      core::entry_from_choice("inverse_square", cfg.n, cfg.distribution, result.best);
  EXPECT_TRUE(canb::parse_sched_mode(e.sched).has_value());
  EXPECT_EQ(e.distribution, "plummer");
  // Cache keying separates the shapes: a plummer entry never answers a
  // uniform lookup.
  TuningCache cache;
  cache.put(e);
  EXPECT_EQ(cache.find("inverse_square", cfg.n, "uniform"), nullptr);
  EXPECT_NE(cache.find("inverse_square", cfg.n, "plummer"), nullptr);
}

// --- CLI plumbing ----------------------------------------------------------

TEST(TuneMode, ParsesAndNamesRoundTrip) {
  using sim::TuneMode;
  EXPECT_EQ(sim::parse_tune_mode("off"), TuneMode::Off);
  EXPECT_EQ(sim::parse_tune_mode("auto"), TuneMode::Auto);
  EXPECT_EQ(sim::parse_tune_mode("force"), TuneMode::Force);
  EXPECT_FALSE(sim::parse_tune_mode("always").has_value());
  EXPECT_FALSE(sim::parse_tune_mode("").has_value());
  for (const auto m : {TuneMode::Off, TuneMode::Auto, TuneMode::Force})
    EXPECT_EQ(sim::parse_tune_mode(sim::tune_mode_name(m)), m);
}

}  // namespace
