// Kernel-generic engine coverage: every force kernel through the CA
// engines against the serial reference (typed test over the kernel set).
#include <gtest/gtest.h>

#include "core/ca_all_pairs.hpp"
#include "core/ca_cutoff.hpp"
#include "decomp/partition.hpp"
#include "machine/presets.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "particles/reference.hpp"

namespace {

using namespace canb;
using particles::Block;
using particles::Box;

// Per-kernel parameters chosen so forces are O(1) at typical spacings.
template <class K>
K make_kernel();
template <>
particles::InverseSquareRepulsion make_kernel() {
  return {1e-4, 1e-2};
}
template <>
particles::Gravity make_kernel() {
  return {1e-4, 1e-2};
}
template <>
particles::LennardJones make_kernel() {
  return {1e-6, 0.05};
}
template <>
particles::Yukawa make_kernel() {
  return {1e-3, 0.1, 1e-2};
}
template <>
particles::Morse make_kernel() {
  return {1e-4, 8.0, 0.1};
}
template <>
particles::SoftSphere make_kernel() {
  return {5.0, 0.06};
}

template <class K>
class KernelEngines : public ::testing::Test {};

using AllKernels =
    ::testing::Types<particles::InverseSquareRepulsion, particles::Gravity,
                     particles::LennardJones, particles::Yukawa, particles::Morse,
                     particles::SoftSphere>;

class KernelNames {
 public:
  template <class K>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<K, particles::InverseSquareRepulsion>) return "InverseSquare";
    if constexpr (std::is_same_v<K, particles::Gravity>) return "Gravity";
    if constexpr (std::is_same_v<K, particles::LennardJones>) return "LennardJones";
    if constexpr (std::is_same_v<K, particles::Yukawa>) return "Yukawa";
    if constexpr (std::is_same_v<K, particles::Morse>) return "Morse";
    if constexpr (std::is_same_v<K, particles::SoftSphere>) return "SoftSphere";
    return "Unknown";
  }
};

TYPED_TEST_SUITE(KernelEngines, AllKernels, KernelNames);

TYPED_TEST(KernelEngines, CaAllPairsMatchesReference) {
  using K = TypeParam;
  const K kernel = make_kernel<K>();
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_lattice(64, box, 0.4, 11);

  core::RealPolicy<K> policy({box, kernel, 0.0, 1e-4});
  core::CaAllPairs<core::RealPolicy<K>> engine({16, 2, machine::laptop()}, std::move(policy),
                                               decomp::split_even(init, 8));
  engine.step();
  auto got = decomp::concat(engine.team_results());
  particles::sort_by_id(got);

  particles::SerialReference<K> ref(init, {box, kernel, 1e-4});
  ref.step();
  auto want = ref.particles();
  particles::sort_by_id(want);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(particles::max_force_deviation(got, want), 3e-4);
}

TYPED_TEST(KernelEngines, CaCutoffMatchesReference) {
  using K = TypeParam;
  const K kernel = make_kernel<K>();
  const Box box = Box::reflective_2d(1.0);
  const double cutoff = 0.25;
  const auto init = particles::init_lattice(80, box, 0.4, 13);
  const int qx = 4;
  const int qy = 4;
  const int m = core::window_radius_teams(cutoff, 1.0, qx);

  core::RealPolicy<K> policy({box, kernel, cutoff, 1e-4});
  core::CaCutoff<core::RealPolicy<K>> engine(
      {32, 2, machine::laptop(), core::CutoffGeometry::make_2d(qx, qy, m, m), false},
      std::move(policy), decomp::split_spatial_2d(init, box, qx, qy));
  engine.step();
  auto got = decomp::concat(engine.team_results());
  particles::sort_by_id(got);

  particles::SerialReference<K> ref(init, {box, kernel, 1e-4, cutoff});
  ref.step();
  auto want = ref.particles();
  particles::sort_by_id(want);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(particles::max_force_deviation(got, want), 3e-4);
}

TYPED_TEST(KernelEngines, MultiStepTrajectoryStaysFiniteAndInBox) {
  using K = TypeParam;
  const K kernel = make_kernel<K>();
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_lattice(48, box, 0.3, 17);
  core::RealPolicy<K> policy({box, kernel, 0.0, 5e-4});
  core::CaAllPairs<core::RealPolicy<K>> engine({8, 2, machine::laptop()}, std::move(policy),
                                               decomp::split_even(init, 4));
  engine.run(20);
  auto got = decomp::concat(engine.team_results());
  for (const auto& p : got) {
    EXPECT_TRUE(std::isfinite(p.px) && std::isfinite(p.py));
    EXPECT_TRUE(std::isfinite(p.vx) && std::isfinite(p.vy));
    EXPECT_TRUE(particles::inside(p, box));
  }
}

}  // namespace
