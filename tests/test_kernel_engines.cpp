// Kernel-generic engine coverage: every force kernel through the CA
// engines against the serial reference (typed test over the kernel set),
// plus the Batched-vs-Scalar kernel-engine parity suite: forces must agree
// within 1e-5 relative error and InteractionCount must be bitwise equal for
// every kernel across cutoff/boundary/self-interaction cases — the batched
// engine may only change host time, never physics or the ledger.
#include <gtest/gtest.h>

#include "core/ca_all_pairs.hpp"
#include "core/ca_cutoff.hpp"
#include "decomp/partition.hpp"
#include "machine/presets.hpp"
#include "particles/batched_engine.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "particles/reference.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace canb;
using particles::Block;
using particles::Box;

// Per-kernel parameters chosen so forces are O(1) at typical spacings.
template <class K>
K make_kernel();
template <>
particles::InverseSquareRepulsion make_kernel() {
  return {1e-4, 1e-2};
}
template <>
particles::Gravity make_kernel() {
  return {1e-4, 1e-2};
}
template <>
particles::LennardJones make_kernel() {
  return {1e-6, 0.05};
}
template <>
particles::Yukawa make_kernel() {
  return {1e-3, 0.1, 1e-2};
}
template <>
particles::Morse make_kernel() {
  return {1e-4, 8.0, 0.1};
}
template <>
particles::SoftSphere make_kernel() {
  return {5.0, 0.06};
}

template <class K>
class KernelEngines : public ::testing::Test {};

using AllKernels =
    ::testing::Types<particles::InverseSquareRepulsion, particles::Gravity,
                     particles::LennardJones, particles::Yukawa, particles::Morse,
                     particles::SoftSphere>;

class KernelNames {
 public:
  template <class K>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<K, particles::InverseSquareRepulsion>) return "InverseSquare";
    if constexpr (std::is_same_v<K, particles::Gravity>) return "Gravity";
    if constexpr (std::is_same_v<K, particles::LennardJones>) return "LennardJones";
    if constexpr (std::is_same_v<K, particles::Yukawa>) return "Yukawa";
    if constexpr (std::is_same_v<K, particles::Morse>) return "Morse";
    if constexpr (std::is_same_v<K, particles::SoftSphere>) return "SoftSphere";
    return "Unknown";
  }
};

TYPED_TEST_SUITE(KernelEngines, AllKernels, KernelNames);

// --- Batched vs Scalar parity ----------------------------------------------

// Runs one block-block sweep with both engines on identical inputs and
// checks force agreement (<= 1e-5 relative) plus bitwise-equal counts.
template <class K>
void expect_engine_parity(const Box& box, double cutoff, bool self_interaction,
                          std::uint64_t seed) {
  const K kernel = make_kernel<K>();
  auto targets_scalar = particles::init_uniform(96, box, seed);
  // Self-interaction: the visiting block is a copy of the resident block
  // (same ids), exactly what a CA engine's same_block step produces.
  auto sources = self_interaction ? targets_scalar : particles::init_uniform(96, box, seed + 1);
  if (!self_interaction) {
    for (auto& s : sources) s.id += 1000;  // distinct ids across blocks
  }
  auto targets_batched = targets_scalar;

  const auto count_scalar = particles::accumulate_forces(
      std::span<particles::Particle>(targets_scalar),
      std::span<const particles::Particle>(sources), box, kernel, cutoff);
  const auto count_batched = particles::accumulate_forces_batched(
      std::span<particles::Particle>(targets_batched),
      std::span<const particles::Particle>(sources), box, kernel, cutoff);

  EXPECT_EQ(count_scalar.examined, count_batched.examined);
  EXPECT_EQ(count_scalar.within_cutoff, count_batched.within_cutoff);
  EXPECT_LT(particles::max_force_deviation(targets_batched, targets_scalar, 1e-12), 1e-5);
}

TYPED_TEST(KernelEngines, BatchedMatchesScalarNoCutoff) {
  expect_engine_parity<TypeParam>(Box::reflective_2d(1.0), 0.0, false, 21);
}

TYPED_TEST(KernelEngines, BatchedMatchesScalarWithCutoff) {
  expect_engine_parity<TypeParam>(Box::reflective_2d(1.0), 0.25, false, 23);
}

TYPED_TEST(KernelEngines, BatchedMatchesScalarSelfInteraction) {
  expect_engine_parity<TypeParam>(Box::reflective_2d(1.0), 0.0, true, 25);
  expect_engine_parity<TypeParam>(Box::reflective_2d(1.0), 0.25, true, 27);
}

TYPED_TEST(KernelEngines, BatchedMatchesScalarPeriodic) {
  expect_engine_parity<TypeParam>(Box::periodic_2d(1.0), 0.0, false, 29);
  expect_engine_parity<TypeParam>(Box::periodic_2d(1.0), 0.3, true, 31);
}

TYPED_TEST(KernelEngines, BatchedMatchesScalarOneDimensional) {
  expect_engine_parity<TypeParam>(Box::reflective_1d(1.0), 0.0, true, 33);
  expect_engine_parity<TypeParam>(Box::periodic_1d(1.0), 0.2, false, 35);
}

TYPED_TEST(KernelEngines, BatchedCellListMatchesScalarCellList) {
  using K = TypeParam;
  const K kernel = make_kernel<K>();
  for (const Box& box : {Box::reflective_2d(1.0), Box::periodic_2d(1.0)}) {
    const double cutoff = 0.2;
    auto scalar_ps = particles::init_uniform(200, box, 41);
    auto batched_ps = scalar_ps;
    const auto applied_scalar = particles::cell_list_forces(
        std::span<particles::Particle>(scalar_ps), box, kernel, cutoff,
        particles::KernelEngine::Scalar);
    const auto applied_batched = particles::cell_list_forces(
        std::span<particles::Particle>(batched_ps), box, kernel, cutoff,
        particles::KernelEngine::Batched);
    EXPECT_EQ(applied_scalar, applied_batched);
    particles::sort_by_id(scalar_ps);
    particles::sort_by_id(batched_ps);
    EXPECT_LT(particles::max_force_deviation(batched_ps, scalar_ps, 1e-12), 1e-5);
  }
}

TYPED_TEST(KernelEngines, CaAllPairsMatchesReference) {
  using K = TypeParam;
  const K kernel = make_kernel<K>();
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_lattice(64, box, 0.4, 11);

  core::RealPolicy<K> policy({box, kernel, 0.0, 1e-4});
  core::CaAllPairs<core::RealPolicy<K>> engine({16, 2, machine::laptop()}, std::move(policy),
                                               decomp::split_even(init, 8));
  engine.step();
  auto got = decomp::concat(engine.team_results());
  particles::sort_by_id(got);

  particles::SerialReference<K> ref(init, {box, kernel, 1e-4});
  ref.step();
  auto want = ref.particles();
  particles::sort_by_id(want);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(particles::max_force_deviation(got, want), 3e-4);
}

TYPED_TEST(KernelEngines, CaCutoffMatchesReference) {
  using K = TypeParam;
  const K kernel = make_kernel<K>();
  const Box box = Box::reflective_2d(1.0);
  const double cutoff = 0.25;
  const auto init = particles::init_lattice(80, box, 0.4, 13);
  const int qx = 4;
  const int qy = 4;
  const int m = core::window_radius_teams(cutoff, 1.0, qx);

  core::RealPolicy<K> policy({box, kernel, cutoff, 1e-4});
  core::CaCutoff<core::RealPolicy<K>> engine(
      {32, 2, machine::laptop(), core::CutoffGeometry::make_2d(qx, qy, m, m), false},
      std::move(policy), decomp::split_spatial_2d(init, box, qx, qy));
  engine.step();
  auto got = decomp::concat(engine.team_results());
  particles::sort_by_id(got);

  particles::SerialReference<K> ref(init, {box, kernel, 1e-4, cutoff});
  ref.step();
  auto want = ref.particles();
  particles::sort_by_id(want);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(particles::max_force_deviation(got, want), 3e-4);
}

TYPED_TEST(KernelEngines, CaAllPairsBatchedMatchesReference) {
  using K = TypeParam;
  const K kernel = make_kernel<K>();
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_lattice(64, box, 0.4, 11);

  core::RealPolicy<K> policy({box, kernel, 0.0, 1e-4, particles::KernelEngine::Batched});
  core::CaAllPairs<core::RealPolicy<K>> engine({16, 2, machine::laptop()}, std::move(policy),
                                               decomp::split_even(init, 8));
  engine.step();
  auto got = decomp::concat(engine.team_results());
  particles::sort_by_id(got);

  particles::SerialReference<K> ref(init, {box, kernel, 1e-4});
  ref.step();
  auto want = ref.particles();
  particles::sort_by_id(want);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(particles::max_force_deviation(got, want), 3e-4);
}

TYPED_TEST(KernelEngines, CaCutoffBatchedMatchesReference) {
  using K = TypeParam;
  const K kernel = make_kernel<K>();
  const Box box = Box::reflective_2d(1.0);
  const double cutoff = 0.25;
  const auto init = particles::init_lattice(80, box, 0.4, 13);
  const int qx = 4;
  const int qy = 4;
  const int m = core::window_radius_teams(cutoff, 1.0, qx);

  core::RealPolicy<K> policy({box, kernel, cutoff, 1e-4, particles::KernelEngine::Batched});
  core::CaCutoff<core::RealPolicy<K>> engine(
      {32, 2, machine::laptop(), core::CutoffGeometry::make_2d(qx, qy, m, m), false},
      std::move(policy), decomp::split_spatial_2d(init, box, qx, qy));
  engine.step();
  auto got = decomp::concat(engine.team_results());
  particles::sort_by_id(got);

  particles::SerialReference<K> ref(init, {box, kernel, 1e-4, cutoff});
  ref.step();
  auto want = ref.particles();
  particles::sort_by_id(want);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(particles::max_force_deviation(got, want), 3e-4);
}

// The acceptance contract of the KernelEngine layer: the per-step ledger
// (messages, words, per-phase virtual seconds, critical path) must be
// IDENTICAL across engines, because the engine only changes how the host
// executes the sweep, never what the virtual machine is charged.
template <class MakeSim>
void expect_ledger_invariant_across_engines(MakeSim make_sim) {
  auto scalar_sim = make_sim(particles::KernelEngine::Scalar);
  auto batched_sim = make_sim(particles::KernelEngine::Batched);
  scalar_sim.run(3);
  batched_sim.run(3);

  const auto rs = scalar_sim.report();
  const auto rb = batched_sim.report();
  EXPECT_EQ(rs.messages, rb.messages);
  EXPECT_EQ(rs.bytes, rb.bytes);
  EXPECT_EQ(rs.compute, rb.compute);
  EXPECT_EQ(rs.broadcast, rb.broadcast);
  EXPECT_EQ(rs.skew, rb.skew);
  EXPECT_EQ(rs.shift, rb.shift);
  EXPECT_EQ(rs.reduce, rb.reduce);
  EXPECT_EQ(rs.reassign, rb.reassign);
  EXPECT_EQ(rs.wall, rb.wall);
  EXPECT_EQ(rs.imbalance, rb.imbalance);

  // And the physics agrees to the parity tolerance.
  const auto ps = scalar_sim.gather();
  const auto pb = batched_sim.gather();
  ASSERT_EQ(ps.size(), pb.size());
  EXPECT_LT(particles::max_position_deviation(pb, ps), 1e-5);
}

TEST(KernelEngineLedger, CaAllPairsLedgerIdenticalAcrossEngines) {
  expect_ledger_invariant_across_engines([](particles::KernelEngine engine) {
    sim::Simulation<particles::InverseSquareRepulsion>::Config cfg;
    cfg.method = sim::Method::CaAllPairs;
    cfg.p = 16;
    cfg.c = 2;
    cfg.machine = machine::hopper();
    cfg.kernel = {1e-4, 1e-2};
    cfg.dt = 1e-4;
    cfg.engine = engine;
    return sim::Simulation<particles::InverseSquareRepulsion>(
        cfg, particles::init_uniform(256, cfg.box, 2013, 0.01));
  });
}

TEST(KernelEngineLedger, CaCutoffLedgerIdenticalAcrossEngines) {
  expect_ledger_invariant_across_engines([](particles::KernelEngine engine) {
    sim::Simulation<particles::InverseSquareRepulsion>::Config cfg;
    cfg.method = sim::Method::CaCutoff;
    cfg.p = 32;
    cfg.c = 2;
    cfg.machine = machine::hopper();
    cfg.kernel = {1e-4, 1e-2};
    cfg.cutoff = 0.12;
    cfg.dt = 1e-4;
    cfg.engine = engine;
    return sim::Simulation<particles::InverseSquareRepulsion>(
        cfg, particles::init_uniform(256, cfg.box, 2013, 0.01));
  });
}

TYPED_TEST(KernelEngines, MultiStepTrajectoryStaysFiniteAndInBox) {
  using K = TypeParam;
  const K kernel = make_kernel<K>();
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_lattice(48, box, 0.3, 17);
  core::RealPolicy<K> policy({box, kernel, 0.0, 5e-4});
  core::CaAllPairs<core::RealPolicy<K>> engine({8, 2, machine::laptop()}, std::move(policy),
                                               decomp::split_even(init, 4));
  engine.run(20);
  auto got = decomp::concat(engine.team_results());
  for (const auto& p : got) {
    EXPECT_TRUE(std::isfinite(p.px) && std::isfinite(p.py));
    EXPECT_TRUE(std::isfinite(p.vx) && std::isfinite(p.vy));
    EXPECT_TRUE(particles::inside(p, box));
  }
}

}  // namespace
