// Paper-anchor regression tests: pin the headline figure reproductions so
// calibration or engine changes that break the paper's qualitative results
// fail CI. Each anchor states the paper's claim it guards.
#include <gtest/gtest.h>

#include "bench/common.hpp"
#include "decomp/particle_decomposition.hpp"
#include "bounds/lower_bounds.hpp"
#include "machine/presets.hpp"

namespace {

using namespace canb;
using namespace canb::bench;

double total_of(const sim::RunReport& r) { return r.total(); }

// Fig 2b: "we see communication costs more-than-halving until c = 16 ...
// best performance when c = 16" (Hopper, 24,576 cores, 196,608 particles).
TEST(PaperAnchors, Fig2bOptimumAtC16) {
  double best_total = 1e30;
  int best_c = 0;
  double prev_comm = 1e30;
  for (int c : {1, 2, 4, 8, 16}) {
    const auto rep = run_ca_all_pairs(machine::hopper(), 24576, c, 196608, 1);
    const double comm = rep.communication();
    if (c <= 8) {
      EXPECT_LT(comm, prev_comm * 0.55) << "comm must more-than-halve, c=" << c;
    } else {
      EXPECT_LT(comm, prev_comm) << "comm still falls into the c=16 optimum";
    }
    prev_comm = comm;
    if (total_of(rep) < best_total) {
      best_total = total_of(rep);
      best_c = c;
    }
  }
  for (int c : {32, 64}) {
    const auto rep = run_ca_all_pairs(machine::hopper(), 24576, c, 196608, 1);
    if (total_of(rep) < best_total) {
      best_total = total_of(rep);
      best_c = c;
    }
  }
  EXPECT_EQ(best_c, 16);
}

// Fig 2a: at 6K cores the collectives behave, so communication decreases
// (essentially) monotonically with c — the model regime.
TEST(PaperAnchors, Fig2aCommunicationDecreasesWithC) {
  double prev = 1e30;
  for (int c : {1, 2, 4, 8, 16}) {
    const auto rep = run_ca_all_pairs(machine::hopper(), 6144, c, 24576, 1);
    EXPECT_LT(rep.communication(), prev) << c;
    prev = rep.communication();
  }
  // c=32 may tick up slightly but must stay within 15% of c=16.
  const auto c32 = run_ca_all_pairs(machine::hopper(), 6144, 32, 24576, 1);
  EXPECT_LT(c32.communication(), prev * 1.15);
}

// Section V: "One example shows a speedup of over 11.8x from communication
// avoidance" (the Fig 2c configuration). Guard a >= 9x speedup.
TEST(PaperAnchors, Fig2cSpeedupAtLeastNineX) {
  const auto c1 = run_ca_all_pairs(machine::intrepid(), 8192, 1, 32768, 1);
  double best = 1e30;
  for (int c : {2, 4, 8, 16, 32, 64}) {
    best = std::min(best, total_of(run_ca_all_pairs(machine::intrepid(), 8192, c, 32768, 1)));
  }
  EXPECT_GT(total_of(c1) / best, 9.0);
}

// Section III-C1: "we see a 99.5% reduction in communication time" on the
// Intrepid torus at 32K cores. Guard >= 97%.
TEST(PaperAnchors, Fig2dCommReductionAtLeast97Percent) {
  const auto c1 = run_ca_all_pairs(machine::intrepid(), 32768, 1, 262144, 1);
  double best_comm = 1e30;
  for (int c : {8, 16, 32}) {
    best_comm = std::min(
        best_comm, run_ca_all_pairs(machine::intrepid(), 32768, c, 262144, 1).communication());
  }
  EXPECT_GT(1.0 - best_comm / c1.communication(), 0.97);
}

// Fig 2c/2d: the BG/P hardware tree accelerates the naive all-gather, but
// the CA algorithm "eventually outperforms the hardware-assisted variant
// by using the torus intelligently."
TEST(PaperAnchors, HardwareTreeBeatenByCaAlgorithm) {
  core::PhantomPolicy policy;
  decomp::ParticleDecompositionAllGather<core::PhantomPolicy> tree(
      {8192, machine::intrepid(true)}, policy, even_counts(32768, 8192));
  tree.step();
  const double tree_total = tree.comm().max_clock();

  const auto ring = run_ca_all_pairs(machine::intrepid(), 8192, 1, 32768, 1);
  const auto ca16 = run_ca_all_pairs(machine::intrepid(), 8192, 16, 32768, 1);
  EXPECT_LT(tree_total, total_of(ring));   // tree helps the naive baseline
  EXPECT_LT(total_of(ca16), tree_total);   // but CA wins outright
}

// Fig 3: "our algorithm achieves nearly perfect strong scaling with the
// right choice of c" — efficiency >= 0.94 at the largest machines.
TEST(PaperAnchors, Fig3NearPerfectStrongScalingAtBestC) {
  const double t1_hopper = bounds::model_serial_seconds(machine::hopper(), 196608);
  double best_eff = 0;
  for (int c : {8, 16, 32}) {
    const auto rep = run_ca_all_pairs(machine::hopper(), 24576, c, 196608, 1);
    best_eff = std::max(best_eff, t1_hopper / (24576 * rep.wall));
  }
  EXPECT_GT(best_eff, 0.94);

  const double t1_intrepid = bounds::model_serial_seconds(machine::intrepid(), 262144);
  best_eff = 0;
  for (int c : {8, 16, 32}) {
    const auto rep = run_ca_all_pairs(machine::intrepid(), 32768, c, 262144, 1);
    best_eff = std::max(best_eff, t1_intrepid / (32768 * rep.wall));
  }
  EXPECT_GT(best_eff, 0.94);
}

// Fig 6 / Section IV-D: "the largest available replication factor never
// gives best results" for cutoff runs, and an interior c beats c=1.
TEST(PaperAnchors, Fig6InteriorOptimumForCutoff) {
  // Scaled-down but structurally identical: p=4096 keeps this anchor fast.
  const int p = 4096;
  const int n = 32768;
  double best_total = 1e30;
  int best_c = 0;
  double c1_total = 0;
  double cmax_total = 0;
  for (int c : {1, 2, 4, 8, 16, 32}) {
    const auto rep = run_ca_cutoff_1d(machine::hopper(), p, c, n);
    if (c == 1) c1_total = rep.total();
    cmax_total = rep.total();
    if (rep.total() < best_total) {
      best_total = rep.total();
      best_c = c;
    }
  }
  EXPECT_GT(best_c, 1);
  EXPECT_LT(best_c, 32);
  EXPECT_LT(best_total, c1_total);
  EXPECT_LT(best_total, cmax_total);
}

// Section IV-D2: cutoff simulations are less efficient than all-pairs due
// to boundary load imbalance (reflective boundaries idle edge ranks).
TEST(PaperAnchors, CutoffImbalanceExceedsAllPairs) {
  const auto cutoff = run_ca_cutoff_1d(machine::hopper(), 4096, 4, 32768);
  const auto allpairs = run_ca_all_pairs(machine::hopper(), 4096, 4, 32768, 1);
  EXPECT_GT(cutoff.imbalance, allpairs.imbalance);
}

}  // namespace
