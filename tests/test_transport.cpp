// Cross-backend transport conformance suite (vmpi/transport.hpp,
// vmpi/socket_transport.hpp): every backend must satisfy the same
// contract the primitives rely on —
//
//   1. per-(src, dst, tag) flows deliver in send order (FIFO);
//   2. distinct flows never mix, whatever the interleaving;
//   3. zero-length payloads are legal frames and arrive as such;
//   4. large frames (megabytes) survive intact;
//   5. SoaBlock payloads round-trip bitwise through wire encode/decode;
//   6. concurrent senders to one destination keep per-sender order
//      (shmem: mailbox striping under real contention);
//   7. with a transport attached, the vmpi primitives produce buffers
//      bitwise identical to the unattached in-process reference.
//
// The socket backend is exercised in-process as a 2-group mesh: both
// endpoints are constructed concurrently (the constructor blocks on
// rendezvous) and frames genuinely cross Unix-domain sockets.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "core/policy.hpp"
#include "machine/presets.hpp"
#include "particles/init.hpp"
#include "particles/soa_block.hpp"
#include "support/wire.hpp"
#include "vmpi/primitives.hpp"
#include "vmpi/socket_transport.hpp"
#include "vmpi/transport.hpp"
#include "vmpi/virtual_comm.hpp"

namespace {

using namespace canb;
using particles::SoaBlock;
using vmpi::ModeledTransport;
using vmpi::ShmemTransport;
using vmpi::SocketConfig;
using vmpi::SocketTransport;
using vmpi::Transport;

/// Deterministic payload: n bytes derived from (seed, index).
wire::Bytes pattern(std::size_t n, std::uint64_t seed) {
  wire::Bytes b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::byte>((seed * 1315423911u + i * 2654435761u) & 0xff);
  return b;
}

// ---------------------------------------------------------------------------
// Single-endpoint conformance (modeled and shmem own every rank).

void check_fifo_per_flow(Transport& t) {
  for (int i = 0; i < 16; ++i) t.send(0, 1, /*tag=*/7, pattern(32, static_cast<std::uint64_t>(i)));
  wire::Bytes got;
  for (int i = 0; i < 16; ++i) {
    t.recv(0, 1, 7, got);
    EXPECT_EQ(got, pattern(32, static_cast<std::uint64_t>(i))) << "frame " << i << " out of order";
  }
}

void check_flows_dont_mix(Transport& t) {
  // Interleave three flows — two tags on one pair, a third from another
  // source — then drain them in a different order.
  for (int i = 0; i < 8; ++i) {
    t.send(0, 1, 1, pattern(16, 100u + static_cast<std::uint64_t>(i)));
    t.send(0, 1, 2, pattern(16, 200u + static_cast<std::uint64_t>(i)));
    t.send(2, 1, 1, pattern(16, 300u + static_cast<std::uint64_t>(i)));
  }
  wire::Bytes got;
  for (int i = 0; i < 8; ++i) {
    t.recv(2, 1, 1, got);
    EXPECT_EQ(got, pattern(16, 300u + static_cast<std::uint64_t>(i)));
  }
  for (int i = 0; i < 8; ++i) {
    t.recv(0, 1, 2, got);
    EXPECT_EQ(got, pattern(16, 200u + static_cast<std::uint64_t>(i)));
  }
  for (int i = 0; i < 8; ++i) {
    t.recv(0, 1, 1, got);
    EXPECT_EQ(got, pattern(16, 100u + static_cast<std::uint64_t>(i)));
  }
}

void check_zero_length(Transport& t) {
  t.send(0, 1, 3, {});
  t.send(0, 1, 3, pattern(8, 9));
  t.send(0, 1, 3, {});
  wire::Bytes got = pattern(64, 1);  // arrives non-empty: recv must clear it
  t.recv(0, 1, 3, got);
  EXPECT_TRUE(got.empty());
  t.recv(0, 1, 3, got);
  EXPECT_EQ(got, pattern(8, 9));
  t.recv(0, 1, 3, got);
  EXPECT_TRUE(got.empty());
}

void check_large_frame(Transport& t, std::size_t n) {
  const auto want = pattern(n, 77);
  t.send(0, 1, 4, want);
  wire::Bytes got;
  t.recv(0, 1, 4, got);
  EXPECT_EQ(got, want);
}

void run_single_endpoint_suite(Transport& t) {
  ASSERT_GE(t.ranks(), 3);
  for (int r = 0; r < t.ranks(); ++r) EXPECT_TRUE(t.local(r));
  check_fifo_per_flow(t);
  check_flows_dont_mix(t);
  check_zero_length(t);
  check_large_frame(t, std::size_t{4} << 20);
  t.barrier();  // no-op, but must be callable
  const auto s = t.stats();
  EXPECT_EQ(s.frames_sent, s.frames_received) << "single endpoint: everything loops back";
  EXPECT_EQ(s.bytes_sent, s.bytes_received);
}

TEST(TransportConformance, Modeled) {
  ModeledTransport t(4);
  EXPECT_EQ(t.kind(), vmpi::TransportKind::Modeled);
  run_single_endpoint_suite(t);
}

TEST(TransportConformance, Shmem) {
  ShmemTransport t(4);
  EXPECT_EQ(t.kind(), vmpi::TransportKind::Shmem);
  run_single_endpoint_suite(t);
}

TEST(TransportConformance, ShmemConcurrentSendersKeepPerSenderOrder) {
  constexpr int kSenders = 8;
  constexpr int kFrames = 200;
  ShmemTransport t(kSenders + 1);
  const int dst = kSenders;  // everyone hammers one mailbox
  std::vector<std::thread> senders;
  senders.reserve(kSenders);
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&t, s] {
      for (int i = 0; i < kFrames; ++i)
        t.send(s, kSenders, /*tag=*/1,
               pattern(24, static_cast<std::uint64_t>(s) * 1000u + static_cast<std::uint64_t>(i)));
    });
  }
  // Drain while the senders are still pushing: recv blocks until frames land.
  wire::Bytes got;
  for (int s = 0; s < kSenders; ++s) {
    for (int i = 0; i < kFrames; ++i) {
      t.recv(s, dst, 1, got);
      EXPECT_EQ(got,
                pattern(24, static_cast<std::uint64_t>(s) * 1000u + static_cast<std::uint64_t>(i)))
          << "sender " << s << " frame " << i;
    }
  }
  for (auto& th : senders) th.join();
  EXPECT_EQ(t.stats().frames_received, static_cast<std::uint64_t>(kSenders) * kFrames);
}

// ---------------------------------------------------------------------------
// Socket backend: a real 2-process-group mesh, driven from two threads in
// this process (each endpoint believes it is its own process; rank
// locality, framing, reliable channel, and the UDS mesh are all real).

struct SocketPair {
  std::string dir;
  std::shared_ptr<SocketTransport> a;  // group 0: ranks 0, 1
  std::shared_ptr<SocketTransport> b;  // group 1: ranks 2, 3

  explicit SocketPair(double drop_rate = 0.0, int ranks = 4) {
    dir = vmpi::make_rendezvous_dir();
    SocketConfig cfg;
    cfg.ranks = ranks;
    cfg.groups = 2;
    cfg.dir = dir;
    cfg.drop_rate = drop_rate;
    // Constructors block on rendezvous; bring both up concurrently.
    std::thread tb([&] {
      SocketConfig cb = cfg;
      cb.group = 1;
      b = std::make_shared<SocketTransport>(cb);
    });
    a = std::make_shared<SocketTransport>(cfg);
    tb.join();
  }
  ~SocketPair() {
    // Endpoint teardown barriers against the peer: destroy concurrently.
    std::thread tb([this] { b.reset(); });
    a.reset();
    tb.join();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

TEST(TransportConformance, SocketMeshCrossAndLocal) {
  SocketPair mesh;
  EXPECT_TRUE(mesh.a->local(0) && mesh.a->local(1));
  EXPECT_FALSE(mesh.a->local(2) || mesh.a->local(3));
  EXPECT_TRUE(mesh.b->local(2) && mesh.b->local(3));

  // Cross-wire FIFO, zero-length, and a large frame on one flow.
  for (int i = 0; i < 16; ++i)
    mesh.a->send(0, 2, 5, pattern(48, static_cast<std::uint64_t>(i)));
  mesh.a->send(1, 3, 6, {});
  mesh.a->send(1, 3, 6, pattern(std::size_t{2} << 20, 42));
  // Local short-circuit inside group 1 while wire frames are in flight.
  mesh.b->send(2, 3, 8, pattern(16, 4));

  wire::Bytes got;
  for (int i = 0; i < 16; ++i) {
    mesh.b->recv(0, 2, 5, got);
    EXPECT_EQ(got, pattern(48, static_cast<std::uint64_t>(i))) << "wire frame " << i;
  }
  mesh.b->recv(1, 3, 6, got);
  EXPECT_TRUE(got.empty());
  mesh.b->recv(1, 3, 6, got);
  EXPECT_EQ(got, pattern(std::size_t{2} << 20, 42));
  mesh.b->recv(2, 3, 8, got);
  EXPECT_EQ(got, pattern(16, 4));

  // Reverse direction, then a barrier from both sides.
  mesh.b->send(3, 0, 9, pattern(32, 11));
  std::thread tb([&] { mesh.b->barrier(); });
  mesh.a->barrier();
  tb.join();
  mesh.a->recv(3, 0, 9, got);
  EXPECT_EQ(got, pattern(32, 11));
}

TEST(TransportConformance, SocketLossyLinkStillDeliversInOrder) {
  SocketPair mesh(/*drop_rate=*/0.3);
  for (int i = 0; i < 32; ++i)
    mesh.a->send(0, 2, 1, pattern(64, static_cast<std::uint64_t>(i)));
  wire::Bytes got;
  for (int i = 0; i < 32; ++i) {
    mesh.b->recv(0, 2, 1, got);
    EXPECT_EQ(got, pattern(64, static_cast<std::uint64_t>(i))) << "frame " << i;
  }
  // The drop injection must actually have engaged the reliable layer.
  EXPECT_GT(mesh.a->stats().retransmits, 0u);
}

// ---------------------------------------------------------------------------
// SoaBlock wire round trip: the payload integrity half of the contract.

TEST(WireFormat, SoaBlockRoundTripsBitwise) {
  const auto src = particles::init_uniform(97, particles::Box::reflective_2d(1.0), 99, 0.05);
  SoaBlock blk;
  for (const auto& p : src) blk.push_back(p);
  wire::Bytes bytes;
  wire::to_bytes(blk, bytes);
  SoaBlock back;
  back.push_back(particles::Particle{});  // non-empty: decode must replace
  wire::from_bytes(back, bytes);
  ASSERT_EQ(back.size(), blk.size());
  for (std::size_t i = 0; i < blk.size(); ++i) {
    EXPECT_EQ(back.id[i], blk.id[i]);
    EXPECT_EQ(std::bit_cast<std::uint32_t>(back.px[i]), std::bit_cast<std::uint32_t>(blk.px[i]));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(back.py[i]), std::bit_cast<std::uint32_t>(blk.py[i]));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(back.vx[i]), std::bit_cast<std::uint32_t>(blk.vx[i]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.fx[i]), std::bit_cast<std::uint64_t>(blk.fx[i]));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(back.mass[i]),
              std::bit_cast<std::uint32_t>(blk.mass[i]));
  }
}

TEST(WireFormat, EmptyBlockAndScalarFallback) {
  SoaBlock empty;
  wire::Bytes bytes;
  wire::to_bytes(empty, bytes);
  SoaBlock back;
  back.push_back(particles::Particle{});
  wire::from_bytes(back, bytes);
  EXPECT_EQ(back.size(), 0u);

  // Trivially-copyable fallback (the ints plane payload).
  const int v = 42;
  wire::to_bytes(v, bytes);
  int w = 0;
  wire::from_bytes(w, bytes);
  EXPECT_EQ(w, v);
}

// ---------------------------------------------------------------------------
// Primitive-level conformance: with a single-endpoint transport attached,
// broadcast / skew / shift / permute / reduce must leave buffers bitwise
// identical to the unattached in-process reference.

using Policy = core::RealPolicy<particles::InverseSquareRepulsion>;

std::vector<SoaBlock> run_primitive_round(Transport* t) {
  const int p = 8;
  const int c = 2;
  const auto g = vmpi::Grid2d::make(p, c);
  const int q = g.cols();
  vmpi::VirtualComm vc(p, machine::hopper());
  if (t != nullptr) vc.set_transport(t);

  std::vector<SoaBlock> bufs(static_cast<std::size_t>(p));
  const auto box = particles::Box::reflective_2d(1.0);
  for (int col = 0; col < q; ++col) {
    const auto blk = particles::init_uniform(24, box, 500u + static_cast<std::uint64_t>(col), 0.05);
    for (const auto& part : blk) bufs[static_cast<std::size_t>(g.leader(col))].push_back(part);
  }

  vmpi::broadcast_teams(vc, g, bufs, &Policy::bytes, vmpi::Phase::Broadcast);
  vmpi::skew_rows(vc, g, [](int row) { return row; }, bufs, &Policy::bytes, vmpi::Phase::Skew);
  vmpi::shift_rows(vc, g, 1, bufs, &Policy::bytes);
  std::vector<SoaBlock> scratch;
  vmpi::permute_buffers(vc, [p](int r) { return (r + 3) % p; }, bufs, scratch, &Policy::bytes,
                        vmpi::Phase::Shift);
  vmpi::reduce_teams(vc, g, bufs, &Policy::bytes, core::TeamCombine<Policy>{},
                     vmpi::Phase::Reduce);
  return bufs;
}

void expect_blocks_bitwise_equal(const std::vector<SoaBlock>& got,
                                 const std::vector<SoaBlock>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t r = 0; r < got.size(); ++r) {
    ASSERT_EQ(got[r].size(), want[r].size()) << "rank " << r;
    for (std::size_t i = 0; i < got[r].size(); ++i) {
      EXPECT_EQ(got[r].id[i], want[r].id[i]) << "rank " << r;
      EXPECT_EQ(std::bit_cast<std::uint32_t>(got[r].px[i]),
                std::bit_cast<std::uint32_t>(want[r].px[i]))
          << "rank " << r << " slot " << i;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[r].fx[i]),
                std::bit_cast<std::uint64_t>(want[r].fx[i]))
          << "rank " << r << " slot " << i;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[r].fy[i]),
                std::bit_cast<std::uint64_t>(want[r].fy[i]))
          << "rank " << r << " slot " << i;
    }
  }
}

TEST(TransportPrimitives, ModeledRoutingMatchesReference) {
  const auto want = run_primitive_round(nullptr);
  ModeledTransport t(8);
  const auto got = run_primitive_round(&t);
  expect_blocks_bitwise_equal(got, want);
  EXPECT_GT(t.stats().frames_sent, 0u) << "primitives must actually route through the transport";
}

TEST(TransportPrimitives, ShmemRoutingMatchesReference) {
  const auto want = run_primitive_round(nullptr);
  ShmemTransport t(8);
  const auto got = run_primitive_round(&t);
  expect_blocks_bitwise_equal(got, want);
  EXPECT_GT(t.stats().frames_sent, 0u);
}

// ---------------------------------------------------------------------------
// Factory and naming.

TEST(TransportFactory, NamesRoundTripAndModeledYieldsNull) {
  using vmpi::TransportKind;
  for (const auto k : {TransportKind::Modeled, TransportKind::Shmem, TransportKind::Socket})
    EXPECT_EQ(vmpi::parse_transport_kind(vmpi::transport_kind_name(k)), k);
  EXPECT_FALSE(vmpi::parse_transport_kind("carrier-pigeon").has_value());

  vmpi::TransportOptions opts;
  opts.ranks = 4;
  EXPECT_EQ(vmpi::make_transport(opts), nullptr)
      << "modeled means no transport attached, by design";
  opts.kind = TransportKind::Shmem;
  const auto t = vmpi::make_transport(opts);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->kind(), TransportKind::Shmem);
  EXPECT_EQ(t->ranks(), 4);
}

}  // namespace
