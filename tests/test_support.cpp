// Support library: RNG determinism, statistics, tables, CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/assert.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace canb;

// --- rng --------------------------------------------------------------------

TEST(Rng, SplitMix64KnownSequence) {
  // Reference values for seed 0 from the published SplitMix64 algorithm.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(1234);
  Xoshiro256 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, NormalHasUnitishMoments) {
  Xoshiro256 rng(99);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.05);
  EXPECT_NEAR(st.stddev(), 1.0, 0.05);
}

TEST(Rng, UniformIntStaysInRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.uniform_int(17), 17u);
}

// --- stats --------------------------------------------------------------------

TEST(Stats, RunningStatsBasics) {
  RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_NEAR(st.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(st.sum(), 40.0);
}

TEST(Stats, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, Quantiles) {
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(i);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 100.0);
  EXPECT_NEAR(quantile(xs, 0.5), 50.5, 1e-9);
}

TEST(Stats, ImbalanceFactor) {
  std::vector<double> balanced{1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(imbalance_factor(balanced), 1.0);
  std::vector<double> skewed{1.0, 1.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(imbalance_factor(skewed), 2.5);
  EXPECT_DOUBLE_EQ(imbalance_factor({}), 1.0);
}

TEST(Stats, LogLogSlopeRecoversPowerLaw) {
  std::vector<double> x{1, 2, 4, 8, 16};
  std::vector<double> y;
  for (double v : x) y.push_back(3.0 * std::pow(v, -2.0));
  EXPECT_NEAR(loglog_slope(x, y), -2.0, 1e-9);
}

TEST(Stats, GeometricMean) {
  std::vector<double> xs{1.0, 100.0};
  EXPECT_NEAR(geometric_mean(xs), 10.0, 1e-9);
}

// --- table --------------------------------------------------------------------

TEST(Table, PrintsHeaderAndRows) {
  Table t({{"name", 8}, {"value", 10, 2}});
  t.add_row({std::string("alpha"), 3.14159});
  t.add_row({std::string("beta"), 2.71828});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({{"a"}, {"b", 8, 1}});
  t.add_row({static_cast<long long>(7), 0.5});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n7,0.5\n");
}

TEST(Table, RejectsAritlessRows) {
  Table t({{"a"}, {"b"}});
  EXPECT_THROW(t.add_row({std::string("only-one")}), PreconditionError);
}

TEST(Table, Formatters) {
  EXPECT_EQ(format_seconds(1.5), "1.500 s");
  EXPECT_EQ(format_seconds(0.0025), "2.500 ms");
  EXPECT_EQ(format_seconds(2.5e-6), "2.500 us");
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
}

// --- cli --------------------------------------------------------------------

TEST(Cli, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--n=100", "--machine", "hopper", "--verbose"};
  CliArgs args(5, argv, {"n", "machine", "verbose"});
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_EQ(args.get("machine", ""), "hopper");
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("missing-is-fallback", 42), 42);
}

TEST(Cli, RejectsUnknownOptions) {
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(CliArgs(2, argv, {"n"}), PreconditionError);
}

TEST(Cli, CollectsPositionals) {
  const char* argv[] = {"prog", "file1", "--n=3", "file2"};
  CliArgs args(4, argv, {"n"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "file1");
  EXPECT_EQ(args.positional()[1], "file2");
}

// --- assert -------------------------------------------------------------------

TEST(Assert, RequireThrowsWithMessage) {
  try {
    CANB_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("numbers disagree"), std::string::npos);
  }
}

}  // namespace
