// Work-stealing scheduler contracts (support/parallel.hpp):
//
//  1. Bitwise identity — trajectories, ledgers, and serialized traces are
//     byte-for-byte identical across {static, stealing} x threads {1,2,8}
//     x {all-pairs, cutoff} x {uniform, plummer} x fault model {off, on}.
//     Stealing may only move *execution*, never a floating-point fold.
//  2. Zero allocation — a warmed stealing parallel_tasks path performs no
//     heap allocation (counted by a global operator-new hook).
//
// The clustered input honors CANB_CLUSTER_SEED (the CI matrix sweeps it):
// identity must hold for every seed, so any seed-dependent divergence in
// the scheduler shows up as a matrix failure, not a lucky pass.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "machine/presets.hpp"
#include "particles/init.hpp"
#include "sim/simulation.hpp"
#include "support/parallel.hpp"
#include "vmpi/trace.hpp"

// --- global allocation counter --------------------------------------------
// Replaceable global operator new/delete: every heap allocation in the
// process bumps the counter. The zero-alloc test snapshots it around a
// warmed task loop; nothing else runs concurrently in this binary.

static std::atomic<std::uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

// GCC can't see that the replaced operator new above is malloc-backed and
// flags free() as mismatched; in this TU it is the matching deallocator.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace canb;

std::uint64_t cluster_seed() {
  if (const char* env = std::getenv("CANB_CLUSTER_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env) return static_cast<std::uint64_t>(v);
  }
  return 4242;
}

particles::Block make_input(const std::string& dist, int n, const particles::Box& box) {
  if (dist == "plummer") return particles::init_plummer(n, box, 0.1, cluster_seed(), 0.02);
  return particles::init_uniform(n, box, cluster_seed(), 0.02);
}

using Sim = sim::Simulation<particles::InverseSquareRepulsion>;

struct RunOut {
  particles::Block traj;
  double clock = 0.0;
  std::uint64_t critical_bytes = 0;
  std::vector<double> rank_compute;
  std::string trace;
};

RunOut run_case(sim::Method method, const std::string& dist, SchedMode mode, int threads,
                bool fault) {
  Sim::Config cfg;
  cfg.method = method;
  cfg.machine = machine::laptop();
  cfg.p = 16;
  cfg.c = method == sim::Method::CaAllPairs ? 2 : 1;
  cfg.cutoff = method == sim::Method::CaCutoff ? 0.2 : 0.0;
  cfg.kernel = particles::InverseSquareRepulsion{1e-4, 1e-2};
  cfg.engine = particles::KernelEngine::Batched;
  cfg.sched = mode;
  cfg.steal_grain = 2;
  if (fault) {
    vmpi::FaultConfig fc;
    fc.seed = 77;
    fc.straggler_rate = 0.05;
    fc.jitter = 0.1;
    fc.drop_rate = 0.05;
    fc.link_degrade_rate = 0.1;
    cfg.fault = fc;
  }
  Sim simulation(cfg, make_input(dist, 160, cfg.box));
  vmpi::TraceRecorder trace;
  simulation.comm().set_trace(&trace);
  if (threads > 1) simulation.set_host_pool(std::make_shared<ThreadPool>(threads));
  simulation.run(3);

  RunOut out;
  out.traj = simulation.gather();
  out.clock = simulation.comm().max_clock();
  out.critical_bytes = simulation.comm().ledger().critical_bytes();
  for (int r = 0; r < simulation.comm().size(); ++r)
    out.rank_compute.push_back(
        simulation.comm().ledger().seconds(r, vmpi::Phase::Compute));
  out.trace = vmpi::serialize_trace(trace);
  return out;
}

::testing::AssertionResult bitwise_equal(const RunOut& got, const RunOut& want) {
  if (got.traj.size() != want.traj.size())
    return ::testing::AssertionFailure() << "particle count diverged";
  for (std::size_t i = 0; i < want.traj.size(); ++i) {
    const auto& a = got.traj[i];
    const auto& b = want.traj[i];
    // bit_cast: stricter than float ==, catches even a sign-of-zero flip.
    for (const auto& [x, y] : {std::pair{a.px, b.px}, std::pair{a.py, b.py},
                               std::pair{a.vx, b.vx}, std::pair{a.vy, b.vy},
                               std::pair{a.fx, b.fx}, std::pair{a.fy, b.fy}}) {
      if (std::bit_cast<std::uint32_t>(x) != std::bit_cast<std::uint32_t>(y))
        return ::testing::AssertionFailure()
               << "particle " << i << " diverged (" << x << " vs " << y << ")";
    }
  }
  if (std::bit_cast<std::uint64_t>(got.clock) != std::bit_cast<std::uint64_t>(want.clock))
    return ::testing::AssertionFailure() << "max_clock diverged";
  if (got.critical_bytes != want.critical_bytes)
    return ::testing::AssertionFailure() << "ledger critical_bytes diverged";
  if (got.rank_compute.size() != want.rank_compute.size())
    return ::testing::AssertionFailure() << "rank count diverged";
  for (std::size_t r = 0; r < want.rank_compute.size(); ++r) {
    if (std::bit_cast<std::uint64_t>(got.rank_compute[r]) !=
        std::bit_cast<std::uint64_t>(want.rank_compute[r]))
      return ::testing::AssertionFailure() << "rank " << r << " compute seconds diverged";
  }
  if (got.trace != want.trace)
    return ::testing::AssertionFailure() << "serialized trace diverged";
  return ::testing::AssertionSuccess();
}

using SchedulerCase = std::tuple<sim::Method, std::string, bool>;

class SchedulerBitwise : public ::testing::TestWithParam<SchedulerCase> {};

std::string scheduler_case_name(const ::testing::TestParamInfo<SchedulerCase>& param_info) {
  const auto& [method, dist, fault] = param_info.param;
  std::string name = method == sim::Method::CaAllPairs ? "AllPairs" : "Cutoff";
  name += "_" + dist + (fault ? "_faulted" : "");
  return name;
}

TEST_P(SchedulerBitwise, IdenticalAcrossModesAndThreads) {
  const auto [method, dist, fault] = GetParam();
  const RunOut baseline = run_case(method, dist, SchedMode::kStatic, 1, fault);
  ASSERT_GT(baseline.traj.size(), 0u);
  for (const SchedMode mode : {SchedMode::kStatic, SchedMode::kStealing}) {
    for (const int threads : {1, 2, 8}) {
      if (mode == SchedMode::kStatic && threads == 1) continue;  // the baseline itself
      const RunOut got = run_case(method, dist, mode, threads, fault);
      EXPECT_TRUE(bitwise_equal(got, baseline))
          << to_string(mode) << " threads=" << threads << " dist=" << dist
          << " fault=" << fault << " seed=" << cluster_seed();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndWorkloads, SchedulerBitwise,
    ::testing::Values(
        std::tuple{sim::Method::CaAllPairs, std::string("uniform"), false},
        std::tuple{sim::Method::CaAllPairs, std::string("plummer"), false},
        std::tuple{sim::Method::CaAllPairs, std::string("plummer"), true},
        std::tuple{sim::Method::CaCutoff, std::string("uniform"), false},
        std::tuple{sim::Method::CaCutoff, std::string("plummer"), false},
        std::tuple{sim::Method::CaCutoff, std::string("plummer"), true}),
    scheduler_case_name);

// Stealing with a different pool seed still lands on the same results: the
// victim-probe order is an execution detail, not part of the fold.
TEST(SchedulerBitwise, StealSeedDoesNotChangeResults) {
  Sim::Config cfg;
  cfg.method = sim::Method::CaCutoff;
  cfg.machine = machine::laptop();
  cfg.p = 16;
  cfg.cutoff = 0.2;
  cfg.kernel = particles::InverseSquareRepulsion{1e-4, 1e-2};
  cfg.engine = particles::KernelEngine::Batched;
  cfg.sched = SchedMode::kStealing;

  auto run_with_seed = [&](std::uint64_t seed) {
    Sim simulation(cfg, make_input("plummer", 160, cfg.box));
    simulation.set_host_pool(std::make_shared<ThreadPool>(4, seed));
    simulation.run(3);
    return simulation.gather();
  };
  const auto a = run_with_seed(1);
  const auto b = run_with_seed(0xdeadbeefULL);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(a[i].px), std::bit_cast<std::uint32_t>(b[i].px));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(a[i].fx), std::bit_cast<std::uint32_t>(b[i].fx));
  }
}

// --- zero allocation on the warmed stealing path ---------------------------

TEST(SchedulerAllocation, WarmedStealingTaskPathAllocatesNothing) {
  ThreadPool pool(4);
  pool.set_sched_mode(SchedMode::kStealing);
  pool.set_steal_grain(2);
  const int tasks = 96;
  std::vector<double> cost(static_cast<std::size_t>(tasks));
  for (int t = 0; t < tasks; ++t)
    cost[static_cast<std::size_t>(t)] = (t % 7 == 0) ? 50.0 : 1.0;
  std::vector<std::uint64_t> out(static_cast<std::size_t>(tasks), 0);
  const auto body = [&](int t, int) {
    out[static_cast<std::size_t>(t)] += static_cast<std::uint64_t>(t);
  };

  // Warm: first dispatch may fault in thread-local and libc state.
  for (int i = 0; i < 4; ++i) pool.parallel_tasks(tasks, body, cost.data());

  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 64; ++i) pool.parallel_tasks(tasks, body, cost.data());
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "warmed parallel_tasks path heap-allocated "
                           << (after - before) << " times across 64 calls";

  std::uint64_t sum = 0;
  for (const auto v : out) sum += v;
  EXPECT_EQ(sum, 68ull * (static_cast<std::uint64_t>(tasks - 1) * tasks / 2));
}

// Static mode rides the same pooled path: also allocation-free when warm.
TEST(SchedulerAllocation, WarmedStaticTaskPathAllocatesNothing) {
  ThreadPool pool(2);
  pool.set_sched_mode(SchedMode::kStatic);
  std::atomic<std::uint64_t> total{0};
  const auto body = [&](int t, int) {
    total.fetch_add(static_cast<std::uint64_t>(t), std::memory_order_relaxed);
  };
  for (int i = 0; i < 4; ++i) pool.parallel_tasks(64, body);
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 64; ++i) pool.parallel_tasks(64, body);
  EXPECT_EQ(g_heap_allocs.load(std::memory_order_relaxed), before);
}

}  // namespace
