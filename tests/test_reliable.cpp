// Reliable-channel unit tests (vmpi/reliable.hpp): the protocol engine is
// passive (no threads, no clock, no sockets), so these tests drive it with
// a manual clock and a seeded lossy link that drops, reorders, and
// duplicates frames — and assert:
//
//   1. eventual in-order exactly-once delivery through any loss pattern;
//   2. sequence/ack correctness: cumulative acks release exactly the
//      contiguously received prefix, duplicates are discarded but re-acked;
//   3. retransmit backoff: each expiry multiplies the timeout by `backoff`
//      and a frame unacked after max_attempts transmissions aborts;
//   4. accounting parity with the modeled arm: k forced drops cost exactly
//      the retries / timeouts / backoff-wait that
//      PerturbationModel::plan_delivery charges for k modeled drops.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/reliable.hpp"

namespace {

using namespace canb;
using vmpi::Frame;
using vmpi::FrameKind;
using vmpi::ReliableConfig;
using vmpi::ReliableReceiver;
using vmpi::ReliableSender;

Frame data_frame(std::uint64_t tag, const std::string& text) {
  Frame f;
  f.kind = FrameKind::Data;
  f.src = 1;
  f.dst = 2;
  f.tag = tag;
  f.payload.resize(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) f.payload[i] = static_cast<std::byte>(text[i]);
  return f;
}

std::string text_of(const Frame& f) {
  std::string s(f.payload.size(), '\0');
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<char>(f.payload[i]);
  return s;
}

// ---------------------------------------------------------------------------
// Framing.

TEST(ReliableFraming, EncodeDecodeRoundTrip) {
  Frame f = data_frame(77, "payload bytes");
  f.seq = 123456789;
  wire::Bytes enc;
  vmpi::encode_frame(f, enc);
  // Length prefix counts everything after itself.
  ASSERT_GE(enc.size(), sizeof(std::uint64_t) + vmpi::kFrameHeaderBytes);
  std::uint64_t body_len = 0;
  std::memcpy(&body_len, enc.data(), sizeof body_len);
  EXPECT_EQ(body_len, enc.size() - sizeof body_len);
  const Frame back = vmpi::decode_frame_body(
      std::span<const std::byte>(enc).subspan(sizeof body_len));
  EXPECT_EQ(back.kind, f.kind);
  EXPECT_EQ(back.src, f.src);
  EXPECT_EQ(back.dst, f.dst);
  EXPECT_EQ(back.tag, f.tag);
  EXPECT_EQ(back.seq, f.seq);
  EXPECT_EQ(text_of(back), "payload bytes");
}

// ---------------------------------------------------------------------------
// Receiver sequencing.

TEST(ReliableReceiver, InOrderDeliversAndAcksCumulatively) {
  ReliableReceiver rx;
  std::vector<std::string> delivered;
  auto sink = [&](Frame&& f) { delivered.push_back(text_of(f)); };
  for (int i = 0; i < 3; ++i) {
    Frame f = data_frame(1, "m" + std::to_string(i));
    f.seq = static_cast<std::uint64_t>(i);
    EXPECT_EQ(rx.on_data(std::move(f), sink), static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(delivered, (std::vector<std::string>{"m0", "m1", "m2"}));
  EXPECT_EQ(rx.stats().duplicates_dropped, 0u);
  EXPECT_EQ(rx.stats().reordered_held, 0u);
}

TEST(ReliableReceiver, OutOfOrderIsStashedThenDrained) {
  ReliableReceiver rx;
  std::vector<std::string> delivered;
  auto sink = [&](Frame&& f) { delivered.push_back(text_of(f)); };
  Frame f2 = data_frame(1, "m2");
  f2.seq = 2;
  Frame f1 = data_frame(1, "m1");
  f1.seq = 1;
  Frame f0 = data_frame(1, "m0");
  f0.seq = 0;
  EXPECT_EQ(rx.on_data(std::move(f2), sink), 0u) << "gap: nothing contiguous yet";
  EXPECT_EQ(rx.on_data(std::move(f1), sink), 0u);
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(rx.on_data(std::move(f0), sink), 3u) << "gap filled: the whole run drains";
  EXPECT_EQ(delivered, (std::vector<std::string>{"m0", "m1", "m2"}));
  EXPECT_EQ(rx.stats().reordered_held, 2u);
}

TEST(ReliableReceiver, DuplicatesAreDiscardedButReacked) {
  ReliableReceiver rx;
  int deliveries = 0;
  auto sink = [&](Frame&&) { ++deliveries; };
  Frame f = data_frame(1, "once");
  f.seq = 0;
  EXPECT_EQ(rx.on_data(std::move(f), sink), 1u);
  Frame dup = data_frame(1, "once");
  dup.seq = 0;
  EXPECT_EQ(rx.on_data(std::move(dup), sink), 1u) << "duplicate still answers with the cum ack";
  EXPECT_EQ(deliveries, 1) << "exactly-once delivery";
  EXPECT_EQ(rx.stats().duplicates_dropped, 1u);
  // A duplicate of a stashed (not yet delivered) frame is also dropped.
  Frame s1 = data_frame(1, "held");
  s1.seq = 2;
  rx.on_data(std::move(s1), sink);
  Frame s2 = data_frame(1, "held");
  s2.seq = 2;
  rx.on_data(std::move(s2), sink);
  EXPECT_EQ(rx.stats().duplicates_dropped, 2u);
}

// ---------------------------------------------------------------------------
// Sender retransmission.

TEST(ReliableSender, AckReleasesPrefixAndPollRetransmitsWithBackoff) {
  ReliableConfig cfg;
  cfg.rto = 1.0;
  cfg.backoff = 2.0;
  cfg.max_attempts = 10;
  ReliableSender tx(cfg);
  std::vector<std::uint64_t> emitted;
  auto wire_sink = [&](const Frame& f) { emitted.push_back(f.seq); };
  tx.send(data_frame(1, "a"), /*now=*/0.0, wire_sink);
  tx.send(data_frame(1, "b"), 0.0, wire_sink);
  tx.send(data_frame(1, "c"), 0.0, wire_sink);
  EXPECT_EQ(emitted, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_FALSE(tx.idle());

  tx.on_ack(2);  // cumulative: releases seq 0 and 1, not 2
  emitted.clear();
  EXPECT_EQ(tx.poll(/*now=*/1.0, wire_sink), 1.0 + 2.0) << "expired rto doubles";
  EXPECT_EQ(emitted, (std::vector<std::uint64_t>{2})) << "only the unacked frame retransmits";
  EXPECT_EQ(tx.poll(/*now=*/2.9, wire_sink), 3.0) << "not expired: deadline reported, no emit";
  EXPECT_EQ(emitted.size(), 1u);
  EXPECT_EQ(tx.poll(/*now=*/3.0, wire_sink), 3.0 + 4.0) << "second expiry doubles again";
  EXPECT_EQ(tx.stats().retransmits, 2u);
  EXPECT_EQ(tx.stats().timeouts, 2u);
  EXPECT_DOUBLE_EQ(tx.stats().backoff_wait, 1.0 + 2.0);

  tx.on_ack(3);
  EXPECT_TRUE(tx.idle());
  EXPECT_EQ(tx.poll(100.0, wire_sink), std::numeric_limits<double>::infinity());
}

// ---------------------------------------------------------------------------
// Lossy-link torture: seeded drop + reorder + duplicate between a real
// sender/receiver pair, driven by a manual clock until everything lands.

struct LossyLink {
  Xoshiro256 rng;
  double drop = 0;
  double dup = 0;
  double reorder = 0;
  std::deque<Frame> in_flight;

  explicit LossyLink(std::uint64_t seed, double drop_p, double dup_p, double reorder_p)
      : rng(seed), drop(drop_p), dup(dup_p), reorder(reorder_p) {}

  void push(const Frame& f) {
    if (rng.uniform() < drop) return;
    in_flight.push_back(f);
    if (rng.uniform() < dup) in_flight.push_back(f);
    if (in_flight.size() >= 2 && rng.uniform() < reorder)
      std::swap(in_flight[in_flight.size() - 1], in_flight[in_flight.size() - 2]);
  }

  bool pop(Frame& out) {
    if (in_flight.empty()) return false;
    out = std::move(in_flight.front());
    in_flight.pop_front();
    return true;
  }
};

TEST(ReliableChannel, EventualInOrderExactlyOnceThroughLossyLink) {
  constexpr int kMessages = 120;
  for (const std::uint64_t seed : {1u, 7u, 2013u}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    ReliableConfig cfg;
    cfg.rto = 0.5;
    cfg.backoff = 2.0;
    cfg.max_attempts = 64;  // torture loss rates need headroom
    ReliableSender tx(cfg);
    ReliableReceiver rx;
    LossyLink data_link(seed, /*drop=*/0.3, /*dup=*/0.15, /*reorder=*/0.25);
    LossyLink ack_link(seed ^ 0xabcdef, 0.3, 0.15, 0.25);

    std::vector<std::string> delivered;
    auto deliver = [&](Frame&& f) { delivered.push_back(text_of(f)); };
    auto to_wire = [&](const Frame& f) { data_link.push(f); };

    double now = 0.0;
    for (int i = 0; i < kMessages; ++i)
      tx.send(data_frame(9, "msg" + std::to_string(i)), now, to_wire);

    // Event loop: drain the data link into the receiver, return acks over
    // the (equally lossy) ack link, advance time, pump retransmits.
    int rounds = 0;
    while (!tx.idle() || !data_link.in_flight.empty() || !ack_link.in_flight.empty()) {
      ASSERT_LT(++rounds, 20000) << "channel failed to converge";
      Frame f;
      while (data_link.pop(f)) {
        Frame ack;
        ack.kind = FrameKind::Ack;
        ack.seq = rx.on_data(std::move(f), deliver);
        ack_link.push(ack);
      }
      while (ack_link.pop(f)) tx.on_ack(f.seq);
      now += 0.1;
      tx.poll(now, to_wire);
    }

    ASSERT_EQ(delivered.size(), static_cast<std::size_t>(kMessages))
        << "exactly-once: no loss, no duplication";
    for (int i = 0; i < kMessages; ++i)
      EXPECT_EQ(delivered[static_cast<std::size_t>(i)], "msg" + std::to_string(i));
    EXPECT_EQ(rx.next_expected(), static_cast<std::uint64_t>(kMessages));
    EXPECT_GT(tx.stats().retransmits, 0u) << "the loss rates must have exercised recovery";
    EXPECT_GT(rx.stats().duplicates_dropped, 0u);
  }
}

// ---------------------------------------------------------------------------
// Accounting parity with the modeled arm. PerturbationModel::plan_delivery
// charges, for k dropped attempts on a message of clean cost a with
// timeout_factor f and backoff b:
//     retries = timeouts = k,
//     extra_seconds = sum_{i<k} (f*a*b^i + a).
// The reliable channel with rto = f*a and the same backoff, suffering k
// real drops, must book the same retries/timeouts and a backoff_wait equal
// to extra_seconds minus the k modeled retransmission costs.

TEST(ReliableChannel, BackoffAccountingMatchesPerturbationModel) {
  constexpr double kAttemptCost = 0.012;
  for (const int k : {1, 3, 7}) {
    SCOPED_TRACE(::testing::Message() << k << " drops");
    // Modeled arm: a drop rate this close to 1 drops every attempt the
    // model allows (the config rejects exactly 1.0; the seeded stream is
    // deterministic and the ASSERT below pins the count), so
    // max_attempts = k+1 yields exactly k drops.
    vmpi::FaultConfig fc;
    fc.drop_rate = 1.0 - 1e-12;
    fc.max_attempts = k + 1;  // defaults: timeout_factor 3, backoff 2
    vmpi::PerturbationModel model(fc, /*p=*/2);
    const auto d = model.plan_delivery(/*dst=*/1, kAttemptCost);
    ASSERT_EQ(d.retries, static_cast<std::uint64_t>(k));
    ASSERT_EQ(d.timeouts, static_cast<std::uint64_t>(k));

    // Real arm: same schedule, k real drops (emit discards the first k
    // transmissions), polled exactly at each deadline.
    ReliableConfig rc;
    rc.rto = fc.timeout_factor * kAttemptCost;
    rc.backoff = fc.backoff;
    rc.max_attempts = k + 1;
    ReliableSender tx(rc);
    ReliableReceiver rx;
    int wire_deliveries = 0;
    int transmissions = 0;
    std::uint64_t ack = 0;
    auto emit = [&](const Frame& f) {
      if (transmissions++ < k) return;  // injected drop
      Frame copy = f;
      ack = rx.on_data(std::move(copy), [&](Frame&&) { ++wire_deliveries; });
    };
    double now = 0.0;
    tx.send(data_frame(1, "parity"), now, emit);
    for (int i = 0; i < k; ++i) {
      now = tx.poll(now, emit);  // jump straight to the pending deadline
      tx.poll(now, emit);        // expire it
    }
    tx.on_ack(ack);
    EXPECT_TRUE(tx.idle());
    EXPECT_EQ(wire_deliveries, 1);

    EXPECT_EQ(tx.stats().retransmits, d.retries);
    EXPECT_EQ(tx.stats().timeouts, d.timeouts);
    // extra_seconds = backoff waits + k retransmission costs.
    EXPECT_NEAR(tx.stats().backoff_wait,
                d.extra_seconds - static_cast<double>(k) * kAttemptCost, 1e-12);
  }
}

}  // namespace
