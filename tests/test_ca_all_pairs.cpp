// CA all-pairs engine (Algorithm 1): physics correctness against the serial
// reference, schedule coverage, degeneracy to the baselines, and exactness
// of the phantom bulk fast path.
#include <gtest/gtest.h>

#include "core/ca_all_pairs.hpp"
#include "core/policy.hpp"
#include "decomp/partition.hpp"
#include "decomp/particle_decomposition.hpp"
#include "machine/presets.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "particles/reference.hpp"
#include "support/stats.hpp"

namespace {

using namespace canb;
using particles::Block;
using particles::Box;
using particles::InverseSquareRepulsion;
using Policy = core::RealPolicy<InverseSquareRepulsion>;
using Engine = core::CaAllPairs<Policy>;

Engine make_engine(const Block& all, int p, int c, double dt = 1e-4) {
  const Box box = Box::reflective_2d(1.0);
  Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, 0.0, dt});
  return Engine({p, c, machine::laptop()}, std::move(policy),
                decomp::split_even(all, p / c));
}

Block gather(const Engine& e) {
  auto all = decomp::concat(e.team_results());
  particles::sort_by_id(all);
  return all;
}

// --- force correctness across (n, p, c) ----------------------------------

struct Param {
  int n;
  int p;
  int c;
};

class CaForces : public ::testing::TestWithParam<Param> {};

TEST_P(CaForces, MatchesSerialReferenceForcesAfterOneStep) {
  const auto [n, p, c] = GetParam();
  const Box box = Box::reflective_2d(1.0);
  const InverseSquareRepulsion kernel{1e-4, 1e-2};
  const auto init = particles::init_uniform(n, box, /*seed=*/42, /*speed=*/0.01);

  auto engine = make_engine(init, p, c);
  engine.step();
  const Block got = gather(engine);

  particles::SerialReference<InverseSquareRepulsion> ref(init, {box, kernel, 1e-4});
  ref.step();
  Block want = ref.particles();
  particles::sort_by_id(want);

  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(particles::max_force_deviation(got, want), 2e-4);
  EXPECT_LT(particles::max_position_deviation(got, want), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CaForces,
    ::testing::Values(Param{32, 4, 1}, Param{32, 4, 2}, Param{48, 8, 2}, Param{64, 16, 1},
                      Param{64, 16, 2}, Param{64, 16, 4}, Param{60, 9, 3}, Param{100, 25, 5},
                      Param{33, 16, 4}, Param{128, 36, 6}, Param{70, 12, 2}, Param{8, 1, 1},
                      Param{5, 4, 2}, Param{96, 32, 4}, Param{150, 49, 7}, Param{64, 64, 8},
                      Param{90, 18, 3}, Param{41, 25, 5}),
    [](const auto& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_p" + std::to_string(pinfo.param.p) + "_c" +
             std::to_string(pinfo.param.c);
    });

TEST(CaAllPairs, MultiStepTrajectoryTracksReference) {
  const int n = 40;
  const Box box = Box::reflective_2d(1.0);
  const InverseSquareRepulsion kernel{1e-4, 1e-2};
  const auto init = particles::init_uniform(n, box, 7, 0.02);

  auto engine = make_engine(init, 8, 2, 5e-4);
  engine.run(10);
  const Block got = gather(engine);

  particles::SerialReference<InverseSquareRepulsion> ref(init, {box, kernel, 5e-4});
  ref.run(10);
  Block want = ref.particles();
  particles::sort_by_id(want);
  EXPECT_LT(particles::max_position_deviation(got, want), 1e-4);
}

// --- replication validity -------------------------------------------------

TEST(CaAllPairs, RejectsInvalidReplicationFactors) {
  EXPECT_TRUE(vmpi::valid_all_pairs_replication(16, 4));
  EXPECT_TRUE(vmpi::valid_all_pairs_replication(16, 2));
  EXPECT_TRUE(vmpi::valid_all_pairs_replication(16, 1));
  EXPECT_FALSE(vmpi::valid_all_pairs_replication(16, 8));    // 8^2 > 16
  EXPECT_FALSE(vmpi::valid_all_pairs_replication(16, 3));  // 3 does not divide 16
  EXPECT_TRUE(vmpi::valid_all_pairs_replication(12, 2));   // q=6, c|q holds
  EXPECT_FALSE(vmpi::valid_all_pairs_replication(12, 3));  // q=4, 3 does not divide 4
  EXPECT_TRUE(vmpi::valid_all_pairs_replication(6144, 32));  // the paper's Fig 2a extreme
  const auto all = particles::init_uniform(16, Box::reflective_2d(1.0), 1);
  EXPECT_THROW(make_engine(all, 16, 8), PreconditionError);
}

// --- degeneracy: c = 1 equals the systolic ring ---------------------------

TEST(CaAllPairs, DegeneratesToParticleRingAtCEquals1) {
  const int n = 64;
  const int p = 8;
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(n, box, 3, 0.0);

  auto ca = make_engine(init, p, 1);
  ca.step();

  Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, 0.0, 1e-4});
  decomp::ParticleDecompositionRing<Policy> ring({p, machine::laptop()}, std::move(policy),
                                                 decomp::split_even(init, p));
  ring.step();

  const auto& la = ca.comm().ledger();
  const auto& lb = ring.comm().ledger();
  EXPECT_EQ(la.critical_messages(), lb.critical_messages());
  EXPECT_EQ(la.critical_bytes(), lb.critical_bytes());
  EXPECT_DOUBLE_EQ(ca.comm().max_clock(), ring.comm().max_clock());
}

// --- phantom bulk fast path is exact ---------------------------------------

TEST(CaAllPairs, PhantomBulkPathMatchesPerStepPath) {
  const int p = 64;
  const int c = 4;
  const std::uint64_t per_team = 8;
  const auto mk = [&](bool bulk) {
    core::PhantomPolicy policy({0.05, bulk});
    std::vector<core::PhantomBlock> blocks(static_cast<std::size_t>(p / c), {per_team});
    return core::CaAllPairs<core::PhantomPolicy>({p, c, machine::hopper()}, policy,
                                                 std::move(blocks));
  };
  auto bulk = mk(true);
  auto slow = mk(false);
  bulk.run(3);
  slow.run(3);
  EXPECT_NEAR(bulk.comm().max_clock(), slow.comm().max_clock(), 1e-12);
  EXPECT_EQ(bulk.comm().ledger().critical_messages(), slow.comm().ledger().critical_messages());
  EXPECT_EQ(bulk.comm().ledger().critical_bytes(), slow.comm().ledger().critical_bytes());
  EXPECT_EQ(bulk.comm().ledger().aggregate_messages(), slow.comm().ledger().aggregate_messages());
  for (int ph = 0; ph < vmpi::kPhaseCount; ++ph) {
    const auto phase = static_cast<vmpi::Phase>(ph);
    EXPECT_NEAR(bulk.comm().ledger().aggregate(phase).seconds,
                slow.comm().ledger().aggregate(phase).seconds, 1e-9)
        << phase_name(phase);
  }
}

// --- phantom matches real ledgers (schedule/payload split) -----------------

TEST(CaAllPairs, PhantomLedgerMatchesRealLedger) {
  const int n = 64;
  const int p = 16;
  const int c = 2;
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(n, box, 11, 0.0);

  auto real_engine = make_engine(init, p, c);
  real_engine.step();

  core::PhantomPolicy policy({0.05, false});
  std::vector<core::PhantomBlock> blocks;
  for (const auto& b : decomp::split_even(init, p / c)) blocks.push_back({b.size()});
  core::CaAllPairs<core::PhantomPolicy> phantom({p, c, machine::laptop()}, policy,
                                                std::move(blocks));
  phantom.step();

  const auto& lr = real_engine.comm().ledger();
  const auto& lp = phantom.comm().ledger();
  EXPECT_EQ(lr.critical_messages(), lp.critical_messages());
  EXPECT_EQ(lr.critical_bytes(), lp.critical_bytes());
  EXPECT_NEAR(real_engine.comm().max_clock(), phantom.comm().max_clock(), 1e-12);
}

// --- schedule coverage: every pair of teams meets exactly once --------------

TEST(CaAllPairs, EveryTeamPairMeetsExactlyOnce) {
  // Give each team a single particle with unit charge; after one step each
  // particle must have examined exactly n-1 partners. We detect coverage by
  // interaction counts in the ledger's compute seconds (gamma per pair).
  const int p = 36;
  const int c = 3;
  const int q = p / c;
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(q, box, 5, 0.0);  // one particle per team

  auto engine = make_engine(init, p, c);
  engine.step();
  // Total examined pairs across all ranks must be exactly n*(n-1) with
  // n == q (every ordered pair once).
  const double gamma = machine::laptop().gamma;
  const auto compute =
      engine.comm().ledger().aggregate(vmpi::Phase::Compute).seconds;
  const double integrate_flops =
      machine::laptop().gamma_flop * core::kIntegrateFlopsPerParticle * q;
  const double pairs = (compute - integrate_flops) / gamma;
  EXPECT_NEAR(pairs, static_cast<double>(q) * (q - 1), 1e-6);
}

// --- communication scaling: W ~ 1/c, S ~ 1/c^2 -----------------------------

TEST(CaAllPairs, CriticalPathBytesScaleInverselyWithC) {
  const int p = 64;
  const int n = 256;
  const auto init = particles::init_uniform(n, Box::reflective_2d(1.0), 9, 0.0);
  std::vector<double> cs;
  std::vector<double> shift_bytes;
  for (int c : {1, 2, 4}) {  // c=8 has p/c^2 = 1: zero shift rounds
    auto engine = make_engine(init, p, c);
    engine.step();
    const auto breakdown = engine.comm().ledger().critical_breakdown();
    const auto shift = breakdown[static_cast<std::size_t>(vmpi::Phase::Shift)];
    cs.push_back(c);
    shift_bytes.push_back(static_cast<double>(shift.bytes));
  }
  // Shift traffic: (p/c^2 - 1) messages of c*n/p particles — ~ n/c with a
  // finite-size correction, so the log-log slope sits a bit below -1.
  for (std::size_t i = 0; i + 1 < cs.size(); ++i)
    EXPECT_GT(shift_bytes[i], shift_bytes[i + 1]);
  const double slope = loglog_slope(cs, shift_bytes);
  EXPECT_NEAR(slope, -1.1, 0.35);
}

// --- phantom equality holds across machine models --------------------------------

class MachinePhantom : public ::testing::TestWithParam<int> {};

TEST_P(MachinePhantom, PhantomMatchesRealOnEveryPreset) {
  const machine::MachineModel machines[] = {machine::laptop(), machine::hopper(),
                                            machine::intrepid(),
                                            machine::intrepid(false, false)};
  const auto& m = machines[GetParam()];
  const int p = 16;
  const int c = 2;
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(64, box, 3, 0.0);

  Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, 0.0, 1e-4});
  Engine real_engine({p, c, m}, std::move(policy), decomp::split_even(init, p / c));
  real_engine.step();

  std::vector<core::PhantomBlock> blocks;
  for (const auto& b : decomp::split_even(init, p / c)) blocks.push_back({b.size()});
  core::PhantomPolicy ppolicy({0.0, true});
  core::CaAllPairs<core::PhantomPolicy> phantom({p, c, m}, ppolicy, std::move(blocks));
  phantom.step();
  EXPECT_NEAR(real_engine.comm().max_clock(), phantom.comm().max_clock(), 1e-12);
  EXPECT_EQ(real_engine.comm().ledger().critical_bytes(),
            phantom.comm().ledger().critical_bytes());
}

INSTANTIATE_TEST_SUITE_P(Machines, MachinePhantom, ::testing::Range(0, 4),
                         ::testing::PrintToStringParamName());

}  // namespace
