// Extensions beyond the paper's core algorithms: the replication-factor
// autotuner (Section V future work) and the halo-exchange spatial baseline
// (Section II-C).
#include <gtest/gtest.h>

#include "core/autotuner.hpp"
#include "core/ca_cutoff.hpp"
#include "core/spatial_halo.hpp"
#include "decomp/partition.hpp"
#include "machine/presets.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "particles/reference.hpp"

namespace {

using namespace canb;
using particles::Block;
using particles::Box;
using particles::InverseSquareRepulsion;
using Policy = core::RealPolicy<InverseSquareRepulsion>;

// --- autotuner -----------------------------------------------------------------

TEST(Autotuner, PicksInteriorOptimumAtScale) {
  // Hopper at the paper's Fig 2b configuration: the measured optimum is
  // c=16; the autotuner must find an interior c (not 1, not sqrt(p)).
  core::Autotuner tuner({24576, 196608, machine::hopper(), 0, 0.0, 1});
  const auto result = tuner.tune();
  EXPECT_EQ(result.best_c, 16);
  EXPECT_GT(result.candidates.size(), 5u);
}

TEST(Autotuner, PrefersSmallCOnSmallMachines) {
  // At small scale communication barely matters; anything c>=1 is close,
  // but the chosen c must at least beat c=1's modeled time.
  core::Autotuner tuner({64, 4096, machine::hopper(), 0, 0.0, 1});
  const auto result = tuner.tune();
  double c1_time = 0;
  for (const auto& cand : result.candidates) {
    if (cand.c == 1) c1_time = cand.seconds;
  }
  EXPECT_LE(result.best_seconds, c1_time);
}

TEST(Autotuner, RespectsMemoryCap) {
  core::Autotuner tuner({24576, 196608, machine::hopper(), /*max_c=*/4, 0.0, 1});
  const auto result = tuner.tune();
  EXPECT_LE(result.best_c, 4);
  for (const auto& cand : result.candidates) EXPECT_LE(cand.c, 4);
}

TEST(Autotuner, TunesCutoffProblems) {
  core::Autotuner tuner({24576, 196608, machine::hopper(), 0, /*rc_fraction=*/0.25, 1});
  const auto result = tuner.tune();
  EXPECT_GT(result.best_c, 1);
  EXPECT_LT(result.best_c, 64);
  // Candidates report the communication share; it must shrink from c=1.
  double comm_c1 = 0.0;
  double comm_best = 0.0;
  for (const auto& cand : result.candidates) {
    if (cand.c == 1) comm_c1 = cand.comm_seconds;
    if (cand.c == result.best_c) comm_best = cand.comm_seconds;
  }
  EXPECT_LT(comm_best, comm_c1 / 4);
}

TEST(Autotuner, Tunes2dCutoff) {
  core::Autotuner tuner({4096, 65536, machine::intrepid(), 0, 0.25, 2});
  const auto result = tuner.tune();
  EXPECT_GE(result.best_c, 1);
  EXPECT_FALSE(result.candidates.empty());
}

TEST(Autotuner, RejectsDegenerateInput) {
  EXPECT_THROW(core::Autotuner({0, 100, machine::laptop(), 0, 0.0, 1}), PreconditionError);
}

// --- spatial halo baseline -------------------------------------------------------

constexpr double kCutoff = 0.25;

core::SpatialHaloDecomposition<Policy> make_halo_1d(const Block& all, int q) {
  const Box box = Box::reflective_1d(1.0);
  const int m = core::window_radius_teams(kCutoff, box.lx, q);
  Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, kCutoff, 1e-4});
  return core::SpatialHaloDecomposition<Policy>(
      {q, machine::laptop(), core::CutoffGeometry::make_1d(q, m), false}, std::move(policy),
      decomp::split_spatial_1d(all, box, q));
}

TEST(SpatialHalo, MatchesSerialReference1d) {
  const int n = 96;
  const Box box = Box::reflective_1d(1.0);
  const auto init = particles::init_uniform(n, box, 41, 0.01);
  auto halo = make_halo_1d(init, 12);
  halo.step();
  auto got = decomp::concat(halo.team_results());
  particles::sort_by_id(got);

  particles::SerialReference<InverseSquareRepulsion> ref(
      init, {box, InverseSquareRepulsion{1e-4, 1e-2}, 1e-4, kCutoff});
  ref.step();
  Block want = ref.particles();
  particles::sort_by_id(want);
  EXPECT_LT(particles::max_force_deviation(got, want), 2e-4);
}

TEST(SpatialHalo, MatchesSerialReference2d) {
  const int n = 128;
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(n, box, 43, 0.01);
  const int qx = 5;
  const int qy = 5;
  const int m = core::window_radius_teams(kCutoff, 1.0, qx);
  Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, kCutoff, 1e-4});
  core::SpatialHaloDecomposition<Policy> halo(
      {qx * qy, machine::laptop(), core::CutoffGeometry::make_2d(qx, qy, m, m), false},
      std::move(policy), decomp::split_spatial_2d(init, box, qx, qy));
  halo.step();
  auto got = decomp::concat(halo.team_results());
  particles::sort_by_id(got);

  particles::SerialReference<InverseSquareRepulsion> ref(
      init, {box, InverseSquareRepulsion{1e-4, 1e-2}, 1e-4, kCutoff});
  ref.step();
  Block want = ref.particles();
  particles::sort_by_id(want);
  EXPECT_LT(particles::max_force_deviation(got, want), 2e-4);
}

TEST(SpatialHalo, MultiStepWithReassignment) {
  const int n = 64;
  const Box box = Box::reflective_1d(1.0);
  const auto init = particles::init_uniform(n, box, 47, 2.0);
  auto halo = make_halo_1d(init, 8);
  halo.run(8);
  auto got = decomp::concat(halo.team_results());
  particles::sort_by_id(got);

  particles::SerialReference<InverseSquareRepulsion> ref(
      init, {box, InverseSquareRepulsion{1e-4, 1e-2}, 1e-4, kCutoff});
  ref.run(8);
  Block want = ref.particles();
  particles::sort_by_id(want);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(particles::max_position_deviation(got, want), 1e-3);
}

TEST(SpatialHalo, CostsMatchSectionIICFormula) {
  // S = 2m messages, W = 2m * n/p particles (interior rank, periodic).
  const int q = 16;
  const int m = 4;
  core::PhantomPolicy policy({0.0, false});
  core::SpatialHaloDecomposition<core::PhantomPolicy> halo(
      {q, machine::hopper(), core::CutoffGeometry::make_1d(q, m), /*periodic=*/true}, policy,
      std::vector<core::PhantomBlock>(static_cast<std::size_t>(q), {8}));
  halo.step();
  EXPECT_EQ(halo.comm().ledger().critical_messages(), static_cast<std::uint64_t>(2 * m));
  EXPECT_EQ(halo.comm().ledger().critical_bytes(),
            static_cast<std::uint64_t>(2 * m) * 8u * 52u);
}

TEST(SpatialHalo, CommunicationComparableToCaCutoffAtC1) {
  // Same decomposition, different schedule (direct fetch vs systolic
  // walk): message and byte totals agree within small constants.
  const int q = 32;
  const int m = 8;
  core::PhantomPolicy policy({0.0, false});
  core::SpatialHaloDecomposition<core::PhantomPolicy> halo(
      {q, machine::hopper(), core::CutoffGeometry::make_1d(q, m), true}, policy,
      std::vector<core::PhantomBlock>(static_cast<std::size_t>(q), {8}));
  halo.step();
  core::CaCutoff<core::PhantomPolicy> ca(
      {q, 1, machine::hopper(), core::CutoffGeometry::make_1d(q, m), true}, policy,
      std::vector<core::PhantomBlock>(static_cast<std::size_t>(q), {8}));
  ca.step();
  const double halo_bytes = static_cast<double>(halo.comm().ledger().critical_bytes());
  const double ca_bytes = static_cast<double>(ca.comm().ledger().critical_bytes());
  EXPECT_LT(halo_bytes / ca_bytes, 1.5);
  EXPECT_GT(halo_bytes / ca_bytes, 0.66);
}

TEST(SpatialHalo, BoundaryRanksSendLessUnderReflectiveBoundaries) {
  const int q = 16;
  const int m = 4;
  core::PhantomPolicy policy({0.0, false});
  core::SpatialHaloDecomposition<core::PhantomPolicy> halo(
      {q, machine::hopper(), core::CutoffGeometry::make_1d(q, m), /*periodic=*/false}, policy,
      std::vector<core::PhantomBlock>(static_cast<std::size_t>(q), {8}));
  vmpi::TraceRecorder trace;
  halo.comm().set_trace(&trace);
  halo.step();
  // Rank 0 (edge) can only exchange eastward: m sends vs 2m for interior.
  EXPECT_EQ(trace.bytes_sent_by(0), static_cast<std::uint64_t>(m) * 8u * 52u);
  EXPECT_EQ(trace.bytes_sent_by(q / 2), static_cast<std::uint64_t>(2 * m) * 8u * 52u);
}

}  // namespace
