// Live observability plane, single-process side: snapshot wire round-trip
// and merge semantics (obs/snapshot.hpp), Prometheus format validation,
// the flight recorder's ring/median/straggler behavior, the HTTP scrape
// server driven by a raw-socket client, and the plane's bitwise inertness
// at the Simulation level. The multi-process mesh aggregation path is
// covered by tests/test_obs_e2e.cpp.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "machine/presets.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/serve.hpp"
#include "obs/snapshot.hpp"
#include "obs/step_series.hpp"
#include "particles/init.hpp"
#include "sim/simulation.hpp"
#include "support/rng.hpp"
#include "support/wire.hpp"

namespace {

using namespace canb;

// --- snapshot wire round-trip ----------------------------------------------

/// Canonical comparison: two registries are equal iff their Prometheus
/// exposition (deterministic family/series order) matches.
std::string canon(const obs::MetricsRegistry& reg) { return obs::to_prometheus(reg); }

/// A registry of process-local families with seeded but arbitrary values,
/// including histogram observations past the last edge (+Inf bucket).
obs::MetricsRegistry make_local_registry(std::uint64_t seed) {
  obs::MetricsRegistry reg;
  SplitMix64 rng(seed);
  reg.counter("canb_transport_frames_sent_total", {{"group", std::to_string(seed % 4)}}, "frames")
      .inc(rng.next() % 1000);
  reg.counter("canb_transport_bytes_sent_total", {{"group", std::to_string(seed % 4)}}, "bytes")
      .inc(rng.next() % 100000);
  reg.counter("canb_sched_tasks_total", {}, "tasks").inc(rng.next() % 500);
  reg.gauge("canb_worker_busy_seconds", {{"worker", "0"}}, "busy")
      .set(static_cast<double>(rng.next() % 1000) / 256.0);
  auto& h = reg.histogram("canb_sched_wait_seconds", {0.5, 1.0, 2.0}, {}, "wait dist");
  const int obs_n = static_cast<int>(rng.next() % 20);
  for (int i = 0; i < obs_n; ++i) {
    h.observe(static_cast<double>(rng.next() % 16) / 4.0);  // up to 3.75 > last edge
  }
  h.observe(100.0);  // always at least one +Inf observation
  return reg;
}

TEST(ObsSnapshot, RoundTripPreservesRegistry) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 2013ull}) {
    const auto reg = make_local_registry(seed);
    wire::Bytes buf;
    obs::snapshot_to_bytes(reg, /*group=*/3, /*step=*/17, buf);
    const auto snap = obs::snapshot_from_bytes(buf);
    EXPECT_EQ(snap.group, 3);
    EXPECT_EQ(snap.step, 17u);
    EXPECT_EQ(canon(snap.metrics), canon(reg)) << "seed " << seed;
  }
}

TEST(ObsSnapshot, EmptyRegistryRoundTrips) {
  obs::MetricsRegistry reg;
  wire::Bytes buf;
  obs::snapshot_to_bytes(reg, 1, 0, buf);
  const auto snap = obs::snapshot_from_bytes(buf);
  EXPECT_TRUE(snap.metrics.empty());
  EXPECT_EQ(snap.group, 1);
}

TEST(ObsSnapshot, FilterDropsReplicatedFamilies) {
  obs::MetricsRegistry reg;
  reg.counter("canb_transport_frames_sent_total").inc(5);  // process-local
  reg.counter("canb_messages_total").inc(7);               // SPMD replica
  reg.gauge("canb_rank_clock_seconds", {{"rank", "0"}}).set(1.0);
  wire::Bytes buf;
  obs::snapshot_to_bytes(reg, 0, 0, buf);  // process_local_only = true
  const auto snap = obs::snapshot_from_bytes(buf);
  EXPECT_EQ(snap.metrics.families().size(), 1u);
  EXPECT_TRUE(snap.metrics.families().count("canb_transport_frames_sent_total"));
}

TEST(ObsSnapshot, ProcessLocalPrefixes) {
  EXPECT_TRUE(obs::process_local_metric("canb_transport_frames_sent_total"));
  EXPECT_TRUE(obs::process_local_metric("canb_sched_calls_total"));
  EXPECT_TRUE(obs::process_local_metric("canb_steal_total"));
  EXPECT_TRUE(obs::process_local_metric("canb_worker_idle_seconds"));
  EXPECT_TRUE(obs::process_local_metric("canb_tasks_per_worker"));
  EXPECT_TRUE(obs::process_local_metric("canb_host_phase_seconds"));
  // Sweep counters are host truth: under owner-computes each process only
  // sweeps its owned ranks, so they diverge across the mesh and must ride
  // the per-group snapshot (the mesh merge sums them back to the total).
  EXPECT_TRUE(obs::process_local_metric("canb_sweep_pairs_computed_total"));
  EXPECT_TRUE(obs::process_local_metric("canb_sweep_pairs_total"));
  EXPECT_TRUE(obs::process_local_metric("canb_local_ranks"));
  EXPECT_FALSE(obs::process_local_metric("canb_messages_total"));
  EXPECT_FALSE(obs::process_local_metric("canb_rank_clock_seconds"));
  EXPECT_FALSE(obs::process_local_metric("canb_steps_total"));
  EXPECT_FALSE(obs::process_local_metric("canb_build_info"));
}

// The property the mesh relies on: merging through serialization equals
// merging in-process, +Inf buckets and empty registries included.
TEST(ObsSnapshot, MergeCommutesWithSerialization) {
  for (std::uint64_t seed : {2ull, 11ull, 2013ull}) {
    const auto a = make_local_registry(seed);
    const auto b = make_local_registry(seed + 1);

    obs::MetricsRegistry in_process;
    obs::merge_registry(in_process, a);
    obs::merge_registry(in_process, b);

    wire::Bytes ba, bb;
    obs::snapshot_to_bytes(a, 0, 0, ba);
    obs::snapshot_to_bytes(b, 1, 0, bb);
    obs::MetricsRegistry via_wire;
    obs::merge_registry(via_wire, obs::snapshot_from_bytes(ba).metrics);
    obs::merge_registry(via_wire, obs::snapshot_from_bytes(bb).metrics);

    EXPECT_EQ(canon(via_wire), canon(in_process)) << "seed " << seed;

    // Merging an empty registry is the identity.
    obs::MetricsRegistry plus_empty = in_process;
    obs::merge_registry(plus_empty, obs::MetricsRegistry{});
    EXPECT_EQ(canon(plus_empty), canon(in_process));
  }
}

TEST(ObsSnapshot, MergeSumsCountersAndHistograms) {
  obs::MetricsRegistry a, b;
  a.counter("canb_transport_frames_sent_total").inc(10);
  b.counter("canb_transport_frames_sent_total").inc(32);
  a.histogram("canb_h", {1.0, 2.0}).observe(0.5);
  a.histogram("canb_h", {1.0, 2.0}).observe(9.0);  // +Inf bucket
  b.histogram("canb_h", {1.0, 2.0}).observe(1.5);

  obs::MetricsRegistry merged;
  obs::merge_registry(merged, a);
  obs::merge_registry(merged, b);
  EXPECT_EQ(merged.counter("canb_transport_frames_sent_total").value(), 42u);
  auto& h = merged.histogram("canb_h", {1.0, 2.0});
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.counts().back(), 1u);  // the +Inf observation survived
  EXPECT_DOUBLE_EQ(h.sum(), 11.0);
}

TEST(ObsSnapshot, MergeLabelsGaugesWithGroup) {
  obs::MetricsRegistry src, dst;
  src.gauge("canb_worker_busy_seconds", {{"worker", "0"}}).set(2.5);
  src.gauge("canb_sched_info", {{"group", "1"}, {"mode", "static"}}).set(1.0);
  obs::merge_registry(dst, src, "2");
  // The unlabeled gauge gains group="2"; the pre-labeled one is untouched.
  const auto& fam = dst.families().at("canb_worker_busy_seconds");
  ASSERT_EQ(fam.series.size(), 1u);
  EXPECT_NE(fam.series.begin()->first.find("group=\"2\""), std::string::npos);
  const auto& info = dst.families().at("canb_sched_info");
  EXPECT_NE(info.series.begin()->first.find("group=\"1\""), std::string::npos);
}

TEST(ObsSnapshot, HistogramMergeRejectsMismatchedEdges) {
  auto a = obs::Histogram(std::vector<double>{1.0, 2.0});
  const auto b = obs::Histogram(std::vector<double>{1.0, 3.0});
  EXPECT_THROW(a.merge_from(b), PreconditionError);
}

TEST(ObsSnapshot, FromPartsValidatesCounts) {
  EXPECT_THROW(obs::Histogram::from_parts({1.0}, {1, 2, 3}, 6, 0.0), PreconditionError);
  EXPECT_THROW(obs::Histogram::from_parts({1.0}, {1, 2}, 5, 0.0), PreconditionError);
  const auto h = obs::Histogram::from_parts({1.0}, {1, 2}, 3, 4.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 4.5);
}

// --- Prometheus validation --------------------------------------------------

TEST(ObsPrometheus, RealExportValidates) {
  const auto reg = make_local_registry(5);
  const auto err = obs::validate_prometheus(obs::to_prometheus(reg));
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST(ObsPrometheus, ValidatorRejectsStructuralFaults) {
  // HELP without TYPE.
  EXPECT_TRUE(obs::validate_prometheus("# HELP canb_x help\ncanb_x 1\n").has_value());
  // Sample with no TYPE declaration.
  EXPECT_TRUE(obs::validate_prometheus("canb_y 1\n").has_value());
  // Non-monotone histogram buckets.
  const std::string bad_hist =
      "# TYPE canb_h histogram\n"
      "canb_h_bucket{le=\"1\"} 5\n"
      "canb_h_bucket{le=\"+Inf\"} 3\n"
      "canb_h_sum 1\ncanb_h_count 3\n";
  EXPECT_TRUE(obs::validate_prometheus(bad_hist).has_value());
  // _count disagreeing with the +Inf bucket.
  const std::string bad_count =
      "# TYPE canb_h histogram\n"
      "canb_h_bucket{le=\"1\"} 1\n"
      "canb_h_bucket{le=\"+Inf\"} 3\n"
      "canb_h_sum 1\ncanb_h_count 4\n";
  EXPECT_TRUE(obs::validate_prometheus(bad_count).has_value());
  // Missing +Inf bucket entirely.
  const std::string no_inf =
      "# TYPE canb_h histogram\n"
      "canb_h_bucket{le=\"1\"} 1\n";
  EXPECT_TRUE(obs::validate_prometheus(no_inf).has_value());
  // A correct document passes.
  const std::string good =
      "# HELP canb_h help\n"
      "# TYPE canb_h histogram\n"
      "canb_h_bucket{le=\"1\"} 1\n"
      "canb_h_bucket{le=\"+Inf\"} 3\n"
      "canb_h_sum 1.5\ncanb_h_count 3\n";
  EXPECT_FALSE(obs::validate_prometheus(good).has_value());
}

// --- flight recorder ---------------------------------------------------------

obs::StepSample sample_with_wall(int step, double wall) {
  obs::StepSample s;
  s.step = step;
  s.wall_seconds = wall;
  return s;
}

TEST(ObsStepSeries, RingEvictsOldestAndKeepsOrder) {
  obs::StepSeries series(4);
  for (int i = 1; i <= 6; ++i) series.record(sample_with_wall(i, 0.01));
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.recorded_total(), 6u);
  const auto samples = series.samples();
  ASSERT_EQ(samples.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(samples[static_cast<std::size_t>(i)].step, i + 3);
}

TEST(ObsStepSeries, StragglerNeedsWarmupThenFlags) {
  obs::StepSeries series(64, /*straggler_factor=*/3.0);
  // A huge early outlier is NOT flagged: fewer than kMinSamplesForMedian
  // resident samples.
  EXPECT_FALSE(series.record(sample_with_wall(1, 10.0)));
  for (int i = 2; i <= 9; ++i) EXPECT_FALSE(series.record(sample_with_wall(i, 0.010)));
  // Median is ~0.010 now; 0.020 stays under 3x, 0.050 trips it.
  EXPECT_FALSE(series.record(sample_with_wall(10, 0.020)));
  int sink_calls = 0;
  series.set_straggler_sink([&](const obs::StepSample& s) {
    ++sink_calls;
    EXPECT_TRUE(s.straggler);
    EXPECT_EQ(s.step, 11);
  });
  EXPECT_TRUE(series.record(sample_with_wall(11, 0.050)));
  EXPECT_EQ(sink_calls, 1);
  // Only the flagged sample lands in stragglers(); the warmup outlier
  // stays an ordinary resident sample.
  ASSERT_EQ(series.stragglers().size(), 1u);
  EXPECT_EQ(series.stragglers().back().step, 11);
}

TEST(ObsStepSeries, JsonExportCarriesSamplesAndManifest) {
  obs::StepSeries series(8);
  series.record(sample_with_wall(1, 0.01));
  obs::RunManifest manifest;
  manifest.machine = "testbox";
  manifest.compiler = "test-cc";
  manifest.git = "deadbeef";
  manifest.simd = "scalar";
  std::ostringstream out;
  obs::write_step_series(out, series, manifest);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"kind\":\"step_series\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema_version\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"build\":{\"compiler\":\"test-cc\""), std::string::npos);
  EXPECT_NE(doc.find("\"recorded_total\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"wall_seconds\":0.01"), std::string::npos);
}

// --- HTTP scrape server ------------------------------------------------------

/// Minimal blocking HTTP client for the loopback server under test.
std::string http_get(int port, const std::string& path, const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  const std::string request = method + " " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

TEST(ObsServe, ServesPublishedContentOnAllRoutes) {
  obs::MetricsServer server(0);  // ephemeral port
  ASSERT_GT(server.port(), 0);

  obs::LiveContent content;
  content.prometheus = "# TYPE canb_x counter\ncanb_x 7\n";
  content.healthz = "{\"state\":\"running\",\"step\":3}";
  server.publish(content);

  const auto metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_EQ(body_of(metrics), content.prometheus);

  const auto health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_EQ(body_of(health), content.healthz);

  EXPECT_NE(http_get(server.port(), "/").find("canb live observability"), std::string::npos);
  EXPECT_NE(http_get(server.port(), "/nope").find("404"), std::string::npos);
  // Spans/trace not published yet: those routes 404 instead of crashing.
  EXPECT_NE(http_get(server.port(), "/spans.csv").find("404"), std::string::npos);
  EXPECT_NE(http_get(server.port(), "/trace.json").find("404"), std::string::npos);
  EXPECT_NE(http_get(server.port(), "/metrics", "POST").find("405"), std::string::npos);

  // A later publish replaces what /metrics serves.
  content.prometheus = "# TYPE canb_x counter\ncanb_x 8\n";
  server.publish(content);
  EXPECT_NE(body_of(http_get(server.port(), "/metrics")).find("canb_x 8"), std::string::npos);
  EXPECT_GE(server.requests_served(), 8u);
  server.stop();
}

TEST(ObsServe, ContentLengthMatchesBody) {
  obs::MetricsServer server(0);
  obs::LiveContent content;
  content.prometheus = "# TYPE canb_y gauge\ncanb_y 1.5\n";
  content.healthz = "{}";
  server.publish(content);
  const auto response = http_get(server.port(), "/metrics");
  const auto pos = response.find("Content-Length: ");
  ASSERT_NE(pos, std::string::npos);
  const auto len = std::stoul(response.substr(pos + 16));
  EXPECT_EQ(len, body_of(response).size());
}

// --- bitwise inertness at the Simulation level -------------------------------

using Sim = sim::Simulation<particles::InverseSquareRepulsion>;

Sim::Config live_config() {
  Sim::Config cfg;
  cfg.method = sim::Method::CaCutoff;
  cfg.p = 32;
  cfg.c = 2;
  cfg.machine = machine::hopper();
  cfg.kernel = {1e-4, 1e-2};
  cfg.cutoff = 0.12;
  cfg.dt = 1e-4;
  return cfg;
}

particles::Block run_with(obs::ObsLevel level, bool serve, int series_capacity) {
  auto cfg = live_config();
  cfg.obs = level;
  if (serve) cfg.serve_port = 0;
  cfg.series_capacity = series_capacity;
  Sim s(cfg, particles::init_uniform(256, cfg.box, 2013, 0.01));
  s.run(8);
  if (level != obs::ObsLevel::Off) s.finalize_telemetry();
  return s.gather();
}

bool blocks_bitwise_equal(const particles::Block& a, const particles::Block& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id ||
        std::bit_cast<std::uint32_t>(a[i].px) != std::bit_cast<std::uint32_t>(b[i].px) ||
        std::bit_cast<std::uint32_t>(a[i].py) != std::bit_cast<std::uint32_t>(b[i].py) ||
        std::bit_cast<std::uint32_t>(a[i].vx) != std::bit_cast<std::uint32_t>(b[i].vx) ||
        std::bit_cast<std::uint32_t>(a[i].vy) != std::bit_cast<std::uint32_t>(b[i].vy))
      return false;
  }
  return true;
}

TEST(ObsServe, LivePlaneIsBitwiseInert) {
  const auto baseline = run_with(obs::ObsLevel::Off, false, 0);
  const auto with_plane = run_with(obs::ObsLevel::Metrics, true, 64);
  EXPECT_TRUE(blocks_bitwise_equal(baseline, with_plane))
      << "attaching the scrape server + flight recorder changed the trajectory";
}

TEST(ObsServe, SimulationServesLiveStepCount) {
  auto cfg = live_config();
  cfg.obs = obs::ObsLevel::Metrics;
  cfg.serve_port = 0;
  cfg.series_capacity = 16;
  Sim s(cfg, particles::init_uniform(256, cfg.box, 2013, 0.01));
  ASSERT_NE(s.server(), nullptr);
  s.run(5);
  const auto health = body_of(http_get(s.server()->port(), "/healthz"));
  EXPECT_NE(health.find("\"step\":5"), std::string::npos) << health;
  EXPECT_NE(health.find("\"state\":\"running\""), std::string::npos);
  const auto metrics = body_of(http_get(s.server()->port(), "/metrics"));
  EXPECT_NE(metrics.find("canb_steps_total 5"), std::string::npos);
  EXPECT_NE(metrics.find("canb_build_info"), std::string::npos);
  const auto err = obs::validate_prometheus(metrics);
  EXPECT_FALSE(err.has_value()) << *err;
  s.finalize_telemetry();
  EXPECT_NE(body_of(http_get(s.server()->port(), "/healthz")).find("\"state\":\"finished\""),
            std::string::npos);
  ASSERT_NE(s.step_series(), nullptr);
  EXPECT_EQ(s.step_series()->recorded_total(), 5u);
}

}  // namespace
