// Extended physics coverage: the additional kernels (Yukawa, Morse),
// the leapfrog integrator, trajectory I/O round trips, and
// energy-conservation properties through the *distributed* engines.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/ca_all_pairs.hpp"
#include "decomp/partition.hpp"
#include "machine/presets.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "particles/reference.hpp"
#include "sim/simulation.hpp"
#include "sim/trajectory.hpp"
#include "support/rng.hpp"

namespace {

using namespace canb;
using particles::Block;
using particles::Box;
using particles::Particle;

// --- Yukawa -------------------------------------------------------------------

TEST(Yukawa, ScreeningSuppressesLongRange) {
  const particles::Yukawa k{1.0, 0.1, 0.0};
  Particle a;
  Particle b;
  b.id = 1;
  const auto near_f = k.force(0.1, 0.0, 0.01, a, b);
  const auto far_f = k.force(1.0, 0.0, 1.0, a, b);
  // Coulomb would decay 100x; screening makes it astronomically more.
  EXPECT_GT(near_f.fx / (far_f.fx + 1e-300), 1e4);
}

TEST(Yukawa, ReducesToCoulombAtLargeScreeningLength) {
  const particles::Yukawa yk{1.0, 1e6, 0.0};
  const particles::InverseSquareRepulsion coul{1.0, 0.0};
  Particle a;
  Particle b;
  b.id = 1;
  const auto fy = yk.force(0.5, 0.0, 0.25, a, b);
  const auto fc = coul.force(0.5, 0.0, 0.25, a, b);
  EXPECT_NEAR(fy.fx, fc.fx, std::abs(fc.fx) * 1e-3);
}

TEST(Yukawa, ForceIsMinusGradientOfPotential) {
  const particles::Yukawa k{2.0, 0.15, 0.0};
  Particle a;
  Particle b;
  b.id = 1;
  const double r = 0.3;
  const double h = 1e-6;
  const double dU = (k.potential((r + h) * (r + h), a, b) -
                     k.potential((r - h) * (r - h), a, b)) /
                    (2 * h);
  const auto f = k.force(r, 0.0, r * r, a, b);
  EXPECT_NEAR(f.fx, -dU, std::abs(dU) * 1e-3);
}

// --- Morse --------------------------------------------------------------------

TEST(Morse, EquilibriumAtR0) {
  const particles::Morse k{1.0, 3.0, 0.4};
  Particle a;
  Particle b;
  b.id = 1;
  const auto inside_f = k.force(0.3, 0.0, 0.09, a, b);
  const auto at_eq = k.force(0.4, 0.0, 0.16, a, b);
  const auto outside_f = k.force(0.6, 0.0, 0.36, a, b);
  EXPECT_GT(inside_f.fx, 0.0);   // repulsive inside r0
  EXPECT_NEAR(at_eq.fx, 0.0, 1e-9);
  EXPECT_LT(outside_f.fx, 0.0);  // attractive outside
  EXPECT_NEAR(k.potential(0.16, a, b), -1.0, 1e-9);  // well depth at r0
}

TEST(Morse, ForceIsMinusGradientOfPotential) {
  const particles::Morse k{1.5, 2.5, 0.5};
  Particle a;
  Particle b;
  b.id = 1;
  const double r = 0.7;
  const double h = 1e-6;
  const double dU =
      (k.potential((r + h) * (r + h), a, b) - k.potential((r - h) * (r - h), a, b)) / (2 * h);
  const auto f = k.force(r, 0.0, r * r, a, b);
  EXPECT_NEAR(f.fx, -dU, std::abs(dU) * 1e-3 + 1e-9);
}

// --- leapfrog -----------------------------------------------------------------

TEST(Leapfrog, FreeParticleDriftsLinearly) {
  particles::Leapfrog integ;
  Block ps(1);
  ps[0].vx = 0.5f;
  const Box box = Box::reflective_2d(100.0);
  for (int i = 0; i < 10; ++i) integ.post_force(ps, 0.1, box);
  EXPECT_NEAR(ps[0].px, 0.5, 1e-5);
}

TEST(Leapfrog, AvailableThroughFactoryAndFacade) {
  EXPECT_EQ(particles::make_integrator("leapfrog")->name(), "leapfrog");
  using Sim = sim::Simulation<particles::InverseSquareRepulsion>;
  Sim::Config cfg;
  cfg.machine = machine::laptop();
  cfg.p = 4;
  cfg.integrator = "leapfrog";
  cfg.kernel = particles::InverseSquareRepulsion{1e-4, 1e-2};
  Sim s(cfg, particles::init_uniform(16, cfg.box, 3, 0.01));
  EXPECT_NO_THROW(s.run(3));
}

// --- energy conservation through the DISTRIBUTED engines -----------------------

TEST(DistributedConservation, CaAllPairsConservesEnergyWithVerlet) {
  const Box box = Box::reflective_2d(2.0);
  const particles::InverseSquareRepulsion k{1e-3, 2e-2};
  const auto init = particles::init_uniform(48, box, 5, 0.05);
  const auto e0 = particles::full_state(std::span<const Particle>(init), box, k);

  using Sim = sim::Simulation<particles::InverseSquareRepulsion>;
  Sim::Config cfg;
  cfg.method = sim::Method::CaAllPairs;
  cfg.p = 12;
  cfg.c = 2;
  cfg.machine = machine::laptop();
  cfg.box = box;
  cfg.kernel = k;
  cfg.dt = 1e-3;
  Sim s(cfg, init);
  s.run(500);
  const auto snap = s.gather();
  const auto e1 = particles::full_state(std::span<const Particle>(snap), box, k);
  EXPECT_NEAR(e1.total(), e0.total(), std::abs(e0.total()) * 0.02);
}

TEST(DistributedConservation, CutoffEngineConservesTruncatedEnergy) {
  // With a SoftSphere kernel whose support fits inside the cutoff, the
  // truncation is exact and energy must be conserved.
  const Box box = Box::reflective_2d(1.0);
  const particles::SoftSphere k{20.0, 0.05};
  auto init = particles::init_lattice(64, box, 0.2, 3);
  {
    Xoshiro256 rng(5);
    for (auto& p : init) {
      p.vx = static_cast<float>(rng.normal() * 0.03);
      p.vy = static_cast<float>(rng.normal() * 0.03);
    }
  }
  const auto e0 = particles::full_state(std::span<const Particle>(init), box, k);

  using Sim = sim::Simulation<particles::SoftSphere>;
  Sim::Config cfg;
  cfg.method = sim::Method::CaCutoff;
  cfg.p = 32;  // q = 16 teams -> 4x4 grid; the rc window (mx=1) fits
  cfg.c = 2;
  cfg.machine = machine::laptop();
  cfg.box = box;
  cfg.kernel = k;
  cfg.cutoff = 0.25;
  cfg.dt = 1e-3;
  Sim s(cfg, init);
  s.run(400);
  const auto snap = s.gather();
  const auto e1 = particles::full_state(std::span<const Particle>(snap), box, k);
  EXPECT_NEAR(e1.total(), e0.total(), std::abs(e0.total()) * 0.03 + 1e-6);
}

// --- trajectory I/O --------------------------------------------------------------

TEST(Trajectory, XyzRoundTripsPositions) {
  const auto ps = particles::init_uniform(17, Box::reflective_2d(1.0), 9);
  std::stringstream ss;
  sim::write_xyz_frame(ss, ps, "step=0");
  sim::write_xyz_frame(ss, ps, "step=1");
  Block back;
  std::string comment;
  ASSERT_TRUE(sim::read_xyz_frame(ss, back, &comment));
  EXPECT_EQ(comment, "step=0");
  ASSERT_EQ(back.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_NEAR(back[i].px, ps[i].px, 1e-5);
    EXPECT_NEAR(back[i].py, ps[i].py, 1e-5);
  }
  ASSERT_TRUE(sim::read_xyz_frame(ss, back, &comment));
  EXPECT_EQ(comment, "step=1");
  EXPECT_FALSE(sim::read_xyz_frame(ss, back, &comment));  // clean EOF
}

TEST(Trajectory, RejectsMalformedInput) {
  Block out;
  std::stringstream bad1("not-a-count\ncomment\n");
  EXPECT_THROW(sim::read_xyz_frame(bad1, out), PreconditionError);
  std::stringstream bad2("3\ncomment\nP 0 0 0\n");  // truncated
  EXPECT_THROW(sim::read_xyz_frame(bad2, out), PreconditionError);
}

TEST(Trajectory, WriterProducesReadableFiles) {
  const std::string path = "/tmp/canb_test_traj.xyz";
  const auto ps = particles::init_uniform(8, Box::reflective_2d(1.0), 2);
  {
    sim::TrajectoryWriter w(path, sim::TrajectoryWriter::Format::Xyz);
    w.append(ps, 0, 0.0);
    w.append(ps, 1, 0.1);
    EXPECT_EQ(w.frames_written(), 2);
  }
  std::ifstream f(path);
  Block back;
  int frames = 0;
  while (sim::read_xyz_frame(f, back)) ++frames;
  EXPECT_EQ(frames, 2);
  std::remove(path.c_str());
}

TEST(Trajectory, CsvHasHeaderAndRows) {
  const std::string path = "/tmp/canb_test_traj.csv";
  const auto ps = particles::init_uniform(4, Box::reflective_2d(1.0), 2);
  {
    sim::TrajectoryWriter w(path, sim::TrajectoryWriter::Format::Csv);
    w.append(ps, 7, 0.7);
  }
  std::ifstream f(path);
  std::string line;
  ASSERT_TRUE(std::getline(f, line));
  EXPECT_EQ(line, "step,time,id,px,py,vx,vy,fx,fy,mass,charge");
  int rows = 0;
  while (std::getline(f, line)) ++rows;
  EXPECT_EQ(rows, 4);
  std::remove(path.c_str());
}

}  // namespace
