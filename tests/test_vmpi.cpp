// Virtual MPI runtime: grids, ledgers, clock semantics, primitives.
#include <gtest/gtest.h>

#include <numeric>

#include "machine/presets.hpp"
#include "support/assert.hpp"
#include "vmpi/cost_ledger.hpp"
#include "vmpi/grid.hpp"
#include "vmpi/primitives.hpp"
#include "vmpi/virtual_comm.hpp"

namespace {

using namespace canb;
using namespace canb::vmpi;

machine::MachineModel flat_machine() {
  machine::MachineModel m;
  m.alpha = 1e-6;
  m.beta = 1e-9;
  m.gamma = 1e-8;
  m.gamma_flop = 1e-9;
  m.collectives = machine::make_ideal_log_tree(1e-6, 1e-9);
  return m;
}

// --- grid ---------------------------------------------------------------------

TEST(Grid, LayoutRoundTrips) {
  const auto g = Grid2d::make(12, 3);
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.cols(), 4);
  for (int r = 0; r < g.size(); ++r) {
    EXPECT_EQ(g.rank(g.row_of(r), g.col_of(r)), r);
  }
  EXPECT_EQ(g.leader(2), 2);
  EXPECT_EQ(g.wrap_col(3, 1), 0);
  EXPECT_EQ(g.wrap_col(0, -1), 3);
  EXPECT_EQ(g.wrap_col(1, 9), 2);
}

TEST(Grid, RejectsNonDividingC) {
  EXPECT_THROW(Grid2d::make(10, 3), PreconditionError);
  EXPECT_NO_THROW(Grid2d::make(10, 5));
}

// --- ledger -------------------------------------------------------------------

TEST(Ledger, ChargesAccumulatePerPhase) {
  CostLedger led(4);
  led.charge(0, Phase::Shift, 1.0, 2, 100);
  led.charge(0, Phase::Compute, 0.5);
  led.charge(1, Phase::Shift, 3.0, 1, 50);
  EXPECT_DOUBLE_EQ(led.seconds(0, Phase::Shift), 1.0);
  EXPECT_DOUBLE_EQ(led.total_seconds(0), 1.5);
  EXPECT_EQ(led.messages(0), 2u);
  EXPECT_EQ(led.bytes(1), 50u);
  EXPECT_EQ(led.critical_rank(), 1);
  EXPECT_EQ(led.critical_messages(), 2u);
  EXPECT_EQ(led.critical_bytes(), 100u);
  EXPECT_EQ(led.aggregate(Phase::Shift).messages, 3u);
  EXPECT_EQ(led.aggregate_bytes(), 150u);
}

TEST(Ledger, ChargeAllWithRepeat) {
  CostLedger led(3);
  led.charge_all(Phase::Shift, 0.25, 1, 10, 4);
  for (int r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(led.seconds(r, Phase::Shift), 1.0);
    EXPECT_EQ(led.messages(r), 4u);
    EXPECT_EQ(led.bytes(r), 40u);
  }
}

TEST(Ledger, ResetZeroes) {
  CostLedger led(2);
  led.charge(0, Phase::Reduce, 1.0, 1, 1);
  led.reset();
  EXPECT_DOUBLE_EQ(led.total_seconds(0), 0.0);
  EXPECT_EQ(led.aggregate_messages(), 0u);
}

// --- virtual comm clock semantics ----------------------------------------------

TEST(VirtualComm, ClockEqualsSumOfPhaseSeconds) {
  VirtualComm vc(4, flat_machine());
  vc.advance(2, Phase::Compute, 0.5);
  vc.advance(2, Phase::Shift, 0.25, 1, 10);
  EXPECT_DOUBLE_EQ(vc.clock(2), vc.ledger().total_seconds(2));
  EXPECT_DOUBLE_EQ(vc.max_clock(), 0.75);
}

TEST(VirtualComm, PermuteStepWaitsForSlowSender) {
  VirtualComm vc(2, flat_machine());
  vc.advance(0, Phase::Compute, 1.0);  // rank 0 is busy
  // Ring shift: 1 receives from 0, 0 receives from 1.
  vc.permute_step(Phase::Shift, [](int r) { return 1 - r; }, [](int) { return 1000.0; });
  const double msg = 1e-6 + 1e-9 * 1000.0;
  // Rank 1 had clock 0 but must wait for sender 0 at t=1.
  EXPECT_DOUBLE_EQ(vc.clock(1), 1.0 + msg);
  // Rank 0 receives from rank 1 (clock 0): max(1, 0) + msg.
  EXPECT_DOUBLE_EQ(vc.clock(0), 1.0 + msg);
  // The wait is attributed to the shift phase.
  EXPECT_DOUBLE_EQ(vc.ledger().seconds(1, Phase::Shift), 1.0 + msg);
}

TEST(VirtualComm, SelfSendIsFree) {
  VirtualComm vc(3, flat_machine());
  vc.permute_step(Phase::Shift, [](int r) { return r; }, [](int) { return 1e6; });
  EXPECT_DOUBLE_EQ(vc.max_clock(), 0.0);
  EXPECT_EQ(vc.ledger().aggregate_messages(), 0u);
}

TEST(VirtualComm, ZeroByteMessagesAreElided) {
  VirtualComm vc(2, flat_machine());
  vc.permute_step(Phase::Reassign, [](int r) { return 1 - r; }, [](int) { return 0.0; });
  EXPECT_DOUBLE_EQ(vc.max_clock(), 0.0);
  EXPECT_EQ(vc.ledger().aggregate_messages(), 0u);
}

TEST(VirtualComm, TeamCollectiveSynchronizesMembers) {
  VirtualComm vc(4, flat_machine());
  const auto g = Grid2d::make(4, 2);  // 2 teams of 2
  vc.advance(g.rank(1, 0), Phase::Compute, 2.0);  // one member of team 0 lags
  vc.team_broadcast(g, Phase::Broadcast, [](int) { return 1000.0; });
  const double t_coll = 1.0 * (1e-6 + 1e-9 * 1000.0);  // log2(2) rounds
  EXPECT_DOUBLE_EQ(vc.clock(g.rank(0, 0)), 2.0 + t_coll);
  EXPECT_DOUBLE_EQ(vc.clock(g.rank(1, 0)), 2.0 + t_coll);
  // Team 1 unaffected by team 0's laggard.
  EXPECT_DOUBLE_EQ(vc.clock(g.rank(0, 1)), t_coll);
}

TEST(VirtualComm, SynchronizeAlignsAllClocks) {
  VirtualComm vc(3, flat_machine());
  vc.advance(1, Phase::Compute, 5.0);
  vc.synchronize();
  for (int r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(vc.clock(r), 5.0);
}

TEST(VirtualComm, ResetClearsClocksAndLedger) {
  VirtualComm vc(2, flat_machine());
  vc.advance(0, Phase::Compute, 1.0, 5, 500);
  vc.reset();
  EXPECT_DOUBLE_EQ(vc.max_clock(), 0.0);
  EXPECT_EQ(vc.ledger().aggregate_messages(), 0u);
}

// --- primitives: data movement ---------------------------------------------------

TEST(Primitives, ShiftRowsRotatesEastward) {
  VirtualComm vc(8, flat_machine());
  const auto g = Grid2d::make(8, 2);  // 2 rows x 4 cols
  std::vector<int> bufs(8);
  std::iota(bufs.begin(), bufs.end(), 0);  // value = original rank
  shift_rows(vc, g, 1, bufs, [](int) { return 8.0; });
  // Rank (row, col) now holds the buffer of (row, col-1).
  for (int row = 0; row < 2; ++row) {
    for (int col = 0; col < 4; ++col) {
      EXPECT_EQ(bufs[static_cast<std::size_t>(g.rank(row, col))], g.rank(row, (col + 3) % 4));
    }
  }
  // One message each, 8 bytes.
  EXPECT_EQ(vc.ledger().critical_messages(), 1u);
  EXPECT_EQ(vc.ledger().critical_bytes(), 8u);
}

TEST(Primitives, ShiftByZeroAndFullRingAreFree) {
  VirtualComm vc(4, flat_machine());
  const auto g = Grid2d::make(4, 1);
  std::vector<int> bufs{0, 1, 2, 3};
  shift_rows(vc, g, 0, bufs, [](int) { return 8.0; });
  shift_rows(vc, g, 4, bufs, [](int) { return 8.0; });
  EXPECT_EQ(bufs, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(vc.max_clock(), 0.0);
}

TEST(Primitives, SkewRowsShiftsByRowIndex) {
  VirtualComm vc(9, flat_machine());
  const auto g = Grid2d::make(9, 3);  // 3 rows x 3 cols
  std::vector<int> bufs(9);
  std::iota(bufs.begin(), bufs.end(), 0);
  skew_rows(vc, g, [](int row) { return row; }, bufs, [](int) { return 4.0; });
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 3; ++col) {
      // Holds the buffer from col - row.
      EXPECT_EQ(bufs[static_cast<std::size_t>(g.rank(row, col))],
                g.rank(row, (col - row + 3) % 3));
    }
  }
  // Row 0 shifted by zero: free.
  EXPECT_DOUBLE_EQ(vc.ledger().seconds(g.rank(0, 0), Phase::Skew), 0.0);
  EXPECT_GT(vc.ledger().seconds(g.rank(1, 0), Phase::Skew), 0.0);
}

TEST(Primitives, BroadcastTeamsCopiesLeaderBuffer) {
  VirtualComm vc(6, flat_machine());
  const auto g = Grid2d::make(6, 3);  // 3 rows x 2 teams
  std::vector<std::vector<int>> bufs(6);
  bufs[static_cast<std::size_t>(g.leader(0))] = {10};
  bufs[static_cast<std::size_t>(g.leader(1))] = {20};
  broadcast_teams(vc, g, bufs, [](const std::vector<int>& b) { return b.size() * 4; });
  for (int row = 0; row < 3; ++row) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(g.rank(row, 0))], std::vector<int>{10});
    EXPECT_EQ(bufs[static_cast<std::size_t>(g.rank(row, 1))], std::vector<int>{20});
  }
  // ceil(log2(3)) = 2 messages charged along the critical path.
  EXPECT_EQ(vc.ledger().critical_messages(), 2u);
}

TEST(Primitives, ReduceTeamsCombinesIntoLeader) {
  VirtualComm vc(6, flat_machine());
  const auto g = Grid2d::make(6, 3);
  std::vector<int> bufs{1, 10, 2, 20, 4, 40};  // rank-major: rows x 2 cols
  reduce_teams(vc, g, bufs, [](int) { return 4.0; }, [](int& acc, const int& in) { acc += in; });
  EXPECT_EQ(bufs[static_cast<std::size_t>(g.leader(0))], 1 + 2 + 4);
  EXPECT_EQ(bufs[static_cast<std::size_t>(g.leader(1))], 10 + 20 + 40);
}

TEST(Primitives, PermuteBuffersAppliesArbitraryPermutation) {
  VirtualComm vc(4, flat_machine());
  std::vector<int> bufs{0, 1, 2, 3};
  std::vector<int> scratch;
  // Receive from (r+2) mod 4.
  permute_buffers(vc, [](int r) { return (r + 2) % 4; }, bufs, scratch,
                  [](int) { return 16.0; }, Phase::Shift);
  EXPECT_EQ(bufs, (std::vector<int>{2, 3, 0, 1}));
  EXPECT_EQ(vc.ledger().critical_messages(), 1u);
}

TEST(Primitives, SingleRowGridBehavesAsRing) {
  VirtualComm vc(5, flat_machine());
  const auto g = Grid2d::make(5, 1);
  std::vector<int> bufs{0, 1, 2, 3, 4};
  for (int i = 0; i < 5; ++i) shift_rows(vc, g, 1, bufs, [](int) { return 4.0; });
  EXPECT_EQ(bufs, (std::vector<int>{0, 1, 2, 3, 4}));  // full cycle
  EXPECT_EQ(vc.ledger().critical_messages(), 5u);
}

// --- hop-aware latency -----------------------------------------------------------

TEST(VirtualComm, HopAwareLatencyChargesDistance) {
  auto m = flat_machine();
  m.alpha_hop = 1e-6;
  m.topology = std::make_shared<machine::Topology>(machine::Topology::ring(8));
  VirtualComm vc(8, m);
  const auto g = Grid2d::make(8, 1);
  std::vector<int> bufs(8, 0);
  shift_rows(vc, g, 3, bufs, [](int) { return 100.0; });
  // Ring distance 3: alpha + 3*alpha_hop + beta*w.
  EXPECT_DOUBLE_EQ(vc.max_clock(), 1e-6 + 3e-6 + 1e-9 * 100.0);
  vc.reset();
  shift_rows(vc, g, 7, bufs, [](int) { return 100.0; });
  // Distance 7 wraps to 1 hop on the ring.
  EXPECT_DOUBLE_EQ(vc.max_clock(), 1e-6 + 1e-6 + 1e-9 * 100.0);
}

TEST(VirtualComm, HopAwareFallsBackToBalancedTorus) {
  auto m = flat_machine();
  m.alpha_hop = 1e-6;
  m.topology = std::make_shared<machine::Topology>(machine::Topology::ring(4));  // wrong size
  VirtualComm vc(27, m);  // builds a 3x3x3 torus internally
  vc.permute_step(Phase::Shift, [](int r) { return (r + 1) % 27; }, [](int) { return 10.0; });
  // Neighbors in rank order are 1 torus hop apart along x (wrap included).
  EXPECT_GT(vc.max_clock(), 1e-6);
}

TEST(VirtualComm, ZeroAlphaHopIgnoresTopology) {
  auto m = flat_machine();
  m.topology = std::make_shared<machine::Topology>(machine::Topology::ring(8));
  VirtualComm vc(8, m);
  const auto g = Grid2d::make(8, 1);
  std::vector<int> bufs(8, 0);
  shift_rows(vc, g, 3, bufs, [](int) { return 100.0; });
  EXPECT_DOUBLE_EQ(vc.max_clock(), 1e-6 + 1e-9 * 100.0);
}

// --- whole machine collective ------------------------------------------------------

TEST(VirtualComm, WholeMachineCollectiveHitsHardwareTree) {
  auto m = machine::intrepid(/*use_hw_tree=*/true);
  VirtualComm vc(64, m);
  vc.whole_machine_collective(Phase::Broadcast, 1e6, false);
  EXPECT_NEAR(vc.max_clock(), 5e-6 + 3.5e-8 * 1e6, 1e-12);
}

}  // namespace
