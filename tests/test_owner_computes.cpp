// Owner-computes acceptance: with --transport=socket and G > 1 groups each
// OS process runs force sweeps only for its owned ranks, yet the message
// trace, CostLedger-derived report, and the gathered trajectory stay
// bitwise identical to the single-process modeled arm — clean and under
// seeded frame drops, across both CA engines and host thread counts.
//
// Two families of checks:
//   * Parity matrix (groups {2,4} x threads {1,2} x engines x drop): every
//     process self-checks trace + gathered state + report against the
//     pre-fork modeled baseline.
//   * Work partition: per-group canb_sweep_pairs_computed_total series (the
//     mesh-merged registry on group 0) must sum to the lockstep total, with
//     every group contributing a strictly partial share — the proof that
//     the mesh actually divides the sweeps instead of replicating them.
//
// Fork discipline mirrors tests/test_transport_e2e.cpp: baseline before the
// fork (no live threads at fork time — the baseline's ThreadPool dies with
// its Simulation), children compare and _Exit, the transport endpoint is
// destroyed (flush + close-barrier) before children are reaped.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>

#include "machine/presets.hpp"
#include "obs/metrics.hpp"
#include "particles/init.hpp"
#include "sim/simulation.hpp"
#include "support/parallel.hpp"
#include "vmpi/socket_transport.hpp"
#include "vmpi/trace.hpp"
#include "vmpi/transport.hpp"

namespace {

using namespace canb;
using Sim = sim::Simulation<particles::InverseSquareRepulsion>;

constexpr int kSteps = 4;

struct RunResult {
  std::string trace;
  particles::Block state;
  sim::RunReport report;
};

Sim::Config base_config(sim::Method method) {
  Sim::Config cfg;
  cfg.method = method;
  // The cutoff engine needs a team grid wide enough for its halo window
  // (2*m+1 <= q per axis), so it runs at p=32 like the transport e2e; the
  // all-pairs arm keeps a tighter p=8 mesh to exercise 1-rank groups.
  cfg.p = method == sim::Method::CaCutoff ? 32 : 8;
  cfg.c = 2;
  cfg.machine = machine::hopper();
  cfg.kernel = {1e-4, 1e-2};
  if (method == sim::Method::CaCutoff) cfg.cutoff = 0.12;
  cfg.dt = 1e-4;
  return cfg;
}

RunResult run_arm(sim::Method method, int threads, std::shared_ptr<vmpi::Transport> transport) {
  Sim::Config cfg = base_config(method);
  cfg.transport = std::move(transport);
  Sim s(cfg, particles::init_uniform(96, cfg.box, 2013, 0.01));
  if (threads > 1) s.set_host_pool(std::make_shared<ThreadPool>(threads));
  vmpi::TraceRecorder rec;
  s.comm().set_trace(&rec);
  s.run(kSteps);
  return {vmpi::serialize_trace(rec), s.gather(), s.report()};
}

/// Plain-bool comparison (no gtest in forked children).
bool bits_equal(float a, float b) {
  return std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b);
}

bool runs_equal(const RunResult& got, const RunResult& want) {
  if (got.trace != want.trace) return false;
  if (got.state.size() != want.state.size()) return false;
  for (std::size_t i = 0; i < got.state.size(); ++i) {
    const auto& g = got.state[i];
    const auto& w = want.state[i];
    if (g.id != w.id || !bits_equal(g.px, w.px) || !bits_equal(g.py, w.py) ||
        !bits_equal(g.vx, w.vx) || !bits_equal(g.vy, w.vy) || !bits_equal(g.fx, w.fx) ||
        !bits_equal(g.fy, w.fy))
      return false;
  }
  const auto& gr = got.report;
  const auto& wr = want.report;
  return gr.messages == wr.messages && gr.bytes == wr.bytes && gr.compute == wr.compute &&
         gr.broadcast == wr.broadcast && gr.skew == wr.skew && gr.shift == wr.shift &&
         gr.reduce == wr.reduce && gr.reassign == wr.reassign && gr.wall == wr.wall &&
         gr.imbalance == wr.imbalance;
}

void run_parity_case(sim::Method method, int groups, int threads, double drop_rate) {
  // Baseline first: forked children inherit it and self-check against it.
  const auto want = run_arm(method, threads, nullptr);
  const std::string dir = vmpi::make_rendezvous_dir();

  vmpi::ProcessGroup pg(groups);
  bool ok = false;
  {
    vmpi::SocketConfig sc;
    sc.ranks = base_config(method).p;
    sc.groups = groups;
    sc.group = pg.group();
    sc.dir = dir;
    sc.drop_rate = drop_rate;
    sc.drop_seed = 11;
    auto t = std::make_shared<vmpi::SocketTransport>(sc);
    const auto got = run_arm(method, threads, t);
    ok = runs_equal(got, want);
    // Scope exit drops the endpoint: flush + close-barrier runs here, while
    // every process is still alive.
  }
  if (!pg.primary()) std::_Exit(ok ? 0 : 1);

  EXPECT_TRUE(ok) << "owner-computes arm diverged from the modeled baseline in group 0";
  EXPECT_EQ(pg.wait_children(), 0) << "a child group diverged or crashed";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(OwnerComputes, AllPairsTwoGroupsClean) {
  run_parity_case(sim::Method::CaAllPairs, 2, 1, 0.0);
}
TEST(OwnerComputes, AllPairsFourGroupsClean) {
  run_parity_case(sim::Method::CaAllPairs, 4, 2, 0.0);
}
TEST(OwnerComputes, AllPairsTwoGroupsLossy) {
  run_parity_case(sim::Method::CaAllPairs, 2, 2, 0.1);
}
TEST(OwnerComputes, AllPairsFourGroupsLossy) {
  run_parity_case(sim::Method::CaAllPairs, 4, 1, 0.1);
}
TEST(OwnerComputes, CutoffTwoGroupsClean) {
  run_parity_case(sim::Method::CaCutoff, 2, 2, 0.0);
}
TEST(OwnerComputes, CutoffFourGroupsClean) {
  run_parity_case(sim::Method::CaCutoff, 4, 1, 0.0);
}
TEST(OwnerComputes, CutoffTwoGroupsLossy) {
  run_parity_case(sim::Method::CaCutoff, 2, 1, 0.1);
}
TEST(OwnerComputes, CutoffFourGroupsLossy) {
  run_parity_case(sim::Method::CaCutoff, 4, 2, 0.1);
}

/// Explicit lockstep opt-out must still match the baseline (the PR 8
/// behavior stays available behind --transport-exec=lockstep).
TEST(OwnerComputes, LockstepOptOutStillMatches) {
  const auto want = run_arm(sim::Method::CaCutoff, 1, nullptr);
  const std::string dir = vmpi::make_rendezvous_dir();
  vmpi::ProcessGroup pg(2);
  bool ok = false;
  {
    vmpi::SocketConfig sc;
    sc.ranks = base_config(sim::Method::CaCutoff).p;
    sc.groups = 2;
    sc.group = pg.group();
    sc.dir = dir;
    auto t = std::make_shared<vmpi::SocketTransport>(sc);
    Sim::Config cfg = base_config(sim::Method::CaCutoff);
    cfg.transport = t;
    cfg.exec = vmpi::ExecMode::Lockstep;
    Sim s(cfg, particles::init_uniform(96, cfg.box, 2013, 0.01));
    vmpi::TraceRecorder rec;
    s.comm().set_trace(&rec);
    s.run(kSteps);
    const RunResult got{vmpi::serialize_trace(rec), s.gather(), s.report()};
    ok = runs_equal(got, want) && s.exec_mode() == vmpi::ExecMode::Lockstep;
  }
  if (!pg.primary()) std::_Exit(ok ? 0 : 1);
  EXPECT_TRUE(ok);
  EXPECT_EQ(pg.wait_children(), 0);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

std::uint64_t sum_counter(const obs::MetricsRegistry& reg, const std::string& name,
                          std::size_t* n_series = nullptr) {
  std::uint64_t sum = 0;
  const auto it = reg.families().find(name);
  if (it == reg.families().end()) return 0;
  if (n_series != nullptr) *n_series = it->second.series.size();
  for (const auto& [key, series] : it->second.series) {
    sum += std::get<obs::Counter>(series.metric).value();
  }
  return sum;
}

/// Each process must sweep ONLY its owned ranks' pairs: the group-labeled
/// canb_sweep_pairs_computed_total series in the mesh-merged registry sum
/// to the lockstep total, and each group's share is strictly partial.
TEST(OwnerComputes, SweepPairsPartitionAcrossGroups) {
  // Lockstep total from the modeled arm. Full level so the bulk fast path
  // is off in both arms and every sweep hits the telemetry hook.
  std::uint64_t want_total = 0;
  {
    Sim::Config cfg = base_config(sim::Method::CaAllPairs);
    cfg.obs = obs::ObsLevel::Full;
    Sim s(cfg, particles::init_uniform(96, cfg.box, 2013, 0.01));
    s.run(kSteps);
    s.finalize_telemetry();
    want_total = s.telemetry()->sweep_pairs_computed();
  }
  ASSERT_GT(want_total, 0u);

  const std::string dir = vmpi::make_rendezvous_dir();
  constexpr int kGroups = 2;
  vmpi::ProcessGroup pg(kGroups);
  bool ok = false;
  bool partition_ok = false;
  {
    vmpi::SocketConfig sc;
    sc.ranks = 8;
    sc.groups = kGroups;
    sc.group = pg.group();
    sc.dir = dir;
    auto t = std::make_shared<vmpi::SocketTransport>(sc);
    Sim::Config cfg = base_config(sim::Method::CaAllPairs);
    cfg.transport = t;
    cfg.obs = obs::ObsLevel::Full;
    Sim s(cfg, particles::init_uniform(96, cfg.box, 2013, 0.01));
    s.run(kSteps);
    s.finalize_telemetry();  // symmetric: final mesh push runs on every group
    const std::uint64_t mine = s.telemetry()->sweep_pairs_computed();
    ok = mine > 0 && mine < want_total;
    if (pg.primary()) {
      std::size_t n_series = 0;
      const auto merged = s.merged_metrics();
      const std::uint64_t sum =
          sum_counter(merged, "canb_sweep_pairs_computed_total", &n_series);
      partition_ok = sum == want_total && n_series == static_cast<std::size_t>(kGroups);
    }
  }
  if (!pg.primary()) std::_Exit(ok ? 0 : 1);

  EXPECT_TRUE(ok) << "group 0 swept zero pairs or the full lockstep workload";
  EXPECT_TRUE(partition_ok)
      << "per-group canb_sweep_pairs_computed_total did not sum to the lockstep total";
  EXPECT_EQ(pg.wait_children(), 0);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
