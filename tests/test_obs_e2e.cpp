// End-to-end acceptance for the live observability plane on a real socket
// mesh: four OS processes, each running 8 ranks of a 32-rank CaCutoff
// simulation, with telemetry on, the flight recorder attached, and the
// scrape server bound on the primary. Pins the ISSUE's acceptance
// criteria:
//
//  1. group 0's merged registry carries canb_transport_frames_sent_total
//     with one group-labeled series per OS process, each equal to the
//     value that process itself published (written to a rendezvous file
//     post-finalize, read by the parent after the close barrier);
//  2. GET /healthz mid-run reflects the live step counter and GET /metrics
//     mid-run already serves all four groups' transport series and passes
//     the Prometheus lint;
//  3. the whole plane is bitwise inert: the socket arm's trajectory equals
//     the modeled no-telemetry baseline computed before the fork.
//
// Fork discipline mirrors test_transport_e2e.cpp: baseline before the
// fork, children self-check and _Exit (no gtest teardown in a forked
// child), transport destroyed in an inner scope (close-barrier) before
// the parent reaps children.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "machine/presets.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/serve.hpp"
#include "particles/init.hpp"
#include "sim/simulation.hpp"
#include "vmpi/socket_transport.hpp"
#include "vmpi/transport.hpp"

namespace {

using namespace canb;
using Sim = sim::Simulation<particles::InverseSquareRepulsion>;

constexpr int kStepsBeforeScrape = 6;
constexpr int kStepsAfterScrape = 4;
constexpr int kGroups = 4;

Sim::Config base_config() {
  Sim::Config cfg;
  cfg.method = sim::Method::CaCutoff;
  cfg.p = 32;
  cfg.c = 2;
  cfg.machine = machine::hopper();
  cfg.kernel = {1e-4, 1e-2};
  cfg.cutoff = 0.12;
  cfg.dt = 1e-4;
  return cfg;
}

particles::Block make_workload(const Sim::Config& cfg) {
  return particles::init_uniform(256, cfg.box, 2013, 0.01);
}

bool bits_equal(float a, float b) {
  return std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b);
}

bool states_equal(const particles::Block& got, const particles::Block& want) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto& g = got[i];
    const auto& w = want[i];
    if (g.id != w.id || !bits_equal(g.px, w.px) || !bits_equal(g.py, w.py) ||
        !bits_equal(g.vx, w.vx) || !bits_equal(g.vy, w.vy))
      return false;
  }
  return true;
}

/// Minimal blocking loopback HTTP GET (no gtest: also runs pre-_Exit paths).
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

/// Number of exposition lines that are samples of the given family
/// (name followed by a label block).
int count_series(const std::string& exposition, const std::string& family) {
  int count = 0;
  std::size_t pos = 0;
  const std::string prefix = family + "{";
  while ((pos = exposition.find(prefix, pos)) != std::string::npos) {
    if (pos == 0 || exposition[pos - 1] == '\n') ++count;
    pos += prefix.size();
  }
  return count;
}

TEST(ObsE2E, FourProcessMeshAggregatesAndServesWholeMeshMetrics) {
  // Baseline before the fork: modeled transport, telemetry fully off.
  const auto want = [&] {
    auto cfg = base_config();
    Sim s(cfg, make_workload(cfg));
    s.run(kStepsBeforeScrape + kStepsAfterScrape);
    return s.gather();
  }();

  const std::string dir = vmpi::make_rendezvous_dir();
  vmpi::ProcessGroup pg(kGroups);  // forks 3 children; parent is group 0

  bool ok = true;
  std::vector<std::uint64_t> merged_frames(kGroups, 0);  // parent only
  {
    vmpi::SocketConfig sc;
    sc.ranks = 32;
    sc.groups = kGroups;
    sc.group = pg.group();
    sc.dir = dir;
    auto transport = std::make_shared<vmpi::SocketTransport>(sc);

    auto cfg = base_config();
    cfg.transport = transport;
    cfg.obs = obs::ObsLevel::Metrics;
    cfg.serve_port = 0;       // primary binds an ephemeral port; others skip
    cfg.series_capacity = 32;
    Sim s(cfg, make_workload(cfg));
    ok = ok && ((s.server() != nullptr) == pg.primary());

    s.run(kStepsBeforeScrape);
    if (pg.primary()) {
      // Mid-run scrape: the plane is live, not a post-mortem exporter.
      const auto health = http_get(s.server()->port(), "/healthz");
      ok = ok && health.find("\"step\":" + std::to_string(kStepsBeforeScrape)) !=
                     std::string::npos;
      ok = ok && health.find("\"state\":\"running\"") != std::string::npos;
      ok = ok && health.find("\"groups\":4") != std::string::npos;
      const auto metrics = http_get(s.server()->port(), "/metrics");
      ok = ok && count_series(metrics, "canb_transport_frames_sent_total") == kGroups;
      ok = ok && !obs::validate_prometheus(metrics).has_value();
    }
    s.run(kStepsAfterScrape);
    s.finalize_telemetry();  // symmetric across groups: final mesh push

    // Every process records the frames_sent value it PUBLISHED (the final
    // mesh push itself sends frames after publication, so raw transport
    // stats would overcount — the registry value is the contract).
    const auto own_frames =
        s.telemetry()
            ->metrics()
            .counter("canb_transport_frames_sent_total",
                     {{"group", std::to_string(pg.group())}})
            .value();
    ok = ok && own_frames > 0;
    std::ofstream(dir + "/frames.g" + std::to_string(pg.group())) << own_frames;

    if (pg.primary()) {
      obs::MetricsRegistry merged = s.merged_metrics();
      for (int g = 0; g < kGroups; ++g) {
        merged_frames[static_cast<std::size_t>(g)] =
            merged.counter("canb_transport_frames_sent_total", {{"group", std::to_string(g)}})
                .value();
      }
      ok = ok && s.mesh() != nullptr && s.mesh()->exchanges() > 0;
      ok = ok && s.step_series() != nullptr &&
           s.step_series()->recorded_total() ==
               static_cast<std::uint64_t>(kStepsBeforeScrape + kStepsAfterScrape);
    }

    // The plane must be bitwise inert even on the real mesh.
    ok = ok && states_equal(s.gather(), want);
    // Scope exit: Simulation (and the server) tear down, then the transport
    // close-barrier runs with all four processes alive — which also
    // guarantees every frames.g* file is on disk before the parent reads.
  }
  if (!pg.primary()) std::_Exit(ok ? 0 : 1);

  EXPECT_TRUE(ok) << "group 0 self-check failed (scrape, merge, or inertness)";
  for (int g = 0; g < kGroups; ++g) {
    std::uint64_t published = 0;
    std::ifstream in(dir + "/frames.g" + std::to_string(g));
    ASSERT_TRUE(in.good()) << "group " << g << " never wrote its published frame count";
    in >> published;
    EXPECT_EQ(merged_frames[static_cast<std::size_t>(g)], published)
        << "merged series group=\"" << g << "\" disagrees with that process's own registry";
  }
  EXPECT_EQ(pg.wait_children(), 0) << "a child group failed its self-check";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
